package crossmatch

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// TestTableVPricingPathParity is the benchmark-parity guard of the
// pricing redesign: on the Table V workload (RDC10+RYC10 at the bench
// scale), every algorithm's revenue must be bit-identical whether the
// quoter runs the precomputed CDF-table path (the default) or the exact
// scan path (WithPricingTables(false)). Run under -race it also
// exercises the scratch/table plumbing for data races.
func TestTableVPricingPathParity(t *testing.T) {
	stream, err := GenerateCity("RDC10+RYC10", benchTableScale, benchSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{TOTA, DemCOM, RamCOM} {
		run := func(tables bool) float64 {
			res, err := SimulateContext(context.Background(), stream, alg,
				WithSeed(benchSeed), WithPricingTables(tables))
			if err != nil {
				t.Fatal(err)
			}
			return res.TotalRevenue()
		}
		tab, scan := run(true), run(false)
		if math.Float64bits(tab) != math.Float64bits(scan) {
			t.Errorf("%s: revenue diverges between pricing paths: tables %v vs scan %v", alg, tab, scan)
		}
	}
}

// TestPricingStatsExported checks the run-level pricing counters surface
// through the public Metrics collector.
func TestPricingStatsExported(t *testing.T) {
	stream, err := GenerateSynthetic(400, 100, 1.0, "real", benchSeed)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	if _, err := SimulateContext(context.Background(), stream, DemCOM,
		WithSeed(benchSeed), WithMetrics(m)); err != nil {
		t.Fatal(err)
	}
	var p PricingStats = m.Snapshot().Pricing
	if p.MonteCarloQuotes == 0 {
		t.Error("DemCOM run recorded no Monte-Carlo quotes")
	}
	if p.ProbEvals == 0 {
		t.Error("no acceptance-probability evaluations recorded")
	}
	if p.TableHitRate <= 0 || p.TableHitRate > 1 {
		t.Errorf("TableHitRate = %v, want in (0,1]", p.TableHitRate)
	}
	if p.ScratchReuses == 0 {
		t.Error("no scratch reuses recorded — per-call allocation is back")
	}
	if p.ScratchAllocs != 0 {
		t.Errorf("ScratchAllocs = %d, want 0 (matchers own their scratch)", p.ScratchAllocs)
	}
}

// TestBadOptionsRejected pins the typed-error contract of the option
// validation: out-of-range options fail fast with ErrBadOption instead
// of being silently clamped.
func TestBadOptionsRejected(t *testing.T) {
	stream, err := GenerateSynthetic(10, 5, 1.0, "real", 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  Option
	}{
		{"trace sample above 1", WithTraceSample(1.5)},
		{"negative service ticks", WithServiceTicks(-1)},
		{"negative probe deadline", WithProbeDeadline(-time.Second)},
	}
	for _, c := range cases {
		if _, err := SimulateContext(context.Background(), stream, TOTA, WithSeed(1), c.opt); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: error = %v, want ErrBadOption", c.name, err)
		}
		if _, err := NewEngine([]PlatformID{1}, TOTA, 10, c.opt); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s via NewEngine: error = %v, want ErrBadOption", c.name, err)
		}
	}
	// A negative trace sample is documented semantics (tracing disabled
	// for the run), not an error.
	if _, err := SimulateContext(context.Background(), stream, TOTA,
		WithSeed(1), WithTracer(NewTracer(TraceOptions{})), WithTraceSample(-1)); err != nil {
		t.Errorf("negative trace sample rejected: %v", err)
	}
}
