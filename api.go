package crossmatch

import (
	"context"
	"errors"
	"fmt"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/experiments"
	"crossmatch/internal/fault"
	"crossmatch/internal/metrics"
	"crossmatch/internal/platform"
	"crossmatch/internal/trace"
	"crossmatch/internal/workload"
)

// Algorithm names accepted by SimulateContext.
const (
	// TOTA is the single-platform online greedy baseline [9].
	TOTA = platform.AlgTOTA
	// GreedyRT is the randomized-threshold baseline of [9].
	GreedyRT = platform.AlgGreedyRT
	// DemCOM is the deterministic cross online matching of Algorithm 1.
	DemCOM = platform.AlgDemCOM
	// RamCOM is the randomized cross online matching of Algorithm 3.
	RamCOM = platform.AlgRamCOM
	// BatchCOM is the windowed-dispatch variant: arrivals buffer for a
	// configurable window of virtual time (WithBatchWindow) and each
	// window is solved as one batch matching over the feasible inner and
	// outer edges; per-request deadlines (WithBatchDeadline) pull a
	// flush forward. Deterministic for a fixed seed and window.
	BatchCOM = platform.AlgBatchCOM
)

// DefaultBatchWindow is the window BatchCOM uses when WithBatchWindow
// is absent or non-positive.
const DefaultBatchWindow = platform.DefaultBatchWindow

// Sentinel errors. Callers should test with errors.Is: lookups wrap
// these with the offending name and the accepted values.
var (
	// ErrUnknownAlgorithm reports an algorithm name SimulateContext does
	// not recognize.
	ErrUnknownAlgorithm = platform.ErrUnknownAlgorithm
	// ErrUnknownPreset reports a dataset preset name GenerateCity or
	// ReproduceTable does not recognize.
	ErrUnknownPreset = workload.ErrUnknownPreset
	// ErrBadOption reports an out-of-range functional option (a trace
	// sample rate above 1, negative service ticks, a negative probe
	// deadline). Every entry point taking options wraps it with the
	// offending option and value.
	ErrBadOption = errors.New("bad option")
	// ErrShardUnsupported reports a feature combination the sharded
	// runtime (WithShards > 1) refuses: service ticks, platform-parallel
	// mode, tracing, or a windowed matcher.
	ErrShardUnsupported = platform.ErrShardUnsupported
	// ErrShardReach reports a worker radius exceeding the sharded
	// runtime's reach bound (WithShardReach or the stream-derived max).
	ErrShardReach = platform.ErrShardReach
)

// Re-exported domain types. The full type definitions live in
// internal/core; these aliases are the supported public surface.
type (
	// Request is a user request r = <t, l, v> (Definition 2.1).
	Request = core.Request
	// Worker is a crowd worker w = <t, l, rad> (Definitions 2.2/2.3).
	Worker = core.Worker
	// Stream is a time-ordered sequence of worker and request arrivals.
	Stream = core.Stream
	// Assignment pairs a request with the worker serving it.
	Assignment = core.Assignment
	// Matching is a validated set of assignments with revenue accounting.
	Matching = core.Matching
	// PlatformID identifies a spatial crowdsourcing platform.
	PlatformID = core.PlatformID
	// Time is a discrete arrival tick.
	Time = core.Time
	// SimResult is the outcome of a SimulateContext run.
	SimResult = platform.Result
	// OfflineResult is the outcome of the OFF baseline.
	OfflineResult = platform.OfflineResult
	// Metrics is a race-free counter/latency collector; attach one with
	// WithMetrics and read it with Snapshot after (or during) runs.
	Metrics = metrics.Collector
	// PricingStats aggregates the COM matchers' pricing-quoter counters
	// over a run: quote counts per entry point, acceptance-probability
	// evaluations with the fraction served from the per-shard payment
	// cache, and Scratch reuse versus allocation. Read it from
	// Metrics.Snapshot().Pricing (attach the collector with WithMetrics).
	PricingStats = metrics.PricingStats
	// Preset describes one of the paper's Table III dataset substitutes.
	Preset = workload.Preset
	// FaultPlan describes deterministic cooperation faults (latency
	// spikes, dropped probes, transient claim errors, scheduled platform
	// outages) plus the retry and circuit-breaker policy that contains
	// them; attach one with WithFaultPlan.
	FaultPlan = fault.Plan
	// FaultOutage schedules a whole-platform outage window on the
	// stream timeline inside a FaultPlan.
	FaultOutage = fault.Outage
	// FaultRetryPolicy bounds each cooperative probe or claim call:
	// attempts, capped exponential backoff and a virtual deadline.
	FaultRetryPolicy = fault.RetryPolicy
	// FaultBreakerConfig tunes the per-platform circuit breakers.
	FaultBreakerConfig = fault.BreakerConfig
	// Tracer records per-request decision spans (stage timings, outcome,
	// payment, injected faults) into bounded per-platform ring buffers;
	// attach one with WithTracer and export with its Spans method,
	// trace.WriteJSONL / trace.WriteChromeTrace, or aggregate with its
	// Report method.
	Tracer = trace.Tracer
	// TraceOptions configures NewTracer: ring capacity per platform,
	// sampling rate and sampling seed.
	TraceOptions = trace.Options
	// TraceSpan is one traced request decision.
	TraceSpan = trace.Span
	// TraceReport is the per-algorithm per-stage latency aggregation of a
	// tracer's retained spans.
	TraceReport = trace.Report
)

// ParseFaultPlan parses the textual fault-plan specification used by
// combench's -faults flag (e.g. "drop=0.1,latency=0.2:1ms-10ms,
// outage=2@100-300"); see the internal/fault documentation and
// EXPERIMENTS.md "Fault model & degradation" for the full grammar.
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.ParsePlan(spec) }

// NewMetrics returns an empty collector ready to share across
// concurrent simulations.
func NewMetrics() *Metrics { return metrics.New() }

// NewTracer returns a decision tracer ready to share across concurrent
// simulations (see WithTracer). The zero Options trace every request
// into rings of trace.DefaultCapacity spans per platform.
func NewTracer(opts TraceOptions) *Tracer { return trace.New(opts) }

// Presets lists the supported Table III dataset presets in the order
// the paper reports them (Tables V-VII).
func Presets() []Preset { return workload.Presets() }

// NewStream validates and time-orders arrival events built from workers
// and requests.
func NewStream(workers []*Worker, requests []*Request) (*Stream, error) {
	return core.NewStream(append(core.WorkerEvents(workers), core.RequestEvents(requests)...))
}

// ExampleStream returns the paper's running Example 1 (Fig. 3,
// Tables I-II) as a ready-made two-platform stream.
func ExampleStream() (*Stream, error) { return core.ExampleOneStream() }

// GenerateSynthetic builds a two-platform Table IV-style workload:
// totalRequests and totalWorkers split evenly between two cooperating
// platforms with complementary spatial skew, service radius rad (km),
// and value distribution "real" (log-normal) or "normal".
func GenerateSynthetic(totalRequests, totalWorkers int, rad float64, valueDist string, seed int64) (*Stream, error) {
	cfg, err := workload.Synthetic(totalRequests, totalWorkers, rad, valueDist)
	if err != nil {
		return nil, err
	}
	return workload.Generate(cfg, seed)
}

// presetFor resolves a Table III preset name, prefixing lookup failures
// with the package name; the returned error wraps ErrUnknownPreset.
func presetFor(name string) (workload.Preset, error) {
	p, err := workload.PresetFor(name)
	if err != nil {
		return workload.Preset{}, fmt.Errorf("crossmatch: %w", err)
	}
	return p, nil
}

// GenerateCity builds one of the paper's Table III dataset substitutes
// ("RDC10+RYC10", "RDC11+RYC11" or "RDX11+RYX11") at the given scale in
// (0, 1] of the paper's counts.
func GenerateCity(preset string, scale float64, seed int64) (*Stream, error) {
	p, err := presetFor(preset)
	if err != nil {
		return nil, err
	}
	cfg, err := p.Config(scale)
	if err != nil {
		return nil, err
	}
	return workload.Generate(cfg, seed)
}

// Option configures a SimulateContext run.
type Option func(*simConfig)

type simConfig struct {
	seed             int64
	disableCoop      bool
	serviceTicks     Time
	platformParallel bool
	metrics          *Metrics
	profileLabel     string
	faults           *FaultPlan
	probeDeadline    time.Duration
	tracer           *Tracer
	traceSample      float64
	pricingScan      bool
	batchWindow      Time
	batchDeadline    Time
	shards           int
	shardReach       float64
	shardStall       time.Duration
}

// algConfig lowers the option set into the per-algorithm factory knobs;
// the window fields only matter when the algorithm is windowed.
func algConfig(maxValue float64, opts []Option) platform.AlgConfig {
	var c simConfig
	for _, opt := range opts {
		opt(&c)
	}
	return platform.AlgConfig{MaxValue: maxValue, Window: c.batchWindow, Deadline: c.batchDeadline}
}

// platformConfig lowers the functional options into the runtime Config —
// the single mapping shared by SimulateContext, NewEngine and
// SimulateSource, so every entry point interprets the options
// identically. Out-of-range options are rejected with an error wrapping
// ErrBadOption rather than silently clamped.
func platformConfig(opts []Option) (platform.Config, error) {
	var c simConfig
	for _, opt := range opts {
		opt(&c)
	}
	switch {
	case c.traceSample > 1:
		return platform.Config{}, fmt.Errorf("crossmatch: %w: trace sample rate %v above 1", ErrBadOption, c.traceSample)
	case c.serviceTicks < 0:
		return platform.Config{}, fmt.Errorf("crossmatch: %w: service ticks %d negative", ErrBadOption, c.serviceTicks)
	case c.probeDeadline < 0:
		return platform.Config{}, fmt.Errorf("crossmatch: %w: probe deadline %v negative", ErrBadOption, c.probeDeadline)
	case c.shards < 0:
		return platform.Config{}, fmt.Errorf("crossmatch: %w: shard count %d negative", ErrBadOption, c.shards)
	case c.shardReach < 0:
		return platform.Config{}, fmt.Errorf("crossmatch: %w: shard reach %v negative", ErrBadOption, c.shardReach)
	case c.shardStall < 0:
		return platform.Config{}, fmt.Errorf("crossmatch: %w: shard stall timeout %v negative", ErrBadOption, c.shardStall)
	}
	return platform.Config{
		Seed:              c.seed,
		DisableCoop:       c.disableCoop,
		ServiceTicks:      c.serviceTicks,
		PlatformParallel:  c.platformParallel,
		Metrics:           c.metrics,
		ProfileLabel:      c.profileLabel,
		Faults:            c.faults,
		ProbeDeadline:     c.probeDeadline,
		Trace:             c.tracer,
		TraceSample:       c.traceSample,
		PricingScan:       c.pricingScan,
		Shards:            c.shards,
		ShardReach:        c.shardReach,
		ShardStallTimeout: c.shardStall,
	}, nil
}

// WithSeed roots all of the run's randomness; the same seed and stream
// give the same result.
func WithSeed(seed int64) Option {
	return func(c *simConfig) { c.seed = seed }
}

// WithCoopDisabled turns off cross-platform worker sharing, degrading
// the COM algorithms to TOTA (the Section III-D ablation).
func WithCoopDisabled() Option {
	return func(c *simConfig) { c.disableCoop = true }
}

// WithServiceTicks returns each worker to its waiting list that many
// ticks after an assignment (an engine-level extension; the paper's
// model instead encodes returns as fresh worker arrivals, which the
// generators produce).
func WithServiceTicks(ticks Time) Option {
	return func(c *simConfig) { c.serviceTicks = ticks }
}

// WithPlatformParallel runs every platform's event stream on its own
// goroutine, cooperating through the race-safe hub — the paper's
// deployment model of independent platform services. Matchings stay
// valid and revenue accounting exact, but results are no longer
// bit-reproducible for a fixed seed: cross-platform claim races resolve
// by scheduling. Leave unset for the deterministic sequential runtime.
func WithPlatformParallel() Option {
	return func(c *simConfig) { c.platformParallel = true }
}

// WithMetrics attaches a collector that tallies matches, rejections,
// acceptance probes and per-platform decision latencies. One collector
// may be shared by concurrent runs; pass nil to disable (the default).
func WithMetrics(m *Metrics) Option {
	return func(c *simConfig) { c.metrics = m }
}

// WithProfileLabel tags the run's goroutines with a pprof label so CPU
// profiles of concurrent simulations stay attributable.
func WithProfileLabel(label string) Option {
	return func(c *simConfig) { c.profileLabel = label }
}

// WithFaultPlan injects deterministic cooperation faults into the run:
// probes and claims against partner platforms suffer the plan's latency
// spikes, drops, transient claim errors and scheduled outages, retried
// under the plan's deadline/backoff policy, with a circuit breaker per
// partner so matching degrades gracefully to inner-only against a dark
// platform. Fault randomness is seeded (Plan.Seed, falling back to the
// run seed) and never touches matcher randomness: a nil plan — or no
// plan at all — keeps results bit-identical to a fault-free run.
func WithFaultPlan(p *FaultPlan) Option {
	return func(c *simConfig) { c.faults = p }
}

// WithProbeDeadline overrides the fault plan's virtual per-call
// deadline for cooperative probes and claims. Only meaningful together
// with WithFaultPlan.
func WithProbeDeadline(d time.Duration) Option {
	return func(c *simConfig) { c.probeDeadline = d }
}

// WithTracer records each traced request's decision as a span — stage
// timings (inner lookup, eligibility, pricing, probes, claim), outcome
// tag, payment, and any faults injected while the decision was in
// flight — into the tracer's bounded per-platform rings. Tracing never
// draws from matcher RNGs, so sequential results are bit-identical with
// tracing on or off. One tracer may be shared by concurrent runs; pass
// nil to disable (the default).
func WithTracer(t *Tracer) Option {
	return func(c *simConfig) { c.tracer = t }
}

// WithTraceSample overrides the tracer's sampling rate for this run: a
// rate in (0, 1] traces that fraction of requests, a negative rate
// disables tracing for this run, and zero (the default) inherits the
// tracer's configured rate. Only meaningful together with WithTracer.
func WithTraceSample(rate float64) Option {
	return func(c *simConfig) { c.traceSample = rate }
}

// WithBatchWindow sets BatchCOM's batching window in virtual ticks;
// non-positive (the default) selects DefaultBatchWindow. The greedy
// algorithms ignore it.
func WithBatchWindow(w Time) Option {
	return func(c *simConfig) { c.batchWindow = w }
}

// WithBatchDeadline caps how long BatchCOM may hold any single request,
// pulling its window flush forward when a buffered request would
// otherwise wait longer; non-positive (the default) leaves flushes on
// the window boundary. The greedy algorithms ignore it.
func WithBatchDeadline(d Time) Option {
	return func(c *simConfig) { c.batchDeadline = d }
}

// WithPricingTables switches the COM matchers' pricing quoter between
// the precomputed per-history CDF tables (true, the default) and the
// exact linear scan over raw history values (false). Both paths produce
// bit-identical quotes — the tables exist purely as a hot-path
// optimization — so this knob is an A/B guard for benchmarking and
// verification, not a behavioural switch. The choice is observable in
// PricingStats.TableHitRate.
func WithPricingTables(on bool) Option {
	return func(c *simConfig) { c.pricingScan = !on }
}

// WithShards partitions the matching state across n spatial shards,
// each running its own engine goroutine over the city cells the shared
// rendezvous hash assigns it; boundary-crossing requests and all
// cross-platform borrows go through the async claim protocol
// (propose → reserve → commit/abort on the per-worker claim words).
// n <= 1 (the default) selects the single-engine runtime; results for
// one shard are bit-identical to it, and for n > 1 deterministic for a
// fixed seed (cell-major, ID-canonical merge). The sharded runtime
// rejects WithServiceTicks, WithPlatformParallel, WithTracer and the
// windowed BatchCOM with platform.ErrShardUnsupported.
func WithShards(n int) Option {
	return func(c *simConfig) { c.shards = n }
}

// WithShardReach fixes the spatial radius (km) the shard partitioner
// assumes no worker exceeds, bounding which neighbouring shards a
// boundary request must claim against. Stream entry points derive it
// from the stream when unset and reject streams exceeding an explicit
// reach with platform.ErrShardReach; NewEngine has no stream to
// inspect, so a sharded engine requires it. Only meaningful with
// WithShards.
func WithShardReach(r float64) Option {
	return func(c *simConfig) { c.shardReach = r }
}

// WithShardStallTimeout arms a wall-clock watchdog on every cross-shard
// claim gate: a gate blocked longer than d degrades the boundary event
// (lagging target shards are skipped and their breakers notified)
// instead of waiting forever. Zero (the default) waits indefinitely,
// which preserves bit-determinism; a positive timeout trades that for
// liveness under shard stalls. Only meaningful with WithShards.
func WithShardStallTimeout(d time.Duration) Option {
	return func(c *simConfig) { c.shardStall = d }
}

// SimulateContext runs the named online algorithm over the stream, one
// matcher per platform, cooperating through a shared hub. The context
// cancels mid-stream: the run stops between arrival events and returns
// the partial result alongside an error wrapping ctx.Err().
func SimulateContext(ctx context.Context, stream *Stream, algorithm string, opts ...Option) (*SimResult, error) {
	factory, err := platform.FactoryConfigured(algorithm, algConfig(stream.MaxValue(), opts))
	if err != nil {
		return nil, fmt.Errorf("crossmatch: %w", err)
	}
	cfg, err := platformConfig(opts)
	if err != nil {
		return nil, err
	}
	return platform.RunContext(ctx, stream, factory, cfg)
}

// SimOptions configures Simulate.
//
// Deprecated: use SimulateContext with WithSeed, WithCoopDisabled and
// WithServiceTicks.
type SimOptions struct {
	// Seed drives all randomness; same seed + stream = same result.
	Seed int64
	// DisableCoop turns off cross-platform worker sharing, degrading
	// the COM algorithms to TOTA.
	DisableCoop bool
	// ServiceTicks, when positive, returns each worker to its waiting
	// list that many ticks after an assignment (an engine-level
	// extension; the paper's model instead encodes returns as fresh
	// worker arrivals, which the generators produce).
	ServiceTicks Time
}

// Simulate runs the named online algorithm over the stream.
//
// Deprecated: use SimulateContext, which adds cancellation, functional
// options and metrics collection. Simulate remains as a thin wrapper
// and behaves identically for the same inputs.
func Simulate(stream *Stream, algorithm string, opts SimOptions) (*SimResult, error) {
	options := []Option{WithSeed(opts.Seed), WithServiceTicks(opts.ServiceTicks)}
	if opts.DisableCoop {
		options = append(options, WithCoopDisabled())
	}
	return SimulateContext(context.Background(), stream, algorithm, options...)
}

// Serving seam: the incremental engine behind the live matching
// service (cmd/comserve). Where SimulateContext consumes a pre-built
// Stream, these entry points accept arrivals one at a time — from a
// socket, a queue, a generator — under the same determinism contract:
// feeding a validated stream's events in order reproduces
// SimulateContext bit for bit.
type (
	// Event is one arrival (worker or request) on the virtual timeline.
	Event = core.Event
	// EventKind discriminates worker from request arrivals.
	EventKind = core.EventKind
	// MatchEngine is the incremental runtime: one Process call per
	// arrival event, decisions returned synchronously, Finish for the
	// accumulated result. Single-goroutine: exactly one caller may drive
	// it (see platform.Engine).
	MatchEngine = platform.Engine
	// EngineDecision is the serving-facing outcome of one request
	// arrival: who served it, at what payment, and why.
	EngineDecision = platform.RequestDecision
	// ArrivalSource yields arrival events one at a time; Next returns
	// io.EOF when exhausted. SimulateSource pulls a whole run from one.
	ArrivalSource = platform.EventSource
)

// Event kinds.
const (
	WorkerArrival  = core.WorkerArrival
	RequestArrival = core.RequestArrival
)

// Engine lifecycle errors; match with errors.Is.
var (
	// ErrEngineClosed reports a MatchEngine driven after Finish.
	ErrEngineClosed = platform.ErrEngineClosed
	// ErrTimeRegression reports an event fed out of time order.
	ErrTimeRegression = platform.ErrTimeRegression
)

// NewEngine builds an incremental matching engine for the named
// algorithm over the given platform set (ascending IDs for parity with
// stream runs). maxValue is the a-priori max request value Umax the
// threshold algorithms (RamCOM, Greedy-RT) assume known; TOTA and
// DemCOM ignore it. The usual options apply; WithPlatformParallel is
// meaningless here (the engine is single-goroutine by contract) and is
// ignored.
func NewEngine(pids []PlatformID, algorithm string, maxValue float64, opts ...Option) (*MatchEngine, error) {
	factory, err := platform.FactoryConfigured(algorithm, algConfig(maxValue, opts))
	if err != nil {
		return nil, fmt.Errorf("crossmatch: %w", err)
	}
	cfg, err := platformConfig(opts)
	if err != nil {
		return nil, err
	}
	cfg.PlatformParallel = false
	eng, err := platform.NewEngine(pids, factory, cfg)
	if err != nil {
		return nil, fmt.Errorf("crossmatch: %w", err)
	}
	return eng, nil
}

// StreamArrivals adapts a pre-built stream to an ArrivalSource;
// SimulateSource over it reproduces SimulateContext on the same stream.
func StreamArrivals(s *Stream) ArrivalSource { return platform.StreamSource(s) }

// SimulateSource runs the named algorithm over arrivals pulled from an
// ArrivalSource — SimulateContext for callers whose events materialize
// over time. The source's platform set and max value cannot be derived
// up front, so both are explicit. Cancellation mirrors SimulateContext:
// the run stops at the next event boundary and returns the partial
// result alongside an error wrapping ctx.Err().
func SimulateSource(ctx context.Context, pids []PlatformID, algorithm string, maxValue float64, src ArrivalSource, opts ...Option) (*SimResult, error) {
	factory, err := platform.FactoryConfigured(algorithm, algConfig(maxValue, opts))
	if err != nil {
		return nil, fmt.Errorf("crossmatch: %w", err)
	}
	cfg, err := platformConfig(opts)
	if err != nil {
		return nil, err
	}
	cfg.PlatformParallel = false
	return platform.RunSource(ctx, pids, factory, src, cfg)
}

// Offline computes the OFF baseline: the offline optimum of COM as an
// exact maximum-weight bipartite matching (Section II-B).
func Offline(stream *Stream) (*OfflineResult, error) {
	return platform.Offline(stream, platform.SolverAuto)
}

// ReproduceTable regenerates one of the paper's Tables V-VII for the
// named dataset preset at the given scale; see EXPERIMENTS.md for the
// published runs. The returned result renders with .Table().
func ReproduceTable(preset string, scale float64, seed int64) (*experiments.TableResult, error) {
	p, err := presetFor(preset)
	if err != nil {
		return nil, err
	}
	return experiments.RunTable(p, experiments.TableOptions{Scale: scale, Seed: seed})
}
