package crossmatch

import (
	"fmt"

	"crossmatch/internal/core"
	"crossmatch/internal/experiments"
	"crossmatch/internal/platform"
	"crossmatch/internal/workload"
)

// Algorithm names accepted by Simulate.
const (
	// TOTA is the single-platform online greedy baseline [9].
	TOTA = platform.AlgTOTA
	// GreedyRT is the randomized-threshold baseline of [9].
	GreedyRT = platform.AlgGreedyRT
	// DemCOM is the deterministic cross online matching of Algorithm 1.
	DemCOM = platform.AlgDemCOM
	// RamCOM is the randomized cross online matching of Algorithm 3.
	RamCOM = platform.AlgRamCOM
)

// Re-exported domain types. The full type definitions live in
// internal/core; these aliases are the supported public surface.
type (
	// Request is a user request r = <t, l, v> (Definition 2.1).
	Request = core.Request
	// Worker is a crowd worker w = <t, l, rad> (Definitions 2.2/2.3).
	Worker = core.Worker
	// Stream is a time-ordered sequence of worker and request arrivals.
	Stream = core.Stream
	// Assignment pairs a request with the worker serving it.
	Assignment = core.Assignment
	// Matching is a validated set of assignments with revenue accounting.
	Matching = core.Matching
	// PlatformID identifies a spatial crowdsourcing platform.
	PlatformID = core.PlatformID
	// Time is a discrete arrival tick.
	Time = core.Time
	// SimResult is the outcome of a Simulate run.
	SimResult = platform.Result
	// OfflineResult is the outcome of the OFF baseline.
	OfflineResult = platform.OfflineResult
)

// NewStream validates and time-orders arrival events built from workers
// and requests.
func NewStream(workers []*Worker, requests []*Request) (*Stream, error) {
	return core.NewStream(append(core.WorkerEvents(workers), core.RequestEvents(requests)...))
}

// ExampleStream returns the paper's running Example 1 (Fig. 3,
// Tables I-II) as a ready-made two-platform stream.
func ExampleStream() (*Stream, error) { return core.ExampleOneStream() }

// GenerateSynthetic builds a two-platform Table IV-style workload:
// totalRequests and totalWorkers split evenly between two cooperating
// platforms with complementary spatial skew, service radius rad (km),
// and value distribution "real" (log-normal) or "normal".
func GenerateSynthetic(totalRequests, totalWorkers int, rad float64, valueDist string, seed int64) (*Stream, error) {
	cfg, err := workload.Synthetic(totalRequests, totalWorkers, rad, valueDist)
	if err != nil {
		return nil, err
	}
	return workload.Generate(cfg, seed)
}

// GenerateCity builds one of the paper's Table III dataset substitutes
// ("RDC10+RYC10", "RDC11+RYC11" or "RDX11+RYX11") at the given scale in
// (0, 1] of the paper's counts.
func GenerateCity(preset string, scale float64, seed int64) (*Stream, error) {
	p, ok := workload.PresetByName(preset)
	if !ok {
		return nil, fmt.Errorf("crossmatch: unknown preset %q (want one of %v)", preset, workload.PresetNames())
	}
	cfg, err := p.Config(scale)
	if err != nil {
		return nil, err
	}
	return workload.Generate(cfg, seed)
}

// SimOptions configures Simulate.
type SimOptions struct {
	// Seed drives all randomness; same seed + stream = same result.
	Seed int64
	// DisableCoop turns off cross-platform worker sharing, degrading
	// the COM algorithms to TOTA.
	DisableCoop bool
	// ServiceTicks, when positive, returns each worker to its waiting
	// list that many ticks after an assignment (an engine-level
	// extension; the paper's model instead encodes returns as fresh
	// worker arrivals, which the generators produce).
	ServiceTicks Time
}

// Simulate runs the named online algorithm over the stream, one matcher
// per platform, cooperating through a shared hub.
func Simulate(stream *Stream, algorithm string, opts SimOptions) (*SimResult, error) {
	factory, ok := platform.FactoryByName(algorithm, stream.MaxValue())
	if !ok {
		return nil, fmt.Errorf("crossmatch: unknown algorithm %q (want %s, %s, %s or %s)",
			algorithm, TOTA, GreedyRT, DemCOM, RamCOM)
	}
	return platform.Run(stream, factory, platform.Config{
		Seed:         opts.Seed,
		DisableCoop:  opts.DisableCoop,
		ServiceTicks: opts.ServiceTicks,
	})
}

// Offline computes the OFF baseline: the offline optimum of COM as an
// exact maximum-weight bipartite matching (Section II-B).
func Offline(stream *Stream) (*OfflineResult, error) {
	return platform.Offline(stream, platform.SolverAuto)
}

// ReproduceTable regenerates one of the paper's Tables V-VII for the
// named dataset preset at the given scale; see EXPERIMENTS.md for the
// published runs. The returned result renders with .Table().
func ReproduceTable(preset string, scale float64, seed int64) (*experiments.TableResult, error) {
	p, ok := workload.PresetByName(preset)
	if !ok {
		return nil, fmt.Errorf("crossmatch: unknown preset %q (want one of %v)", preset, workload.PresetNames())
	}
	return experiments.RunTable(p, experiments.TableOptions{Scale: scale, Seed: seed})
}
