package crossmatch

import (
	"context"
	"errors"
	"testing"

	"crossmatch/internal/geo"
)

// TestNewEngineMatchesSimulate drives the public incremental engine
// with a stream's events and expects the SimulateContext result.
func TestNewEngineMatchesSimulate(t *testing.T) {
	stream, err := GenerateSynthetic(200, 150, 1.0, "real", 42)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SimulateContext(context.Background(), stream, DemCOM, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(stream.Platforms(), DemCOM, stream.MaxValue(), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	var decided, served int
	for _, ev := range stream.Events() {
		d, err := eng.Process(ev)
		if err != nil {
			t.Fatalf("Process: %v", err)
		}
		if ev.Kind == RequestArrival {
			decided++
			if d.Served {
				served++
			}
		}
	}
	got, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalRevenue() != want.TotalRevenue() || got.TotalServed() != want.TotalServed() {
		t.Fatalf("engine revenue/served %v/%d, simulate %v/%d",
			got.TotalRevenue(), got.TotalServed(), want.TotalRevenue(), want.TotalServed())
	}
	if served != want.TotalServed() || decided != len(stream.Requests()) {
		t.Fatalf("per-decision accounting: served %d of %d, want %d of %d",
			served, decided, want.TotalServed(), len(stream.Requests()))
	}

	// Closed-engine contract.
	if _, err := eng.Finish(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("second Finish: %v", err)
	}
	if _, err := eng.Process(Event{}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Process after Finish: %v", err)
	}
}

// TestSimulateSourceMatchesSimulate checks the pull-based entry point
// against the stream-based one.
func TestSimulateSourceMatchesSimulate(t *testing.T) {
	stream, err := GenerateSynthetic(150, 100, 1.0, "real", 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SimulateContext(context.Background(), stream, RamCOM, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateSource(context.Background(), stream.Platforms(), RamCOM,
		stream.MaxValue(), StreamArrivals(stream), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalRevenue() != want.TotalRevenue() || got.TotalServed() != want.TotalServed() {
		t.Fatalf("source revenue/served %v/%d, simulate %v/%d",
			got.TotalRevenue(), got.TotalServed(), want.TotalRevenue(), want.TotalServed())
	}
}

func TestNewEngineUnknownAlgorithm(t *testing.T) {
	if _, err := NewEngine([]PlatformID{1}, "Magic", 0); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("want ErrUnknownAlgorithm, got %v", err)
	}
}

func TestEngineTimeRegressionPublic(t *testing.T) {
	eng, err := NewEngine([]PlatformID{1}, TOTA, 0)
	if err != nil {
		t.Fatal(err)
	}
	w1 := &Worker{ID: 1, Arrival: 5, Loc: geo.Point{X: 0.5, Y: 0.5}, Radius: 1, Platform: 1}
	if _, err := eng.Process(Event{Kind: WorkerArrival, Time: 5, Worker: w1}); err != nil {
		t.Fatal(err)
	}
	w2 := &Worker{ID: 2, Arrival: 3, Loc: geo.Point{X: 0.5, Y: 0.5}, Radius: 1, Platform: 1}
	if _, err := eng.Process(Event{Kind: WorkerArrival, Time: 3, Worker: w2}); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("want ErrTimeRegression, got %v", err)
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchCOMPublicAPI: the windowed algorithm through the public
// surface — BatchCOM with WithBatchWindow/WithBatchDeadline runs
// deterministically, and the incremental engine reproduces
// SimulateContext bit for bit, deferred flush decisions included.
func TestBatchCOMPublicAPI(t *testing.T) {
	stream, err := GenerateSynthetic(200, 150, 1.0, "real", 42)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{WithSeed(42), WithBatchWindow(5), WithBatchDeadline(3)}
	want, err := SimulateContext(context.Background(), stream, BatchCOM, opts...)
	if err != nil {
		t.Fatal(err)
	}
	again, err := SimulateContext(context.Background(), stream, BatchCOM, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if want.TotalRevenue() != again.TotalRevenue() || want.TotalServed() != again.TotalServed() {
		t.Fatalf("BatchCOM not deterministic: %v/%d vs %v/%d",
			want.TotalRevenue(), want.TotalServed(), again.TotalRevenue(), again.TotalServed())
	}

	eng, err := NewEngine(stream.Platforms(), BatchCOM, stream.MaxValue(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	var deferred, flushed int
	eng.SetDecisionHandler(func(d EngineDecision) {
		flushed++
		if d.At < d.Request.Arrival {
			t.Errorf("flush decision before arrival: %+v", d)
		}
	})
	for _, ev := range stream.Events() {
		d, err := eng.Process(ev)
		if err != nil {
			t.Fatalf("Process: %v", err)
		}
		if ev.Kind == RequestArrival && d.Deferred {
			deferred++
		}
	}
	got, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalRevenue() != want.TotalRevenue() || got.TotalServed() != want.TotalServed() {
		t.Fatalf("engine revenue/served %v/%d, simulate %v/%d",
			got.TotalRevenue(), got.TotalServed(), want.TotalRevenue(), want.TotalServed())
	}
	if deferred == 0 || flushed != deferred {
		t.Fatalf("window bookkeeping: %d deferred, %d flushed (want equal, non-zero)", deferred, flushed)
	}
}
