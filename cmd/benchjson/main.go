// Command benchjson converts `go test -bench` output into the stable
// JSON document of internal/benchfmt, for checking benchmark numbers
// into the repository and for machine comparison across commits. It
// reads the benchmark text from stdin and writes one JSON object:
// environment header fields plus one entry per benchmark with ns/op,
// B/op, allocs/op and any custom ReportMetric units.
//
// The -label flag names the snapshot: it is stamped into the document
// ("label" field) and, when -out is not given, into the output file
// name BENCH_<label>.json (e.g. -label PR5 writes BENCH_PR5.json).
// Without either flag the JSON goes to stdout.
//
// Usage:
//
//	go test -run '^$' -bench 'Table|TraceOverhead' -benchmem . | benchjson -label PR5
//	go test -run '^$' -bench . -benchmem . | benchjson -out BENCH.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crossmatch/internal/benchfmt"
)

func main() {
	out := flag.String("out", "", "write JSON here (overrides the -label file name); empty with no -label writes stdout")
	label := flag.String("label", "", "snapshot label stamped into the document and, without -out, the file name BENCH_<label>.json")
	flag.Parse()
	if err := run(*out, *label); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(out, label string) error {
	if label != "" && strings.ContainsAny(label, "/\\ ") {
		return fmt.Errorf("label %q must not contain path separators or spaces", label)
	}
	rep, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		return fmt.Errorf("%v (pipe `go test -bench` output in)", err)
	}
	rep.Label = label
	if out == "" && label != "" {
		out = "BENCH_" + label + ".json"
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", out)
	}
	return rep.WriteJSON(w)
}
