// Command benchjson converts `go test -bench` output into a stable JSON
// document for checking benchmark numbers into the repository and for
// machine comparison across commits (e.g. BENCH_PR4.json, emitted by
// `make bench-json`). It reads the benchmark text from stdin and writes
// one JSON object: environment header fields plus one entry per
// benchmark with ns/op, B/op, allocs/op and any custom ReportMetric
// units.
//
// Usage:
//
//	go test -run '^$' -bench 'Table|TraceOverhead' -benchmem . | benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}
	sort.SliceStable(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

// parseLine parses one result line:
//
//	BenchmarkName-8  10  118866999 ns/op  19828373 B/op  21541 allocs/op  0.029 DemCOM-rev
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, fmt.Errorf("short benchmark line: %q", line)
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix so names compare across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad run count in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value %q in %q: %w", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}
