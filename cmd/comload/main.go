// Command comload is the closed-loop load generator for comserve: it
// replays a workload stream against the serving endpoints at a target
// event rate, measures client-side latency quantiles and shed rate,
// and prints (or writes) a JSON report in the benchfmt schema shared
// with cmd/benchjson — so serving runs land next to the offline
// benchmark snapshots.
//
// Usage:
//
//	comload -url http://127.0.0.1:8080 -requests 2000 -workers 400 -qps 500
//	comload -url http://127.0.0.1:8080 -in stream.csv -qps 0 -conns 16
//	comload -url ... -in stream.csv -retries 50 -min-matched 1   # CI smoke
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/serve"
	"crossmatch/internal/workload"
)

type options struct {
	url        string
	in         string
	requests   int
	workers    int
	rad        float64
	dist       string
	seed       int64
	qps        float64
	conns      int
	batch      int
	timeout    time.Duration
	retries    int
	unavailRet int
	coalesce   bool
	label      string
	out        string
	minMatched int64
}

func main() {
	var o options
	flag.StringVar(&o.url, "url", "http://127.0.0.1:8080", "comserve base URL")
	flag.StringVar(&o.in, "in", "", "read the workload from a comgen CSV instead of generating")
	flag.IntVar(&o.requests, "requests", 1000, "total requests (synthetic workload)")
	flag.IntVar(&o.workers, "workers", 200, "total workers (synthetic workload)")
	flag.Float64Var(&o.rad, "rad", 1.0, "service radius, km (synthetic workload)")
	flag.StringVar(&o.dist, "dist", "real", "value distribution: real or normal")
	flag.Int64Var(&o.seed, "seed", 42, "workload generation seed")
	flag.Float64Var(&o.qps, "qps", 0, "target event dispatch rate, events/s (0 = as fast as possible)")
	flag.IntVar(&o.conns, "conns", 0, "concurrent connections (default GOMAXPROCS)")
	flag.IntVar(&o.batch, "batch", 1, "events per NDJSON POST (consecutive same-kind arrivals)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-call HTTP timeout")
	flag.IntVar(&o.retries, "retries", 0, "retries per shed event, sleeping the server's retry hint (replay servers need this)")
	flag.IntVar(&o.unavailRet, "unavail-retries", 0, "separate retry budget per 503-class event (draining/recovering/dark shard); fleet chaos runs need this to ride out a shard's WAL recovery")
	flag.BoolVar(&o.coalesce, "coalesce", false, "fill batches with same-kind events across kind interleavings (per-kind order kept; use against replay/idempotent servers)")
	flag.StringVar(&o.label, "label", "", "stamp the report with this label (benchfmt document)")
	flag.StringVar(&o.out, "out", "", "write the JSON report here instead of stdout")
	flag.Int64Var(&o.minMatched, "min-matched", -1, "exit non-zero unless at least this many requests matched (CI smoke assertion; -1 disables)")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintf(os.Stderr, "comload: %v\n", err)
		os.Exit(1)
	}
}

func loadStream(o options) (*core.Stream, error) {
	if o.in != "" {
		f, err := os.Open(o.in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadCSV(f)
	}
	cfg, err := workload.Synthetic(o.requests, o.workers, o.rad, o.dist)
	if err != nil {
		return nil, err
	}
	return workload.Generate(cfg, o.seed)
}

func sortedShardNames(m map[string]*serve.ShardLoad) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// report is the JSON document comload writes: the client-side load
// report plus the benchfmt rendering of its headline metrics.
type report struct {
	Label string            `json:"label,omitempty"`
	URL   string            `json:"url"`
	Load  *serve.LoadReport `json:"load"`
}

func run(w io.Writer, o options) error {
	stream, err := loadStream(o)
	if err != nil {
		return err
	}
	rep, err := serve.RunLoad(context.Background(), serve.LoadOptions{
		URL:            o.url,
		Stream:         stream,
		QPS:            o.qps,
		Conns:          o.conns,
		Batch:          o.batch,
		Timeout:        o.timeout,
		Retries:        o.retries,
		UnavailRetries: o.unavailRet,
		Coalesce:       o.coalesce,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr,
		"comload: %d events in %.0fms (%.0f ev/s): %d ok, %d resumed, %d shed (rate %.3f), %d unavailable, %d dropped, %d failed; matched %d, revenue %.1f; p50 %.2fms p90 %.2fms p99 %.2fms\n",
		rep.Events, rep.WallMs, rep.QPS, rep.OK, rep.Resumed, rep.Shed, rep.ShedRate, rep.Unavailable, rep.Dropped, rep.Failed,
		rep.Matched, rep.Revenue, rep.P50Ms, rep.P90Ms, rep.P99Ms)
	for _, name := range sortedShardNames(rep.Shards) {
		sl := rep.Shards[name]
		fmt.Fprintf(os.Stderr,
			"comload: shard %s: %d ok, %d shed, %d unavailable, %d resumed; matched %d, revenue %.1f; p50 %.2fms p99 %.2fms\n",
			name, sl.OK, sl.Shed, sl.Unavailable, sl.Resumed, sl.Matched, sl.Revenue, sl.P50Ms, sl.P99Ms)
	}

	out := w
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
		fmt.Fprintf(os.Stderr, "comload: wrote %s\n", o.out)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report{Label: o.label, URL: o.url, Load: rep}); err != nil {
		return err
	}

	if o.minMatched >= 0 && rep.Matched < o.minMatched {
		return fmt.Errorf("matched %d requests, need at least %d", rep.Matched, o.minMatched)
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d events failed (transport or server errors)", rep.Failed)
	}
	return nil
}
