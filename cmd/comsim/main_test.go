package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossmatch/internal/workload"
)

func TestRunSynthetic(t *testing.T) {
	var buf bytes.Buffer
	o := options{alg: "DemCOM", requests: 150, workers: 30, rad: 1.0, dist: "real", seed: 7}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DemCOM over", "Platform", "total revenue"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithOffBound(t *testing.T) {
	var buf bytes.Buffer
	o := options{alg: "TOTA", requests: 100, workers: 20, rad: 1.0, dist: "real", seed: 7, withOff: true}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "OFF upper bound") {
		t.Error("OFF bound missing")
	}
}

func TestRunPreset(t *testing.T) {
	var buf bytes.Buffer
	o := options{alg: "RamCOM", preset: "RDC11+RYC11", scale: 0.002, seed: 7}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "RamCOM over") {
		t.Error("header missing")
	}
}

func TestRunFromCSV(t *testing.T) {
	cfg, err := workload.Synthetic(80, 16, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.Generate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteCSV(f, stream); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run(&buf, options{alg: "TOTA", in: path, seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "80 requests") {
		t.Errorf("unexpected output:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{alg: "Nope", requests: 10, workers: 5, rad: 1, dist: "real"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(&buf, options{alg: "TOTA", preset: "Nope"}); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run(&buf, options{alg: "TOTA", in: "/does/not/exist.csv"}); err == nil {
		t.Error("missing CSV accepted")
	}
	if err := run(&buf, options{alg: "TOTA", requests: 10, workers: 5, rad: 1, dist: "weird"}); err == nil {
		t.Error("bad distribution accepted")
	}
}

func TestRunNoCoopFlag(t *testing.T) {
	var coop, noCoop bytes.Buffer
	base := options{alg: "DemCOM", requests: 200, workers: 30, rad: 1.0, dist: "real", seed: 5}
	if err := run(&coop, base); err != nil {
		t.Fatal(err)
	}
	nc := base
	nc.noCoop = true
	if err := run(&noCoop, nc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(noCoop.String(), "cooperative: 0") {
		t.Errorf("nocoop run still cooperated:\n%s", noCoop.String())
	}
}

func TestRunEnsembleFlag(t *testing.T) {
	var buf bytes.Buffer
	o := options{alg: "RamCOM", requests: 200, workers: 40, rad: 1.0, dist: "real", seed: 3, ensemble: 4, withOff: true}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"RamCOM over 4 seeds", "revenue", "OFF upper bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("ensemble output missing %q:\n%s", want, out)
		}
	}
}
