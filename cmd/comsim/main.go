// Command comsim runs a single cross-online-matching simulation and
// prints per-platform results: revenue, completed/cooperative requests,
// acceptance ratio, payment rate and decision latency.
//
// Usage:
//
//	comsim -alg DemCOM -requests 2500 -workers 500
//	comsim -alg RamCOM -preset RDC10+RYC10 -scale 0.02
//	comsim -alg TOTA -in stream.csv
//	comsim -alg DemCOM -requests 1000 -workers 200 -off   # also print OFF
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"crossmatch/internal/core"
	"crossmatch/internal/platform"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

type options struct {
	alg      string
	requests int
	workers  int
	rad      float64
	dist     string
	preset   string
	scale    float64
	in       string
	seed     int64
	noCoop   bool
	withOff  bool
	ensemble int
}

func main() {
	var o options
	flag.StringVar(&o.alg, "alg", platform.AlgDemCOM, "algorithm: TOTA, Greedy-RT, DemCOM or RamCOM")
	flag.IntVar(&o.requests, "requests", 2500, "total requests (synthetic workload)")
	flag.IntVar(&o.workers, "workers", 500, "total physical workers (synthetic workload)")
	flag.Float64Var(&o.rad, "rad", 1.0, "service radius, km")
	flag.StringVar(&o.dist, "dist", "real", "value distribution: real or normal")
	flag.StringVar(&o.preset, "preset", "", "Table III preset (overrides synthetic flags)")
	flag.Float64Var(&o.scale, "scale", 0.05, "preset scale in (0,1]")
	flag.StringVar(&o.in, "in", "", "read the stream from a comgen CSV instead of generating")
	flag.Int64Var(&o.seed, "seed", 42, "random seed")
	flag.BoolVar(&o.noCoop, "nocoop", false, "disable cross-platform cooperation")
	flag.BoolVar(&o.withOff, "off", false, "also compute the OFF upper bound")
	flag.IntVar(&o.ensemble, "ensemble", 0, "run this many seeds in parallel and report mean +/- spread instead of one run")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		switch {
		case errors.Is(err, platform.ErrUnknownAlgorithm), errors.Is(err, workload.ErrUnknownPreset):
			fmt.Fprintf(os.Stderr, "comsim: %v\nrun 'comsim -h' for the accepted values\n", err)
		default:
			fmt.Fprintf(os.Stderr, "comsim: %v\n", err)
		}
		os.Exit(1)
	}
}

func loadStream(o options) (*core.Stream, error) {
	if o.in != "" {
		f, err := os.Open(o.in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadCSV(f)
	}
	var cfg workload.Config
	var err error
	if o.preset != "" {
		p, perr := workload.PresetFor(o.preset)
		if perr != nil {
			return nil, perr
		}
		cfg, err = p.Config(o.scale)
	} else {
		cfg, err = workload.Synthetic(o.requests, o.workers, o.rad, o.dist)
	}
	if err != nil {
		return nil, err
	}
	return workload.Generate(cfg, o.seed)
}

func run(w io.Writer, o options) error {
	stream, err := loadStream(o)
	if err != nil {
		return err
	}
	factory, err := platform.FactoryFor(o.alg, stream.MaxValue())
	if err != nil {
		return err
	}
	if o.ensemble > 1 {
		return runEnsemble(w, o, stream, factory)
	}
	res, err := platform.Run(stream, factory, platform.Config{Seed: o.seed, DisableCoop: o.noCoop})
	if err != nil {
		return err
	}
	if err := res.Validate(); err != nil {
		return fmt.Errorf("invalid result: %w", err)
	}

	fmt.Fprintf(w, "%s over %d events (%d requests, %d worker arrivals)\n",
		o.alg, stream.Len(), len(stream.Requests()), len(stream.Workers()))
	tb := stats.NewTable("", "Platform", "Revenue", "Served", "Inner", "Coop", "AcpRt", "v'/v", "Mean resp", "p95 resp")
	for _, pid := range stream.Platforms() {
		pr := res.Platforms[pid]
		if pr == nil {
			continue
		}
		s := pr.Stats
		acp, pay := stats.Dash, stats.Dash
		if s.CoopAttempted > 0 {
			acp = stats.FormatFloat(s.AcceptanceRatio(), 2)
		}
		if s.ServedOuter > 0 {
			pay = stats.FormatFloat(s.MeanPaymentRate(), 2)
		}
		tb.Add(fmt.Sprint(pid),
			stats.FormatFloat(s.Revenue, 1),
			stats.FormatCount(s.Served),
			stats.FormatCount(s.ServedInner),
			stats.FormatCount(s.ServedOuter),
			acp, pay,
			stats.FormatMillis(pr.MeanResponse()),
			stats.FormatMillis(pr.Latency.Percentile(0.95)))
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "total revenue: %.1f, served: %d, cooperative: %d\n",
		res.TotalRevenue(), res.TotalServed(), res.CooperativeServed())

	if o.withOff {
		off, err := platform.Offline(stream, platform.SolverAuto)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "OFF upper bound: %.1f revenue, %d served (online/OFF = %.3f)\n",
			off.TotalWeight, off.TotalServed, res.TotalRevenue()/off.TotalWeight)
	}
	return nil
}

// runEnsemble reports mean and spread over o.ensemble parallel seeds.
func runEnsemble(w io.Writer, o options, stream *core.Stream, factory platform.MatcherFactory) error {
	seeds := make([]int64, o.ensemble)
	for i := range seeds {
		seeds[i] = o.seed + int64(i)*7211
	}
	results, err := platform.RunEnsemble(
		func(int64) (*core.Stream, error) { return stream, nil },
		factory, platform.Config{DisableCoop: o.noCoop}, seeds, 0)
	if err != nil {
		return err
	}
	s, err := platform.Summarize(results)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s over %d seeds: revenue %.1f (min %.1f, max %.1f, +/-%.1f%%), served %.1f, cooperative %.1f, AcpRt %.2f, v'/v %.2f\n",
		o.alg, s.Runs, s.MeanRevenue, s.MinRevenue, s.MaxRevenue, 100*s.RevenueStdDevFrac,
		s.MeanServed, s.MeanCooperative, s.MeanAcceptance, s.MeanPaymentRate)
	if o.withOff {
		off, err := platform.Offline(stream, platform.SolverAuto)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "OFF upper bound: %.1f revenue (mean online/OFF = %.3f)\n",
			off.TotalWeight, s.MeanRevenue/off.TotalWeight)
	}
	return nil
}
