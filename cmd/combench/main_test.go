package main

import (
	"bytes"
	"strings"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/experiments"
	"crossmatch/internal/metrics"
)

func TestRunCollectsMetrics(t *testing.T) {
	var buf bytes.Buffer
	runner := &experiments.Runner{Parallelism: 1, Metrics: metrics.New()}
	if err := run(&buf, "tableVII", 0.003, 7, 1, 0, false, false, 0, nil, 0, nil, nil, runner); err != nil {
		t.Fatal(err)
	}
	rep := runner.Metrics.Snapshot()
	if rep.Counters.Runs == 0 {
		t.Error("metrics recorded no runs")
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"runs", "inner_matches", "latencies"} {
		if !strings.Contains(js.String(), key) {
			t.Errorf("metrics JSON missing %q:\n%s", key, js.String())
		}
	}
}

func TestRunSingleTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "tableVII", 0.003, 7, 1, 0, false, false, 0, nil, 0, nil, nil, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"RDX11+RYX11", "OFF", "TOTA", "DemCOM", "RamCOM", "AcpRt"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFigureSharesSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig5i", 0.01, 7, 1, 1.0, false, false, 0, nil, 0, nil, nil, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, "fig5l", 0.01, 7, 1, 1.0, false, false, 0, nil, 0, nil, nil, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Total revenue") || !strings.Contains(out, "Acceptance ratio") {
		t.Errorf("figure outputs missing:\n%s", out)
	}
}

func TestRunCSVMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig5i", 0.01, 7, 1, 0.5, true, false, 0, nil, 0, nil, nil, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rad,TOTA,DemCOM,RamCOM") {
		t.Errorf("CSV header missing:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "tableIX", 0.01, 7, 1, 0, false, false, 0, nil, 0, nil, nil, experiments.Sequential()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCR(t *testing.T) {
	var buf bytes.Buffer
	// CROptions defaults are too heavy for a unit test; the cr path is
	// covered via the experiments package tests. Here just ensure the
	// ablations path wires through.
	if err := run(&buf, "ablations", 0.01, 7, 1, 0, false, false, 0, nil, 0, nil, nil, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "oracle") {
		t.Error("ablation table missing")
	}
}

func TestRunPlotMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig5i", 0.01, 7, 1, 1.0, false, true, 0, nil, 0, nil, nil, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "* TOTA") || !strings.Contains(out, "(rad)") {
		t.Errorf("plot output missing chart:\n%s", out)
	}
}

func TestParseWindows(t *testing.T) {
	ws, err := parseWindows(" 5, 25 ", 10)
	if err != nil || len(ws) != 2 || ws[0] != 5 || ws[1] != 25 {
		t.Fatalf("parseWindows(\" 5, 25 \") = %v, %v", ws, err)
	}
	if ws, err := parseWindows("", 0); err != nil || ws != nil {
		t.Fatalf("empty spec: %v, %v", ws, err)
	}
	for _, bad := range []string{"0", "-3", "five", "5,,10"} {
		if _, err := parseWindows(bad, 0); err == nil {
			t.Errorf("parseWindows(%q) accepted", bad)
		}
	}
	if _, err := parseWindows("5", -1); err == nil {
		t.Error("negative deadline accepted")
	}
}

func TestRunWindowExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "window", 0.01, 7, 1, 0, false, false, 0,
		[]core.Time{2}, 1, nil, nil, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BatchCOM window sweep", "DemCOM", "Bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("window output missing %q:\n%s", want, out)
		}
	}
}

func TestValidateFaultFlags(t *testing.T) {
	cases := []struct {
		name     string
		spec     string
		seed     int64
		platpar  bool
		wantErr  string
		wantPlan bool
	}{
		{name: "no flags", wantPlan: false},
		{name: "plain plan", spec: "drop=0.2", wantPlan: true},
		{name: "seed threads into plan", spec: "drop=0.2", seed: 77, wantPlan: true},
		{name: "fault-seed without faults", seed: 7, wantErr: "-fault-seed requires -faults"},
		{name: "unknown key", spec: "latnecy=0.2", wantErr: "unknown fault-plan key"},
		{name: "malformed rate", spec: "drop=high", wantErr: "drop"},
		{name: "outage without platpar", spec: "outage=2@100-300", wantErr: "-platpar"},
		{name: "outage with platpar", spec: "outage=2@100-300", platpar: true, wantPlan: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := validateFaultFlags(tc.spec, tc.seed, tc.platpar)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got plan %v", tc.wantErr, plan)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if (plan != nil) != tc.wantPlan {
				t.Fatalf("plan = %v, wantPlan = %v", plan, tc.wantPlan)
			}
			if plan != nil && plan.Seed != tc.seed {
				t.Errorf("plan seed %d, want %d", plan.Seed, tc.seed)
			}
		})
	}
}

func TestRunFaultSweepExperiment(t *testing.T) {
	var buf bytes.Buffer
	// A tiny sweep: two rates, one repeat. The zero-fault anchor row is
	// prepended by the harness itself.
	res, err := experiments.RunFaultSweep(experiments.FaultSweepOptions{
		Rates: []float64{0, 1}, Requests: 200, Workers: 60, Repeats: 1, Seed: 7,
		Runner: experiments.Sequential(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fault rate", "Rev vs 0", "Brk opened", "TOTA", "DemCOM", "RamCOM"} {
		if !strings.Contains(out, want) {
			t.Errorf("fault sweep table missing %q:\n%s", want, out)
		}
	}
	// TOTA never touches the hub: its revenue must be fault-immune.
	base, _ := res.Row(0, "TOTA")
	worst, _ := res.Row(1, "TOTA")
	if base.Revenue != worst.Revenue {
		t.Errorf("TOTA revenue moved under faults: %.4f -> %.4f", base.Revenue, worst.Revenue)
	}
	// Fully faulted COM must not beat its own fault-free baseline.
	dBase, _ := res.Row(0, "DemCOM")
	dWorst, _ := res.Row(1, "DemCOM")
	if dWorst.Revenue > dBase.Revenue {
		t.Errorf("DemCOM revenue rose under total fault load: %.4f -> %.4f", dBase.Revenue, dWorst.Revenue)
	}
}
