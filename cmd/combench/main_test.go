package main

import (
	"bytes"
	"strings"
	"testing"

	"crossmatch/internal/experiments"
	"crossmatch/internal/metrics"
)

func TestRunCollectsMetrics(t *testing.T) {
	var buf bytes.Buffer
	runner := &experiments.Runner{Parallelism: 1, Metrics: metrics.New()}
	if err := run(&buf, "tableVII", 0.003, 7, 1, 0, false, false, runner); err != nil {
		t.Fatal(err)
	}
	rep := runner.Metrics.Snapshot()
	if rep.Counters.Runs == 0 {
		t.Error("metrics recorded no runs")
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"runs", "inner_matches", "latencies"} {
		if !strings.Contains(js.String(), key) {
			t.Errorf("metrics JSON missing %q:\n%s", key, js.String())
		}
	}
}

func TestRunSingleTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "tableVII", 0.003, 7, 1, 0, false, false, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"RDX11+RYX11", "OFF", "TOTA", "DemCOM", "RamCOM", "AcpRt"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFigureSharesSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig5i", 0.01, 7, 1, 1.0, false, false, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, "fig5l", 0.01, 7, 1, 1.0, false, false, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Total revenue") || !strings.Contains(out, "Acceptance ratio") {
		t.Errorf("figure outputs missing:\n%s", out)
	}
}

func TestRunCSVMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig5i", 0.01, 7, 1, 0.5, true, false, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rad,TOTA,DemCOM,RamCOM") {
		t.Errorf("CSV header missing:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "tableIX", 0.01, 7, 1, 0, false, false, experiments.Sequential()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCR(t *testing.T) {
	var buf bytes.Buffer
	// CROptions defaults are too heavy for a unit test; the cr path is
	// covered via the experiments package tests. Here just ensure the
	// ablations path wires through.
	if err := run(&buf, "ablations", 0.01, 7, 1, 0, false, false, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "oracle") {
		t.Error("ablation table missing")
	}
}

func TestRunPlotMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig5i", 0.01, 7, 1, 1.0, false, true, experiments.Sequential()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "* TOTA") || !strings.Contains(out, "(rad)") {
		t.Errorf("plot output missing chart:\n%s", out)
	}
}
