// Command combench regenerates the paper's evaluation: Tables V-VII,
// the twelve Fig. 5 sub-plots, the competitive-ratio study and the
// ablations. Results print as aligned text (or CSV with -csv).
//
// Usage:
//
//	combench -exp all                # everything, default scales
//	combench -exp tableV -scale 0.1  # one table at 10% of paper size
//	combench -exp fig5a -plot        # one figure series + ASCII chart
//	combench -exp cr                 # competitive ratios
//	combench -exp ablations         # design-choice ablations
//	combench -exp faults            # fault-rate vs revenue/coverage sweep
//	combench -exp tableV -faults drop=0.2,latency=0.3:1ms-10ms
//
// Experiment ids: tableV tableVI tableVII fig5a..fig5l cr ablations
// roadnet valuedist platforms variance faults window all.
//
// The window experiment sweeps BatchCOM's batching window (-window
// lists the lengths, -batch-deadline caps per-request buffering)
// against the immediate-dispatch DemCOM baseline.
//
// The -faults flag injects a cooperation fault plan into every unit
// run; see EXPERIMENTS.md "Fault model & degradation" for the grammar
// (latency=RATE:MIN-MAX, drop=RATE, claimerr=RATE, outage=PID@FROM-UNTIL,
// deadline, attempts, backoff, threshold, cooldown).
//
// The -trace flag records per-request decision spans and prints a
// per-algorithm stage-latency report after the experiments; -trace-out
// exports the spans (.jsonl, or Chrome trace-event JSON for Perfetto),
// -trace-sample thins them, -trace-cap resizes the per-platform rings.
// See EXPERIMENTS.md "Decision tracing".
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"crossmatch/internal/core"

	"crossmatch/internal/experiments"
	"crossmatch/internal/fault"
	"crossmatch/internal/metrics"
	"crossmatch/internal/stats"
	"crossmatch/internal/trace"
	"crossmatch/internal/workload"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id (tableV..tableVII, fig5a..fig5l, cr, ablations, roadnet, valuedist, platforms, variance, window, scaling, all)")
		scale       = flag.Float64("scale", 0.05, "fraction of the paper's Table III dataset sizes for table experiments")
		seed        = flag.Int64("seed", 42, "root random seed")
		repeats     = flag.Int("repeats", 3, "seeds averaged per measurement")
		cap         = flag.Float64("cap", 0, "truncate sweep axes at this value (0 = full Table IV axes)")
		csvOut      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		plot        = flag.Bool("plot", false, "render figure series as ASCII charts alongside the tables")
		par         = flag.Int("par", 0, "worker-pool size for unit runs (0 = GOMAXPROCS, 1 = sequential)")
		platpar     = flag.Bool("platpar", false, "run each simulation with one goroutine per platform (results valid but not bit-reproducible)")
		metricsPath = flag.String("metrics", "", "write an aggregate metrics report as JSON to this file ('-' = stderr)")
		faultsSpec  = flag.String("faults", "", "cooperation fault plan for every unit run, e.g. 'drop=0.1,latency=0.2:1ms-10ms,outage=2@100-300' (see EXPERIMENTS.md)")
		faultSeed   = flag.Int64("fault-seed", 0, "root seed for fault randomness (requires -faults; 0 derives it from the run seed)")
		traceOn     = flag.Bool("trace", false, "record per-request decision spans and print the stage-latency report")
		traceOut    = flag.String("trace-out", "", "write retained spans to this file: .jsonl = JSONL, anything else = Chrome trace-event JSON loadable in Perfetto (requires -trace)")
		traceSample = flag.Float64("trace-sample", 0, "fraction of requests traced, in (0,1]; 0 traces everything (requires -trace)")
		traceCap    = flag.Int("trace-cap", 0, "span ring capacity per platform (0 = default; oldest spans evicted once full; requires -trace)")
		windowSpec  = flag.String("window", "", "comma-separated BatchCOM window lengths in virtual ticks for -exp window (empty = default sweep)")
		batchDeadl  = flag.Int64("batch-deadline", 0, "per-request buffering cap in virtual ticks for -exp window (0 = window-boundary flushes only)")
		shardsSpec  = flag.String("shards", "", "comma-separated shard counts for -exp scaling (empty = 1,2,4,8)")
		citySpec    = flag.String("city", "", "comma-separated worker counts for -exp scaling cities; each city has 10x its workers in events (empty = 10000,100000)")
	)
	flag.Parse()
	plan, err := validateFaultFlags(*faultsSpec, *faultSeed, *platpar)
	if err != nil {
		fmt.Fprintf(os.Stderr, "combench: %v\nrun 'combench -h' for usage\n", err)
		os.Exit(2)
	}
	tracer, err := validateTraceFlags(*traceOn, *traceOut, *traceSample, *traceCap, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "combench: %v\nrun 'combench -h' for usage\n", err)
		os.Exit(2)
	}
	runner := &experiments.Runner{Parallelism: *par, PlatformParallel: *platpar, FaultPlan: plan, Trace: tracer}
	if *metricsPath != "" {
		runner.Metrics = metrics.New()
	}
	windows, err := parseWindows(*windowSpec, *batchDeadl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "combench: %v\nrun 'combench -h' for usage\n", err)
		os.Exit(2)
	}
	shardCounts, err := parseCounts("-shards", *shardsSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "combench: %v\nrun 'combench -h' for usage\n", err)
		os.Exit(2)
	}
	cityWorkers, err := parseCounts("-city", *citySpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "combench: %v\nrun 'combench -h' for usage\n", err)
		os.Exit(2)
	}
	if err := run(os.Stdout, *exp, *scale, *seed, *repeats, *cap, *csvOut, *plot, *faultSeed, windows, core.Time(*batchDeadl), shardCounts, cityWorkers, runner); err != nil {
		if errors.Is(err, workload.ErrUnknownPreset) {
			fmt.Fprintf(os.Stderr, "combench: %v\nrun 'combench -h' for usage\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "combench: %v\n", err)
		}
		os.Exit(1)
	}
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, runner.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "combench: %v\n", err)
			os.Exit(1)
		}
	}
	if tracer != nil {
		if err := finishTrace(os.Stdout, tracer, *traceOut, *csvOut); err != nil {
			fmt.Fprintf(os.Stderr, "combench: %v\n", err)
			os.Exit(1)
		}
	}
}

// validateFaultFlags parses -faults and rejects contradictory flag
// combinations up front — a typo'd fault key or an impossible plan must
// be a usage error, never a silently fault-free run.
func validateFaultFlags(spec string, faultSeed int64, platpar bool) (*fault.Plan, error) {
	if spec == "" {
		if faultSeed != 0 {
			return nil, fmt.Errorf("-fault-seed requires -faults (no fault plan to seed)")
		}
		return nil, nil
	}
	plan, err := fault.ParsePlan(spec)
	if err != nil {
		return nil, fmt.Errorf("-faults: %w", err)
	}
	if plan.HasOutages() && !platpar {
		return nil, fmt.Errorf("-faults plan schedules partner outages, which model independent platform services; run with -platpar (or drop the outage= entries)")
	}
	plan.Seed = faultSeed
	return plan, nil
}

// validateTraceFlags builds the tracer, rejecting trace flags given
// without -trace — a -trace-out with no tracer must be a usage error,
// never a silently missing file.
func validateTraceFlags(on bool, out string, sample float64, capacity int, seed int64) (*trace.Tracer, error) {
	if !on {
		switch {
		case out != "":
			return nil, fmt.Errorf("-trace-out requires -trace")
		case sample != 0:
			return nil, fmt.Errorf("-trace-sample requires -trace")
		case capacity != 0:
			return nil, fmt.Errorf("-trace-cap requires -trace")
		}
		return nil, nil
	}
	if sample < 0 || sample > 1 {
		return nil, fmt.Errorf("-trace-sample must be in (0,1], got %g", sample)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("-trace-cap must be positive, got %d", capacity)
	}
	return trace.New(trace.Options{Capacity: capacity, Sample: sample, Seed: seed}), nil
}

// finishTrace prints the stage-latency report and writes the span file
// (.jsonl = JSONL, anything else = Chrome trace-event JSON).
func finishTrace(w io.Writer, tracer *trace.Tracer, out string, csvOut bool) error {
	rep := tracer.Report()
	var err error
	if csvOut {
		err = rep.Table().RenderCSV(w)
	} else {
		err = rep.WriteText(w)
	}
	if err != nil {
		return err
	}
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	spans := tracer.Spans()
	if strings.HasSuffix(out, ".jsonl") {
		err = trace.WriteJSONL(f, spans)
	} else {
		err = trace.WriteChromeTrace(f, spans)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

func writeMetrics(path string, c *metrics.Collector) error {
	out := io.Writer(os.Stderr)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return c.Snapshot().WriteJSON(out)
}

// parseWindows parses the -window list and rejects window flags that
// cannot take effect — a malformed or non-positive length must be a
// usage error, never a silently defaulted sweep.
func parseWindows(spec string, deadline int64) ([]core.Time, error) {
	if deadline < 0 {
		return nil, fmt.Errorf("-batch-deadline must be non-negative, got %d", deadline)
	}
	if spec == "" {
		return nil, nil
	}
	var out []core.Time
	for _, part := range strings.Split(spec, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-window: %q is not a positive tick count", part)
		}
		out = append(out, core.Time(n))
	}
	return out, nil
}

// parseCounts parses a comma-separated list of positive integers.
func parseCounts(name, spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%s: %q is not a positive count", name, part)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(w io.Writer, exp string, scale float64, seed int64, repeats int, cap float64, csvOut, plot bool, faultSeed int64, windows []core.Time, batchDeadline core.Time, shardCounts, cityWorkers []int, runner *experiments.Runner) error {
	render := func(t *stats.Table) error {
		var err error
		if csvOut {
			err = t.RenderCSV(w)
		} else {
			err = t.Render(w)
		}
		if err == nil {
			_, err = fmt.Fprintln(w)
		}
		return err
	}

	ids := []string{exp}
	if exp == "all" {
		ids = []string{"tableV", "tableVI", "tableVII",
			"fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f", "fig5g", "fig5h",
			"fig5i", "fig5j", "fig5k", "fig5l", "cr", "ablations", "roadnet", "valuedist",
			"platforms", "variance", "faults", "window"}
	}

	// Sweeps are shared across the four figures of one axis; cache them.
	sweeps := map[experiments.SweepAxis]*experiments.SweepResult{}
	sweep := func(axis experiments.SweepAxis) (*experiments.SweepResult, error) {
		if s, ok := sweeps[axis]; ok {
			return s, nil
		}
		s, err := experiments.RunSweep(axis, experiments.SweepOptions{
			Seed: seed, Repeats: repeats, ScaleCap: cap, Runner: runner,
		})
		if err != nil {
			return nil, err
		}
		sweeps[axis] = s
		return s, nil
	}

	table := func(preset string) error {
		p, err := workload.PresetFor(preset)
		if err != nil {
			return err
		}
		res, err := experiments.RunTable(p, experiments.TableOptions{
			Scale: scale, Seed: seed, Repeats: repeats, Runner: runner,
		})
		if err != nil {
			return err
		}
		return render(res.Table())
	}

	figure := func(axis experiments.SweepAxis, metric string) error {
		s, err := sweep(axis)
		if err != nil {
			return err
		}
		rev, resp, mem, acc := s.Series()
		var t *stats.Table
		var series *stats.Series
		switch metric {
		case "revenue":
			t, series = rev.Table(1), rev
		case "response":
			t, series = resp.Table(3), resp
		case "memory":
			t, series = mem.Table(2), mem
		case "acceptance":
			t, series = acc.Table(3), acc
		}
		if err := render(t); err != nil {
			return err
		}
		if plot && !csvOut {
			if err := series.Plot(w, 64, 14); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	}

	for _, id := range ids {
		var err error
		switch id {
		case "tableV":
			err = table("RDC10+RYC10")
		case "tableVI":
			err = table("RDC11+RYC11")
		case "tableVII":
			err = table("RDX11+RYX11")
		case "fig5a":
			err = figure(experiments.AxisRequests, "revenue")
		case "fig5b":
			err = figure(experiments.AxisRequests, "response")
		case "fig5c":
			err = figure(experiments.AxisRequests, "memory")
		case "fig5d":
			err = figure(experiments.AxisRequests, "acceptance")
		case "fig5e":
			err = figure(experiments.AxisWorkers, "revenue")
		case "fig5f":
			err = figure(experiments.AxisWorkers, "response")
		case "fig5g":
			err = figure(experiments.AxisWorkers, "memory")
		case "fig5h":
			err = figure(experiments.AxisWorkers, "acceptance")
		case "fig5i":
			err = figure(experiments.AxisRadius, "revenue")
		case "fig5j":
			err = figure(experiments.AxisRadius, "response")
		case "fig5k":
			err = figure(experiments.AxisRadius, "memory")
		case "fig5l":
			err = figure(experiments.AxisRadius, "acceptance")
		case "cr":
			var res *experiments.CRResult
			res, err = experiments.RunCompetitiveRatio(experiments.CROptions{Seed: seed, Runner: runner})
			if err == nil {
				err = render(res.Table())
			}
		case "ablations":
			var res *experiments.AblationResult
			res, err = experiments.RunAblations(experiments.AblationOptions{Seed: seed, Repeats: repeats, Runner: runner})
			if err == nil {
				err = render(res.Table())
			}
		case "roadnet":
			var res *experiments.RoadNetResult
			res, err = experiments.RunRoadNet(experiments.RoadNetOptions{Seed: seed, Repeats: repeats, Runner: runner})
			if err == nil {
				err = render(res.Table())
			}
		case "valuedist":
			var res *experiments.ValueDistResult
			res, err = experiments.RunValueDist(experiments.ValueDistOptions{Seed: seed, Repeats: repeats, Runner: runner})
			if err == nil {
				err = render(res.Table())
			}
		case "platforms":
			var res *experiments.PlatformCountResult
			res, err = experiments.RunPlatformCount(experiments.PlatformCountOptions{Seed: seed, Repeats: repeats, Runner: runner})
			if err == nil {
				err = render(res.Table())
			}
		case "variance":
			var res *experiments.VarianceResult
			res, err = experiments.RunVariance(experiments.VarianceOptions{Seed: seed, Runner: runner})
			if err == nil {
				err = render(res.Table())
			}
		case "window":
			var res *experiments.WindowResult
			res, err = experiments.RunWindow(experiments.WindowOptions{
				Seed: seed, Repeats: repeats, Windows: windows, Deadline: batchDeadline, Runner: runner,
			})
			if err == nil {
				err = render(res.Table())
			}
			if err == nil && !csvOut {
				err = res.WriteNote(w)
				if err == nil {
					_, err = fmt.Fprintln(w)
				}
			}
		case "faults":
			var res *experiments.FaultSweepResult
			res, err = experiments.RunFaultSweep(experiments.FaultSweepOptions{
				Seed: seed, Repeats: repeats, FaultSeed: faultSeed, Runner: runner,
			})
			if err == nil {
				err = render(res.Table())
			}
		case "scaling":
			var res *experiments.ScalingResult
			res, err = experiments.RunScaling(experiments.ScalingOptions{
				Seed: seed, Shards: shardCounts, Workers: cityWorkers,
			})
			if err == nil {
				err = render(res.Table())
			}
			if err == nil && !csvOut {
				err = res.WriteNote(w)
				if err == nil {
					_, err = fmt.Fprintln(w)
				}
			}
		default:
			err = fmt.Errorf("unknown experiment %q", id)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}
