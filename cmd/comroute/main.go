// Command comroute fronts a fleet of comserve shards: arrival events
// are partitioned by consistent spatial hashing on the matching grid's
// cell geometry, so each shard owns a stable set of cells and its own
// write-ahead log. Per-shard health probes (against the
// liveness/readiness-split /healthz), circuit breakers, capped-jittered
// retries and optional hedged sends keep a partial outage partial: a
// SIGKILLed shard is routed around within the probe deadline, its cells
// answer fast 503s with retry hints, and once the restarted shard's WAL
// replay finishes and readiness flips, the prober re-admits it.
//
// Endpoints mirror comserve: POST /v1/requests and /v1/workers (single
// object or NDJSON batch; per-line decisions are stamped with the
// serving shard), GET /v1/metrics (fleet snapshot with the per-shard
// health/breaker table), GET /healthz (200 while ≥1 shard is ready),
// plus /debug/pprof for profiling the hop itself.
//
// The -split mode is the offline twin of the online dispatch: it
// partitions a recorded comgen stream into per-shard CSVs with exactly
// the ownership the router would apply, which is what replay-mode fleet
// shards serve (see README "Serving").
//
// Usage:
//
//	comroute -shards s1=http://127.0.0.1:9001,s2=http://127.0.0.1:9002
//	comroute -shards ... -failover -hedge-after 20ms
//	comroute -split stream.csv -names s1,s2,s3 -out shards/   # per-shard CSVs
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/fault"
	"crossmatch/internal/index"
	"crossmatch/internal/route"
	"crossmatch/internal/workload"
)

type options struct {
	addr        string
	portFile    string
	shardsSpec  string
	cellSize    float64
	probeEvery  time.Duration
	probeTO     time.Duration
	brkFails    int
	brkCooldown time.Duration
	attempts    int
	deadline    time.Duration
	callTO      time.Duration
	hedgeAfter  time.Duration
	failover    bool
	maxInflight int

	split      string
	splitNames string
	splitOut   string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
	flag.StringVar(&o.portFile, "port-file", "", "write the bound host:port here once listening (for scripts racing startup)")
	flag.StringVar(&o.shardsSpec, "shards", "", "fleet spec: comma-separated name=url pairs, e.g. 's1=http://127.0.0.1:9001,s2=http://127.0.0.1:9002'")
	flag.Float64Var(&o.cellSize, "cell", index.DefaultCell, "spatial-hash cell size, km (must match the split geometry)")
	flag.DurationVar(&o.probeEvery, "probe-interval", 100*time.Millisecond, "per-shard health probe period")
	flag.DurationVar(&o.probeTO, "probe-timeout", 500*time.Millisecond, "per-probe timeout")
	flag.IntVar(&o.brkFails, "breaker-threshold", 3, "consecutive transport failures that open a shard's breaker")
	flag.DurationVar(&o.brkCooldown, "breaker-cooldown", 750*time.Millisecond, "open-breaker cooldown before the half-open trial")
	flag.IntVar(&o.attempts, "attempts", 2, "transport attempts per shard call (1 = no retry)")
	flag.DurationVar(&o.deadline, "deadline", 15*time.Second, "end-to-end budget per client call, covering retries and hedges")
	flag.DurationVar(&o.callTO, "call-timeout", 10*time.Second, "single shard call timeout")
	flag.DurationVar(&o.hedgeAfter, "hedge-after", 0, "race a duplicate send after this delay (0 = off; only safe against replay shards, which dedupe)")
	flag.BoolVar(&o.failover, "failover", false, "route around a dark owner to the next shard in rendezvous order (breaks fleet replay bit-identity; availability-first live fleets only)")
	flag.IntVar(&o.maxInflight, "max-inflight", 256, "concurrent client calls forwarded; excess answers 503 immediately")
	flag.StringVar(&o.split, "split", "", "comgen CSV to partition into per-shard sub-streams instead of serving")
	flag.StringVar(&o.splitNames, "names", "", "-split: shard names, comma-separated (default: the names from -shards)")
	flag.StringVar(&o.splitOut, "out", ".", "-split: directory for the per-shard <name>.csv files")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintf(os.Stderr, "comroute: %v\n", err)
		os.Exit(1)
	}
}

// parseShards parses the name=url fleet spec.
func parseShards(spec string) ([]route.ShardConfig, error) {
	var out []route.ShardConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("-shards: want name=url, got %q", part)
		}
		out = append(out, route.ShardConfig{Name: name, URL: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-shards: need at least one name=url pair")
	}
	return out, nil
}

func run(w io.Writer, o options) error {
	if o.split != "" {
		return runSplit(w, o)
	}
	shards, err := parseShards(o.shardsSpec)
	if err != nil {
		return err
	}
	r, err := route.New(route.Options{
		Shards:        shards,
		CellSize:      o.cellSize,
		ProbeInterval: o.probeEvery,
		ProbeTimeout:  o.probeTO,
		Breaker: fault.BreakerConfig{
			FailureThreshold: o.brkFails,
			CooldownTicks:    core.Time(o.brkCooldown.Milliseconds()),
		},
		Retry:       fault.RetryPolicy{MaxAttempts: o.attempts},
		Deadline:    o.deadline,
		CallTimeout: o.callTO,
		HedgeAfter:  o.hedgeAfter,
		Failover:    o.failover,
		MaxInflight: o.maxInflight,
	})
	if err != nil {
		return err
	}
	defer r.Close()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if o.portFile != "" {
		if err := os.WriteFile(o.portFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing -port-file: %w", err)
		}
	}
	mode := "strict-ownership"
	if o.failover {
		mode = "failover"
	}
	fmt.Fprintf(w, "comroute: %d shards, cell %.2fkm, %s, listening on %s\n",
		len(shards), o.cellSize, mode, bound)
	for _, sc := range shards {
		fmt.Fprintf(w, "comroute: shard %s -> %s\n", sc.Name, sc.URL)
	}

	hs := &http.Server{Handler: r.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintf(w, "comroute: shutting down...\n")
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hs.Shutdown(shutCtx)

	snap := r.Snapshot()
	fmt.Fprintf(w, "comroute: %d calls, %d lines (%d refused, %d busy, %d bad)\n",
		snap.Calls, snap.Lines, snap.Refused, snap.Busy, snap.BadLines)
	for _, sh := range snap.Shards {
		fmt.Fprintf(w, "comroute: shard %s: %d lines, %d ok, %d shed, %d unavailable, %d errors, %d retries, %d hedges (%d won), %d failovers\n",
			sh.Name, sh.Lines, sh.OK, sh.Shed, sh.Unavailable, sh.Errors,
			sh.Retries, sh.Hedges, sh.HedgeWins, sh.Failovers)
	}
	return nil
}

// runSplit partitions a recorded stream into per-shard CSVs with the
// router's exact ownership function.
func runSplit(w io.Writer, o options) error {
	namesSpec := o.splitNames
	if namesSpec == "" && o.shardsSpec != "" {
		shards, err := parseShards(o.shardsSpec)
		if err != nil {
			return err
		}
		var names []string
		for _, sc := range shards {
			names = append(names, sc.Name)
		}
		namesSpec = strings.Join(names, ",")
	}
	var names []string
	for _, n := range strings.Split(namesSpec, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("-split: need shard names (-names or -shards)")
	}

	f, err := os.Open(o.split)
	if err != nil {
		return err
	}
	stream, err := workload.ReadCSV(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", o.split, err)
	}
	parts, err := route.SplitStream(stream, names, o.cellSize)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(o.splitOut, 0o755); err != nil {
		return err
	}
	for _, name := range names {
		path := filepath.Join(o.splitOut, name+".csv")
		out, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := workload.WriteCSV(out, parts[name]); err != nil {
			out.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "comroute: shard %s: %d events -> %s\n", name, parts[name].Len(), path)
	}
	return nil
}
