// Command comgen generates synthetic COM workloads and writes them as
// CSV (see internal/workload.WriteCSV for the schema), or summarizes an
// existing CSV stream.
//
// Usage:
//
//	comgen -requests 2500 -workers 500 -rad 1.0 -dist real -seed 42 > stream.csv
//	comgen -preset RDC10+RYC10 -scale 0.05 > rdc10.csv
//	comgen -summarize stream.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"crossmatch/internal/core"
	"crossmatch/internal/workload"
)

func main() {
	var (
		requests  = flag.Int("requests", 2500, "total requests across both platforms")
		workers   = flag.Int("workers", 500, "total physical workers across both platforms")
		rad       = flag.Float64("rad", 1.0, "service radius, km")
		dist      = flag.String("dist", "real", "value distribution: real or normal")
		preset    = flag.String("preset", "", "Table III preset (overrides -requests/-workers): "+fmt.Sprint(workload.PresetNames()))
		scale     = flag.Float64("scale", 0.05, "preset scale in (0,1]")
		seed      = flag.Int64("seed", 42, "random seed")
		summarize = flag.String("summarize", "", "summarize an existing CSV stream instead of generating")
		mapOut    = flag.Bool("map", false, "with -summarize: also render per-platform density maps")
	)
	flag.Parse()

	if err := run(os.Stdout, *requests, *workers, *rad, *dist, *preset, *scale, *seed, *summarize, *mapOut); err != nil {
		if errors.Is(err, workload.ErrUnknownPreset) {
			fmt.Fprintf(os.Stderr, "comgen: %v\nrun 'comgen -h' for usage\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "comgen: %v\n", err)
		}
		os.Exit(1)
	}
}

func run(w io.Writer, requests, workers int, rad float64, dist, preset string, scale float64, seed int64, summarize string, mapOut bool) error {
	if summarize != "" {
		f, err := os.Open(summarize)
		if err != nil {
			return err
		}
		defer f.Close()
		stream, err := workload.ReadCSV(f)
		if err != nil {
			return err
		}
		if err := printSummary(w, stream); err != nil {
			return err
		}
		if mapOut {
			return workload.WriteDensityMap(w, stream, 0, 0)
		}
		return nil
	}

	var cfg workload.Config
	var err error
	if preset != "" {
		p, perr := workload.PresetFor(preset)
		if perr != nil {
			return perr
		}
		cfg, err = p.Config(scale)
	} else {
		cfg, err = workload.Synthetic(requests, workers, rad, dist)
	}
	if err != nil {
		return err
	}
	stream, err := workload.Generate(cfg, seed)
	if err != nil {
		return err
	}
	return workload.WriteCSV(w, stream)
}

func printSummary(w io.Writer, s *core.Stream) error {
	reqs, wrks := s.Requests(), s.Workers()
	perPlat := map[core.PlatformID][2]int{}
	var minT, maxT core.Time
	sumV, maxV := 0.0, 0.0
	for i, e := range s.Events() {
		if i == 0 || e.Time < minT {
			minT = e.Time
		}
		if e.Time > maxT {
			maxT = e.Time
		}
	}
	for _, r := range reqs {
		c := perPlat[r.Platform]
		c[0]++
		perPlat[r.Platform] = c
		sumV += r.Value
		if r.Value > maxV {
			maxV = r.Value
		}
	}
	for _, wk := range wrks {
		c := perPlat[wk.Platform]
		c[1]++
		perPlat[wk.Platform] = c
	}
	fmt.Fprintf(w, "events: %d (%d requests, %d worker arrivals)\n", s.Len(), len(reqs), len(wrks))
	fmt.Fprintf(w, "time span: [%d, %d]\n", minT, maxT)
	if len(reqs) > 0 {
		fmt.Fprintf(w, "value: mean %.2f, max %.2f\n", sumV/float64(len(reqs)), maxV)
	}
	for _, pid := range s.Platforms() {
		c := perPlat[pid]
		fmt.Fprintf(w, "platform %d: %d requests, %d worker arrivals\n", pid, c[0], c[1])
	}
	// Cross-platform structure: how much of each fleet is stranded for
	// its own platform but reachable by another's demand.
	return workload.WriteDiagnosis(w, workload.Diagnose(s))
}
