package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateSyntheticCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 100, 20, 1.0, "real", "", 0.05, 7, "", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "kind,id,arrival,platform") {
		t.Errorf("missing CSV header: %.80s", out)
	}
	if n := strings.Count(out, "\nrequest,"); n != 100 {
		t.Errorf("request rows = %d, want 100", n)
	}
}

func TestGeneratePresetCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0, 0, 1.0, "real", "RDX11+RYX11", 0.002, 7, "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "worker,") {
		t.Error("no worker rows")
	}
}

func TestGenerateErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 10, 10, 1.0, "real", "NOPE", 0.05, 7, "", false); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run(&buf, 10, 10, -1, "real", "", 0.05, 7, "", false); err == nil {
		t.Error("negative radius accepted")
	}
	if err := run(&buf, 10, 10, 1, "real", "", 0.05, 7, "/does/not/exist.csv", false); err == nil {
		t.Error("missing summarize file accepted")
	}
}

func TestSummarizeRoundTrip(t *testing.T) {
	var gen bytes.Buffer
	if err := run(&gen, 50, 10, 1.0, "normal", "", 0.05, 9, "", false); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.csv")
	if err := os.WriteFile(path, gen.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var sum bytes.Buffer
	if err := run(&sum, 0, 0, 0, "", "", 0, 0, path, true); err != nil {
		t.Fatal(err)
	}
	out := sum.String()
	for _, want := range []string{"50 requests", "platform 1", "platform 2", "value: mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
