// Command comserve boots the live matching service: an HTTP server
// that feeds arrivals into the deterministic matching engine and
// answers each request arrival with its match decision (assigned
// worker, payment, outcome reason). Admission control (token bucket +
// bounded ingest queue) sheds overload with 429 and Retry-After;
// SIGTERM/SIGINT drains gracefully — in-flight decisions complete,
// queued events answer 503 — and the final per-platform result prints
// on exit.
//
// Endpoints: POST /v1/requests and /v1/workers (single JSON object or
// NDJSON batch), GET /v1/metrics (admission + engine funnel snapshot),
// GET /v1/trace (decision spans as JSONL, with -trace), GET /healthz,
// plus /debug/vars and /debug/pprof.
//
// Usage:
//
//	comserve -alg DemCOM -addr :8080 -rate 500 -queue 256
//	comserve -alg RamCOM -maxvalue 60 -deadline 2s
//	comserve -replay stream.csv -alg DemCOM -seed 42   # deterministic replay
//	comserve -wal-dir /var/lib/comserve -fsync-batch 32  # durable: restart recovers
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/fault"
	"crossmatch/internal/platform"
	"crossmatch/internal/serve"
	"crossmatch/internal/trace"
	"crossmatch/internal/workload"
)

type options struct {
	addr         string
	alg          string
	seed         int64
	replay       string
	platforms    string
	maxValue     float64
	queueCap     int
	rate         float64
	burst        int
	deadline     time.Duration
	procDelay    time.Duration
	serviceTicks int64
	window       int64
	batchDeadl   int64
	noCoop       bool
	faultsSpec   string
	traceOn      bool
	traceCap     int
	traceSample  float64
	portFile     string
	walDir       string
	fsyncBatch   int
	snapEvery    int
	recoverBG    bool
	shards       int
	shardReach   float64
	shardStall   time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
	flag.StringVar(&o.alg, "alg", platform.AlgDemCOM, "algorithm: TOTA, Greedy-RT, DemCOM, RamCOM or BatchCOM")
	flag.Int64Var(&o.seed, "seed", 42, "random seed (the served result is a pure function of the event sequence and this seed)")
	flag.StringVar(&o.replay, "replay", "", "comgen CSV recorded stream: serve in deterministic replay mode")
	flag.StringVar(&o.platforms, "platforms", "1,2", "live-mode platform IDs, comma-separated")
	flag.Float64Var(&o.maxValue, "maxvalue", 0, "a-priori max request value Umax (required live for RamCOM and Greedy-RT)")
	flag.IntVar(&o.queueCap, "queue", 1024, "ingest queue capacity; a full queue sheds with 429")
	flag.Float64Var(&o.rate, "rate", 0, "token-bucket admission rate, events/s (0 = unlimited)")
	flag.IntVar(&o.burst, "burst", 0, "token-bucket burst (default: rate, at least 1)")
	flag.DurationVar(&o.deadline, "deadline", 10*time.Second, "per-request decision deadline (expired waits answer 504)")
	flag.DurationVar(&o.procDelay, "proc-delay", 0, "artificial per-event engine delay (capacity knob for overload experiments)")
	flag.Int64Var(&o.serviceTicks, "service-ticks", 0, "worker service duration in virtual ticks (0 = workers serve once)")
	flag.Int64Var(&o.window, "window", 0, "BatchCOM batching window in virtual ticks (one tick = 1ms live; 0 = default window)")
	flag.Int64Var(&o.batchDeadl, "batch-deadline", 0, "cap on how long BatchCOM may buffer one request, in virtual ticks (0 = window-boundary flushes only)")
	flag.BoolVar(&o.noCoop, "nocoop", false, "disable cross-platform cooperation")
	flag.StringVar(&o.faultsSpec, "faults", "", "cooperation fault plan, e.g. 'drop=0.1,latency=0.2:1ms-10ms' (see EXPERIMENTS.md)")
	flag.BoolVar(&o.traceOn, "trace", false, "record per-request decision spans (export at /v1/trace)")
	flag.IntVar(&o.traceCap, "trace-cap", 4096, "span ring capacity per platform")
	flag.Float64Var(&o.traceSample, "trace-sample", 1, "fraction of requests traced, in (0,1]")
	flag.StringVar(&o.portFile, "port-file", "", "write the bound host:port here once listening (for scripts racing startup)")
	flag.StringVar(&o.walDir, "wal-dir", "", "write-ahead log directory: events are durable before they are applied, and a restart on the same directory recovers the exact pre-crash state")
	flag.IntVar(&o.fsyncBatch, "fsync-batch", 1, "fsync the WAL every N appends (1 = every event; larger batches trade the last <N events for throughput)")
	flag.IntVar(&o.snapEvery, "snapshot-every", 1000, "write a recovery checkpoint every N applied events (0 = only on shutdown)")
	flag.BoolVar(&o.recoverBG, "recover-bg", false, "recover the WAL in the background: bind the port immediately, answer /healthz 503 recovering (live but not ready) until the replay's digest verify passes — what a fleet shard wants so its router can watch readiness flip")
	flag.IntVar(&o.shards, "shards", 0, "geo-shard the matching engine across N per-cell goroutines with the async cross-shard claim protocol (0 or 1 = single engine)")
	flag.Float64Var(&o.shardReach, "shard-reach", 0, "max worker service radius the shard partitioner assumes (km); required live with -shards > 1, derived from the stream in -replay mode")
	flag.DurationVar(&o.shardStall, "shard-stall", 0, "cross-shard claim watchdog: degrade a boundary decision blocked longer than this (0 = wait forever, deterministic)")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		if errors.Is(err, platform.ErrUnknownAlgorithm) {
			fmt.Fprintf(os.Stderr, "comserve: %v\nrun 'comserve -h' for the accepted values\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "comserve: %v\n", err)
		}
		os.Exit(1)
	}
}

func parsePlatforms(spec string) ([]core.PlatformID, error) {
	var pids []core.PlatformID
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.ParseInt(part, 10, 32)
		if err != nil || id <= 0 {
			return nil, fmt.Errorf("-platforms: bad platform id %q", part)
		}
		pids = append(pids, core.PlatformID(id))
	}
	if len(pids) == 0 {
		return nil, fmt.Errorf("-platforms: need at least one platform id")
	}
	return pids, nil
}

func buildOptions(o options) (serve.Options, error) {
	opts := serve.Options{
		Algorithm:           o.alg,
		Seed:                o.seed,
		MaxValue:            o.maxValue,
		QueueCap:            o.queueCap,
		Rate:                o.rate,
		Burst:               o.burst,
		Deadline:            o.deadline,
		ProcessDelay:        o.procDelay,
		ServiceTicks:        core.Time(o.serviceTicks),
		Window:              core.Time(o.window),
		BatchDeadline:       core.Time(o.batchDeadl),
		DisableCoop:         o.noCoop,
		WALDir:              o.walDir,
		FsyncBatch:          o.fsyncBatch,
		SnapshotEvery:       o.snapEvery,
		RecoverInBackground: o.recoverBG,
		Shards:              o.shards,
		ShardReach:          o.shardReach,
		ShardStallTimeout:   o.shardStall,
	}
	if o.replay != "" {
		f, err := os.Open(o.replay)
		if err != nil {
			return opts, err
		}
		stream, err := workload.ReadCSV(f)
		f.Close()
		if err != nil {
			return opts, fmt.Errorf("reading %s: %w", o.replay, err)
		}
		opts.Replay = stream
	} else {
		pids, err := parsePlatforms(o.platforms)
		if err != nil {
			return opts, err
		}
		opts.Platforms = pids
	}
	if o.faultsSpec != "" {
		plan, err := fault.ParsePlan(o.faultsSpec)
		if err != nil {
			return opts, fmt.Errorf("-faults: %w", err)
		}
		opts.Faults = plan
	}
	if o.traceOn {
		opts.Tracer = trace.New(trace.Options{Capacity: o.traceCap, Seed: o.seed})
		opts.TraceSample = o.traceSample
	}
	return opts, nil
}

func run(w io.Writer, o options) error {
	opts, err := buildOptions(o)
	if err != nil {
		return err
	}
	srv, err := serve.New(opts)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if o.portFile != "" {
		if err := os.WriteFile(o.portFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing -port-file: %w", err)
		}
	}
	mode := "live"
	if opts.Replay != nil {
		mode = fmt.Sprintf("replay (%d events)", opts.Replay.Len())
	}
	fmt.Fprintf(w, "comserve: %s, alg %s, seed %d, listening on %s\n", mode, o.alg, o.seed, bound)
	if o.walDir != "" {
		printRecovery := func() {
			if rec := srv.Recovery(); rec.Recovered {
				fmt.Fprintf(w, "comserve: recovered %d events from %s (%d segments, snapshot @%d, clock %dms) in %.1fms\n",
					rec.Events, o.walDir, rec.Segments, rec.SnapshotApplied, rec.VLast, rec.DurationMs)
			} else {
				fmt.Fprintf(w, "comserve: wal %s is empty, starting fresh\n", o.walDir)
			}
		}
		if o.recoverBG {
			fmt.Fprintf(w, "comserve: wal recovery running in background; live but not ready until it completes\n")
			go func() {
				<-srv.RecoverDone()
				if err := srv.RecoveryErr(); err != nil {
					fmt.Fprintf(w, "comserve: wal recovery FAILED: %v\n", err)
					return
				}
				printRecovery()
				fmt.Fprintf(w, "comserve: ready\n")
			}()
		} else {
			printRecovery()
		}
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintf(w, "comserve: draining...\n")
	case err := <-serveErr:
		_, _ = srv.Close()
		return fmt.Errorf("http server: %w", err)
	}

	// Drain: refuse new work, let queued/in-flight decisions terminate,
	// then stop the listener and print the final result.
	srv.BeginDrain()
	res, err := srv.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hs.Shutdown(shutCtx)
	if err != nil {
		return err
	}

	snap := srv.Snapshot()
	fmt.Fprintf(w, "comserve: served %d events (%d requests, %d workers), shed %d (rate %d, queue %d), drained %d, bad %d\n",
		snap.Server.Accepted, snap.Server.RequestsSeen, snap.Server.WorkersSeen,
		snap.Server.ShedRateLimit+snap.Server.ShedQueueFull,
		snap.Server.ShedRateLimit, snap.Server.ShedQueueFull,
		snap.Server.Drained, snap.Server.BadEvents)
	fmt.Fprintf(w, "comserve: matched %d of %d requests, revenue %.1f\n",
		snap.Server.Matched, snap.Server.Served, res.TotalRevenue())
	return nil
}
