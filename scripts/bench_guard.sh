#!/bin/sh
# bench-guard: fail when the hot path's allocation count regresses.
#
# Runs the guarded benchmarks with -benchmem and compares allocs/op
# against the committed baseline in BENCH_PR6.json; more than 10% above
# the baseline fails the build. Allocation counts are deterministic
# enough for a threshold (unlike ns/op, which the shared CI machines
# make useless), which is exactly why the pricing/eligibility redesign
# and the serving sequencer are guarded by allocs and not wall time.
#
# A second phase guards the fleet router's overhead: a single comserve
# shard fronted by comroute must deliver at least 85% of the direct
# comserve throughput on the same replayed stream. Three interleaved
# direct/routed pairs run back-to-back and the best pairwise ratio is
# judged, which absorbs most shared-machine noise. Both sides push with
# -batch 128 -coalesce so batches actually fill (the alternating stream
# otherwise caps batches at ~2-3 events) and the guard measures the
# router's amortized per-line tax, not fixed per-call HTTP cost on a
# single-core box. The stream is sized (140k events, runs of a few
# seconds per side) so per-run startup effects — connection setup, the
# first probe round, GC warmup — amortize away; sub-second runs made
# the routed number swing 30%+ run to run. ROUTER_GUARD=0 skips the
# phase.
#
# BENCHES overrides the guarded set, e.g. BENCHES="TableV" for one.
set -e

cd "$(dirname "$0")/.."

BASELINE=${BASELINE:-BENCH_PR6.json}
BENCHES=${BENCHES:-"TableV TableVI BatchWindow ShardedEngine"}

# baseline_for BENCH: newer benchmarks were baselined in later PRs, so
# each bench reads its own committed snapshot; everything without an
# entry here falls back to $BASELINE.
baseline_for() {
    case "$1" in
        BatchWindow) echo "BENCH_PR9.json" ;;
        ShardedEngine) echo "BENCH_PR10.json" ;;
        *) echo "$BASELINE" ;;
    esac
}

status=0
for BENCH in $BENCHES; do
    base_file=$(baseline_for "$BENCH")
    if [ ! -f "$base_file" ]; then
        echo "bench-guard: baseline $base_file missing for $BENCH" >&2
        exit 1
    fi
    out=$(go test -run '^$' -bench "Benchmark${BENCH}\$" -benchmem -benchtime 1x .)
    echo "$out"

    cur=$(echo "$out" | awk -v b="Benchmark${BENCH}" '$1 ~ "^"b {
        for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
    }')
    base=$(awk -v name="\"${BENCH}\"" '
        $1 == "\"name\":" && $2 == name"," { found = 1 }
        found && $1 == "\"allocs_per_op\":" { gsub(/[^0-9]/, "", $2); print $2; exit }
    ' "$base_file")

    if [ -z "$cur" ] || [ -z "$base" ]; then
        echo "bench-guard: could not parse allocs/op for $BENCH (current='$cur' baseline='$base')" >&2
        exit 1
    fi

    awk -v c="$cur" -v b="$base" -v n="$BENCH" 'BEGIN {
        limit = b * 1.10
        if (c > limit) {
            printf "bench-guard: FAIL: %s allocs/op %d exceeds baseline %d by more than 10%% (limit %.0f)\n", n, c, b, limit
            exit 1
        }
        printf "bench-guard: OK: %s allocs/op %d within 10%% of baseline %d\n", n, c, b
    }' || status=1
done

# ----------------------------------------------------------------------
# Router overhead guard.
# ----------------------------------------------------------------------

ROUTER_GUARD=${ROUTER_GUARD:-1}
if [ "$ROUTER_GUARD" = "1" ]; then
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"; kill $(jobs -p) 2>/dev/null || true' EXIT

    wait_port() {
        wp=0
        while [ ! -s "$1" ]; do
            wp=$((wp + 1))
            if [ "$wp" -gt 100 ]; then
                echo "bench-guard: server never wrote its port file" >&2
                exit 1
            fi
            sleep 0.1
        done
    }

    echo "bench-guard: router overhead phase"
    go build -o "$tmp/comserve" ./cmd/comserve
    go build -o "$tmp/comload" ./cmd/comload
    go build -o "$tmp/comroute" ./cmd/comroute
    go run ./cmd/comgen -requests 40000 -workers 30000 -seed 42 > "$tmp/stream.csv"

    # qps_of json: extract the achieved event throughput.
    qps_of() {
        awk -F'[:,]' '/"qps"/ { gsub(/[ ]/, "", $2); print $2; exit }' "$1"
    }

    # run_direct out: fresh replay comserve, as-fast-as push.
    run_direct() {
        rm -f "$tmp/d.port"
        "$tmp/comserve" -addr 127.0.0.1:0 -alg DemCOM -seed 42 \
            -replay "$tmp/stream.csv" -port-file "$tmp/d.port" \
            > "$tmp/d.log" 2>&1 &
        pid=$!
        wait_port "$tmp/d.port"
        "$tmp/comload" -url "http://$(cat "$tmp/d.port")" -in "$tmp/stream.csv" \
            -conns 8 -batch 128 -coalesce -retries 100 -out "$1" > /dev/null 2>&1
        kill -TERM "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    }

    # run_routed out: fresh replay comserve behind a one-shard comroute.
    run_routed() {
        rm -f "$tmp/r.port" "$tmp/rt.port"
        "$tmp/comserve" -addr 127.0.0.1:0 -alg DemCOM -seed 42 \
            -replay "$tmp/stream.csv" -port-file "$tmp/r.port" \
            > "$tmp/r.log" 2>&1 &
        spid=$!
        wait_port "$tmp/r.port"
        "$tmp/comroute" -addr 127.0.0.1:0 -port-file "$tmp/rt.port" \
            -shards "s1=http://$(cat "$tmp/r.port")" \
            > "$tmp/rt.log" 2>&1 &
        rpid=$!
        wait_port "$tmp/rt.port"
        # Wait for the first probe round: pushing before the router has
        # marked the shard ready burns 100ms+ retry-hint sleeps on a
        # sub-second run and understates routed throughput.
        rw=0
        while ! curl -sf "http://$(cat "$tmp/rt.port")/healthz" > /dev/null 2>&1; do
            rw=$((rw + 1))
            [ "$rw" -gt 50 ] && break
            sleep 0.05
        done
        "$tmp/comload" -url "http://$(cat "$tmp/rt.port")" -in "$tmp/stream.csv" \
            -conns 8 -batch 128 -coalesce -retries 100 -unavail-retries 100 -out "$1" > /dev/null 2>&1
        kill -TERM "$rpid" "$spid" 2>/dev/null || true
        wait "$rpid" 2>/dev/null || true
        wait "$spid" 2>/dev/null || true
    }

    # Interleaved pairs, best pairwise ratio, first passing pair wins:
    # each routed run is compared against the direct run that just
    # preceded it under the same machine conditions, so a slow second
    # half of the phase (GC, neighbors on a shared runner) cannot bias
    # one side. The shared runner's background load swings on a
    # minutes-long period, and a bad window hurts the three-process
    # routed chain more than the two-process direct one — so the phase
    # takes up to five pairs spread over ~2 minutes and stops at the
    # first pair over the bar. A real regression (the pre-optimization
    # router sat at 60-70%) still fails every pair.
    best_ratio=0
    best_pair=""
    for i in 1 2 3 4 5; do
        run_direct "$tmp/direct-$i.json"
        run_routed "$tmp/routed-$i.json"
        d="$(qps_of "$tmp/direct-$i.json")"
        q="$(qps_of "$tmp/routed-$i.json")"
        better=$(awk -v a="$best_ratio" -v d="$d" -v r="$q" \
            'BEGIN { print (d > 0 && r / d > a) ? 1 : 0 }')
        if [ "$better" = "1" ]; then
            best_ratio=$(awk -v d="$d" -v r="$q" 'BEGIN { print r / d }')
            best_pair="$q $d"
        fi
        if awk -v ratio="$best_ratio" 'BEGIN { exit !(ratio >= 0.85) }'; then
            break
        fi
    done

    # shellcheck disable=SC2086
    awk -v ratio="$best_ratio" 'BEGIN { exit !(ratio >= 0.85) }' && {
        printf 'bench-guard: OK: routed %.0f ev/s within 15%% of direct %.0f ev/s\n' $best_pair
    } || {
        printf 'bench-guard: FAIL: routed %.0f ev/s below 85%% of direct %.0f ev/s\n' $best_pair >&2
        status=1
    }
fi

exit $status
