#!/bin/sh
# bench-guard: fail when the hot path's allocation count regresses.
#
# Runs the guarded benchmarks with -benchmem and compares allocs/op
# against the committed baseline in BENCH_PR6.json; more than 10% above
# the baseline fails the build. Allocation counts are deterministic
# enough for a threshold (unlike ns/op, which the shared CI machines
# make useless), which is exactly why the pricing/eligibility redesign
# and the serving sequencer are guarded by allocs and not wall time.
#
# BENCHES overrides the guarded set, e.g. BENCHES="TableV" for one.
set -e

cd "$(dirname "$0")/.."

BASELINE=${BASELINE:-BENCH_PR6.json}
BENCHES=${BENCHES:-"TableV TableVI"}

if [ ! -f "$BASELINE" ]; then
    echo "bench-guard: baseline $BASELINE missing" >&2
    exit 1
fi

status=0
for BENCH in $BENCHES; do
    out=$(go test -run '^$' -bench "Benchmark${BENCH}\$" -benchmem -benchtime 1x .)
    echo "$out"

    cur=$(echo "$out" | awk -v b="Benchmark${BENCH}" '$1 ~ "^"b {
        for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
    }')
    base=$(awk -v name="\"${BENCH}\"" '
        $1 == "\"name\":" && $2 == name"," { found = 1 }
        found && $1 == "\"allocs_per_op\":" { gsub(/[^0-9]/, "", $2); print $2; exit }
    ' "$BASELINE")

    if [ -z "$cur" ] || [ -z "$base" ]; then
        echo "bench-guard: could not parse allocs/op for $BENCH (current='$cur' baseline='$base')" >&2
        exit 1
    fi

    awk -v c="$cur" -v b="$base" -v n="$BENCH" 'BEGIN {
        limit = b * 1.10
        if (c > limit) {
            printf "bench-guard: FAIL: %s allocs/op %d exceeds baseline %d by more than 10%% (limit %.0f)\n", n, c, b, limit
            exit 1
        }
        printf "bench-guard: OK: %s allocs/op %d within 10%% of baseline %d\n", n, c, b
    }' || status=1
done

exit $status
