#!/bin/sh
# Full pre-merge gate: vet, build, race-enabled tests, short benches.
# Usage: scripts/check.sh  (or `make check`)
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

echo "==> short benchmarks (1 iteration each)"
go test -run '^$' -bench 'BenchmarkTable(Sequential|Parallel)$|BenchmarkPlatform(Sequential|Parallel)Runtime$' -benchtime 1x .

echo "==> OK"
