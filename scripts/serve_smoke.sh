#!/bin/sh
# Serving smoke: boot comserve on a random port in replay mode, push
# the recorded stream through comload, assert a non-empty match count
# and a clean drain on SIGTERM. Then the chaos phase: the same replay
# with a write-ahead log, SIGKILL mid-stream, restart on the same log
# directory, re-push, and assert the final drain summary is identical
# to the uninterrupted run — crash recovery is bit-exact. This is the
# CI end-to-end check for the live matching service (see README
# "Serving").
# Usage: scripts/serve_smoke.sh  (or `make serve-smoke`)
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# wait_port portfile pid logfile: block until comserve writes its port.
wait_port() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "comserve never wrote its port file" >&2
            cat "$3" >&2
            kill "$2" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
}

# wait_dead pid logfile: block until the process exits.
wait_dead() {
    i=0
    while kill -0 "$1" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "comserve did not exit" >&2
            cat "$2" >&2
            kill -9 "$1" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
}

echo "==> build"
go build -o "$tmp/comserve" ./cmd/comserve
go build -o "$tmp/comload" ./cmd/comload
go run ./cmd/comgen -requests 400 -workers 300 -seed 42 > "$tmp/stream.csv"

echo "==> boot comserve (replay mode, random port)"
"$tmp/comserve" -addr 127.0.0.1:0 -alg DemCOM -seed 42 \
    -replay "$tmp/stream.csv" -port-file "$tmp/port.txt" \
    > "$tmp/comserve.log" 2>&1 &
srv=$!
wait_port "$tmp/port.txt" "$srv" "$tmp/comserve.log"
addr="$(cat "$tmp/port.txt")"
echo "    listening on $addr"

echo "==> push the workload through comload"
"$tmp/comload" -url "http://$addr" -in "$tmp/stream.csv" \
    -conns 8 -batch 16 -retries 20 -min-matched 1 -label smoke \
    -out "$tmp/load.json"

echo "==> drain on SIGTERM"
kill -TERM "$srv"
wait_dead "$srv" "$tmp/comserve.log"

cat "$tmp/comserve.log"
grep -q "matched" "$tmp/comserve.log" || {
    echo "comserve summary missing" >&2
    exit 1
}
oracle="$(grep "comserve: matched" "$tmp/comserve.log")"

echo "==> chaos: replay with a WAL, SIGKILL mid-stream"
"$tmp/comserve" -addr 127.0.0.1:0 -alg DemCOM -seed 42 \
    -replay "$tmp/stream.csv" -port-file "$tmp/port2.txt" \
    -wal-dir "$tmp/wal" -fsync-batch 8 -snapshot-every 100 \
    > "$tmp/comserve2.log" 2>&1 &
srv2=$!
wait_port "$tmp/port2.txt" "$srv2" "$tmp/comserve2.log"
addr2="$(cat "$tmp/port2.txt")"
echo "    listening on $addr2 (wal: $tmp/wal)"

# Throttled push in the background so the kill lands mid-stream; this
# client dies with its server, which is expected.
"$tmp/comload" -url "http://$addr2" -in "$tmp/stream.csv" \
    -conns 4 -batch 8 -retries 50 -qps 400 \
    > /dev/null 2>&1 &
load=$!
sleep 0.7
kill -9 "$srv2"
wait_dead "$srv2" "$tmp/comserve2.log"
wait "$load" 2>/dev/null || true
echo "    killed comserve mid-stream"

echo "==> restart on the same WAL and resume the push"
"$tmp/comserve" -addr 127.0.0.1:0 -alg DemCOM -seed 42 \
    -replay "$tmp/stream.csv" -port-file "$tmp/port3.txt" \
    -wal-dir "$tmp/wal" -fsync-batch 8 -snapshot-every 100 \
    > "$tmp/comserve3.log" 2>&1 &
srv3=$!
wait_port "$tmp/port3.txt" "$srv3" "$tmp/comserve3.log"
addr3="$(cat "$tmp/port3.txt")"
grep -q "comserve: recovered" "$tmp/comserve3.log" || {
    echo "restart did not recover from the WAL" >&2
    cat "$tmp/comserve3.log" >&2
    exit 1
}
echo "    $(grep 'comserve: recovered' "$tmp/comserve3.log")"

# Re-push the whole stream: recovered events dedupe as "resumed", the
# rest apply. Zero failures required.
"$tmp/comload" -url "http://$addr3" -in "$tmp/stream.csv" \
    -conns 8 -batch 16 -retries 50 -label chaos -out "$tmp/load2.json"

kill -TERM "$srv3"
wait_dead "$srv3" "$tmp/comserve3.log"
cat "$tmp/comserve3.log"

recovered="$(grep "comserve: matched" "$tmp/comserve3.log")"
if [ "$recovered" != "$oracle" ]; then
    echo "chaos: recovered summary differs from the uninterrupted run" >&2
    echo "    clean:     $oracle" >&2
    echo "    recovered: $recovered" >&2
    exit 1
fi
echo "    recovery is bit-exact: $recovered"

echo "==> OK"
