#!/bin/sh
# Serving smoke: boot comserve on a random port in replay mode, push
# the recorded stream through comload, assert a non-empty match count
# and a clean drain on SIGTERM. Then the chaos phase: the same replay
# with a write-ahead log, SIGKILL mid-stream, restart on the same log
# directory, re-push, and assert the final drain summary is identical
# to the uninterrupted run — crash recovery is bit-exact. Finally the
# fleet chaos phase: a comroute router over three replay shards (each
# serving its spatial-hash sub-stream with its own WAL), SIGKILL one
# shard mid-push, restart it with background WAL recovery on the same
# address, re-push through the router, and assert every shard's drain
# summary matches the uninterrupted fleet oracle — a partial outage
# stays partial and recovery is bit-exact per shard. This is the CI
# end-to-end check for the live matching service (see README
# "Serving").
# Usage: scripts/serve_smoke.sh  (or `make serve-smoke`)
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# wait_port portfile pid logfile: block until comserve writes its port.
wait_port() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "comserve never wrote its port file" >&2
            cat "$3" >&2
            kill "$2" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
}

# wait_dead pid logfile: block until the process exits.
wait_dead() {
    i=0
    while kill -0 "$1" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "comserve did not exit" >&2
            cat "$2" >&2
            kill -9 "$1" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
}

echo "==> build"
go build -o "$tmp/comserve" ./cmd/comserve
go build -o "$tmp/comload" ./cmd/comload
go build -o "$tmp/comroute" ./cmd/comroute
go run ./cmd/comgen -requests 400 -workers 300 -seed 42 > "$tmp/stream.csv"

echo "==> boot comserve (replay mode, random port)"
"$tmp/comserve" -addr 127.0.0.1:0 -alg DemCOM -seed 42 \
    -replay "$tmp/stream.csv" -port-file "$tmp/port.txt" \
    > "$tmp/comserve.log" 2>&1 &
srv=$!
wait_port "$tmp/port.txt" "$srv" "$tmp/comserve.log"
addr="$(cat "$tmp/port.txt")"
echo "    listening on $addr"

echo "==> push the workload through comload"
"$tmp/comload" -url "http://$addr" -in "$tmp/stream.csv" \
    -conns 8 -batch 16 -retries 20 -min-matched 1 -label smoke \
    -out "$tmp/load.json"

echo "==> drain on SIGTERM"
kill -TERM "$srv"
wait_dead "$srv" "$tmp/comserve.log"

cat "$tmp/comserve.log"
grep -q "matched" "$tmp/comserve.log" || {
    echo "comserve summary missing" >&2
    exit 1
}
oracle="$(grep "comserve: matched" "$tmp/comserve.log")"

echo "==> chaos: replay with a WAL, SIGKILL mid-stream"
"$tmp/comserve" -addr 127.0.0.1:0 -alg DemCOM -seed 42 \
    -replay "$tmp/stream.csv" -port-file "$tmp/port2.txt" \
    -wal-dir "$tmp/wal" -fsync-batch 8 -snapshot-every 100 \
    > "$tmp/comserve2.log" 2>&1 &
srv2=$!
wait_port "$tmp/port2.txt" "$srv2" "$tmp/comserve2.log"
addr2="$(cat "$tmp/port2.txt")"
echo "    listening on $addr2 (wal: $tmp/wal)"

# Throttled push in the background so the kill lands mid-stream; this
# client dies with its server, which is expected.
"$tmp/comload" -url "http://$addr2" -in "$tmp/stream.csv" \
    -conns 4 -batch 8 -retries 50 -qps 400 \
    > /dev/null 2>&1 &
load=$!
sleep 0.7
kill -9 "$srv2"
wait_dead "$srv2" "$tmp/comserve2.log"
wait "$load" 2>/dev/null || true
echo "    killed comserve mid-stream"

echo "==> restart on the same WAL and resume the push"
"$tmp/comserve" -addr 127.0.0.1:0 -alg DemCOM -seed 42 \
    -replay "$tmp/stream.csv" -port-file "$tmp/port3.txt" \
    -wal-dir "$tmp/wal" -fsync-batch 8 -snapshot-every 100 \
    > "$tmp/comserve3.log" 2>&1 &
srv3=$!
wait_port "$tmp/port3.txt" "$srv3" "$tmp/comserve3.log"
addr3="$(cat "$tmp/port3.txt")"
grep -q "comserve: recovered" "$tmp/comserve3.log" || {
    echo "restart did not recover from the WAL" >&2
    cat "$tmp/comserve3.log" >&2
    exit 1
}
echo "    $(grep 'comserve: recovered' "$tmp/comserve3.log")"

# Re-push the whole stream: recovered events dedupe as "resumed", the
# rest apply. Zero failures required.
"$tmp/comload" -url "http://$addr3" -in "$tmp/stream.csv" \
    -conns 8 -batch 16 -retries 50 -label chaos -out "$tmp/load2.json"

kill -TERM "$srv3"
wait_dead "$srv3" "$tmp/comserve3.log"
cat "$tmp/comserve3.log"

recovered="$(grep "comserve: matched" "$tmp/comserve3.log")"
if [ "$recovered" != "$oracle" ]; then
    echo "chaos: recovered summary differs from the uninterrupted run" >&2
    echo "    clean:     $oracle" >&2
    echo "    recovered: $recovered" >&2
    exit 1
fi
echo "    recovery is bit-exact: $recovered"

# ----------------------------------------------------------------------
# Geo-sharded engine: the same replay served on 4 in-process shard
# goroutines with the cross-shard claim protocol. Two independent runs
# must produce identical drain summaries — sharded serving is
# deterministic run to run — and the metrics document must carry the
# per-shard section.
# ----------------------------------------------------------------------

echo "==> geo-sharded replay (twice, -shards 4): run-to-run determinism"
gs_summary=""
for run in 1 2; do
    "$tmp/comserve" -addr 127.0.0.1:0 -alg DemCOM -seed 42 -shards 4 \
        -replay "$tmp/stream.csv" -port-file "$tmp/gs$run.port" \
        > "$tmp/gs$run.log" 2>&1 &
    gs=$!
    wait_port "$tmp/gs$run.port" "$gs" "$tmp/gs$run.log"
    gsaddr="$(cat "$tmp/gs$run.port")"
    "$tmp/comload" -url "http://$gsaddr" -in "$tmp/stream.csv" \
        -conns 8 -batch 16 -retries 20 -min-matched 1 -label "sharded-$run" \
        -out "$tmp/gsload$run.json"
    if [ "$run" = "1" ]; then
        curl -sf "http://$gsaddr/v1/metrics" > "$tmp/gs-metrics.json" || {
            echo "sharded: /v1/metrics unreachable" >&2
            exit 1
        }
        grep -q '"shards"' "$tmp/gs-metrics.json" || {
            echo "sharded: /v1/metrics has no per-shard section" >&2
            cat "$tmp/gs-metrics.json" >&2
            exit 1
        }
    fi
    kill -TERM "$gs"
    wait_dead "$gs" "$tmp/gs$run.log"
    got="$(grep "comserve: matched" "$tmp/gs$run.log")" || {
        echo "sharded run $run: summary missing" >&2
        cat "$tmp/gs$run.log" >&2
        exit 1
    }
    if [ "$run" = "1" ]; then
        gs_summary="$got"
        echo "    sharded run 1: $got"
    elif [ "$got" != "$gs_summary" ]; then
        echo "sharded replay is not deterministic run to run" >&2
        echo "    run 1: $gs_summary" >&2
        echo "    run 2: $got" >&2
        exit 1
    else
        echo "    sharded run 2 is bit-exact: $got"
    fi
done

# ----------------------------------------------------------------------
# Fleet chaos: router + 3 shards, SIGKILL one mid-push, restart with
# background WAL recovery, full re-push, per-shard oracle comparison.
# ----------------------------------------------------------------------

echo "==> fleet: split the stream by shard ownership"
"$tmp/comroute" -split "$tmp/stream.csv" -names s1,s2,s3 -out "$tmp/shards"

# boot_shard name csv logfile portfile [extra flags...]
boot_shard() {
    bs_name=$1 bs_csv=$2 bs_log=$3 bs_port=$4
    shift 4
    "$tmp/comserve" -alg DemCOM -seed 42 -replay "$bs_csv" \
        -port-file "$bs_port" "$@" > "$bs_log" 2>&1 &
    bs_pid=$!
    wait_port "$bs_port" "$bs_pid" "$bs_log"
}

echo "==> fleet oracle: uninterrupted 3-shard run through the router"
for s in s1 s2 s3; do
    boot_shard "$s" "$tmp/shards/$s.csv" "$tmp/oracle-$s.log" "$tmp/oracle-$s.port" \
        -addr 127.0.0.1:0
    eval "oracle_${s}_pid=$bs_pid"
done
"$tmp/comroute" -addr 127.0.0.1:0 -port-file "$tmp/oracle-router.port" \
    -shards "s1=http://$(cat "$tmp/oracle-s1.port"),s2=http://$(cat "$tmp/oracle-s2.port"),s3=http://$(cat "$tmp/oracle-s3.port")" \
    > "$tmp/oracle-router.log" 2>&1 &
orouter=$!
wait_port "$tmp/oracle-router.port" "$orouter" "$tmp/oracle-router.log"

"$tmp/comload" -url "http://$(cat "$tmp/oracle-router.port")" -in "$tmp/stream.csv" \
    -conns 8 -batch 8 -retries 50 -unavail-retries 100 -min-matched 1 \
    -label fleet-oracle -out "$tmp/fleet-oracle.json"

kill -TERM "$orouter" 2>/dev/null || true
for s in s1 s2 s3; do
    eval "pid=\$oracle_${s}_pid"
    kill -TERM "$pid"
    wait_dead "$pid" "$tmp/oracle-$s.log"
    grep "comserve: matched" "$tmp/oracle-$s.log" > "$tmp/oracle-$s.matched" || {
        echo "fleet oracle: shard $s summary missing" >&2
        cat "$tmp/oracle-$s.log" >&2
        exit 1
    }
    echo "    oracle $s: $(cat "$tmp/oracle-$s.matched")"
done
wait "$orouter" 2>/dev/null || true

echo "==> fleet chaos: 3 WAL shards, SIGKILL s2 mid-push"
for s in s1 s2 s3; do
    boot_shard "$s" "$tmp/shards/$s.csv" "$tmp/fleet-$s.log" "$tmp/fleet-$s.port" \
        -addr 127.0.0.1:0 -wal-dir "$tmp/fwal-$s" -fsync-batch 8 -snapshot-every 100
    eval "fleet_${s}_pid=$bs_pid"
done
s2addr="$(cat "$tmp/fleet-s2.port")"
"$tmp/comroute" -addr 127.0.0.1:0 -port-file "$tmp/fleet-router.port" \
    -shards "s1=http://$(cat "$tmp/fleet-s1.port"),s2=http://$s2addr,s3=http://$(cat "$tmp/fleet-s3.port")" \
    -probe-interval 50ms \
    > "$tmp/fleet-router.log" 2>&1 &
frouter=$!
wait_port "$tmp/fleet-router.port" "$frouter" "$tmp/fleet-router.log"
raddr="$(cat "$tmp/fleet-router.port")"

# Paced background push so the SIGKILL lands mid-stream. Dead-shard
# lines answer unavailable and are retried or dropped client-side;
# the full re-push below settles everything.
"$tmp/comload" -url "http://$raddr" -in "$tmp/stream.csv" \
    -conns 4 -batch 8 -qps 400 -retries 50 -unavail-retries 5 \
    > /dev/null 2>&1 &
fload=$!
sleep 0.7
eval "pid=\$fleet_s2_pid"
kill -9 "$pid"
wait_dead "$pid" "$tmp/fleet-s2.log"
wait "$fload" 2>/dev/null || true
echo "    killed shard s2 mid-stream"

echo "==> fleet: restart s2 with background WAL recovery, re-push"
boot_shard s2 "$tmp/shards/s2.csv" "$tmp/fleet-s2b.log" "$tmp/fleet-s2b.port" \
    -addr "$s2addr" -wal-dir "$tmp/fwal-s2" -fsync-batch 8 -snapshot-every 100 \
    -recover-bg
fleet_s2_pid=$bs_pid

# Full re-push through the router: recovered events dedupe as resumed,
# the killed shard's cells ride out recovery on the unavailable budget.
# Zero failures required (comload exits non-zero otherwise).
"$tmp/comload" -url "http://$raddr" -in "$tmp/stream.csv" \
    -conns 8 -batch 8 -retries 100 -unavail-retries 400 -min-matched 1 \
    -label fleet-chaos -out "$tmp/fleet-chaos.json"

grep -q "comserve: recovered" "$tmp/fleet-s2b.log" || {
    echo "fleet chaos: restarted shard did not recover from its WAL" >&2
    cat "$tmp/fleet-s2b.log" >&2
    exit 1
}
echo "    $(grep 'comserve: recovered' "$tmp/fleet-s2b.log")"

kill -TERM "$frouter" 2>/dev/null || true
for s in s1 s2 s3; do
    eval "pid=\$fleet_${s}_pid"
    kill -TERM "$pid"
    log="$tmp/fleet-$s.log"
    [ "$s" = s2 ] && log="$tmp/fleet-s2b.log"
    wait_dead "$pid" "$log"
    got="$(grep "comserve: matched" "$log" || true)"
    want="$(cat "$tmp/oracle-$s.matched")"
    if [ "$got" != "$want" ]; then
        echo "fleet chaos: shard $s summary differs from the oracle" >&2
        echo "    oracle: $want" >&2
        echo "    chaos:  $got" >&2
        cat "$log" >&2
        exit 1
    fi
    echo "    $s is bit-exact: $got"
done
wait "$frouter" 2>/dev/null || true
cat "$tmp/fleet-router.log"
grep -q "comroute: shard s2" "$tmp/fleet-router.log" || {
    echo "fleet chaos: router summary missing" >&2
    exit 1
}

echo "==> OK"
