#!/bin/sh
# Serving smoke: boot comserve on a random port in replay mode, push
# the recorded stream through comload, assert a non-empty match count
# and a clean drain on SIGTERM. This is the CI end-to-end check for the
# live matching service (see README "Serving").
# Usage: scripts/serve_smoke.sh  (or `make serve-smoke`)
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "==> build"
go build -o "$tmp/comserve" ./cmd/comserve
go build -o "$tmp/comload" ./cmd/comload
go run ./cmd/comgen -requests 400 -workers 300 -seed 42 > "$tmp/stream.csv"

echo "==> boot comserve (replay mode, random port)"
"$tmp/comserve" -addr 127.0.0.1:0 -alg DemCOM -seed 42 \
    -replay "$tmp/stream.csv" -port-file "$tmp/port.txt" \
    > "$tmp/comserve.log" 2>&1 &
srv=$!

i=0
while [ ! -s "$tmp/port.txt" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "comserve never wrote its port file" >&2
        cat "$tmp/comserve.log" >&2
        kill "$srv" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
addr="$(cat "$tmp/port.txt")"
echo "    listening on $addr"

echo "==> push the workload through comload"
"$tmp/comload" -url "http://$addr" -in "$tmp/stream.csv" \
    -conns 8 -batch 16 -retries 20 -min-matched 1 -label smoke \
    -out "$tmp/load.json"

echo "==> drain on SIGTERM"
kill -TERM "$srv"
i=0
while kill -0 "$srv" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "comserve did not exit after SIGTERM" >&2
        cat "$tmp/comserve.log" >&2
        kill -9 "$srv" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done

cat "$tmp/comserve.log"
grep -q "matched" "$tmp/comserve.log" || {
    echo "comserve summary missing" >&2
    exit 1
}

echo "==> OK"
