GO ?= go

.PHONY: build vet test race bench bench-json check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Machine-readable numbers for the table benchmarks and the decision
# tracer's overhead benchmark (ns/op, B/op, allocs/op + custom units),
# written to BENCH_PR4.json. CI runs this as a smoke — no thresholds.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkTableSequential$$|BenchmarkTableV|BenchmarkTraceOverhead' -benchmem . \
		| $(GO) run ./cmd/benchjson -out BENCH_PR4.json

check:
	sh scripts/check.sh

clean:
	$(GO) clean ./...
