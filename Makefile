GO ?= go

.PHONY: build vet test race bench bench-json bench-guard check serve-smoke clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Machine-readable numbers for the table benchmarks and the decision
# tracer's overhead benchmark (ns/op, B/op, allocs/op + custom units),
# written to BENCH_$(BENCH_LABEL).json. CI runs this as a smoke — no
# thresholds.
BENCH_LABEL ?= PR5
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkTableSequential$$|BenchmarkTableV|BenchmarkTraceOverhead' -benchmem . \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL)

# Allocation regression guard for the pricing/eligibility hot path:
# BenchmarkTableV's allocs/op must stay within 10% of the committed
# BENCH_PR6.json baseline. Allocation counts are deterministic, so the
# threshold holds on shared machines where ns/op thresholds would not.
bench-guard:
	sh scripts/bench_guard.sh

check:
	sh scripts/check.sh

# End-to-end serving smoke: boot comserve in replay mode, push the
# stream through comload, assert matches land and SIGTERM drains clean.
serve-smoke:
	sh scripts/serve_smoke.sh

clean:
	$(GO) clean ./...
