GO ?= go

.PHONY: build test race bench check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

check:
	sh scripts/check.sh

clean:
	$(GO) clean ./...
