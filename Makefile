GO ?= go

.PHONY: build vet test race bench check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

check:
	sh scripts/check.sh

clean:
	$(GO) clean ./...
