package crossmatch_test

import (
	"context"
	"fmt"
	"log"

	"crossmatch"
)

// The paper's running Example 1: five requests, five workers, two
// platforms. TOTA is deterministic (greedy nearest inner worker), so
// its outcome is exactly the hand-computed 16.
func ExampleSimulateContext() {
	stream, err := crossmatch.ExampleStream()
	if err != nil {
		log.Fatal(err)
	}
	res, err := crossmatch.SimulateContext(context.Background(), stream,
		crossmatch.TOTA, crossmatch.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revenue %.1f, served %d of %d\n",
		res.TotalRevenue(), res.TotalServed(), len(stream.Requests()))
	// Output: revenue 16.0, served 3 of 5
}

// The offline optimum (OFF) serves all five requests of Example 1 by
// borrowing the two outer workers at their cheapest historical fees.
func ExampleOffline() {
	stream, err := crossmatch.ExampleStream()
	if err != nil {
		log.Fatal(err)
	}
	off, err := crossmatch.Offline(stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimum %.1f, served %d\n", off.TotalWeight, off.TotalServed)
	// Output: optimum 24.5, served 5
}

// Building a stream by hand: one worker, one request it can serve.
func ExampleNewStream() {
	w := &crossmatch.Worker{ID: 1, Arrival: 1, Radius: 2, Platform: 1}
	r := &crossmatch.Request{ID: 1, Arrival: 5, Value: 12, Platform: 1}
	stream, err := crossmatch.NewStream([]*crossmatch.Worker{w}, []*crossmatch.Request{r})
	if err != nil {
		log.Fatal(err)
	}
	res, err := crossmatch.SimulateContext(context.Background(), stream, crossmatch.TOTA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revenue %.0f\n", res.TotalRevenue())
	// Output: revenue 12
}

// Cooperation can be disabled to measure what borrowing is worth: with
// the hub off, DemCOM degrades exactly to the TOTA baseline.
func ExampleSimulateContext_withCoopDisabled() {
	stream, err := crossmatch.ExampleStream()
	if err != nil {
		log.Fatal(err)
	}
	solo, err := crossmatch.SimulateContext(context.Background(), stream,
		crossmatch.DemCOM, crossmatch.WithSeed(1), crossmatch.WithCoopDisabled())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revenue %.1f, cooperative %d\n", solo.TotalRevenue(), solo.CooperativeServed())
	// Output: revenue 16.0, cooperative 0
}

// A shared Metrics collector tallies matches, rejections, acceptance
// probes and per-platform decision latencies; it is safe to share
// across concurrent simulations.
func ExampleSimulateContext_withMetrics() {
	stream, err := crossmatch.ExampleStream()
	if err != nil {
		log.Fatal(err)
	}
	m := crossmatch.NewMetrics()
	if _, err := crossmatch.SimulateContext(context.Background(), stream,
		crossmatch.TOTA, crossmatch.WithSeed(1), crossmatch.WithMetrics(m)); err != nil {
		log.Fatal(err)
	}
	rep := m.Snapshot()
	fmt.Printf("runs %d, matched %d, rejected %d\n",
		rep.Counters.Runs, rep.Counters.InnerMatches, rep.Counters.Rejections)
	// Output: runs 1, matched 3, rejected 2
}
