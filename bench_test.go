package crossmatch

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section V). Each iteration regenerates the experiment end to end at a
// bench-friendly scale; EXPERIMENTS.md records the scales used for the
// published reproduction and maps every benchmark to its paper artefact.
//
//	BenchmarkTableV    -> Table V   (RDC10+RYC10)
//	BenchmarkTableVI   -> Table VI  (RDC11+RYC11)
//	BenchmarkTableVII  -> Table VII (RDX11+RYX11)
//	BenchmarkFig5a..d  -> Fig. 5(a)-(d): revenue/response/memory/acceptance vs |R|
//	BenchmarkFig5e..h  -> Fig. 5(e)-(h): ... vs |W|
//	BenchmarkFig5i..l  -> Fig. 5(i)-(l): ... vs rad
//	BenchmarkCompetitiveRatio -> the CR_RO study (Definitions 2.7/2.8)
//	BenchmarkAblations -> DESIGN.md's design-choice ablations
//
// Full-scale reproductions are driven by cmd/combench, not the benches.

import (
	"context"
	"os"
	"sync"
	"testing"

	"crossmatch/internal/experiments"
	"crossmatch/internal/workload"
)

const (
	benchTableScale = 0.01
	benchSeed       = 42
)

func benchTable(b *testing.B, preset string) {
	b.Helper()
	p, ok := workload.PresetByName(preset)
	if !ok {
		b.Fatalf("preset %q missing", preset)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable(p, experiments.TableOptions{
			Scale: benchTableScale, Seed: benchSeed, Repeats: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, res)
	}
}

// reportTable surfaces the headline metrics of the last run as custom
// benchmark units so `go test -bench` output doubles as a result sheet.
func reportTable(b *testing.B, res *experiments.TableResult) {
	for _, row := range res.Rows {
		switch row.Method {
		case "OFF":
			b.ReportMetric(row.RevD+row.RevY, "OFF-rev")
		case "TOTA":
			b.ReportMetric(row.RevD+row.RevY, "TOTA-rev")
		case "DemCOM":
			b.ReportMetric(row.RevD+row.RevY, "DemCOM-rev")
		case "RamCOM":
			b.ReportMetric(row.RevD+row.RevY, "RamCOM-rev")
		}
	}
}

func BenchmarkTableV(b *testing.B)   { benchTable(b, "RDC10+RYC10") }
func BenchmarkTableVI(b *testing.B)  { benchTable(b, "RDC11+RYC11") }
func BenchmarkTableVII(b *testing.B) { benchTable(b, "RDX11+RYX11") }

// Sweeps are shared per axis across their four figures: Fig. 5(a)-(d)
// all come from the |R| sweep, etc. A sync.Once per axis keeps
// `go test -bench=.` from re-running the same sweep four times while
// still letting each figure be benchmarked individually.
var (
	sweepOnce   [3]sync.Once
	sweepCache  [3]*experiments.SweepResult
	sweepErrors [3]error
)

func benchSweep(b *testing.B, idx int, axis experiments.SweepAxis, cap float64, metric string) {
	b.Helper()
	run := func() (*experiments.SweepResult, error) {
		return experiments.RunSweep(axis, experiments.SweepOptions{
			Seed: benchSeed, Repeats: 1, ScaleCap: cap,
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var res *experiments.SweepResult
		var err error
		if i == 0 {
			sweepOnce[idx].Do(func() { sweepCache[idx], sweepErrors[idx] = run() })
			res, err = sweepCache[idx], sweepErrors[idx]
		} else {
			res, err = run()
		}
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Xs) - 1
		for _, algo := range res.Algos {
			p, ok := res.Get(algo, last)
			if !ok {
				b.Fatalf("missing point for %s", algo)
			}
			switch metric {
			case "revenue":
				b.ReportMetric(p.Revenue, algo+"-rev")
			case "response":
				b.ReportMetric(p.ResponseMs, algo+"-ms")
			case "memory":
				b.ReportMetric(p.MemoryMB, algo+"-MB")
			case "acceptance":
				b.ReportMetric(p.AcptRatio, algo+"-acp")
			}
		}
	}
}

const (
	benchCapR   = 5000
	benchCapW   = 1000
	benchCapRad = 1.5
)

func BenchmarkFig5a(b *testing.B) { benchSweep(b, 0, experiments.AxisRequests, benchCapR, "revenue") }
func BenchmarkFig5b(b *testing.B) { benchSweep(b, 0, experiments.AxisRequests, benchCapR, "response") }
func BenchmarkFig5c(b *testing.B) { benchSweep(b, 0, experiments.AxisRequests, benchCapR, "memory") }
func BenchmarkFig5d(b *testing.B) {
	benchSweep(b, 0, experiments.AxisRequests, benchCapR, "acceptance")
}
func BenchmarkFig5e(b *testing.B) { benchSweep(b, 1, experiments.AxisWorkers, benchCapW, "revenue") }
func BenchmarkFig5f(b *testing.B) { benchSweep(b, 1, experiments.AxisWorkers, benchCapW, "response") }
func BenchmarkFig5g(b *testing.B) { benchSweep(b, 1, experiments.AxisWorkers, benchCapW, "memory") }
func BenchmarkFig5h(b *testing.B) {
	benchSweep(b, 1, experiments.AxisWorkers, benchCapW, "acceptance")
}
func BenchmarkFig5i(b *testing.B) { benchSweep(b, 2, experiments.AxisRadius, benchCapRad, "revenue") }
func BenchmarkFig5j(b *testing.B) { benchSweep(b, 2, experiments.AxisRadius, benchCapRad, "response") }
func BenchmarkFig5k(b *testing.B) { benchSweep(b, 2, experiments.AxisRadius, benchCapRad, "memory") }
func BenchmarkFig5l(b *testing.B) {
	benchSweep(b, 2, experiments.AxisRadius, benchCapRad, "acceptance")
}

func BenchmarkCompetitiveRatio(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCompetitiveRatio(experiments.CROptions{
			Instances: 5, Orders: 4, Requests: 100, Workers: 30, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MinRatio["DemCOM"], "DemCOM-CR")
		b.ReportMetric(res.MinRatio["RamCOM"], "RamCOM-CR")
	}
}

func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblations(experiments.AblationOptions{
			Requests: 800, Workers: 160, Repeats: 1, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty ablation result")
		}
	}
}

// BenchmarkRoadNet measures the Section VII extension study: Euclidean
// vs shortest-path service ranges.
func BenchmarkRoadNet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRoadNet(experiments.RoadNetOptions{
			Requests: 600, Workers: 120, Repeats: 1, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 6 {
			b.Fatal("unexpected road-net result shape")
		}
	}
}

// BenchmarkValueDist measures the Table IV value-distribution factor
// study ({real, normal}).
func BenchmarkValueDist(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunValueDist(experiments.ValueDistOptions{
			Requests: 800, Workers: 160, Repeats: 1, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 6 {
			b.Fatal("unexpected value-dist result shape")
		}
	}
}

// benchTableRunner measures RunTable end to end on the synthetic
// Table IV workload with a fixed pool size, so
// BenchmarkTableSequential vs BenchmarkTableParallel quantifies the
// concurrent experiment engine's speedup (they compute identical
// tables; see TestRunTableDeterministicAcrossPoolSizes).
func benchTableRunner(b *testing.B, parallelism int) {
	b.Helper()
	p := workload.SyntheticPreset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable(p, experiments.TableOptions{
			Scale: 0.2, Seed: benchSeed, Repeats: 2,
			Runner: &experiments.Runner{Parallelism: parallelism},
		})
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, res)
	}
}

func BenchmarkTableSequential(b *testing.B) { benchTableRunner(b, 1) }
func BenchmarkTableParallel(b *testing.B)   { benchTableRunner(b, 0) }

// BenchmarkDecisionLatency isolates the per-request decision cost of
// each online matcher (the quantity behind the paper's "response time"
// columns), excluding stream generation.
func BenchmarkDecisionLatency(b *testing.B) {
	cfg, err := workload.Synthetic(2500, 500, 1.0, "real")
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.Generate(cfg, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range []string{TOTA, DemCOM, RamCOM} {
		b.Run(alg, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(stream, alg, SimOptions{Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchPlatformRuntime measures one multi-platform simulation end to
// end, excluding stream generation, under either runtime.
// BenchmarkPlatformSequentialRuntime vs BenchmarkPlatformParallelRuntime
// quantifies what running each platform on its own goroutine buys (and
// what hub locking costs) on a contended multi-platform workload.
func benchPlatformRuntime(b *testing.B, platformParallel bool) {
	b.Helper()
	cfg, err := workload.SyntheticMulti(6, 3000, 600, 1.0, "real")
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.Generate(cfg, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	opts := []Option{WithSeed(benchSeed)}
	if platformParallel {
		opts = append(opts, WithPlatformParallel())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := SimulateContext(context.Background(), stream, DemCOM, opts...)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TotalRevenue(), "rev")
	}
}

func BenchmarkPlatformSequentialRuntime(b *testing.B) { benchPlatformRuntime(b, false) }
func BenchmarkPlatformParallelRuntime(b *testing.B)   { benchPlatformRuntime(b, true) }

// BenchmarkTraceOverhead prices the decision tracer on a DemCOM
// simulation: "off" is the production default (no tracer, every span
// call a nil-receiver no-op), "sampled" traces 10% of requests, "full"
// traces all of them. The off/full gap is the cost of stage timestamps
// and ring commits; off vs BenchmarkDecisionLatency history quantifies
// the nil-path instrumentation itself (see BENCH_PR4.json).
func BenchmarkTraceOverhead(b *testing.B) {
	cfg, err := workload.Synthetic(2500, 500, 1.0, "real")
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.Generate(cfg, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opts ...Option) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			all := append([]Option{WithSeed(benchSeed)}, opts...)
			if _, err := SimulateContext(context.Background(), stream, DemCOM, all...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b) })
	b.Run("sampled", func(b *testing.B) {
		tr := NewTracer(TraceOptions{Seed: benchSeed})
		run(b, WithTracer(tr), WithTraceSample(0.1))
	})
	b.Run("full", func(b *testing.B) {
		tr := NewTracer(TraceOptions{Seed: benchSeed})
		run(b, WithTracer(tr))
	})
}

// TestDisabledTracerOverheadGuard asserts the tracing layer's core
// promise: with no tracer attached, the instrumented engine must run
// the table workload within 2% of a run that additionally carries a
// tracer in disabled-sampling mode — i.e. the disabled path is flag
// checks, not work. Timing assertions are inherently machine-sensitive,
// so the guard only runs when CROSSMATCH_BENCH_GUARD=1 (the bench-json
// CI smoke records the numbers without thresholds instead).
func TestDisabledTracerOverheadGuard(t *testing.T) {
	if os.Getenv("CROSSMATCH_BENCH_GUARD") != "1" {
		t.Skip("set CROSSMATCH_BENCH_GUARD=1 to run the timing guard")
	}
	p := workload.SyntheticPreset()
	measure := func(r *experiments.Runner) float64 {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := experiments.RunTable(p, experiments.TableOptions{
						Scale: 0.1, Seed: benchSeed, Repeats: 1, Runner: r,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
			ns := float64(res.NsPerOp())
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	bare := measure(&experiments.Runner{Parallelism: 1})
	disabled := measure(&experiments.Runner{
		Parallelism: 1,
		Trace:       NewTracer(TraceOptions{Seed: benchSeed}),
		TraceSample: -1, // recorder attached, recording disabled
	})
	if ratio := disabled / bare; ratio > 1.02 {
		t.Errorf("disabled tracer costs %.1f%% (bare %.0fns vs disabled-trace %.0fns); want <= 2%%",
			(ratio-1)*100, bare, disabled)
	}
}

// BenchmarkBatchWindow measures one BatchCOM windowed-dispatch
// simulation end to end, excluding stream generation: the per-window
// buffer/flush machinery, the batch edge-set build and the canonical
// per-window matching. Guarded by allocs/op against BENCH_PR9.json in
// scripts/bench_guard.sh — the windowed hot path must not quietly start
// allocating per buffered request.
// BenchmarkShardedEngine drives the geo-sharded runtime (4 shards, the
// async cross-shard claim protocol on every boundary request) over a
// dense two-platform city through the public API. Guarded by
// bench_guard.sh against BENCH_PR10.json on allocs/op.
func BenchmarkShardedEngine(b *testing.B) {
	cfg, err := workload.Synthetic(4500, 1000, 1.0, "real")
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.Generate(cfg, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	opts := []Option{WithSeed(benchSeed), WithShards(4)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := SimulateContext(context.Background(), stream, RamCOM, opts...)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TotalRevenue(), "rev")
		b.ReportMetric(float64(res.TotalServed()), "served")
	}
}

func BenchmarkBatchWindow(b *testing.B) {
	cfg, err := workload.Synthetic(2500, 500, 1.0, "real")
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.Generate(cfg, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	opts := []Option{WithSeed(benchSeed), WithBatchWindow(10)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := SimulateContext(context.Background(), stream, BatchCOM, opts...)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TotalRevenue(), "rev")
	}
}
