module crossmatch

go 1.22
