package cells_test

// Cross-package agreement: the fleet router (internal/route) and the
// in-process sharded engine (internal/shard) both resolve cell
// ownership through internal/cells. These fuzz targets pin that the
// three layers can never disagree — a request the router sends to
// process "sK" must land on in-process shard index K-1 of a sharded
// engine configured with the same shard count and cell size.

import (
	"math"
	"testing"

	"crossmatch/internal/cells"
	"crossmatch/internal/geo"
	"crossmatch/internal/route"
	"crossmatch/internal/shard"
)

func FuzzRouteShardAgree(f *testing.F) {
	f.Add(0.0, 0.0, uint8(4), 1.0)
	f.Add(-3.7, 12.2, uint8(1), 0.5)
	f.Add(1e6, -1e6, uint8(16), 2.0)
	f.Fuzz(func(t *testing.T, x, y float64, n uint8, cellSize float64) {
		if n == 0 || n > 16 {
			t.Skip()
		}
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			t.Skip()
		}
		if math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
			t.Skip()
		}
		loc := geo.Point{X: x, Y: y}
		names := cells.Names(int(n))

		// Layer 1: the fleet router's per-line dispatch.
		routeOwner := route.Owner(route.Cell(loc, cellSize), names)

		// Layer 2: the shared package directly.
		cellsOwner := cells.Owner(cells.Of(loc, cellSize), names)
		cellsIdx := cells.OwnerIndex(cells.Of(loc, cellSize), names)

		// Layer 3: the in-process engine partitioner.
		p := shard.NewPartitioner(int(n), cellSize)
		shardIdx := p.ShardOf(loc)

		if routeOwner != cellsOwner {
			t.Fatalf("route owner %q != cells owner %q at %v", routeOwner, cellsOwner, loc)
		}
		if names[cellsIdx] != cellsOwner {
			t.Fatalf("OwnerIndex %d (%s) != Owner %s", cellsIdx, names[cellsIdx], cellsOwner)
		}
		if shardIdx != cellsIdx {
			t.Fatalf("shard partitioner → %d, cells.OwnerIndex → %d at %v", shardIdx, cellsIdx, loc)
		}
	})
}

// FuzzTargetsSound checks the claim-protocol target set is sound: any
// shard owning a cell whose nearest point lies within reach of loc
// must appear in AppendTargets, and self never does.
func FuzzTargetsSound(f *testing.F) {
	f.Add(0.3, 0.9, uint8(4), 1.5)
	f.Add(-8.0, 2.0, uint8(8), 0.8)
	f.Fuzz(func(t *testing.T, x, y float64, n uint8, reach float64) {
		if n == 0 || n > 12 {
			t.Skip()
		}
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			t.Skip()
		}
		if math.IsNaN(reach) || reach <= 0 || reach > 64 {
			t.Skip()
		}
		// Keep coordinates small enough that cell arithmetic is exact.
		if math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
			t.Skip()
		}
		const cell = 1.0
		loc := geo.Point{X: x, Y: y}
		names := cells.Names(int(n))
		p := shard.NewPartitioner(int(n), cell)
		self := p.ShardOf(loc)
		got := p.AppendTargets(nil, self, loc, reach)
		set := map[int]bool{}
		for _, s := range got {
			if s == self {
				t.Fatalf("self %d in targets %v", self, got)
			}
			set[s] = true
		}
		// Brute-force: every cell in the bounding box whose rectangle
		// intersects the disk.
		lo := cells.Of(geo.Point{X: x - reach, Y: y - reach}, cell)
		hi := cells.Of(geo.Point{X: x + reach, Y: y + reach}, cell)
		for cx := lo.CX; cx <= hi.CX; cx++ {
			for cy := lo.CY; cy <= hi.CY; cy++ {
				dx := residual(x, float64(cx), cell)
				dy := residual(y, float64(cy), cell)
				if dx*dx+dy*dy > reach*reach {
					continue
				}
				o := cells.OwnerIndex(cells.Key{CX: cx, CY: cy}, names)
				if o != self && !set[o] {
					t.Fatalf("shard %d owns in-reach cell {%d,%d} but missing from targets %v", o, cx, cy, got)
				}
			}
		}
	})
}

func residual(v, lo, size float64) float64 {
	if v < lo {
		return lo - v
	}
	if v > lo+size {
		return v - lo - size
	}
	return 0
}
