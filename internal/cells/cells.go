// Package cells is the single source of truth for cell→shard
// ownership: the spatial-hash cell key (internal/index grid geometry)
// and the rendezvous (highest-random-weight) hash that assigns each
// cell to one shard of a named shard set.
//
// Both the fleet router (internal/route — which partitions arrival
// events across comserve processes) and the geo-sharded matching
// engine (internal/shard — which partitions matcher state across
// goroutines) import this package, so the two layers can never
// disagree about which shard owns a cell: a request routed to process
// "s3" by the fleet lands on the in-process shard that owns the same
// cells. A cross-package fuzz test (internal/cells/agree_test.go)
// pins the agreement.
package cells

import (
	"fmt"
	"sort"

	"crossmatch/internal/geo"
	"crossmatch/internal/index"
)

// Key identifies one spatial-hash cell, the unit of shard ownership.
type Key struct {
	CX, CY int32
}

// Of returns the owning cell of a point under the shared grid
// geometry (index.CellOf).
func Of(p geo.Point, cellSize float64) Key {
	cx, cy := index.CellOf(p, cellSize)
	return Key{CX: cx, CY: cy}
}

// Weight is the rendezvous (highest-random-weight) score of a shard
// for a cell: a 64-bit FNV-1a hash over the cell coordinates and the
// shard name, passed through a murmur-style avalanche finalizer. The
// finalizer matters: raw FNV-1a mixes the final input byte weakly, and
// shard names that differ only in their last character ("s1".."s4" —
// the natural naming) would make the rendezvous winner correlate with
// a couple of hash bits, skewing ownership badly (one shard can end up
// with half the cells). Everything here is fixed arithmetic, stable
// across processes and platforms — the splitter↔router↔engine
// agreement depends on that; speed is irrelevant at one hash per shard
// per event.
func Weight(c Key, shardName string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for _, v := range []int32{c.CX, c.CY} {
		u := uint32(v)
		mix(byte(u))
		mix(byte(u >> 8))
		mix(byte(u >> 16))
		mix(byte(u >> 24))
	}
	mix(0xfe) // domain separator between coordinates and name
	for i := 0; i < len(shardName); i++ {
		mix(shardName[i])
	}
	// fmix64 avalanche (MurmurHash3 finalizer constants).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Rank returns the shard names in descending rendezvous-weight order
// for a cell: Rank(...)[0] is the owner, the rest the failover
// preference chain. Adding or removing one shard moves only the cells
// that hashed to it — the consistent-hashing property that keeps a
// resize from reshuffling the whole fleet.
func Rank(c Key, shardNames []string) []string {
	out := append([]string(nil), shardNames...)
	sort.SliceStable(out, func(i, j int) bool {
		wi, wj := Weight(c, out[i]), Weight(c, out[j])
		if wi != wj {
			return wi > wj
		}
		return out[i] < out[j] // total order even under hash ties
	})
	return out
}

// Owner returns the rendezvous owner of a cell.
func Owner(c Key, shardNames []string) string {
	if len(shardNames) == 0 {
		return ""
	}
	best := shardNames[0]
	bw := Weight(c, best)
	for _, name := range shardNames[1:] {
		if w := Weight(c, name); w > bw || (w == bw && name < best) {
			best, bw = name, w
		}
	}
	return best
}

// OwnerIndex returns the index into shardNames of the rendezvous
// owner of a cell, or -1 for an empty shard set. The in-process
// sharded engine keys its shards by index; the fleet router keys
// them by name — both resolve through the same Weight, so
// shardNames[OwnerIndex(c, shardNames)] == Owner(c, shardNames).
func OwnerIndex(c Key, shardNames []string) int {
	if len(shardNames) == 0 {
		return -1
	}
	best := 0
	bw := Weight(c, shardNames[0])
	for i, name := range shardNames[1:] {
		if w := Weight(c, name); w > bw || (w == bw && name < shardNames[best]) {
			best, bw = i+1, w
		}
	}
	return best
}

// Names returns the canonical shard names for an n-shard deployment:
// "s1".."sN" — the naming every layer (route fleet manifests,
// serve_smoke.sh, the in-process sharded engine) uses so that
// ownership agrees by construction.
func Names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%d", i+1)
	}
	return out
}
