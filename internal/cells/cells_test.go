package cells

import (
	"math/rand"
	"testing"

	"crossmatch/internal/geo"
)

func TestRankHeadIsOwner(t *testing.T) {
	names := Names(5)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		c := Key{CX: int32(rng.Intn(400) - 200), CY: int32(rng.Intn(400) - 200)}
		rank := Rank(c, names)
		if len(rank) != len(names) {
			t.Fatalf("Rank dropped names: %v", rank)
		}
		if rank[0] != Owner(c, names) {
			t.Fatalf("cell %v: Rank[0]=%s, Owner=%s", c, rank[0], Owner(c, names))
		}
	}
}

func TestOwnerIndexAgreesWithOwner(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		names := Names(n)
		for cx := int32(-40); cx <= 40; cx++ {
			for cy := int32(-40); cy <= 40; cy++ {
				c := Key{CX: cx, CY: cy}
				i := OwnerIndex(c, names)
				if i < 0 || i >= n {
					t.Fatalf("OwnerIndex(%v, %d shards) = %d out of range", c, n, i)
				}
				if names[i] != Owner(c, names) {
					t.Fatalf("cell %v: OwnerIndex→%s, Owner→%s", c, names[i], Owner(c, names))
				}
			}
		}
	}
}

func TestOwnerEmptyAndSingle(t *testing.T) {
	if got := Owner(Key{CX: 1, CY: 2}, nil); got != "" {
		t.Fatalf("Owner with no shards = %q, want empty", got)
	}
	if got := OwnerIndex(Key{CX: 1, CY: 2}, nil); got != -1 {
		t.Fatalf("OwnerIndex with no shards = %d, want -1", got)
	}
	one := []string{"only"}
	for cx := int32(-10); cx <= 10; cx++ {
		if Owner(Key{CX: cx, CY: -cx}, one) != "only" {
			t.Fatal("single shard must own every cell")
		}
	}
}

func TestNames(t *testing.T) {
	got := Names(3)
	want := []string{"s1", "s2", "s3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names(3) = %v, want %v", got, want)
		}
	}
	if len(Names(0)) != 0 {
		t.Fatal("Names(0) must be empty")
	}
}

func TestOwnershipBalance(t *testing.T) {
	// The avalanche finalizer should spread ownership within a factor
	// of ~2 of fair across a contiguous grid (the guarantee the route
	// package relied on before the extraction).
	names := Names(4)
	counts := map[string]int{}
	for cx := int32(0); cx < 64; cx++ {
		for cy := int32(0); cy < 64; cy++ {
			counts[Owner(Key{CX: cx, CY: cy}, names)]++
		}
	}
	total := 64 * 64
	fair := total / len(names)
	for name, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Fatalf("shard %s owns %d of %d cells (fair share %d): skewed", name, n, total, fair)
		}
	}
}

func TestOfMatchesIndexGrid(t *testing.T) {
	c := Of(geo.Point{X: 1.2, Y: -0.3}, 1.0)
	if (c != Key{CX: 1, CY: -1}) {
		t.Fatalf("Of(1.2,-0.3) = %v, want {1 -1}", c)
	}
}

func TestWeightIsStable(t *testing.T) {
	// Pin the hash output: ownership must be stable across processes,
	// platforms and releases (recorded fleet manifests and WAL replay
	// depend on it). If this test ever fails the hash changed, which
	// silently re-partitions every recorded deployment.
	got := Weight(Key{CX: 3, CY: -7}, "s2")
	const want = uint64(0x8722e88f96d08111)
	if got != want {
		t.Fatalf("Weight({3,-7}, s2) = %#x, want %#x", got, want)
	}
}

func FuzzOwnerTotalOrder(f *testing.F) {
	f.Add(int32(0), int32(0), uint8(3))
	f.Add(int32(-5), int32(17), uint8(1))
	f.Add(int32(1000), int32(-1000), uint8(8))
	f.Fuzz(func(t *testing.T, cx, cy int32, n uint8) {
		if n == 0 || n > 16 {
			t.Skip()
		}
		names := Names(int(n))
		c := Key{CX: cx, CY: cy}
		owner := Owner(c, names)
		idx := OwnerIndex(c, names)
		if names[idx] != owner {
			t.Fatalf("OwnerIndex %d (%s) != Owner %s", idx, names[idx], owner)
		}
		if rank := Rank(c, names); rank[0] != owner {
			t.Fatalf("Rank head %s != Owner %s", rank[0], owner)
		}
		// Permuting the name list must not change the winner.
		perm := append([]string(nil), names...)
		r := rand.New(rand.NewSource(int64(cx)<<32 | int64(uint32(cy))))
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if got := Owner(c, perm); got != owner {
			t.Fatalf("Owner depends on name order: %s vs %s (perm %v)", got, owner, perm)
		}
	})
}

func BenchmarkOwnerIndex(b *testing.B) {
	names := Names(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := Key{CX: int32(i % 512), CY: int32(i % 251)}
		if OwnerIndex(c, names) < 0 {
			b.Fatal("no owner")
		}
	}
}
