package experiments

import (
	"fmt"

	"crossmatch/internal/platform"
	"crossmatch/internal/pricing"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

// VarianceOptions configures the seed-variance methodology study.
type VarianceOptions struct {
	Requests, Workers int
	Radius            float64
	// Seeds is how many independent seeds to measure (default 12).
	Seeds int
	Seed  int64
	// Runner fans the (algorithm × seed) unit runs across a worker pool;
	// nil uses GOMAXPROCS.
	Runner *Runner
}

func (o *VarianceOptions) withDefaults() VarianceOptions {
	out := *o
	if out.Requests <= 0 {
		out.Requests = 2500
	}
	if out.Workers <= 0 {
		out.Workers = 500
	}
	if out.Radius <= 0 {
		out.Radius = 1.0
	}
	if out.Seeds <= 0 {
		out.Seeds = 12
	}
	return out
}

// VarianceRow summarizes one algorithm's revenue spread over seeds.
type VarianceRow struct {
	Algorithm string
	Summary   platform.EnsembleSummary
}

// VarianceResult is the full study.
type VarianceResult struct {
	Opts VarianceOptions
	Rows []VarianceRow
}

// Table renders the study.
func (r *VarianceResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Seed variance over %d seeds (|R|=%d, |W|=%d): how many repeats do the randomized algorithms need?",
			r.Opts.Seeds, r.Opts.Requests, r.Opts.Workers),
		"Algorithm", "Mean revenue", "Min", "Max", "StdDev/Mean")
	for _, row := range r.Rows {
		s := row.Summary
		tb.Add(row.Algorithm,
			stats.FormatFloat(s.MeanRevenue, 1),
			stats.FormatFloat(s.MinRevenue, 1),
			stats.FormatFloat(s.MaxRevenue, 1),
			stats.FormatFloat(s.RevenueStdDevFrac, 4))
	}
	return tb
}

// RunVariance quantifies how noisy each algorithm's revenue is across
// seeds on a fixed stream: TOTA is deterministic (zero spread); DemCOM
// varies only through its Monte-Carlo payments and acceptance probes;
// RamCOM additionally draws its value threshold k per run, which
// dominates its spread. The result justifies the repeat counts used by
// the table and sweep harnesses (see EXPERIMENTS.md).
func RunVariance(opts VarianceOptions) (*VarianceResult, error) {
	o := opts.withDefaults()
	cfg, err := workload.Synthetic(o.Requests, o.Workers, o.Radius, "real")
	if err != nil {
		return nil, err
	}
	stream, err := workload.Generate(cfg, o.Seed)
	if err != nil {
		return nil, err
	}
	maxV := cfg.MaxValue()
	res := &VarianceResult{Opts: o}
	algos := []struct {
		name    string
		factory platform.MatcherFactory
	}{
		{platform.AlgTOTA, platform.TOTAFactory()},
		{platform.AlgDemCOM, platform.DemCOMFactory(pricing.DefaultMonteCarlo, false)},
		{platform.AlgRamCOM, platform.RamCOMFactory(maxV, platform.RamCOMOptions{})},
	}
	// All (algorithm × seed) unit runs share the read-only stream and
	// fan out together; run (ai, si) lands at ai*Seeds + si, so each
	// algorithm's ensemble summarizes over its seeds in order.
	runs, err := runAll(o.Runner, len(algos)*o.Seeds, func(i int) (*platform.Result, error) {
		a := algos[i/o.Seeds]
		seed := o.Seed + int64(i%o.Seeds)*6367
		return platform.Run(stream, a.factory, o.Runner.simConfig(seed, false, "variance/"+a.name))
	})
	if err != nil {
		return nil, err
	}
	for ai, a := range algos {
		sum, err := platform.Summarize(runs[ai*o.Seeds : (ai+1)*o.Seeds])
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, VarianceRow{Algorithm: a.name, Summary: sum})
	}
	return res, nil
}
