package experiments

import (
	"bytes"
	"strings"
	"testing"

	"crossmatch/internal/platform"
)

func TestRunVariance(t *testing.T) {
	res, err := RunVariance(VarianceOptions{Requests: 400, Workers: 80, Seeds: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]VarianceRow{}
	for _, r := range res.Rows {
		byName[r.Algorithm] = r
	}
	// TOTA is deterministic on a fixed stream: zero spread.
	tota := byName[platform.AlgTOTA]
	if tota.Summary.RevenueStdDevFrac != 0 {
		t.Errorf("TOTA spread = %v, want 0", tota.Summary.RevenueStdDevFrac)
	}
	if tota.Summary.MinRevenue != tota.Summary.MaxRevenue {
		t.Errorf("TOTA min %v != max %v", tota.Summary.MinRevenue, tota.Summary.MaxRevenue)
	}
	// RamCOM's threshold draw makes it the noisiest of the three.
	ram := byName[platform.AlgRamCOM]
	dem := byName[platform.AlgDemCOM]
	if ram.Summary.RevenueStdDevFrac < dem.Summary.RevenueStdDevFrac {
		t.Logf("note: RamCOM spread %v below DemCOM %v on this instance (possible on small workloads)",
			ram.Summary.RevenueStdDevFrac, dem.Summary.RevenueStdDevFrac)
	}
	if ram.Summary.RevenueStdDevFrac <= 0 {
		t.Errorf("RamCOM spread = %v, want > 0", ram.Summary.RevenueStdDevFrac)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "StdDev/Mean") {
		t.Error("table missing spread column")
	}
}
