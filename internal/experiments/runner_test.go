package experiments

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"crossmatch/internal/metrics"
	"crossmatch/internal/workload"
)

// zeroMeasurements clears the fields that measure the host rather than
// the algorithms — live heap and wall-clock latency — so results can be
// compared bit-for-bit across pool sizes.
func zeroMeasurements(res *TableResult) {
	for i := range res.Rows {
		res.Rows[i].MemoryMB = 0
		res.Rows[i].ResponseMs = 0
	}
}

// TestRunTableDeterministicAcrossPoolSizes is the runner's core
// guarantee: a parallel table run is bit-for-bit identical to the
// sequential one for a fixed seed, because every unit run derives its
// randomness from its own coordinates and results aggregate in
// submission order.
func TestRunTableDeterministicAcrossPoolSizes(t *testing.T) {
	p, err := workload.PresetFor("RDX11+RYX11")
	if err != nil {
		t.Fatal(err)
	}
	base := TableOptions{Scale: 0.002, Seed: 7, Repeats: 2}

	seqOpts := base
	seqOpts.Runner = Sequential()
	seq, err := RunTable(p, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	zeroMeasurements(seq)

	for _, workers := range []int{2, 5} {
		parOpts := base
		parOpts.Runner = &Runner{Parallelism: workers}
		par, err := RunTable(p, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		zeroMeasurements(par)
		if !reflect.DeepEqual(seq.Rows, par.Rows) {
			t.Errorf("parallelism=%d rows diverge:\nseq: %+v\npar: %+v",
				workers, seq.Rows, par.Rows)
		}
	}
}

// TestRunSweepDeterministicAcrossPoolSizes repeats the guarantee on the
// sweep harness, whose jobs regenerate streams inside the pool.
func TestRunSweepDeterministicAcrossPoolSizes(t *testing.T) {
	base := SweepOptions{Seed: 11, Repeats: 2, ScaleCap: 0.5}

	run := func(workers int) (*SweepResult, error) {
		o := base
		o.Runner = &Runner{Parallelism: workers}
		return RunSweep(AxisRadius, o)
	}
	seq, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := run(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range seq.Algos {
		for i := range seq.Points[algo] {
			a, b := seq.Points[algo][i], par.Points[algo][i]
			a.MemoryMB, b.MemoryMB = 0, 0
			a.ResponseMs, b.ResponseMs = 0, 0
			if a != b {
				t.Errorf("%s point %d diverges: seq %+v par %+v", algo, i, a, b)
			}
		}
	}
}

// TestRunnerSharedMetrics checks a collector shared by a parallel run
// tallies without racing (the -race build is the real assertion) and
// that unit-run totals are pool-size independent.
func TestRunnerSharedMetrics(t *testing.T) {
	counts := make([]int64, 2)
	for i, workers := range []int{1, 4} {
		r := &Runner{Parallelism: workers, Metrics: metrics.New()}
		if _, err := RunAblations(AblationOptions{
			Requests: 200, Workers: 40, Repeats: 2, Seed: 3, Runner: r,
		}); err != nil {
			t.Fatal(err)
		}
		rep := r.Metrics.Snapshot()
		if rep.Counters.Runs == 0 || rep.Counters.InnerMatches == 0 {
			t.Fatalf("workers=%d metrics empty: %+v", workers, rep.Counters)
		}
		counts[i] = rep.Counters.InnerMatches
	}
	if counts[0] != counts[1] {
		t.Errorf("inner matches differ across pool sizes: %d vs %d", counts[0], counts[1])
	}
}

// TestRunnerLeavesNoGoroutines verifies the pool drains fully: after a
// parallel run returns, the goroutine count settles back to baseline.
func TestRunnerLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	r := &Runner{Parallelism: 8}
	if _, err := RunValueDist(ValueDistOptions{
		Requests: 150, Workers: 30, Repeats: 1, Seed: 5, Runner: r,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
