package experiments

import (
	"fmt"

	"crossmatch/internal/platform"
	"crossmatch/internal/pricing"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

// PlatformCountOptions configures the cooperating-platform-count study.
type PlatformCountOptions struct {
	// Counts are the platform counts to sweep (default {2, 3, 4, 6}).
	Counts []int
	// Requests/Workers are city-wide totals shared by all platforms.
	Requests, Workers int
	Radius            float64
	Repeats           int
	Seed              int64
	// Runner fans the (count × algorithm × repeat) unit runs across a
	// worker pool; nil uses GOMAXPROCS.
	Runner *Runner
}

func (o *PlatformCountOptions) withDefaults() PlatformCountOptions {
	out := *o
	if len(out.Counts) == 0 {
		out.Counts = []int{2, 3, 4, 6}
	}
	if out.Requests <= 0 {
		out.Requests = 2500
	}
	if out.Workers <= 0 {
		out.Workers = 500
	}
	if out.Radius <= 0 {
		out.Radius = 1.0
	}
	if out.Repeats <= 0 {
		out.Repeats = 3
	}
	return out
}

// PlatformCountRow is one (count, algorithm) measurement.
type PlatformCountRow struct {
	Platforms int
	Algorithm string
	Revenue   float64
	Served    float64
	CoR       float64
}

// PlatformCountResult is the full study.
type PlatformCountResult struct {
	Opts PlatformCountOptions
	Rows []PlatformCountRow
}

// Row fetches one measurement.
func (r *PlatformCountResult) Row(n int, alg string) (PlatformCountRow, bool) {
	for _, row := range r.Rows {
		if row.Platforms == n && row.Algorithm == alg {
			return row, true
		}
	}
	return PlatformCountRow{}, false
}

// Table renders the study.
func (r *PlatformCountResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Cooperating platform count (city totals |R|=%d, |W|=%d, rad=%.1f, %d repeats)",
			r.Opts.Requests, r.Opts.Workers, r.Opts.Radius, r.Opts.Repeats),
		"Platforms", "Algorithm", "Total revenue", "Served", "|CoR|")
	for _, row := range r.Rows {
		tb.Add(fmt.Sprint(row.Platforms), row.Algorithm,
			stats.FormatFloat(row.Revenue, 1),
			stats.FormatFloat(row.Served, 1),
			stats.FormatFloat(row.CoR, 1))
	}
	return tb
}

// RunPlatformCount extends the paper's two-platform evaluation to n-way
// cooperation (Definition 2.3 allows several lender platforms): the same
// city-wide demand and fleet split across 2..6 platforms. Fragmentation
// hurts TOTA — each platform sees a smaller slice of supply near its own
// demand — while the hub lets the COM algorithms reassemble the full
// fleet, so the COM-over-TOTA gap widens with the platform count.
func RunPlatformCount(opts PlatformCountOptions) (*PlatformCountResult, error) {
	o := opts.withDefaults()
	res := &PlatformCountResult{Opts: o}
	algoNames := []string{platform.AlgTOTA, platform.AlgDemCOM, platform.AlgRamCOM}
	cfgs := make([]workload.Config, len(o.Counts))
	for ci, n := range o.Counts {
		cfg, err := workload.SyntheticMulti(n, o.Requests, o.Workers, o.Radius, "real")
		if err != nil {
			return nil, err
		}
		cfgs[ci] = cfg
	}
	factoryFor := func(cfg workload.Config, name string) platform.MatcherFactory {
		switch name {
		case platform.AlgDemCOM:
			return platform.DemCOMFactory(pricing.DefaultMonteCarlo, false)
		case platform.AlgRamCOM:
			return platform.RamCOMFactory(cfg.MaxValue(), platform.RamCOMOptions{})
		default:
			return platform.TOTAFactory()
		}
	}

	// One unit run per (count, algorithm, repeat), flattened in that
	// order; streams regenerate per job from (config, seed).
	nAlgos, nReps := len(algoNames), o.Repeats
	runs, err := runAll(o.Runner, len(o.Counts)*nAlgos*nReps, func(i int) (*platform.Result, error) {
		ci, rest := i/(nAlgos*nReps), i%(nAlgos*nReps)
		ai, rep := rest/nReps, rest%nReps
		seed := o.Seed + int64(rep)*3371
		stream, err := workload.Generate(cfgs[ci], seed)
		if err != nil {
			return nil, err
		}
		return platform.Run(stream, factoryFor(cfgs[ci], algoNames[ai]),
			o.Runner.simConfig(seed, false, fmt.Sprintf("platforms=%d/%s", o.Counts[ci], algoNames[ai])))
	})
	if err != nil {
		return nil, err
	}
	for ci, n := range o.Counts {
		for ai, name := range algoNames {
			row := PlatformCountRow{Platforms: n, Algorithm: name}
			for rep := 0; rep < nReps; rep++ {
				run := runs[ci*nAlgos*nReps+ai*nReps+rep]
				row.Revenue += run.TotalRevenue()
				row.Served += float64(run.TotalServed())
				row.CoR += float64(run.CooperativeServed())
			}
			nRep := float64(nReps)
			row.Revenue /= nRep
			row.Served /= nRep
			row.CoR /= nRep
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}
