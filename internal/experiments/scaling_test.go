package experiments

import "testing"

// TestRunScalingSmoke runs a miniature sweep end to end: every
// (size, shards) cell present, events 10x workers, nonzero service, and
// cross-shard borrows observed on the sharded cells.
func TestRunScalingSmoke(t *testing.T) {
	res, err := RunScaling(ScalingOptions{
		Workers: []int{400},
		Shards:  []int{1, 4},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Events != row.Workers*10 {
			t.Errorf("shards=%d: %d events for %d workers, want 10x", row.Shards, row.Events, row.Workers)
		}
		if row.Served == 0 || row.Revenue <= 0 {
			t.Errorf("shards=%d: empty result (%d served, revenue %v)", row.Shards, row.Served, row.Revenue)
		}
	}
	if r1, ok := res.Row(400, 1); !ok || r1.Boundary != 0 {
		t.Errorf("single-shard row should classify no boundaries: %+v ok=%v", r1, ok)
	}
	if r4, ok := res.Row(400, 4); !ok || r4.Boundary == 0 {
		t.Errorf("4-shard row should classify boundaries: %+v ok=%v", r4, ok)
	}
	if res.Table() == nil {
		t.Fatal("nil table")
	}
}
