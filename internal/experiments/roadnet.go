package experiments

import (
	"fmt"
	"math/rand"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
	"crossmatch/internal/online"
	"crossmatch/internal/platform"
	"crossmatch/internal/pricing"
	"crossmatch/internal/roadnet"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

// RoadNetOptions configures the road-network extension study (the
// paper's Section VII future work: Euclidean vs shortest-path service
// ranges).
type RoadNetOptions struct {
	Requests, Workers int
	Radius            float64
	// Detour scales road distances over crow-flies (1.25 default:
	// a typical urban detour index).
	Detour float64
	// Repeats averages over this many seeds.
	Repeats int
	Seed    int64
	// Runner fans the (algorithm × range × repeat) unit runs across a
	// worker pool; nil uses GOMAXPROCS.
	Runner *Runner
}

func (o *RoadNetOptions) withDefaults() RoadNetOptions {
	out := *o
	if out.Requests <= 0 {
		out.Requests = 1500
	}
	if out.Workers <= 0 {
		out.Workers = 300
	}
	if out.Radius <= 0 {
		out.Radius = 1.0
	}
	if out.Detour < 1 {
		out.Detour = 1.25
	}
	if out.Repeats <= 0 {
		out.Repeats = 3
	}
	return out
}

// RoadNetRow is one (algorithm, range model) measurement.
type RoadNetRow struct {
	Algorithm string
	RangeKind string // "euclidean" or "road"
	Revenue   float64
	Served    float64
	CoR       float64
}

// RoadNetResult is the full study.
type RoadNetResult struct {
	Opts RoadNetOptions
	Rows []RoadNetRow
}

// Row fetches a measurement.
func (r *RoadNetResult) Row(alg, kind string) (RoadNetRow, bool) {
	for _, row := range r.Rows {
		if row.Algorithm == alg && row.RangeKind == kind {
			return row, true
		}
	}
	return RoadNetRow{}, false
}

// Table renders the study.
func (r *RoadNetResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Euclidean vs road-network service ranges (|R|=%d, |W|=%d, rad=%.1f, detour %.2f)",
			r.Opts.Requests, r.Opts.Workers, r.Opts.Radius, r.Opts.Detour),
		"Algorithm", "Range", "Revenue", "Served", "|CoR|")
	for _, row := range r.Rows {
		tb.Add(row.Algorithm, row.RangeKind,
			stats.FormatFloat(row.Revenue, 1),
			stats.FormatFloat(row.Served, 1),
			stats.FormatFloat(row.CoR, 1))
	}
	return tb
}

// RunRoadNet compares every online algorithm under Euclidean ranges
// (the paper's model) and shortest-path road ranges (its Section VII
// extension) on the same workload and road grid. Road ranges are strict
// subsets of the Euclidean disks (road distance dominates straight-line
// distance), so served counts and revenue drop; the study quantifies by
// how much, and shows the COM advantage survives the stricter ranges.
func RunRoadNet(opts RoadNetOptions) (*RoadNetResult, error) {
	o := opts.withDefaults()
	cfg, err := workload.Synthetic(o.Requests, o.Workers, o.Radius, "real")
	if err != nil {
		return nil, err
	}
	maxV := cfg.MaxValue()
	region := geo.NewRect(geo.Point{}, geo.Point{X: 30, Y: 30}) // the Chengdu-like city extent
	net, err := roadnet.NewGridNetwork(region, roadnet.GridOptions{
		Spacing: 0.5, Detour: o.Detour, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}

	algorithms := []struct {
		name string
		mk   func() platform.MatcherFactory
	}{
		{platform.AlgTOTA, func() platform.MatcherFactory { return platform.TOTAFactory() }},
		{platform.AlgDemCOM, func() platform.MatcherFactory {
			return platform.DemCOMFactory(pricing.DefaultMonteCarlo, false)
		}},
		{platform.AlgRamCOM, func() platform.MatcherFactory {
			return platform.RamCOMFactory(maxV, platform.RamCOMOptions{})
		}},
	}

	res := &RoadNetResult{Opts: o}
	kinds := []string{"euclidean", "road"}

	// One unit run per (algorithm, range kind, repeat), flattened in that
	// order. Each road job builds its own coverage cache: the hub probes
	// several pools for the same request and they all reuse one distance
	// field, but the cache itself is not safe to share across runs.
	nKinds, nReps := len(kinds), o.Repeats
	runs, err := runAll(o.Runner, len(algorithms)*nKinds*nReps, func(i int) (*platform.Result, error) {
		ai, rest := i/(nKinds*nReps), i%(nKinds*nReps)
		ki, rep := rest/nReps, rest%nReps
		seed := o.Seed + int64(rep)*7907
		stream, err := workload.Generate(cfg, seed)
		if err != nil {
			return nil, err
		}
		factory := algorithms[ai].mk()
		if kinds[ki] == "road" {
			cov := roadnet.NewCoverage(net, o.Radius)
			factory = withRangeFilter(factory, cov.Covers)
		}
		return platform.Run(stream, factory,
			o.Runner.simConfig(seed, false, "roadnet/"+kinds[ki]+"/"+algorithms[ai].name))
	})
	if err != nil {
		return nil, err
	}
	for ai, alg := range algorithms {
		for ki, kind := range kinds {
			row := RoadNetRow{Algorithm: alg.name, RangeKind: kind}
			for rep := 0; rep < nReps; rep++ {
				run := runs[ai*nKinds*nReps+ki*nReps+rep]
				row.Revenue += run.TotalRevenue()
				row.Served += float64(run.TotalServed())
				row.CoR += float64(run.CooperativeServed())
			}
			n := float64(nReps)
			row.Revenue /= n
			row.Served /= n
			row.CoR /= n
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// withRangeFilter wraps a factory so every platform's pool applies the
// given range filter on top of the Euclidean index prefilter.
func withRangeFilter(factory platform.MatcherFactory, f online.RangeFilter) platform.MatcherFactory {
	return func(id core.PlatformID, coop online.CoopView, rng *rand.Rand) online.Matcher {
		m := factory(id, coop, rng)
		if holder, ok := m.(interface{ Pool() *online.Pool }); ok {
			holder.Pool().Filter = f
		}
		return m
	}
}
