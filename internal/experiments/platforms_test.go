package experiments

import (
	"bytes"
	"strings"
	"testing"

	"crossmatch/internal/platform"
	"crossmatch/internal/workload"
)

func TestSyntheticMulti(t *testing.T) {
	cfg, err := workload.SyntheticMulti(3, 900, 90, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Platforms) != 3 {
		t.Fatalf("platforms = %d", len(cfg.Platforms))
	}
	total := 0
	for _, p := range cfg.Platforms {
		total += p.Requests
	}
	if total != 900 {
		t.Errorf("total requests = %d", total)
	}
	s, err := workload.Generate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Platforms()); got != 3 {
		t.Errorf("stream platforms = %d", got)
	}

	// Validation failures.
	if _, err := workload.SyntheticMulti(1, 100, 10, 1, "real"); err == nil {
		t.Error("single platform accepted")
	}
	if _, err := workload.SyntheticMulti(7, 100, 10, 1, "real"); err == nil {
		t.Error("more platforms than ring hot spots accepted")
	}
	if _, err := workload.SyntheticMulti(3, 100, 10, -1, "real"); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := workload.SyntheticMulti(3, 100, 10, 1, "weird"); err == nil {
		t.Error("bad distribution accepted")
	}
}

func TestRunPlatformCount(t *testing.T) {
	res, err := RunPlatformCount(PlatformCountOptions{
		Counts: []int{2, 4}, Requests: 600, Workers: 120, Repeats: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 2 counts x 3 algorithms
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, n := range []int{2, 4} {
		tota, ok := res.Row(n, platform.AlgTOTA)
		if !ok {
			t.Fatalf("missing TOTA row for n=%d", n)
		}
		dem, _ := res.Row(n, platform.AlgDemCOM)
		if dem.Revenue < tota.Revenue-1e-9 {
			t.Errorf("n=%d: DemCOM %v below TOTA %v", n, dem.Revenue, tota.Revenue)
		}
		if n > 2 && dem.CoR <= 0 {
			t.Errorf("n=%d: no cooperation recorded", n)
		}
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Platforms") {
		t.Error("table header missing")
	}
}
