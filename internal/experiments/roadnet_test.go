package experiments

import (
	"bytes"
	"strings"
	"testing"

	"crossmatch/internal/platform"
)

func TestRunRoadNet(t *testing.T) {
	res, err := RunRoadNet(RoadNetOptions{Requests: 300, Workers: 60, Repeats: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 3 algorithms x 2 range models
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, alg := range []string{platform.AlgTOTA, platform.AlgDemCOM, platform.AlgRamCOM} {
		euc, ok1 := res.Row(alg, "euclidean")
		road, ok2 := res.Row(alg, "road")
		if !ok1 || !ok2 {
			t.Fatalf("missing rows for %s", alg)
		}
		// Road ranges are strict subsets of Euclidean disks: the served
		// count can only drop (revenue usually too, but randomized
		// matching makes that not a hard invariant at small scale).
		if road.Served > euc.Served {
			t.Errorf("%s: road served %v exceeds euclidean %v", alg, road.Served, euc.Served)
		}
	}
	// The COM advantage survives road ranges.
	tota, _ := res.Row(platform.AlgTOTA, "road")
	dem, _ := res.Row(platform.AlgDemCOM, "road")
	if dem.Revenue < tota.Revenue-1e-9 {
		t.Errorf("road DemCOM %v below road TOTA %v", dem.Revenue, tota.Revenue)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "road") || !strings.Contains(buf.String(), "euclidean") {
		t.Error("table missing range kinds")
	}
}
