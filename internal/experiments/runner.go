package experiments

import (
	"fmt"

	"crossmatch/internal/fault"
	"crossmatch/internal/metrics"
	"crossmatch/internal/parallel"
	"crossmatch/internal/platform"
	"crossmatch/internal/trace"
)

// Runner is the concurrent experiment engine: every harness in this
// package decomposes its evaluation into independent unit runs — one
// (algorithm × seed × scale/variant) simulation each — and fans them
// across a bounded worker pool.
//
// Determinism guarantee: each unit run derives all of its randomness
// from its own submission index (its seed), every input stream is either
// read-only-shared or regenerated per run from a (config, seed) pair,
// and results are aggregated in submission order, never completion
// order. Harness output is therefore bit-for-bit identical for any
// Parallelism, including 1 — except the measurement columns (response
// time, memory), which report real wall-clock and heap and so vary
// run-to-run on any schedule.
type Runner struct {
	// Parallelism caps concurrent unit runs; <= 0 means GOMAXPROCS(0).
	Parallelism int
	// Metrics, when non-nil, collects the matching-funnel counters and
	// decision-latency distributions of every unit run (see
	// internal/metrics); it also switches on per-run pprof labels.
	Metrics *metrics.Collector
	// PlatformParallel runs each unit simulation with one goroutine per
	// platform (platform.Config.PlatformParallel). The determinism
	// guarantee above no longer holds for the algorithm columns: event
	// interleaving across platforms depends on scheduling. Off by
	// default.
	PlatformParallel bool
	// FaultPlan, when non-nil, injects the same cooperation fault plan
	// into every unit run (platform.Config.Faults). Fault randomness is
	// seeded per run, so the determinism guarantee holds for faulted
	// sequential runs too. Nil (the default) keeps every unit run
	// bit-identical to the fault-free engine.
	FaultPlan *fault.Plan
	// Trace, when non-nil, records per-request decision spans of every
	// unit run into the shared tracer's bounded per-platform rings
	// (platform.Config.Trace). Tracing never touches matcher randomness,
	// so the determinism guarantee is unaffected. TraceSample optionally
	// overrides the tracer's sampling rate ((0,1]; negative disables,
	// zero inherits).
	Trace       *trace.Tracer
	TraceSample float64
}

// Sequential returns a runner that executes unit runs inline, one at a
// time, on the calling goroutine — the reference path the determinism
// tests and the BenchmarkTableSequential baseline compare against.
func Sequential() *Runner { return &Runner{Parallelism: 1} }

// workers resolves the pool size; a nil runner uses GOMAXPROCS.
func (r *Runner) workers() int {
	if r == nil {
		return 0
	}
	return r.Parallelism
}

// metricsCollector returns the attached collector (nil-safe).
func (r *Runner) metricsCollector() *metrics.Collector {
	if r == nil {
		return nil
	}
	return r.Metrics
}

// platformParallel reports whether unit runs use the concurrent
// per-platform runtime (nil-safe).
func (r *Runner) platformParallel() bool {
	if r == nil {
		return false
	}
	return r.PlatformParallel
}

// faultPlan returns the attached fault plan (nil-safe).
func (r *Runner) faultPlan() *fault.Plan {
	if r == nil {
		return nil
	}
	return r.FaultPlan
}

// simConfig builds the platform.Config for one unit run, threading the
// runtime choice, the fault plan, the collector and, when metrics are
// on, a pprof label naming the run.
func (r *Runner) simConfig(seed int64, disableCoop bool, label string) platform.Config {
	cfg := platform.Config{Seed: seed, DisableCoop: disableCoop, PlatformParallel: r.platformParallel(), Faults: r.faultPlan()}
	if r != nil && r.Trace != nil {
		cfg.Trace = r.Trace
		cfg.TraceSample = r.TraceSample
	}
	if m := r.metricsCollector(); m != nil {
		cfg.Metrics = m
		cfg.ProfileLabel = fmt.Sprintf("%s/seed=%d", label, seed)
	}
	return cfg
}

// runAll fans n independent unit runs across the runner's pool and
// returns their results in submission order. job(i) must derive all of
// its randomness from i alone.
func runAll[T any](r *Runner, n int, job func(i int) (T, error)) ([]T, error) {
	return parallel.Map(r.workers(), n, job)
}
