// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section V), plus the competitive-ratio study and
// the ablations listed in DESIGN.md. cmd/combench and the module-level
// benchmarks are thin wrappers over these runners.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/platform"
	"crossmatch/internal/pricing"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

// TableRow is one method's line in a Table V/VI/VII-style result.
type TableRow struct {
	Method     string
	RevD       float64 // platform 1 ("DiDi-like") revenue
	RevY       float64 // platform 2 ("Yueche-like") revenue
	ResponseMs float64 // mean decision latency per request, milliseconds
	MemoryMB   float64 // live heap after the run
	CpRD       int     // completed requests, platform 1
	CpRY       int     // completed requests, platform 2
	CoR        int     // cooperative requests accepted (both platforms)
	AcpRt      float64 // acceptance ratio of cooperative requests
	PayRate    float64 // mean v'/v over cooperative assignments
	HasCoop    bool    // false for OFF and TOTA (their CoR/AcpRt print as "-")
}

// TableResult is a full Table V/VI/VII reproduction.
type TableResult struct {
	Dataset string  // preset name, e.g. "RDC10+RYC10"
	Scale   float64 // fraction of the paper's Table III counts generated
	Seed    int64
	Rows    []TableRow
}

// Row returns the row for a method name.
func (t *TableResult) Row(method string) (TableRow, bool) {
	for _, r := range t.Rows {
		if r.Method == method {
			return r, true
		}
	}
	return TableRow{}, false
}

// Table renders the result in the paper's layout.
func (t *TableResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Results on %s (scale %.3g, seed %d)", t.Dataset, t.Scale, t.Seed),
		"Methods", "Rev_D(x10^6)", "Rev_Y(x10^6)", "Response Time (ms)", "Memory (MB)",
		"|CpR(D)|", "|CpR(Y)|", "|CoR|", "AcpRt", "v'/v")
	for _, r := range t.Rows {
		coR, acp, pay := stats.Dash, stats.Dash, stats.Dash
		if r.HasCoop {
			coR = stats.FormatCount(r.CoR)
			acp = stats.FormatFloat(r.AcpRt, 2)
			pay = stats.FormatFloat(r.PayRate, 2)
		}
		tb.Add(r.Method,
			stats.FormatFloat(r.RevD/1e6, 3),
			stats.FormatFloat(r.RevY/1e6, 3),
			stats.FormatFloat(r.ResponseMs, 2),
			stats.FormatFloat(r.MemoryMB, 2),
			stats.FormatCount(r.CpRD),
			stats.FormatCount(r.CpRY),
			coR, acp, pay)
	}
	return tb
}

// TableOptions configures a table reproduction run.
type TableOptions struct {
	// Scale shrinks the Table III dataset counts (1 = full size). The
	// harness defaults to 0.05 so a full table regenerates in seconds;
	// EXPERIMENTS.md records the scale of every published run.
	Scale float64
	// Seed drives generation and every algorithm's randomness.
	Seed int64
	// OfflineSolver picks the OFF solver (SolverAuto by default).
	OfflineSolver platform.OfflineSolver
	// MC configures DemCOM's Algorithm 2 (DefaultMonteCarlo when zero).
	MC pricing.MonteCarlo
	// SkipOFF drops the OFF row (used by the biggest runs where the
	// exact solver is the bottleneck).
	SkipOFF bool
	// Repeats averages each online algorithm over this many seeds
	// (default 3). The paper's Table III numbers are per-day averages
	// over a month of days; averaging over seeds plays the same role and
	// in particular averages RamCOM over draws of its random threshold
	// k, which a single run fixes.
	Repeats int
	// Runner fans the table's unit runs (OFF plus Repeats seeds per
	// online algorithm) across a worker pool; nil uses GOMAXPROCS.
	Runner *Runner
}

func (o *TableOptions) withDefaults() TableOptions {
	out := *o
	if out.Scale == 0 {
		out.Scale = 0.05
	}
	if out.MC == (pricing.MonteCarlo{}) {
		out.MC = pricing.DefaultMonteCarlo
	}
	if out.Repeats <= 0 {
		out.Repeats = 3
	}
	return out
}

// RunTable reproduces one of Tables V-VII: it generates the preset's two
// platforms, runs OFF, TOTA, DemCOM and RamCOM on the same stream, and
// reports the paper's nine metrics per method.
func RunTable(preset workload.Preset, opts TableOptions) (*TableResult, error) {
	o := opts.withDefaults()
	cfg, err := preset.Config(o.Scale)
	if err != nil {
		return nil, err
	}
	stream, err := workload.Generate(cfg, o.Seed)
	if err != nil {
		return nil, err
	}
	res := &TableResult{Dataset: preset.Name, Scale: o.Scale, Seed: o.Seed}

	maxV := cfg.MaxValue()
	type algo struct {
		name    string
		factory platform.MatcherFactory
		coop    bool
	}
	algos := []algo{
		{platform.AlgTOTA, platform.TOTAFactory(), false},
		{platform.AlgDemCOM, platform.DemCOMFactory(o.MC, false), true},
		{platform.AlgRamCOM, platform.RamCOMFactory(maxV, platform.RamCOMOptions{}), true},
	}

	// Every unit run — OFF (optional) plus Repeats seeds per online
	// algorithm — is independent: the stream is read-only during
	// simulation, so one copy is shared by all runs. Fan them across the
	// runner's pool; outs arrives in submission order, so aggregation
	// below is schedule-independent. Online run (ai, rep) lands at
	// offset + ai*Repeats + rep.
	type unit struct {
		run *platform.Result
		off TableRow
	}
	offset := 0
	if !o.SkipOFF {
		offset = 1
	}
	outs, err := runAll(o.Runner, offset+len(algos)*o.Repeats, func(i int) (unit, error) {
		if i < offset {
			row, err := runOff(stream, o.OfflineSolver)
			return unit{off: row}, err
		}
		a := algos[(i-offset)/o.Repeats]
		rep := (i - offset) % o.Repeats
		seed := o.Seed + int64(rep)*9973
		run, err := platform.Run(stream, a.factory,
			o.Runner.simConfig(seed, false, preset.Name+"/"+a.name))
		if err != nil {
			return unit{}, err
		}
		if err := run.Validate(); err != nil {
			return unit{}, fmt.Errorf("%s produced invalid matching: %w", a.name, err)
		}
		return unit{run: run}, nil
	})
	if err != nil {
		return nil, err
	}
	if offset == 1 {
		res.Rows = append(res.Rows, outs[0].off)
	}
	n := float64(o.Repeats)
	for ai, a := range algos {
		acc := TableRow{Method: a.name, HasCoop: a.coop}
		for rep := 0; rep < o.Repeats; rep++ {
			row := rowFromRun(outs[offset+ai*o.Repeats+rep].run, a.name, a.coop)
			acc.RevD += row.RevD
			acc.RevY += row.RevY
			acc.ResponseMs += row.ResponseMs
			acc.CpRD += row.CpRD
			acc.CpRY += row.CpRY
			acc.CoR += row.CoR
			acc.AcpRt += row.AcpRt
			acc.PayRate += row.PayRate
		}
		acc.RevD /= n
		acc.RevY /= n
		acc.ResponseMs /= n
		acc.MemoryMB = stats.MemoryMB() // heap with stream + all results live
		acc.CpRD = int(float64(acc.CpRD)/n + 0.5)
		acc.CpRY = int(float64(acc.CpRY)/n + 0.5)
		acc.CoR = int(float64(acc.CoR)/n + 0.5)
		acc.AcpRt /= n
		acc.PayRate /= n
		res.Rows = append(res.Rows, acc)
	}
	runtime.KeepAlive(stream) // keep the input inside the memory measurement
	runtime.KeepAlive(outs)
	return res, nil
}

func runOff(stream *core.Stream, solver platform.OfflineSolver) (TableRow, error) {
	start := time.Now()
	off, err := platform.Offline(stream, solver)
	if err != nil {
		return TableRow{}, err
	}
	elapsed := time.Since(start)
	nReq := len(stream.Requests())
	row := TableRow{
		Method:   platform.AlgOFF,
		RevD:     off.Revenue[1],
		RevY:     off.Revenue[2],
		CpRD:     off.Served[1],
		CpRY:     off.Served[2],
		MemoryMB: stats.MemoryMB(),
	}
	if nReq > 0 {
		row.ResponseMs = float64(elapsed) / float64(time.Millisecond) / float64(nReq)
	}
	return row, nil
}

// rowFromRun extracts a table row from one simulation result (memory is
// the caller's concern — it depends on what else is live).
func rowFromRun(run *platform.Result, name string, coop bool) TableRow {
	row := TableRow{Method: name, HasCoop: coop}
	var totalResp time.Duration
	var totalReq int
	for pid, pr := range run.Platforms {
		totalResp += pr.ResponseTotal
		totalReq += pr.Stats.Requests
		switch pid {
		case 1:
			row.RevD = pr.Stats.Revenue
			row.CpRD = pr.Stats.Served
		case 2:
			row.RevY = pr.Stats.Revenue
			row.CpRY = pr.Stats.Served
		}
	}
	if totalReq > 0 {
		row.ResponseMs = float64(totalResp) / float64(time.Millisecond) / float64(totalReq)
	}
	if coop {
		row.CoR = run.CooperativeServed()
		row.AcpRt = run.AcceptanceRatio()
		row.PayRate = run.MeanPaymentRate()
	}
	return row
}
