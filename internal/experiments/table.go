// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section V), plus the competitive-ratio study and
// the ablations listed in DESIGN.md. cmd/combench and the module-level
// benchmarks are thin wrappers over these runners.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/platform"
	"crossmatch/internal/pricing"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

// TableRow is one method's line in a Table V/VI/VII-style result.
type TableRow struct {
	Method     string
	RevD       float64 // platform 1 ("DiDi-like") revenue
	RevY       float64 // platform 2 ("Yueche-like") revenue
	ResponseMs float64 // mean decision latency per request, milliseconds
	MemoryMB   float64 // live heap after the run
	CpRD       int     // completed requests, platform 1
	CpRY       int     // completed requests, platform 2
	CoR        int     // cooperative requests accepted (both platforms)
	AcpRt      float64 // acceptance ratio of cooperative requests
	PayRate    float64 // mean v'/v over cooperative assignments
	HasCoop    bool    // false for OFF and TOTA (their CoR/AcpRt print as "-")
}

// TableResult is a full Table V/VI/VII reproduction.
type TableResult struct {
	Dataset string  // preset name, e.g. "RDC10+RYC10"
	Scale   float64 // fraction of the paper's Table III counts generated
	Seed    int64
	Rows    []TableRow
}

// Row returns the row for a method name.
func (t *TableResult) Row(method string) (TableRow, bool) {
	for _, r := range t.Rows {
		if r.Method == method {
			return r, true
		}
	}
	return TableRow{}, false
}

// Table renders the result in the paper's layout.
func (t *TableResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Results on %s (scale %.3g, seed %d)", t.Dataset, t.Scale, t.Seed),
		"Methods", "Rev_D(x10^6)", "Rev_Y(x10^6)", "Response Time (ms)", "Memory (MB)",
		"|CpR(D)|", "|CpR(Y)|", "|CoR|", "AcpRt", "v'/v")
	for _, r := range t.Rows {
		coR, acp, pay := stats.Dash, stats.Dash, stats.Dash
		if r.HasCoop {
			coR = stats.FormatCount(r.CoR)
			acp = stats.FormatFloat(r.AcpRt, 2)
			pay = stats.FormatFloat(r.PayRate, 2)
		}
		tb.Add(r.Method,
			stats.FormatFloat(r.RevD/1e6, 3),
			stats.FormatFloat(r.RevY/1e6, 3),
			stats.FormatFloat(r.ResponseMs, 2),
			stats.FormatFloat(r.MemoryMB, 2),
			stats.FormatCount(r.CpRD),
			stats.FormatCount(r.CpRY),
			coR, acp, pay)
	}
	return tb
}

// TableOptions configures a table reproduction run.
type TableOptions struct {
	// Scale shrinks the Table III dataset counts (1 = full size). The
	// harness defaults to 0.05 so a full table regenerates in seconds;
	// EXPERIMENTS.md records the scale of every published run.
	Scale float64
	// Seed drives generation and every algorithm's randomness.
	Seed int64
	// OfflineSolver picks the OFF solver (SolverAuto by default).
	OfflineSolver platform.OfflineSolver
	// MC configures DemCOM's Algorithm 2 (DefaultMonteCarlo when zero).
	MC pricing.MonteCarlo
	// SkipOFF drops the OFF row (used by the biggest runs where the
	// exact solver is the bottleneck).
	SkipOFF bool
	// Repeats averages each online algorithm over this many seeds
	// (default 3). The paper's Table III numbers are per-day averages
	// over a month of days; averaging over seeds plays the same role and
	// in particular averages RamCOM over draws of its random threshold
	// k, which a single run fixes.
	Repeats int
}

func (o *TableOptions) withDefaults() TableOptions {
	out := *o
	if out.Scale == 0 {
		out.Scale = 0.05
	}
	if out.MC == (pricing.MonteCarlo{}) {
		out.MC = pricing.DefaultMonteCarlo
	}
	if out.Repeats <= 0 {
		out.Repeats = 3
	}
	return out
}

// RunTable reproduces one of Tables V-VII: it generates the preset's two
// platforms, runs OFF, TOTA, DemCOM and RamCOM on the same stream, and
// reports the paper's nine metrics per method.
func RunTable(preset workload.Preset, opts TableOptions) (*TableResult, error) {
	o := opts.withDefaults()
	cfg, err := preset.Config(o.Scale)
	if err != nil {
		return nil, err
	}
	stream, err := workload.Generate(cfg, o.Seed)
	if err != nil {
		return nil, err
	}
	res := &TableResult{Dataset: preset.Name, Scale: o.Scale, Seed: o.Seed}

	if !o.SkipOFF {
		offRow, err := runOff(stream, o.OfflineSolver)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, offRow)
	}

	maxV := cfg.MaxValue()
	type algo struct {
		name    string
		factory platform.MatcherFactory
		coop    bool
	}
	algos := []algo{
		{platform.AlgTOTA, platform.TOTAFactory(), false},
		{platform.AlgDemCOM, platform.DemCOMFactory(o.MC, false), true},
		{platform.AlgRamCOM, platform.RamCOMFactory(maxV, platform.RamCOMOptions{}), true},
	}
	for _, a := range algos {
		row, err := runOnlineAveraged(stream, a.name, a.factory, a.coop, o.Seed, o.Repeats)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runOnlineAveraged averages an online algorithm's row over several
// seeds on the same stream (same input, fresh randomness — thresholds,
// Monte-Carlo draws, acceptance probes). The seeds run as a parallel
// ensemble; streams are read-only during simulation, so sharing one
// across runs is safe.
func runOnlineAveraged(stream *core.Stream, name string, factory platform.MatcherFactory, coop bool, seed int64, repeats int) (TableRow, error) {
	seeds := make([]int64, repeats)
	for i := range seeds {
		seeds[i] = seed + int64(i)*9973
	}
	results, err := platform.RunEnsemble(
		func(int64) (*core.Stream, error) { return stream, nil },
		factory, platform.Config{}, seeds, 0)
	if err != nil {
		return TableRow{}, err
	}
	var acc TableRow
	for _, run := range results {
		if err := run.Validate(); err != nil {
			return TableRow{}, fmt.Errorf("%s produced invalid matching: %w", name, err)
		}
		row := rowFromRun(run, name, coop)
		acc.RevD += row.RevD
		acc.RevY += row.RevY
		acc.ResponseMs += row.ResponseMs
		acc.CpRD += row.CpRD
		acc.CpRY += row.CpRY
		acc.CoR += row.CoR
		acc.AcpRt += row.AcpRt
		acc.PayRate += row.PayRate
	}
	n := float64(repeats)
	acc.Method = name
	acc.HasCoop = coop
	acc.RevD /= n
	acc.RevY /= n
	acc.ResponseMs /= n
	acc.MemoryMB = stats.MemoryMB() // heap with stream + all results live
	runtime.KeepAlive(stream)
	acc.CpRD = int(float64(acc.CpRD)/n + 0.5)
	acc.CpRY = int(float64(acc.CpRY)/n + 0.5)
	acc.CoR = int(float64(acc.CoR)/n + 0.5)
	acc.AcpRt /= n
	acc.PayRate /= n
	runtime.KeepAlive(results)
	return acc, nil
}

func runOff(stream *core.Stream, solver platform.OfflineSolver) (TableRow, error) {
	start := time.Now()
	off, err := platform.Offline(stream, solver)
	if err != nil {
		return TableRow{}, err
	}
	elapsed := time.Since(start)
	nReq := len(stream.Requests())
	row := TableRow{
		Method:   platform.AlgOFF,
		RevD:     off.Revenue[1],
		RevY:     off.Revenue[2],
		CpRD:     off.Served[1],
		CpRY:     off.Served[2],
		MemoryMB: stats.MemoryMB(),
	}
	if nReq > 0 {
		row.ResponseMs = float64(elapsed) / float64(time.Millisecond) / float64(nReq)
	}
	return row, nil
}

func runOnline(stream *core.Stream, name string, factory platform.MatcherFactory, coop bool, seed int64) (TableRow, error) {
	run, err := platform.Run(stream, factory, platform.Config{Seed: seed})
	if err != nil {
		return TableRow{}, err
	}
	if err := run.Validate(); err != nil {
		return TableRow{}, fmt.Errorf("%s produced invalid matching: %w", name, err)
	}
	row := rowFromRun(run, name, coop)
	row.MemoryMB = stats.MemoryMB()
	runtime.KeepAlive(stream) // keep the input in the memory measurement
	return row, nil
}

// rowFromRun extracts a table row from one simulation result (memory is
// the caller's concern — it depends on what else is live).
func rowFromRun(run *platform.Result, name string, coop bool) TableRow {
	row := TableRow{Method: name, HasCoop: coop}
	var totalResp time.Duration
	var totalReq int
	for pid, pr := range run.Platforms {
		totalResp += pr.ResponseTotal
		totalReq += pr.Stats.Requests
		switch pid {
		case 1:
			row.RevD = pr.Stats.Revenue
			row.CpRD = pr.Stats.Served
		case 2:
			row.RevY = pr.Stats.Revenue
			row.CpRY = pr.Stats.Served
		}
	}
	if totalReq > 0 {
		row.ResponseMs = float64(totalResp) / float64(time.Millisecond) / float64(totalReq)
	}
	if coop {
		row.CoR = run.CooperativeServed()
		row.AcpRt = run.AcceptanceRatio()
		row.PayRate = run.MeanPaymentRate()
	}
	return row
}
