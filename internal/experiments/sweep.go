package experiments

import (
	"fmt"
	"runtime"
	"time"

	"crossmatch/internal/platform"
	"crossmatch/internal/pricing"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

// SweepAxis selects which Table IV parameter a sweep varies.
type SweepAxis string

const (
	// AxisRequests varies |R| (Fig. 5 a-d).
	AxisRequests SweepAxis = "|R|"
	// AxisWorkers varies |W| (Fig. 5 e-h).
	AxisWorkers SweepAxis = "|W|"
	// AxisRadius varies rad (Fig. 5 i-l).
	AxisRadius SweepAxis = "rad"
)

// SweepOptions configures a scalability sweep.
type SweepOptions struct {
	// Seed drives generation and algorithms. Each x value uses Seed so
	// all algorithms at one x see the identical stream.
	Seed int64
	// ValueDist is Table IV's value distribution: "real" or "normal".
	ValueDist string
	// Repeats averages each point over this many seeds (default 1).
	Repeats int
	// ScaleCap truncates the axis to values <= ScaleCap, letting tests
	// and quick runs use the Table IV axes without the 100k points.
	ScaleCap float64
	// MC configures DemCOM's Algorithm 2 (default DefaultMonteCarlo).
	MC pricing.MonteCarlo
	// Runner fans the sweep's unit runs (one per x value, algorithm and
	// repeat) across a worker pool; nil uses GOMAXPROCS.
	Runner *Runner
}

func (o *SweepOptions) withDefaults() SweepOptions {
	out := *o
	if out.ValueDist == "" {
		out.ValueDist = "real"
	}
	if out.Repeats <= 0 {
		out.Repeats = 1
	}
	if out.MC == (pricing.MonteCarlo{}) {
		out.MC = pricing.DefaultMonteCarlo
	}
	return out
}

// SweepPoint is one x value's measurements for one algorithm.
type SweepPoint struct {
	X          float64
	Revenue    float64 // total across both platforms
	ResponseMs float64 // mean per-request decision latency
	MemoryMB   float64
	AcptRatio  float64 // cooperative acceptance ratio (0 for TOTA)
}

// SweepResult holds a full sweep: per algorithm, per x value.
type SweepResult struct {
	Axis   SweepAxis
	Xs     []float64
	Algos  []string
	Points map[string][]SweepPoint // algorithm -> one point per x
}

// Get returns algorithm algo's point at x index i.
func (s *SweepResult) Get(algo string, i int) (SweepPoint, bool) {
	pts, ok := s.Points[algo]
	if !ok || i < 0 || i >= len(pts) {
		return SweepPoint{}, false
	}
	return pts[i], true
}

// Series renders the four Fig. 5 metrics as printable series
// (revenue, response time, memory, acceptance ratio).
func (s *SweepResult) Series() (revenue, response, memory, acceptance *stats.Series) {
	xs := make([]string, len(s.Xs))
	for i, x := range s.Xs {
		if x == float64(int64(x)) {
			xs[i] = stats.FormatCount(int(x))
		} else {
			xs[i] = stats.FormatFloat(x, 1)
		}
	}
	title := fmt.Sprintf("Sweep over %s", s.Axis)
	revenue = stats.NewSeries(title, string(s.Axis), "Total revenue", xs)
	response = stats.NewSeries(title, string(s.Axis), "Response time (ms)", xs)
	memory = stats.NewSeries(title, string(s.Axis), "Memory (MB)", xs)
	acceptance = stats.NewSeries(title, string(s.Axis), "Acceptance ratio", xs)
	for _, algo := range s.Algos {
		for i, p := range s.Points[algo] {
			revenue.Set(algo, i, p.Revenue)
			response.Set(algo, i, p.ResponseMs)
			memory.Set(algo, i, p.MemoryMB)
			if algo != platform.AlgTOTA {
				acceptance.Set(algo, i, p.AcptRatio)
			}
		}
	}
	return revenue, response, memory, acceptance
}

// RunSweep reproduces one column of Fig. 5: it varies the given axis
// over Table IV's values (all other parameters at their bold defaults
// |R|=2500, |W|=500, rad=1.0) and measures TOTA, DemCOM and RamCOM.
// OFF is omitted, as in the paper ("Since OFF can never be achieved in
// the real world, we do not compare with it").
func RunSweep(axis SweepAxis, opts SweepOptions) (*SweepResult, error) {
	o := opts.withDefaults()
	var xs []float64
	switch axis {
	case AxisRequests:
		for _, v := range workload.SweepRequests {
			xs = append(xs, float64(v))
		}
	case AxisWorkers:
		for _, v := range workload.SweepWorkers {
			xs = append(xs, float64(v))
		}
	case AxisRadius:
		xs = append(xs, workload.SweepRadius...)
	default:
		return nil, fmt.Errorf("experiments: unknown sweep axis %q", axis)
	}
	if o.ScaleCap > 0 {
		trimmed := xs[:0]
		for _, x := range xs {
			if x <= o.ScaleCap {
				trimmed = append(trimmed, x)
			}
		}
		xs = trimmed
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("experiments: sweep axis %q has no points under cap %v", axis, o.ScaleCap)
	}

	res := &SweepResult{
		Axis:   axis,
		Xs:     xs,
		Algos:  []string{platform.AlgTOTA, platform.AlgDemCOM, platform.AlgRamCOM},
		Points: map[string][]SweepPoint{},
	}
	// Per-x configurations are deterministic; build them up front so the
	// fan-out jobs only generate streams and simulate.
	cfgs := make([]workload.Config, len(xs))
	for i, x := range xs {
		r, w, rad := 2500, 500, 1.0
		switch axis {
		case AxisRequests:
			r = int(x)
		case AxisWorkers:
			w = int(x)
		case AxisRadius:
			rad = x
		}
		cfg, err := workload.Synthetic(r, w, rad, o.ValueDist)
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}

	// One unit run per (x, algorithm, repeat), flattened in that order.
	// Streams depend only on (config, seed) and regenerate inside each
	// job, keeping runs isolated; aggregation walks the results in
	// submission order, so points are identical on any pool size.
	nAlgos, nReps := len(res.Algos), o.Repeats
	points, err := runAll(o.Runner, len(xs)*nAlgos*nReps, func(j int) (SweepPoint, error) {
		xi, rest := j/(nAlgos*nReps), j%(nAlgos*nReps)
		ai, rep := rest/nReps, rest%nReps
		cfg, algo := cfgs[xi], res.Algos[ai]
		maxV := cfg.MaxValue()
		factories := map[string]platform.MatcherFactory{
			platform.AlgTOTA:   platform.TOTAFactory(),
			platform.AlgDemCOM: platform.DemCOMFactory(o.MC, false),
			platform.AlgRamCOM: platform.RamCOMFactory(maxV, platform.RamCOMOptions{}),
		}
		seed := o.Seed + int64(rep)*7919
		stream, err := workload.Generate(cfg, seed)
		if err != nil {
			return SweepPoint{}, err
		}
		run, err := platform.Run(stream, factories[algo],
			o.Runner.simConfig(seed, false, fmt.Sprintf("%s=%v/%s", axis, xs[xi], algo)))
		if err != nil {
			return SweepPoint{}, err
		}
		var p SweepPoint
		p.X = xs[xi]
		// Capture memory while the stream and result are still live;
		// without the KeepAlive the GC frees the stream before the
		// measurement (it has no later uses).
		p.MemoryMB = stats.MemoryMB()
		runtime.KeepAlive(stream)
		var totalResp time.Duration
		totalReq := 0
		for _, pr := range run.Platforms {
			totalResp += pr.ResponseTotal
			totalReq += pr.Stats.Requests
		}
		p.Revenue = run.TotalRevenue()
		if totalReq > 0 {
			p.ResponseMs = float64(totalResp) / float64(time.Millisecond) / float64(totalReq)
		}
		p.AcptRatio = run.AcceptanceRatio()
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	for xi := range xs {
		for ai, algo := range res.Algos {
			var acc SweepPoint
			acc.X = xs[xi]
			for rep := 0; rep < nReps; rep++ {
				p := points[xi*nAlgos*nReps+ai*nReps+rep]
				acc.Revenue += p.Revenue
				acc.ResponseMs += p.ResponseMs
				acc.MemoryMB += p.MemoryMB
				acc.AcptRatio += p.AcptRatio
			}
			n := float64(nReps)
			acc.Revenue /= n
			acc.ResponseMs /= n
			acc.AcptRatio /= n
			acc.MemoryMB /= n
			stats.MustNonNegative("revenue", acc.Revenue)
			stats.MustNonNegative("response", acc.ResponseMs)
			stats.MustNonNegative("acceptance", acc.AcptRatio)
			res.Points[algo] = append(res.Points[algo], acc)
		}
	}
	return res, nil
}
