package experiments

import (
	"bytes"
	"strings"
	"testing"

	"crossmatch/internal/platform"
	"crossmatch/internal/workload"
)

// smallTable runs Table V at a tiny scale; shared by several tests.
func smallTable(t *testing.T) *TableResult {
	t.Helper()
	preset, ok := workload.PresetByName("RDC10+RYC10")
	if !ok {
		t.Fatal("preset missing")
	}
	res, err := RunTable(preset, TableOptions{Scale: 0.004, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunTableShape(t *testing.T) {
	res := smallTable(t)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (OFF, TOTA, DemCOM, RamCOM)", len(res.Rows))
	}
	wantOrder := []string{platform.AlgOFF, platform.AlgTOTA, platform.AlgDemCOM, platform.AlgRamCOM}
	for i, w := range wantOrder {
		if res.Rows[i].Method != w {
			t.Errorf("row %d = %q, want %q", i, res.Rows[i].Method, w)
		}
	}
	for _, r := range res.Rows {
		if r.RevD < 0 || r.RevY < 0 || r.CpRD < 0 || r.CpRY < 0 {
			t.Errorf("%s: negative metrics: %+v", r.Method, r)
		}
		if r.MemoryMB <= 0 {
			t.Errorf("%s: memory not captured", r.Method)
		}
	}
}

// The paper's headline ordering: OFF >= RamCOM, DemCOM, TOTA and
// COM algorithms >= TOTA on both revenue and completed requests.
func TestRunTablePaperOrdering(t *testing.T) {
	res := smallTable(t)
	off, _ := res.Row(platform.AlgOFF)
	tota, _ := res.Row(platform.AlgTOTA)
	dem, _ := res.Row(platform.AlgDemCOM)
	ram, _ := res.Row(platform.AlgRamCOM)

	offRev := off.RevD + off.RevY
	for _, r := range []TableRow{tota, dem, ram} {
		if r.RevD+r.RevY > offRev+1e-6 {
			t.Errorf("%s revenue %v exceeds OFF %v", r.Method, r.RevD+r.RevY, offRev)
		}
	}
	if dem.RevD+dem.RevY < tota.RevD+tota.RevY-1e-9 {
		t.Errorf("DemCOM revenue %v below TOTA %v", dem.RevD+dem.RevY, tota.RevD+tota.RevY)
	}
	if dem.CpRD+dem.CpRY < tota.CpRD+tota.CpRY {
		t.Errorf("DemCOM served %d below TOTA %d", dem.CpRD+dem.CpRY, tota.CpRD+tota.CpRY)
	}
	// Cooperative metrics: only COM rows carry them.
	if tota.HasCoop || off.HasCoop {
		t.Error("OFF/TOTA must not report cooperative metrics")
	}
	if !dem.HasCoop || !ram.HasCoop {
		t.Error("COM rows must report cooperative metrics")
	}
	if dem.CoR > 0 && (dem.PayRate <= 0 || dem.PayRate > 1) {
		t.Errorf("DemCOM payment rate %v outside (0,1]", dem.PayRate)
	}
}

func TestTableRender(t *testing.T) {
	res := smallTable(t)
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"RDC10+RYC10", "Methods", "Rev_D", "OFF", "TOTA", "DemCOM", "RamCOM", "AcpRt"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTableSkipOFF(t *testing.T) {
	preset, _ := workload.PresetByName("RDX11+RYX11")
	res, err := RunTable(preset, TableOptions{Scale: 0.004, Seed: 3, SkipOFF: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if _, ok := res.Row(platform.AlgOFF); ok {
		t.Error("OFF row present despite SkipOFF")
	}
}

func TestRunSweepRequests(t *testing.T) {
	res, err := RunSweep(AxisRequests, SweepOptions{Seed: 5, ScaleCap: 2500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Xs) != 3 { // 500, 1000, 2500
		t.Fatalf("xs = %v, want 3 points", res.Xs)
	}
	for _, algo := range res.Algos {
		pts := res.Points[algo]
		if len(pts) != len(res.Xs) {
			t.Fatalf("%s has %d points, want %d", algo, len(pts), len(res.Xs))
		}
		// Revenue grows with |R| for every algorithm (Fig. 5a).
		for i := 1; i < len(pts); i++ {
			if pts[i].Revenue < pts[i-1].Revenue {
				t.Errorf("%s revenue not increasing in |R|: %v -> %v", algo, pts[i-1].Revenue, pts[i].Revenue)
			}
		}
	}
	// COM beats TOTA at the largest |R| (workers scarce).
	last := len(res.Xs) - 1
	tota, _ := res.Get(platform.AlgTOTA, last)
	dem, _ := res.Get(platform.AlgDemCOM, last)
	ram, _ := res.Get(platform.AlgRamCOM, last)
	if dem.Revenue < tota.Revenue {
		t.Errorf("DemCOM %v below TOTA %v at |R|=2500", dem.Revenue, tota.Revenue)
	}
	if ram.Revenue < tota.Revenue {
		t.Errorf("RamCOM %v below TOTA %v at |R|=2500", ram.Revenue, tota.Revenue)
	}
	rev, respS, mem, acc := res.Series()
	for _, s := range []interface{ Lines() []string }{rev, respS, mem, acc} {
		if len(s.Lines()) == 0 {
			t.Error("empty series line set")
		}
	}
	// TOTA has no acceptance-ratio line (Fig. 5d omits it).
	for _, name := range acc.Lines() {
		if name == platform.AlgTOTA {
			t.Error("TOTA should not appear in the acceptance series")
		}
	}
}

func TestRunSweepRadius(t *testing.T) {
	res, err := RunSweep(AxisRadius, SweepOptions{Seed: 6, ScaleCap: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Xs) != 3 { // 0.5, 1.0, 1.5
		t.Fatalf("xs = %v", res.Xs)
	}
	// Revenue grows (weakly) with rad for the COM algorithms (Fig. 5i):
	// more coverage means more serviceable requests. Allow small noise.
	for _, algo := range []string{platform.AlgDemCOM, platform.AlgRamCOM} {
		first, _ := res.Get(algo, 0)
		lastP, _ := res.Get(algo, len(res.Xs)-1)
		if lastP.Revenue < first.Revenue*0.95 {
			t.Errorf("%s revenue dropped with radius: %v -> %v", algo, first.Revenue, lastP.Revenue)
		}
	}
}

func TestRunSweepValidation(t *testing.T) {
	if _, err := RunSweep("bogus", SweepOptions{}); err == nil {
		t.Error("unknown axis accepted")
	}
	if _, err := RunSweep(AxisRequests, SweepOptions{ScaleCap: 1}); err == nil {
		t.Error("empty axis accepted")
	}
}

func TestRunCompetitiveRatio(t *testing.T) {
	res, err := RunCompetitiveRatio(CROptions{
		Instances: 4, Orders: 3, Requests: 60, Workers: 20, Radius: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{platform.AlgTOTA, platform.AlgGreedyRT, platform.AlgDemCOM, platform.AlgRamCOM} {
		minR, meanR := res.MinRatio[alg], res.MeanRatio[alg]
		if minR < 0 || minR > 1+1e-9 {
			t.Errorf("%s min ratio %v outside [0,1]", alg, minR)
		}
		if meanR < minR-1e-9 {
			t.Errorf("%s mean %v below min %v", alg, meanR, minR)
		}
	}
	// DemCOM dominates TOTA instance-by-instance in expectation: its
	// empirical CR cannot be materially below TOTA's.
	if res.MeanRatio[platform.AlgDemCOM] < res.MeanRatio[platform.AlgTOTA]-0.05 {
		t.Errorf("DemCOM mean CR %v far below TOTA %v",
			res.MeanRatio[platform.AlgDemCOM], res.MeanRatio[platform.AlgTOTA])
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Greedy-RT") {
		t.Error("CR table missing Greedy-RT")
	}
}

func TestRunAblations(t *testing.T) {
	res, err := RunAblations(AblationOptions{Requests: 400, Workers: 80, Repeats: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	tota, _ := res.Row(VarTOTA)
	demNoCoop, _ := res.Row(VarDemCOMNoCoop)
	ramNoCoop, _ := res.Row(VarRamCOMNoCoop)
	dem, _ := res.Row(VarDemCOM)

	// Degradation claim: with the hub disabled, DemCOM equals TOTA
	// exactly (same greedy inner path, no cooperation possible).
	if demNoCoop.Revenue != tota.Revenue || demNoCoop.CoR != 0 {
		t.Errorf("DemCOM(no hub) revenue %v != TOTA %v or CoR %v != 0",
			demNoCoop.Revenue, tota.Revenue, demNoCoop.CoR)
	}
	if ramNoCoop.CoR != 0 {
		t.Errorf("RamCOM(no hub) served cooperative requests: %v", ramNoCoop.CoR)
	}
	// Cooperation pays: DemCOM with the hub is at least TOTA.
	if dem.Revenue < tota.Revenue-1e-9 {
		t.Errorf("DemCOM %v below TOTA %v", dem.Revenue, tota.Revenue)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "oracle") {
		t.Error("ablation table missing oracle row")
	}
}
