package experiments

import (
	"fmt"
	"time"

	"crossmatch/internal/fault"
	"crossmatch/internal/metrics"
	"crossmatch/internal/platform"
	"crossmatch/internal/pricing"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

// FaultSweepOptions configures the fault-tolerance study: the same
// workload run under increasing cooperation-fault intensity, with the
// zero-fault row as the baseline every other row is compared against.
type FaultSweepOptions struct {
	// Rates are the fault intensities to sweep, each in [0, 1]; at rate
	// x every probe is dropped with probability x, suffers a latency
	// spike with probability x, and every claim fails transiently with
	// probability x/2. 0 must be present to anchor the baseline and is
	// prepended when missing. Default {0, 0.1, 0.25, 0.5, 1}.
	Rates []float64
	// Requests/Workers/Radius shape the two-platform synthetic workload
	// (defaults 2000/400/1.0).
	Requests, Workers int
	Radius            float64
	// Repeats averages this many seeds per measurement (default 3).
	Repeats int
	Seed    int64
	// FaultSeed roots the fault randomness (0 derives it per run).
	FaultSeed int64
	// Runner fans the (rate × algorithm × repeat) unit runs across a
	// worker pool; nil uses GOMAXPROCS. The runner's own FaultPlan is
	// ignored — this study builds one plan per rate.
	Runner *Runner
}

func (o *FaultSweepOptions) withDefaults() FaultSweepOptions {
	out := *o
	if len(out.Rates) == 0 {
		out.Rates = []float64{0, 0.1, 0.25, 0.5, 1}
	}
	hasZero := false
	for _, r := range out.Rates {
		if r == 0 {
			hasZero = true
		}
	}
	if !hasZero {
		out.Rates = append([]float64{0}, out.Rates...)
	}
	if out.Requests <= 0 {
		out.Requests = 2000
	}
	if out.Workers <= 0 {
		out.Workers = 400
	}
	if out.Radius <= 0 {
		out.Radius = 1.0
	}
	if out.Repeats <= 0 {
		out.Repeats = 3
	}
	return out
}

// planForRate builds the fault plan for one sweep intensity. Rate 0
// returns nil: the baseline runs the fault-free engine, not an
// empty-plan engine, so the comparison covers the whole injection
// layer.
func planForRate(rate float64, seed int64) *fault.Plan {
	if rate <= 0 {
		return nil
	}
	return &fault.Plan{
		Seed:           seed,
		DropRate:       rate,
		LatencyRate:    rate,
		LatencyMin:     time.Millisecond,
		LatencyMax:     12 * time.Millisecond,
		ClaimErrorRate: rate / 2,
	}
}

// FaultSweepRow is one (rate, algorithm) measurement, averaged over
// repeats.
type FaultSweepRow struct {
	Rate      float64
	Algorithm string
	Revenue   float64
	Served    float64
	CoR       float64 // cooperative requests served
	// RevenueRatio and ServedRatio compare against the same algorithm's
	// zero-fault baseline row (1.0 = no degradation).
	RevenueRatio float64
	ServedRatio  float64
	// Retries / Timeouts / BreakerOpened aggregate the resilience
	// counters across the row's runs.
	Retries       float64
	Timeouts      float64
	BreakerOpened float64
}

// FaultSweepResult is the full study.
type FaultSweepResult struct {
	Opts FaultSweepOptions
	Rows []FaultSweepRow
}

// Row fetches one measurement.
func (r *FaultSweepResult) Row(rate float64, alg string) (FaultSweepRow, bool) {
	for _, row := range r.Rows {
		if row.Rate == rate && row.Algorithm == alg {
			return row, true
		}
	}
	return FaultSweepRow{}, false
}

// Table renders the study.
func (r *FaultSweepResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Fault tolerance (|R|=%d, |W|=%d, rad=%.1f, %d repeats; rate x: drop=x, latency=x, claimerr=x/2)",
			r.Opts.Requests, r.Opts.Workers, r.Opts.Radius, r.Opts.Repeats),
		"Fault rate", "Algorithm", "Revenue", "Rev vs 0", "Served", "Srv vs 0", "|CoR|", "Retries", "Timeouts", "Brk opened")
	for _, row := range r.Rows {
		tb.Add(stats.FormatFloat(row.Rate, 2), row.Algorithm,
			stats.FormatFloat(row.Revenue, 1),
			stats.FormatFloat(row.RevenueRatio, 3),
			stats.FormatFloat(row.Served, 1),
			stats.FormatFloat(row.ServedRatio, 3),
			stats.FormatFloat(row.CoR, 1),
			stats.FormatFloat(row.Retries, 1),
			stats.FormatFloat(row.Timeouts, 1),
			stats.FormatFloat(row.BreakerOpened, 1))
	}
	return tb
}

// RunFaultSweep measures how gracefully the COM algorithms degrade as
// the cooperation channel gets flakier: dropped and slow probes starve
// the cooperative path, so revenue should slide toward the inner-only
// (TOTA-like) level rather than collapse — the circuit breakers keep
// dark partners from stalling matching. TOTA itself never touches the
// hub and rides along as the fault-immune control.
func RunFaultSweep(opts FaultSweepOptions) (*FaultSweepResult, error) {
	o := opts.withDefaults()
	res := &FaultSweepResult{Opts: o}
	algoNames := []string{platform.AlgTOTA, platform.AlgDemCOM, platform.AlgRamCOM}
	cfg, err := workload.Synthetic(o.Requests, o.Workers, o.Radius, "real")
	if err != nil {
		return nil, err
	}

	type unit struct {
		res *platform.Result
		rep metricsCountersDelta
	}
	nAlgos, nReps := len(algoNames), o.Repeats
	runs, err := runAll(o.Runner, len(o.Rates)*nAlgos*nReps, func(i int) (unit, error) {
		ri, rest := i/(nAlgos*nReps), i%(nAlgos*nReps)
		ai, rep := rest/nReps, rest%nReps
		seed := o.Seed + int64(rep)*3371
		stream, err := workload.Generate(cfg, seed)
		if err != nil {
			return unit{}, err
		}
		var factory platform.MatcherFactory
		switch algoNames[ai] {
		case platform.AlgDemCOM:
			factory = platform.DemCOMFactory(pricing.DefaultMonteCarlo, false)
		case platform.AlgRamCOM:
			factory = platform.RamCOMFactory(cfg.MaxValue(), platform.RamCOMOptions{})
		default:
			factory = platform.TOTAFactory()
		}
		// Each unit run gets its own collector so the resilience
		// counters can be attributed to the row; the runner's shared
		// collector (if any) still sees the run through simConfig-less
		// plumbing being bypassed here intentionally.
		simCfg := o.Runner.simConfig(seed, false, fmt.Sprintf("faults=%g/%s", o.Rates[ri], algoNames[ai]))
		simCfg.Faults = planForRate(o.Rates[ri], faultSeedFor(o.FaultSeed, seed))
		col := newUnitCollector(&simCfg)
		r, err := platform.Run(stream, factory, simCfg)
		if err != nil {
			return unit{}, err
		}
		return unit{res: r, rep: countersOf(col)}, nil
	})
	if err != nil {
		return nil, err
	}

	base := map[string]FaultSweepRow{}
	for ri, rate := range o.Rates {
		for ai, name := range algoNames {
			row := FaultSweepRow{Rate: rate, Algorithm: name}
			for rep := 0; rep < nReps; rep++ {
				u := runs[ri*nAlgos*nReps+ai*nReps+rep]
				row.Revenue += u.res.TotalRevenue()
				row.Served += float64(u.res.TotalServed())
				row.CoR += float64(u.res.CooperativeServed())
				row.Retries += float64(u.rep.probeRetries)
				row.Timeouts += float64(u.rep.probeTimeouts)
				row.BreakerOpened += float64(u.rep.breakerOpened)
			}
			n := float64(nReps)
			row.Revenue /= n
			row.Served /= n
			row.CoR /= n
			row.Retries /= n
			row.Timeouts /= n
			row.BreakerOpened /= n
			if rate == 0 {
				base[name] = row
			}
			if b, ok := base[name]; ok && b.Revenue > 0 {
				row.RevenueRatio = row.Revenue / b.Revenue
			}
			if b, ok := base[name]; ok && b.Served > 0 {
				row.ServedRatio = row.Served / b.Served
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// faultSeedFor derives the per-run fault seed: an explicit study-level
// seed wins, otherwise the run seed roots it (matching Plan.Seed == 0
// semantics but fixed here so the row's repeats differ).
func faultSeedFor(explicit, runSeed int64) int64 {
	if explicit != 0 {
		return explicit + runSeed
	}
	return 0 // derive from run seed inside the engine
}

// metricsCountersDelta carries the per-unit-run resilience counters.
type metricsCountersDelta struct {
	probeRetries  int64
	probeTimeouts int64
	breakerOpened int64
}

// newUnitCollector attaches a fresh collector to the unit run's config
// (keeping any runner-shared collector out of the per-row accounting)
// and returns it for countersOf.
func newUnitCollector(cfg *platform.Config) *metrics.Collector {
	col := metrics.New()
	cfg.Metrics = col
	return col
}

func countersOf(col *metrics.Collector) metricsCountersDelta {
	c := col.Snapshot().Counters
	return metricsCountersDelta{
		probeRetries:  c.ProbeRetries,
		probeTimeouts: c.ProbeTimeouts,
		breakerOpened: c.BreakerOpened,
	}
}
