package experiments

import (
	"fmt"
	"io"
	"sort"

	"crossmatch/internal/core"
	"crossmatch/internal/platform"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

// WindowOptions configures the BatchCOM window-size sweep: how does
// batching arrivals for W virtual ticks trade dispatch wait against
// revenue, versus the immediate-dispatch DemCOM baseline?
type WindowOptions struct {
	Requests, Workers int
	Radius            float64
	Repeats           int
	Seed              int64
	// Windows are the BatchCOM window lengths swept, in virtual ticks.
	Windows []core.Time
	// Deadline, when positive, caps per-request buffering, pulling a
	// window flush forward (platform.AlgConfig.Deadline).
	Deadline core.Time
	// Runner fans the (window × repeat) unit runs across a worker pool;
	// nil uses GOMAXPROCS.
	Runner *Runner
}

func (o *WindowOptions) withDefaults() WindowOptions {
	out := *o
	if out.Requests <= 0 {
		out.Requests = 2500
	}
	if out.Workers <= 0 {
		out.Workers = 500
	}
	if out.Radius <= 0 {
		out.Radius = 1.0
	}
	if out.Repeats <= 0 {
		out.Repeats = 3
	}
	if len(out.Windows) == 0 {
		out.Windows = []core.Time{1, 2, 5, 10, 25, 50}
	}
	return out
}

// WindowRow is one (algorithm, window) measurement, averaged over the
// repeats. Window 0 is the immediate-dispatch baseline.
type WindowRow struct {
	Algorithm string
	Window    core.Time
	Revenue   float64
	Served    float64
	// WaitP99 is the 99th-percentile dispatch wait in virtual ticks:
	// decision time minus arrival time, zero for immediate dispatch.
	WaitP99 float64
	// WaitMax is the largest observed dispatch wait in virtual ticks.
	WaitMax float64
	// Bound is the wait each request is guaranteed: the window length,
	// shortened to the per-request deadline when one is set. Zero (no
	// buffering) for the greedy baseline.
	Bound core.Time
}

// WindowResult is the full sweep.
type WindowResult struct {
	Opts WindowOptions
	Rows []WindowRow
}

// Row fetches one measurement.
func (r *WindowResult) Row(alg string, window core.Time) (WindowRow, bool) {
	for _, row := range r.Rows {
		if row.Algorithm == alg && row.Window == window {
			return row, true
		}
	}
	return WindowRow{}, false
}

// Table renders the sweep.
func (r *WindowResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("BatchCOM window sweep (|R|=%d, |W|=%d, rad=%.1f, deadline=%d, %d repeats)",
			r.Opts.Requests, r.Opts.Workers, r.Opts.Radius, r.Opts.Deadline, r.Opts.Repeats),
		"Algorithm", "Window", "Revenue", "Served", "WaitP99", "WaitMax", "Bound")
	for _, row := range r.Rows {
		tb.Add(row.Algorithm, fmt.Sprintf("%d", row.Window),
			stats.FormatFloat(row.Revenue, 1),
			stats.FormatFloat(row.Served, 1),
			stats.FormatFloat(row.WaitP99, 1),
			stats.FormatFloat(row.WaitMax, 1),
			fmt.Sprintf("%d", row.Bound))
	}
	return tb
}

// WriteNote explains how to read the sweep against the paper's
// deadline-matching predictions.
func (r *WindowResult) WriteNote(w io.Writer) error {
	_, err := fmt.Fprintln(w, "Window 0 is DemCOM (immediate dispatch). WaitP99/WaitMax are virtual-tick"+
		"\ndispatch waits (decision tick − arrival tick); Bound is the per-request"+
		"\nguarantee min(window, deadline). Larger windows pool more candidate edges"+
		"\nper batch at the cost of bounded wait.")
	return err
}

// waitBound is the per-request buffering guarantee for a window length.
func waitBound(window, deadline core.Time) core.Time {
	if deadline > 0 && deadline < window {
		return deadline
	}
	return window
}

// p99 returns the 99th-percentile of xs (max for tiny samples).
func p99(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	idx := (99*len(xs) + 99) / 100
	if idx > len(xs) {
		idx = len(xs)
	}
	return xs[idx-1]
}

// windowUnit is one unit run's measurements.
type windowUnit struct {
	revenue float64
	served  float64
	waitP99 float64
	waitMax float64
}

// runWindowUnit drives one engine over the stream, collecting the
// dispatch wait of every request decision — immediate decisions return
// from Process with At equal to the arrival tick, window flushes arrive
// through the decision handler with At equal to the flush tick.
func runWindowUnit(stream *core.Stream, alg string, window, deadline core.Time, cfg platform.Config) (windowUnit, error) {
	factory, err := platform.FactoryConfigured(alg, platform.AlgConfig{
		MaxValue: stream.MaxValue(), Window: window, Deadline: deadline})
	if err != nil {
		return windowUnit{}, err
	}
	cfg.PlatformParallel = false
	eng, err := platform.NewEngine(stream.Platforms(), factory, cfg)
	if err != nil {
		return windowUnit{}, err
	}
	var waits []float64
	observe := func(rd platform.RequestDecision) {
		waits = append(waits, float64(rd.At-rd.Request.Arrival))
	}
	eng.SetDecisionHandler(observe)
	for _, ev := range stream.Events() {
		d, err := eng.Process(ev)
		if err != nil {
			return windowUnit{}, err
		}
		if ev.Kind == core.RequestArrival && !d.Deferred {
			observe(d)
		}
	}
	res, err := eng.Finish()
	if err != nil {
		return windowUnit{}, err
	}
	u := windowUnit{revenue: res.TotalRevenue(), served: float64(res.TotalServed()), waitP99: p99(waits)}
	for _, w := range waits {
		if w > u.waitMax {
			u.waitMax = w
		}
	}
	return u, nil
}

// RunWindow sweeps BatchCOM's window length against the DemCOM
// baseline (reported as window 0): revenue, served count and the
// dispatch-wait distribution, whose tail must stay inside the
// min(window, deadline) buffering guarantee. Deterministic for a fixed
// seed: every unit run goes through the incremental engine, the same
// runtime the serving layer drives.
func RunWindow(opts WindowOptions) (*WindowResult, error) {
	o := opts.withDefaults()
	res := &WindowResult{Opts: o}
	cfg, err := workload.Synthetic(o.Requests, o.Workers, o.Radius, "real")
	if err != nil {
		return nil, err
	}

	// Job layout: [DemCOM × repeats, then per window: BatchCOM × repeats].
	type jobSpec struct {
		alg    string
		window core.Time
	}
	specs := []jobSpec{{platform.AlgDemCOM, 0}}
	for _, w := range o.Windows {
		specs = append(specs, jobSpec{platform.AlgBatchCOM, w})
	}
	nReps := o.Repeats
	units, err := runAll(o.Runner, len(specs)*nReps, func(i int) (windowUnit, error) {
		si, rep := i/nReps, i%nReps
		seed := o.Seed + int64(rep)*7717
		stream, err := workload.Generate(cfg, seed)
		if err != nil {
			return windowUnit{}, err
		}
		spec := specs[si]
		label := fmt.Sprintf("window/%s/w%d", spec.alg, spec.window)
		return runWindowUnit(stream, spec.alg, spec.window, o.Deadline,
			o.Runner.simConfig(seed, false, label))
	})
	if err != nil {
		return nil, err
	}
	for si, spec := range specs {
		row := WindowRow{Algorithm: spec.alg, Window: spec.window}
		if spec.window > 0 {
			row.Bound = waitBound(spec.window, o.Deadline)
		}
		for rep := 0; rep < nReps; rep++ {
			u := units[si*nReps+rep]
			row.Revenue += u.revenue
			row.Served += u.served
			row.WaitP99 += u.waitP99
			if u.waitMax > row.WaitMax {
				row.WaitMax = u.waitMax
			}
		}
		n := float64(nReps)
		row.Revenue /= n
		row.Served /= n
		row.WaitP99 /= n
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
