package experiments

import (
	"fmt"
	"math"

	"crossmatch/internal/core"
	"crossmatch/internal/platform"
	"crossmatch/internal/pricing"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

// CROptions configures the empirical competitive-ratio study.
type CROptions struct {
	// Instances is the number of random problem instances (inputs G).
	Instances int
	// Orders is the number of arrival orders / algorithm seeds averaged
	// per instance — the expectation in CR_RO (Definition 2.8).
	Orders int
	// Requests/Workers per platform pair in each instance.
	Requests, Workers int
	// Radius is the service radius.
	Radius float64
	// Seed roots all randomness.
	Seed int64
	// Runner fans the study's instances across a worker pool; nil uses
	// GOMAXPROCS.
	Runner *Runner
}

func (o *CROptions) withDefaults() CROptions {
	out := *o
	if out.Instances <= 0 {
		out.Instances = 20
	}
	if out.Orders <= 0 {
		out.Orders = 10
	}
	if out.Requests <= 0 {
		out.Requests = 120
	}
	if out.Workers <= 0 {
		out.Workers = 40
	}
	if out.Radius <= 0 {
		out.Radius = 1.5
	}
	return out
}

// CRResult reports the empirical random-order competitive ratios.
type CRResult struct {
	Opts CROptions
	// MinRatio[alg] is the minimum over instances of the mean (over
	// orders) online-to-OPT revenue ratio — the empirical CR_RO.
	MinRatio map[string]float64
	// MeanRatio[alg] averages the per-instance means, a smoother view.
	MeanRatio map[string]float64
}

// Table renders the study.
func (r *CRResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Empirical CR_RO over %d instances x %d orders (|R|=%d, |W|=%d)",
			r.Opts.Instances, r.Opts.Orders, r.Opts.Requests, r.Opts.Workers),
		"Method", "min E[ALG]/OPT", "mean E[ALG]/OPT")
	for _, alg := range []string{platform.AlgTOTA, platform.AlgGreedyRT, platform.AlgDemCOM, platform.AlgRamCOM} {
		tb.Add(alg, stats.FormatFloat(r.MinRatio[alg], 3), stats.FormatFloat(r.MeanRatio[alg], 3))
	}
	return tb
}

// RunCompetitiveRatio measures empirical random-order competitive ratios
// (Definition 2.8) on small random instances where the exact offline
// optimum is cheap: for each instance, each algorithm's expected revenue
// over several arrival orders is divided by the OFF optimum; the minimum
// over instances estimates CR_RO. The paper proves RamCOM reaches 1/(8e)
// ~ 0.046 in the worst case and that DemCOM matches greedy TOTA; here
// typical instances land far above those floors (as the paper's Section
// II-B notes, the worst case appears with probability ~1/k!).
func RunCompetitiveRatio(opts CROptions) (*CRResult, error) {
	o := opts.withDefaults()
	res := &CRResult{
		Opts:      o,
		MinRatio:  map[string]float64{},
		MeanRatio: map[string]float64{},
	}
	algs := []string{platform.AlgTOTA, platform.AlgGreedyRT, platform.AlgDemCOM, platform.AlgRamCOM}
	for _, a := range algs {
		res.MinRatio[a] = math.Inf(1)
	}

	// Instances are fully independent — each one generates its own base
	// input, its own arrival orders and its own OPT solves — so the
	// runner fans them out whole; per-instance ratios come back in
	// instance order and fold into min/mean deterministically.
	// degenerate instances (no request servable in any order) return nil.
	instRatios, err := runAll(o.Runner, o.Instances, func(inst int) (map[string]float64, error) {
		cfg, err := workload.Synthetic(o.Requests, o.Workers, o.Radius, "real")
		if err != nil {
			return nil, err
		}
		genSeed := o.Seed + int64(inst)*104729
		base, err := workload.Generate(cfg, genSeed)
		if err != nil {
			return nil, err
		}
		// One arrival order per sample of the random order model. The
		// offline optimum honours the time constraint, so OPT is
		// recomputed per order; the per-order ratio ALG/OPT is averaged.
		type orderCase struct {
			stream *core.Stream
			opt    float64
		}
		var orders []orderCase
		for ord := 0; ord < o.Orders; ord++ {
			shuffled, err := workload.ReorderUniform(base, genSeed+int64(ord)+1)
			if err != nil {
				return nil, err
			}
			off, err := platform.Offline(shuffled, platform.SolverAuto)
			if err != nil {
				return nil, err
			}
			if off.TotalWeight <= 0 {
				continue
			}
			orders = append(orders, orderCase{stream: shuffled, opt: off.TotalWeight})
		}
		if len(orders) == 0 {
			return nil, nil // degenerate instance
		}
		maxV := cfg.MaxValue()
		factories := map[string]platform.MatcherFactory{
			platform.AlgTOTA:     platform.TOTAFactory(),
			platform.AlgGreedyRT: platform.GreedyRTFactory(maxV),
			platform.AlgDemCOM:   platform.DemCOMFactory(pricing.DefaultMonteCarlo, false),
			platform.AlgRamCOM:   platform.RamCOMFactory(maxV, platform.RamCOMOptions{}),
		}
		ratios := make(map[string]float64, len(algs))
		for _, a := range algs {
			sum := 0.0
			for ord, oc := range orders {
				run, err := platform.Run(oc.stream, factories[a],
					o.Runner.simConfig(genSeed+int64(ord), false, "cr/"+a))
				if err != nil {
					return nil, err
				}
				sum += run.TotalRevenue() / oc.opt
			}
			ratios[a] = sum / float64(len(orders))
		}
		return ratios, nil
	})
	if err != nil {
		return nil, err
	}
	counted := 0
	for _, ratios := range instRatios {
		if ratios == nil {
			continue
		}
		counted++
		for _, a := range algs {
			if ratios[a] < res.MinRatio[a] {
				res.MinRatio[a] = ratios[a]
			}
			res.MeanRatio[a] += ratios[a]
		}
	}
	if counted == 0 {
		return nil, fmt.Errorf("experiments: every CR instance was degenerate")
	}
	for _, a := range algs {
		res.MeanRatio[a] /= float64(counted)
	}
	return res, nil
}
