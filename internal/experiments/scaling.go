package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/metrics"
	"crossmatch/internal/platform"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

// ScalingOptions configures the geo-shard scaling sweep: fixed-density
// cities growing in worker count, each run under every shard count, so
// the table reads as a strong-scaling law per city size and a
// weak-scaling law along the diagonal.
type ScalingOptions struct {
	// Workers are the physical worker counts swept (per city, summed
	// over both platforms).
	Workers []int
	// RequestsPerWorker fixes the demand ratio; with the default 9 every
	// city has 10× its worker count in events.
	RequestsPerWorker int
	// Density is workers per km²; the city square grows as the worker
	// count does, keeping per-cell load — and thus the boundary share —
	// comparable across sizes. Default 50.
	Density float64
	// Radius is the service radius in km (default 1.0).
	Radius float64
	// Shards are the shard counts each city runs under (default 1, 2,
	// 4, 8; 1 is the single-engine baseline).
	Shards []int
	// Algorithm defaults to RamCOM — O(1) per decision, so the sweep
	// measures the runtime, not the matcher.
	Algorithm string
	Seed      int64
}

func (o *ScalingOptions) withDefaults() ScalingOptions {
	out := *o
	if len(out.Workers) == 0 {
		out.Workers = []int{10_000, 100_000}
	}
	if out.RequestsPerWorker <= 0 {
		out.RequestsPerWorker = 9
	}
	if out.Density <= 0 {
		out.Density = 50
	}
	if out.Radius <= 0 {
		out.Radius = 1.0
	}
	if len(out.Shards) == 0 {
		out.Shards = []int{1, 2, 4, 8}
	}
	if out.Algorithm == "" {
		out.Algorithm = platform.AlgRamCOM
	}
	return out
}

// ScalingRow is one (city size, shard count) measurement.
type ScalingRow struct {
	Workers int
	Events  int
	Shards  int
	Revenue float64
	Served  int
	// GenMs is the stream-generation cost (paid once per city size,
	// reported on every row of that city for context).
	GenMs float64
	// RunMs and EventsPerSec measure the matching run itself.
	RunMs        float64
	EventsPerSec float64
	// Boundary is the count of boundary-classified requests; Borrows the
	// cross-shard claims that committed. Both zero for one shard.
	Boundary int64
	Borrows  int64
}

// ScalingResult is the full sweep.
type ScalingResult struct {
	Opts ScalingOptions
	Rows []ScalingRow
}

// Row fetches one measurement.
func (r *ScalingResult) Row(workers, shards int) (ScalingRow, bool) {
	for _, row := range r.Rows {
		if row.Workers == workers && row.Shards == shards {
			return row, true
		}
	}
	return ScalingRow{}, false
}

// Table renders the sweep.
func (r *ScalingResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Geo-shard scaling (%s, %d req/worker, density %.0f/km², rad %.1f km)",
			r.Opts.Algorithm, r.Opts.RequestsPerWorker, r.Opts.Density, r.Opts.Radius),
		"Workers", "Events", "Shards", "Revenue", "Served", "Gen ms", "Run ms", "Events/s", "Boundary", "Borrows")
	for _, row := range r.Rows {
		tb.Add(
			fmt.Sprintf("%d", row.Workers),
			fmt.Sprintf("%d", row.Events),
			fmt.Sprintf("%d", row.Shards),
			stats.FormatFloat(row.Revenue, 0),
			fmt.Sprintf("%d", row.Served),
			stats.FormatFloat(row.GenMs, 0),
			stats.FormatFloat(row.RunMs, 0),
			stats.FormatFloat(row.EventsPerSec, 0),
			fmt.Sprintf("%d", row.Boundary),
			fmt.Sprintf("%d", row.Borrows))
	}
	return tb
}

// WriteNote explains how to read the table.
func (r *ScalingResult) WriteNote(w io.Writer) error {
	_, err := fmt.Fprintln(w, "Fixed-density cities: area grows with the worker count, so per-shard load"+
		"\nand the boundary share stay comparable across sizes. Shards=1 is the"+
		"\nsingle-engine baseline (bit-identical to the unsharded runtime); larger"+
		"\nshard counts only pay off with spare cores — on a single-core box the"+
		"\nsweep measures coordination overhead, not speedup. Boundary counts"+
		"\nrequests whose reach disk crosses a shard border; Borrows the"+
		"\ncross-shard claims that committed.")
	return err
}

// scalingCity builds a fixed-density two-platform city: workers and
// requests uniform over a square sized so worker density stays at
// opts.Density regardless of scale.
func scalingCity(o ScalingOptions, totalWorkers int) (workload.Config, error) {
	side := math.Sqrt(float64(totalWorkers) / o.Density)
	if side < 2*o.Radius {
		side = 2 * o.Radius
	}
	sq := workload.NewUniformSquare(side)
	totalRequests := totalWorkers * o.RequestsPerWorker
	mk := func(id int, workers, requests int) workload.PlatformSpec {
		return workload.PlatformSpec{
			ID:             core.PlatformID(id),
			Requests:       requests,
			Workers:        workers,
			Radius:         o.Radius,
			RequestSpatial: sq,
			Values:         workload.DefaultRealValues(),
		}
	}
	return workload.Config{Platforms: []workload.PlatformSpec{
		mk(1, totalWorkers/2, totalRequests/2),
		mk(2, totalWorkers-totalWorkers/2, totalRequests-totalRequests/2),
	}}, nil
}

// RunScaling runs the sweep. Runs are sequential on purpose: each
// sharded run owns the machine, so the wall-clock column is an honest
// throughput measurement rather than runs contending with each other.
func RunScaling(opts ScalingOptions) (*ScalingResult, error) {
	o := opts.withDefaults()
	res := &ScalingResult{Opts: o}
	for _, w := range o.Workers {
		cfg, err := scalingCity(o, w)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		stream, err := workload.Generate(cfg, o.Seed)
		if err != nil {
			return nil, err
		}
		genMs := float64(time.Since(t0)) / float64(time.Millisecond)
		factory, err := platform.FactoryConfigured(o.Algorithm, platform.AlgConfig{MaxValue: stream.MaxValue()})
		if err != nil {
			return nil, err
		}
		for _, n := range o.Shards {
			mc := metrics.New()
			t1 := time.Now()
			out, err := platform.Run(stream, factory, platform.Config{
				Seed: o.Seed, Shards: n, Metrics: mc,
			})
			if err != nil {
				return nil, fmt.Errorf("workers=%d shards=%d: %w", w, n, err)
			}
			runMs := float64(time.Since(t1)) / float64(time.Millisecond)
			row := ScalingRow{
				Workers: w,
				Events:  stream.Len(),
				Shards:  n,
				Revenue: out.TotalRevenue(),
				Served:  out.TotalServed(),
				GenMs:   genMs,
				RunMs:   runMs,
			}
			if runMs > 0 {
				row.EventsPerSec = float64(stream.Len()) / (runMs / 1000)
			}
			for _, sh := range mc.Snapshot().Shards {
				row.Boundary += sh.BoundaryEvents
				row.Borrows += sh.Borrows
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}
