package experiments

import (
	"math"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/platform"
)

func TestRunWindowSweep(t *testing.T) {
	opts := WindowOptions{Requests: 300, Workers: 120, Repeats: 2, Seed: 11,
		Windows: []core.Time{2, 8}, Deadline: 5}
	res, err := RunWindow(opts)
	if err != nil {
		t.Fatalf("RunWindow: %v", err)
	}
	if len(res.Rows) != 3 { // DemCOM baseline + two windows
		t.Fatalf("rows: %d, want 3", len(res.Rows))
	}
	base, ok := res.Row(platform.AlgDemCOM, 0)
	if !ok || base.Revenue <= 0 {
		t.Fatalf("missing DemCOM baseline row: %+v", res.Rows)
	}
	if base.WaitMax != 0 {
		t.Fatalf("immediate dispatch with a non-zero wait: %+v", base)
	}
	for _, w := range opts.Windows {
		row, ok := res.Row(platform.AlgBatchCOM, w)
		if !ok {
			t.Fatalf("missing BatchCOM row for window %d", w)
		}
		want := waitBound(w, opts.Deadline)
		if row.Bound != want {
			t.Fatalf("window %d: bound %d, want min(window, deadline) = %d", w, row.Bound, want)
		}
		if row.WaitMax > float64(want) {
			t.Fatalf("window %d: max wait %.1f exceeds the %d-tick buffering guarantee",
				w, row.WaitMax, want)
		}
	}

	// The sweep is a pure function of its options: a second run must
	// reproduce every revenue bit for bit.
	again, err := RunWindow(opts)
	if err != nil {
		t.Fatalf("RunWindow (repeat): %v", err)
	}
	for i := range res.Rows {
		if res.Rows[i].Revenue != again.Rows[i].Revenue {
			t.Fatalf("row %d not deterministic: %v vs %v", i, res.Rows[i], again.Rows[i])
		}
	}
}

func TestWindowP99(t *testing.T) {
	if got := p99(nil); got != 0 {
		t.Fatalf("p99(nil) = %v", got)
	}
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
	}
	if got := p99(xs); math.Abs(got-197) > 1 {
		t.Fatalf("p99 of 0..199 = %v, want ~198", got)
	}
}
