package experiments

import (
	"fmt"

	"crossmatch/internal/platform"
	"crossmatch/internal/pricing"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

// AblationOptions configures the design-choice ablation study.
type AblationOptions struct {
	// Requests/Workers/Radius define the synthetic workload (Table IV
	// defaults when zero).
	Requests, Workers int
	Radius            float64
	// Repeats averages each variant over this many seeds.
	Repeats int
	// Seed roots all randomness.
	Seed int64
	// Runner fans the (variant × repeat) unit runs across a worker pool;
	// nil uses GOMAXPROCS.
	Runner *Runner
}

func (o *AblationOptions) withDefaults() AblationOptions {
	out := *o
	if out.Requests <= 0 {
		out.Requests = 2500
	}
	if out.Workers <= 0 {
		out.Workers = 500
	}
	if out.Radius <= 0 {
		out.Radius = 1.0
	}
	if out.Repeats <= 0 {
		out.Repeats = 3
	}
	return out
}

// AblationRow is one variant's averaged outcome.
type AblationRow struct {
	Variant   string
	Revenue   float64
	Served    float64
	CoR       float64
	AcptRatio float64
	PayRate   float64
}

// AblationResult is the full study.
type AblationResult struct {
	Opts AblationOptions
	Rows []AblationRow
}

// Row returns the named variant's row.
func (r *AblationResult) Row(variant string) (AblationRow, bool) {
	for _, row := range r.Rows {
		if row.Variant == variant {
			return row, true
		}
	}
	return AblationRow{}, false
}

// Table renders the study.
func (r *AblationResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Ablations (|R|=%d, |W|=%d, rad=%.1f, %d repeats)",
			r.Opts.Requests, r.Opts.Workers, r.Opts.Radius, r.Opts.Repeats),
		"Variant", "Revenue", "Served", "|CoR|", "AcpRt", "v'/v")
	for _, row := range r.Rows {
		tb.Add(row.Variant,
			stats.FormatFloat(row.Revenue, 1),
			stats.FormatFloat(row.Served, 1),
			stats.FormatFloat(row.CoR, 1),
			stats.FormatFloat(row.AcptRatio, 3),
			stats.FormatFloat(row.PayRate, 3))
	}
	return tb
}

// Ablation variant names.
const (
	VarTOTA             = "TOTA (no cooperation)"
	VarDemCOM           = "DemCOM (Alg 2 Monte-Carlo)"
	VarDemCOMOracle     = "DemCOM (oracle min payment)"
	VarDemCOMNoCoop     = "DemCOM (hub disabled)"
	VarRamCOM           = "RamCOM (exact E-rev pricing)"
	VarRamCOMThreshold  = "RamCOM (1/e threshold pricing)"
	VarRamCOMMinPayment = "RamCOM (min-payment pricing)"
	VarRamCOMLiteral    = "RamCOM (literal Alg 3, no fallback)"
	VarRamCOMNoCoop     = "RamCOM (hub disabled)"
)

// RunAblations measures the design-choice variants DESIGN.md calls out:
// Algorithm 2's Monte-Carlo estimator vs an oracle payment, RamCOM's
// exact expected-revenue pricing vs the 1/e threshold quote vs DemCOM's
// minimum-payment pricing, and both COM algorithms with the cooperation
// hub disabled (the degradation-to-TOTA claim of Section III-D).
func RunAblations(opts AblationOptions) (*AblationResult, error) {
	o := opts.withDefaults()
	cfg, err := workload.Synthetic(o.Requests, o.Workers, o.Radius, "real")
	if err != nil {
		return nil, err
	}
	maxV := cfg.MaxValue()

	type variant struct {
		name    string
		factory platform.MatcherFactory
		noCoop  bool
	}
	variants := []variant{
		{VarTOTA, platform.TOTAFactory(), false},
		{VarDemCOM, platform.DemCOMFactory(pricing.DefaultMonteCarlo, false), false},
		{VarDemCOMOracle, platform.DemCOMFactory(pricing.DefaultMonteCarlo, true), false},
		{VarDemCOMNoCoop, platform.DemCOMFactory(pricing.DefaultMonteCarlo, false), true},
		{VarRamCOM, platform.RamCOMFactory(maxV, platform.RamCOMOptions{}), false},
		{VarRamCOMThreshold, platform.RamCOMFactory(maxV, platform.RamCOMOptions{ThresholdPricing: true}), false},
		{VarRamCOMMinPayment, platform.RamCOMFactory(maxV, platform.RamCOMOptions{MinPaymentPricing: true}), false},
		{VarRamCOMLiteral, platform.RamCOMFactory(maxV, platform.RamCOMOptions{NoInnerFallback: true}), false},
		{VarRamCOMNoCoop, platform.RamCOMFactory(maxV, platform.RamCOMOptions{}), true},
	}

	// One unit run per (variant, repeat); streams regenerate per repeat
	// inside the job from the shared config, so runs stay isolated. Run
	// (vi, rep) lands at vi*Repeats + rep for in-order aggregation.
	res := &AblationResult{Opts: o}
	runs, err := runAll(o.Runner, len(variants)*o.Repeats, func(i int) (*platform.Result, error) {
		v := variants[i/o.Repeats]
		seed := o.Seed + int64(i%o.Repeats)*6151
		stream, err := workload.Generate(cfg, seed)
		if err != nil {
			return nil, err
		}
		return platform.Run(stream, v.factory, o.Runner.simConfig(seed, v.noCoop, "ablation/"+v.name))
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		var row AblationRow
		row.Variant = v.name
		attempted := 0.0
		for rep := 0; rep < o.Repeats; rep++ {
			run := runs[vi*o.Repeats+rep]
			row.Revenue += run.TotalRevenue()
			row.Served += float64(run.TotalServed())
			row.CoR += float64(run.CooperativeServed())
			row.PayRate += run.MeanPaymentRate()
			for _, pr := range run.Platforms {
				attempted += float64(pr.Stats.CoopAttempted)
			}
		}
		n := float64(o.Repeats)
		row.Revenue /= n
		row.Served /= n
		row.CoR /= n
		row.PayRate /= n
		if attempted > 0 {
			row.AcptRatio = row.CoR * n / attempted
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
