package experiments

import (
	"bytes"
	"strings"
	"testing"

	"crossmatch/internal/platform"
)

func TestRunValueDist(t *testing.T) {
	res, err := RunValueDist(ValueDistOptions{Requests: 500, Workers: 100, Repeats: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 3 algorithms x 2 distributions
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	// The paper's ordering must be distribution-stable: COM >= TOTA
	// under both distributions.
	for _, dist := range []string{"real", "normal"} {
		tota, ok := res.Row(platform.AlgTOTA, dist)
		if !ok {
			t.Fatalf("missing TOTA/%s", dist)
		}
		dem, _ := res.Row(platform.AlgDemCOM, dist)
		if dem.Revenue < tota.Revenue-1e-9 {
			t.Errorf("%s: DemCOM %v below TOTA %v", dist, dem.Revenue, tota.Revenue)
		}
		if dem.PayRate <= 0 || dem.PayRate > 1 {
			t.Errorf("%s: DemCOM payment rate %v out of range", dist, dem.PayRate)
		}
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "normal") || !strings.Contains(buf.String(), "real") {
		t.Error("table missing distributions")
	}
	if _, ok := res.Row("nope", "real"); ok {
		t.Error("unknown row found")
	}
}
