package experiments

import (
	"fmt"

	"crossmatch/internal/platform"
	"crossmatch/internal/pricing"
	"crossmatch/internal/stats"
	"crossmatch/internal/workload"
)

// ValueDistOptions configures the Table IV value-distribution factor
// study ({real, normal}).
type ValueDistOptions struct {
	Requests, Workers int
	Radius            float64
	Repeats           int
	Seed              int64
	// Runner fans the (distribution × algorithm × repeat) unit runs
	// across a worker pool; nil uses GOMAXPROCS.
	Runner *Runner
}

func (o *ValueDistOptions) withDefaults() ValueDistOptions {
	out := *o
	if out.Requests <= 0 {
		out.Requests = 2500
	}
	if out.Workers <= 0 {
		out.Workers = 500
	}
	if out.Radius <= 0 {
		out.Radius = 1.0
	}
	if out.Repeats <= 0 {
		out.Repeats = 3
	}
	return out
}

// ValueDistRow is one (algorithm, distribution) measurement.
type ValueDistRow struct {
	Algorithm string
	Dist      string
	Revenue   float64
	Served    float64
	AcptRatio float64
	PayRate   float64
}

// ValueDistResult is the full factor study.
type ValueDistResult struct {
	Opts ValueDistOptions
	Rows []ValueDistRow
}

// Row fetches one measurement.
func (r *ValueDistResult) Row(alg, dist string) (ValueDistRow, bool) {
	for _, row := range r.Rows {
		if row.Algorithm == alg && row.Dist == dist {
			return row, true
		}
	}
	return ValueDistRow{}, false
}

// Table renders the study.
func (r *ValueDistResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Value distribution factor (|R|=%d, |W|=%d, rad=%.1f, %d repeats)",
			r.Opts.Requests, r.Opts.Workers, r.Opts.Radius, r.Opts.Repeats),
		"Algorithm", "Distribution", "Revenue", "Served", "AcpRt", "v'/v")
	for _, row := range r.Rows {
		tb.Add(row.Algorithm, row.Dist,
			stats.FormatFloat(row.Revenue, 1),
			stats.FormatFloat(row.Served, 1),
			stats.FormatFloat(row.AcptRatio, 3),
			stats.FormatFloat(row.PayRate, 3))
	}
	return tb
}

// RunValueDist measures the three online algorithms under Table IV's
// two value distributions — the heavy-tailed "real" (log-normal) fares
// and the symmetric "normal" ones — holding everything else at the
// defaults. The paper reports that the default value distribution "has
// little influence to the experimental results on scalability"; this
// study verifies the orderings it relies on are indeed
// distribution-stable.
func RunValueDist(opts ValueDistOptions) (*ValueDistResult, error) {
	o := opts.withDefaults()
	res := &ValueDistResult{Opts: o}
	dists := []string{"real", "normal"}
	algoNames := []string{platform.AlgTOTA, platform.AlgDemCOM, platform.AlgRamCOM}
	cfgs := make([]workload.Config, len(dists))
	for di, dist := range dists {
		cfg, err := workload.Synthetic(o.Requests, o.Workers, o.Radius, dist)
		if err != nil {
			return nil, err
		}
		cfgs[di] = cfg
	}
	factoryFor := func(cfg workload.Config, name string) platform.MatcherFactory {
		switch name {
		case platform.AlgDemCOM:
			return platform.DemCOMFactory(pricing.DefaultMonteCarlo, false)
		case platform.AlgRamCOM:
			return platform.RamCOMFactory(cfg.MaxValue(), platform.RamCOMOptions{})
		default:
			return platform.TOTAFactory()
		}
	}

	// One unit run per (distribution, algorithm, repeat), flattened in
	// that order; streams regenerate per job from (config, seed).
	nAlgos, nReps := len(algoNames), o.Repeats
	runs, err := runAll(o.Runner, len(dists)*nAlgos*nReps, func(i int) (*platform.Result, error) {
		di, rest := i/(nAlgos*nReps), i%(nAlgos*nReps)
		ai, rep := rest/nReps, rest%nReps
		seed := o.Seed + int64(rep)*4447
		stream, err := workload.Generate(cfgs[di], seed)
		if err != nil {
			return nil, err
		}
		return platform.Run(stream, factoryFor(cfgs[di], algoNames[ai]),
			o.Runner.simConfig(seed, false, "valuedist/"+dists[di]+"/"+algoNames[ai]))
	})
	if err != nil {
		return nil, err
	}
	for di, dist := range dists {
		for ai, name := range algoNames {
			row := ValueDistRow{Algorithm: name, Dist: dist}
			for rep := 0; rep < nReps; rep++ {
				run := runs[di*nAlgos*nReps+ai*nReps+rep]
				row.Revenue += run.TotalRevenue()
				row.Served += float64(run.TotalServed())
				row.AcptRatio += run.AcceptanceRatio()
				row.PayRate += run.MeanPaymentRate()
			}
			n := float64(nReps)
			row.Revenue /= n
			row.Served /= n
			row.AcptRatio /= n
			row.PayRate /= n
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}
