package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
)

// line builds a 1-D chain network 0 -- 1 -- 2 -- ... at unit spacing.
func line(t *testing.T, n int) *Network {
	t.Helper()
	nodes := make([]geo.Point, n)
	var edges [][2]int
	for i := range nodes {
		nodes[i] = geo.Point{X: float64(i)}
		if i > 0 {
			edges = append(edges, [2]int{i - 1, i})
		}
	}
	net, err := NewNetwork(nodes, edges, 1)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, nil, 1); err == nil {
		t.Error("empty network accepted")
	}
	nodes := []geo.Point{{X: 0}, {X: 1}}
	if _, err := NewNetwork(nodes, [][2]int{{0, 2}}, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := NewNetwork(nodes, [][2]int{{0, 0}}, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewNetwork(nodes, nil, 0.5); err == nil {
		t.Error("detour < 1 accepted")
	}
	if _, err := NewNetwork([]geo.Point{{X: math.NaN()}}, nil, 1); err == nil {
		t.Error("NaN node accepted")
	}
}

func TestSnap(t *testing.T) {
	net := line(t, 10)
	tests := []struct {
		p    geo.Point
		want NodeID
	}{
		{geo.Point{X: 0}, 0},
		{geo.Point{X: 4.4}, 4},
		{geo.Point{X: 4.6}, 5},
		{geo.Point{X: 100}, 9},
		{geo.Point{X: -7, Y: 3}, 0},
	}
	for _, tt := range tests {
		if got := net.Snap(tt.p); got != tt.want {
			t.Errorf("Snap(%v) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestSnapMatchesLinearScan(t *testing.T) {
	net, err := NewGridNetwork(geo.NewRect(geo.Point{}, geo.Point{X: 5, Y: 5}), GridOptions{Spacing: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		p := geo.Point{X: rng.Float64()*7 - 1, Y: rng.Float64()*7 - 1}
		got := net.Snap(p)
		// Oracle: linear scan.
		best, bestD := NodeID(-1), math.Inf(1)
		for id := 0; id < net.Len(); id++ {
			if d := net.NodeLoc(NodeID(id)).Dist2(p); d < bestD {
				best, bestD = NodeID(id), d
			}
		}
		gotD := net.NodeLoc(got).Dist2(p)
		if math.Abs(gotD-bestD) > 1e-12 {
			t.Fatalf("Snap(%v) = node %d at d2=%v, oracle node %d at d2=%v", p, got, gotD, best, bestD)
		}
	}
}

func TestWithinOnLine(t *testing.T) {
	net := line(t, 10)
	f := net.Within(geo.Point{X: 3}, 2.5)
	// Nodes 1..5 are within 2.5 of node 3.
	wantReached := 5
	if f.Reached() != wantReached {
		t.Fatalf("Reached = %d, want %d", f.Reached(), wantReached)
	}
	if d, ok := f.DistTo(geo.Point{X: 5}); !ok || math.Abs(d-2) > 1e-12 {
		t.Errorf("DistTo(5) = %v, %v", d, ok)
	}
	if _, ok := f.DistTo(geo.Point{X: 9}); ok {
		t.Error("node beyond budget reported reachable")
	}
	if f.Budget() != 2.5 || f.Source() != (geo.Point{X: 3}) {
		t.Error("field metadata wrong")
	}
	// Negative budget: empty field.
	if net.Within(geo.Point{X: 3}, -1).Reached() != 0 {
		t.Error("negative budget reached nodes")
	}
}

func TestDistDisconnected(t *testing.T) {
	nodes := []geo.Point{{X: 0}, {X: 1}, {X: 5}, {X: 6}}
	net, err := NewNetwork(nodes, [][2]int{{0, 1}, {2, 3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := net.Dist(geo.Point{X: 0}, geo.Point{X: 1}); !ok || math.Abs(d-1) > 1e-12 {
		t.Errorf("Dist connected = %v, %v", d, ok)
	}
	if _, ok := net.Dist(geo.Point{X: 0}, geo.Point{X: 6}); ok {
		t.Error("disconnected pair reported reachable")
	}
}

func TestDetourScalesDistances(t *testing.T) {
	nodes := []geo.Point{{X: 0}, {X: 1}}
	net, err := NewNetwork(nodes, [][2]int{{0, 1}}, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := net.Dist(geo.Point{X: 0}, geo.Point{X: 1}); !ok || math.Abs(d-1.3) > 1e-12 {
		t.Errorf("detour distance = %v, want 1.3", d)
	}
}

func TestGridNetworkConnectivityAndDominance(t *testing.T) {
	region := geo.NewRect(geo.Point{}, geo.Point{X: 4, Y: 4})
	net, err := NewGridNetwork(region, GridOptions{Spacing: 0.5, DropProb: 0.15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Fully connected: a generous budget from the center reaches all.
	f := net.Within(region.Center(), 1e9)
	if f.Reached() != net.Len() {
		t.Fatalf("grid not connected: reached %d of %d", f.Reached(), net.Len())
	}
	// Road distance dominates Euclidean distance.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := geo.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
		b := geo.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
		road, ok := net.Dist(a, b)
		if !ok {
			t.Fatalf("connected grid reported unreachable pair")
		}
		sa, sb := net.NodeLoc(net.Snap(a)), net.NodeLoc(net.Snap(b))
		if road+1e-9 < sa.Dist(sb) {
			t.Fatalf("road %v shorter than straight line %v", road, sa.Dist(sb))
		}
	}
}

func TestGridNetworkValidation(t *testing.T) {
	if _, err := NewGridNetwork(geo.Rect{Min: geo.Point{X: 1}, Max: geo.Point{}}, GridOptions{}); err == nil {
		t.Error("invalid region accepted")
	}
	tiny := geo.NewRect(geo.Point{}, geo.Point{X: 0.01, Y: 0.01})
	if _, err := NewGridNetwork(tiny, GridOptions{Spacing: 50}); err == nil {
		t.Error("degenerate grid accepted")
	}
	huge := geo.NewRect(geo.Point{}, geo.Point{X: 10000, Y: 10000})
	if _, err := NewGridNetwork(huge, GridOptions{Spacing: 0.1}); err == nil {
		t.Error("oversized grid accepted")
	}
}

func TestGridNetworkDeterministic(t *testing.T) {
	region := geo.NewRect(geo.Point{}, geo.Point{X: 3, Y: 3})
	a, err := NewGridNetwork(region, GridOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGridNetwork(region, GridOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("node counts differ")
	}
	for i := 0; i < a.Len(); i++ {
		if a.NodeLoc(NodeID(i)) != b.NodeLoc(NodeID(i)) {
			t.Fatalf("node %d differs between identical seeds", i)
		}
	}
}

func TestCoverageFiltersAndCaches(t *testing.T) {
	net := line(t, 20) // road along the x axis only
	cov := NewCoverage(net, 5)
	r := &core.Request{ID: 1, Arrival: 10, Loc: geo.Point{X: 10}, Value: 5, Platform: 1}
	near := &core.Worker{ID: 1, Arrival: 0, Loc: geo.Point{X: 8}, Radius: 3, Platform: 1}
	far := &core.Worker{ID: 2, Arrival: 0, Loc: geo.Point{X: 2}, Radius: 3, Platform: 1}
	// Off-road worker: Euclidean close (y offset small is irrelevant —
	// the network is a line, snap projects to it).
	if !cov.Covers(near, r) {
		t.Error("near worker should cover by road")
	}
	if cov.Covers(far, r) {
		t.Error("far worker covered: road distance 8 > radius 3")
	}
	if cov.Fields() != 1 {
		t.Errorf("fields computed = %d, want 1 (cached per request)", cov.Fields())
	}
	r2 := &core.Request{ID: 2, Arrival: 11, Loc: geo.Point{X: 3}, Value: 5, Platform: 1}
	if !cov.Covers(far, r2) {
		t.Error("far worker should cover request 2 (distance 1)")
	}
	if cov.Fields() != 2 {
		t.Errorf("fields = %d, want 2", cov.Fields())
	}
}

func TestCoverageNeverAdmitsBeyondEuclideanPrefilter(t *testing.T) {
	// Property: road coverage implies Euclidean-snap coverage cannot be
	// exceeded materially — road >= straight-line between snapped nodes.
	region := geo.NewRect(geo.Point{}, geo.Point{X: 5, Y: 5})
	net, err := NewGridNetwork(region, GridOptions{Spacing: 0.4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cov := NewCoverage(net, 2)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		w := &core.Worker{ID: int64(i), Arrival: 0,
			Loc:    geo.Point{X: rng.Float64() * 5, Y: rng.Float64() * 5},
			Radius: 0.3 + rng.Float64(), Platform: 1}
		r := &core.Request{ID: int64(i), Arrival: 1,
			Loc:   geo.Point{X: rng.Float64() * 5, Y: rng.Float64() * 5},
			Value: 1, Platform: 1}
		if cov.Covers(w, r) {
			sw, sr := net.NodeLoc(net.Snap(w.Loc)), net.NodeLoc(net.Snap(r.Loc))
			if sw.Dist(sr) > w.Radius+1e-9 {
				t.Fatalf("road coverage admitted a pair with straight-line snap distance %v > radius %v",
					sw.Dist(sr), w.Radius)
			}
		}
	}
}
