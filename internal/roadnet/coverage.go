package roadnet

import (
	"crossmatch/internal/core"
)

// Coverage replaces the Euclidean range constraint of Definition 2.6
// with road-network distance: worker w can serve request r iff the
// shortest road path from w's location to r's is at most w's radius.
// Because road distance is at least Euclidean distance, Coverage only
// prunes candidates the circle-based spatial index already returned —
// plug it into online.Pool.RangeFilter and the index prefilter stays a
// correct superset.
//
// The filter caches one distance field per request: the event loop asks
// about many workers for the same incoming request (the platform's own
// pool plus every cooperating platform's pool through the hub), and all
// of those probes share a single bounded Dijkstra from the request
// location.
type Coverage struct {
	net *Network
	// maxRadius bounds the Dijkstra: no worker can serve beyond it.
	maxRadius float64

	lastRequest int64
	field       *DistField
	fieldCount  int
}

// NewCoverage builds a road-distance range filter. maxRadius must be at
// least the largest worker service radius in the simulation.
func NewCoverage(net *Network, maxRadius float64) *Coverage {
	return &Coverage{net: net, maxRadius: maxRadius, lastRequest: -1}
}

// Covers reports whether the worker reaches the request within its
// radius by road. It implements online.RangeFilter.
func (c *Coverage) Covers(w *core.Worker, r *core.Request) bool {
	if c.lastRequest != r.ID || c.field == nil {
		c.field = c.net.Within(r.Loc, c.maxRadius)
		c.lastRequest = r.ID
		c.fieldCount++
	}
	d, ok := c.field.DistTo(w.Loc)
	return ok && d <= w.Radius
}

// Fields returns how many distance fields were computed (one per
// distinct request probed); used by tests and benchmarks to confirm the
// per-request caching works.
func (c *Coverage) Fields() int { return c.fieldCount }
