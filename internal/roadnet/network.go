// Package roadnet implements the road-network distance model the paper
// sketches: Section II notes that COM "can be equivalently changed into
// the shortest path distance in road networks by just changing the
// service range from circulars to irregular shapes", and Section VII
// lists routing-aware cooperation as future work. The package provides
//
//   - Network: an undirected weighted road graph with a deterministic
//     city-grid builder (perturbed Manhattan grid with occasional missing
//     segments, so service ranges really are irregular);
//   - bounded single-source shortest paths (Dijkstra with a distance
//     budget) and DistField, a reusable result that answers "how far by
//     road from the query point?" in O(1) per probe;
//   - Coverage, a drop-in range filter for online.Pool that replaces the
//     Euclidean range constraint of Definition 2.6 with road distance.
//
// Road distance dominates Euclidean distance, so the spatial index's
// circle prefilter stays correct as a superset; Coverage only prunes.
package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"crossmatch/internal/geo"
)

// NodeID indexes a network node.
type NodeID int32

// edge is one directed half of an undirected road segment.
type edge struct {
	to   NodeID
	dist float64
}

// Network is an undirected road graph embedded in the plane.
type Network struct {
	nodes []geo.Point
	adj   [][]edge
	// snap grid
	region  geo.Rect
	cell    float64
	buckets map[[2]int32][]NodeID
}

// NewNetwork builds a network from explicit nodes and undirected edges
// (pairs of node indices). Edge lengths are the Euclidean distances
// between endpoints scaled by detour >= 1.
func NewNetwork(nodes []geo.Point, edges [][2]int, detour float64) (*Network, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("roadnet: no nodes")
	}
	if detour < 1 {
		return nil, fmt.Errorf("roadnet: detour factor %v must be >= 1", detour)
	}
	n := &Network{
		nodes: append([]geo.Point(nil), nodes...),
		adj:   make([][]edge, len(nodes)),
	}
	for i, p := range nodes {
		if !p.IsFinite() {
			return nil, fmt.Errorf("roadnet: node %d has non-finite location", i)
		}
	}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= len(nodes) || b < 0 || b >= len(nodes) || a == b {
			return nil, fmt.Errorf("roadnet: bad edge (%d, %d)", a, b)
		}
		d := nodes[a].Dist(nodes[b]) * detour
		n.adj[a] = append(n.adj[a], edge{to: NodeID(b), dist: d})
		n.adj[b] = append(n.adj[b], edge{to: NodeID(a), dist: d})
	}
	n.buildSnap()
	return n, nil
}

// GridOptions configures NewGridNetwork.
type GridOptions struct {
	// Spacing is the block edge length in km (default 0.25).
	Spacing float64
	// Jitter displaces each intersection by up to Jitter*Spacing in
	// each axis (default 0.2) so ranges are irregular.
	Jitter float64
	// DropProb removes each street segment with this probability
	// (default 0.08), creating detours. The builder keeps the grid
	// connected by never dropping the segments of the first row and
	// first column.
	DropProb float64
	// Detour scales edge lengths over the crow-flies distance
	// (default 1.0; city networks are often modelled at 1.2-1.4).
	Detour float64
	// Seed drives the jitter and drops.
	Seed int64
}

func (o GridOptions) withDefaults() GridOptions {
	if o.Spacing <= 0 {
		o.Spacing = 0.25
	}
	if o.Jitter < 0 {
		o.Jitter = 0
	} else if o.Jitter == 0 {
		o.Jitter = 0.2
	}
	if o.DropProb < 0 {
		o.DropProb = 0
	} else if o.DropProb == 0 {
		o.DropProb = 0.08
	}
	if o.Detour < 1 {
		o.Detour = 1.0
	}
	return o
}

// NewGridNetwork builds a perturbed Manhattan street grid covering the
// region. Deterministic for a given options struct.
func NewGridNetwork(region geo.Rect, opts GridOptions) (*Network, error) {
	if !region.Valid() || region.Area() == 0 {
		return nil, fmt.Errorf("roadnet: invalid region %v", region)
	}
	o := opts.withDefaults()
	if o.Spacing > region.Width() || o.Spacing > region.Height() {
		return nil, fmt.Errorf("roadnet: spacing %v exceeds region extent %v", o.Spacing, region)
	}
	cols := int(math.Ceil(region.Width()/o.Spacing)) + 1
	rows := int(math.Ceil(region.Height()/o.Spacing)) + 1
	if cols*rows > 4_000_000 {
		return nil, fmt.Errorf("roadnet: %d x %d grid too large", cols, rows)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	nodes := make([]geo.Point, 0, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			p := geo.Point{
				X: region.Min.X + float64(c)*o.Spacing + (rng.Float64()*2-1)*o.Jitter*o.Spacing,
				Y: region.Min.Y + float64(r)*o.Spacing + (rng.Float64()*2-1)*o.Jitter*o.Spacing,
			}
			nodes = append(nodes, region.ClosestPoint(p))
		}
	}
	id := func(r, c int) int { return r*cols + c }
	var edges [][2]int
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Horizontal segment to the east neighbour.
			if c+1 < cols {
				keep := r == 0 || rng.Float64() >= o.DropProb
				if keep {
					edges = append(edges, [2]int{id(r, c), id(r, c+1)})
				}
			}
			// Vertical segment to the north neighbour.
			if r+1 < rows {
				keep := c == 0 || rng.Float64() >= o.DropProb
				if keep {
					edges = append(edges, [2]int{id(r, c), id(r+1, c)})
				}
			}
		}
	}
	return NewNetwork(nodes, edges, o.Detour)
}

// Len returns the number of nodes.
func (n *Network) Len() int { return len(n.nodes) }

// NodeLoc returns a node's location.
func (n *Network) NodeLoc(id NodeID) geo.Point { return n.nodes[id] }

func (n *Network) buildSnap() {
	n.region = geo.Rect{Min: n.nodes[0], Max: n.nodes[0]}
	for _, p := range n.nodes[1:] {
		n.region = geo.NewRect(
			geo.Point{X: math.Min(n.region.Min.X, p.X), Y: math.Min(n.region.Min.Y, p.Y)},
			geo.Point{X: math.Max(n.region.Max.X, p.X), Y: math.Max(n.region.Max.Y, p.Y)},
		)
	}
	// Aim for a handful of nodes per bucket.
	n.cell = math.Max(0.1, math.Sqrt(n.region.Area()/float64(len(n.nodes)))*2)
	n.buckets = make(map[[2]int32][]NodeID)
	for i, p := range n.nodes {
		k := n.bucketKey(p)
		n.buckets[k] = append(n.buckets[k], NodeID(i))
	}
}

func (n *Network) bucketKey(p geo.Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / n.cell)), int32(math.Floor(p.Y / n.cell))}
}

// Snap returns the network node nearest to p.
func (n *Network) Snap(p geo.Point) NodeID {
	// Far-outside queries degrade the ring search; a linear scan is both
	// simpler and faster there.
	if !n.region.Expand(2 * n.cell).Contains(p) {
		return n.snapLinear(p)
	}
	best := NodeID(-1)
	bestD := math.Inf(1)
	k := n.bucketKey(p)
	maxRing := int32(math.Ceil((n.region.Width()+n.region.Height())/n.cell)) + 2
	for ring := int32(0); ring <= maxRing; ring++ {
		for dx := -ring; dx <= ring; dx++ {
			for dy := -ring; dy <= ring; dy++ {
				if dx > -ring && dx < ring && dy > -ring && dy < ring {
					continue // interior already scanned on earlier rings
				}
				for _, id := range n.buckets[[2]int32{k[0] + dx, k[1] + dy}] {
					if d := n.nodes[id].Dist2(p); d < bestD {
						best, bestD = id, d
					}
				}
			}
		}
		// Every unscanned node lies in a bucket at Chebyshev ring
		// distance > ring, hence at least ring*cell away from p; the
		// current best is final once it is at most that.
		if best != -1 && math.Sqrt(bestD) <= float64(ring)*n.cell {
			return best
		}
	}
	return n.snapLinear(p) // defensive; unreachable for in-region queries
}

func (n *Network) snapLinear(p geo.Point) NodeID {
	best := NodeID(-1)
	bestD := math.Inf(1)
	for i, q := range n.nodes {
		if d := q.Dist2(p); d < bestD {
			best, bestD = NodeID(i), d
		}
	}
	return best
}
