package roadnet

import (
	"container/heap"
	"crossmatch/internal/geo"
)

// DistField is the result of a budget-bounded single-source shortest
// path run: road distances from a source point to every node within the
// budget. It answers point probes in O(1) plus a snap.
type DistField struct {
	net    *Network
	source geo.Point
	budget float64
	dist   map[NodeID]float64
}

// Source returns the field's source point.
func (f *DistField) Source() geo.Point { return f.source }

// Budget returns the distance budget the field was computed with.
func (f *DistField) Budget() float64 { return f.budget }

// DistTo returns the road distance from the source to p (snapped to its
// nearest node), with ok=false when p is beyond the budget or
// unreachable.
func (f *DistField) DistTo(p geo.Point) (float64, bool) {
	d, ok := f.dist[f.net.Snap(p)]
	return d, ok
}

// Reached returns the number of nodes within the budget.
func (f *DistField) Reached() int { return len(f.dist) }

// Within computes road distances from `from` (snapped) to every node
// within the given budget, using Dijkstra with early cutoff.
func (n *Network) Within(from geo.Point, budget float64) *DistField {
	f := &DistField{net: n, source: from, budget: budget, dist: map[NodeID]float64{}}
	if budget < 0 {
		return f
	}
	src := n.Snap(from)
	if src < 0 {
		return f
	}
	pq := &nodeHeap{{id: src, dist: 0}}
	f.dist[src] = 0
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if d, ok := f.dist[it.id]; !ok || it.dist > d {
			continue // stale entry
		}
		for _, e := range n.adj[it.id] {
			nd := it.dist + e.dist
			if nd > budget {
				continue
			}
			if d, ok := f.dist[e.to]; !ok || nd < d {
				f.dist[e.to] = nd
				heap.Push(pq, nodeItem{id: e.to, dist: nd})
			}
		}
	}
	return f
}

// Dist returns the road distance between two points (both snapped),
// with ok=false when disconnected. Unbounded search; prefer Within for
// repeated probes around one source.
func (n *Network) Dist(a, b geo.Point) (float64, bool) {
	// Bound by an optimistic expanding budget to avoid scanning the
	// whole graph for nearby pairs.
	budget := a.Dist(b)*2 + 1
	for i := 0; i < 8; i++ {
		f := n.Within(a, budget)
		if d, ok := f.DistTo(b); ok {
			return d, true
		}
		if f.Reached() == n.Len() {
			return 0, false // whole component scanned; b unreachable
		}
		budget *= 2
	}
	return 0, false
}

type nodeItem struct {
	id   NodeID
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
