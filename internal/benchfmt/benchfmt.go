// Package benchfmt defines the repository's machine-readable benchmark
// document — the schema of the BENCH_*.json files checked in per PR —
// and the parser that builds one from `go test -bench` text output.
//
// Two producers write it: cmd/benchjson converts benchmark text piped
// on stdin, and the serving load generator (internal/serve) emits its
// measured QPS/latency/shed numbers in the same shape so serving
// throughput joins the benchmark trajectory and compares across
// commits with the same tooling.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result: the three standard testing
// measurements plus any custom ReportMetric units keyed by unit name.
type Benchmark struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document: environment header fields, an
// optional label naming the snapshot (e.g. "PR5", stamped into the
// file name by cmd/benchjson), and the benchmarks sorted by name.
type Report struct {
	Label      string      `json:"label,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Parse reads `go test -bench` text output and returns the report. It
// understands the goos/goarch/pkg/cpu header lines and one result line
// per benchmark; benchmarks are sorted by name for stable diffs.
func Parse(r io.Reader) (*Report, error) {
	sc := bufio.NewScanner(r)
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := ParseLine(line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark lines in input")
	}
	sort.SliceStable(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

// ParseLine parses one result line:
//
//	BenchmarkName-8  10  118866999 ns/op  19828373 B/op  21541 allocs/op  0.029 DemCOM-rev
//
// The -GOMAXPROCS suffix is stripped so names compare across machines.
func ParseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, fmt.Errorf("benchfmt: short benchmark line: %q", line)
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchfmt: bad run count in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchfmt: bad value %q in %q: %w", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}
