package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: crossmatch
cpu: AMD EPYC 7B13
BenchmarkTableSequential-8   	      10	  85800000 ns/op	19828373 B/op	   21541 allocs/op	     0.029 DemCOM-rev
BenchmarkTraceOverhead-8     	     100	   1200000 ns/op
PASS
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "crossmatch" {
		t.Fatalf("header mismatch: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(rep.Benchmarks))
	}
	// Sorted by name: TableSequential before TraceOverhead.
	b := rep.Benchmarks[0]
	if b.Name != "TableSequential" || b.Runs != 10 || b.NsPerOp != 85800000 ||
		b.BytesPerOp != 19828373 || b.AllocsPerOp != 21541 {
		t.Fatalf("benchmark mismatch: %+v", b)
	}
	if b.Metrics["DemCOM-rev"] != 0.029 {
		t.Fatalf("custom metric missing: %+v", b.Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("want error for input without benchmark lines")
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX notanint 5 ns/op",
		"BenchmarkX 3 bad ns/op",
	} {
		if _, err := ParseLine(line); err == nil {
			t.Fatalf("want error for %q", line)
		}
	}
}

func TestWriteJSONRoundTripsLabel(t *testing.T) {
	rep := &Report{Label: "PR5", Benchmarks: []Benchmark{{Name: "ServeLoad", Runs: 3, NsPerOp: 1e6}}}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Label != "PR5" || len(back.Benchmarks) != 1 || back.Benchmarks[0].Name != "ServeLoad" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}
