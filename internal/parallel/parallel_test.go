package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := Map(4, 100, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errA
		case 3:
			return 0, errB
		}
		return i, nil
	})
	if !errors.Is(err, errB) {
		t.Errorf("err = %v, want lowest-index error %v", err, errB)
	}
}

func TestMapEmptyAndNil(t *testing.T) {
	if out, err := Map(4, 0, func(int) (int, error) { return 1, nil }); err != nil || out != nil {
		t.Errorf("n=0: out=%v err=%v", out, err)
	}
	if _, err := Map[int](4, 3, nil); err == nil {
		t.Error("nil fn accepted")
	}
}

func TestMapRunsEveryJobDespiteError(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(3, 40, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, fmt.Errorf("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran.Load() != 40 {
		t.Errorf("ran %d of 40 jobs", ran.Load())
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(8, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Errorf("sum = %d, want 4950", sum.Load())
	}
}

func TestWorkersClamp(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(16, 3); got != 3 {
		t.Errorf("Workers(16, 3) = %d, want 3", got)
	}
	if got := Workers(-5, 2); got < 1 || got > 2 {
		t.Errorf("Workers(-5, 2) = %d outside [1, 2]", got)
	}
}
