// Package parallel provides the bounded, deterministic fan-out
// primitive shared by the experiment runner, the simulation ensemble and
// the Monte-Carlo estimator: N independent jobs executed on at most W
// goroutines, with results collected in submission order.
//
// Determinism contract: a job must derive all of its randomness from its
// index (or from state pre-split by index before the fan-out). Under
// that contract the output is bit-for-bit identical for any worker
// count, including 1 — execution order never feeds back into results
// because results are written to the job's own slot and aggregated in
// index order, never completion order.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers clamps a requested parallelism to [1, n]: non-positive values
// mean GOMAXPROCS, and there is no point running more workers than jobs.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(i) for every i in [0, n) on at most `workers` goroutines
// (GOMAXPROCS when workers <= 0) and returns the results in index
// order. The first error by index aborts the return value (remaining
// jobs still run to completion, so no goroutine outlives the call).
// With one worker or one job, fn runs inline on the caller's goroutine.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if fn == nil {
		return nil, fmt.Errorf("parallel: nil job function")
	}
	out := make([]T, n)
	errs := make([]error, n)
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
		return out, firstError(errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out, firstError(errs)
}

// ForEach is Map without results: fn(i) for every i in [0, n).
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// firstError returns the lowest-index error, keeping the reported
// failure independent of scheduling.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
