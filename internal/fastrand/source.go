// Package fastrand provides a reusable drop-in replacement for the
// rand.Source64 returned by math/rand.NewSource, producing the identical
// output stream with a much cheaper Seed.
//
// Why it exists: the Monte-Carlo pricing path re-seeds its shard
// sub-streams on every quote (the shard seeds are part of the
// deterministic RNG consumption contract, so the sequence cannot be
// cached across quotes). math/rand's Seed burns ~1800 sequential Lehmer
// LCG steps computed with Schrage's algorithm — two integer divisions
// per step — which profiles as the single largest cost of the DemCOM
// hot path. The same LCG step modulo the Mersenne prime 2^31-1 reduces
// to one 64-bit multiply plus a fold, several times faster, and the
// additive lagged-Fibonacci state it feeds is otherwise identical.
//
// The seeding recipe XORs each state word with a constant table
// (rngCooked in math/rand/rng.go) that is not exported. Rather than
// copying it, init() reconstructs it from public behaviour: the first
// 607 Uint64 outputs of a freshly seeded stdlib source determine its
// full internal state (each output is a wrapping sum of two state words
// and the overwrite pattern makes the system triangular), and XORing
// out the recomputable seed-derived part leaves the table. A self-check
// then compares a Source against the stdlib across several seeds; if
// anything about the stdlib generator ever changes, the package falls
// back to delegating to math/rand.NewSource transparently (correct, just
// slower), so identical streams are guaranteed either way.
package fastrand

import "math/rand"

const (
	rngLen   = 607
	rngTap   = 273
	rngMask  = 1<<63 - 1
	int32max = 1<<31 - 1
)

// cooked is the reconstructed rngCooked table; valid only if compatible.
var cooked [rngLen]int64

// compatible reports whether the reconstruction passed the self-check
// against math/rand. When false, Source delegates to math/rand.NewSource.
var compatible bool

// seedrand advances the Lehmer LCG x' = 48271*x mod (2^31-1) (the
// Park-Miller multiplier math/rand's seedrand uses), but via
// Mersenne-prime folding instead of Schrage's division: for
// p = hi*2^31 + lo, p mod (2^31-1) = hi + lo (folded once more if
// needed). One multiply, no divisions.
func seedrand(x int32) int32 {
	p := uint64(uint32(x)) * 48271
	f := uint32(p>>31) + uint32(p&int32max)
	if f >= int32max {
		f -= int32max
	}
	return int32(f)
}

// adjust maps an int64 seed onto the LCG's state space the way
// math/rand's rngSource.Seed does.
func adjust(seed int64) int32 {
	seed = seed % int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	return int32(seed)
}

// seedPart returns the seed-derived word mixed into vec[i] during
// seeding (the three-step construction of rngSource.Seed, without the
// rngCooked XOR), advancing x across the call.
func seedPart(x int32) (int64, int32) {
	x = seedrand(x)
	u := int64(x) << 40
	x = seedrand(x)
	u ^= int64(x) << 20
	x = seedrand(x)
	u ^= int64(x)
	return u, x
}

func init() {
	a2 := modmul(48271, 48271)
	seedJump = modmul(a2, a2)
	// Drain one full state length from a stdlib source with a known seed.
	ref, ok := rand.NewSource(1).(rand.Source64)
	if !ok {
		return
	}
	var out [rngLen]uint64
	for i := range out {
		out[i] = ref.Uint64()
	}
	// Reconstruct the source's post-seed state vec[0..606]. With tap
	// starting at 0 and feed at 334, output k reads positions
	// feed_k = 333-k (mod 607) and tap_k = 606-k (mod 607) and overwrites
	// feed_k with their wrapping sum. Working through which positions are
	// still original at each step makes the system triangular:
	var vec [rngLen]int64
	for k := 273; k <= 333; k++ {
		// tap position 606-k was overwritten with out[k-273].
		vec[333-k] = int64(out[k] - out[k-273])
	}
	for k := 334; k <= 606; k++ {
		// feed has wrapped to original positions 940-k; tap position
		// 606-k was overwritten with out[k-273].
		vec[940-k] = int64(out[k] - out[k-273])
	}
	for k := 0; k <= 272; k++ {
		// Both positions were original; 606-k is now known.
		vec[333-k] = int64(out[k]) - vec[606-k]
	}
	// XOR out the seed-derived parts to recover the constant table.
	x := adjust(1)
	for i := 0; i < 20; i++ {
		x = seedrand(x)
	}
	for i := 0; i < rngLen; i++ {
		var u int64
		u, x = seedPart(x)
		cooked[i] = vec[i] ^ u
	}
	// Self-check Source against the stdlib across a spread of seeds.
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40, -(1 << 35), int32max, 1e18} {
		std, ok := rand.NewSource(seed).(rand.Source64)
		if !ok {
			return
		}
		var s Source
		s.seedFast(seed)
		for i := 0; i < 64; i++ {
			if s.Uint64() != std.Uint64() {
				return
			}
		}
	}
	compatible = true
}

// Source is a rand.Source64 producing the identical stream to
// math/rand.NewSource(seed) for every seed, with a Seed several times
// cheaper. The zero value is invalid; call Seed before use. A Source is
// reusable: re-seeding restarts the stream with no allocation, which is
// the point — hot paths keep one per sub-stream and re-seed per quote.
// Not safe for concurrent use, like the source it replaces.
type Source struct {
	tap, feed int
	vec       [rngLen]int64
	seedBuf   [3 * rngLen]uint32 // lane scratch for seedFast, reused across Seeds
	fallback  rand.Source64      // set when the reconstruction self-check failed
}

// Seed resets the source to the stream of math/rand.NewSource(seed).
func (s *Source) Seed(seed int64) {
	if !compatible {
		// Mirror the slow path's behaviour exactly by delegating.
		if s.fallback == nil {
			s.fallback = rand.NewSource(seed).(rand.Source64)
		} else {
			s.fallback.(rand.Source).Seed(seed)
		}
		return
	}
	s.seedFast(seed)
}

// seedLanes is the number of interleaved LCG lanes seedFast advances.
// The Lehmer recurrence is a sequential dependency chain, so computing
// it one step at a time is latency-bound; jumping each lane by
// A^seedLanes mod p per iteration runs the lanes' multiplies in
// parallel in the pipeline.
const seedLanes = 4

// seedJump = A^seedLanes mod (2^31-1), computed in init.
var seedJump uint64

// modmul returns a*b mod 2^31-1 by Mersenne folding (two folds cover
// the full 62-bit product range).
func modmul(a, b uint64) uint64 {
	p := a * b
	f := (p >> 31) + (p & int32max)
	f = (f >> 31) + (f & int32max)
	if f >= int32max {
		f -= int32max
	}
	return f
}

func (s *Source) seedFast(seed int64) {
	s.tap = 0
	s.feed = rngLen - rngTap
	x := adjust(seed)
	for i := 0; i < 20; i++ {
		x = seedrand(x)
	}
	// The 3*rngLen post-warmup LCG values, computed in seedLanes
	// independent strides: y[t+seedLanes] = y[t] * A^seedLanes mod p.
	// The buffer lives in the Source so repeated Seeds touch warm memory
	// and skip the zeroing a stack array would pay.
	y := &s.seedBuf
	lane := uint64(uint32(x))
	for j := 0; j < seedLanes; j++ {
		lane = modmul(lane, 48271)
		y[j] = uint32(lane)
	}
	j1 := seedJump
	for t := seedLanes; t+seedLanes <= len(y); t += seedLanes {
		a := modmul(uint64(y[t-4]), j1)
		b := modmul(uint64(y[t-3]), j1)
		c := modmul(uint64(y[t-2]), j1)
		d := modmul(uint64(y[t-1]), j1)
		y[t], y[t+1], y[t+2], y[t+3] = uint32(a), uint32(b), uint32(c), uint32(d)
	}
	for t := (len(y) / seedLanes) * seedLanes; t < len(y); t++ {
		y[t] = uint32(modmul(uint64(y[t-seedLanes]), j1))
	}
	for i := 0; i < rngLen; i++ {
		u := int64(y[3*i])<<40 ^ int64(y[3*i+1])<<20 ^ int64(y[3*i+2])
		s.vec[i] = u ^ cooked[i]
	}
}

// Uint64 replicates rngSource.Uint64: an additive lagged-Fibonacci step.
func (s *Source) Uint64() uint64 {
	if s.fallback != nil {
		return s.fallback.Uint64()
	}
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 replicates rngSource.Int63.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() & rngMask)
}

// Compatible reports whether the fast seeding path is active (true) or
// the package is delegating to math/rand (false). Exposed for tests and
// diagnostics; either way the streams are identical.
func Compatible() bool { return compatible }
