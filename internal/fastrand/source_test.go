package fastrand

import (
	"math/rand"
	"testing"
)

func TestCompatible(t *testing.T) {
	if !compatible {
		t.Fatal("fastrand: reconstruction self-check failed against this Go runtime's math/rand")
	}
}

// TestStreamIdentity drives a Source and a stdlib source in lockstep
// across many seeds, including re-seeding the same Source, and through
// the rand.Rand wrapper methods the pricing code actually consumes.
func TestStreamIdentity(t *testing.T) {
	var s Source
	for _, seed := range []int64{0, 1, 2, 42, -1, -(1 << 62), 1<<63 - 1, 89482311, int32max, int32max + 1, 7919} {
		s.Seed(seed)
		std := rand.NewSource(seed).(rand.Source64)
		for i := 0; i < 1000; i++ {
			if got, want := s.Uint64(), std.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: Uint64 = %d, want %d", seed, i, got, want)
			}
		}
	}
	// Through *rand.Rand: Float64/Int63/Intn must match too.
	for _, seed := range []int64{3, 1234567891011} {
		s.Seed(seed)
		mine := rand.New(&s)
		std := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			if got, want := mine.Float64(), std.Float64(); got != want {
				t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, got, want)
			}
			if got, want := mine.Int63(), std.Int63(); got != want {
				t.Fatalf("seed %d draw %d: Int63 = %d, want %d", seed, i, got, want)
			}
			if got, want := mine.Intn(97), std.Intn(97); got != want {
				t.Fatalf("seed %d draw %d: Intn = %d, want %d", seed, i, got, want)
			}
		}
	}
}

// FuzzStreamIdentity hammers arbitrary seeds.
func FuzzStreamIdentity(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(-12345))
	f.Add(int64(1 << 50))
	f.Fuzz(func(t *testing.T, seed int64) {
		var s Source
		s.Seed(seed)
		std := rand.NewSource(seed).(rand.Source64)
		for i := 0; i < 650; i++ { // past one full state length
			if got, want := s.Uint64(), std.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: Uint64 = %d, want %d", seed, i, got, want)
			}
		}
	})
}

func BenchmarkSeedFast(b *testing.B) {
	var s Source
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}

func BenchmarkSeedStdlib(b *testing.B) {
	src := rand.NewSource(1)
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i))
	}
}
