package index

import (
	"math/rand"
	"testing"

	"crossmatch/internal/geo"
)

// TestSlotGridMatchesGridOrder drives a Grid and a SlotGrid through the
// same randomized insert/remove sequence and checks every covering
// query returns the same entries in the same order — the property the
// deterministic runtime's bit-reproducibility relies on when the pool
// swaps its entry-based grid for the structure-of-arrays one.
func TestSlotGridMatchesGridOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := NewGrid(1.0)
	sg := NewSlotGrid(1.0)
	slotOf := map[int64]int32{}
	live := []int64{}
	nextID := int64(0)

	randEntry := func(id int64) Entry {
		rad := rng.Float64() * 2
		switch rng.Intn(8) {
		case 0:
			rad = 0
		case 1:
			rad = -1 // never covers
		}
		return Entry{ID: id, Circle: geo.Circle{
			Center: geo.Point{X: rng.Float64()*10 - 5, Y: rng.Float64()*10 - 5},
			Radius: rad,
		}}
	}

	check := func(step int) {
		p := geo.Point{X: rng.Float64()*10 - 5, Y: rng.Float64()*10 - 5}
		want := g.Covering(nil, p)
		var got []int64
		for _, slot := range sg.AppendSlots(nil, p) {
			found := false
			for id, s := range slotOf {
				if s == slot {
					got = append(got, id)
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("step %d: query returned unknown slot %d", step, slot)
			}
		}
		if len(want) != len(got) {
			t.Fatalf("step %d: covering sizes differ: grid %d vs slot grid %d", step, len(want), len(got))
		}
		for i := range want {
			if want[i].ID != got[i] {
				t.Fatalf("step %d: covering order differs at %d: grid %d vs slot grid %d",
					step, i, want[i].ID, got[i])
			}
		}
	}

	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(live) == 0: // insert fresh
			e := randEntry(nextID)
			g.Insert(e)
			slot := int32(nextID) // any unique tag works as a slot
			sg.Insert(e, slot)
			slotOf[e.ID] = slot
			live = append(live, e.ID)
			nextID++
		case op < 8: // remove random live entry
			i := rng.Intn(len(live))
			id := live[i]
			okG := g.Remove(id)
			gotSlot, okS := sg.Remove(id)
			if !okG || !okS {
				t.Fatalf("step %d: remove(%d) = %v/%v, want true/true", step, id, okG, okS)
			}
			if gotSlot != slotOf[id] {
				t.Fatalf("step %d: remove(%d) returned slot %d, want %d", step, id, gotSlot, slotOf[id])
			}
			delete(slotOf, id)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // re-insert a live ID (replacement path)
			id := live[rng.Intn(len(live))]
			e := randEntry(id)
			g.Insert(e)
			// Mirror online.Pool's discipline: recover the old slot first.
			if _, ok := sg.Remove(id); !ok {
				t.Fatalf("step %d: live id %d missing from slot grid", step, id)
			}
			sg.Insert(e, slotOf[id])
		}
		if g.Len() != sg.Len() || g.Len() != len(live) {
			t.Fatalf("step %d: lengths diverge: grid %d, slot grid %d, want %d",
				step, g.Len(), sg.Len(), len(live))
		}
		check(step)
	}
}

// TestSlotGridSlotLookup checks Slot round-trips IDs to their tags.
func TestSlotGridSlotLookup(t *testing.T) {
	sg := NewSlotGrid(1.0)
	sg.Insert(Entry{ID: 7, Circle: geo.Circle{Radius: 1}}, 42)
	if s, ok := sg.Slot(7); !ok || s != 42 {
		t.Fatalf("Slot(7) = %d, %v; want 42, true", s, ok)
	}
	if _, ok := sg.Slot(8); ok {
		t.Fatal("Slot(8) reported a missing entry present")
	}
	if s, ok := sg.Remove(7); !ok || s != 42 {
		t.Fatalf("Remove(7) = %d, %v; want 42, true", s, ok)
	}
	if _, ok := sg.Slot(7); ok {
		t.Fatal("Slot(7) present after removal")
	}
	if sg.Len() != 0 {
		t.Fatalf("Len = %d after removal, want 0", sg.Len())
	}
}
