// Package index provides spatial indexes for the hot query of cross
// online matching: "which waiting workers' service ranges cover this
// request location?" (the range constraint of Definition 2.6).
//
// Three implementations share the Index interface:
//
//   - Grid: a uniform hash grid over worker centers. O(1) insert/remove
//     and near-O(1) covering queries when radii are comparable to the
//     cell size. The default for all simulations.
//   - KDTree: a k-d tree over worker centers with per-subtree maximum
//     radius pruning and lazy deletion. Wins when radii are highly skewed
//     or the workload is insert-heavy in tight clusters.
//   - Linear: a brute-force scan used as the correctness oracle in tests
//     and for tiny instances.
//
// Indexes are not safe for unsynchronized mixed use, but Covering and
// Len are strictly read-only on every implementation (Grid keeps its
// search radius exact instead of recomputing it lazily; KDTree only
// mutates on Insert/Remove), so any number of concurrent readers is safe
// while no writer runs. online.Pool builds on that with an RWMutex to
// serve the concurrent multi-platform runtime; single-threaded callers
// need no locking at all.
package index

import (
	"sort"

	"crossmatch/internal/geo"
)

// Entry is an indexed service range: a worker ID and its coverage disk.
type Entry struct {
	ID     int64
	Circle geo.Circle
}

// Covers reports whether the entry's disk contains p.
func (e Entry) Covers(p geo.Point) bool { return e.Circle.Contains(p) }

// Index answers coverage queries over a dynamic set of entries.
type Index interface {
	// Insert adds an entry. Inserting an ID that is already present
	// replaces the previous entry.
	Insert(Entry)
	// Remove deletes the entry with the given ID, reporting whether it
	// was present.
	Remove(id int64) bool
	// Covering appends to dst all entries whose disk contains p and
	// returns the extended slice. Order is unspecified.
	Covering(dst []Entry, p geo.Point) []Entry
	// Len returns the number of live entries.
	Len() int
}

// Linear is the brute-force reference implementation.
type Linear struct {
	entries map[int64]Entry
}

// NewLinear returns an empty linear-scan index.
func NewLinear() *Linear {
	return &Linear{entries: make(map[int64]Entry)}
}

// Insert implements Index.
func (l *Linear) Insert(e Entry) { l.entries[e.ID] = e }

// Remove implements Index.
func (l *Linear) Remove(id int64) bool {
	if _, ok := l.entries[id]; !ok {
		return false
	}
	delete(l.entries, id)
	return true
}

// Covering implements Index.
func (l *Linear) Covering(dst []Entry, p geo.Point) []Entry {
	for _, e := range l.entries {
		if e.Covers(p) {
			dst = append(dst, e)
		}
	}
	return dst
}

// Len implements Index.
func (l *Linear) Len() int { return len(l.entries) }

// SortEntries orders entries by distance from p (ascending), breaking
// ties by ID for determinism. Matchers use it to implement the paper's
// "assign the nearest worker" rule (Algorithm 1, line 5).
func SortEntries(entries []Entry, p geo.Point) {
	sort.Slice(entries, func(i, j int) bool {
		di, dj := entries[i].Circle.Center.Dist2(p), entries[j].Circle.Center.Dist2(p)
		if di != dj {
			return di < dj
		}
		return entries[i].ID < entries[j].ID
	})
}

// Nearest returns the entry covering p whose center is closest to p,
// with ok=false when none covers it. Ties break by smallest ID.
func Nearest(ix Index, p geo.Point) (Entry, bool) {
	candidates := ix.Covering(nil, p)
	if len(candidates) == 0 {
		return Entry{}, false
	}
	best := candidates[0]
	bestD := best.Circle.Center.Dist2(p)
	for _, e := range candidates[1:] {
		d := e.Circle.Center.Dist2(p)
		if d < bestD || (d == bestD && e.ID < best.ID) {
			best, bestD = e, d
		}
	}
	return best, true
}
