package index

import (
	"math"
	"sort"

	"crossmatch/internal/geo"
)

// SlotGrid is Grid's structure-of-arrays sibling, built for the
// eligibility scan that dominates matcher time: each cell keeps its
// entries as parallel slices of coordinates and squared radii, so a
// covering query streams through flat float64 arrays instead of chasing
// Entry structs, and the containment test is a single fused
// compare — no per-entry branch on the radius sign (negative radii are
// stored as an impossible squared radius).
//
// Unlike Grid, SlotGrid carries a caller-assigned slot per entry and
// reports it from queries and removals. online.Pool uses the slot to
// index its own parallel worker arrays, which removes the per-candidate
// map lookup from the hot path.
//
// Bucket discipline (append on insert, swap-with-last on remove), the
// exact sorted radius multiset, and the ring iteration order are all
// identical to Grid, so for the same insert/remove sequence a covering
// query visits entries in exactly the order Grid.Covering returns
// them — the property the deterministic runtime's bit-reproducibility
// rests on.
//
// Like the other indexes, VisitCovering, Slot and Len are strictly
// read-only, so any number of concurrent readers is safe while no
// writer runs.
type SlotGrid struct {
	cell  float64
	cells map[cellKey]*slotBucket
	where map[int64]cellKey
	// Sorted multiset of live radii, exactly as in Grid.
	radVals []float64
	radCnt  []int
	n       int
}

// slotBucket holds one cell's entries in structure-of-arrays layout.
// Index i across all slices describes one entry.
type slotBucket struct {
	ids   []int64
	slots []int32
	xs    []float64
	ys    []float64
	// r2 is the squared radius when the radius is non-negative, -1
	// otherwise: dist2 <= r2 is then bit-equivalent to
	// geo.Circle.Contains (a non-negative dist2 never passes -1, and
	// rad*rad here is the same product Contains computes).
	r2 []float64
	// rads keeps the original radius for the multiset bookkeeping
	// (sqrt(r2) would not round-trip bit-exactly).
	rads []float64
}

// NewSlotGrid returns an empty grid with the given cell edge length in
// kilometres. Non-positive sizes fall back to DefaultCell.
func NewSlotGrid(cellSize float64) *SlotGrid {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		cellSize = DefaultCell
	}
	return &SlotGrid{
		cell:  cellSize,
		cells: make(map[cellKey]*slotBucket),
		where: make(map[int64]cellKey),
	}
}

func (g *SlotGrid) key(p geo.Point) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / g.cell)),
		cy: int32(math.Floor(p.Y / g.cell)),
	}
}

// Insert adds an entry carrying the caller's slot. Inserting an ID that
// is already present replaces the previous entry (the old slot is
// dropped; callers that recycle slots should Remove first to recover it).
func (g *SlotGrid) Insert(e Entry, slot int32) {
	if _, dup := g.where[e.ID]; dup {
		g.Remove(e.ID)
	}
	k := g.key(e.Circle.Center)
	b := g.cells[k]
	if b == nil {
		b = &slotBucket{}
		g.cells[k] = b
	}
	rad := e.Circle.Radius
	r2 := -1.0
	if rad >= 0 {
		r2 = rad * rad
	}
	b.ids = append(b.ids, e.ID)
	b.slots = append(b.slots, slot)
	b.xs = append(b.xs, e.Circle.Center.X)
	b.ys = append(b.ys, e.Circle.Center.Y)
	b.r2 = append(b.r2, r2)
	b.rads = append(b.rads, rad)
	g.where[e.ID] = k
	g.addRad(rad)
	g.n++
}

// addRad records a live entry's radius in the sorted multiset
// (identical to Grid.addRad).
func (g *SlotGrid) addRad(r float64) {
	i := sort.SearchFloat64s(g.radVals, r)
	if i < len(g.radVals) && g.radVals[i] == r {
		g.radCnt[i]++
		return
	}
	g.radVals = append(g.radVals, 0)
	copy(g.radVals[i+1:], g.radVals[i:])
	g.radVals[i] = r
	g.radCnt = append(g.radCnt, 0)
	copy(g.radCnt[i+1:], g.radCnt[i:])
	g.radCnt[i] = 1
}

// removeRad drops one occurrence of a live entry's radius.
func (g *SlotGrid) removeRad(r float64) {
	i := sort.SearchFloat64s(g.radVals, r)
	if i >= len(g.radVals) || g.radVals[i] != r {
		return // unreachable: every live entry's radius is tracked
	}
	g.radCnt[i]--
	if g.radCnt[i] == 0 {
		g.radVals = append(g.radVals[:i], g.radVals[i+1:]...)
		g.radCnt = append(g.radCnt[:i], g.radCnt[i+1:]...)
	}
}

// Remove deletes the entry with the given ID, returning the slot it
// carried and whether it was present.
func (g *SlotGrid) Remove(id int64) (slot int32, ok bool) {
	k, ok := g.where[id]
	if !ok {
		return 0, false
	}
	b := g.cells[k]
	for i, eid := range b.ids {
		if eid == id {
			slot = b.slots[i]
			g.removeRad(b.rads[i])
			last := len(b.ids) - 1
			b.ids[i] = b.ids[last]
			b.slots[i] = b.slots[last]
			b.xs[i] = b.xs[last]
			b.ys[i] = b.ys[last]
			b.r2[i] = b.r2[last]
			b.rads[i] = b.rads[last]
			b.ids = b.ids[:last]
			b.slots = b.slots[:last]
			b.xs = b.xs[:last]
			b.ys = b.ys[:last]
			b.r2 = b.r2[:last]
			b.rads = b.rads[:last]
			break
		}
	}
	// Unlike Grid, an emptied bucket stays in the map: churny cells
	// (workers leaving and re-arriving at the same spot) reuse its six
	// arrays' capacity instead of reallocating them, and an empty bucket
	// costs a covering query nothing it wasn't already paying for the
	// cell lookup. Memory is bounded by the distinct cells ever touched.
	delete(g.where, id)
	g.n--
	return slot, true
}

// Slot returns the slot carried by the entry with the given ID.
func (g *SlotGrid) Slot(id int64) (int32, bool) {
	k, ok := g.where[id]
	if !ok {
		return 0, false
	}
	b := g.cells[k]
	for i, eid := range b.ids {
		if eid == id {
			return b.slots[i], true
		}
	}
	return 0, false // unreachable: where and buckets stay in sync
}

// searchRadius returns the exact maximum live radius, as in Grid.
func (g *SlotGrid) searchRadius() float64 {
	if len(g.radVals) == 0 {
		return 0
	}
	return g.radVals[len(g.radVals)-1]
}

// AppendSlots appends to dst the slot of every entry whose disk
// contains p and returns the extended slice, in the same deterministic
// order Grid.Covering appends entries (ring scan cx-major, bucket order
// within a cell). Returning slots through a caller-reused buffer keeps
// the hot path free of closure captures, which would otherwise escape.
func (g *SlotGrid) AppendSlots(dst []int32, p geo.Point) []int32 {
	if g.n == 0 {
		return dst
	}
	r := g.searchRadius()
	ring := int32(math.Ceil(r / g.cell))
	c := g.key(p)
	for cx := c.cx - ring; cx <= c.cx+ring; cx++ {
		for cy := c.cy - ring; cy <= c.cy+ring; cy++ {
			b := g.cells[cellKey{cx, cy}]
			if b == nil {
				continue
			}
			xs, ys, r2 := b.xs, b.ys, b.r2
			for i := range xs {
				dx, dy := xs[i]-p.X, ys[i]-p.Y
				if dx*dx+dy*dy <= r2[i] {
					dst = append(dst, b.slots[i])
				}
			}
		}
	}
	return dst
}

// Len returns the number of live entries.
func (g *SlotGrid) Len() int { return g.n }

// CellSize returns the grid's cell edge length.
func (g *SlotGrid) CellSize() float64 { return g.cell }
