package index

import (
	"math/rand"
	"sort"
	"testing"

	"crossmatch/internal/geo"
)

func entry(id int64, x, y, r float64) Entry {
	return Entry{ID: id, Circle: geo.Circle{Center: geo.Point{X: x, Y: y}, Radius: r}}
}

// ids extracts the sorted IDs from entries for order-insensitive comparison.
func ids(es []Entry) []int64 {
	out := make([]int64, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(a, b []Entry) bool {
	ia, ib := ids(a), ids(b)
	if len(ia) != len(ib) {
		return false
	}
	for i := range ia {
		if ia[i] != ib[i] {
			return false
		}
	}
	return true
}

// makers builds one fresh index of each implementation.
func makers() map[string]func() Index {
	return map[string]func() Index{
		"linear": func() Index { return NewLinear() },
		"grid":   func() Index { return NewGrid(1.0) },
		"kdtree": func() Index { return NewKDTree() },
	}
}

func TestIndexBasic(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			ix := mk()
			if ix.Len() != 0 {
				t.Fatal("new index not empty")
			}
			ix.Insert(entry(1, 0, 0, 1))
			ix.Insert(entry(2, 5, 5, 2))
			ix.Insert(entry(3, 0.5, 0, 1))
			if ix.Len() != 3 {
				t.Fatalf("Len = %d, want 3", ix.Len())
			}
			got := ix.Covering(nil, geo.Point{X: 0, Y: 0})
			if want := []int64{1, 3}; len(ids(got)) != 2 || ids(got)[0] != want[0] || ids(got)[1] != want[1] {
				t.Errorf("Covering(origin) = %v, want %v", ids(got), want)
			}
			if got := ix.Covering(nil, geo.Point{X: 100, Y: 100}); len(got) != 0 {
				t.Errorf("Covering(far) = %v, want empty", ids(got))
			}
			if !ix.Remove(1) {
				t.Error("Remove(1) = false")
			}
			if ix.Remove(1) {
				t.Error("double Remove(1) = true")
			}
			if ix.Remove(99) {
				t.Error("Remove(missing) = true")
			}
			got = ix.Covering(nil, geo.Point{X: 0, Y: 0})
			if len(got) != 1 || got[0].ID != 3 {
				t.Errorf("after removal Covering = %v, want [3]", ids(got))
			}
			if ix.Len() != 2 {
				t.Errorf("Len after removal = %d, want 2", ix.Len())
			}
		})
	}
}

func TestIndexInsertReplacesDuplicateID(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			ix := mk()
			ix.Insert(entry(7, 0, 0, 1))
			ix.Insert(entry(7, 10, 10, 1)) // replaces
			if ix.Len() != 1 {
				t.Fatalf("Len = %d, want 1", ix.Len())
			}
			if got := ix.Covering(nil, geo.Point{}); len(got) != 0 {
				t.Errorf("old position still covered: %v", ids(got))
			}
			if got := ix.Covering(nil, geo.Point{X: 10, Y: 10}); len(got) != 1 {
				t.Errorf("new position not covered")
			}
		})
	}
}

func TestIndexBoundaryInclusive(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			ix := mk()
			ix.Insert(entry(1, 0, 0, 2))
			if got := ix.Covering(nil, geo.Point{X: 2, Y: 0}); len(got) != 1 {
				t.Error("boundary point must be covered")
			}
			if got := ix.Covering(nil, geo.Point{X: 2.0001, Y: 0}); len(got) != 0 {
				t.Error("just-outside point must not be covered")
			}
		})
	}
}

// TestIndexAgainstOracle drives grid and kd-tree through a random
// insert/remove/query workload and compares every query against the
// linear scan.
func TestIndexAgainstOracle(t *testing.T) {
	const ops = 4000
	rng := rand.New(rand.NewSource(42))
	oracle := NewLinear()
	grid := NewGrid(0.7)
	tree := NewKDTree()
	under := map[string]Index{"grid": grid, "kdtree": tree}

	var liveIDs []int64
	nextID := int64(1)
	for i := 0; i < ops; i++ {
		switch op := rng.Float64(); {
		case op < 0.5 || len(liveIDs) == 0: // insert
			e := entry(nextID, rng.Float64()*20-10, rng.Float64()*20-10, 0.1+rng.Float64()*3)
			nextID++
			oracle.Insert(e)
			for _, ix := range under {
				ix.Insert(e)
			}
			liveIDs = append(liveIDs, e.ID)
		case op < 0.75: // remove
			k := rng.Intn(len(liveIDs))
			id := liveIDs[k]
			liveIDs[k] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
			want := oracle.Remove(id)
			for name, ix := range under {
				if got := ix.Remove(id); got != want {
					t.Fatalf("op %d: %s.Remove(%d) = %v, oracle %v", i, name, id, got, want)
				}
			}
		default: // query
			p := geo.Point{X: rng.Float64()*24 - 12, Y: rng.Float64()*24 - 12}
			want := oracle.Covering(nil, p)
			for name, ix := range under {
				got := ix.Covering(nil, p)
				if !sameIDs(got, want) {
					t.Fatalf("op %d: %s.Covering(%v) = %v, oracle %v", i, name, p, ids(got), ids(want))
				}
			}
		}
		for name, ix := range under {
			if ix.Len() != oracle.Len() {
				t.Fatalf("op %d: %s.Len = %d, oracle %d", i, name, ix.Len(), oracle.Len())
			}
		}
	}
}

// TestKDTreeBulkBuildMatchesIncremental checks that a bulk-built tree
// answers exactly like one built by repeated Insert.
func TestKDTreeBulkBuildMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var es []Entry
	for i := 0; i < 500; i++ {
		es = append(es, entry(int64(i+1), rng.Float64()*10, rng.Float64()*10, 0.2+rng.Float64()*2))
	}
	bulk := BuildKDTree(es)
	inc := NewKDTree()
	for _, e := range es {
		inc.Insert(e)
	}
	for i := 0; i < 200; i++ {
		p := geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		if !sameIDs(bulk.Covering(nil, p), inc.Covering(nil, p)) {
			t.Fatalf("bulk and incremental disagree at %v", p)
		}
	}
}

// TestKDTreeRebuildAfterManyRemovals forces the lazy-deletion rebuild
// path and verifies queries stay correct through it.
func TestKDTreeRebuildAfterManyRemovals(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	oracle := NewLinear()
	tree := NewKDTree()
	for i := 0; i < 300; i++ {
		e := entry(int64(i+1), rng.Float64()*10, rng.Float64()*10, 0.5+rng.Float64())
		oracle.Insert(e)
		tree.Insert(e)
	}
	// Remove most entries to trigger rebuilds.
	for id := int64(1); id <= 280; id++ {
		oracle.Remove(id)
		tree.Remove(id)
	}
	if tree.Len() != oracle.Len() {
		t.Fatalf("Len = %d, want %d", tree.Len(), oracle.Len())
	}
	for i := 0; i < 100; i++ {
		p := geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		if !sameIDs(tree.Covering(nil, p), oracle.Covering(nil, p)) {
			t.Fatalf("after rebuild, disagreement at %v", p)
		}
	}
}

func TestGridMaxRadiusShrinksAfterRemoval(t *testing.T) {
	g := NewGrid(1)
	g.Insert(entry(1, 0, 0, 10)) // huge radius forces a wide search ring
	g.Insert(entry(2, 3, 0, 1))
	if got := g.Covering(nil, geo.Point{X: 9, Y: 0}); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("big circle should cover far point, got %v", ids(got))
	}
	g.Remove(1)
	// After removing the big circle the search radius must shrink but
	// queries must stay correct.
	if got := g.Covering(nil, geo.Point{X: 9, Y: 0}); len(got) != 0 {
		t.Errorf("stale coverage after removal: %v", ids(got))
	}
	if got := g.Covering(nil, geo.Point{X: 3.5, Y: 0}); len(got) != 1 || got[0].ID != 2 {
		t.Errorf("small circle lost: %v", ids(got))
	}
}

func TestGridDefaultCellFallback(t *testing.T) {
	for _, bad := range []float64{0, -1} {
		g := NewGrid(bad)
		if g.CellSize() != DefaultCell {
			t.Errorf("NewGrid(%v).CellSize = %v, want %v", bad, g.CellSize(), DefaultCell)
		}
	}
}

func TestNearest(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			ix := mk()
			if _, ok := Nearest(ix, geo.Point{}); ok {
				t.Fatal("Nearest on empty index must report !ok")
			}
			ix.Insert(entry(1, 2, 0, 5))
			ix.Insert(entry(2, 1, 0, 5))
			ix.Insert(entry(3, 4, 0, 5))
			ix.Insert(entry(4, 40, 0, 5)) // does not cover origin
			e, ok := Nearest(ix, geo.Point{})
			if !ok || e.ID != 2 {
				t.Errorf("Nearest = %v, %v; want ID 2", e.ID, ok)
			}
		})
	}
}

func TestNearestTieBreaksByID(t *testing.T) {
	ix := NewLinear()
	ix.Insert(entry(9, 1, 0, 5))
	ix.Insert(entry(4, -1, 0, 5)) // same distance from origin
	e, ok := Nearest(ix, geo.Point{})
	if !ok || e.ID != 4 {
		t.Errorf("Nearest tie = %d, want 4", e.ID)
	}
}

func TestSortEntries(t *testing.T) {
	es := []Entry{entry(3, 5, 0, 1), entry(1, 1, 0, 1), entry(2, 3, 0, 1)}
	SortEntries(es, geo.Point{})
	want := []int64{1, 2, 3}
	for i, e := range es {
		if e.ID != want[i] {
			t.Fatalf("SortEntries order = %v", ids(es))
		}
	}
}

func BenchmarkCovering(b *testing.B) {
	// Two spatial regimes: uniform, and the hot-spot skew of the city
	// workloads (90% of entries in a tight cluster) — the regime where
	// grid cells overflow and the k-d tree's adaptive splits pay off.
	distributions := map[string]func(rng *rand.Rand) (x, y float64){
		"uniform": func(rng *rand.Rand) (float64, float64) {
			return rng.Float64() * 30, rng.Float64() * 30
		},
		"hotspot": func(rng *rand.Rand) (float64, float64) {
			if rng.Float64() < 0.9 {
				return 15 + rng.NormFloat64(), 15 + rng.NormFloat64()
			}
			return rng.Float64() * 30, rng.Float64() * 30
		},
	}
	for distName, sample := range distributions {
		rng := rand.New(rand.NewSource(1))
		var es []Entry
		for i := 0; i < 10000; i++ {
			x, y := sample(rng)
			es = append(es, entry(int64(i+1), x, y, 1.0))
		}
		for name, mk := range makers() {
			ix := mk()
			for _, e := range es {
				ix.Insert(e)
			}
			b.Run(distName+"/"+name, func(b *testing.B) {
				var buf []Entry
				for i := 0; i < b.N; i++ {
					x, y := sample(rng)
					buf = ix.Covering(buf[:0], geo.Point{X: x, Y: y})
				}
			})
		}
	}
}

// TestGridSearchRadiusExact white-boxes the radius multiset: the search
// ring must track the exact live maximum through removals (the lazy
// dirty-flag recompute it replaced was only exact at query time, which
// made Covering a writer) and through duplicate-ID re-inserts that
// change an entry's radius.
func TestGridSearchRadiusExact(t *testing.T) {
	g := NewGrid(1)
	g.Insert(entry(1, 0, 0, 5))
	g.Insert(entry(2, 8, 0, 2))
	g.Insert(entry(3, -8, 0, 1))
	g.Insert(entry(4, 4, 4, 2)) // duplicate radius 2
	steps := []struct {
		remove int64
		want   float64
	}{
		{0, 5}, // initial: max of {5,2,1,2}
		{1, 2}, // drop the 5: max of {2,1,2}
		{2, 2}, // drop one 2: the other keeps the max
		{4, 1}, // drop the last 2
		{3, 0}, // empty
	}
	for _, s := range steps {
		if s.remove != 0 && !g.Remove(s.remove) {
			t.Fatalf("Remove(%d) = false", s.remove)
		}
		if got := g.searchRadius(); got != s.want {
			t.Fatalf("after removing %d: searchRadius = %v, want %v", s.remove, got, s.want)
		}
	}

	// Re-inserting an existing ID with a different radius must swap the
	// old radius for the new one, not leak either.
	g.Insert(entry(9, 0, 0, 3))
	g.Insert(entry(9, 1, 1, 7))
	if got := g.searchRadius(); got != 7 {
		t.Fatalf("searchRadius after re-insert = %v, want 7", got)
	}
	if g.Len() != 1 {
		t.Fatalf("Len after re-insert = %d, want 1", g.Len())
	}
	if got := g.Covering(nil, geo.Point{X: 7, Y: 1}); len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("re-inserted entry not found at new radius: %v", ids(got))
	}
	g.Remove(9)
	if got := g.searchRadius(); got != 0 {
		t.Fatalf("searchRadius after final removal = %v, want 0", got)
	}
}

// TestGridCoveringReadOnlyUnderConcurrentReaders hammers Covering from
// several goroutines with no writer — safe exactly because the search
// radius is maintained on the write path. Run under -race this guards
// the invariant online.Pool's RLock depends on.
func TestGridCoveringReadOnlyUnderConcurrentReaders(t *testing.T) {
	g := NewGrid(1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		g.Insert(entry(int64(i+1), rng.Float64()*20, rng.Float64()*20, 0.5+rng.Float64()*3))
	}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			r := rand.New(rand.NewSource(seed))
			var buf []Entry
			for i := 0; i < 2000; i++ {
				buf = g.Covering(buf[:0], geo.Point{X: r.Float64() * 20, Y: r.Float64() * 20})
			}
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
