package index

import (
	"crossmatch/internal/geo"
)

// KDTree indexes entries by their centers in a 2-d tree. Each node
// caches the maximum service radius and the bounding box of its subtree,
// so a covering query prunes any subtree whose box is farther from the
// query point than the largest radius it contains. Removal is lazy: the
// node is tombstoned, and the tree rebuilds itself once tombstones
// outnumber live entries.
type KDTree struct {
	root *kdNode
	byID map[int64]*kdNode
	live int
	dead int
}

type kdNode struct {
	entry       Entry
	left, right *kdNode
	axis        uint8 // 0 = X, 1 = Y
	deleted     bool
	maxRad      float64  // max radius in this subtree (live entries only is not maintained; conservative)
	bounds      geo.Rect // bounding box of centers in this subtree
}

// NewKDTree returns an empty tree.
func NewKDTree() *KDTree {
	return &KDTree{byID: make(map[int64]*kdNode)}
}

// BuildKDTree bulk-loads a balanced tree from entries.
func BuildKDTree(entries []Entry) *KDTree {
	t := NewKDTree()
	es := append([]Entry(nil), entries...)
	t.root = t.build(es, 0)
	t.live = len(es)
	return t
}

func (t *KDTree) build(es []Entry, depth int) *kdNode {
	if len(es) == 0 {
		return nil
	}
	axis := uint8(depth % 2)
	mid := len(es) / 2
	quickSelect(es, mid, axis)
	n := &kdNode{entry: es[mid], axis: axis}
	t.byID[n.entry.ID] = n
	n.left = t.build(es[:mid], depth+1)
	n.right = t.build(es[mid+1:], depth+1)
	n.refresh()
	return n
}

// quickSelect partially sorts es so that es[k] is the k-th entry by the
// given axis coordinate (ties by ID for determinism).
func quickSelect(es []Entry, k int, axis uint8) {
	lo, hi := 0, len(es)-1
	for lo < hi {
		p := partition(es, lo, hi, axis)
		switch {
		case p == k:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

func coord(e Entry, axis uint8) float64 {
	if axis == 0 {
		return e.Circle.Center.X
	}
	return e.Circle.Center.Y
}

func less(a, b Entry, axis uint8) bool {
	ca, cb := coord(a, axis), coord(b, axis)
	if ca != cb {
		return ca < cb
	}
	return a.ID < b.ID
}

func partition(es []Entry, lo, hi int, axis uint8) int {
	// Median-of-three pivot to avoid quadratic behaviour on sorted input.
	mid := lo + (hi-lo)/2
	if less(es[mid], es[lo], axis) {
		es[mid], es[lo] = es[lo], es[mid]
	}
	if less(es[hi], es[lo], axis) {
		es[hi], es[lo] = es[lo], es[hi]
	}
	if less(es[hi], es[mid], axis) {
		es[hi], es[mid] = es[mid], es[hi]
	}
	es[mid], es[hi] = es[hi], es[mid]
	pivot := es[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if less(es[j], pivot, axis) {
			es[i], es[j] = es[j], es[i]
			i++
		}
	}
	es[i], es[hi] = es[hi], es[i]
	return i
}

// refresh recomputes the node's subtree aggregates from its children.
func (n *kdNode) refresh() {
	n.maxRad = n.entry.Circle.Radius
	c := n.entry.Circle.Center
	n.bounds = geo.Rect{Min: c, Max: c}
	for _, ch := range []*kdNode{n.left, n.right} {
		if ch == nil {
			continue
		}
		if ch.maxRad > n.maxRad {
			n.maxRad = ch.maxRad
		}
		n.bounds = unionRect(n.bounds, ch.bounds)
	}
}

func unionRect(a, b geo.Rect) geo.Rect {
	r := a
	if b.Min.X < r.Min.X {
		r.Min.X = b.Min.X
	}
	if b.Min.Y < r.Min.Y {
		r.Min.Y = b.Min.Y
	}
	if b.Max.X > r.Max.X {
		r.Max.X = b.Max.X
	}
	if b.Max.Y > r.Max.Y {
		r.Max.Y = b.Max.Y
	}
	return r
}

// Insert implements Index. New nodes descend to a leaf without
// rebalancing; aggregates along the path are widened in place.
func (t *KDTree) Insert(e Entry) {
	if old, dup := t.byID[e.ID]; dup && !old.deleted {
		t.Remove(e.ID)
	}
	if t.root == nil {
		t.root = &kdNode{entry: e}
		t.root.refresh()
		t.byID[e.ID] = t.root
		t.live = 1
		return
	}
	n := t.root
	for {
		// Widen aggregates on the way down.
		if e.Circle.Radius > n.maxRad {
			n.maxRad = e.Circle.Radius
		}
		n.bounds = unionRect(n.bounds, geo.Rect{Min: e.Circle.Center, Max: e.Circle.Center})
		var next **kdNode
		if less(e, n.entry, n.axis) {
			next = &n.left
		} else {
			next = &n.right
		}
		if *next == nil {
			child := &kdNode{entry: e, axis: (n.axis + 1) % 2}
			child.refresh()
			*next = child
			t.byID[e.ID] = child
			t.live++
			return
		}
		n = *next
	}
}

// Remove implements Index (lazy deletion with periodic rebuild).
func (t *KDTree) Remove(id int64) bool {
	n, ok := t.byID[id]
	if !ok || n.deleted {
		return false
	}
	n.deleted = true
	delete(t.byID, id)
	t.live--
	t.dead++
	if t.dead > t.live+16 {
		t.rebuild()
	}
	return true
}

func (t *KDTree) rebuild() {
	es := make([]Entry, 0, t.live)
	es = t.collect(t.root, es)
	t.byID = make(map[int64]*kdNode, len(es))
	t.root = t.build(es, 0)
	t.live = len(es)
	t.dead = 0
}

func (t *KDTree) collect(n *kdNode, dst []Entry) []Entry {
	if n == nil {
		return dst
	}
	if !n.deleted {
		dst = append(dst, n.entry)
	}
	dst = t.collect(n.left, dst)
	return t.collect(n.right, dst)
}

// Covering implements Index.
func (t *KDTree) Covering(dst []Entry, p geo.Point) []Entry {
	return t.covering(t.root, dst, p)
}

func (t *KDTree) covering(n *kdNode, dst []Entry, p geo.Point) []Entry {
	if n == nil {
		return dst
	}
	// A disk in this subtree can cover p only if its center is within
	// maxRad of p; centers live inside n.bounds.
	if n.bounds.DistToPoint(p) > n.maxRad {
		return dst
	}
	if !n.deleted && n.entry.Covers(p) {
		dst = append(dst, n.entry)
	}
	dst = t.covering(n.left, dst, p)
	dst = t.covering(n.right, dst, p)
	return dst
}

// Len implements Index.
func (t *KDTree) Len() int { return t.live }
