package index

import (
	"math"
	"sort"

	"crossmatch/internal/geo"
)

// Grid is a uniform hash grid over entry centers. An entry lives in the
// cell containing its center; a covering query at point p must inspect
// every cell whose contents could include a disk covering p, i.e. all
// cells within the maximum live radius of p. The grid tracks that
// maximum exactly in a sorted radius multiset and widens its search ring
// accordingly, so correctness never depends on choosing the cell size
// well — only performance does. Keeping the maximum exact (instead of
// lazily recomputing it after removals) makes Covering strictly
// read-only, which lets online.Pool serve concurrent coverage queries
// under a read lock.
type Grid struct {
	cell  float64 // cell edge length, km
	cells map[cellKey][]Entry
	where map[int64]cellKey // entry ID -> its cell
	// Sorted multiset of live radii: radVals ascending and distinct,
	// radCnt the multiplicity of each. The search ring uses the last
	// element; insert/remove cost O(log d + d) for d distinct radii,
	// which real workloads keep tiny (radius is per-platform uniform).
	radVals []float64
	radCnt  []int
	n       int
}

type cellKey struct{ cx, cy int32 }

// DefaultCell is the cell size used when the caller passes a
// non-positive size: one kilometre, the paper's default service radius.
const DefaultCell = 1.0

// NewGrid returns an empty grid with the given cell edge length in
// kilometres. Non-positive sizes fall back to DefaultCell.
func NewGrid(cellSize float64) *Grid {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		cellSize = DefaultCell
	}
	return &Grid{
		cell:  cellSize,
		cells: make(map[cellKey][]Entry),
		where: make(map[int64]cellKey),
	}
}

// CellOf returns the grid cell coordinates of p for a given cell edge
// length — the one spatial-partition geometry shared by the matching
// grid and the fleet router (internal/route), so routing a stream by
// cell keeps each shard's local supply density intact. Non-positive or
// non-finite sizes fall back to DefaultCell, exactly as NewGrid does.
func CellOf(p geo.Point, cellSize float64) (cx, cy int32) {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		cellSize = DefaultCell
	}
	return int32(math.Floor(p.X / cellSize)), int32(math.Floor(p.Y / cellSize))
}

func (g *Grid) key(p geo.Point) cellKey {
	cx, cy := CellOf(p, g.cell)
	return cellKey{cx: cx, cy: cy}
}

// Insert implements Index.
func (g *Grid) Insert(e Entry) {
	if _, dup := g.where[e.ID]; dup {
		g.Remove(e.ID)
	}
	k := g.key(e.Circle.Center)
	g.cells[k] = append(g.cells[k], e)
	g.where[e.ID] = k
	g.addRad(e.Circle.Radius)
	g.n++
}

// addRad records a live entry's radius in the sorted multiset.
func (g *Grid) addRad(r float64) {
	i := sort.SearchFloat64s(g.radVals, r)
	if i < len(g.radVals) && g.radVals[i] == r {
		g.radCnt[i]++
		return
	}
	g.radVals = append(g.radVals, 0)
	copy(g.radVals[i+1:], g.radVals[i:])
	g.radVals[i] = r
	g.radCnt = append(g.radCnt, 0)
	copy(g.radCnt[i+1:], g.radCnt[i:])
	g.radCnt[i] = 1
}

// removeRad drops one occurrence of a live entry's radius.
func (g *Grid) removeRad(r float64) {
	i := sort.SearchFloat64s(g.radVals, r)
	if i >= len(g.radVals) || g.radVals[i] != r {
		return // unreachable: every live entry's radius is tracked
	}
	g.radCnt[i]--
	if g.radCnt[i] == 0 {
		g.radVals = append(g.radVals[:i], g.radVals[i+1:]...)
		g.radCnt = append(g.radCnt[:i], g.radCnt[i+1:]...)
	}
}

// Remove implements Index.
func (g *Grid) Remove(id int64) bool {
	k, ok := g.where[id]
	if !ok {
		return false
	}
	bucket := g.cells[k]
	for i, e := range bucket {
		if e.ID == id {
			g.removeRad(e.Circle.Radius)
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(g.cells, k)
	} else {
		g.cells[k] = bucket
	}
	delete(g.where, id)
	g.n--
	return true
}

// searchRadius returns the radius within which entry centers must be
// inspected: the exact maximum over live entries, maintained
// incrementally so queries never mutate the grid.
func (g *Grid) searchRadius() float64 {
	if len(g.radVals) == 0 {
		return 0
	}
	return g.radVals[len(g.radVals)-1]
}

// Covering implements Index.
func (g *Grid) Covering(dst []Entry, p geo.Point) []Entry {
	if g.n == 0 {
		return dst
	}
	r := g.searchRadius()
	ring := int32(math.Ceil(r / g.cell))
	c := g.key(p)
	for cx := c.cx - ring; cx <= c.cx+ring; cx++ {
		for cy := c.cy - ring; cy <= c.cy+ring; cy++ {
			for _, e := range g.cells[cellKey{cx, cy}] {
				if e.Covers(p) {
					dst = append(dst, e)
				}
			}
		}
	}
	return dst
}

// Len implements Index.
func (g *Grid) Len() int { return g.n }

// CellSize returns the grid's cell edge length.
func (g *Grid) CellSize() float64 { return g.cell }
