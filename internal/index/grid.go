package index

import (
	"math"

	"crossmatch/internal/geo"
)

// Grid is a uniform hash grid over entry centers. An entry lives in the
// cell containing its center; a covering query at point p must inspect
// every cell whose contents could include a disk covering p, i.e. all
// cells within the maximum live radius of p. The grid tracks that
// maximum and widens its search ring accordingly, so correctness never
// depends on choosing the cell size well — only performance does.
type Grid struct {
	cell    float64 // cell edge length, km
	cells   map[cellKey][]Entry
	where   map[int64]cellKey // entry ID -> its cell
	maxRad  float64           // maximum radius among live entries
	radDirt bool              // maxRad may overestimate after removals
	n       int
}

type cellKey struct{ cx, cy int32 }

// DefaultCell is the cell size used when the caller passes a
// non-positive size: one kilometre, the paper's default service radius.
const DefaultCell = 1.0

// NewGrid returns an empty grid with the given cell edge length in
// kilometres. Non-positive sizes fall back to DefaultCell.
func NewGrid(cellSize float64) *Grid {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		cellSize = DefaultCell
	}
	return &Grid{
		cell:  cellSize,
		cells: make(map[cellKey][]Entry),
		where: make(map[int64]cellKey),
	}
}

func (g *Grid) key(p geo.Point) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / g.cell)),
		cy: int32(math.Floor(p.Y / g.cell)),
	}
}

// Insert implements Index.
func (g *Grid) Insert(e Entry) {
	if _, dup := g.where[e.ID]; dup {
		g.Remove(e.ID)
	}
	k := g.key(e.Circle.Center)
	g.cells[k] = append(g.cells[k], e)
	g.where[e.ID] = k
	if e.Circle.Radius > g.maxRad {
		g.maxRad = e.Circle.Radius
		g.radDirt = false
	}
	g.n++
}

// Remove implements Index.
func (g *Grid) Remove(id int64) bool {
	k, ok := g.where[id]
	if !ok {
		return false
	}
	bucket := g.cells[k]
	for i, e := range bucket {
		if e.ID == id {
			if e.Circle.Radius == g.maxRad {
				g.radDirt = true
			}
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(g.cells, k)
	} else {
		g.cells[k] = bucket
	}
	delete(g.where, id)
	g.n--
	if g.n == 0 {
		g.maxRad = 0
		g.radDirt = false
	}
	return true
}

// searchRadius returns the radius within which entry centers must be
// inspected. After removals invalidated the cached maximum, it is
// recomputed lazily (amortized over the removals that dirtied it).
func (g *Grid) searchRadius() float64 {
	if g.radDirt {
		maxRad := 0.0
		for _, bucket := range g.cells {
			for _, e := range bucket {
				if e.Circle.Radius > maxRad {
					maxRad = e.Circle.Radius
				}
			}
		}
		g.maxRad = maxRad
		g.radDirt = false
	}
	return g.maxRad
}

// Covering implements Index.
func (g *Grid) Covering(dst []Entry, p geo.Point) []Entry {
	if g.n == 0 {
		return dst
	}
	r := g.searchRadius()
	ring := int32(math.Ceil(r / g.cell))
	c := g.key(p)
	for cx := c.cx - ring; cx <= c.cx+ring; cx++ {
		for cy := c.cy - ring; cy <= c.cy+ring; cy++ {
			for _, e := range g.cells[cellKey{cx, cy}] {
				if e.Covers(p) {
					dst = append(dst, e)
				}
			}
		}
	}
	return dst
}

// Len implements Index.
func (g *Grid) Len() int { return g.n }

// CellSize returns the grid's cell edge length.
func (g *Grid) CellSize() float64 { return g.cell }
