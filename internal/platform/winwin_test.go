package platform

import (
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/pricing"
	"crossmatch/internal/workload"
)

// TestLentAccounting checks the cooperation ledger: the number of
// workers a platform lends equals the number of outer services the other
// platforms book from it (two-platform case: lent(1) == servedOuter(2)).
func TestLentAccounting(t *testing.T) {
	cfg, err := workload.Synthetic(800, 160, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.Generate(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run(stream, DemCOMFactory(pricing.DefaultMonteCarlo, false), Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if run.Lent == nil {
		t.Fatal("lending ledger missing")
	}
	if got, want := run.Lent[1], run.Platforms[2].Stats.ServedOuter; got != want {
		t.Errorf("platform 1 lent %d != platform 2 served-outer %d", got, want)
	}
	if got, want := run.Lent[2], run.Platforms[1].Stats.ServedOuter; got != want {
		t.Errorf("platform 2 lent %d != platform 1 served-outer %d", got, want)
	}
	totalLent := run.Lent[1] + run.Lent[2]
	if totalLent != run.CooperativeServed() {
		t.Errorf("total lent %d != cooperative served %d", totalLent, run.CooperativeServed())
	}
}

// TestCooperationIsWinWin verifies the paper's headline claim at the
// per-platform level: with both platforms running a COM algorithm on
// the complementary city, EACH platform's revenue is at least its TOTA
// revenue (averaged over seeds — single runs can dip within noise).
func TestCooperationIsWinWin(t *testing.T) {
	cfg, err := workload.Synthetic(2000, 400, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	const seeds = 5
	totaRev := map[int]float64{}
	demRev := map[int]float64{}
	for s := int64(0); s < seeds; s++ {
		stream, err := workload.Generate(cfg, 100+s)
		if err != nil {
			t.Fatal(err)
		}
		tota, err := Run(stream, TOTAFactory(), Config{Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		dem, err := Run(stream, DemCOMFactory(pricing.DefaultMonteCarlo, false), Config{Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		for pid := 1; pid <= 2; pid++ {
			totaRev[pid] += tota.Platforms[core.PlatformID(pid)].Stats.Revenue
			demRev[pid] += dem.Platforms[core.PlatformID(pid)].Stats.Revenue
		}
	}
	for pid := 1; pid <= 2; pid++ {
		if demRev[pid] < totaRev[pid] {
			t.Errorf("platform %d: DemCOM %.1f below TOTA %.1f — cooperation not win-win",
				pid, demRev[pid]/seeds, totaRev[pid]/seeds)
		}
	}
}
