package platform

import (
	"fmt"
	"testing"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/fault"
	"crossmatch/internal/metrics"
	"crossmatch/internal/pricing"
)

// resultKey fingerprints a run assignment-for-assignment, so two runs
// can be compared for bit-identity.
func resultKey(res *Result) string {
	s := ""
	for pid := core.PlatformID(1); pid <= 16; pid++ {
		p := res.Platforms[pid]
		if p == nil {
			continue
		}
		s += fmt.Sprintf("[%d:%d:%.9f", pid, p.Stats.Served, p.Stats.Revenue)
		for _, a := range p.Matching.Assignments() {
			s += fmt.Sprintf(" %d->%d@%.9f", a.Request.ID, a.Worker.ID, a.Payment)
		}
		s += "]"
	}
	return s
}

// TestZeroRatePlanBitIdenticalToNoPlan guards the determinism contract
// of the fault layer: a plan that never fires draws only from the
// injector's own RNG, so matching decisions — and therefore every
// assignment and payment — are bit-identical to a run without any plan.
func TestZeroRatePlanBitIdenticalToNoPlan(t *testing.T) {
	stream := multiStream(t, 3, 400, 80, 23)
	for _, alg := range []string{AlgDemCOM, AlgRamCOM} {
		factory, err := FactoryFor(alg, stream.MaxValue())
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Run(stream, factory, Config{Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		faulted, err := Run(stream, factory, Config{Seed: 23, Faults: &fault.Plan{
			// All rates zero: the injector is live (probes consult it)
			// but never injects.
			Seed: 99,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if resultKey(plain) != resultKey(faulted) {
			t.Errorf("%s: zero-rate fault plan changed the matching", alg)
		}
	}
}

// TestFullOutageEqualsCoopDisabled proves graceful degradation end to
// end: with every platform dark for the whole run, DemCOM and RamCOM
// must produce exactly the matching of a CoopDisabled (TOTA-degraded)
// run — same assignments, same payments, same revenue — because probe
// failures and open breakers starve the cooperative path without ever
// touching matcher randomness.
func TestFullOutageEqualsCoopDisabled(t *testing.T) {
	stream := multiStream(t, 3, 500, 100, 31)
	outages := make([]fault.Outage, 0, 3)
	for _, pid := range stream.Platforms() {
		outages = append(outages, fault.Outage{Platform: pid, From: 0}) // open-ended
	}
	for _, alg := range []string{AlgDemCOM, AlgRamCOM} {
		factory, err := FactoryFor(alg, stream.MaxValue())
		if err != nil {
			t.Fatal(err)
		}
		disabled, err := Run(stream, factory, Config{Seed: 31, DisableCoop: true})
		if err != nil {
			t.Fatal(err)
		}
		dark, err := Run(stream, factory, Config{Seed: 31, Faults: &fault.Plan{Outages: outages}})
		if err != nil {
			t.Fatal(err)
		}
		if resultKey(disabled) != resultKey(dark) {
			t.Errorf("%s: full-outage run != CoopDisabled run\n outage: %s\n coopoff: %s",
				alg, resultKey(dark), resultKey(disabled))
		}
		if dark.CooperativeServed() != 0 {
			t.Errorf("%s: %d cooperative assignments against fully dark partners", alg, dark.CooperativeServed())
		}
	}
}

// TestBreakerCountersMatchOutageSchedule pins the breaker-transition
// accounting to an injected schedule. Platform 1 is down for the whole
// run while platforms 2 and 3 hammer it with cooperative probes, so its
// (shared) breaker opens once, then cycles half-open→open forever:
// opened must equal half-opened + 1 and nothing ever closes.
func TestBreakerCountersMatchOutageSchedule(t *testing.T) {
	col := metrics.New()
	stream := conflictStream(t, 50, 300) // platforms 2 and 3 probe platform 1 every tick
	_, err := Run(stream, DemCOMFactory(pricing.DefaultMonteCarlo, false), Config{
		Seed:    3,
		Metrics: col,
		Faults: &fault.Plan{
			Outages: []fault.Outage{{Platform: 1, From: 0}}, // never lifts
			Retry:   fault.RetryPolicy{MaxAttempts: 1},
			Breaker: fault.BreakerConfig{FailureThreshold: 5, CooldownTicks: 60},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := col.Snapshot().Counters
	if c.BreakerOpened == 0 {
		t.Fatal("breaker never opened under a permanent outage")
	}
	if c.BreakerClosed != 0 {
		t.Errorf("breaker closed %d times under a permanent outage, want 0", c.BreakerClosed)
	}
	if c.BreakerOpened != c.BreakerHalfOpened+1 {
		t.Errorf("opened=%d, half-opened=%d: want opened == half-opened + 1 (initial open plus one reopen per failed trial)",
			c.BreakerOpened, c.BreakerHalfOpened)
	}
	if c.BreakerShortCircuits == 0 {
		t.Error("no probes were short-circuited while the breaker was open")
	}
	if c.FaultOutageHits == 0 {
		t.Error("no outage hits recorded")
	}
}

// TestBreakerRecoversAfterOutageLifts closes the loop on the breaker
// lifecycle: a bounded outage opens the breaker, and once the window
// passes a half-open trial succeeds, the breaker closes, and
// cooperation resumes (cooperative assignments appear after recovery).
func TestBreakerRecoversAfterOutageLifts(t *testing.T) {
	col := metrics.New()
	stream := conflictStream(t, 250, 300) // requests arrive at t = 1..300
	res, err := Run(stream, DemCOMFactory(pricing.DefaultMonteCarlo, false), Config{
		Seed:    4,
		Metrics: col,
		Faults: &fault.Plan{
			Outages: []fault.Outage{{Platform: 1, From: 0, Until: 100}},
			Retry:   fault.RetryPolicy{MaxAttempts: 1},
			Breaker: fault.BreakerConfig{FailureThreshold: 5, CooldownTicks: 20},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := col.Snapshot().Counters
	if c.BreakerOpened == 0 {
		t.Fatal("breaker never opened during the outage window")
	}
	if c.BreakerClosed == 0 {
		t.Error("breaker never closed after the outage lifted")
	}
	if res.CooperativeServed() == 0 {
		t.Error("no cooperative assignments after recovery; degradation never healed")
	}
}

// TestChaosParallelFaultInjection is the -race chaos gate of the fault
// layer: latency spikes (with real sleeps shaking goroutine schedules),
// dropped probes, transient claim errors and a mid-run outage, all
// under the concurrent per-platform runtime with worker recycling on.
// The run must terminate (no deadlock), every matching must stay valid
// with no worker assigned twice across platforms, and the injected
// faults must be visible in the counters.
func TestChaosParallelFaultInjection(t *testing.T) {
	stream := multiStream(t, 4, 800, 160, 47)
	// Find the stream horizon to place a mid-run outage.
	events := stream.Events()
	horizon := events[len(events)-1].Time
	plan := &fault.Plan{
		LatencyRate:    0.3,
		LatencyMin:     10 * time.Microsecond,
		LatencyMax:     2 * time.Millisecond,
		MaxSleep:       200 * time.Microsecond,
		DropRate:       0.2,
		ClaimErrorRate: 0.2,
		Outages: []fault.Outage{
			{Platform: 1, From: horizon / 4, Until: horizon / 2},
			{Platform: 2, From: horizon / 2}, // goes dark and never returns
		},
		Retry:   fault.RetryPolicy{MaxAttempts: 2, Deadline: 5 * time.Millisecond},
		Breaker: fault.BreakerConfig{FailureThreshold: 3, CooldownTicks: core.Time(30)},
	}
	col := metrics.New()
	for _, seed := range []int64{1, 2, 3} {
		res, err := Run(stream, DemCOMFactory(pricing.DefaultMonteCarlo, false), Config{
			Seed:             seed,
			PlatformParallel: true,
			ServiceTicks:     10,
			Metrics:          col,
			Faults:           plan,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertAtomicAssignments(t, res)
	}
	c := col.Snapshot().Counters
	if c.FaultDroppedProbes == 0 || c.FaultLatencySpikes == 0 || c.FaultOutageHits == 0 {
		t.Errorf("chaos plan injected nothing: %+v", c)
	}
	if c.BreakerOpened == 0 {
		t.Error("no breaker ever opened under the chaos plan")
	}
	if c.ProbeRetries == 0 {
		t.Error("no cooperation call was ever retried")
	}
}

// TestHubLifecycleGuard pins the registration contract: once the run's
// consume phase begins the hub's configuration is read lock-free, so
// late RegisterPlatform must error and late SetMetrics/SetFaults must
// panic instead of silently racing.
func TestHubLifecycleGuard(t *testing.T) {
	h := NewHub()
	if err := h.RegisterPlatform(1, nil); err != nil {
		t.Fatal(err)
	}
	h.seal()
	if err := h.RegisterPlatform(2, nil); err == nil {
		t.Error("RegisterPlatform after seal returned no error")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s after seal did not panic", name)
			}
		}()
		f()
	}
	mustPanic("SetMetrics", func() { h.SetMetrics(metrics.New()) })
	mustPanic("SetFaults", func() { h.SetFaults(nil) })
}

// TestRunRejectsInvalidFaultPlan checks that a malformed plan fails the
// run up front with a clear error instead of injecting garbage.
func TestRunRejectsInvalidFaultPlan(t *testing.T) {
	stream := multiStream(t, 2, 50, 10, 1)
	_, err := Run(stream, TOTAFactory(), Config{Seed: 1, Faults: &fault.Plan{DropRate: 1.5}})
	if err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}
