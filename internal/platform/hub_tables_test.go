package platform

import (
	"context"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
	"crossmatch/internal/pricing"
)

// hubTableLens reads the sizes of the hub's three per-worker tables.
func hubTableLens(h *Hub) (owner, histories, claimed int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.owner), len(h.histories), len(h.claimed)
}

// TestHubTablesEmptyAfterDrainedRun checks eviction at its strictest:
// when every worker in the stream ends up assigned, the hub must hold
// zero records in all three per-worker tables — owner, histories and
// claim words — not just a matching TrackedWorkers count.
func TestHubTablesEmptyAfterDrainedRun(t *testing.T) {
	var events []core.Event
	id := int64(1)
	for _, pid := range []core.PlatformID{1, 2} {
		w := &core.Worker{ID: id, Arrival: 0, Loc: geo.Point{}, Radius: 5, Platform: pid, History: []float64{1, 2}}
		events = append(events, core.Event{Time: 0, Kind: core.WorkerArrival, Worker: w})
		id++
		r := &core.Request{ID: id, Arrival: 1, Loc: geo.Point{}, Value: 3, Platform: pid}
		events = append(events, core.Event{Time: 1, Kind: core.RequestArrival, Request: r})
		id++
	}
	stream, err := core.NewStream(events)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newRunState(stream, TOTAFactory(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.runSequential(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalServed() != 2 {
		t.Fatalf("served %d of 2 requests; stream not drained as designed", res.TotalServed())
	}
	o, hi, cl := hubTableLens(s.hub)
	if o != 0 || hi != 0 || cl != 0 {
		t.Errorf("hub tables not empty after drained run: owner=%d histories=%d claimed=%d", o, hi, cl)
	}
}

// TestHubTablesStayInSyncOnLongRecycledRun is the leak regression for
// the recycled path: over a long run with worker recycling, the three
// per-worker tables must stay mutually consistent and track exactly the
// workers still waiting in the platform pools — every pool worker has a
// record, and no record outlives its worker.
func TestHubTablesStayInSyncOnLongRecycledRun(t *testing.T) {
	stream := multiStream(t, 3, 600, 90, 19)
	s, err := newRunState(stream, DemCOMFactory(pricing.DefaultMonteCarlo, false),
		Config{Seed: 19, ServiceTicks: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.runSequential(context.Background()); err != nil {
		t.Fatal(err)
	}
	inPools := map[int64]bool{}
	for _, pid := range s.pids {
		s.matchers[pid].(poolHolder).Pool().Each(func(w *core.Worker) bool {
			inPools[w.ID] = true
			return true
		})
	}
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	if len(s.hub.owner) != len(inPools) || len(s.hub.histories) != len(inPools) || len(s.hub.claimed) != len(inPools) {
		t.Errorf("table sizes owner=%d histories=%d claimed=%d, want %d (workers still waiting in pools)",
			len(s.hub.owner), len(s.hub.histories), len(s.hub.claimed), len(inPools))
	}
	for id := range s.hub.owner {
		if !inPools[id] {
			t.Errorf("hub tracks worker %d that is in no pool (leaked record)", id)
		}
		if _, ok := s.hub.histories[id]; !ok {
			t.Errorf("worker %d has an owner record but no history", id)
		}
		if _, ok := s.hub.claimed[id]; !ok {
			t.Errorf("worker %d has an owner record but no claim word", id)
		}
	}
}
