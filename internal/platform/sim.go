package platform

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"runtime/pprof"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/metrics"
	"crossmatch/internal/online"
	"crossmatch/internal/stats"
)

// MatcherFactory builds one platform's online matcher. coop is that
// platform's window onto the other platforms' unoccupied workers; rng is
// a platform-private generator derived from the simulation seed.
type MatcherFactory func(id core.PlatformID, coop online.CoopView, rng *rand.Rand) online.Matcher

// poolHolder is implemented by every matcher in this repository; the
// simulation uses it to wire the matcher's waiting list into the hub.
type poolHolder interface{ Pool() *online.Pool }

// Config controls a simulation run.
type Config struct {
	// Seed drives every random choice (matcher thresholds, acceptance
	// probes, Monte-Carlo sampling). Same seed, same stream, same result.
	Seed int64
	// ServiceTicks, when positive, recycles workers: a worker who
	// completes a request re-joins its platform's waiting list
	// ServiceTicks after the assignment, at the request's location, as
	// a fresh waiting-list entry with the earned value appended to its
	// history (the paper's "comes back to the platform again at a new
	// time point"). Zero keeps the paper's one-shot matching model used
	// in the evaluation.
	ServiceTicks core.Time
	// DisableCoop turns off worker sharing: COM algorithms degrade to
	// TOTA (the degradation ablation).
	DisableCoop bool
	// Metrics, when non-nil, receives the run's matching-funnel counters
	// (inner/outer matches, cooperative attempts, acceptance probes,
	// rejections) and per-platform decision-latency observations. The
	// collector is safe to share across concurrent runs.
	Metrics *metrics.Collector
	// ProfileLabel, when non-empty, tags the run's goroutine with a
	// "crossmatch.run" pprof label so CPU profiles of a parallel
	// experiment attribute samples to individual runs.
	ProfileLabel string
}

// PlatformResult aggregates one platform's outcomes.
type PlatformResult struct {
	ID       core.PlatformID
	Name     string // matcher name
	Stats    online.Stats
	Matching *core.Matching
	// ResponseTotal is the summed wall-clock time spent deciding
	// requests; ResponseMax the slowest single decision.
	ResponseTotal time.Duration
	ResponseMax   time.Duration
	// Latency holds the full decision-latency distribution (mean, max
	// and sampled percentiles).
	Latency *stats.Reservoir
}

// MeanResponse returns the average decision latency per request.
func (r *PlatformResult) MeanResponse() time.Duration {
	if r.Stats.Requests == 0 {
		return 0
	}
	return r.ResponseTotal / time.Duration(r.Stats.Requests)
}

// Result is the outcome of a simulation run.
type Result struct {
	Platforms map[core.PlatformID]*PlatformResult
	// Lent counts workers each platform lent to others through the hub.
	Lent map[core.PlatformID]int
	// Recycled counts worker re-arrivals (only with ServiceTicks > 0).
	Recycled int
}

// TotalRevenue sums revenue across platforms.
func (r *Result) TotalRevenue() float64 {
	t := 0.0
	for _, p := range r.Platforms {
		t += p.Stats.Revenue
	}
	return t
}

// TotalServed sums served requests across platforms.
func (r *Result) TotalServed() int {
	t := 0
	for _, p := range r.Platforms {
		t += p.Stats.Served
	}
	return t
}

// CooperativeServed sums accepted cooperative requests (|CoR|).
func (r *Result) CooperativeServed() int {
	t := 0
	for _, p := range r.Platforms {
		t += p.Stats.ServedOuter
	}
	return t
}

// AcceptanceRatio aggregates AcpRt across platforms.
func (r *Result) AcceptanceRatio() float64 {
	att, ok := 0, 0
	for _, p := range r.Platforms {
		att += p.Stats.CoopAttempted
		ok += p.Stats.ServedOuter
	}
	if att == 0 {
		return 0
	}
	return float64(ok) / float64(att)
}

// MeanPaymentRate aggregates the outer payment rate v'/v across
// platforms' cooperative assignments.
func (r *Result) MeanPaymentRate() float64 {
	sum, n := 0.0, 0
	for _, p := range r.Platforms {
		sum += p.Stats.PaymentRate
		n += p.Stats.ServedOuter
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Validate re-checks every platform's matching.
func (r *Result) Validate() error {
	for id, p := range r.Platforms {
		if err := p.Matching.Validate(); err != nil {
			return fmt.Errorf("platform %d: %w", id, err)
		}
	}
	return nil
}

// Run executes the stream against one matcher per platform, cooperating
// through a shared hub. The factory is called once per platform present
// in the stream.
func Run(stream *core.Stream, factory MatcherFactory, cfg Config) (*Result, error) {
	return RunContext(context.Background(), stream, factory, cfg)
}

// cancelCheckMask throttles the context poll in the event loop: the
// ctx.Err() call costs more than a cheap decision, so it runs every 64
// events. Cancellation latency stays far below any human timeout.
const cancelCheckMask = 63

// RunContext is Run with cooperative cancellation: when ctx is canceled
// mid-stream, the simulation stops at the next event boundary and
// returns the partial Result accumulated so far alongside an error
// wrapping ctx.Err() (test with errors.Is(err, context.Canceled) or
// context.DeadlineExceeded). The run is single-goroutine, so
// cancellation leaks nothing.
func RunContext(ctx context.Context, stream *core.Stream, factory MatcherFactory, cfg Config) (res *Result, err error) {
	if cfg.ProfileLabel != "" {
		pprof.Do(ctx, pprof.Labels("crossmatch.run", cfg.ProfileLabel), func(ctx context.Context) {
			res, err = runContext(ctx, stream, factory, cfg)
		})
		return res, err
	}
	return runContext(ctx, stream, factory, cfg)
}

func runContext(ctx context.Context, stream *core.Stream, factory MatcherFactory, cfg Config) (*Result, error) {
	hub := NewHub()
	hub.CoopDisabled = cfg.DisableCoop
	res := &Result{Platforms: map[core.PlatformID]*PlatformResult{}}
	matchers := map[core.PlatformID]online.Matcher{}

	root := rand.New(rand.NewSource(cfg.Seed))
	for _, pid := range stream.Platforms() {
		rng := rand.New(rand.NewSource(root.Int63()))
		m := factory(pid, hub.ViewFor(pid), rng)
		holder, ok := m.(poolHolder)
		if !ok {
			return nil, fmt.Errorf("platform: matcher %q does not expose its pool", m.Name())
		}
		if err := hub.RegisterPlatform(pid, holder.Pool()); err != nil {
			return nil, err
		}
		matchers[pid] = m
		res.Platforms[pid] = &PlatformResult{
			ID: pid, Name: m.Name(), Matching: core.NewMatching(),
			Latency: stats.NewReservoir(0, cfg.Seed^int64(pid)),
		}
	}

	cfg.Metrics.RunStarted()
	// Per-platform latency labels are built once; the hot loop must not
	// format strings.
	labels := map[core.PlatformID]string{}
	if cfg.Metrics != nil {
		for _, pid := range stream.Platforms() {
			labels[pid] = fmt.Sprintf("platform-%d", pid)
		}
	}

	// Pending worker re-arrivals (recycling), ordered by time.
	var recycle recycleHeap
	nextRecycledID := maxWorkerID(stream) + 1

	deliverWorker := func(w *core.Worker) error {
		if err := hub.WorkerArrived(w); err != nil {
			return err
		}
		matchers[w.Platform].WorkerArrives(w)
		return nil
	}

	for i, e := range stream.Events() {
		if i&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				res.Lent = hub.Lent()
				return res, fmt.Errorf("platform: run stopped after %d of %d events: %w",
					i, stream.Len(), err)
			}
		}
		// Flush recycled workers due before this event.
		for len(recycle) > 0 && recycle[0].Arrival <= e.Time {
			w := heap.Pop(&recycle).(*core.Worker)
			if err := deliverWorker(w); err != nil {
				return nil, err
			}
			res.Recycled++
		}
		switch e.Kind {
		case core.WorkerArrival:
			if err := deliverWorker(e.Worker); err != nil {
				return nil, err
			}
		case core.RequestArrival:
			pr := res.Platforms[e.Request.Platform]
			m := matchers[e.Request.Platform]
			start := time.Now()
			d := m.RequestArrives(e.Request)
			el := time.Since(start)
			pr.ResponseTotal += el
			if el > pr.ResponseMax {
				pr.ResponseMax = el
			}
			pr.Latency.Observe(el)
			pr.Stats.Observe(d)
			if m := cfg.Metrics; m != nil {
				m.ObserveLatency(labels[e.Request.Platform], el)
				m.AddProbes(d.Probes)
				if d.CoopAttempted {
					m.CoopAttempt()
				}
				switch {
				case d.Served && d.Assignment.Outer:
					m.MatchOuter()
				case d.Served:
					m.MatchInner()
				default:
					m.Reject()
				}
			}
			if d.Served {
				if err := pr.Matching.Add(d.Assignment); err != nil {
					return nil, fmt.Errorf("platform %d: %w", e.Request.Platform, err)
				}
				if cfg.ServiceTicks > 0 {
					w := d.Assignment.Worker
					earned := d.Assignment.Request.Value
					if d.Assignment.Outer {
						earned = d.Assignment.Payment
					}
					reborn := &core.Worker{
						ID:       nextRecycledID,
						Arrival:  e.Time + cfg.ServiceTicks,
						Loc:      d.Assignment.Request.Loc,
						Radius:   w.Radius,
						Platform: w.Platform,
						History:  append(append([]float64(nil), w.History...), earned),
					}
					nextRecycledID++
					heap.Push(&recycle, reborn)
				}
			}
		}
	}
	res.Lent = hub.Lent()
	return res, nil
}

func maxWorkerID(stream *core.Stream) int64 {
	var maxID int64
	for _, w := range stream.Workers() {
		if w.ID > maxID {
			maxID = w.ID
		}
	}
	return maxID
}

type recycleHeap []*core.Worker

func (h recycleHeap) Len() int           { return len(h) }
func (h recycleHeap) Less(i, j int) bool { return h[i].Arrival < h[j].Arrival }
func (h recycleHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *recycleHeap) Push(x interface{}) {
	*h = append(*h, x.(*core.Worker))
}
func (h *recycleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	*h = old[:n-1]
	return w
}
