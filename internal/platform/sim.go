package platform

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/fault"
	"crossmatch/internal/metrics"
	"crossmatch/internal/online"
	"crossmatch/internal/pricing"
	"crossmatch/internal/stats"
	"crossmatch/internal/trace"
)

// MatcherFactory builds one platform's online matcher. coop is that
// platform's window onto the other platforms' unoccupied workers; rng is
// a platform-private generator derived from the simulation seed.
type MatcherFactory func(id core.PlatformID, coop online.CoopView, rng *rand.Rand) online.Matcher

// poolHolder is implemented by every matcher in this repository; the
// simulation uses it to wire the matcher's waiting list into the hub.
type poolHolder interface{ Pool() *online.Pool }

// traceBinder is implemented by matchers that can record per-request
// decision spans; matchers without it simply run untraced.
type traceBinder interface{ BindTrace(*trace.Recorder) }

// pricingSwitcher is implemented by matchers whose quoter can A/B the
// CDF-table path against the exact scan (Config.PricingScan).
type pricingSwitcher interface{ SetPricingScan(bool) }

// pricingStatsProvider is implemented by matchers that expose their
// pricing quoter's counters; the run folds them into Config.Metrics.
type pricingStatsProvider interface{ PricingStats() pricing.Stats }

// Config controls a simulation run.
type Config struct {
	// Seed drives every random choice (matcher thresholds, acceptance
	// probes, Monte-Carlo sampling). Same seed, same stream, same result —
	// under the sequential runtime; see PlatformParallel.
	Seed int64
	// ServiceTicks, when positive, recycles workers: a worker who
	// completes a request re-joins its platform's waiting list
	// ServiceTicks after the assignment, at the request's location, as
	// a fresh waiting-list entry with the earned value appended to its
	// history (the paper's "comes back to the platform again at a new
	// time point"). Zero keeps the paper's one-shot matching model used
	// in the evaluation.
	ServiceTicks core.Time
	// DisableCoop turns off worker sharing: COM algorithms degrade to
	// TOTA (the degradation ablation).
	DisableCoop bool
	// PlatformParallel runs each platform's event sub-stream on its own
	// goroutine, cooperating through the race-safe hub — the deployment
	// model of the paper, where platforms are independent services and
	// cross-platform claims genuinely race. Results stay valid (every
	// matching passes Validate, no worker is assigned twice) but are not
	// bit-reproducible across runs: event interleaving, and therefore
	// claim outcomes, depends on scheduling. The default (false) keeps
	// the single-goroutine loop whose results are a pure function of
	// (stream, factory, Seed).
	PlatformParallel bool
	// Metrics, when non-nil, receives the run's matching-funnel counters
	// (inner/outer matches, cooperative attempts, acceptance probes,
	// rejections, claim conflicts and retries), per-platform
	// decision-latency observations and — under PlatformParallel — hub
	// lock-wait timings. The collector is safe to share across
	// concurrent runs.
	Metrics *metrics.Collector
	// ProfileLabel, when non-empty, tags the run's goroutine with a
	// "crossmatch.run" pprof label so CPU profiles of a parallel
	// experiment attribute samples to individual runs.
	ProfileLabel string
	// Faults, when non-nil, injects cooperation faults (latency spikes,
	// dropped probes, transient claim errors, scheduled platform
	// outages) into the hub's probe and claim path and guards every
	// partner platform with a circuit breaker, so the COM matchers
	// degrade gracefully to inner-only matching against dark partners.
	// Fault randomness is seeded (Plan.Seed, falling back to Seed), so
	// sequential faulted runs stay reproducible; matcher randomness is
	// never touched, and a nil plan leaves the run bit-identical to a
	// fault-free build. See internal/fault.
	Faults *fault.Plan
	// ProbeDeadline, when positive, overrides the fault plan's virtual
	// per-call deadline for probes and claims. Only meaningful together
	// with Faults.
	ProbeDeadline time.Duration
	// Trace, when non-nil, records per-request decision spans (stage
	// timings, outcome, payment, faults) into the tracer's bounded
	// per-platform rings. Tracing never draws from matcher RNGs, so a
	// sequential run's matching result is bit-identical with tracing on,
	// off, or sampled. Safe to share one tracer across the unit runs of
	// an experiment, like Metrics. See internal/trace.
	Trace *trace.Tracer
	// TraceSample overrides the tracer's sampling rate for this run:
	// zero inherits the tracer's configured rate, a value in (0, 1] sets
	// it, and a negative value disables recording for this run. Only
	// meaningful together with Trace.
	TraceSample float64
	// PricingScan switches the COM matchers' pricing quoter from the
	// precomputed History CDF-table path (the default) to the exact
	// sorted-values scan. The two paths produce bit-identical quotes and
	// therefore identical results; the knob exists to A/B their cost in
	// one run (crossmatch.WithPricingTables).
	PricingScan bool
	// Shards, when > 1, runs the geo-sharded engine: matching state is
	// partitioned by spatial grid cell (the internal/cells rendezvous
	// assignment the fleet router also uses), each shard drives its own
	// matcher instances and hub on its own goroutine, and
	// boundary-crossing requests go through the async claim protocol of
	// internal/shard. Results are bit-identical run to run (sequence
	// barriers order cross-shard work) under the documented cell-major,
	// ID-canonical merge order, but differ from the unsharded engine's:
	// inner matching is shard-local and cooperation reaches only the
	// shards a request's eligibility disk touches. Zero or one keeps the
	// unsharded runtime, bit-identical to previous releases. Shards > 1
	// rejects ServiceTicks, PlatformParallel, Trace and windowed
	// matchers with ErrShardUnsupported.
	Shards int
	// ShardReach is the maximum worker eligibility radius the sharded
	// engine plans boundary crossings for. Stream runs derive it (the
	// stream's max worker radius) when zero and reject streams that
	// exceed an explicit value; the incremental Engine cannot see future
	// arrivals, so it requires ShardReach > 0 and rejects workers whose
	// radius exceeds it. Ignored when Shards <= 1.
	ShardReach float64
	// ShardStallTimeout arms the wall-clock watchdog on the sharded
	// engine's gate waits: a stuck shard (or a claim stalled behind one)
	// degrades to local-only matching after this long, with the lagging
	// shard's circuit breaker recording the failure. Zero — the default
	// — waits forever and keeps the run deterministic. Ignored when
	// Shards <= 1.
	ShardStallTimeout time.Duration
}

// PlatformResult aggregates one platform's outcomes.
type PlatformResult struct {
	ID       core.PlatformID
	Name     string // matcher name
	Stats    online.Stats
	Matching *core.Matching
	// ResponseTotal is the summed wall-clock time spent deciding
	// requests; ResponseMax the slowest single decision.
	ResponseTotal time.Duration
	ResponseMax   time.Duration
	// Latency holds the full decision-latency distribution (mean, max
	// and sampled percentiles).
	Latency *stats.Reservoir
}

// MeanResponse returns the average decision latency per request.
func (r *PlatformResult) MeanResponse() time.Duration {
	if r.Stats.Requests == 0 {
		return 0
	}
	return r.ResponseTotal / time.Duration(r.Stats.Requests)
}

// Result is the outcome of a simulation run.
type Result struct {
	Platforms map[core.PlatformID]*PlatformResult
	// Lent counts workers each platform lent to others through the hub.
	Lent map[core.PlatformID]int
	// Recycled counts worker re-arrivals (only with ServiceTicks > 0),
	// including workers whose re-arrival falls after the last stream
	// event: they are flushed into their waiting lists at end of stream
	// so the count matches the number of completed services.
	Recycled int
}

// TotalRevenue sums revenue across platforms.
func (r *Result) TotalRevenue() float64 {
	t := 0.0
	for _, p := range r.Platforms {
		t += p.Stats.Revenue
	}
	return t
}

// TotalServed sums served requests across platforms.
func (r *Result) TotalServed() int {
	t := 0
	for _, p := range r.Platforms {
		t += p.Stats.Served
	}
	return t
}

// CooperativeServed sums accepted cooperative requests (|CoR|).
func (r *Result) CooperativeServed() int {
	t := 0
	for _, p := range r.Platforms {
		t += p.Stats.ServedOuter
	}
	return t
}

// AcceptanceRatio aggregates AcpRt across platforms.
func (r *Result) AcceptanceRatio() float64 {
	att, ok := 0, 0
	for _, p := range r.Platforms {
		att += p.Stats.CoopAttempted
		ok += p.Stats.ServedOuter
	}
	if att == 0 {
		return 0
	}
	return float64(ok) / float64(att)
}

// MeanPaymentRate aggregates the outer payment rate v'/v across
// platforms' cooperative assignments.
func (r *Result) MeanPaymentRate() float64 {
	sum, n := 0.0, 0
	for _, p := range r.Platforms {
		sum += p.Stats.PaymentRate
		n += p.Stats.ServedOuter
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Validate re-checks every platform's matching.
func (r *Result) Validate() error {
	for id, p := range r.Platforms {
		if err := p.Matching.Validate(); err != nil {
			return fmt.Errorf("platform %d: %w", id, err)
		}
	}
	return nil
}

// Run executes the stream against one matcher per platform, cooperating
// through a shared hub. The factory is called once per platform present
// in the stream.
func Run(stream *core.Stream, factory MatcherFactory, cfg Config) (*Result, error) {
	return RunContext(context.Background(), stream, factory, cfg)
}

// cancelCheckMask throttles the context poll in the event loop: the
// ctx.Err() call costs more than a cheap decision, so it runs every 64
// events. Cancellation latency stays far below any human timeout.
const cancelCheckMask = 63

// RunContext is Run with cooperative cancellation: when ctx is canceled
// mid-stream, the simulation stops at the next event boundary and
// returns the partial Result accumulated so far alongside an error
// wrapping ctx.Err() (test with errors.Is(err, context.Canceled) or
// context.DeadlineExceeded). Under Config.PlatformParallel every
// platform goroutine observes the cancellation and the partial Result is
// returned once all of them have stopped; nothing leaks either way.
func RunContext(ctx context.Context, stream *core.Stream, factory MatcherFactory, cfg Config) (res *Result, err error) {
	if cfg.ProfileLabel != "" {
		pprof.Do(ctx, pprof.Labels("crossmatch.run", cfg.ProfileLabel), func(ctx context.Context) {
			res, err = runContext(ctx, stream, factory, cfg)
		})
		return res, err
	}
	return runContext(ctx, stream, factory, cfg)
}

func runContext(ctx context.Context, stream *core.Stream, factory MatcherFactory, cfg Config) (*Result, error) {
	if cfg.Shards > 1 {
		return runSharded(ctx, stream, factory, cfg)
	}
	s, err := newRunState(stream, factory, cfg)
	if err != nil {
		return nil, err
	}
	// Registration is complete: from here the hub's configuration is
	// read lock-free by the platform goroutines, so late registration
	// must fail loudly rather than race.
	s.hub.seal()
	if cfg.PlatformParallel && len(s.pids) > 1 {
		return s.runParallel(ctx)
	}
	return s.runSequential(ctx)
}

// runState is one run's shared machinery: the hub, the per-platform
// matchers and result slots, and the recycled-worker ID allocator. Under
// the concurrent runtime the maps are read-only after newRunState; each
// per-platform slot (PlatformResult, matcher) is touched only by the
// goroutine driving that platform.
type runState struct {
	cfg      Config
	stream   *core.Stream
	hub      *Hub
	pids     []core.PlatformID
	matchers map[core.PlatformID]online.Matcher
	labels   map[core.PlatformID]string
	res      *Result
	// windowed lists the platforms whose matcher defers decisions into
	// virtual-time windows (BatchCOM), in ascending pid order — the tie
	// order when several windows fall due at the same virtual time.
	// Empty for the greedy matchers, in which case settleDue degenerates
	// to the plain recycle flush.
	windowed []windowedEntry
	// onFlush, when non-nil, receives every window-flushed decision as
	// it is folded (the serving layer's hook for answering deferred
	// requests). Never called for immediate (non-deferred) decisions.
	onFlush func(RequestDecision)
	// nextID allocates IDs for recycled workers. Sequentially it counts
	// up from maxWorkerID+1 in event order exactly as before; in
	// parallel the IDs are unique but their platform assignment depends
	// on scheduling.
	nextID atomic.Int64
}

// windowedEntry pairs a windowed matcher with its platform.
type windowedEntry struct {
	pid core.PlatformID
	m   online.WindowedMatcher
}

// windowedFor returns the windowed-entry subset for one platform — what
// a per-platform goroutine may drive under PlatformParallel, where
// another platform's matcher must never be advanced from this
// goroutine.
func (s *runState) windowedFor(pid core.PlatformID) []windowedEntry {
	for i := range s.windowed {
		if s.windowed[i].pid == pid {
			return s.windowed[i : i+1]
		}
	}
	return nil
}

func newRunState(stream *core.Stream, factory MatcherFactory, cfg Config) (*runState, error) {
	s, err := newRunStateFor(stream.Platforms(), factory, cfg)
	if err != nil {
		return nil, err
	}
	s.stream = stream
	s.nextID.Store(maxWorkerID(stream))
	return s, nil
}

// newRunStateFor builds the run machinery from an explicit platform set
// instead of a pre-built stream — the seam the incremental Engine (and
// through it the serving layer) uses, where arrivals are not known up
// front. The platform order determines per-platform RNG derivation, so
// callers wanting bit-parity with a stream run must pass
// stream.Platforms() (ascending IDs).
func newRunStateFor(pids []core.PlatformID, factory MatcherFactory, cfg Config) (*runState, error) {
	return newRunStateWith(pids, factory, cfg, nil, true)
}

// newRunStateWith is newRunStateFor with the two seams the sharded
// runtime needs: wrapView, when non-nil, wraps each platform's hub view
// before the matcher factory sees it (the shard layer splices its
// cross-shard cooperation view in here), and announce=false suppresses
// the RunStarted metric so a run building one state per shard counts as
// one run, not Shards runs.
func newRunStateWith(pids []core.PlatformID, factory MatcherFactory, cfg Config, wrapView func(core.PlatformID, online.CoopView) online.CoopView, announce bool) (*runState, error) {
	if len(pids) == 0 {
		return nil, fmt.Errorf("platform: no platforms to run")
	}
	s := &runState{
		cfg:      cfg,
		hub:      NewHub(),
		pids:     append([]core.PlatformID(nil), pids...),
		matchers: map[core.PlatformID]online.Matcher{},
		labels:   map[core.PlatformID]string{},
		res:      &Result{Platforms: map[core.PlatformID]*PlatformResult{}},
	}
	s.hub.CoopDisabled = cfg.DisableCoop
	s.hub.SetMetrics(cfg.Metrics)

	root := rand.New(rand.NewSource(cfg.Seed))
	for _, pid := range s.pids {
		rng := rand.New(rand.NewSource(root.Int63()))
		view := s.hub.ViewFor(pid)
		if wrapView != nil {
			view = wrapView(pid, view)
		}
		m := factory(pid, view, rng)
		if sw, ok := m.(pricingSwitcher); ok {
			sw.SetPricingScan(cfg.PricingScan)
		}
		holder, ok := m.(poolHolder)
		if !ok {
			return nil, fmt.Errorf("platform: matcher %q does not expose its pool", m.Name())
		}
		if err := s.hub.RegisterPlatform(pid, holder.Pool()); err != nil {
			return nil, err
		}
		s.matchers[pid] = m
		if wm, ok := m.(online.WindowedMatcher); ok {
			s.windowed = append(s.windowed, windowedEntry{pid: pid, m: wm})
		}
		s.res.Platforms[pid] = &PlatformResult{
			ID: pid, Name: m.Name(), Matching: core.NewMatching(),
			Latency: stats.NewReservoir(0, cfg.Seed^int64(pid)),
		}
	}

	var inj *fault.Injector
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("platform: %w", err)
		}
		plan := cfg.Faults
		if cfg.ProbeDeadline > 0 {
			plan = plan.Clone()
			plan.Retry.Deadline = cfg.ProbeDeadline
		}
		inj = fault.New(plan, cfg.Seed, s.pids, cfg.Metrics)
		s.hub.SetFaults(inj)
	}

	if cfg.Trace != nil {
		recs := make(map[core.PlatformID]*trace.Recorder, len(s.pids))
		for _, pid := range s.pids {
			rc := cfg.Trace.Recorder(cfg.Seed, pid, s.matchers[pid].Name(), cfg.TraceSample)
			recs[pid] = rc
			if tb, ok := s.matchers[pid].(traceBinder); ok {
				tb.BindTrace(rc)
			}
		}
		if inj != nil {
			// Attribute injected faults and breaker transitions to the
			// decision in flight on the viewing platform. The observer runs
			// on the viewer's goroutine, matching the recorder's
			// single-goroutine contract; observation never alters fault
			// outcomes or RNG draws.
			inj.SetObserver(func(viewer, partner core.PlatformID, ev fault.Event) {
				if sp := recs[viewer].Active(); sp != nil {
					sp.Fault(partner, string(ev.Kind), ev.Latency)
				}
			})
		}
	}

	if announce {
		cfg.Metrics.RunStarted()
	}
	// Per-platform latency labels are built once; the hot loop must not
	// format strings.
	if cfg.Metrics != nil {
		for _, pid := range s.pids {
			s.labels[pid] = fmt.Sprintf("platform-%d", pid)
		}
	}
	return s, nil
}

// deliver puts a worker (fresh or recycled) into its platform's waiting
// list and registers it with the hub.
func (s *runState) deliver(w *core.Worker) error {
	if err := s.hub.WorkerArrived(w); err != nil {
		return err
	}
	s.matchers[w.Platform].WorkerArrives(w)
	return nil
}

// handleRequest runs one request through its platform's matcher and
// folds the decision into results and metrics. It returns the matcher's
// decision plus the recycled worker to be re-delivered later, if any.
// Only the goroutine driving e.Request.Platform may call it for that
// platform.
func (s *runState) handleRequest(e core.Event) (online.Decision, *core.Worker, error) {
	r := e.Request
	pr := s.res.Platforms[r.Platform]
	m := s.matchers[r.Platform]
	start := time.Now()
	d := m.RequestArrives(r)
	el := time.Since(start)
	if d.Deferred {
		// A windowed matcher buffered the request; nothing is decided
		// yet. Stats, latency and the metrics funnel are all observed at
		// flush time (foldWindow), so folding the placeholder here would
		// double-count the request.
		return d, nil, nil
	}
	pr.ResponseTotal += el
	if el > pr.ResponseMax {
		pr.ResponseMax = el
	}
	pr.Latency.Observe(el)
	pr.Stats.Observe(d)
	if mc := s.cfg.Metrics; mc != nil {
		mc.ObserveLatency(s.labels[r.Platform], el)
		mc.AddProbes(d.Probes)
		mc.AddClaimRetries(d.ClaimRetries)
		if d.CoopAttempted {
			mc.CoopAttempt()
		}
		switch {
		case d.Served && d.Assignment.Outer:
			mc.MatchOuter()
		case d.Served:
			mc.MatchInner()
		default:
			mc.Reject()
		}
	}
	if !d.Served {
		return d, nil, nil
	}
	// Release the hub's per-worker record. For inner assignments this is
	// the eviction keeping the hub tables bounded; for outer ones Claim
	// already did it and this is a no-op.
	s.hub.WorkerAssigned(d.Assignment.Worker.ID)
	if err := pr.Matching.Add(d.Assignment); err != nil {
		return d, nil, fmt.Errorf("platform %d: %w", r.Platform, err)
	}
	if s.cfg.ServiceTicks <= 0 {
		return d, nil, nil
	}
	w := d.Assignment.Worker
	earned := d.Assignment.Request.Value
	if d.Assignment.Outer {
		earned = d.Assignment.Payment
	}
	return d, &core.Worker{
		ID:       s.nextID.Add(1),
		Arrival:  e.Time + s.cfg.ServiceTicks,
		Loc:      d.Assignment.Request.Loc,
		Radius:   w.Radius,
		Platform: w.Platform,
		History:  append(append([]float64(nil), w.History...), earned),
	}, nil
}

// settleDue settles everything due at or before bound, in virtual-time
// order: recycled workers re-join their waiting lists and windowed
// matchers flush their open windows, interleaved by due time (a recycled
// worker beats a window flushing at the same tick — it was already
// waiting when the window closed; equal window dues flush in ascending
// pid order, the wins slice order). Window flushes can mint recycled
// workers whose re-arrival is still within bound, so the loop keeps
// settling until nothing is due. With no windowed matchers this is
// exactly the old recycle-flush loop.
func (s *runState) settleDue(recycle *recycleHeap, recycled *int, bound core.Time, wins []windowedEntry) error {
	for {
		recDue := len(*recycle) > 0 && (*recycle)[0].Arrival <= bound
		winIdx := -1
		var winAt core.Time
		for i := range wins {
			if t, open := wins[i].m.NextFlush(); open && t <= bound && (winIdx < 0 || t < winAt) {
				winIdx, winAt = i, t
			}
		}
		switch {
		case !recDue && winIdx < 0:
			return nil
		case recDue && (winIdx < 0 || (*recycle)[0].Arrival <= winAt):
			w := heap.Pop(recycle).(*core.Worker)
			if err := s.deliver(w); err != nil {
				return err
			}
			*recycled++
		default:
			we := wins[winIdx]
			start := time.Now()
			wds := we.m.Advance(winAt)
			el := time.Since(start)
			if err := s.foldWindow(we.pid, wds, el, recycle); err != nil {
				return err
			}
		}
	}
}

// foldWindow folds one window flush's decisions into results, metrics
// and the recycle heap — the flush-time counterpart of handleRequest's
// per-arrival bookkeeping. The flush's wall-clock cost is attributed
// evenly across its decisions so latency aggregates stay comparable
// with the greedy matchers' per-request observations.
func (s *runState) foldWindow(pid core.PlatformID, wds []online.WindowDecision, el time.Duration, recycle *recycleHeap) error {
	if len(wds) == 0 {
		return nil
	}
	pr := s.res.Platforms[pid]
	pr.ResponseTotal += el
	if el > pr.ResponseMax {
		pr.ResponseMax = el
	}
	share := el / time.Duration(len(wds))
	for i := range wds {
		wd := &wds[i]
		d := wd.Decision
		pr.Latency.Observe(share)
		pr.Stats.Observe(d)
		if mc := s.cfg.Metrics; mc != nil {
			mc.ObserveLatency(s.labels[pid], share)
			mc.AddProbes(d.Probes)
			mc.AddClaimRetries(d.ClaimRetries)
			if d.CoopAttempted {
				mc.CoopAttempt()
			}
			switch {
			case d.Served && d.Assignment.Outer:
				mc.MatchOuter()
			case d.Served:
				mc.MatchInner()
			default:
				mc.Reject()
			}
		}
		if d.Served {
			s.hub.WorkerAssigned(d.Assignment.Worker.ID)
			if err := pr.Matching.Add(d.Assignment); err != nil {
				return fmt.Errorf("platform %d: %w", pid, err)
			}
			if s.cfg.ServiceTicks > 0 {
				w := d.Assignment.Worker
				earned := d.Assignment.Request.Value
				if d.Assignment.Outer {
					earned = d.Assignment.Payment
				}
				heap.Push(recycle, &core.Worker{
					ID:       s.nextID.Add(1),
					Arrival:  wd.At + s.cfg.ServiceTicks,
					Loc:      d.Assignment.Request.Loc,
					Radius:   w.Radius,
					Platform: w.Platform,
					History:  append(append([]float64(nil), w.History...), earned),
				})
			}
		}
		if s.onFlush != nil {
			s.onFlush(requestDecisionOf(wd.Request, d, wd.At))
		}
	}
	return nil
}

// consume drives one event sequence to completion: recycled workers and
// window flushes due before each event are settled first, then the
// event itself. At end of stream everything still pending — recycled
// workers after the last event, the final open window — is settled so
// every completed service counts as a re-arrival and every buffered
// request gets its decision. wins is the subset of windowed matchers
// this consumer drives (all of them sequentially; one per goroutine
// under PlatformParallel). The returned recycled count covers this
// consumer only; a cancellation error wraps ctx.Err() and is formatted
// without the "platform:" prefix so callers can add run-level context.
func (s *runState) consume(ctx context.Context, events []core.Event, total int, wins []windowedEntry) (recycled int, err error) {
	var recycle recycleHeap
	for i, e := range events {
		if i&cancelCheckMask == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return recycled, fmt.Errorf("run stopped after %d of %d events: %w", i, total, cerr)
			}
		}
		if err := s.settleDue(&recycle, &recycled, e.Time, wins); err != nil {
			return recycled, err
		}
		switch e.Kind {
		case core.WorkerArrival:
			if err := s.deliver(e.Worker); err != nil {
				return recycled, err
			}
		case core.RequestArrival:
			_, reborn, err := s.handleRequest(e)
			if err != nil {
				return recycled, err
			}
			if reborn != nil {
				heap.Push(&recycle, reborn)
			}
		}
	}
	if err := s.settleDue(&recycle, &recycled, core.Time(math.MaxInt64), wins); err != nil {
		return recycled, err
	}
	return recycled, nil
}

// runSequential is the deterministic single-goroutine runtime: all
// platforms' events interleave in stream order on one goroutine, and the
// result is a pure function of (stream, factory, Seed).
func (s *runState) runSequential(ctx context.Context) (*Result, error) {
	recycled, err := s.consume(ctx, s.stream.Events(), s.stream.Len(), s.windowed)
	s.res.Recycled = recycled
	if err != nil {
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			s.res.Lent = s.hub.Lent()
			s.foldPricing()
			return s.res, fmt.Errorf("platform: %w", err)
		}
		return nil, err
	}
	s.res.Lent = s.hub.Lent()
	s.foldPricing()
	return s.res, nil
}

// foldPricing folds every matcher's pricing-quoter counters into the
// run's metrics collector. Call it only after the goroutines driving the
// matchers have stopped: quoter stats are plain integers owned by the
// matcher goroutine.
func (s *runState) foldPricing() {
	if s.cfg.Metrics == nil {
		return
	}
	for _, pid := range s.pids {
		if pp, ok := s.matchers[pid].(pricingStatsProvider); ok {
			st := pp.PricingStats()
			s.cfg.Metrics.AddPricing(metrics.PricingStats{
				RevenueQuotes:    st.RevenueQuotes,
				ThresholdQuotes:  st.ThresholdQuotes,
				MonteCarloQuotes: st.MonteCarloQuotes,
				ProbEvals:        st.ProbEvals,
				TableHits:        st.TableHits,
				ScratchReuses:    st.ScratchReuses,
				ScratchAllocs:    st.ScratchAllocs,
			})
		}
	}
}

func maxWorkerID(stream *core.Stream) int64 {
	var maxID int64
	for _, w := range stream.Workers() {
		if w.ID > maxID {
			maxID = w.ID
		}
	}
	return maxID
}

type recycleHeap []*core.Worker

func (h recycleHeap) Len() int           { return len(h) }
func (h recycleHeap) Less(i, j int) bool { return h[i].Arrival < h[j].Arrival }
func (h recycleHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *recycleHeap) Push(x interface{}) {
	*h = append(*h, x.(*core.Worker))
}
func (h *recycleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	*h = old[:n-1]
	return w
}
