package platform

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/fault"
	"crossmatch/internal/geo"
	"crossmatch/internal/metrics"
	"crossmatch/internal/online"
	"crossmatch/internal/trace"
	"crossmatch/internal/workload"
)

// assertGloballyUnique checks the whole-run claim-protocol invariant:
// no worker serves two requests anywhere, across platforms and shards.
func assertGloballyUnique(t *testing.T, res *Result) {
	t.Helper()
	seen := map[int64]bool{}
	for pid, pr := range res.Platforms {
		for _, a := range pr.Matching.Assignments() {
			if seen[a.Worker.ID] {
				t.Fatalf("worker %d assigned twice (second on platform %d)", a.Worker.ID, pid)
			}
			seen[a.Worker.ID] = true
		}
	}
}

// TestShardedRunDeterministic: shards>1 must be bit-identical run to
// run — the frontier gates serialize every cross-shard interaction by
// sequence number, so scheduling cannot leak into results.
func TestShardedRunDeterministic(t *testing.T) {
	stream := feedTestStream(t, 600, 200, 11)
	for _, alg := range []string{AlgDemCOM, AlgRamCOM, AlgTOTA} {
		factory, err := FactoryConfigured(alg, AlgConfig{MaxValue: stream.MaxValue()})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Seed: 42, Shards: 4}
		want, err := Run(stream, factory, cfg)
		if err != nil {
			t.Fatalf("%s: first sharded run: %v", alg, err)
		}
		if err := want.Validate(); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		assertGloballyUnique(t, want)
		for i := 0; i < 3; i++ {
			got, err := Run(stream, factory, cfg)
			if err != nil {
				t.Fatalf("%s: rerun %d: %v", alg, i, err)
			}
			assertSameResult(t, want, got)
		}
	}
}

// TestShardedSingleShardMatchesUnsharded drives the sharded machinery
// with one shard (runSharded directly — runContext routes Shards<=1 to
// the unsharded path) and requires bit-parity with the plain engine:
// one shard keeps the run seed, sees every event in stream order, never
// classifies a boundary, and merges trivially.
func TestShardedSingleShardMatchesUnsharded(t *testing.T) {
	stream := feedTestStream(t, 500, 150, 3)
	for _, alg := range []string{AlgTOTA, AlgDemCOM, AlgRamCOM} {
		factory, err := FactoryConfigured(alg, AlgConfig{MaxValue: stream.MaxValue()})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(stream, factory, Config{Seed: 7})
		if err != nil {
			t.Fatalf("%s: unsharded: %v", alg, err)
		}
		got, err := runSharded(context.Background(), stream, factory, Config{Seed: 7, Shards: 1})
		if err != nil {
			t.Fatalf("%s: structurally sharded: %v", alg, err)
		}
		assertSameResult(t, want, got)
	}
}

// TestShardedEngineMatchesShardedRun: replay parity — feeding a stream
// through the incremental sharded Engine reproduces the bulk sharded
// Run bit for bit (same sequence numbers, same boundary classification,
// same gate order).
func TestShardedEngineMatchesShardedRun(t *testing.T) {
	stream := feedTestStream(t, 500, 160, 13)
	reach := maxWorkerRadius(stream)
	for _, alg := range []string{AlgDemCOM, AlgRamCOM} {
		factory, err := FactoryConfigured(alg, AlgConfig{MaxValue: stream.MaxValue()})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Seed: 5, Shards: 3, ShardReach: reach}
		want, err := Run(stream, factory, cfg)
		if err != nil {
			t.Fatalf("%s: bulk: %v", alg, err)
		}
		eng, err := NewEngine(stream.Platforms(), factory, cfg)
		if err != nil {
			t.Fatalf("%s: NewEngine: %v", alg, err)
		}
		if err := eng.SetRecycleBase(maxWorkerID(stream)); err != nil {
			t.Fatalf("SetRecycleBase: %v", err)
		}
		if eng.Windowed() {
			t.Fatalf("%s: sharded engine claims windowed", alg)
		}
		for _, ev := range stream.Events() {
			if _, err := eng.Process(ev); err != nil {
				t.Fatalf("%s: Process: %v", alg, err)
			}
		}
		if st := eng.ShardStats(); len(st) != 3 {
			t.Fatalf("%s: ShardStats len %d, want 3", alg, len(st))
		}
		got, err := eng.Finish()
		if err != nil {
			t.Fatalf("%s: Finish: %v", alg, err)
		}
		assertSameResult(t, want, got)
		if _, err := eng.Process(core.Event{}); !errors.Is(err, ErrEngineClosed) {
			t.Fatalf("%s: Process after Finish: %v", alg, err)
		}
	}
}

// TestShardedCrossShardBorrowsHappen pins that the claim protocol
// actually commits across boundaries on a dense city — otherwise every
// other test here would vacuously pass on local-only matching.
func TestShardedCrossShardBorrowsHappen(t *testing.T) {
	stream := feedTestStream(t, 800, 150, 17)
	factory, err := FactoryConfigured(AlgDemCOM, AlgConfig{MaxValue: stream.MaxValue()})
	if err != nil {
		t.Fatal(err)
	}
	mc := metrics.New()
	res, err := Run(stream, factory, Config{Seed: 2, Shards: 4, Metrics: mc})
	if err != nil {
		t.Fatal(err)
	}
	assertGloballyUnique(t, res)
	rep := mc.Snapshot()
	if rep.Counters.CrossShardBorrows == 0 {
		t.Fatal("no cross-shard borrow committed on a dense city — boundary cooperation is dead")
	}
	if len(rep.Shards) != 4 {
		t.Fatalf("metrics shard section has %d entries, want 4", len(rep.Shards))
	}
	var applied, boundary, borrows int64
	for _, s := range rep.Shards {
		applied += s.Applied
		boundary += s.BoundaryEvents
		borrows += s.Borrows
	}
	if applied != int64(stream.Len()) {
		t.Fatalf("shards applied %d events, stream has %d", applied, stream.Len())
	}
	if boundary == 0 {
		t.Fatal("no boundary events classified")
	}
	if borrows != rep.Counters.CrossShardBorrows {
		t.Fatalf("per-shard borrows %d != counter %d", borrows, rep.Counters.CrossShardBorrows)
	}
	// The cooperation ledger must stay balanced across shard hubs: the
	// outer assignments some platform booked equal the workers the
	// other platforms lent (locally or across shards).
	lent := 0
	for _, n := range res.Lent {
		lent += n
	}
	if outer := res.CooperativeServed(); lent != outer {
		t.Fatalf("lent %d != served outer %d", lent, outer)
	}
}

// TestShardedRejectsUnsupported pins the typed errors for the feature
// combinations the sharded runtime refuses.
func TestShardedRejectsUnsupported(t *testing.T) {
	stream := feedTestStream(t, 40, 20, 1)
	tota, _ := FactoryConfigured(AlgTOTA, AlgConfig{})
	batch, _ := FactoryConfigured(AlgBatchCOM, AlgConfig{Window: 8})
	cases := []struct {
		name    string
		factory MatcherFactory
		cfg     Config
	}{
		{"service-ticks", tota, Config{Shards: 2, ServiceTicks: 3}},
		{"platform-parallel", tota, Config{Shards: 2, PlatformParallel: true}},
		{"trace", tota, Config{Shards: 2, Trace: trace.New(trace.Options{})}},
		{"windowed", batch, Config{Shards: 2}},
	}
	for _, tc := range cases {
		if _, err := Run(stream, tc.factory, tc.cfg); !errors.Is(err, ErrShardUnsupported) {
			t.Errorf("%s: Run err = %v, want ErrShardUnsupported", tc.name, err)
		}
		cfg := tc.cfg
		cfg.ShardReach = 2
		if _, err := NewEngine(stream.Platforms(), tc.factory, cfg); !errors.Is(err, ErrShardUnsupported) {
			t.Errorf("%s: NewEngine err = %v, want ErrShardUnsupported", tc.name, err)
		}
	}
	// Reach validation: the engine needs an explicit reach...
	if _, err := NewEngine(stream.Platforms(), tota, Config{Shards: 2}); err == nil {
		t.Error("sharded engine without ShardReach accepted")
	}
	// ...a stream run rejects a reach the stream exceeds...
	if _, err := Run(stream, tota, Config{Shards: 2, ShardReach: 0.01}); !errors.Is(err, ErrShardReach) {
		t.Error("stream exceeding explicit ShardReach accepted")
	}
	// ...and the engine rejects an over-reach worker at arrival.
	eng, err := NewEngine(stream.Platforms(), tota, Config{Shards: 2, ShardReach: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	w := &core.Worker{ID: 900, Arrival: 1, Loc: geo.Point{}, Radius: 3, Platform: 1, History: []float64{1}}
	if _, err := eng.Process(core.Event{Time: 1, Kind: core.WorkerArrival, Worker: w}); !errors.Is(err, ErrShardReach) {
		t.Fatalf("over-reach worker: %v, want ErrShardReach", err)
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedChaos runs the full chaos drill of the satellite task:
// injected cooperation-latency faults, a shard wedged mid-run longer
// than the stall watchdog, and a live engine feed — the run must
// complete, degrade (stall counters move), and still produce a globally
// valid matching.
func TestShardedChaos(t *testing.T) {
	stream := feedTestStream(t, 600, 200, 23)
	factory, err := FactoryConfigured(AlgDemCOM, AlgConfig{MaxValue: stream.MaxValue()})
	if err != nil {
		t.Fatal(err)
	}
	var stalled atomic.Int64
	testShardHold = func(si int, seq int64) {
		// Wedge shard 1 on a stride of its events, well past the
		// watchdog, so claim gates targeting it time out and degrade.
		if si == 1 && seq%97 == 0 {
			stalled.Add(1)
			time.Sleep(8 * time.Millisecond)
		}
	}
	defer func() { testShardHold = nil }()
	mc := metrics.New()
	cfg := Config{
		Seed:              3,
		Shards:            3,
		ShardStallTimeout: 2 * time.Millisecond,
		Metrics:           mc,
		Faults: &fault.Plan{
			LatencyRate: 0.3,
			LatencyMin:  time.Millisecond,
			LatencyMax:  4 * time.Millisecond,
		},
	}
	res, err := Run(stream, factory, cfg)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("chaos result invalid: %v", err)
	}
	assertGloballyUnique(t, res)
	if stalled.Load() == 0 {
		t.Fatal("hold hook never fired — the drill tested nothing")
	}
	rep := mc.Snapshot()
	if rep.Counters.ShardStalls == 0 {
		t.Log("note: no gate wait hit the watchdog this run (timing-dependent)")
	}
	if res.TotalServed() == 0 {
		t.Fatal("chaos run served nothing")
	}
}

// TestHubClaimConcurrentAccounting hammers the claim commit point
// directly: many goroutines race for one worker through the same path
// cross-shard borrows use; exactly one must win and every loser must be
// accounted as a claim conflict.
func TestHubClaimConcurrentAccounting(t *testing.T) {
	const claimers = 16
	mc := metrics.New()
	h := NewHub()
	h.SetMetrics(mc)
	p1, p2 := online.NewPool(nil), online.NewPool(nil)
	if err := h.RegisterPlatform(1, p1); err != nil {
		t.Fatal(err)
	}
	if err := h.RegisterPlatform(2, p2); err != nil {
		t.Fatal(err)
	}
	w := &core.Worker{ID: 77, Arrival: 0, Loc: geo.Point{}, Radius: 5, Platform: 2, History: []float64{1}}
	if err := h.WorkerArrived(w); err != nil {
		t.Fatal(err)
	}
	p2.Add(w)
	h.seal()
	var wins atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < claimers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if h.claim(1, 77, 10, false) {
				wins.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d claims won, want exactly 1", wins.Load())
	}
	if p2.Len() != 0 {
		t.Fatal("winning claim did not remove the worker")
	}
	if got := mc.Snapshot().Counters.ClaimConflicts; got != claimers-1 {
		t.Fatalf("claim conflicts %d, want %d", got, claimers-1)
	}
}

// TestShardedRunCancellation: a canceled context stops every shard loop
// and returns the partial result with the wrapped context error,
// mirroring the unsharded contract.
func TestShardedRunCancellation(t *testing.T) {
	stream := feedTestStream(t, 2000, 400, 29)
	factory, _ := FactoryConfigured(AlgTOTA, AlgConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, stream, factory, Config{Seed: 1, Shards: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
}

func BenchmarkShardedEngine(b *testing.B) {
	cfg, err := workload.Synthetic(4000, 1200, 1.0, "real")
	if err != nil {
		b.Fatal(err)
	}
	stream, err := workload.Generate(cfg, 77)
	if err != nil {
		b.Fatal(err)
	}
	factory, err := FactoryConfigured(AlgRamCOM, AlgConfig{MaxValue: stream.MaxValue()})
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(stream, factory, Config{Seed: 9, Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalServed() == 0 {
					b.Fatal("nothing served")
				}
			}
		})
	}
}
