package platform

import (
	"fmt"
	"math"

	"crossmatch/internal/core"
	"crossmatch/internal/parallel"
)

// RunEnsemble executes one independent simulation per seed, in parallel,
// and returns the per-seed results in seed order. gen builds the input
// stream for a seed (streams must not be shared between runs — matchers
// mutate nothing in them, but the generator is cheap and isolation keeps
// every run trivially race-free); base supplies the non-seed
// configuration. parallelism <= 0 uses GOMAXPROCS.
//
// The experiment harness uses it to average the randomized algorithms
// (RamCOM's threshold draw, DemCOM's sampling) over repeats without
// paying wall-clock linearly.
func RunEnsemble(gen func(seed int64) (*core.Stream, error), factory MatcherFactory, base Config, seeds []int64, parallelism int) ([]*Result, error) {
	if gen == nil {
		return nil, fmt.Errorf("platform: nil stream generator")
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("platform: no seeds")
	}
	return parallel.Map(parallelism, len(seeds), func(i int) (*Result, error) {
		seed := seeds[i]
		stream, err := gen(seed)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		cfg := base
		cfg.Seed = seed
		res, err := Run(stream, factory, cfg)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		return res, nil
	})
}

// EnsembleSummary aggregates an ensemble's headline metrics.
type EnsembleSummary struct {
	Runs              int
	MeanRevenue       float64
	MeanServed        float64
	MeanCooperative   float64
	MeanAcceptance    float64
	MeanPaymentRate   float64
	MinRevenue        float64
	MaxRevenue        float64
	RevenueStdDevFrac float64 // sample std-dev over mean, 0 for 1 run
}

// Summarize reduces ensemble results to their means and spread.
func Summarize(results []*Result) (EnsembleSummary, error) {
	if len(results) == 0 {
		return EnsembleSummary{}, fmt.Errorf("platform: empty ensemble")
	}
	s := EnsembleSummary{Runs: len(results)}
	revs := make([]float64, len(results))
	for i, r := range results {
		if r == nil {
			return EnsembleSummary{}, fmt.Errorf("platform: nil result at %d", i)
		}
		rev := r.TotalRevenue()
		revs[i] = rev
		s.MeanRevenue += rev
		s.MeanServed += float64(r.TotalServed())
		s.MeanCooperative += float64(r.CooperativeServed())
		s.MeanAcceptance += r.AcceptanceRatio()
		s.MeanPaymentRate += r.MeanPaymentRate()
		if i == 0 || rev < s.MinRevenue {
			s.MinRevenue = rev
		}
		if rev > s.MaxRevenue {
			s.MaxRevenue = rev
		}
	}
	n := float64(len(results))
	s.MeanRevenue /= n
	s.MeanServed /= n
	s.MeanCooperative /= n
	s.MeanAcceptance /= n
	s.MeanPaymentRate /= n
	if len(results) > 1 && s.MeanRevenue > 0 {
		varSum := 0.0
		for _, rev := range revs {
			d := rev - s.MeanRevenue
			varSum += d * d
		}
		s.RevenueStdDevFrac = math.Sqrt(varSum/(n-1)) / s.MeanRevenue
	}
	return s, nil
}
