// Package platform assembles the multi-platform simulation of cross
// online matching: each spatial crowdsourcing platform runs one online
// matcher over its own request stream and waiting list, while the Hub
// shares every platform's unoccupied workers with the others
// (Definition 2.3: cooperative platforms "only share the information of
// their unoccupied workers"), makes cross-platform claims atomic, and
// keeps worker acceptance histories.
//
// The package also provides the OFF baseline (Offline): the offline
// optimum computed as a maximum-weight bipartite matching over every
// feasible worker-request edge, per Section II-B of the paper.
package platform

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/fault"
	"crossmatch/internal/metrics"
	"crossmatch/internal/online"
	"crossmatch/internal/pricing"
)

// Hub is the cooperation layer between platforms. It references each
// platform's waiting-list pool (owned by that platform's matcher), so an
// inner assignment made by a matcher is immediately visible to every
// cooperating platform — and a cooperative claim removes the worker from
// its owner's waiting list, satisfying the "deleted from all its waiting
// lists over all platforms" requirement.
//
// The hub is safe for concurrent use by the per-platform goroutines of
// the concurrent runtime. Claims are genuinely atomic: every tracked
// worker carries a claim word that racing platforms CAS, and the owner
// pool's locked removal is the commit point, so of any number of
// concurrent claims (and the owner's own inner assignment) exactly one
// takes the worker. Registration (RegisterPlatform, SetMetrics,
// CoopDisabled) must finish before the concurrent phase begins: pools,
// order and configuration are read without locking afterwards.
type Hub struct {
	pools map[core.PlatformID]*online.Pool
	order []core.PlatformID // registration order, for deterministic scans
	// CoopDisabled turns the hub off: every view returns no outer
	// workers, degrading COM to TOTA (the W_out = empty ablation).
	CoopDisabled bool
	// metrics, when non-nil, receives claim-conflict counts and hub
	// lock-wait observations. Set before the run via SetMetrics.
	metrics *metrics.Collector
	// faults, when non-nil, injects cooperation faults and guards every
	// partner platform with a circuit breaker (see internal/fault). Set
	// before the run via SetFaults; nil keeps the fault-free hot path
	// untouched.
	faults *fault.Injector
	// sealed flips when the run's (possibly concurrent) consume phase
	// begins: registration afterwards would race the documented
	// lock-free reads of pools, order and configuration, so it is
	// rejected loudly instead of silently corrupting the run.
	sealed atomic.Bool

	// mu guards the per-worker tables below. Entries exist exactly while
	// a worker waits: they are deleted when the worker is claimed by a
	// cooperating platform or assigned by its own (WorkerAssigned), so
	// long recycled runs no longer grow these maps without bound.
	mu        sync.Mutex
	owner     map[int64]core.PlatformID
	histories map[int64]*pricing.History
	claimed   map[int64]*atomic.Bool // per-worker claim state word
	lent      map[core.PlatformID]int
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{
		pools:     make(map[core.PlatformID]*online.Pool),
		owner:     make(map[int64]core.PlatformID),
		histories: make(map[int64]*pricing.History),
		claimed:   make(map[int64]*atomic.Bool),
		lent:      make(map[core.PlatformID]int),
	}
}

// SetMetrics attaches the collector that receives claim-conflict counts
// and lock-wait observations. It must be called before the run starts;
// calling it on a sealed hub panics, because the collector is read
// without synchronization by the platform goroutines.
func (h *Hub) SetMetrics(m *metrics.Collector) {
	if h.sealed.Load() {
		panic("platform: Hub.SetMetrics called after the concurrent phase started; attach the collector before Run")
	}
	h.metrics = m
}

// SetFaults attaches the fault injector guarding the cooperation path.
// Like SetMetrics it must run before the concurrent phase; calling it
// on a sealed hub panics.
func (h *Hub) SetFaults(in *fault.Injector) {
	if h.sealed.Load() {
		panic("platform: Hub.SetFaults called after the concurrent phase started; attach the injector before Run")
	}
	h.faults = in
}

// seal marks the start of the run's consume phase. From here on the
// pools, platform order, collector and injector are read without
// locking by the per-platform goroutines, so late registration is a
// contract violation and is rejected loudly.
func (h *Hub) seal() { h.sealed.Store(true) }

// RegisterPlatform attaches a platform's waiting-list pool. Must be
// called once per platform before its workers arrive (and before any
// concurrent access begins); registering on a sealed hub returns an
// error instead of silently racing the running platform goroutines.
func (h *Hub) RegisterPlatform(id core.PlatformID, pool *online.Pool) error {
	if h.sealed.Load() {
		return fmt.Errorf("platform: RegisterPlatform(%d) called after the concurrent phase started; register every platform before Run", id)
	}
	if id == core.NoPlatform {
		return fmt.Errorf("platform: cannot register the zero platform")
	}
	if _, dup := h.pools[id]; dup {
		return fmt.Errorf("platform: platform %d already registered", id)
	}
	h.pools[id] = pool
	h.order = append(h.order, id)
	return nil
}

// lockTables acquires the table mutex, reporting the wait to the
// collector when one is attached (the lock-wait reservoir of the
// concurrent runtime's contention metrics).
func (h *Hub) lockTables() {
	if h.metrics == nil {
		h.mu.Lock()
		return
	}
	start := time.Now()
	h.mu.Lock()
	h.metrics.ObserveLockWait(time.Since(start))
}

// WorkerArrived records ownership and acceptance history for a worker
// that just joined its platform's waiting list. The worker's History
// field is parsed once here; matchers see it through Candidate.
func (h *Hub) WorkerArrived(w *core.Worker) error {
	if _, ok := h.pools[w.Platform]; !ok {
		return fmt.Errorf("platform: worker %d arrived for unregistered platform %d", w.ID, w.Platform)
	}
	hist, err := pricing.NewHistory(w.History)
	if err != nil {
		return fmt.Errorf("platform: worker %d: %w", w.ID, err)
	}
	h.lockTables()
	h.owner[w.ID] = w.Platform
	h.histories[w.ID] = hist
	h.claimed[w.ID] = new(atomic.Bool)
	h.mu.Unlock()
	return nil
}

// WorkerAssigned releases the hub's ownership, history and claim state
// for a worker just assigned by its own platform's matcher (an inner
// assignment never passes through Claim). Cooperative claims clean up in
// Claim itself, so calling this for them is a harmless no-op. Without
// this eviction the per-worker tables grew without bound on long
// recycled runs.
func (h *Hub) WorkerAssigned(workerID int64) {
	h.lockTables()
	delete(h.owner, workerID)
	delete(h.histories, workerID)
	delete(h.claimed, workerID)
	h.mu.Unlock()
}

// TrackedWorkers reports how many workers the hub currently holds
// records for — exactly the waiting (unassigned) workers.
func (h *Hub) TrackedWorkers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.owner)
}

// HistoryOf returns the acceptance history recorded for a worker.
func (h *Hub) HistoryOf(workerID int64) (*pricing.History, bool) {
	h.mu.Lock()
	hist, ok := h.histories[workerID]
	h.mu.Unlock()
	return hist, ok
}

// ViewFor returns the CoopView platform id uses to see the other
// platforms' unoccupied workers. A view is bound to the goroutine
// driving that platform's matcher: its EligibleOuter buffer is reused
// across calls and must not be shared.
func (h *Hub) ViewFor(id core.PlatformID) online.CoopView {
	return &hubView{hub: h, self: id}
}

type hubView struct {
	hub  *Hub
	self core.PlatformID
	// now is the stream time of the request currently being decided,
	// recorded by EligibleOuter so Claim can place faults and breaker
	// cooldowns on the stream timeline.
	now core.Time
	// cands and workers are per-view scratch, reused across requests so
	// the hottest cooperative query performs no per-request allocation.
	// Safe because exactly one platform goroutine drives each view.
	cands   []online.Candidate
	workers []*core.Worker
}

// EligibleOuter implements online.CoopView: unoccupied workers of every
// other platform satisfying the Definition 2.6 constraints for r. The
// returned slice is valid until the next call on this view.
//
// With a fault injector attached, each partner platform is probed first
// under the deadline/retry/backoff policy; a partner whose probe fails
// (or whose circuit breaker is open) contributes no workers, so against
// fully dark partners the matcher degrades to inner-only (TOTA)
// matching instead of stalling.
func (v *hubView) EligibleOuter(r *core.Request) []online.Candidate {
	h := v.hub
	if h.CoopDisabled {
		return nil
	}
	v.now = r.Arrival
	v.workers = v.workers[:0]
	for _, pid := range h.order {
		if pid == v.self {
			continue
		}
		if h.faults != nil && !h.faults.ProbePartner(v.self, pid, r.Arrival) {
			continue
		}
		v.workers = h.pools[pid].AppendCovering(v.workers, r)
	}
	v.cands = v.cands[:0]
	if len(v.workers) == 0 {
		return v.cands
	}
	h.lockTables()
	for _, w := range v.workers {
		hist := h.histories[w.ID]
		if hist == nil {
			// Assigned by its owner between the pool scan and now; the
			// worker is already out of every waiting list.
			continue
		}
		v.cands = append(v.cands, online.Candidate{Worker: w, History: hist})
	}
	h.mu.Unlock()
	return v.cands
}

// Claim implements online.CoopView: atomically remove the worker from
// its owner's waiting list. The per-worker claim word arbitrates racing
// platforms without touching the owner pool's lock; the locked pool
// removal then commits the claim (or reports that the owner's inner
// assignment won the race).
func (v *hubView) Claim(workerID int64) bool {
	return v.hub.claim(v.self, workerID, v.now, true)
}

// claim is the hub's atomic claim commit point, shared by the in-hub
// cooperation path (hubView.Claim) and the sharded engine's cross-shard
// borrows, which claim against a *remote* shard's hub. useFaults gates
// the fault injector: remote claims skip it, because the injector's RNG
// and breakers belong to the hub's own shard goroutines and the
// claim-protocol gates carry their own breaker machinery.
func (h *Hub) claim(self core.PlatformID, workerID int64, now core.Time, useFaults bool) bool {
	if h.CoopDisabled {
		return false
	}
	h.lockTables()
	owner, ok := h.owner[workerID]
	word := h.claimed[workerID]
	h.mu.Unlock()
	if !ok || word == nil {
		// Matchers only claim workers they just sighted through
		// EligibleOuter, so a missing record means the worker was
		// assigned — by another platform's claim or its owner's inner
		// match — between the sighting and this claim: a lost race.
		h.metrics.ClaimConflict()
		return false
	}
	if owner == self {
		// Semantic refusal, not a race: the coop view never hands out
		// a platform's own workers.
		return false
	}
	if useFaults && h.faults != nil && !h.faults.ClaimPartner(self, owner, now) {
		// Injected transient claim error (retries exhausted) or an open
		// breaker: to the matcher this is indistinguishable from a lost
		// race — it moves on to the next accepting candidate.
		return false
	}
	if !word.CompareAndSwap(false, true) {
		// Another platform's claim got here first.
		h.metrics.ClaimConflict()
		return false
	}
	pool := h.pools[owner]
	if pool == nil || !pool.Remove(workerID) {
		// The owner's inner assignment raced the claim and won; it will
		// evict the tables via WorkerAssigned.
		h.metrics.ClaimConflict()
		return false
	}
	h.lockTables()
	delete(h.owner, workerID)
	delete(h.histories, workerID)
	delete(h.claimed, workerID)
	h.lent[owner]++
	h.mu.Unlock()
	return true
}

// Lent returns how many workers each platform has lent out through the
// hub — the supply side of the cooperation ledger (the demand side is
// each platform's ServedOuter).
func (h *Hub) Lent() map[core.PlatformID]int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[core.PlatformID]int, len(h.lent))
	for pid, n := range h.lent {
		out[pid] = n
	}
	return out
}
