// Package platform assembles the multi-platform simulation of cross
// online matching: each spatial crowdsourcing platform runs one online
// matcher over its own request stream and waiting list, while the Hub
// shares every platform's unoccupied workers with the others
// (Definition 2.3: cooperative platforms "only share the information of
// their unoccupied workers"), makes cross-platform claims atomic, and
// keeps worker acceptance histories.
//
// The package also provides the OFF baseline (Offline): the offline
// optimum computed as a maximum-weight bipartite matching over every
// feasible worker-request edge, per Section II-B of the paper.
package platform

import (
	"fmt"

	"crossmatch/internal/core"
	"crossmatch/internal/online"
	"crossmatch/internal/pricing"
)

// Hub is the cooperation layer between platforms. It references each
// platform's waiting-list pool (owned by that platform's matcher), so an
// inner assignment made by a matcher is immediately visible to every
// cooperating platform — and a cooperative claim removes the worker from
// its owner's waiting list, satisfying the "deleted from all its waiting
// lists over all platforms" requirement.
type Hub struct {
	pools     map[core.PlatformID]*online.Pool
	owner     map[int64]core.PlatformID
	histories map[int64]*pricing.History
	order     []core.PlatformID // registration order, for deterministic scans
	lent      map[core.PlatformID]int
	// CoopDisabled turns the hub off: every view returns no outer
	// workers, degrading COM to TOTA (the W_out = empty ablation).
	CoopDisabled bool
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{
		pools:     make(map[core.PlatformID]*online.Pool),
		owner:     make(map[int64]core.PlatformID),
		histories: make(map[int64]*pricing.History),
		lent:      make(map[core.PlatformID]int),
	}
}

// RegisterPlatform attaches a platform's waiting-list pool. Must be
// called once per platform before its workers arrive.
func (h *Hub) RegisterPlatform(id core.PlatformID, pool *online.Pool) error {
	if id == core.NoPlatform {
		return fmt.Errorf("platform: cannot register the zero platform")
	}
	if _, dup := h.pools[id]; dup {
		return fmt.Errorf("platform: platform %d already registered", id)
	}
	h.pools[id] = pool
	h.order = append(h.order, id)
	return nil
}

// WorkerArrived records ownership and acceptance history for a worker
// that just joined its platform's waiting list. The worker's History
// field is parsed once here; matchers see it through Candidate.
func (h *Hub) WorkerArrived(w *core.Worker) error {
	if _, ok := h.pools[w.Platform]; !ok {
		return fmt.Errorf("platform: worker %d arrived for unregistered platform %d", w.ID, w.Platform)
	}
	hist, err := pricing.NewHistory(w.History)
	if err != nil {
		return fmt.Errorf("platform: worker %d: %w", w.ID, err)
	}
	h.owner[w.ID] = w.Platform
	h.histories[w.ID] = hist
	return nil
}

// HistoryOf returns the acceptance history recorded for a worker.
func (h *Hub) HistoryOf(workerID int64) (*pricing.History, bool) {
	hist, ok := h.histories[workerID]
	return hist, ok
}

// ViewFor returns the CoopView platform id uses to see the other
// platforms' unoccupied workers.
func (h *Hub) ViewFor(id core.PlatformID) online.CoopView {
	return &hubView{hub: h, self: id}
}

type hubView struct {
	hub  *Hub
	self core.PlatformID
}

// EligibleOuter implements online.CoopView: unoccupied workers of every
// other platform satisfying the Definition 2.6 constraints for r.
func (v *hubView) EligibleOuter(r *core.Request) []online.Candidate {
	if v.hub.CoopDisabled {
		return nil
	}
	var out []online.Candidate
	for _, pid := range v.hub.order {
		if pid == v.self {
			continue
		}
		for _, w := range v.hub.pools[pid].Covering(r) {
			out = append(out, online.Candidate{Worker: w, History: v.hub.histories[w.ID]})
		}
	}
	return out
}

// Claim implements online.CoopView: atomically remove the worker from
// its owner's waiting list.
func (v *hubView) Claim(workerID int64) bool {
	if v.hub.CoopDisabled {
		return false
	}
	owner, ok := v.hub.owner[workerID]
	if !ok || owner == v.self {
		return false
	}
	pool, ok := v.hub.pools[owner]
	if !ok {
		return false
	}
	if !pool.Remove(workerID) {
		return false
	}
	v.hub.lent[owner]++
	return true
}

// Lent returns how many workers each platform has lent out through the
// hub — the supply side of the cooperation ledger (the demand side is
// each platform's ServedOuter).
func (h *Hub) Lent() map[core.PlatformID]int {
	out := make(map[core.PlatformID]int, len(h.lent))
	for pid, n := range h.lent {
		out[pid] = n
	}
	return out
}
