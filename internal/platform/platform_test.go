package platform

import (
	"math"
	"math/rand"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
	"crossmatch/internal/online"
	"crossmatch/internal/pricing"
)

func exampleStream(t *testing.T) *core.Stream {
	t.Helper()
	s, err := core.ExampleOneStream()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHubRegisterAndArrivals(t *testing.T) {
	h := NewHub()
	p1 := online.NewPool(nil)
	if err := h.RegisterPlatform(1, p1); err != nil {
		t.Fatal(err)
	}
	if err := h.RegisterPlatform(1, p1); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := h.RegisterPlatform(core.NoPlatform, p1); err == nil {
		t.Error("zero platform accepted")
	}
	w := &core.Worker{ID: 1, Arrival: 0, Loc: geo.Point{}, Radius: 1, Platform: 1, History: []float64{2}}
	if err := h.WorkerArrived(w); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.HistoryOf(1); !ok {
		t.Error("history not recorded")
	}
	bad := &core.Worker{ID: 2, Arrival: 0, Loc: geo.Point{}, Radius: 1, Platform: 9}
	if err := h.WorkerArrived(bad); err == nil {
		t.Error("unregistered platform accepted")
	}
	badHist := &core.Worker{ID: 3, Arrival: 0, Loc: geo.Point{}, Radius: 1, Platform: 1, History: []float64{-1}}
	if err := h.WorkerArrived(badHist); err == nil {
		t.Error("invalid history accepted")
	}
}

func TestHubViewSeesOnlyOtherPlatforms(t *testing.T) {
	h := NewHub()
	p1, p2 := online.NewPool(nil), online.NewPool(nil)
	if err := h.RegisterPlatform(1, p1); err != nil {
		t.Fatal(err)
	}
	if err := h.RegisterPlatform(2, p2); err != nil {
		t.Fatal(err)
	}
	w1 := &core.Worker{ID: 1, Arrival: 0, Loc: geo.Point{}, Radius: 5, Platform: 1, History: []float64{1}}
	w2 := &core.Worker{ID: 2, Arrival: 0, Loc: geo.Point{}, Radius: 5, Platform: 2, History: []float64{1}}
	for _, w := range []*core.Worker{w1, w2} {
		if err := h.WorkerArrived(w); err != nil {
			t.Fatal(err)
		}
	}
	p1.Add(w1)
	p2.Add(w2)

	r := &core.Request{ID: 1, Arrival: 10, Loc: geo.Point{}, Value: 5, Platform: 1}
	v1 := h.ViewFor(1)
	got := v1.EligibleOuter(r)
	if len(got) != 1 || got[0].Worker.ID != 2 {
		t.Fatalf("platform 1 sees %d outer workers, want exactly worker 2", len(got))
	}
	if got[0].History == nil {
		t.Error("candidate missing history")
	}
}

func TestHubClaimSemantics(t *testing.T) {
	h := NewHub()
	p1, p2 := online.NewPool(nil), online.NewPool(nil)
	_ = h.RegisterPlatform(1, p1)
	_ = h.RegisterPlatform(2, p2)
	w2 := &core.Worker{ID: 2, Arrival: 0, Loc: geo.Point{}, Radius: 5, Platform: 2, History: []float64{1}}
	_ = h.WorkerArrived(w2)
	p2.Add(w2)

	v1 := h.ViewFor(1)
	if !v1.Claim(2) {
		t.Fatal("claim of available outer worker failed")
	}
	if v1.Claim(2) {
		t.Error("double claim succeeded")
	}
	if p2.Len() != 0 {
		t.Error("claim did not remove worker from owner pool")
	}
	// A platform cannot "claim" its own workers through the coop view.
	w1 := &core.Worker{ID: 1, Arrival: 0, Loc: geo.Point{}, Radius: 5, Platform: 1, History: []float64{1}}
	_ = h.WorkerArrived(w1)
	p1.Add(w1)
	if v1.Claim(1) {
		t.Error("self-claim through coop view succeeded")
	}
	if v1.Claim(99) {
		t.Error("claim of unknown worker succeeded")
	}
}

func TestHubCoopDisabled(t *testing.T) {
	h := NewHub()
	p1, p2 := online.NewPool(nil), online.NewPool(nil)
	_ = h.RegisterPlatform(1, p1)
	_ = h.RegisterPlatform(2, p2)
	w2 := &core.Worker{ID: 2, Arrival: 0, Loc: geo.Point{}, Radius: 5, Platform: 2, History: []float64{1}}
	_ = h.WorkerArrived(w2)
	p2.Add(w2)
	h.CoopDisabled = true
	v1 := h.ViewFor(1)
	r := &core.Request{ID: 1, Arrival: 10, Loc: geo.Point{}, Value: 5, Platform: 1}
	if len(v1.EligibleOuter(r)) != 0 {
		t.Error("disabled hub leaked outer workers")
	}
	if v1.Claim(2) {
		t.Error("disabled hub allowed a claim")
	}
}

func TestRunTOTAOnExampleOne(t *testing.T) {
	// Only platform 1 has requests; its TOTA result must equal the
	// hand-computed 16 (see online tests); platform 2 serves nothing.
	res, err := Run(exampleStream(t), TOTAFactory(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	p1 := res.Platforms[1]
	if p1 == nil || math.Abs(p1.Stats.Revenue-16) > 1e-9 || p1.Stats.Served != 3 {
		t.Fatalf("platform 1: %+v", p1)
	}
	if p2 := res.Platforms[2]; p2.Stats.Requests != 0 {
		t.Errorf("platform 2 saw requests: %+v", p2.Stats)
	}
	if res.TotalServed() != 3 || math.Abs(res.TotalRevenue()-16) > 1e-9 {
		t.Errorf("totals: served=%d revenue=%v", res.TotalServed(), res.TotalRevenue())
	}
}

func TestRunDemCOMCooperatesAcrossPlatforms(t *testing.T) {
	// Across seeds, DemCOM must sometimes serve r3/r5 via platform 2's
	// workers, and whenever it does, total revenue must beat TOTA's 16.
	coopHappened := false
	for seed := int64(0); seed < 25; seed++ {
		res, err := Run(exampleStream(t), DemCOMFactory(pricing.MonteCarlo{Xi: 0.05, Eta: 0.3}, false), Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		p1 := res.Platforms[1]
		if p1.Stats.ServedInner != 3 {
			t.Fatalf("seed %d: inner served = %d, want 3", seed, p1.Stats.ServedInner)
		}
		if p1.Stats.ServedOuter > 0 {
			coopHappened = true
			if p1.Stats.Revenue <= 16 {
				t.Errorf("seed %d: revenue %v with cooperation, want > 16", seed, p1.Stats.Revenue)
			}
			// Outer assignments must use platform 2 workers.
			for _, a := range p1.Matching.Assignments() {
				if a.Outer && a.Worker.Platform != 2 {
					t.Errorf("outer assignment uses platform %d worker", a.Worker.Platform)
				}
			}
		}
	}
	if !coopHappened {
		t.Error("cooperation never occurred across 25 seeds")
	}
}

func TestRunDisableCoopEqualsTOTA(t *testing.T) {
	dem, err := Run(exampleStream(t), DemCOMFactory(pricing.DefaultMonteCarlo, false), Config{Seed: 9, DisableCoop: true})
	if err != nil {
		t.Fatal(err)
	}
	tota, err := Run(exampleStream(t), TOTAFactory(), Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if dem.TotalRevenue() != tota.TotalRevenue() || dem.TotalServed() != tota.TotalServed() {
		t.Errorf("DemCOM with coop disabled: rev %v served %d; TOTA: rev %v served %d",
			dem.TotalRevenue(), dem.TotalServed(), tota.TotalRevenue(), tota.TotalServed())
	}
	if dem.CooperativeServed() != 0 {
		t.Error("cooperative requests served with coop disabled")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	a, err := Run(exampleStream(t), RamCOMFactory(9, RamCOMOptions{}), Config{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(exampleStream(t), RamCOMFactory(9, RamCOMOptions{}), Config{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalRevenue() != b.TotalRevenue() || a.TotalServed() != b.TotalServed() {
		t.Errorf("same seed diverged: (%v, %d) vs (%v, %d)",
			a.TotalRevenue(), a.TotalServed(), b.TotalRevenue(), b.TotalServed())
	}
}

func TestRunWorkerRecycling(t *testing.T) {
	// One worker, two sequential requests it covers. Without recycling
	// only the first is served; with ServiceTicks=1 the worker returns
	// in time for the second.
	ws := []*core.Worker{{ID: 1, Arrival: 1, Loc: geo.Point{}, Radius: 2, Platform: 1, History: []float64{1}}}
	rs := []*core.Request{
		{ID: 1, Arrival: 2, Loc: geo.Point{X: 0.5}, Value: 5, Platform: 1},
		{ID: 2, Arrival: 10, Loc: geo.Point{X: 0.6}, Value: 7, Platform: 1},
	}
	stream, err := core.NewStream(append(core.WorkerEvents(ws), core.RequestEvents(rs)...))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(stream, TOTAFactory(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalServed() != 1 {
		t.Fatalf("without recycling served = %d, want 1", plain.TotalServed())
	}
	rec, err := Run(stream, TOTAFactory(), Config{Seed: 1, ServiceTicks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TotalServed() != 2 {
		t.Fatalf("with recycling served = %d, want 2", rec.TotalServed())
	}
	if rec.Recycled == 0 {
		t.Error("recycled counter not incremented")
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOfflineExampleOne(t *testing.T) {
	// With Example 1's histories (w3 min 1, w5 min 0.5) the joint
	// offline optimum is 4 + 9 + 6-1 + 3 + 4-0.5 = 24.5 for platform 1
	// (see example.go), or the equivalent permutation.
	for _, solver := range []OfflineSolver{SolverHungarian, SolverMCMF, SolverAuto} {
		res, err := Offline(exampleStream(t), solver)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.TotalWeight-24.5) > 1e-9 {
			t.Errorf("solver %d: OFF total = %v, want 24.5", solver, res.TotalWeight)
		}
		if res.TotalServed != 5 {
			t.Errorf("solver %d: served = %d, want 5", solver, res.TotalServed)
		}
		if math.Abs(res.Revenue[1]-24.5) > 1e-9 {
			t.Errorf("solver %d: platform 1 revenue = %v", solver, res.Revenue[1])
		}
		if err := res.Matching.Validate(); err != nil {
			t.Errorf("solver %d: %v", solver, err)
		}
	}
}

func TestOfflineGreedyNearExact(t *testing.T) {
	res, err := Offline(exampleStream(t), SolverGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWeight < 24.5*0.9 {
		t.Errorf("greedy OFF = %v, want within 10%% of 24.5", res.TotalWeight)
	}
}

// OFF dominates every online algorithm on the same stream (it is the
// upper bound used for competitive ratios).
func TestOfflineDominatesOnline(t *testing.T) {
	stream := exampleStream(t)
	off, err := Offline(stream, SolverHungarian)
	if err != nil {
		t.Fatal(err)
	}
	factories := map[string]MatcherFactory{
		"TOTA":   TOTAFactory(),
		"DemCOM": DemCOMFactory(pricing.DefaultMonteCarlo, false),
		"RamCOM": RamCOMFactory(stream.MaxValue(), RamCOMOptions{}),
	}
	for name, f := range factories {
		for seed := int64(0); seed < 10; seed++ {
			res, err := Run(stream, f, Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalRevenue() > off.TotalWeight+1e-9 {
				t.Errorf("%s seed %d: online %v exceeds OFF %v", name, seed, res.TotalRevenue(), off.TotalWeight)
			}
		}
	}
}

func TestFactoryByName(t *testing.T) {
	for _, name := range []string{AlgTOTA, AlgGreedyRT, AlgDemCOM, AlgRamCOM} {
		f, ok := FactoryByName(name, 10)
		if !ok {
			t.Errorf("FactoryByName(%q) not found", name)
			continue
		}
		m := f(1, online.NoCoop{}, rand.New(rand.NewSource(1)))
		if m.Name() != name {
			t.Errorf("factory %q built matcher %q", name, m.Name())
		}
	}
	if _, ok := FactoryByName("nope", 10); ok {
		t.Error("unknown name accepted")
	}
	if _, ok := FactoryByName(AlgOFF, 10); ok {
		t.Error("OFF is not an online matcher")
	}
}

func TestResultAggregates(t *testing.T) {
	res := &Result{Platforms: map[core.PlatformID]*PlatformResult{
		1: {Stats: online.Stats{Revenue: 10, Served: 2, ServedOuter: 1, CoopAttempted: 2, PaymentRate: 0.5}},
		2: {Stats: online.Stats{Revenue: 5, Served: 1, ServedOuter: 1, CoopAttempted: 2, PaymentRate: 0.7}},
	}}
	if res.TotalRevenue() != 15 || res.TotalServed() != 3 || res.CooperativeServed() != 2 {
		t.Errorf("aggregates wrong: %v %d %d", res.TotalRevenue(), res.TotalServed(), res.CooperativeServed())
	}
	if got := res.AcceptanceRatio(); got != 0.5 {
		t.Errorf("AcceptanceRatio = %v, want 0.5", got)
	}
	if got := res.MeanPaymentRate(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("MeanPaymentRate = %v, want 0.6", got)
	}
	empty := &Result{Platforms: map[core.PlatformID]*PlatformResult{}}
	if empty.AcceptanceRatio() != 0 || empty.MeanPaymentRate() != 0 {
		t.Error("empty result ratios should be 0")
	}
}
