package platform

import (
	"math/rand"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/pricing"
	"crossmatch/internal/workload"
)

// TestSimulationInvariantsUnderRandomConfigs sweeps randomized workload
// shapes through every algorithm and checks the engine-level invariants
// that must hold regardless of configuration:
//
//   - every matching validates (all Definition 2.6 constraints),
//   - stats are internally consistent,
//   - no online algorithm exceeds the offline optimum,
//   - cooperative counts are zero when cooperation is disabled.
func TestSimulationInvariantsUnderRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(20240706))
	for trial := 0; trial < 12; trial++ {
		requests := 50 + rng.Intn(400)
		workers := 10 + rng.Intn(80)
		radius := 0.4 + rng.Float64()*2
		dist := "real"
		if rng.Intn(2) == 0 {
			dist = "normal"
		}
		cfg, err := workload.Synthetic(requests, workers, radius, dist)
		if err != nil {
			t.Fatal(err)
		}
		// Occasionally mutate the config into odd shapes: lopsided
		// platforms, tiny histories, many appearances.
		switch trial % 4 {
		case 1:
			cfg.Platforms[0].Requests = 0 // platform with no demand
		case 2:
			cfg.Platforms[1].Workers = 0 // platform with no supply
		case 3:
			cfg.Platforms[0].HistoryMin = 1
			cfg.Platforms[0].HistoryMax = 2
			cfg.Platforms[0].Appearances = 9
		}
		stream, err := workload.Generate(cfg, int64(trial)*31+7)
		if err != nil {
			t.Fatal(err)
		}
		off, err := Offline(stream, SolverAuto)
		if err != nil {
			t.Fatal(err)
		}

		maxV := cfg.MaxValue()
		factories := map[string]MatcherFactory{
			AlgTOTA:     TOTAFactory(),
			AlgGreedyRT: GreedyRTFactory(maxV),
			AlgDemCOM:   DemCOMFactory(pricing.DefaultMonteCarlo, false),
			AlgRamCOM:   RamCOMFactory(maxV, RamCOMOptions{}),
		}
		for name, f := range factories {
			for _, disable := range []bool{false, true} {
				run, err := Run(stream, f, Config{Seed: int64(trial), DisableCoop: disable})
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, name, err)
				}
				if err := run.Validate(); err != nil {
					t.Fatalf("trial %d %s: %v", trial, name, err)
				}
				if run.TotalRevenue() > off.TotalWeight+1e-6 {
					t.Fatalf("trial %d %s: online %v beats OFF %v",
						trial, name, run.TotalRevenue(), off.TotalWeight)
				}
				if disable && run.CooperativeServed() != 0 {
					t.Fatalf("trial %d %s: cooperation with hub disabled", trial, name)
				}
				for pid, pr := range run.Platforms {
					s := pr.Stats
					if s.Served != s.ServedInner+s.ServedOuter {
						t.Fatalf("trial %d %s p%d: served split inconsistent: %+v", trial, name, pid, s)
					}
					if s.ServedOuter > s.CoopAttempted {
						t.Fatalf("trial %d %s p%d: outer > attempted: %+v", trial, name, pid, s)
					}
					if s.Revenue < 0 {
						t.Fatalf("trial %d %s p%d: negative revenue", trial, name, pid)
					}
					if pr.Matching.Len() != s.Served {
						t.Fatalf("trial %d %s p%d: matching len %d != served %d",
							trial, name, pid, pr.Matching.Len(), s.Served)
					}
				}
			}
		}
	}
}

// TestRecyclingNeverBreaksInvariants stresses the ServiceTicks engine
// extension: recycled workers must produce valid matchings and strictly
// more (or equal) service than one-shot workers.
func TestRecyclingNeverBreaksInvariants(t *testing.T) {
	cfg, err := workload.Synthetic(400, 40, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.Generate(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(stream, TOTAFactory(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ticks := range []core.Time{1, 50, 5000} {
		rec, err := Run(stream, TOTAFactory(), Config{Seed: 1, ServiceTicks: ticks})
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("ticks %d: %v", ticks, err)
		}
		if rec.TotalServed() < plain.TotalServed() {
			t.Fatalf("ticks %d: recycling served %d < one-shot %d",
				ticks, rec.TotalServed(), plain.TotalServed())
		}
	}
}
