package platform

import (
	"errors"
	"fmt"
	"math/rand"

	"crossmatch/internal/core"
	"crossmatch/internal/online"
	"crossmatch/internal/pricing"
)

// ErrUnknownAlgorithm is the sentinel wrapped by FactoryFor for names
// that match no online matcher; match it with errors.Is.
var ErrUnknownAlgorithm = errors.New("unknown algorithm")

// Algorithm names used across the experiment harness and CLIs.
const (
	AlgTOTA     = "TOTA"
	AlgGreedyRT = "Greedy-RT"
	AlgDemCOM   = "DemCOM"
	AlgRamCOM   = "RamCOM"
	AlgBatchCOM = "BatchCOM"
	AlgOFF      = "OFF"
)

// DefaultBatchWindow re-exports BatchCOM's default window length for
// callers configuring through this package.
const DefaultBatchWindow = online.DefaultBatchWindow

// TOTAFactory builds the single-platform greedy baseline.
func TOTAFactory() MatcherFactory {
	return func(core.PlatformID, online.CoopView, *rand.Rand) online.Matcher {
		return online.NewTOTAGreedy()
	}
}

// GreedyRTFactory builds the randomized-threshold baseline of [9];
// maxValue is the a-priori value bound Umax.
func GreedyRTFactory(maxValue float64) MatcherFactory {
	return func(_ core.PlatformID, _ online.CoopView, rng *rand.Rand) online.Matcher {
		return online.NewGreedyRT(maxValue, rng)
	}
}

// DemCOMFactory builds Algorithm 1 with the given Monte-Carlo
// configuration; oracle switches on the exact-minimum-payment ablation.
func DemCOMFactory(mc pricing.MonteCarlo, oracle bool) MatcherFactory {
	return func(_ core.PlatformID, coop online.CoopView, rng *rand.Rand) online.Matcher {
		m := online.NewDemCOM(coop, mc, rng)
		m.PaymentOracle = oracle
		return m
	}
}

// RamCOMOptions selects RamCOM's pricing mode and fallback behaviour
// for the ablation study.
type RamCOMOptions struct {
	// ThresholdPricing switches to the 1/e randomized threshold quote.
	ThresholdPricing bool
	// MinPaymentPricing prices cooperative requests like DemCOM does.
	MinPaymentPricing bool
	// NoInnerFallback runs Algorithm 3 literally: low-value requests
	// whose cooperative path fails are rejected even when inner workers
	// sit idle.
	NoInnerFallback bool
}

// RamCOMFactory builds Algorithm 3; maxValue is max(v_r), assumed known.
func RamCOMFactory(maxValue float64, opts RamCOMOptions) MatcherFactory {
	return func(_ core.PlatformID, coop online.CoopView, rng *rand.Rand) online.Matcher {
		m := online.NewRamCOM(maxValue, coop, rng)
		m.ThresholdPricing = opts.ThresholdPricing
		m.MinPaymentPricing = opts.MinPaymentPricing
		m.NoInnerFallback = opts.NoInnerFallback
		return m
	}
}

// BatchCOMFactory builds the windowed dispatch matcher: arrivals buffer
// for window virtual ticks (non-positive selects DefaultBatchWindow)
// and flush as one max-weight matching; deadline, when positive, caps
// any request's wait.
func BatchCOMFactory(mc pricing.MonteCarlo, window, deadline core.Time) MatcherFactory {
	return func(_ core.PlatformID, coop online.CoopView, rng *rand.Rand) online.Matcher {
		return online.NewBatchCOM(coop, mc, rng, window, deadline)
	}
}

// AlgConfig carries the per-algorithm knobs FactoryConfigured needs
// beyond the name: the a-priori value bound for the threshold
// algorithms, and BatchCOM's window geometry.
type AlgConfig struct {
	// MaxValue is max(v_r), used by Greedy-RT and RamCOM.
	MaxValue float64
	// Window is BatchCOM's batching window in virtual ticks;
	// non-positive selects DefaultBatchWindow. Ignored by the greedy
	// algorithms.
	Window core.Time
	// Deadline, when positive, caps how long BatchCOM may hold any
	// single request, pulling the window flush forward. Ignored by the
	// greedy algorithms.
	Deadline core.Time
}

// FactoryConfigured is FactoryFor with the full knob set; FactoryFor
// delegates here with a zero window.
func FactoryConfigured(name string, c AlgConfig) (MatcherFactory, error) {
	switch name {
	case AlgTOTA:
		return TOTAFactory(), nil
	case AlgGreedyRT:
		return GreedyRTFactory(c.MaxValue), nil
	case AlgDemCOM:
		return DemCOMFactory(pricing.DefaultMonteCarlo, false), nil
	case AlgRamCOM:
		return RamCOMFactory(c.MaxValue, RamCOMOptions{}), nil
	case AlgBatchCOM:
		return BatchCOMFactory(pricing.DefaultMonteCarlo, c.Window, c.Deadline), nil
	default:
		return nil, fmt.Errorf("platform: %w %q (want %s, %s, %s, %s or %s)",
			ErrUnknownAlgorithm, name, AlgTOTA, AlgGreedyRT, AlgDemCOM, AlgRamCOM, AlgBatchCOM)
	}
}

// FactoryByName returns the factory for a paper algorithm name; stream
// statistics supply max(v_r) for the threshold algorithms. It returns
// ok=false for unknown names (including AlgOFF, which is not an online
// matcher — use Offline).
func FactoryByName(name string, maxValue float64) (MatcherFactory, bool) {
	f, err := FactoryFor(name, maxValue)
	return f, err == nil
}

// FactoryFor is FactoryByName with a typed error: unknown names
// (including AlgOFF, which is not an online matcher — use Offline)
// return an error wrapping ErrUnknownAlgorithm that names the
// acceptable algorithms.
func FactoryFor(name string, maxValue float64) (MatcherFactory, error) {
	return FactoryConfigured(name, AlgConfig{MaxValue: maxValue})
}
