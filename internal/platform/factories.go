package platform

import (
	"errors"
	"fmt"
	"math/rand"

	"crossmatch/internal/core"
	"crossmatch/internal/online"
	"crossmatch/internal/pricing"
)

// ErrUnknownAlgorithm is the sentinel wrapped by FactoryFor for names
// that match no online matcher; match it with errors.Is.
var ErrUnknownAlgorithm = errors.New("unknown algorithm")

// Algorithm names used across the experiment harness and CLIs.
const (
	AlgTOTA     = "TOTA"
	AlgGreedyRT = "Greedy-RT"
	AlgDemCOM   = "DemCOM"
	AlgRamCOM   = "RamCOM"
	AlgOFF      = "OFF"
)

// TOTAFactory builds the single-platform greedy baseline.
func TOTAFactory() MatcherFactory {
	return func(core.PlatformID, online.CoopView, *rand.Rand) online.Matcher {
		return online.NewTOTAGreedy()
	}
}

// GreedyRTFactory builds the randomized-threshold baseline of [9];
// maxValue is the a-priori value bound Umax.
func GreedyRTFactory(maxValue float64) MatcherFactory {
	return func(_ core.PlatformID, _ online.CoopView, rng *rand.Rand) online.Matcher {
		return online.NewGreedyRT(maxValue, rng)
	}
}

// DemCOMFactory builds Algorithm 1 with the given Monte-Carlo
// configuration; oracle switches on the exact-minimum-payment ablation.
func DemCOMFactory(mc pricing.MonteCarlo, oracle bool) MatcherFactory {
	return func(_ core.PlatformID, coop online.CoopView, rng *rand.Rand) online.Matcher {
		m := online.NewDemCOM(coop, mc, rng)
		m.PaymentOracle = oracle
		return m
	}
}

// RamCOMOptions selects RamCOM's pricing mode and fallback behaviour
// for the ablation study.
type RamCOMOptions struct {
	// ThresholdPricing switches to the 1/e randomized threshold quote.
	ThresholdPricing bool
	// MinPaymentPricing prices cooperative requests like DemCOM does.
	MinPaymentPricing bool
	// NoInnerFallback runs Algorithm 3 literally: low-value requests
	// whose cooperative path fails are rejected even when inner workers
	// sit idle.
	NoInnerFallback bool
}

// RamCOMFactory builds Algorithm 3; maxValue is max(v_r), assumed known.
func RamCOMFactory(maxValue float64, opts RamCOMOptions) MatcherFactory {
	return func(_ core.PlatformID, coop online.CoopView, rng *rand.Rand) online.Matcher {
		m := online.NewRamCOM(maxValue, coop, rng)
		m.ThresholdPricing = opts.ThresholdPricing
		m.MinPaymentPricing = opts.MinPaymentPricing
		m.NoInnerFallback = opts.NoInnerFallback
		return m
	}
}

// FactoryByName returns the factory for a paper algorithm name; stream
// statistics supply max(v_r) for the threshold algorithms. It returns
// ok=false for unknown names (including AlgOFF, which is not an online
// matcher — use Offline).
func FactoryByName(name string, maxValue float64) (MatcherFactory, bool) {
	f, err := FactoryFor(name, maxValue)
	return f, err == nil
}

// FactoryFor is FactoryByName with a typed error: unknown names
// (including AlgOFF, which is not an online matcher — use Offline)
// return an error wrapping ErrUnknownAlgorithm that names the
// acceptable algorithms.
func FactoryFor(name string, maxValue float64) (MatcherFactory, error) {
	switch name {
	case AlgTOTA:
		return TOTAFactory(), nil
	case AlgGreedyRT:
		return GreedyRTFactory(maxValue), nil
	case AlgDemCOM:
		return DemCOMFactory(pricing.DefaultMonteCarlo, false), nil
	case AlgRamCOM:
		return RamCOMFactory(maxValue, RamCOMOptions{}), nil
	default:
		return nil, fmt.Errorf("platform: %w %q (want %s, %s, %s or %s)",
			ErrUnknownAlgorithm, name, AlgTOTA, AlgGreedyRT, AlgDemCOM, AlgRamCOM)
	}
}
