package platform

import (
	"math/rand"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
	"crossmatch/internal/online"
	"crossmatch/internal/pricing"
)

// TestBatchCOMWindowLifecycle drives the matcher directly through one
// window: buffering defers, the window flushes at its scheduled due
// time (not at the clock's position), and a request arriving at the due
// time opens a fresh window.
func TestBatchCOMWindowLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := online.NewBatchCOM(online.NoCoop{}, pricing.DefaultMonteCarlo, rng, 5, 0)
	m.WorkerArrives(&core.Worker{ID: 1, Arrival: 0, Radius: 10, Platform: 1})

	d := m.RequestArrives(&core.Request{ID: 1, Arrival: 0, Value: 2, Platform: 1})
	if !d.Deferred || d.Reason != online.ReasonBuffered {
		t.Fatalf("arrival not buffered: %+v", d)
	}
	due, open := m.NextFlush()
	if !open || due != 5 {
		t.Fatalf("NextFlush: want (5, true), got (%d, %v)", due, open)
	}
	if wds := m.Advance(4); wds != nil {
		t.Fatalf("Advance before due flushed %d decisions", len(wds))
	}
	wds := m.Advance(9)
	if len(wds) != 1 {
		t.Fatalf("flush: want 1 decision, got %d", len(wds))
	}
	if wd := wds[0]; wd.At != 5 || !wd.Served || wd.Reason != online.ReasonInner || wd.Request.ID != 1 {
		t.Fatalf("flush decision: %+v", wd)
	}
	if _, open := m.NextFlush(); open {
		t.Fatal("window still open after flush")
	}

	// A request at the old due time opens a new window from its arrival.
	m.RequestArrives(&core.Request{ID: 2, Arrival: 5, Value: 2, Platform: 1})
	due, open = m.NextFlush()
	if !open || due != 10 {
		t.Fatalf("second window NextFlush: want (10, true), got (%d, %v)", due, open)
	}
}

// TestBatchCOMDeadlinePullsFlushForward: a per-request deadline tighter
// than the window bounds the wait for the whole batch.
func TestBatchCOMDeadlinePullsFlushForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := online.NewBatchCOM(online.NoCoop{}, pricing.DefaultMonteCarlo, rng, 100, 3)
	m.WorkerArrives(&core.Worker{ID: 1, Arrival: 0, Radius: 10, Platform: 1})
	m.RequestArrives(&core.Request{ID: 1, Arrival: 2, Value: 2, Platform: 1})
	if due, _ := m.NextFlush(); due != 5 {
		t.Fatalf("deadline-clamped due: want 5, got %d", due)
	}
	// A later arrival's (looser) deadline must not push the flush back.
	m.RequestArrives(&core.Request{ID: 2, Arrival: 4, Value: 2, Platform: 1})
	if due, _ := m.NextFlush(); due != 5 {
		t.Fatalf("due after second arrival: want 5, got %d", due)
	}
	wds := m.Advance(5)
	if len(wds) != 2 {
		t.Fatalf("flush: want 2 decisions, got %d", len(wds))
	}
	if wds[0].At != 5 || wds[1].At != 5 {
		t.Fatalf("decisions not stamped at the clamped due time: %+v", wds)
	}
}

// TestBatchCOMBatchBeatsGreedyOnCrossedPairs: the canonical windowed-
// dispatch win. Two requests arrive before two workers' coverage forces
// a choice; greedy per-arrival matching (DemCOM) spends the flexible
// worker on the first request and strands the second, while the window
// solve assigns both.
func TestBatchCOMBatchBeatsGreedyOnCrossedPairs(t *testing.T) {
	// Worker 1 covers both requests; worker 2 covers only request 1.
	// Greedy serves request 1 with its nearest worker (worker 1, exactly
	// at request 1's location) and then cannot serve request 2; the
	// batch matching crosses them.
	events := []core.Event{
		{Time: 0, Kind: core.WorkerArrival, Worker: &core.Worker{ID: 1, Arrival: 0, Radius: 10, Platform: 1, Loc: geo.Point{X: 1, Y: 0}}},
		{Time: 0, Kind: core.WorkerArrival, Worker: &core.Worker{ID: 2, Arrival: 0, Radius: 2, Platform: 1, Loc: geo.Point{X: 0, Y: 0}}},
		{Time: 1, Kind: core.RequestArrival, Request: &core.Request{ID: 1, Arrival: 1, Value: 3, Platform: 1, Loc: geo.Point{X: 1, Y: 0}}},
		{Time: 2, Kind: core.RequestArrival, Request: &core.Request{ID: 2, Arrival: 2, Value: 3, Platform: 1, Loc: geo.Point{X: 8, Y: 0}}},
	}
	run := func(alg string) int {
		factory, err := FactoryConfigured(alg, AlgConfig{MaxValue: 3, Window: 4})
		if err != nil {
			t.Fatalf("FactoryConfigured(%s): %v", alg, err)
		}
		eng, err := NewEngine([]core.PlatformID{1}, factory, Config{Seed: 9})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		for _, ev := range events {
			if _, err := eng.Process(ev); err != nil {
				t.Fatalf("Process: %v", err)
			}
		}
		res, err := eng.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		return res.TotalServed()
	}
	if got := run(AlgDemCOM); got != 1 {
		t.Fatalf("DemCOM on crossed pair: want 1 served, got %d", got)
	}
	if got := run(AlgBatchCOM); got != 2 {
		t.Fatalf("BatchCOM on crossed pair: want 2 served, got %d", got)
	}
}

// TestEngineWindowDecisionHandler: deferred arrivals answer through the
// decision handler at flush time, and AdvanceTime alone (no event) is
// enough to drive the flush — the serving sequencer's tick path.
func TestEngineWindowDecisionHandler(t *testing.T) {
	factory, err := FactoryConfigured(AlgBatchCOM, AlgConfig{Window: 5})
	if err != nil {
		t.Fatalf("FactoryConfigured: %v", err)
	}
	eng, err := NewEngine([]core.PlatformID{1}, factory, Config{Seed: 3})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var flushed []RequestDecision
	eng.SetDecisionHandler(func(rd RequestDecision) { flushed = append(flushed, rd) })
	if !eng.Windowed() {
		t.Fatal("engine does not report a windowed matcher")
	}

	w := &core.Worker{ID: 1, Arrival: 0, Radius: 10, Platform: 1}
	if _, err := eng.Process(core.Event{Time: 0, Kind: core.WorkerArrival, Worker: w}); err != nil {
		t.Fatalf("Process worker: %v", err)
	}
	r := &core.Request{ID: 1, Arrival: 1, Value: 2, Platform: 1}
	d, err := eng.Process(core.Event{Time: 1, Kind: core.RequestArrival, Request: r})
	if err != nil {
		t.Fatalf("Process request: %v", err)
	}
	if !d.Deferred || d.Served {
		t.Fatalf("request not deferred: %+v", d)
	}
	if !eng.HasOpenWindow() {
		t.Fatal("no open window after a buffered request")
	}
	if due, ok := eng.NextFlush(); !ok || due != 6 {
		t.Fatalf("NextFlush: want (6, true), got (%d, %v)", due, ok)
	}
	if err := eng.AdvanceTime(5); err != nil {
		t.Fatalf("AdvanceTime(5): %v", err)
	}
	if len(flushed) != 0 {
		t.Fatalf("flushed before due: %+v", flushed)
	}
	if err := eng.AdvanceTime(6); err != nil {
		t.Fatalf("AdvanceTime(6): %v", err)
	}
	if len(flushed) != 1 {
		t.Fatalf("want 1 flushed decision, got %d", len(flushed))
	}
	rd := flushed[0]
	if rd.Deferred || !rd.Served || rd.Request.ID != 1 || rd.Worker == nil || rd.Worker.ID != 1 {
		t.Fatalf("flushed decision: %+v", rd)
	}
	if eng.HasOpenWindow() {
		t.Fatal("window still open after AdvanceTime flush")
	}
	res, err := eng.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if res.TotalServed() != 1 {
		t.Fatalf("served: want 1, got %d", res.TotalServed())
	}
}

// permuteWithinTicks shuffles delivery order within every equal-time
// event group, preserving the non-decreasing time order the engine
// requires — the delivery freedoms a concurrent ingest path actually
// has.
func permuteWithinTicks(events []core.Event, rng *rand.Rand) []core.Event {
	evs := append([]core.Event(nil), events...)
	for i := 0; i < len(evs); {
		j := i
		for j < len(evs) && evs[j].Time == evs[i].Time {
			j++
		}
		rng.Shuffle(j-i, func(a, b int) { evs[i+a], evs[i+b] = evs[i+b], evs[i+a] })
		i = j
	}
	return evs
}

// FuzzWindowFlushOrdering asserts BatchCOM's headline invariant: a
// window flush is a pure function of the window's contents, so any
// delivery order of same-time arrivals produces a bit-identical result
// — same revenue, same stats, same assignments in the same order.
func FuzzWindowFlushOrdering(f *testing.F) {
	f.Add(int64(7), int64(1))
	f.Add(int64(42), int64(99))
	f.Add(int64(-3), int64(0))
	f.Fuzz(func(t *testing.T, streamSeed, permSeed int64) {
		stream := feedTestStream(t, 90, 50, streamSeed)
		cfg := Config{Seed: 99, ServiceTicks: 2}
		newFactory := func() MatcherFactory {
			factory, err := FactoryConfigured(AlgBatchCOM, AlgConfig{MaxValue: stream.MaxValue(), Window: 6})
			if err != nil {
				t.Fatalf("FactoryConfigured: %v", err)
			}
			return factory
		}
		want, err := Run(stream, newFactory(), cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		evs := permuteWithinTicks(stream.Events(), rand.New(rand.NewSource(permSeed)))
		eng, err := NewEngine(stream.Platforms(), newFactory(), cfg)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if err := eng.SetRecycleBase(maxWorkerID(stream)); err != nil {
			t.Fatalf("SetRecycleBase: %v", err)
		}
		for _, ev := range evs {
			if _, err := eng.Process(ev); err != nil {
				t.Fatalf("Process: %v", err)
			}
		}
		got, err := eng.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		assertSameResult(t, want, got)
	})
}
