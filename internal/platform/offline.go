package platform

import (
	"fmt"

	"crossmatch/internal/core"
	"crossmatch/internal/index"
	"crossmatch/internal/match"
	"crossmatch/internal/pricing"
)

// OfflineSolver selects the bipartite solver the OFF baseline uses.
type OfflineSolver int

const (
	// SolverAuto picks the cheapest solver that stays exact within a
	// time budget: Hungarian on small dense instances, MCMF on sparse
	// medium ones, and the near-exact GreedyAugment beyond (documented
	// in EXPERIMENTS.md whenever a published run used it).
	SolverAuto OfflineSolver = iota
	// SolverHungarian forces the dense O(n^3) exact solver.
	SolverHungarian
	// SolverMCMF forces the sparse exact min-cost max-flow solver.
	SolverMCMF
	// SolverGreedy forces the near-exact greedy-augment estimator
	// (documented wherever the harness uses it for the largest sweeps).
	SolverGreedy
)

const (
	// hungarianLimit caps the dense O(n^3) solver.
	hungarianLimit = 1200
	// mcmfLimit caps the exact flow solver: SSP cost grows with the
	// matched-side size times edges, measured at roughly 4s for 2,500
	// requests x 2,000 workers and 6 min at 4x that, so SolverAuto
	// hands anything larger to GreedyAugment (within 1-2% of exact on
	// COM's request-weighted graphs; see EXPERIMENTS.md).
	mcmfLimit = 3000
)

// OfflineResult is the OFF baseline outcome, split per platform.
type OfflineResult struct {
	// Revenue[p] is platform p's share of the joint optimum.
	Revenue map[core.PlatformID]float64
	// Served[p] counts platform p's requests matched in the optimum.
	Served map[core.PlatformID]int
	// TotalWeight is the joint optimal revenue (sum over platforms).
	TotalWeight float64
	// TotalServed is the number of matched requests overall.
	TotalServed int
	// Matching holds the chosen assignments for audit.
	Matching *core.Matching
}

// Offline computes the OFF baseline of Section II-B: the offline optimum
// of COM as a maximum-weight bipartite matching over every feasible
// worker-request edge, with full knowledge of arrivals and payments.
//
// Edge weights: an inner edge (worker and request on the same platform)
// books the full value v; a cross-platform edge books v - v'(w), where
// the offline outer payment v'(w) is the cheapest value the worker has
// ever accepted (its minimum history value) — the most favourable
// payment an omniscient scheduler could offer. OFF is therefore an upper
// bound on every online algorithm, matching its role in the paper's
// evaluation ("can never be achieved in the real world").
//
// All platforms are solved jointly on one graph, so an outer worker is
// never double-booked by two platforms' optima.
func Offline(stream *core.Stream, solver OfflineSolver) (*OfflineResult, error) {
	workers := stream.Workers()
	requests := stream.Requests()

	g := &match.Graph{NWorkers: len(workers), NRequests: len(requests)}
	minAccept := make([]float64, len(workers))
	for i, w := range workers {
		h, err := pricing.NewHistory(w.History)
		if err != nil {
			return nil, fmt.Errorf("platform: offline: worker %d: %w", w.ID, err)
		}
		if h.Len() == 0 {
			minAccept[i] = 0 // accepts anything; payment ~0
		} else {
			minAccept[i] = h.Min()
		}
	}
	// Enumerate feasible pairs through a spatial index rather than the
	// quadratic worker x request scan; the feasibility graph is
	// radius-sparse at every scale the harness runs.
	cell := index.DefaultCell
	for _, w := range workers {
		if w.Radius > cell {
			cell = w.Radius
		}
	}
	ix := index.NewGrid(cell)
	for wi, w := range workers {
		ix.Insert(index.Entry{ID: int64(wi), Circle: w.Range()})
	}
	var buf []index.Entry
	for ri, r := range requests {
		buf = ix.Covering(buf[:0], r.Loc)
		for _, e := range buf {
			wi := int(e.ID)
			w := workers[wi]
			if w.Arrival > r.Arrival {
				continue
			}
			if w.Platform == r.Platform {
				g.Edges = append(g.Edges, match.Edge{Worker: wi, Request: ri, Weight: r.Value})
				continue
			}
			pay := minAccept[wi]
			if pay > r.Value {
				continue // the worker would never accept within the value
			}
			if rev := r.Value - pay; rev > 0 {
				g.Edges = append(g.Edges, match.Edge{Worker: wi, Request: ri, Weight: rev})
			}
		}
	}

	var solved *match.Result
	switch solver {
	case SolverHungarian:
		solved = match.Hungarian(g)
	case SolverMCMF:
		solved = match.MaxWeightFlow(g)
	case SolverGreedy:
		solved = match.GreedyAugment(g)
	case SolverAuto:
		switch {
		case len(workers) <= hungarianLimit && len(requests) <= hungarianLimit:
			solved = match.Hungarian(g)
		case min(len(workers), len(requests)) <= mcmfLimit:
			solved = match.MaxWeightFlow(g)
		default:
			solved = match.GreedyAugment(g)
		}
	default:
		return nil, fmt.Errorf("platform: unknown offline solver %d", solver)
	}
	if err := solved.Validate(g); err != nil {
		return nil, fmt.Errorf("platform: offline solver produced invalid matching: %w", err)
	}

	res := &OfflineResult{
		Revenue:  map[core.PlatformID]float64{},
		Served:   map[core.PlatformID]int{},
		Matching: core.NewMatching(),
	}
	for ri, wi := range solved.WorkerOf {
		if wi == -1 {
			continue
		}
		r, w := requests[ri], workers[wi]
		outer := w.Platform != r.Platform
		a := core.Assignment{Request: r, Worker: w, Outer: outer}
		if outer {
			pay := minAccept[wi]
			if pay <= 0 {
				// Assignment payments must be positive; use a vanishing
				// payment for history-less workers.
				pay = r.Value * 1e-12
			}
			a.Payment = pay
		}
		if err := res.Matching.Add(a); err != nil {
			return nil, fmt.Errorf("platform: offline: %w", err)
		}
		res.Revenue[r.Platform] += a.Revenue()
		res.Served[r.Platform]++
		res.TotalWeight += a.Revenue()
		res.TotalServed++
	}
	return res, nil
}
