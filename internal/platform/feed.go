package platform

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"crossmatch/internal/core"
	"crossmatch/internal/metrics"
	"crossmatch/internal/online"
)

// ErrEngineClosed is the typed error returned when an Engine is driven
// after Finish — the "already run" guard of the incremental runtime.
// Before the serving layer existed every run was a one-shot Run call
// that rebuilt its state from scratch, so a second run on the same
// (sealed) machinery was silently impossible; with a long-lived engine
// handle it is a real caller bug and is rejected loudly. Match it with
// errors.Is.
var ErrEngineClosed = errors.New("engine already finished")

// ErrTimeRegression is the typed error returned when an event is fed
// with an arrival time earlier than one already processed: the engine's
// determinism contract requires the global arrival sequence to be
// non-decreasing, exactly like a validated Stream. Match it with
// errors.Is.
var ErrTimeRegression = errors.New("event time regression")

// ErrUnknownPlatform is the typed error returned when an event names a
// platform the engine was not built with. Stream runs can never hit it
// (a validated Stream only contains its own platforms), but a live
// server feeds whatever the network sends — without this guard an
// unknown platform ID would reach a nil matcher and panic the
// sequencer. Match it with errors.Is.
var ErrUnknownPlatform = errors.New("unknown platform")

// RecycleIDBase is the first worker ID an Engine mints for recycled
// workers (ServiceTicks > 0) when no explicit base is set: high enough
// that externally supplied worker IDs never collide with it. Replay
// callers that need bit-parity with a stream run instead seed the
// allocator with the stream's maximum worker ID via SetRecycleBase.
const RecycleIDBase int64 = 1 << 40

// RequestDecision is the serving-facing outcome of one request event:
// who served it (if anyone), at what payment, and why it ended the way
// it did. Process returns the zero RequestDecision for worker arrivals.
type RequestDecision struct {
	// Request is the decided request.
	Request *core.Request
	// Served reports whether any worker took the request.
	Served bool
	// Reason tags how the decision ended (online.Reason vocabulary:
	// "inner", "outer", "no-workers", "unprofitable", ...).
	Reason online.Reason
	// Worker is the assigned worker; nil when unserved.
	Worker *core.Worker
	// Outer is true when Worker belongs to another platform.
	Outer bool
	// Payment is the outer payment v' (zero for inner assignments).
	Payment float64
	// Revenue is what the request's platform books (v, or v − v').
	Revenue float64
	// Deferred is true when a windowed matcher (BatchCOM) buffered the
	// request instead of deciding it: no outcome field is meaningful and
	// the final decision arrives later through the engine's decision
	// handler when the window flushes (SetDecisionHandler).
	Deferred bool
	// At is the virtual time the decision was made: the arrival tick for
	// the greedy matchers, the window flush tick for a windowed one — so
	// At − Request.Arrival is the request's dispatch wait, the quantity
	// the window+deadline geometry bounds.
	At core.Time
}

// requestDecisionOf converts a matcher decision into the serving-facing
// RequestDecision.
func requestDecisionOf(r *core.Request, d online.Decision, at core.Time) RequestDecision {
	rd := RequestDecision{Request: r, Served: d.Served, Reason: d.Reason, Deferred: d.Deferred, At: at}
	if d.Served {
		rd.Worker = d.Assignment.Worker
		rd.Outer = d.Assignment.Outer
		rd.Payment = d.Assignment.Payment
		rd.Revenue = d.Assignment.Revenue()
	}
	return rd
}

// Engine is the incremental counterpart of Run: the same deterministic
// sequential runtime, fed one arrival event at a time instead of a
// pre-built stream slice. It is what lets a server drive the matchers
// from a live socket — events arrive, decisions return synchronously —
// while a replayed recorded stream reproduces Run bit for bit.
//
// The engine is single-goroutine: exactly one caller (the serving
// layer's sequencer) may invoke Process and Finish, in event-time
// order. Feeding the events of a validated stream in order, with
// SetRecycleBase(max worker ID) when ServiceTicks is in play, yields a
// Result bit-identical to Run on that stream with the same Config.
type Engine struct {
	s        *runState
	recycle  recycleHeap
	recycled int
	last     core.Time
	started  bool
	finished bool
	// sh, when non-nil, is the geo-sharded runtime behind this engine
	// (Config.Shards > 1): events dispatch to per-shard queues and the
	// fields above stay unused. The façade branches internally so the
	// serving layer drives both runtimes through one API.
	sh *shardedEngine
}

// NewEngine builds an engine for the given platform set. The order of
// pids determines per-platform RNG derivation: pass ascending IDs
// (stream.Platforms() order) for parity with stream runs. The matcher
// factory is the same one Run takes; threshold algorithms need their
// a-priori max value folded into the factory by the caller.
func NewEngine(pids []core.PlatformID, factory MatcherFactory, cfg Config) (*Engine, error) {
	if cfg.Shards > 1 {
		sh, err := newShardedEngine(pids, factory, cfg)
		if err != nil {
			return nil, err
		}
		return &Engine{sh: sh}, nil
	}
	s, err := newRunStateFor(pids, factory, cfg)
	if err != nil {
		return nil, err
	}
	// The engine is the run's consume phase from its first event on;
	// sealing here keeps the hub's lock-free configuration reads safe
	// and makes late RegisterPlatform fail loudly, exactly like Run.
	s.hub.seal()
	s.nextID.Store(RecycleIDBase)
	return &Engine{s: s}, nil
}

// SetRecycleBase seeds the recycled-worker ID allocator: the next
// recycled worker gets base+1, matching Run's allocation from the
// stream's maximum worker ID. It must be called before the first event;
// afterwards it returns an error so a mid-run rebase can never fork the
// ID sequence away from a replayed run.
func (e *Engine) SetRecycleBase(base int64) error {
	if e.sh != nil {
		// The sharded runtime rejects ServiceTicks, so no recycled worker
		// is ever minted; accept the call (replay drivers set the base
		// unconditionally) as long as nothing has been fed.
		if e.sh.started || e.sh.closed {
			return fmt.Errorf("platform: SetRecycleBase after the first event; seed the allocator before feeding")
		}
		return nil
	}
	if e.started || e.finished {
		return fmt.Errorf("platform: SetRecycleBase after the first event; seed the allocator before feeding")
	}
	e.s.nextID.Store(base)
	return nil
}

// Process feeds one arrival event. Worker arrivals join their
// platform's waiting list and return the zero RequestDecision; request
// arrivals are decided immediately (the online constraint) and return
// the decision. Recycled workers due at or before the event's time are
// delivered first, exactly as the stream runtime does. Events must be
// fed in non-decreasing time order; a regression returns an error
// wrapping ErrTimeRegression, and any call after Finish returns one
// wrapping ErrEngineClosed.
func (e *Engine) Process(ev core.Event) (RequestDecision, error) {
	if e.sh != nil {
		return e.sh.process(ev)
	}
	if e.finished {
		return RequestDecision{}, fmt.Errorf("platform: %w", ErrEngineClosed)
	}
	if e.started && ev.Time < e.last {
		return RequestDecision{}, fmt.Errorf("platform: %w: event at %d after %d", ErrTimeRegression, ev.Time, e.last)
	}
	pid, ok := eventPlatform(ev)
	if !ok && (ev.Kind == core.WorkerArrival || ev.Kind == core.RequestArrival) {
		return RequestDecision{}, fmt.Errorf("platform: %s event with nil payload", kindLabel(ev.Kind))
	}
	if ok {
		if _, known := e.s.matchers[pid]; !known {
			return RequestDecision{}, fmt.Errorf("platform: %w: %d", ErrUnknownPlatform, pid)
		}
	}
	e.started = true
	e.last = ev.Time
	if err := e.s.settleDue(&e.recycle, &e.recycled, ev.Time, e.s.windowed); err != nil {
		return RequestDecision{}, err
	}
	switch ev.Kind {
	case core.WorkerArrival:
		// Keep the recycled-ID allocator above every externally supplied
		// worker ID so live traffic can never collide with a mint.
		if id := ev.Worker.ID; id > e.s.nextID.Load() {
			e.s.nextID.Store(id)
		}
		if err := e.s.deliver(ev.Worker); err != nil {
			return RequestDecision{}, err
		}
		return RequestDecision{}, nil
	case core.RequestArrival:
		d, reborn, err := e.s.handleRequest(ev)
		if err != nil {
			return RequestDecision{}, err
		}
		if reborn != nil {
			heap.Push(&e.recycle, reborn)
		}
		return requestDecisionOf(ev.Request, d, ev.Time), nil
	default:
		return RequestDecision{}, fmt.Errorf("platform: unknown event kind %d", ev.Kind)
	}
}

// kindLabel names an event kind for error text.
func kindLabel(k core.EventKind) string {
	if k == core.WorkerArrival {
		return "worker"
	}
	return "request"
}

// eventPlatform extracts the platform an arrival event names, false
// for malformed events (nil payload, unknown kind) — those fall
// through to Process's own per-kind handling.
func eventPlatform(ev core.Event) (core.PlatformID, bool) {
	switch {
	case ev.Kind == core.WorkerArrival && ev.Worker != nil:
		return ev.Worker.Platform, true
	case ev.Kind == core.RequestArrival && ev.Request != nil:
		return ev.Request.Platform, true
	}
	return 0, false
}

// AdvanceTime moves the engine's virtual clock to t without feeding an
// event, settling everything due at or before t — recycled-worker
// re-arrivals and, above all, windowed-matcher flushes, which is how
// the serving layer drives BatchCOM windows shut between arrivals. A t
// at or before the clock's current position is a no-op (the settle
// already happened when the clock passed it); a t ahead of it advances
// the clock, so later events must arrive at or after t, exactly like an
// event at t.
func (e *Engine) AdvanceTime(t core.Time) error {
	if e.sh != nil {
		// Nothing to settle: the sharded runtime has no recycled workers
		// and no windowed matchers. Track the clock for regression checks.
		if e.sh.closed {
			return fmt.Errorf("platform: %w", ErrEngineClosed)
		}
		if !e.sh.started || t > e.sh.last {
			e.sh.started = true
			e.sh.last = t
		}
		return nil
	}
	if e.finished {
		return fmt.Errorf("platform: %w", ErrEngineClosed)
	}
	if e.started && t <= e.last {
		return nil
	}
	e.started = true
	e.last = t
	return e.s.settleDue(&e.recycle, &e.recycled, t, e.s.windowed)
}

// SetDecisionHandler registers the hook receiving every window-flushed
// decision as it is folded (nil unregisters). The serving layer uses it
// to answer requests that got a Deferred placeholder from Process. Set
// it before feeding events; the engine reads it without locking from
// whichever call triggers a flush.
func (e *Engine) SetDecisionHandler(fn func(RequestDecision)) {
	if e.sh != nil {
		// Windowed matchers are rejected with Shards > 1, so no deferred
		// decision can ever flush; the handler would never fire.
		return
	}
	e.s.onFlush = fn
}

// Windowed reports whether any platform runs a windowed matcher — when
// false, AdvanceTime can never flush anything and callers may skip
// clock-driving entirely.
func (e *Engine) Windowed() bool {
	if e.sh != nil {
		return false
	}
	return len(e.s.windowed) > 0
}

// HasOpenWindow reports whether some windowed matcher is holding
// buffered requests right now. The serving layer gates its virtual-time
// ticks on it so an idle server logs nothing.
func (e *Engine) HasOpenWindow() bool {
	_, open := e.NextFlush()
	return open
}

// NextFlush returns the earliest due time among open windows, and
// whether any window is open. The serving layer compares it against the
// sequencer's virtual clock to tick (and WAL-log the tick) only when
// the tick would actually flush something.
func (e *Engine) NextFlush() (core.Time, bool) {
	if e.sh != nil {
		return 0, false
	}
	due, open := core.Time(0), false
	for i := range e.s.windowed {
		if t, ok := e.s.windowed[i].m.NextFlush(); ok && (!open || t < due) {
			due, open = t, true
		}
	}
	return due, open
}

// ShardStats returns the live per-shard counters of a geo-sharded
// engine (applied events, queue depths, boundary-crossing events and
// cross-shard borrow outcomes), nil for an unsharded one. The serving
// layer folds it into /v1/metrics on every scrape.
func (e *Engine) ShardStats() []metrics.ShardSnapshot {
	if e.sh == nil {
		return nil
	}
	return e.sh.shardStats()
}

// Finish settles everything still pending — recycled workers due after
// the last event and the final open window, interleaved in virtual-time
// order (every completed service counts as a re-arrival, mirroring the
// end-of-stream settle of the batch runtime) — and returns the
// accumulated Result. The engine is closed afterwards: further Process
// or Finish calls return an error wrapping ErrEngineClosed.
func (e *Engine) Finish() (*Result, error) {
	if e.sh != nil {
		return e.sh.finish()
	}
	if e.finished {
		return nil, fmt.Errorf("platform: %w", ErrEngineClosed)
	}
	e.finished = true
	if err := e.s.settleDue(&e.recycle, &e.recycled, core.Time(math.MaxInt64), e.s.windowed); err != nil {
		return nil, err
	}
	e.s.res.Recycled = e.recycled
	e.s.res.Lent = e.s.hub.Lent()
	e.s.foldPricing()
	return e.s.res, nil
}

// EventSource yields arrival events one at a time — the pull-based
// counterpart of a Stream for callers whose arrivals materialize over
// time (a socket, a queue, a generator). Next returns io.EOF when the
// source is exhausted; any other error aborts the run.
type EventSource interface {
	Next(ctx context.Context) (core.Event, error)
}

// streamSource adapts a pre-built stream to EventSource.
type streamSource struct {
	events []core.Event
	i      int
}

func (ss *streamSource) Next(context.Context) (core.Event, error) {
	if ss.i >= len(ss.events) {
		return core.Event{}, io.EOF
	}
	ev := ss.events[ss.i]
	ss.i++
	return ev, nil
}

// StreamSource returns an EventSource replaying the stream's events in
// arrival order; RunSource over it reproduces Run on the same stream.
func StreamSource(s *core.Stream) EventSource {
	return &streamSource{events: s.Events()}
}

// RunSource executes an event source against one matcher per platform —
// Run with arrivals pulled incrementally instead of sliced up front.
// Cancellation mirrors RunContext: when ctx is canceled the run stops
// at the next event boundary and returns the partial Result alongside
// an error wrapping ctx.Err().
func RunSource(ctx context.Context, pids []core.PlatformID, factory MatcherFactory, src EventSource, cfg Config) (*Result, error) {
	eng, err := NewEngine(pids, factory, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; ; i++ {
		if i&cancelCheckMask == 0 {
			if cerr := ctx.Err(); cerr != nil {
				res, ferr := eng.Finish()
				if ferr != nil {
					return nil, ferr
				}
				return res, fmt.Errorf("platform: run stopped after %d events: %w", i, cerr)
			}
		}
		ev, err := src.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
				res, ferr := eng.Finish()
				if ferr != nil {
					return nil, ferr
				}
				return res, fmt.Errorf("platform: run stopped after %d events: %w", i, err)
			}
			return nil, fmt.Errorf("platform: event source: %w", err)
		}
		if _, err := eng.Process(ev); err != nil {
			return nil, err
		}
	}
	return eng.Finish()
}
