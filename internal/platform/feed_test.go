package platform

import (
	"context"
	"errors"
	"io"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/workload"
)

func feedTestStream(t *testing.T, requests, workers int, seed int64) *core.Stream {
	t.Helper()
	cfg, err := workload.Synthetic(requests, workers, 1.0, "real")
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	stream, err := workload.Generate(cfg, seed)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return stream
}

// assertSameResult compares two results bit for bit: revenue, counters,
// and every assignment (request, worker, payment) in insertion order.
func assertSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if w, g := want.TotalRevenue(), got.TotalRevenue(); w != g {
		t.Fatalf("revenue: want %v, got %v", w, g)
	}
	if w, g := want.TotalServed(), got.TotalServed(); w != g {
		t.Fatalf("served: want %d, got %d", w, g)
	}
	if w, g := want.Recycled, got.Recycled; w != g {
		t.Fatalf("recycled: want %d, got %d", w, g)
	}
	if len(want.Platforms) != len(got.Platforms) {
		t.Fatalf("platforms: want %d, got %d", len(want.Platforms), len(got.Platforms))
	}
	for pid, wp := range want.Platforms {
		gp := got.Platforms[pid]
		if gp == nil {
			t.Fatalf("platform %d missing", pid)
		}
		if wp.Stats != gp.Stats {
			t.Fatalf("platform %d stats: want %+v, got %+v", pid, wp.Stats, gp.Stats)
		}
		wa, ga := wp.Matching.Assignments(), gp.Matching.Assignments()
		if len(wa) != len(ga) {
			t.Fatalf("platform %d assignments: want %d, got %d", pid, len(wa), len(ga))
		}
		for i := range wa {
			if wa[i].Request.ID != ga[i].Request.ID || wa[i].Worker.ID != ga[i].Worker.ID ||
				wa[i].Payment != ga[i].Payment || wa[i].Outer != ga[i].Outer {
				t.Fatalf("platform %d assignment %d: want r%d<-w%d pay %v outer %v, got r%d<-w%d pay %v outer %v",
					pid, i, wa[i].Request.ID, wa[i].Worker.ID, wa[i].Payment, wa[i].Outer,
					ga[i].Request.ID, ga[i].Worker.ID, ga[i].Payment, ga[i].Outer)
			}
		}
	}
}

// TestEngineMatchesRun feeds a stream's events through the incremental
// Engine and asserts the result is bit-identical to the batch Run —
// with and without worker recycling (which exercises SetRecycleBase).
func TestEngineMatchesRun(t *testing.T) {
	stream := feedTestStream(t, 400, 120, 7)
	for _, alg := range []string{AlgTOTA, AlgDemCOM, AlgRamCOM, AlgBatchCOM} {
		for _, ticks := range []core.Time{0, 3} {
			factory, err := FactoryConfigured(alg, AlgConfig{MaxValue: stream.MaxValue(), Window: 8})
			if err != nil {
				t.Fatalf("FactoryConfigured(%s): %v", alg, err)
			}
			cfg := Config{Seed: 99, ServiceTicks: ticks}
			want, err := Run(stream, factory, cfg)
			if err != nil {
				t.Fatalf("%s ticks=%d: Run: %v", alg, ticks, err)
			}
			eng, err := NewEngine(stream.Platforms(), factory, cfg)
			if err != nil {
				t.Fatalf("%s ticks=%d: NewEngine: %v", alg, ticks, err)
			}
			if err := eng.SetRecycleBase(maxWorkerID(stream)); err != nil {
				t.Fatalf("SetRecycleBase: %v", err)
			}
			for _, ev := range stream.Events() {
				if _, err := eng.Process(ev); err != nil {
					t.Fatalf("%s ticks=%d: Process: %v", alg, ticks, err)
				}
			}
			got, err := eng.Finish()
			if err != nil {
				t.Fatalf("%s ticks=%d: Finish: %v", alg, ticks, err)
			}
			assertSameResult(t, want, got)
		}
	}
}

// TestEngineDecisions checks the per-request decisions the engine hands
// back agree with the result it accumulates.
func TestEngineDecisions(t *testing.T) {
	stream := feedTestStream(t, 300, 100, 11)
	factory, err := FactoryFor(AlgDemCOM, stream.MaxValue())
	if err != nil {
		t.Fatalf("FactoryFor: %v", err)
	}
	eng, err := NewEngine(stream.Platforms(), factory, Config{Seed: 5})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	served, revenue := 0, 0.0
	for _, ev := range stream.Events() {
		d, err := eng.Process(ev)
		if err != nil {
			t.Fatalf("Process: %v", err)
		}
		if ev.Kind == core.WorkerArrival {
			if d.Request != nil || d.Served {
				t.Fatalf("worker arrival returned a request decision: %+v", d)
			}
			continue
		}
		if d.Request == nil || d.Request.ID != ev.Request.ID {
			t.Fatalf("decision names wrong request: %+v", d)
		}
		if d.Reason == "" {
			t.Fatalf("decision without a reason: %+v", d)
		}
		if d.Served {
			served++
			revenue += d.Revenue
			if d.Worker == nil {
				t.Fatalf("served decision without a worker: %+v", d)
			}
			if d.Outer != (d.Worker.Platform != d.Request.Platform) {
				t.Fatalf("outer flag disagrees with platforms: %+v", d)
			}
		} else if d.Worker != nil {
			t.Fatalf("unserved decision with a worker: %+v", d)
		}
	}
	res, err := eng.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if res.TotalServed() != served {
		t.Fatalf("decisions served %d, result served %d", served, res.TotalServed())
	}
	if diff := res.TotalRevenue() - revenue; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("decisions revenue %v, result revenue %v", revenue, res.TotalRevenue())
	}
	if served == 0 {
		t.Fatal("workload produced no matches; decisions untested")
	}
}

// TestEngineClosedTypedError is the regression test for the typed
// double-run error: driving or finishing an engine after Finish must
// fail with ErrEngineClosed, not silently no-op.
func TestEngineClosedTypedError(t *testing.T) {
	stream := feedTestStream(t, 20, 10, 3)
	factory, err := FactoryFor(AlgTOTA, stream.MaxValue())
	if err != nil {
		t.Fatalf("FactoryFor: %v", err)
	}
	eng, err := NewEngine(stream.Platforms(), factory, Config{Seed: 1})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatalf("first Finish: %v", err)
	}
	if _, err := eng.Finish(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("second Finish: want ErrEngineClosed, got %v", err)
	}
	if _, err := eng.Process(stream.Events()[0]); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Process after Finish: want ErrEngineClosed, got %v", err)
	}
}

// TestEngineTimeRegression rejects arrivals that run backwards.
func TestEngineTimeRegression(t *testing.T) {
	factory, err := FactoryFor(AlgTOTA, 10)
	if err != nil {
		t.Fatalf("FactoryFor: %v", err)
	}
	eng, err := NewEngine([]core.PlatformID{1}, factory, Config{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	w := &core.Worker{ID: 1, Arrival: 5, Radius: 1, Platform: 1}
	if _, err := eng.Process(core.Event{Time: 5, Kind: core.WorkerArrival, Worker: w}); err != nil {
		t.Fatalf("Process: %v", err)
	}
	r := &core.Request{ID: 1, Arrival: 3, Value: 2, Platform: 1}
	_, err = eng.Process(core.Event{Time: 3, Kind: core.RequestArrival, Request: r})
	if !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("want ErrTimeRegression, got %v", err)
	}
	if err := eng.SetRecycleBase(100); err == nil {
		t.Fatal("SetRecycleBase after the first event must fail")
	}
}

// TestEngineUnknownPlatform: an event naming a platform outside the
// engine's set must be a typed error, not a nil-matcher panic — the
// live serving path feeds whatever the network sends. The rejection
// must not advance the clock or mark the engine started.
func TestEngineUnknownPlatform(t *testing.T) {
	factory, err := FactoryFor(AlgTOTA, 10)
	if err != nil {
		t.Fatalf("FactoryFor: %v", err)
	}
	eng, err := NewEngine([]core.PlatformID{1, 2}, factory, Config{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	r := &core.Request{ID: 1, Arrival: 9, Value: 2, Platform: 7}
	if _, err := eng.Process(core.Event{Time: 9, Kind: core.RequestArrival, Request: r}); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("request on platform 7: want ErrUnknownPlatform, got %v", err)
	}
	w := &core.Worker{ID: 1, Arrival: 9, Radius: 1, Platform: 0}
	if _, err := eng.Process(core.Event{Time: 9, Kind: core.WorkerArrival, Worker: w}); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("worker on platform 0: want ErrUnknownPlatform, got %v", err)
	}
	if _, err := eng.Process(core.Event{Time: 4, Kind: core.WorkerArrival, Worker: nil}); err == nil {
		t.Fatal("nil worker payload accepted")
	}
	// The rejected events above must not have advanced the clock: an
	// earlier valid arrival still goes through.
	w2 := &core.Worker{ID: 2, Arrival: 4, Radius: 1, Platform: 1}
	if _, err := eng.Process(core.Event{Time: 4, Kind: core.WorkerArrival, Worker: w2}); err != nil {
		t.Fatalf("valid worker after rejections: %v", err)
	}
}

// TestRunSourceMatchesRun: the pull-based runtime over a stream-backed
// source reproduces the batch run bit for bit.
func TestRunSourceMatchesRun(t *testing.T) {
	stream := feedTestStream(t, 350, 110, 13)
	factory, err := FactoryFor(AlgDemCOM, stream.MaxValue())
	if err != nil {
		t.Fatalf("FactoryFor: %v", err)
	}
	want, err := Run(stream, factory, Config{Seed: 21})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got, err := RunSource(context.Background(), stream.Platforms(), factory, StreamSource(stream), Config{Seed: 21})
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	assertSameResult(t, want, got)
}

// blockingSource yields a few events then blocks until its context
// dies, standing in for a quiet socket.
type blockingSource struct {
	events []core.Event
	i      int
}

func (b *blockingSource) Next(ctx context.Context) (core.Event, error) {
	if b.i < len(b.events) {
		ev := b.events[b.i]
		b.i++
		return ev, nil
	}
	<-ctx.Done()
	return core.Event{}, ctx.Err()
}

// TestRunSourceCancellation: a canceled context stops the run and
// surfaces ctx.Err, with the partial result intact.
func TestRunSourceCancellation(t *testing.T) {
	stream := feedTestStream(t, 100, 40, 17)
	factory, err := FactoryFor(AlgTOTA, stream.MaxValue())
	if err != nil {
		t.Fatalf("FactoryFor: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	src := &blockingSource{events: stream.Events()[:50]}
	done := make(chan struct{})
	var res *Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = RunSource(ctx, stream.Platforms(), factory, src, Config{Seed: 2})
	}()
	cancel()
	<-done
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", runErr)
	}
	if res == nil {
		t.Fatal("partial result missing on cancellation")
	}
}

// TestStreamSourceEOF: the adapter terminates cleanly.
func TestStreamSourceEOF(t *testing.T) {
	stream := feedTestStream(t, 10, 5, 1)
	src := StreamSource(stream)
	n := 0
	for {
		_, err := src.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		n++
	}
	if n != stream.Len() {
		t.Fatalf("source yielded %d events, stream has %d", n, stream.Len())
	}
}
