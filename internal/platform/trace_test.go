package platform

import (
	"testing"
	"time"

	"crossmatch/internal/fault"
	"crossmatch/internal/trace"
)

// TestTracedRunBitIdenticalToUntraced guards the tracing determinism
// contract: the tracer never draws from matcher RNGs, so a sequential
// run's matching — every assignment and payment — is bit-identical with
// tracing off, on at full rate, and on at a sampled rate.
func TestTracedRunBitIdenticalToUntraced(t *testing.T) {
	stream := multiStream(t, 3, 400, 80, 51)
	for _, alg := range []string{AlgDemCOM, AlgRamCOM, AlgTOTA, AlgGreedyRT} {
		factory, err := FactoryFor(alg, stream.MaxValue())
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Run(stream, factory, Config{Seed: 51})
		if err != nil {
			t.Fatal(err)
		}
		for _, sample := range []float64{0, 0.3} {
			tr := trace.New(trace.Options{Capacity: 1024, Seed: 5})
			traced, err := Run(stream, factory, Config{Seed: 51, Trace: tr, TraceSample: sample})
			if err != nil {
				t.Fatal(err)
			}
			if resultKey(plain) != resultKey(traced) {
				t.Errorf("%s: tracing (sample=%g) changed the matching", alg, sample)
			}
			if tr.Recorded() == 0 {
				t.Errorf("%s: tracer recorded no spans at sample=%g", alg, sample)
			}
		}
	}
}

// TestTracedRunRecordsOutcomesAndStages checks end-to-end span content:
// a traced DemCOM run must tag every decision with a known outcome, and
// cooperative assignments must carry pricing/probes/claim stage laps and
// the outer payment.
func TestTracedRunRecordsOutcomesAndStages(t *testing.T) {
	stream := multiStream(t, 3, 400, 80, 23)
	factory, err := FactoryFor(AlgDemCOM, stream.MaxValue())
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{Capacity: 4096})
	res, err := Run(stream, factory, Config{Seed: 23, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	requests := 0
	for _, p := range res.Platforms {
		requests += p.Stats.Requests
	}
	spans := tr.Spans()
	if len(spans) != requests {
		t.Fatalf("traced %d spans for %d requests", len(spans), requests)
	}
	known := map[string]bool{
		"inner": true, "inner-fallback": true, "outer": true,
		"no-workers": true, "unprofitable": true, "no-acceptor": true,
		"claims-lost": true, "below-threshold": true,
	}
	outer := 0
	for _, sp := range spans {
		if !known[sp.Outcome] {
			t.Fatalf("span %d: unknown outcome %q", sp.Seq, sp.Outcome)
		}
		if sp.Outcome != "outer" {
			continue
		}
		outer++
		if sp.Payment <= 0 {
			t.Errorf("outer span %d: payment %g", sp.Seq, sp.Payment)
		}
		if sp.Probes <= 0 {
			t.Errorf("outer span %d: no probes recorded", sp.Seq)
		}
		stages := map[string]bool{}
		for _, l := range sp.Stages {
			stages[l.Stage] = true
		}
		for _, want := range []string{"inner-lookup", "eligibility", "pricing", "probes", "claim"} {
			if !stages[want] {
				t.Errorf("outer span %d: missing stage %q (have %v)", sp.Seq, want, sp.Stages)
			}
		}
	}
	if outer != res.CooperativeServed() {
		t.Errorf("outer spans %d != cooperative served %d", outer, res.CooperativeServed())
	}
}

// TestTraceParallelChaos is the race stress for the tracing layer: the
// concurrent per-platform runtime with an aggressive fault plan, a tiny
// span ring forcing constant wrap-around, and a shared tracer. Under
// -race this exercises recorder/ring/fault-observer interleavings; the
// assertions pin the accounting (recorded = requests, dropped matches
// retention) and that injected faults land inside spans.
func TestTraceParallelChaos(t *testing.T) {
	stream := multiStream(t, 4, 600, 120, 13)
	factory, err := FactoryFor(AlgDemCOM, stream.MaxValue())
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{Capacity: 32})
	res, err := Run(stream, factory, Config{
		Seed:             13,
		PlatformParallel: true,
		Trace:            tr,
		Faults: &fault.Plan{
			DropRate:       0.3,
			ClaimErrorRate: 0.2,
			LatencyRate:    0.5,
			LatencyMin:     time.Microsecond,
			LatencyMax:     10 * time.Microsecond,
			Retry:          fault.RetryPolicy{MaxAttempts: 2, Deadline: 5 * time.Millisecond},
			Breaker:        fault.BreakerConfig{FailureThreshold: 4, CooldownTicks: 50},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertAtomicAssignments(t, res)

	requests := 0
	for _, p := range res.Platforms {
		requests += p.Stats.Requests
	}
	if got := tr.Recorded(); got != uint64(requests) {
		t.Errorf("recorded %d spans for %d requests", got, requests)
	}
	spans := tr.Spans()
	if len(spans) != 4*32 {
		t.Errorf("retained %d spans, want 4 platforms x capacity 32", len(spans))
	}
	if want := tr.Recorded() - uint64(len(spans)); tr.Dropped() != want {
		t.Errorf("dropped %d, want %d", tr.Dropped(), want)
	}
	faults := 0
	for _, sp := range spans {
		faults += len(sp.Faults)
	}
	if faults == 0 {
		t.Error("chaos run recorded no fault events in any retained span")
	}
}
