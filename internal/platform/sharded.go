package platform

// The geo-sharded runtime: matching state partitioned by spatial grid
// cell, one engine goroutine per shard, cross-shard cooperation through
// the internal/shard claim protocol. Each shard owns a full runState —
// its own hub, matcher instances and per-platform results — holding
// exactly the workers whose cells it owns; a request is matched by the
// shard owning its cell, scanning local waiting lists plus (for
// boundary requests) the hubs of the shards its eligibility disk
// touches, with remote claims committed through the target hub's
// per-worker atomic claim word.
//
// Determinism: the dispatcher (the stream partition pass offline, the
// serving sequencer live) assigns every event a global sequence number;
// the shard.Coordinator's frontier gates order all cross-shard
// interaction by those numbers, so with a zero stall timeout repeated
// runs are bit-identical. The documented merge order is cell-major,
// ID-canonical: shard results merge in ascending shard index per
// platform, and each shard's matching is already in its own event
// order, so the merged Result is a pure function of (stream, factory,
// Config).
//
// The sharded result intentionally differs from the unsharded engine's:
// inner matching is shard-local (a platform's worker in another shard's
// cells is invisible to its own requests there — the locality
// approximation Kanoria's dynamic spatial matching results justify:
// match quality is dominated by local supply density), and cooperation
// reaches exactly the shards a request's disk touches. Shards <= 1
// never enters this file and stays bit-identical to previous releases.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
	"crossmatch/internal/index"
	"crossmatch/internal/metrics"
	"crossmatch/internal/online"
	"crossmatch/internal/shard"
	"crossmatch/internal/stats"
)

// ErrShardUnsupported is the typed error returned when a Config
// combines Shards > 1 with a feature the sharded runtime does not
// support: ServiceTicks (worker recycling re-arrivals would need
// cross-shard re-delivery), PlatformParallel (the shard loops are the
// parallelism), Trace (recorders are bound per matcher, and the shard
// copies would fight over rings), or windowed matchers (window flushes
// would need a cross-shard virtual-time barrier). Match it with
// errors.Is.
var ErrShardUnsupported = errors.New("unsupported with Shards > 1")

// ErrShardReach is the typed error returned when a worker's eligibility
// radius exceeds the reach the sharded engine planned its boundary
// crossings for — admitting the worker could make a request's target
// set under-approximate and silently lose cooperation candidates.
var ErrShardReach = errors.New("worker radius exceeds ShardReach")

// testShardHold, when non-nil, is called by every shard loop before
// each event with (shard, seq) — the chaos-test seam for stalling a
// shard mid-run. Never set outside tests.
var testShardHold func(shardIdx int, seq int64)

// shardSeed derives shard i's Config.Seed: shard 0 keeps the run seed
// (so a structurally-sharded n=1 run draws identically to the unsharded
// engine) and later shards decorrelate through a Weyl-sequence step.
func shardSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	const weyl uint64 = 0x9E3779B97F4A7C15
	return seed ^ int64(weyl*uint64(i))
}

func shardUnsupported(cfg Config) error {
	switch {
	case cfg.ServiceTicks > 0:
		return fmt.Errorf("platform: ServiceTicks %w", ErrShardUnsupported)
	case cfg.PlatformParallel:
		return fmt.Errorf("platform: PlatformParallel %w", ErrShardUnsupported)
	case cfg.Trace != nil:
		return fmt.Errorf("platform: Trace %w", ErrShardUnsupported)
	}
	return nil
}

// shardCounters is one shard's observability slice, written by its loop
// and read by metrics snapshots.
type shardCounters struct {
	applied   atomic.Int64
	boundary  atomic.Int64
	borrows   atomic.Int64
	conflicts atomic.Int64
	degraded  atomic.Int64
}

// shardedRun is the shared machinery of a sharded run: the partitioner
// and coordinator, one runState per shard, and the per-shard boundary
// context the cooperation views read.
type shardedRun struct {
	cfg    Config
	part   *shard.Partitioner
	co     *shard.Coordinator
	reach  float64
	pids   []core.PlatformID
	states []*runState
	// cur[s].targets is the granted target set of the boundary event
	// shard s is currently processing (nil otherwise); only shard s's
	// goroutine touches its entry while the matcher runs.
	cur   []struct{ targets []int }
	stats []shardCounters

	errMu    sync.Mutex
	firstErr error
	errSeq   int64
}

// fail records the error of the earliest-sequence failing event and
// closes the coordinator so every other shard drains out.
func (sr *shardedRun) fail(seq int64, err error) {
	sr.errMu.Lock()
	if sr.firstErr == nil || seq < sr.errSeq {
		sr.firstErr, sr.errSeq = err, seq
	}
	sr.errMu.Unlock()
	sr.co.Close()
}

func (sr *shardedRun) loadErr() error {
	sr.errMu.Lock()
	defer sr.errMu.Unlock()
	return sr.firstErr
}

func newShardedRun(pids []core.PlatformID, factory MatcherFactory, cfg Config, reach float64) (*shardedRun, error) {
	if err := shardUnsupported(cfg); err != nil {
		return nil, err
	}
	n := cfg.Shards
	sr := &shardedRun{
		cfg:   cfg,
		part:  shard.NewPartitioner(n, index.DefaultCell),
		reach: reach,
		pids:  append([]core.PlatformID(nil), pids...),
		cur:   make([]struct{ targets []int }, n),
		stats: make([]shardCounters, n),
	}
	sr.co = shard.New(n, shard.Options{
		StallTimeout: cfg.ShardStallTimeout,
		Metrics:      cfg.Metrics,
	})
	for i := 0; i < n; i++ {
		scfg := cfg
		scfg.Seed = shardSeed(cfg.Seed, i)
		st, err := newRunStateWith(pids, factory, scfg, sr.viewWrap(i), false)
		if err != nil {
			return nil, err
		}
		if len(st.windowed) > 0 {
			return nil, fmt.Errorf("platform: windowed matcher %q %w", st.windowed[0].m.Name(), ErrShardUnsupported)
		}
		st.hub.seal()
		sr.states = append(sr.states, st)
	}
	cfg.Metrics.RunStarted()
	return sr, nil
}

// viewWrap splices the cross-shard cooperation view in front of shard
// i's hub views: local candidates keep flowing from the shard's own
// hub, and boundary requests additionally see (and claim from) the hubs
// of their granted target shards.
func (sr *shardedRun) viewWrap(i int) func(core.PlatformID, online.CoopView) online.CoopView {
	return func(pid core.PlatformID, base online.CoopView) online.CoopView {
		return &shardCoopView{sr: sr, si: i, pid: pid, base: base, remote: map[int64]int{}}
	}
}

// shardCoopView is one platform-on-one-shard's window onto the other
// platforms' workers: the local shard's hub view plus, for the boundary
// event in flight, the target shards' hubs. Like hubView it is bound to
// the goroutine driving the shard and reuses its scratch across
// requests.
type shardCoopView struct {
	sr   *shardedRun
	si   int
	pid  core.PlatformID
	base online.CoopView
	now  core.Time
	// remote maps a sighted remote worker to the shard whose hub holds
	// it, so Claim can route the commit to the right claim word.
	remote  map[int64]int
	cands   []online.Candidate
	workers []*core.Worker
}

// EligibleOuter returns the local shard's cooperative candidates,
// extended — for boundary requests — with the other platforms' workers
// waiting in the granted target shards. Remote candidates append after
// local ones in ascending shard order, each shard's in its hub
// registration order: the deterministic candidate order matcher RNG
// draws depend on. Remote hub access takes the target hub's own locks
// (the target shard is parked at its gate during a deterministic run,
// and the locks keep degraded runs valid), and bypasses the fault
// injector — injector state belongs to the target's goroutine.
func (v *shardCoopView) EligibleOuter(r *core.Request) []online.Candidate {
	v.now = r.Arrival
	if len(v.remote) > 0 {
		clear(v.remote)
	}
	local := v.base.EligibleOuter(r)
	targets := v.sr.cur[v.si].targets
	if len(targets) == 0 {
		return local
	}
	v.cands = append(v.cands[:0], local...)
	for _, t := range targets {
		v.appendRemote(t, r)
	}
	return v.cands
}

func (v *shardCoopView) appendRemote(t int, r *core.Request) {
	th := v.sr.states[t].hub
	if th.CoopDisabled {
		return
	}
	v.workers = v.workers[:0]
	for _, pid := range th.order {
		if pid == v.pid {
			continue
		}
		v.workers = th.pools[pid].AppendCovering(v.workers, r)
	}
	if len(v.workers) == 0 {
		return
	}
	th.lockTables()
	for _, w := range v.workers {
		hist := th.histories[w.ID]
		if hist == nil {
			// Assigned between the pool scan and now (degraded mode
			// only); already out of every waiting list.
			continue
		}
		v.remote[w.ID] = t
		v.cands = append(v.cands, online.Candidate{Worker: w, History: hist})
	}
	th.mu.Unlock()
}

// Claim commits a claim for a sighted worker: remote workers commit
// against their owning shard's hub — the cross-shard borrow — and
// everything else delegates to the local hub view.
func (v *shardCoopView) Claim(workerID int64) bool {
	t, ok := v.remote[workerID]
	if !ok {
		return v.base.Claim(workerID)
	}
	cnt := &v.sr.stats[v.si]
	if v.sr.states[t].hub.claim(v.pid, workerID, v.now, false) {
		cnt.borrows.Add(1)
		v.sr.cfg.Metrics.CrossShardBorrow()
		return true
	}
	cnt.conflicts.Add(1)
	return false
}

// shardSnapshots folds the per-shard counters into the metrics shape;
// queueDepth, when non-nil, supplies live queue depths (engine mode).
func (sr *shardedRun) shardSnapshots(queueDepth func(int) int64) []metrics.ShardSnapshot {
	out := make([]metrics.ShardSnapshot, len(sr.states))
	for i := range out {
		c := &sr.stats[i]
		out[i] = metrics.ShardSnapshot{
			Shard:          i,
			Applied:        c.applied.Load(),
			BoundaryEvents: c.boundary.Load(),
			Borrows:        c.borrows.Load(),
			ClaimConflicts: c.conflicts.Load(),
			Degraded:       c.degraded.Load(),
		}
		if queueDepth != nil {
			out[i].QueueDepth = queueDepth(i)
		}
	}
	return out
}

// merge combines the per-shard results under the documented cell-major,
// ID-canonical order: per platform, shard results fold in ascending
// shard index; every assignment re-validates through Matching.Add, so a
// worker assigned by two shards — impossible under the protocol, but
// the property the whole design rests on — fails the merge loudly
// instead of producing an invalid Result.
func (sr *shardedRun) merge() (*Result, error) {
	res := &Result{
		Platforms: make(map[core.PlatformID]*PlatformResult, len(sr.pids)),
		Lent:      make(map[core.PlatformID]int, len(sr.pids)),
	}
	for _, pid := range sr.pids {
		agg := &PlatformResult{
			ID:       pid,
			Name:     sr.states[0].res.Platforms[pid].Name,
			Matching: core.NewMatching(),
			Latency:  stats.NewReservoir(0, sr.cfg.Seed^int64(pid)),
		}
		for si, st := range sr.states {
			pr := st.res.Platforms[pid]
			agg.Stats.Requests += pr.Stats.Requests
			agg.Stats.Served += pr.Stats.Served
			agg.Stats.ServedInner += pr.Stats.ServedInner
			agg.Stats.ServedOuter += pr.Stats.ServedOuter
			agg.Stats.CoopAttempted += pr.Stats.CoopAttempted
			agg.Stats.Revenue += pr.Stats.Revenue
			agg.Stats.PaymentSum += pr.Stats.PaymentSum
			agg.Stats.PaymentRate += pr.Stats.PaymentRate
			agg.ResponseTotal += pr.ResponseTotal
			if pr.ResponseMax > agg.ResponseMax {
				agg.ResponseMax = pr.ResponseMax
			}
			agg.Latency.Merge(pr.Latency)
			for _, a := range pr.Matching.Assignments() {
				if err := agg.Matching.Add(a); err != nil {
					return nil, fmt.Errorf("platform %d: shard %d merge: %w", pid, si, err)
				}
			}
		}
		res.Platforms[pid] = agg
	}
	for _, st := range sr.states {
		for pid, n := range st.hub.Lent() {
			res.Lent[pid] += n
		}
	}
	return res, nil
}

// foldShardPricing folds every shard's matcher pricing counters; call
// only after the shard loops have stopped.
func (sr *shardedRun) foldShardPricing() {
	for _, st := range sr.states {
		st.foldPricing()
	}
}

// shardEventLoc returns the location that assigns an event to a shard —
// the same key the fleet router partitions by (route.SplitStream).
func shardEventLoc(ev core.Event) (geo.Point, bool) {
	switch {
	case ev.Kind == core.WorkerArrival && ev.Worker != nil:
		return ev.Worker.Loc, true
	case ev.Kind == core.RequestArrival && ev.Request != nil:
		return ev.Request.Loc, true
	}
	return geo.Point{}, false
}

// maxWorkerRadius scans a stream for the largest worker eligibility
// radius — what a stream run derives ShardReach from.
func maxWorkerRadius(stream *core.Stream) float64 {
	r := 0.0
	for _, w := range stream.Workers() {
		if w.Radius > r {
			r = w.Radius
		}
	}
	return r
}

// shardPlan is one shard's slice of a partitioned stream: the indices
// of its events in the global stream (the index doubles as the event's
// global sequence number) and the precomputed boundary subset with its
// target sets.
type shardPlan struct {
	evIdx    []int32
	bSeqs    []int64
	bTargets [][]int
}

// partition deals a stream's events to shards and classifies boundary
// requests, in one single-goroutine pass (the partitioner is not
// concurrent-safe, and the pass is what assigns sequence numbers).
func (sr *shardedRun) partition(stream *core.Stream) ([]shardPlan, error) {
	events := stream.Events()
	plans := make([]shardPlan, len(sr.states))
	counts := make([]int, len(sr.states))
	for _, ev := range events {
		loc, ok := shardEventLoc(ev)
		if !ok {
			return nil, fmt.Errorf("platform: sharded run: event with nil payload")
		}
		counts[sr.part.ShardOf(loc)]++
	}
	for s := range plans {
		plans[s].evIdx = make([]int32, 0, counts[s])
	}
	var tscratch []int
	for i, ev := range events {
		p, _ := shardEventLoc(ev)
		s := sr.part.ShardOf(p)
		pl := &plans[s]
		pl.evIdx = append(pl.evIdx, int32(i))
		if ev.Kind == core.RequestArrival && !sr.cfg.DisableCoop {
			tscratch = sr.part.AppendTargets(tscratch[:0], s, p, sr.reach)
			if len(tscratch) > 0 {
				pl.bSeqs = append(pl.bSeqs, int64(i))
				pl.bTargets = append(pl.bTargets, append([]int(nil), tscratch...))
			}
		}
	}
	return plans, nil
}

// bulkLoop drives one shard through its slice of a partitioned stream.
// Sequence numbers are the global event indices; the loop publishes its
// progress frontier after each event and resolves its boundary frontier
// as boundary events commit.
func (sr *shardedRun) bulkLoop(ctx context.Context, si int, pl shardPlan, events []core.Event) {
	st := sr.states[si]
	cnt := &sr.stats[si]
	bi := 0
	for k, idx := range pl.evIdx {
		if k&cancelCheckMask == 0 {
			if cerr := ctx.Err(); cerr != nil {
				sr.fail(int64(idx), fmt.Errorf("shard %d stopped after %d of %d events: %w", si, k, len(pl.evIdx), cerr))
				return
			}
		}
		seq := int64(idx)
		ev := events[idx]
		if hold := testShardHold; hold != nil {
			hold(si, seq)
		}
		boundary := bi < len(pl.bSeqs) && pl.bSeqs[bi] == seq
		if boundary {
			g := sr.co.WaitClaim(si, seq, pl.bTargets[bi], ev.Time)
			if !g.OK {
				return
			}
			sr.cur[si].targets = g.Targets
			cnt.boundary.Add(1)
			if g.Degraded {
				cnt.degraded.Add(1)
			}
		} else if !sr.co.WaitLocal(si, seq) {
			return
		}
		var err error
		switch ev.Kind {
		case core.WorkerArrival:
			err = st.deliver(ev.Worker)
		case core.RequestArrival:
			_, _, err = st.handleRequest(ev)
		}
		sr.cur[si].targets = nil
		if boundary {
			bi++
			nb := shard.None
			if bi < len(pl.bSeqs) {
				nb = pl.bSeqs[bi]
			}
			sr.co.SetBoundary(si, nb)
		}
		next := shard.None
		if k+1 < len(pl.evIdx) {
			next = int64(pl.evIdx[k+1])
		}
		sr.co.SetPend(si, next)
		cnt.applied.Add(1)
		if err != nil {
			sr.fail(seq, err)
			return
		}
	}
}

// runSharded is the bulk (stream) entry point of the sharded runtime.
func runSharded(ctx context.Context, stream *core.Stream, factory MatcherFactory, cfg Config) (*Result, error) {
	reach := cfg.ShardReach
	maxR := maxWorkerRadius(stream)
	if reach <= 0 {
		reach = maxR
	} else if maxR > reach {
		return nil, fmt.Errorf("platform: %w: stream max %v > %v", ErrShardReach, maxR, cfg.ShardReach)
	}
	sr, err := newShardedRun(stream.Platforms(), factory, cfg, reach)
	if err != nil {
		return nil, err
	}
	plans, err := sr.partition(stream)
	if err != nil {
		return nil, err
	}
	for s := range plans {
		first, firstB := shard.None, shard.None
		if len(plans[s].evIdx) > 0 {
			first = int64(plans[s].evIdx[0])
		}
		if len(plans[s].bSeqs) > 0 {
			firstB = plans[s].bSeqs[0]
		}
		sr.co.SetPend(s, first)
		sr.co.SetBoundary(s, firstB)
	}
	events := stream.Events()
	var wg sync.WaitGroup
	for s := range sr.states {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sr.bulkLoop(ctx, s, plans[s], events)
		}(s)
	}
	wg.Wait()
	sr.co.Close()
	sr.foldShardPricing()
	cfg.Metrics.RecordShards(sr.shardSnapshots(nil))
	if err := sr.loadErr(); err != nil {
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			// Mirror runSequential's cancellation contract: partial
			// Result alongside the wrapped context error.
			res, merr := sr.merge()
			if merr != nil {
				return nil, merr
			}
			return res, fmt.Errorf("platform: %w", err)
		}
		return nil, err
	}
	return sr.merge()
}

// shardItem is one dispatched event in an engine-mode shard queue.
type shardItem struct {
	seq      int64
	ev       core.Event
	targets  []int
	boundary bool
	// reply, when non-nil, receives the decision synchronously (request
	// arrivals); worker arrivals flow fire-and-forget.
	reply chan shardReply
}

type shardReply struct {
	d   RequestDecision
	err error
}

// shardQueue is one shard's FIFO dispatch queue. It owns the shard's
// coordinator frontiers: pend tracks the oldest queued-or-in-flight
// sequence number, the boundary frontier the oldest queued boundary
// event — maintained at push/complete time under the queue lock, which
// is what makes the propose phase atomic with the enqueue.
type shardQueue struct {
	co    *shard.Coordinator
	si    int
	mu    sync.Mutex
	cond  *sync.Cond
	items []shardItem
	head  int
	// bseqs are the sequence numbers of queued-or-in-flight boundary
	// items, FIFO.
	bseqs    []int64
	inflight bool
	closed   bool
	depth    atomic.Int64
}

func newShardQueue(co *shard.Coordinator, si int) *shardQueue {
	q := &shardQueue{co: co, si: si}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *shardQueue) push(it shardItem) {
	q.mu.Lock()
	wasIdle := q.head == len(q.items) && !q.inflight
	q.items = append(q.items, it)
	q.depth.Add(1)
	if wasIdle {
		q.co.SetPend(q.si, it.seq)
	}
	if it.boundary {
		q.bseqs = append(q.bseqs, it.seq)
		if len(q.bseqs) == 1 {
			q.co.SetBoundary(q.si, it.seq)
		}
	}
	q.cond.Signal()
	q.mu.Unlock()
}

// pop blocks for the next item; ok=false means the queue closed empty.
// The popped item counts as in flight: the shard's pend frontier stays
// at its sequence number until complete.
func (q *shardQueue) pop() (shardItem, bool) {
	q.mu.Lock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		q.mu.Unlock()
		return shardItem{}, false
	}
	it := q.items[q.head]
	q.items[q.head] = shardItem{}
	q.head++
	if q.head > 256 && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	q.inflight = true
	q.depth.Add(-1)
	q.mu.Unlock()
	return it, true
}

// complete resolves the frontiers after an item finishes processing.
func (q *shardQueue) complete(it shardItem) {
	q.mu.Lock()
	q.inflight = false
	if it.boundary {
		q.bseqs = q.bseqs[1:]
		nb := shard.None
		if len(q.bseqs) > 0 {
			nb = q.bseqs[0]
		}
		q.co.SetBoundary(q.si, nb)
	}
	next := shard.None
	if q.head < len(q.items) {
		next = q.items[q.head].seq
	}
	q.co.SetPend(q.si, next)
	q.mu.Unlock()
}

func (q *shardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// shardedEngine is the incremental (serving) face of the sharded
// runtime: the Engine façade dispatches events to per-shard queues and
// the shard loops drive the same gates and views as the bulk path.
// Worker arrivals are asynchronous (their errors surface on the next
// Process call); request arrivals block for their decision, during
// which every other shard keeps consuming its queue.
type shardedEngine struct {
	sr      *shardedRun
	queues  []*shardQueue
	wg      sync.WaitGroup
	reply   chan shardReply
	nextSeq int64
	last    core.Time
	started bool
	closed  bool
}

func newShardedEngine(pids []core.PlatformID, factory MatcherFactory, cfg Config) (*shardedEngine, error) {
	if cfg.ShardReach <= 0 {
		return nil, fmt.Errorf("platform: sharded engine requires ShardReach > 0 (the incremental engine cannot derive it from future arrivals)")
	}
	sr, err := newShardedRun(pids, factory, cfg, cfg.ShardReach)
	if err != nil {
		return nil, err
	}
	se := &shardedEngine{sr: sr, reply: make(chan shardReply, 1)}
	for s := range sr.states {
		se.queues = append(se.queues, newShardQueue(sr.co, s))
	}
	for s := range sr.states {
		se.wg.Add(1)
		go func(s int) {
			defer se.wg.Done()
			se.loop(s)
		}(s)
	}
	return se, nil
}

func (se *shardedEngine) loop(si int) {
	sr := se.sr
	st := sr.states[si]
	q := se.queues[si]
	cnt := &sr.stats[si]
	for {
		it, ok := q.pop()
		if !ok {
			return
		}
		if hold := testShardHold; hold != nil {
			hold(si, it.seq)
		}
		gated := true
		if it.boundary {
			g := sr.co.WaitClaim(si, it.seq, it.targets, it.ev.Time)
			gated = g.OK
			if gated {
				sr.cur[si].targets = g.Targets
				cnt.boundary.Add(1)
				if g.Degraded {
					cnt.degraded.Add(1)
				}
			}
		} else {
			gated = sr.co.WaitLocal(si, it.seq)
		}
		if !gated {
			// Coordinator closed: another shard failed. Drain without
			// processing so a blocked Process caller gets an answer.
			if it.reply != nil {
				err := sr.loadErr()
				if err == nil {
					err = fmt.Errorf("platform: %w", ErrEngineClosed)
				}
				it.reply <- shardReply{err: err}
			}
			q.complete(it)
			continue
		}
		var rep shardReply
		switch it.ev.Kind {
		case core.WorkerArrival:
			if err := st.deliver(it.ev.Worker); err != nil {
				sr.fail(it.seq, err)
			}
		case core.RequestArrival:
			d, _, err := st.handleRequest(it.ev)
			if err != nil {
				sr.fail(it.seq, err)
				rep.err = err
			} else {
				rep.d = requestDecisionOf(it.ev.Request, d, it.ev.Time)
			}
		}
		sr.cur[si].targets = nil
		cnt.applied.Add(1)
		if it.reply != nil {
			it.reply <- rep
		}
		q.complete(it)
	}
}

// process implements Engine.Process for the sharded engine; the caller
// contract (single sequencer goroutine, non-decreasing times) is the
// same.
func (se *shardedEngine) process(ev core.Event) (RequestDecision, error) {
	if se.closed {
		return RequestDecision{}, fmt.Errorf("platform: %w", ErrEngineClosed)
	}
	if err := se.sr.loadErr(); err != nil {
		return RequestDecision{}, err
	}
	if se.started && ev.Time < se.last {
		return RequestDecision{}, fmt.Errorf("platform: %w: event at %d after %d", ErrTimeRegression, ev.Time, se.last)
	}
	pid, ok := eventPlatform(ev)
	if !ok && (ev.Kind == core.WorkerArrival || ev.Kind == core.RequestArrival) {
		return RequestDecision{}, fmt.Errorf("platform: %s event with nil payload", kindLabel(ev.Kind))
	}
	if ok {
		if _, known := se.sr.states[0].matchers[pid]; !known {
			return RequestDecision{}, fmt.Errorf("platform: %w: %d", ErrUnknownPlatform, pid)
		}
	}
	se.started = true
	se.last = ev.Time
	switch ev.Kind {
	case core.WorkerArrival:
		if ev.Worker.Radius > se.sr.reach {
			return RequestDecision{}, fmt.Errorf("platform: %w: worker %d radius %v > %v", ErrShardReach, ev.Worker.ID, ev.Worker.Radius, se.sr.reach)
		}
		seq := se.nextSeq
		se.nextSeq++
		si := se.sr.part.ShardOf(ev.Worker.Loc)
		se.queues[si].push(shardItem{seq: seq, ev: ev})
		return RequestDecision{}, nil
	case core.RequestArrival:
		seq := se.nextSeq
		se.nextSeq++
		si := se.sr.part.ShardOf(ev.Request.Loc)
		var targets []int
		if !se.sr.cfg.DisableCoop {
			targets = se.sr.part.AppendTargets(nil, si, ev.Request.Loc, se.sr.reach)
		}
		se.queues[si].push(shardItem{
			seq: seq, ev: ev,
			targets:  targets,
			boundary: len(targets) > 0,
			reply:    se.reply,
		})
		rep := <-se.reply
		return rep.d, rep.err
	default:
		return RequestDecision{}, fmt.Errorf("platform: unknown event kind %d", ev.Kind)
	}
}

// finish drains the queues, stops the loops and merges. Mirrors
// Engine.Finish semantics (nothing recycled or windowed to settle —
// both are rejected up front).
func (se *shardedEngine) finish() (*Result, error) {
	if se.closed {
		return nil, fmt.Errorf("platform: %w", ErrEngineClosed)
	}
	se.closed = true
	for _, q := range se.queues {
		q.close()
	}
	se.wg.Wait()
	se.sr.co.Close()
	se.sr.foldShardPricing()
	se.sr.cfg.Metrics.RecordShards(se.shardStats())
	if err := se.sr.loadErr(); err != nil {
		return nil, err
	}
	res, err := se.sr.merge()
	if err != nil {
		return nil, err
	}
	res.Recycled = 0
	return res, nil
}

// shardStats folds the live per-shard counters, including queue depths.
func (se *shardedEngine) shardStats() []metrics.ShardSnapshot {
	return se.sr.shardSnapshots(func(i int) int64 { return se.queues[i].depth.Load() })
}
