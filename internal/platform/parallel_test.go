package platform

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
	"crossmatch/internal/metrics"
	"crossmatch/internal/online"
	"crossmatch/internal/pricing"
	"crossmatch/internal/workload"
)

// multiStream generates a multi-platform synthetic stream.
func multiStream(t *testing.T, platforms, requests, workers int, seed int64) *core.Stream {
	t.Helper()
	cfg, err := workload.SyntheticMulti(platforms, requests, workers, 1.2, "real")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.Generate(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return stream
}

// assertAtomicAssignments checks the cross-platform invariant the
// per-platform Matching.Validate cannot see: no worker is assigned by
// two different platforms (a lost claim race would do exactly that).
func assertAtomicAssignments(t *testing.T, res *Result) {
	t.Helper()
	if err := res.Validate(); err != nil {
		t.Fatalf("invalid matching: %v", err)
	}
	assignedBy := map[int64]core.PlatformID{}
	for pid, p := range res.Platforms {
		if p.Stats.Served != p.Matching.Len() {
			t.Errorf("platform %d: served %d != matching size %d", pid, p.Stats.Served, p.Matching.Len())
		}
		for _, a := range p.Matching.Assignments() {
			if prev, dup := assignedBy[a.Worker.ID]; dup {
				t.Fatalf("worker %d assigned by both platform %d and platform %d", a.Worker.ID, prev, pid)
			}
			assignedBy[a.Worker.ID] = pid
		}
	}
}

// TestPlatformParallelValidAndAtomic runs the concurrent runtime over a
// real multi-platform workload and checks that every matching stays
// valid, no worker is ever assigned twice across platforms, and no
// online revenue exceeds the offline optimum — the atomicity guarantees
// that must survive genuine claim races. Run under -race this is also
// the data-race stress for Hub, Pool and the spatial indexes.
func TestPlatformParallelValidAndAtomic(t *testing.T) {
	for _, seed := range []int64{7, 21, 99} {
		stream := multiStream(t, 4, 600, 120, seed)
		off, err := Offline(stream, SolverAuto)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []string{AlgDemCOM, AlgRamCOM} {
			factory, err := FactoryFor(alg, stream.MaxValue())
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(stream, factory, Config{Seed: seed, PlatformParallel: true})
			if err != nil {
				t.Fatalf("%s seed %d: %v", alg, seed, err)
			}
			assertAtomicAssignments(t, res)
			if rev := res.TotalRevenue(); rev > off.TotalWeight+1e-9 {
				t.Errorf("%s seed %d: parallel revenue %.4f exceeds offline optimum %.4f", alg, seed, rev, off.TotalWeight)
			}
		}
	}
}

// TestPlatformParallelRecycling exercises the concurrent runtime with
// worker recycling on: recycled IDs must stay unique across the
// per-platform goroutines (they come from one atomic allocator) and the
// matchings must stay valid.
func TestPlatformParallelRecycling(t *testing.T) {
	stream := multiStream(t, 3, 400, 60, 5)
	res, err := Run(stream, DemCOMFactory(pricing.DefaultMonteCarlo, false),
		Config{Seed: 5, PlatformParallel: true, ServiceTicks: 10})
	if err != nil {
		t.Fatal(err)
	}
	assertAtomicAssignments(t, res)
	if res.Recycled != res.TotalServed() {
		t.Errorf("recycled %d workers, want one re-arrival per served request (%d)",
			res.Recycled, res.TotalServed())
	}
}

// conflictStream builds a stream designed to make cross-platform claims
// collide: platform 1 owns a small set of cheap workers at the origin,
// platforms 2 and 3 fire many valuable requests at the same spot and no
// workers of their own, so both permanently compete for platform 1's
// pool through the hub.
func conflictStream(t *testing.T, workers, requestsEach int) *core.Stream {
	t.Helper()
	var events []core.Event
	id := int64(1)
	for i := 0; i < workers; i++ {
		w := &core.Worker{ID: id, Arrival: 0, Loc: geo.Point{}, Radius: 10, Platform: 1, History: []float64{1, 2}}
		events = append(events, core.Event{Time: 0, Kind: core.WorkerArrival, Worker: w})
		id++
	}
	for i := 0; i < requestsEach; i++ {
		for _, pid := range []core.PlatformID{2, 3} {
			r := &core.Request{ID: id, Arrival: core.Time(i + 1), Loc: geo.Point{}, Value: 8, Platform: pid}
			events = append(events, core.Event{Time: core.Time(i + 1), Kind: core.RequestArrival, Request: r})
			id++
		}
	}
	// Platforms 2 and 3 must exist in the stream; one token worker each,
	// far away and useless for the requests at the origin.
	for _, pid := range []core.PlatformID{2, 3} {
		w := &core.Worker{ID: id, Arrival: 0, Loc: geo.Point{X: 1e6, Y: 1e6}, Radius: 0.1, Platform: pid, History: []float64{1}}
		events = append(events, core.Event{Time: 0, Kind: core.WorkerArrival, Worker: w})
		id++
	}
	s, err := core.NewStream(events)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPlatformParallelProvokesClaimConflicts drives two request-heavy
// platforms against one shared worker pool until the hub observes a
// genuine claim conflict (two platforms racing for the same worker, one
// losing at the CAS or the pool removal). The losing path must leave the
// matchings untouched and valid. Sequential runs of the identical
// stream must never conflict.
func TestPlatformParallelProvokesClaimConflicts(t *testing.T) {
	seq := metrics.New()
	// A pool much larger than either platform can drain keeps candidates
	// visible to both goroutines at all times; both platforms always
	// target the nearest accepting worker of the same shared pool, so a
	// preemption between sighting and claim collides with the other
	// platform's claims of the same low-distance workers.
	stream := conflictStream(t, 250, 300)
	if _, err := Run(stream, DemCOMFactory(pricing.DefaultMonteCarlo, false),
		Config{Seed: 1, Metrics: seq}); err != nil {
		t.Fatal(err)
	}
	if n := seq.Snapshot().Counters.ClaimConflicts; n != 0 {
		t.Fatalf("sequential run recorded %d claim conflicts, want 0", n)
	}

	col := metrics.New()
	conflicts := int64(0)
	for trial := 0; trial < 10 && conflicts == 0; trial++ {
		res, err := Run(stream, DemCOMFactory(pricing.DefaultMonteCarlo, false),
			Config{Seed: int64(trial), PlatformParallel: true, Metrics: col})
		if err != nil {
			t.Fatal(err)
		}
		assertAtomicAssignments(t, res)
		conflicts = col.Snapshot().Counters.ClaimConflicts
	}
	if conflicts == 0 {
		// A single-P scheduler can interleave the goroutines without ever
		// hitting the claim window; TestHubClaimConflictPath still covers
		// the losing branch deterministically.
		t.Skip("no claim conflict provoked on this scheduler")
	}
	t.Logf("provoked %d claim conflicts", conflicts)
}

// TestHubClaimConflictPath deterministically exercises the losing branch
// of a claim race: the worker is still tracked by the hub but its pool
// slot was already taken (the owner's inner assignment has removed it
// and not yet evicted the tables). The claim must fail, count one
// conflict, and a later eviction must stay a no-op.
func TestHubClaimConflictPath(t *testing.T) {
	col := metrics.New()
	h := NewHub()
	h.SetMetrics(col)
	p1, p2 := online.NewPool(nil), online.NewPool(nil)
	if err := h.RegisterPlatform(1, p1); err != nil {
		t.Fatal(err)
	}
	if err := h.RegisterPlatform(2, p2); err != nil {
		t.Fatal(err)
	}
	w := &core.Worker{ID: 7, Arrival: 0, Loc: geo.Point{}, Radius: 5, Platform: 2, History: []float64{1}}
	if err := h.WorkerArrived(w); err != nil {
		t.Fatal(err)
	}
	p2.Add(w)
	// The owner assigns the worker: pool removal first, table eviction
	// later — the window a racing claim can land in.
	if !p2.Remove(w.ID) {
		t.Fatal("owner removal failed")
	}
	if h.ViewFor(1).Claim(7) {
		t.Fatal("claim of an already-assigned worker succeeded")
	}
	if n := col.Snapshot().Counters.ClaimConflicts; n != 1 {
		t.Fatalf("claim conflicts = %d, want 1", n)
	}
	h.WorkerAssigned(7)
	if n := h.TrackedWorkers(); n != 0 {
		t.Fatalf("tracked workers = %d after eviction, want 0", n)
	}
}

// TestHubReleasesAssignedWorkers is the regression test for the
// unbounded owner/history growth: every assignment — inner via
// WorkerAssigned, outer via Claim — must release the per-worker tables,
// so after a full run the hub tracks exactly the still-waiting workers.
func TestHubReleasesAssignedWorkers(t *testing.T) {
	h := NewHub()
	p1, p2 := online.NewPool(nil), online.NewPool(nil)
	_ = h.RegisterPlatform(1, p1)
	_ = h.RegisterPlatform(2, p2)
	w1 := &core.Worker{ID: 1, Arrival: 0, Loc: geo.Point{}, Radius: 5, Platform: 1, History: []float64{1}}
	w2 := &core.Worker{ID: 2, Arrival: 0, Loc: geo.Point{}, Radius: 5, Platform: 2, History: []float64{1}}
	for _, w := range []*core.Worker{w1, w2} {
		if err := h.WorkerArrived(w); err != nil {
			t.Fatal(err)
		}
	}
	p1.Add(w1)
	p2.Add(w2)
	if n := h.TrackedWorkers(); n != 2 {
		t.Fatalf("tracked = %d, want 2", n)
	}
	// Outer path: platform 1 claims platform 2's worker.
	if !h.ViewFor(1).Claim(2) {
		t.Fatal("claim failed")
	}
	if n := h.TrackedWorkers(); n != 1 {
		t.Fatalf("tracked = %d after claim, want 1", n)
	}
	if _, ok := h.HistoryOf(2); ok {
		t.Error("claimed worker's history still tracked")
	}
	// Inner path: platform 1 assigns its own worker.
	p1.Remove(1)
	h.WorkerAssigned(1)
	if n := h.TrackedWorkers(); n != 0 {
		t.Fatalf("tracked = %d after inner assignment, want 0", n)
	}
	if _, ok := h.HistoryOf(1); ok {
		t.Error("assigned worker's history still tracked")
	}
}

// TestRunReleasesHubRecords checks the table eviction end to end: after
// a long recycled run the hub must track exactly the workers still
// waiting in the platform pools, not every worker that ever arrived.
func TestRunReleasesHubRecords(t *testing.T) {
	stream := multiStream(t, 3, 500, 80, 11)
	s, err := newRunState(stream, DemCOMFactory(pricing.DefaultMonteCarlo, false),
		Config{Seed: 11, ServiceTicks: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.runSequential(context.Background()); err != nil {
		t.Fatal(err)
	}
	waiting := 0
	for _, pid := range s.pids {
		waiting += s.matchers[pid].(poolHolder).Pool().Len()
	}
	if got := s.hub.TrackedWorkers(); got != waiting {
		t.Errorf("hub tracks %d workers, want the %d still waiting in pools", got, waiting)
	}
}

// TestRecycleFlushAtEndOfStream is the regression test for the dropped
// final re-arrivals: a worker whose recycled arrival falls after the
// last stream event must still be delivered and counted.
func TestRecycleFlushAtEndOfStream(t *testing.T) {
	w := &core.Worker{ID: 1, Arrival: 0, Loc: geo.Point{}, Radius: 5, Platform: 1, History: []float64{1}}
	r := &core.Request{ID: 2, Arrival: 1, Loc: geo.Point{}, Value: 3, Platform: 1}
	stream, err := core.NewStream([]core.Event{
		{Time: 0, Kind: core.WorkerArrival, Worker: w},
		{Time: 1, Kind: core.RequestArrival, Request: r},
	})
	if err != nil {
		t.Fatal(err)
	}
	// ServiceTicks pushes the re-arrival to t=101, far past the last
	// event at t=1; before the flush fix this run reported Recycled: 0.
	res, err := Run(stream, TOTAFactory(), Config{Seed: 1, ServiceTicks: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recycled != 1 {
		t.Fatalf("Recycled = %d, want 1 (re-arrival after last event must flush)", res.Recycled)
	}
}

// TestPlatformParallelCancellation checks the concurrent runtime's
// cancellation contract: a canceled context stops every platform
// goroutine, the partial result is returned, and the error wraps
// context.Canceled with the failing platform named.
func TestPlatformParallelCancellation(t *testing.T) {
	stream := multiStream(t, 3, 400, 60, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: every platform stops at its first poll
	res, err := RunContext(ctx, stream, TOTAFactory(), Config{Seed: 3, PlatformParallel: true})
	if err == nil {
		t.Fatal("canceled parallel run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled parallel run returned no partial result")
	}
}

// TestPlatformParallelMatchesSequentialAggregates compares the
// concurrent and sequential runtimes on a workload without claim
// contention (TOTA never touches the hub): per-platform outcomes must be
// identical, because each platform's sub-stream is processed in the same
// order either way.
func TestPlatformParallelMatchesSequentialAggregates(t *testing.T) {
	stream := multiStream(t, 4, 500, 150, 13)
	seqRes, err := Run(stream, TOTAFactory(), Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := Run(stream, TOTAFactory(), Config{Seed: 13, PlatformParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for pid, sp := range seqRes.Platforms {
		pp := parRes.Platforms[pid]
		if sp.Stats.Served != pp.Stats.Served || sp.Stats.Revenue != pp.Stats.Revenue {
			t.Errorf("platform %d: sequential (served %d, rev %.4f) != parallel (served %d, rev %.4f)",
				pid, sp.Stats.Served, sp.Stats.Revenue, pp.Stats.Served, pp.Stats.Revenue)
		}
	}
}

// TestSequentialBitIdenticalWithParallelFlagOff guards the default
// path: a run with PlatformParallel unset must be a pure function of
// (stream, seed) — two runs agree assignment for assignment.
func TestSequentialBitIdenticalWithParallelFlagOff(t *testing.T) {
	stream := multiStream(t, 3, 300, 60, 17)
	key := func(res *Result) string {
		s := ""
		for _, pid := range []core.PlatformID{1, 2, 3} {
			p := res.Platforms[pid]
			if p == nil {
				continue
			}
			s += fmt.Sprintf("[%d:%d:%.6f", pid, p.Stats.Served, p.Stats.Revenue)
			for _, a := range p.Matching.Assignments() {
				s += fmt.Sprintf(" %d->%d@%.6f", a.Request.ID, a.Worker.ID, a.Payment)
			}
			s += "]"
		}
		return s
	}
	factory := DemCOMFactory(pricing.DefaultMonteCarlo, false)
	a, err := Run(stream, factory, Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(stream, factory, Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if key(a) != key(b) {
		t.Error("two sequential runs with the same seed diverged")
	}
}
