package platform

import (
	"errors"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/pricing"
	"crossmatch/internal/workload"
)

func ensembleGen(t *testing.T) func(int64) (*core.Stream, error) {
	t.Helper()
	cfg, err := workload.Synthetic(300, 60, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	return func(seed int64) (*core.Stream, error) {
		return workload.Generate(cfg, seed)
	}
}

func TestRunEnsembleMatchesSequential(t *testing.T) {
	gen := ensembleGen(t)
	factory := DemCOMFactory(pricing.DefaultMonteCarlo, false)
	seeds := []int64{1, 2, 3, 4, 5, 6}

	par, err := RunEnsemble(gen, factory, Config{}, seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		stream, err := gen(seed)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Run(stream, factory, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if par[i].TotalRevenue() != seq.TotalRevenue() || par[i].TotalServed() != seq.TotalServed() {
			t.Errorf("seed %d: parallel (%v, %d) != sequential (%v, %d)",
				seed, par[i].TotalRevenue(), par[i].TotalServed(), seq.TotalRevenue(), seq.TotalServed())
		}
	}
}

func TestRunEnsembleValidation(t *testing.T) {
	gen := ensembleGen(t)
	f := TOTAFactory()
	if _, err := RunEnsemble(nil, f, Config{}, []int64{1}, 1); err == nil {
		t.Error("nil generator accepted")
	}
	if _, err := RunEnsemble(gen, f, Config{}, nil, 1); err == nil {
		t.Error("no seeds accepted")
	}
	// Generator errors propagate with seed context.
	bad := func(seed int64) (*core.Stream, error) {
		if seed == 2 {
			return nil, errors.New("boom")
		}
		return gen(seed)
	}
	if _, err := RunEnsemble(bad, f, Config{}, []int64{1, 2, 3}, 2); err == nil {
		t.Error("generator error swallowed")
	}
}

func TestRunEnsembleParallelismClamped(t *testing.T) {
	gen := ensembleGen(t)
	// parallelism larger than seed count and non-positive both work.
	for _, p := range []int{-1, 0, 100} {
		res, err := RunEnsemble(gen, TOTAFactory(), Config{}, []int64{7, 8}, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 2 || res[0] == nil || res[1] == nil {
			t.Fatalf("parallelism %d: results %v", p, res)
		}
	}
}

func TestSummarize(t *testing.T) {
	gen := ensembleGen(t)
	res, err := RunEnsemble(gen, RamCOMFactory(100, RamCOMOptions{}), Config{}, []int64{1, 2, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(res)
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs != 4 {
		t.Errorf("Runs = %d", s.Runs)
	}
	if s.MinRevenue > s.MeanRevenue || s.MeanRevenue > s.MaxRevenue {
		t.Errorf("ordering broken: min=%v mean=%v max=%v", s.MinRevenue, s.MeanRevenue, s.MaxRevenue)
	}
	if s.RevenueStdDevFrac < 0 || s.RevenueStdDevFrac > 2 {
		t.Errorf("std-dev fraction implausible: %v", s.RevenueStdDevFrac)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty ensemble accepted")
	}
	if _, err := Summarize([]*Result{nil}); err == nil {
		t.Error("nil result accepted")
	}
}

func TestLatencyReservoirWired(t *testing.T) {
	gen := ensembleGen(t)
	stream, err := gen(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(stream, TOTAFactory(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for pid, pr := range res.Platforms {
		if pr.Latency == nil {
			t.Fatalf("platform %d: nil latency reservoir", pid)
		}
		if pr.Latency.Count() != int64(pr.Stats.Requests) {
			t.Errorf("platform %d: latency count %d != requests %d",
				pid, pr.Latency.Count(), pr.Stats.Requests)
		}
		if pr.Stats.Requests > 0 {
			if pr.Latency.Max() != pr.ResponseMax {
				t.Errorf("platform %d: reservoir max %v != recorded max %v",
					pid, pr.Latency.Max(), pr.ResponseMax)
			}
			if pr.Latency.Percentile(0.99) > pr.ResponseMax {
				t.Errorf("platform %d: p99 above max", pid)
			}
		}
	}
}
