package platform

import (
	"context"
	"fmt"
	"sync"

	"crossmatch/internal/core"
)

// runParallel is the concurrent runtime behind Config.PlatformParallel:
// every platform consumes its own event sub-stream on its own goroutine,
// matching the paper's deployment model of independent platform services
// that share unoccupied workers through the hub. Cross-platform claims
// genuinely race here — the hub's per-worker claim words and the pools'
// locks arbitrate them — so results are valid but not bit-reproducible
// run to run.
//
// Error handling mirrors runSequential: any platform error cancels the
// remaining platforms, everything is joined, and the first failing
// platform (in platform-ID order) decides the returned error. The
// partially accumulated Result is always returned so cancellation keeps
// its "stop and keep what you have" contract.
func (s *runState) runParallel(ctx context.Context) (*Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		recycled int
		err      error
	}
	outs := make([]outcome, len(s.pids))
	var wg sync.WaitGroup
	for i, pid := range s.pids {
		sub := s.stream.FilterPlatform(pid)
		wg.Add(1)
		go func(i int, pid core.PlatformID, sub *core.Stream) {
			defer wg.Done()
			rec, err := s.consume(ctx, sub.Events(), sub.Len(), s.windowedFor(pid))
			outs[i] = outcome{recycled: rec, err: err}
			if err != nil {
				cancel()
			}
		}(i, pid, sub)
	}
	wg.Wait()
	s.foldPricing() // all matcher goroutines have joined

	for _, o := range outs {
		s.res.Recycled += o.recycled
	}
	s.res.Lent = s.hub.Lent()
	for i, o := range outs {
		if o.err != nil {
			return s.res, fmt.Errorf("platform: platform %d: %w", s.pids[i], o.err)
		}
	}
	return s.res, nil
}
