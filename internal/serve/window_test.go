package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
	"crossmatch/internal/platform"
)

// batchFactory builds the offline-side BatchCOM factory a serve test
// compares against.
func batchFactory(t *testing.T, maxValue float64, window, deadline core.Time) platform.MatcherFactory {
	t.Helper()
	factory, err := platform.FactoryConfigured(platform.AlgBatchCOM,
		platform.AlgConfig{MaxValue: maxValue, Window: window, Deadline: deadline})
	if err != nil {
		t.Fatalf("FactoryConfigured: %v", err)
	}
	return factory
}

// withLateWorker appends one worker arrival past every possible window
// due time, so a replayed BatchCOM stream flushes all of its windows
// from recorded events — no waiter is left hanging for the close-time
// finish.
func withLateWorker(t *testing.T, stream *core.Stream, window core.Time) *core.Stream {
	t.Helper()
	evs := append([]core.Event(nil), stream.Events()...)
	var maxT core.Time
	var maxW int64
	for _, ev := range evs {
		if ev.Time > maxT {
			maxT = ev.Time
		}
		if ev.Kind == core.WorkerArrival && ev.Worker.ID > maxW {
			maxW = ev.Worker.ID
		}
	}
	w := &core.Worker{ID: maxW + 1000, Arrival: maxT + window + 1,
		Loc: geo.Point{X: 0.5, Y: 0.5}, Radius: 0.5, Platform: stream.Platforms()[0]}
	evs = append(evs, core.Event{Time: w.Arrival, Kind: core.WorkerArrival, Worker: w})
	out, err := core.NewStream(evs)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	return out
}

// TestBatchWindowDeadlineWhileBuffered is the satellite-1 regression: a
// request buffered in a window whose flush lies beyond the handler's
// deadline must answer 504 with the standard deadline reason — not a
// premature reason-less "ok", and not a silent drop. The event stays
// sequenced: the window still flushes at close and the decision counts
// in the final Result.
func TestBatchWindowDeadlineWhileBuffered(t *testing.T) {
	srv, ts := startServer(t, Options{
		Algorithm: platform.AlgBatchCOM,
		Seed:      7,
		Window:    600_000, // ten minutes of virtual time: never flushes in-test
		Deadline:  60 * time.Millisecond,
	})
	client := ts.Client()

	resp, d := postJSON(t, client, ts.URL+"/v1/workers",
		`{"id":1,"x":0.5,"y":0.5,"platform":1,"radius":0.4}`)
	if resp.StatusCode != http.StatusOK || d.Status != StatusOK {
		t.Fatalf("worker post: code %d, decision %+v", resp.StatusCode, d)
	}

	resp, d = postJSON(t, client, ts.URL+"/v1/requests",
		`{"id":1,"x":0.5,"y":0.5,"platform":1,"value":3.5}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("buffered request: want 504, got %d (%+v)", resp.StatusCode, d)
	}
	if d.Status != StatusDeadline {
		t.Fatalf("buffered request status: want %q, got %q", StatusDeadline, d.Status)
	}
	if want := "decision did not return within the deadline; the event is still sequenced"; d.Error != want {
		t.Fatalf("deadline reason: want %q, got %q", want, d.Error)
	}
	if got := srv.Snapshot().Server.DeadlineMiss; got < 1 {
		t.Fatalf("deadline_miss counter: want >=1, got %d", got)
	}

	// "Still sequenced" is not just a message: the buffered window
	// flushes at close and the request is served in the final Result.
	res, err := srv.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res.TotalServed() != 1 {
		t.Fatalf("buffered request lost: served %d, want 1", res.TotalServed())
	}
}

// TestBatchWindowLiveTickerFlush: in live mode nothing but wall-clock
// time flushes an idle window, so the sequencer's ticker must drive the
// flush and answer the waiting handler with the real decision.
func TestBatchWindowLiveTickerFlush(t *testing.T) {
	srv, ts := startServer(t, Options{
		Algorithm: platform.AlgBatchCOM,
		Seed:      3,
		Window:    40, // 40ms of virtual time; ticker period 20ms
	})
	client := ts.Client()

	if resp, d := postJSON(t, client, ts.URL+"/v1/workers",
		`{"id":1,"x":0.5,"y":0.5,"platform":1,"radius":0.4}`); resp.StatusCode != http.StatusOK || d.Status != StatusOK {
		t.Fatalf("worker post: code %d, decision %+v", resp.StatusCode, d)
	}
	resp, d := postJSON(t, client, ts.URL+"/v1/requests",
		`{"id":1,"x":0.5,"y":0.5,"platform":1,"value":3.5}`)
	if resp.StatusCode != http.StatusOK || d.Status != StatusOK {
		t.Fatalf("request post: code %d, decision %+v", resp.StatusCode, d)
	}
	if !d.Served || d.WorkerID != 1 {
		t.Fatalf("ticker flush decision: %+v", d)
	}
	snap := srv.Snapshot().Server
	if snap.Served != 1 || snap.Matched != 1 || snap.Revenue != 3.5 {
		t.Fatalf("flush counters: %+v", snap)
	}
	res, err := srv.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res.TotalServed() != 1 {
		t.Fatalf("served: want 1, got %d", res.TotalServed())
	}
}

// TestBatchReplayMatchesOffline extends the replay-parity guarantee to
// the windowed matcher: a recorded stream pushed over HTTP in a
// shuffled concurrent order reproduces the offline Run bit for bit,
// window flushes included, and every deferred waiter is answered with
// its flush-time decision.
func TestBatchReplayMatchesOffline(t *testing.T) {
	const window core.Time = 6
	for _, ticks := range []core.Time{0, 3} {
		t.Run(fmt.Sprintf("serviceTicks=%d", ticks), func(t *testing.T) {
			stream := withLateWorker(t, testStream(t, 120, 80, 42), window)
			cfg := platform.Config{Seed: 42, ServiceTicks: ticks}
			want, err := platform.Run(stream, batchFactory(t, stream.MaxValue(), window, 0), cfg)
			if err != nil {
				t.Fatalf("offline Run: %v", err)
			}

			srv, err := New(Options{Algorithm: platform.AlgBatchCOM, Seed: 42, Replay: stream,
				ServiceTicks: ticks, Window: window,
				QueueCap: stream.Len() + 1, Deadline: time.Minute})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			events := stream.Events()
			order := rand.New(rand.NewSource(9)).Perm(len(events))
			var wg sync.WaitGroup
			errs := make(chan string, len(events))
			for _, idx := range order {
				wg.Add(1)
				go func(ev core.Event) {
					defer wg.Done()
					line, _ := json.Marshal(WireEvent{ID: eventID(ev)})
					url := ts.URL + "/v1/requests"
					if ev.Kind == core.WorkerArrival {
						url = ts.URL + "/v1/workers"
					}
					resp, err := ts.Client().Post(url, "application/json", strings.NewReader(string(line)))
					if err != nil {
						errs <- err.Error()
						return
					}
					defer resp.Body.Close()
					var d WireDecision
					if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
						errs <- err.Error()
						return
					}
					if d.Status != StatusOK {
						errs <- "event " + d.Kind + " not ok: " + d.Status + " " + d.Error
					}
				}(events[idx])
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatalf("delivery failed: %s", e)
			}

			got, err := srv.Close()
			if err != nil {
				t.Fatalf("Close: %v", err)
			}
			assertSameResult(t, want, got)
		})
	}
}

// postReplayPrefix pushes a slice of recorded events concurrently,
// tolerating deferred 504s (the handler's deadline fired while the
// event sat buffered in a window — it is still sequenced).
func postReplayPrefix(t *testing.T, ts *httptest.Server, events []core.Event) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan string, len(events))
	for _, ev := range events {
		wg.Add(1)
		go func(ev core.Event) {
			defer wg.Done()
			line, _ := json.Marshal(WireEvent{ID: eventID(ev)})
			url := ts.URL + "/v1/requests"
			if ev.Kind == core.WorkerArrival {
				url = ts.URL + "/v1/workers"
			}
			resp, err := ts.Client().Post(url, "application/json", strings.NewReader(string(line)))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			var d WireDecision
			if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
				errs <- err.Error()
				return
			}
			if d.Status != StatusOK && d.Status != StatusDeadline {
				errs <- "event " + d.Kind + " rejected: " + d.Status + " " + d.Error
			}
		}(ev)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("delivery failed: %s", e)
	}
}

// waitApplied polls until every admitted event has been fed through the
// engine (applied == accepted), so a crash injected afterwards cannot
// race admitted-but-unprocessed events. QueueLen alone is NOT that
// barrier: in replay mode the cursor-unblocking event is often dequeued
// last, emptying the queue while the whole pending chain — dozens of
// events — still waits to be processed behind it.
func waitApplied(t *testing.T, srv *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Snapshot().Server
		if st.Applied >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine applied %d of %d admitted events", st.Applied, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBatchWindowCrashRecovery is the satellite-3 regression: a crash
// with requests still buffered in an open window, under a non-zero
// recycle base (replay mode + ServiceTicks), must recover by
// RE-BUFFERING the undecided requests — the WAL re-drive rebuilds the
// open window, the snapshot digest (taken while those requests were
// uncounted) verifies, and finishing the stream on the recovered server
// reproduces the uninterrupted offline run bit for bit.
func TestBatchWindowCrashRecovery(t *testing.T) {
	const window core.Time = 50
	stream := testStream(t, 120, 80, 21)
	cfg := platform.Config{Seed: 21, ServiceTicks: 3}
	want, err := platform.Run(stream, batchFactory(t, stream.MaxValue(), window, 0), cfg)
	if err != nil {
		t.Fatalf("offline Run: %v", err)
	}

	events := stream.Events()
	// Cut right after a request arrival: BatchCOM defers every request,
	// and no later event is processed before the crash, so that request
	// is guaranteed to be sitting undecided in an open window.
	cut := len(events) / 2
	for cut > 1 && events[cut-1].Kind != core.RequestArrival {
		cut--
	}
	if events[cut-1].Kind != core.RequestArrival {
		t.Fatal("stream prefix holds no request arrival")
	}

	walDir := t.TempDir()
	opts := Options{Algorithm: platform.AlgBatchCOM, Seed: 21, Replay: stream,
		ServiceTicks: 3, Window: window, QueueCap: stream.Len() + 1,
		Deadline: 100 * time.Millisecond, WALDir: walDir, SnapshotEvery: 7}

	srvA, err := New(opts)
	if err != nil {
		t.Fatalf("New A: %v", err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	postReplayPrefix(t, tsA, events[:cut])
	waitApplied(t, srvA, int64(cut))
	tsA.Close()
	srvA.crashForTest()

	srvB, err := New(opts)
	if err != nil {
		t.Fatalf("New B (recovery): %v", err)
	}
	rec := srvB.Recovery()
	if !rec.Recovered || rec.Events < int64(cut) {
		t.Fatalf("recovery info: %+v (want >= %d events)", rec, cut)
	}
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	postReplayPrefix(t, tsB, events[cut:])
	// A 504'd handler returns before its event is applied, so the posting
	// barrier alone does not mean the engine is caught up — and Close's
	// drain answers still-queued events without applying them.
	waitApplied(t, srvB, int64(len(events)))

	got, err := srvB.Close()
	if err != nil {
		t.Fatalf("Close B: %v", err)
	}
	assertSameResult(t, want, got)
}
