package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
	"crossmatch/internal/platform"
)

// WireEvent is the JSON wire form of one arrival, posted to
// /v1/requests or /v1/workers (the endpoint supplies the kind). In
// live mode the server assigns the ID when it is zero and stamps the
// arrival tick from its virtual clock; the Arrival field is accepted
// but ignored. In replay mode only the ID matters — it names an event
// of the recorded stream, and the recorded fields are authoritative.
type WireEvent struct {
	ID       int64     `json:"id,omitempty"`
	X        float64   `json:"x"`
	Y        float64   `json:"y"`
	Platform int32     `json:"platform"`
	Value    float64   `json:"value,omitempty"`   // requests: payment value v
	Radius   float64   `json:"radius,omitempty"`  // workers: service radius
	History  []float64 `json:"history,omitempty"` // workers: past request values
	Arrival  int64     `json:"arrival,omitempty"` // informational; server stamps virtual time
}

// Outcome status values carried by WireDecision.Status.
const (
	// StatusOK — the event was sequenced and decided.
	StatusOK = "ok"
	// StatusShed — admission control refused the event (token bucket or
	// full ingest queue); retry after RetryAfterMs.
	StatusShed = "shed"
	// StatusDraining — the server is shutting down and no longer admits
	// events.
	StatusDraining = "draining"
	// StatusRecovering — the server is live but not ready: WAL recovery
	// is still re-driving the log and no events are admitted until the
	// digest verify passes. Retry after RetryAfterMs.
	StatusRecovering = "recovering"
	// StatusUnavailable — the event could not be served by its owner
	// (recovery failed, or a fleet router found the owning shard dark).
	// Retry after RetryAfterMs.
	StatusUnavailable = "unavailable"
	// StatusDeadline — the event was admitted but its decision did not
	// return within the per-request deadline. The event is still in the
	// sequencer's order and will be applied; only this response gave up.
	StatusDeadline = "deadline"
	// StatusUnknown — replay mode: the ID names no event of the
	// recorded stream.
	StatusUnknown = "unknown"
	// StatusDuplicate — replay mode: the event was already delivered.
	StatusDuplicate = "duplicate"
	// StatusError — the event was malformed or the engine rejected it.
	StatusError = "error"
)

// WireDecision is the per-event response line: the admission outcome,
// and for sequenced request arrivals the synchronous match decision
// (assigned worker, payment, revenue, outcome reason).
type WireDecision struct {
	Status string `json:"status"`
	Kind   string `json:"kind,omitempty"` // "request" or "worker"
	ID     int64  `json:"id,omitempty"`
	VTime  int64  `json:"vtime,omitempty"` // virtual arrival tick stamped by the sequencer
	// Shard names the serving shard that produced this line. Empty on
	// direct comserve responses; a fleet router (cmd/comroute) stamps it
	// so clients can attribute outcomes per shard.
	Shard string `json:"shard,omitempty"`
	// Decision fields, request arrivals only.
	Served         bool    `json:"served,omitempty"`
	Reason         string  `json:"reason,omitempty"`
	WorkerID       int64   `json:"worker,omitempty"`
	WorkerPlatform int32   `json:"worker_platform,omitempty"`
	Outer          bool    `json:"outer,omitempty"`
	Payment        float64 `json:"payment,omitempty"`
	Revenue        float64 `json:"revenue,omitempty"`
	// Flow control and errors.
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
	Error        string `json:"error,omitempty"`
}

// httpStatus maps an outcome to the HTTP code used for single-object
// posts (batch posts always answer 200 with per-line statuses).
func (d *WireDecision) httpStatus() int { return HTTPStatus(d.Status) }

// HTTPStatus maps a WireDecision status to the HTTP code single-object
// posts answer with. Exported so the fleet router mirrors shard
// semantics exactly when it synthesizes single-object responses.
func HTTPStatus(status string) int {
	switch status {
	case StatusOK:
		return http.StatusOK
	case StatusShed:
		return http.StatusTooManyRequests
	case StatusDraining, StatusRecovering, StatusUnavailable:
		return http.StatusServiceUnavailable
	case StatusDeadline:
		return http.StatusGatewayTimeout
	case StatusUnknown:
		return http.StatusNotFound
	case StatusDuplicate:
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func kindName(k core.EventKind) string {
	if k == core.WorkerArrival {
		return "worker"
	}
	return "request"
}

// toEvent builds the domain event for live mode. The arrival tick is
// stamped later by the sequencer; validation of the stamped event
// happens in Engine.Process via the matcher path, so only structural
// errors are caught here.
func (we *WireEvent) toEvent(kind core.EventKind) (core.Event, error) {
	loc := geo.Point{X: we.X, Y: we.Y}
	switch kind {
	case core.WorkerArrival:
		if we.Radius <= 0 {
			return core.Event{}, fmt.Errorf("worker %d: radius %v must be positive", we.ID, we.Radius)
		}
		w := &core.Worker{ID: we.ID, Loc: loc, Radius: we.Radius,
			Platform: core.PlatformID(we.Platform), History: we.History}
		return core.Event{Kind: kind, Worker: w}, nil
	default:
		if we.Value <= 0 {
			return core.Event{}, fmt.Errorf("request %d: value %v must be positive", we.ID, we.Value)
		}
		r := &core.Request{ID: we.ID, Loc: loc, Value: we.Value,
			Platform: core.PlatformID(we.Platform)}
		return core.Event{Kind: kind, Request: r}, nil
	}
}

// EventToWire converts a domain event to its wire form — what the load
// generator posts when replaying a recorded stream.
func EventToWire(ev core.Event) WireEvent {
	switch ev.Kind {
	case core.WorkerArrival:
		w := ev.Worker
		return WireEvent{ID: w.ID, X: w.Loc.X, Y: w.Loc.Y, Platform: int32(w.Platform),
			Radius: w.Radius, History: w.History, Arrival: int64(w.Arrival)}
	default:
		r := ev.Request
		return WireEvent{ID: r.ID, X: r.Loc.X, Y: r.Loc.Y, Platform: int32(r.Platform),
			Value: r.Value, Arrival: int64(r.Arrival)}
	}
}

// decisionLine builds the OK response line for a sequenced event.
func decisionLine(kind core.EventKind, id, vtime int64, d platform.RequestDecision) WireDecision {
	out := WireDecision{Status: StatusOK, Kind: kindName(kind), ID: id, VTime: vtime}
	if kind != core.RequestArrival {
		return out
	}
	out.Served = d.Served
	out.Reason = string(d.Reason)
	if d.Served {
		out.WorkerID = d.Worker.ID
		out.WorkerPlatform = int32(d.Worker.Platform)
		out.Outer = d.Outer
		out.Payment = d.Payment
		out.Revenue = d.Revenue
	}
	return out
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
