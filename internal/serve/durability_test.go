package serve

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
	"crossmatch/internal/platform"
)

// TestCollectDecisionsPrefersReadyDecisions is the regression test for
// the batch decision-wait select race: with an already-expired deadline
// and every decision already buffered, the old loop (shared timer kept
// hot via Reset(0)) let Go's select pick pseudo-randomly between the
// ready decision and the ready timer, misreporting roughly half the
// computed decisions as 504s. The fixed loop polls the decision channel
// first, so a computed decision must never be reported as a miss —
// across 400 ready items the old code passes this with probability
// ~2^-400.
func TestCollectDecisionsPrefersReadyDecisions(t *testing.T) {
	srv, _ := startServer(t, Options{Algorithm: platform.AlgDemCOM, Seed: 1,
		Deadline: time.Nanosecond})

	const n = 400
	items := make([]*ingest, n)
	outs := make([]WireDecision, n)
	for i := range items {
		it := &ingest{
			ev:   core.Event{Kind: core.RequestArrival, Request: &core.Request{ID: int64(i)}},
			seq:  -1,
			done: make(chan WireDecision, 1),
		}
		it.done <- WireDecision{Status: StatusOK, Kind: "request", ID: int64(i)}
		items[i] = it
	}
	srv.collectDecisions(items, outs)
	for i := range outs {
		if outs[i].Status != StatusOK {
			t.Fatalf("line %d: computed decision reported as %q", i, outs[i].Status)
		}
	}
	if miss := srv.ctr.deadlineMiss.Load(); miss != 0 {
		t.Fatalf("deadline misses on fully-computed batch: %d", miss)
	}
}

// requestOnlyStream builds a replay stream of n bare requests (no
// workers, so every decision is an unmatched 200) with distinct
// ascending arrival ticks.
func requestOnlyStream(t *testing.T, n int) *core.Stream {
	t.Helper()
	evs := make([]core.Event, n)
	for i := range evs {
		r := &core.Request{ID: int64(i + 1), Arrival: core.Time(i + 1),
			Loc: geo.Point{X: 0.5, Y: 0.5}, Value: 1, Platform: 1}
		evs[i] = core.Event{Time: r.Arrival, Kind: core.RequestArrival, Request: r}
	}
	stream, err := core.NewStream(evs)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	return stream
}

// TestBatchDeadlineSparesComputedDecisions exercises the same race over
// HTTP: one large NDJSON batch in reverse recorded order, so the first
// line's decision completes last and the deadline reliably expires
// mid-batch while later lines' decisions are long computed. Every line
// whose decision was computed well before the deadline must come back
// 200, never 504.
func TestBatchDeadlineSparesComputedDecisions(t *testing.T) {
	const (
		n       = 100
		delay   = 3 * time.Millisecond
		dead    = 150 * time.Millisecond
		safeIdx = 20 // recorded index processed by ~60ms, far inside the deadline
	)
	stream := requestOnlyStream(t, n)
	_, ts := startServer(t, Options{Algorithm: platform.AlgDemCOM, Seed: 1,
		Replay: stream, QueueCap: n + 1, Deadline: dead, ProcessDelay: delay})

	var body strings.Builder
	for i := n - 1; i >= 0; i-- {
		fmt.Fprintf(&body, "{\"id\":%d}\n", i+1)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/requests", "application/x-ndjson",
		strings.NewReader(body.String()))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()

	body2, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	lines := splitLines(body2)
	if len(lines) != n {
		t.Fatalf("got %d response lines, want %d", len(lines), n)
	}
	misses := 0
	for i, line := range lines {
		var d WireDecision
		if err := unmarshalStrict(line, &d); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		recorded := n - 1 - i
		switch d.Status {
		case StatusOK:
		case StatusDeadline:
			misses++
			if recorded < safeIdx {
				t.Fatalf("line %d (recorded index %d, computed long before the deadline) reported as a miss", i, recorded)
			}
		default:
			t.Fatalf("line %d: unexpected status %q (%s)", i, d.Status, d.Error)
		}
	}
	// The first line waits ~n*delay = 300ms against a 150ms deadline, so
	// the expiry path must actually have run.
	if misses == 0 {
		t.Fatalf("expected the batch deadline to expire mid-batch; every line returned OK")
	}
}

// TestResumeVTimeClock is the standalone restart-safe-clock fix: a
// server given ResumeVTime must stamp its first arrival at or after
// that tick, not restart the virtual clock from zero — with or without
// a WAL.
func TestResumeVTimeClock(t *testing.T) {
	const resume = 5000
	_, ts := startServer(t, Options{Algorithm: platform.AlgDemCOM, Seed: 3,
		ResumeVTime: resume})
	resp, d := postJSON(t, ts.Client(), ts.URL+"/v1/workers",
		`{"id":1,"x":0.5,"y":0.5,"platform":1,"radius":0.4}`)
	if resp.StatusCode != 200 || d.Status != StatusOK {
		t.Fatalf("worker post: code %d, decision %+v", resp.StatusCode, d)
	}
	if d.VTime < resume {
		t.Fatalf("first stamped tick %d is before the resumed clock %d", d.VTime, resume)
	}
}

// TestCrashRecoveryReplayBitIdentical is the headline durability
// criterion: push part of a recorded stream into a WAL-backed server,
// crash it hard (no flush, no final snapshot), restart on the same
// directory, re-push the whole stream — recovered events dedupe as
// resumed, lost and unpushed ones apply — and the final Result must be
// bit-identical to an uninterrupted offline run. The FsyncBatch=64
// variant additionally loses the buffered un-fsynced tail in the
// crash, which the re-push must repair.
func TestCrashRecoveryReplayBitIdentical(t *testing.T) {
	for _, fsyncBatch := range []int{1, 64} {
		t.Run(fmt.Sprintf("fsync-batch-%d", fsyncBatch), func(t *testing.T) {
			stream := testStream(t, 200, 150, 42)
			factory, err := platform.FactoryFor(platform.AlgDemCOM, stream.MaxValue())
			if err != nil {
				t.Fatalf("FactoryFor: %v", err)
			}
			want, err := platform.Run(stream, factory, platform.Config{Seed: 42})
			if err != nil {
				t.Fatalf("offline Run: %v", err)
			}

			dir := t.TempDir()
			opts := Options{Algorithm: platform.AlgDemCOM, Seed: 42, Replay: stream,
				QueueCap: stream.Len() + 1, WALDir: dir, FsyncBatch: fsyncBatch,
				SnapshotEvery: 50}

			// Phase 1: push a prefix, then crash without a clean shutdown.
			srv1, err := New(opts)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			ts1 := httptest.NewServer(srv1.Handler())
			prefixLen := stream.Len() / 2
			prefix, err := core.NewStream(stream.Events()[:prefixLen])
			if err != nil {
				t.Fatalf("prefix stream: %v", err)
			}
			rep1, err := RunLoad(context.Background(), LoadOptions{
				URL: ts1.URL, Stream: prefix, Conns: 4, Batch: 8, Retries: 5,
				Client: ts1.Client(),
			})
			if err != nil {
				t.Fatalf("RunLoad prefix: %v", err)
			}
			if rep1.Failed != 0 || rep1.Dropped != 0 {
				t.Fatalf("prefix push must deliver everything: %+v", rep1)
			}
			ts1.Close()
			srv1.crashForTest()

			// Phase 2: restart on the same directory and finish the stream.
			srv2, err := New(opts)
			if err != nil {
				t.Fatalf("New after crash: %v", err)
			}
			ts2 := httptest.NewServer(srv2.Handler())
			defer ts2.Close()
			rec := srv2.Recovery()
			if !rec.Recovered || rec.Events <= 0 || rec.Events > int64(prefixLen) {
				t.Fatalf("recovery: %+v (pushed %d events before the crash)", rec, prefixLen)
			}
			if fsyncBatch == 1 && rec.Events != int64(prefixLen) {
				t.Fatalf("with per-append fsync every pushed event must survive: recovered %d of %d", rec.Events, prefixLen)
			}

			rep2, err := RunLoad(context.Background(), LoadOptions{
				URL: ts2.URL, Stream: stream, Conns: 4, Batch: 8, Retries: 5,
				Client: ts2.Client(),
			})
			if err != nil {
				t.Fatalf("RunLoad resume: %v", err)
			}
			if rep2.Failed != 0 || rep2.Dropped != 0 {
				t.Fatalf("resume push must deliver everything: %+v", rep2)
			}
			if rep2.Resumed != rec.Events {
				t.Fatalf("client saw %d resumed duplicates, server recovered %d", rep2.Resumed, rec.Events)
			}

			got, err := srv2.Close()
			if err != nil {
				t.Fatalf("Close: %v", err)
			}
			assertSameResult(t, want, got)
		})
	}
}

// TestCrashRecoveryLiveResumesClockAndState covers live mode: after a
// crash, the restarted server re-drives the logged arrivals and resumes
// its virtual clock past the logged high-water mark, so post-restart
// traffic can never trip ErrTimeRegression against recovered state.
func TestCrashRecoveryLiveResumesClockAndState(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Algorithm: platform.AlgDemCOM, Seed: 9, WALDir: dir, FsyncBatch: 1}

	srv1, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	// Let the virtual clock advance so a from-zero restart would regress.
	time.Sleep(60 * time.Millisecond)
	if _, d := postJSON(t, ts1.Client(), ts1.URL+"/v1/workers",
		`{"id":1,"x":0.5,"y":0.5,"platform":1,"radius":0.4}`); d.Status != StatusOK {
		t.Fatalf("worker post: %+v", d)
	}
	_, d := postJSON(t, ts1.Client(), ts1.URL+"/v1/requests",
		`{"id":1,"x":0.5,"y":0.5,"platform":1,"value":3.5}`)
	if d.Status != StatusOK || !d.Served {
		t.Fatalf("request post: %+v", d)
	}
	stamped := d.VTime
	if stamped < 50 {
		t.Fatalf("expected a visibly advanced clock, got tick %d", stamped)
	}
	ts1.Close()
	srv1.crashForTest()

	srv2, err := New(opts)
	if err != nil {
		t.Fatalf("New after crash: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	rec := srv2.Recovery()
	if rec.Events != 2 || rec.VLast < stamped {
		t.Fatalf("recovery: %+v, want 2 events and clock ≥ %d", rec, stamped)
	}

	// The recovered engine already matched worker 1; a new request on the
	// resumed clock must be processed without a time-regression error.
	_, d = postJSON(t, ts2.Client(), ts2.URL+"/v1/requests",
		`{"id":2,"x":0.5,"y":0.5,"platform":1,"value":1.0}`)
	if d.Status != StatusOK {
		t.Fatalf("post-restart request: %+v", d)
	}
	if d.VTime < stamped {
		t.Fatalf("post-restart tick %d regressed below the pre-crash tick %d", d.VTime, stamped)
	}
	if errs := srv2.Snapshot().Server.EngineErrors; errs != 0 {
		t.Fatalf("engine errors after restart: %d", errs)
	}
	if _, err := srv2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestLogEventSteadyStateAllocFree pins the durability cost model: the
// sequencer's WAL append path reuses its encode buffer, so once warm it
// must not allocate per event — and with the WAL off the path is a
// single nil check.
func TestLogEventSteadyStateAllocFree(t *testing.T) {
	srv, _ := startServer(t, Options{Algorithm: platform.AlgDemCOM, Seed: 5,
		WALDir: t.TempDir(), FsyncBatch: 1 << 30})
	ev := core.Event{Time: 1, Kind: core.RequestArrival,
		Request: &core.Request{ID: 1, Arrival: 1, Loc: geo.Point{X: 0.5, Y: 0.5}, Value: 1, Platform: 1}}
	if err := srv.logEvent(ev, -1); err != nil { // warm the encode buffer
		t.Fatalf("logEvent: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		ev.Time++
		ev.Request.Arrival = ev.Time
		if err := srv.logEvent(ev, -1); err != nil {
			t.Fatalf("logEvent: %v", err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm WAL append allocates %.1f times per event, want 0", allocs)
	}
}

// TestRecoveryRejectsConfigMismatch: a WAL written under one engine
// configuration must not boot a server with another — that would
// re-drive cleanly but produce silently different matching state.
func TestRecoveryRejectsConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Options{Algorithm: platform.AlgDemCOM, Seed: 1, WALDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	if _, d := postJSON(t, ts1.Client(), ts1.URL+"/v1/workers",
		`{"id":1,"x":0.5,"y":0.5,"platform":1,"radius":0.4}`); d.Status != StatusOK {
		t.Fatalf("worker post: %+v", d)
	}
	ts1.Close()
	if _, err := srv1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if _, err := New(Options{Algorithm: platform.AlgDemCOM, Seed: 2, WALDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "seed") {
		t.Fatalf("restart with a different seed must fail, got %v", err)
	}
}

// TestRestartAfterCleanCloseVerifiesSnapshotDigest: a clean shutdown
// writes a final checkpoint; a restart re-drives the full log and must
// verify the checkpoint digest bit for bit, then produce the same
// Result as the uninterrupted offline run.
func TestRestartAfterCleanCloseVerifiesSnapshotDigest(t *testing.T) {
	stream := testStream(t, 120, 90, 11)
	factory, err := platform.FactoryFor(platform.AlgDemCOM, stream.MaxValue())
	if err != nil {
		t.Fatalf("FactoryFor: %v", err)
	}
	want, err := platform.Run(stream, factory, platform.Config{Seed: 11})
	if err != nil {
		t.Fatalf("offline Run: %v", err)
	}

	dir := t.TempDir()
	opts := Options{Algorithm: platform.AlgDemCOM, Seed: 11, Replay: stream,
		QueueCap: stream.Len() + 1, WALDir: dir, SnapshotEvery: 25}
	srv1, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	if rep, err := RunLoad(context.Background(), LoadOptions{
		URL: ts1.URL, Stream: stream, Conns: 4, Batch: 8, Retries: 5, Client: ts1.Client(),
	}); err != nil || rep.Failed != 0 || rep.Dropped != 0 {
		t.Fatalf("RunLoad: %v, %+v", err, rep)
	}
	ts1.Close()
	if _, err := srv1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	srv2, err := New(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	rec := srv2.Recovery()
	if rec.Events != int64(stream.Len()) || rec.SnapshotApplied != int64(stream.Len()) {
		t.Fatalf("recovery after clean close: %+v, want all %d events and the final checkpoint", rec, stream.Len())
	}
	got, err := srv2.Close()
	if err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}
	assertSameResult(t, want, got)
}
