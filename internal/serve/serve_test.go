package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/platform"
	"crossmatch/internal/trace"
	"crossmatch/internal/workload"
)

func testStream(t *testing.T, requests, workers int, seed int64) *core.Stream {
	t.Helper()
	cfg, err := workload.Synthetic(requests, workers, 1.0, "real")
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	stream, err := workload.Generate(cfg, seed)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return stream
}

// startServer builds a Server plus an httptest listener and registers
// cleanup. Tests that need the final Result call srv.Close themselves;
// the cleanup tolerates the second call.
func startServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_, _ = srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, client *http.Client, url string, body string) (*http.Response, WireDecision) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var d WireDecision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, d
}

func TestLiveSingleEvents(t *testing.T) {
	srv, ts := startServer(t, Options{Algorithm: platform.AlgDemCOM, Seed: 7})
	client := ts.Client()

	resp, d := postJSON(t, client, ts.URL+"/v1/workers",
		`{"id":1,"x":0.5,"y":0.5,"platform":1,"radius":0.4}`)
	if resp.StatusCode != http.StatusOK || d.Status != StatusOK || d.Kind != "worker" {
		t.Fatalf("worker post: code %d, decision %+v", resp.StatusCode, d)
	}

	resp, d = postJSON(t, client, ts.URL+"/v1/requests",
		`{"id":1,"x":0.5,"y":0.5,"platform":1,"value":3.5}`)
	if resp.StatusCode != http.StatusOK || d.Status != StatusOK {
		t.Fatalf("request post: code %d, decision %+v", resp.StatusCode, d)
	}
	if !d.Served || d.WorkerID != 1 || d.Revenue != 3.5 {
		t.Fatalf("expected inner match to worker 1 with revenue 3.5, got %+v", d)
	}

	// No workers left: the decision comes back unserved with a reason.
	resp, d = postJSON(t, client, ts.URL+"/v1/requests",
		`{"id":2,"x":0.5,"y":0.5,"platform":1,"value":2}`)
	if resp.StatusCode != http.StatusOK || d.Served {
		t.Fatalf("second request should be unserved: code %d, %+v", resp.StatusCode, d)
	}
	if d.Reason == "" {
		t.Fatalf("unserved decision must carry a reason, got %+v", d)
	}

	res, err := srv.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res.TotalServed() != 1 || res.TotalRevenue() != 3.5 {
		t.Fatalf("final result: served %d revenue %v", res.TotalServed(), res.TotalRevenue())
	}
}

func TestBadInputRejected(t *testing.T) {
	_, ts := startServer(t, Options{Seed: 1})
	client := ts.Client()

	for name, tc := range map[string]struct {
		url, body string
	}{
		"malformed json": {"/v1/requests", `{"id":`},
		"unknown field":  {"/v1/requests", `{"id":1,"value":1,"bogus":2}`},
		"zero value":     {"/v1/requests", `{"id":1,"x":0.1,"y":0.1,"platform":1}`},
		"zero radius":    {"/v1/workers", `{"id":1,"x":0.1,"y":0.1,"platform":1}`},
		"empty body":     {"/v1/requests", ``},
	} {
		resp, d := postJSON(t, client, ts.URL+tc.url, tc.body)
		if resp.StatusCode != http.StatusBadRequest || d.Status != StatusError {
			t.Errorf("%s: want 400/error, got %d/%s", name, resp.StatusCode, d.Status)
		}
	}
}

// An event naming a platform the engine was not built with must be a
// 400 at admission, not a sequencer panic (and in WAL mode not a
// logged poison event): before the guard, one such POST crashed the
// whole server.
func TestUnknownPlatformRejected(t *testing.T) {
	srv, ts := startServer(t, Options{Algorithm: platform.AlgBatchCOM, Seed: 1, Window: 5})
	client := ts.Client()

	for name, tc := range map[string]struct {
		url, body string
	}{
		"request platform 0":  {"/v1/requests", `{"id":1,"x":0.5,"y":0.5,"platform":0,"value":5}`},
		"request platform 99": {"/v1/requests", `{"id":2,"x":0.5,"y":0.5,"platform":99,"value":5}`},
		"worker platform 0":   {"/v1/workers", `{"id":1,"x":0.5,"y":0.5,"platform":0,"radius":0.4}`},
	} {
		resp, d := postJSON(t, client, ts.URL+tc.url, tc.body)
		if resp.StatusCode != http.StatusBadRequest || d.Status != StatusError {
			t.Errorf("%s: want 400/error, got %d/%s", name, resp.StatusCode, d.Status)
		}
		if !strings.Contains(d.Error, "unknown platform") {
			t.Errorf("%s: error %q does not name the cause", name, d.Error)
		}
	}

	// The server must still be alive and matching on its real platforms.
	resp, d := postJSON(t, client, ts.URL+"/v1/workers",
		`{"id":3,"x":0.5,"y":0.5,"platform":1,"radius":0.4}`)
	if resp.StatusCode != http.StatusOK || d.Status != StatusOK {
		t.Fatalf("valid worker after rejections: code %d, %+v", resp.StatusCode, d)
	}
	if got := srv.Snapshot().Server.BadEvents; got != 3 {
		t.Fatalf("bad-event counter %d, want 3", got)
	}
}

func TestRateLimitSheds(t *testing.T) {
	srv, ts := startServer(t, Options{Seed: 1, Rate: 0.001, Burst: 2})
	client := ts.Client()

	var okN, shedN int
	var lastShed WireDecision
	var lastResp *http.Response
	for i := 1; i <= 5; i++ {
		resp, d := postJSON(t, client, ts.URL+"/v1/workers",
			fmt.Sprintf(`{"id":%d,"x":0.5,"y":0.5,"platform":1,"radius":0.3}`, i))
		switch d.Status {
		case StatusOK:
			okN++
		case StatusShed:
			shedN++
			lastShed, lastResp = d, resp
		default:
			t.Fatalf("post %d: unexpected %+v", i, d)
		}
	}
	if okN != 2 || shedN != 3 {
		t.Fatalf("burst 2: want 2 ok / 3 shed, got %d / %d", okN, shedN)
	}
	if lastResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed single post must answer 429, got %d", lastResp.StatusCode)
	}
	if lastResp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 must carry Retry-After")
	}
	if lastShed.RetryAfterMs < 1 {
		t.Fatalf("shed line must carry retry_after_ms, got %+v", lastShed)
	}
	snap := srv.Snapshot()
	if snap.Server.ShedRateLimit != 3 || snap.Server.Accepted != 2 {
		t.Fatalf("counters: %+v", snap.Server)
	}
}

func TestQueueFullSheds(t *testing.T) {
	// ProcessDelay keeps the sequencer busy so the 1-slot queue fills.
	srv, ts := startServer(t, Options{Seed: 1, QueueCap: 1, ProcessDelay: 100 * time.Millisecond})
	client := ts.Client()

	type out struct {
		d    WireDecision
		code int
	}
	outs := make(chan out, 8)
	for i := 1; i <= 8; i++ {
		go func(i int) {
			resp, err := client.Post(ts.URL+"/v1/workers", "application/json",
				strings.NewReader(fmt.Sprintf(`{"id":%d,"x":0.5,"y":0.5,"platform":1,"radius":0.3}`, i)))
			if err != nil {
				outs <- out{}
				return
			}
			defer resp.Body.Close()
			var d WireDecision
			_ = json.NewDecoder(resp.Body).Decode(&d)
			outs <- out{d, resp.StatusCode}
		}(i)
	}
	var shed int
	for i := 0; i < 8; i++ {
		o := <-outs
		if o.d.Status == StatusShed {
			shed++
			if o.code != http.StatusTooManyRequests {
				t.Fatalf("queue-full shed must answer 429, got %d", o.code)
			}
		}
	}
	if shed == 0 {
		t.Fatalf("expected at least one queue-full shed")
	}
	if srv.Snapshot().Server.ShedQueueFull == 0 {
		t.Fatalf("shed_queue_full counter not incremented")
	}
}

func TestBatchNDJSON(t *testing.T) {
	_, ts := startServer(t, Options{Seed: 3})
	client := ts.Client()

	body := `{"id":1,"x":0.4,"y":0.4,"platform":1,"radius":0.5}
{"id":2,"x":0.6,"y":0.6,"platform":2,"radius":0.5}`
	resp, err := client.Post(ts.URL+"/v1/workers", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch must answer 200, got %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("want 2 response lines, got %d: %s", len(lines), raw)
	}
	for i, line := range lines {
		var d WireDecision
		if err := json.Unmarshal(line, &d); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if d.Status != StatusOK || d.ID != int64(i+1) {
			t.Fatalf("line %d: %+v", i, d)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := startServer(t, Options{Seed: 3})
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/workers", `{"id":1,"x":0.5,"y":0.5,"platform":1,"radius":0.4}`)
	postJSON(t, client, ts.URL+"/v1/requests", `{"id":1,"x":0.5,"y":0.5,"platform":1,"value":2}`)

	resp, err := client.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	if snap.Server.Accepted != 2 || snap.Server.RequestsSeen != 1 || snap.Server.WorkersSeen != 1 {
		t.Fatalf("server counters: %+v", snap.Server)
	}
	if snap.Server.Matched != 1 || snap.Server.Revenue != 2 {
		t.Fatalf("decision counters: %+v", snap.Server)
	}
	if got := snap.Engine.Counters.InnerMatches + snap.Engine.Counters.OuterMatches; got != 1 {
		t.Fatalf("engine funnel must book the match, got counters %+v", snap.Engine.Counters)
	}
}

func TestTraceEndpoint(t *testing.T) {
	tr := trace.New(trace.Options{Capacity: 64})
	_, ts := startServer(t, Options{Seed: 3, Tracer: tr, TraceSample: 1})
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/requests", `{"id":1,"x":0.5,"y":0.5,"platform":1,"value":2}`)

	resp, err := client.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatalf("GET /v1/trace: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if len(bytes.TrimSpace(raw)) == 0 {
		t.Fatalf("trace endpoint returned no spans")
	}
	var span map[string]any
	if err := json.Unmarshal(bytes.SplitN(bytes.TrimSpace(raw), []byte("\n"), 2)[0], &span); err != nil {
		t.Fatalf("trace line is not JSON: %v", err)
	}

	// Without a tracer the endpoint 404s.
	_, ts2 := startServer(t, Options{Seed: 3})
	resp2, err := ts2.Client().Get(ts2.URL + "/v1/trace")
	if err != nil {
		t.Fatalf("GET /v1/trace: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("traceless server must 404, got %d", resp2.StatusCode)
	}
}

func TestReplayUnknownAndDuplicate(t *testing.T) {
	stream := testStream(t, 10, 10, 42)
	_, ts := startServer(t, Options{Seed: 42, Replay: stream})
	client := ts.Client()

	// An ID outside the recorded stream.
	resp, d := postJSON(t, client, ts.URL+"/v1/requests", `{"id":99999}`)
	if resp.StatusCode != http.StatusNotFound || d.Status != StatusUnknown {
		t.Fatalf("unknown replay id: code %d, %+v", resp.StatusCode, d)
	}

	// First delivery of a recorded event is fine; the second conflicts.
	ev := stream.Events()[0]
	line, _ := json.Marshal(WireEvent{ID: eventID(ev)})
	url := ts.URL + "/v1/requests"
	if ev.Kind == core.WorkerArrival {
		url = ts.URL + "/v1/workers"
	}
	resp, d = postJSON(t, client, url, string(line))
	if resp.StatusCode != http.StatusOK || d.Status != StatusOK {
		t.Fatalf("first delivery: code %d, %+v", resp.StatusCode, d)
	}
	resp, d = postJSON(t, client, url, string(line))
	if resp.StatusCode != http.StatusConflict || d.Status != StatusDuplicate {
		t.Fatalf("duplicate delivery: code %d, %+v", resp.StatusCode, d)
	}
}

func TestLiveNeedsMaxValueForThresholdAlgs(t *testing.T) {
	for _, alg := range []string{platform.AlgRamCOM, platform.AlgGreedyRT} {
		if _, err := New(Options{Algorithm: alg}); err == nil {
			t.Errorf("%s without MaxValue must fail construction", alg)
		}
	}
	srv, err := New(Options{Algorithm: platform.AlgRamCOM, MaxValue: 10})
	if err != nil {
		t.Fatalf("RamCOM with MaxValue: %v", err)
	}
	_, _ = srv.Close()
}

func TestHealthz(t *testing.T) {
	srv, ts := startServer(t, Options{Seed: 1})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy server must 200, got %d", resp.StatusCode)
	}
	srv.BeginDrain()
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server must 503, got %d", resp.StatusCode)
	}
}
