package serve

import (
	"sync"
	"time"
)

// tokenBucket is the server's ingest rate limiter: capacity `burst`
// tokens refilled at `rate` tokens per second on a monotonic clock.
// A nil bucket admits everything (rate limiting disabled). take is
// safe for concurrent use by the HTTP handler goroutines.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // injectable for tests
}

// newTokenBucket returns a bucket admitting rate events/second with
// the given burst (at least 1), or nil when rate is non-positive.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: time.Now(), now: time.Now}
}

// take consumes one token. When the bucket is empty it reports false
// plus the wait until a token will be available — the Retry-After the
// 429 response carries.
func (b *tokenBucket) take() (bool, time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += b.rate * now.Sub(b.last).Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	return false, wait
}

// A shed response carries its backoff hint twice, with a defined
// precedence: the body field retry_after_ms (RetryAfterWireMs) is
// authoritative — millisecond precision, what comload sleeps on —
// while the Retry-After header (RetryAfterHeaderSeconds) is the coarse
// fallback for plain HTTP clients, the same hint rounded up to whole
// seconds so header-driven clients never back off shorter than
// body-driven ones. The helpers are exported because every hop that
// relays a backpressure decision (the shard router included) must
// derive both hints the same way, or a client could read a shorter
// wait from one field than the other.

// RetryAfterWireMs clamps a retry hint into [1ms, 30s] for the
// retry_after_ms body field.
func RetryAfterWireMs(d time.Duration) int64 {
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	if ms > 30_000 {
		ms = 30_000
	}
	return ms
}

// RetryAfterHeaderSeconds renders the Retry-After header for a body
// hint of ms milliseconds: rounded up to integer seconds, at least 1,
// per RFC 9110.
func RetryAfterHeaderSeconds(ms int64) int64 {
	s := (ms + 999) / 1000
	if s < 1 {
		s = 1
	}
	return s
}
