package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGracefulDrain exercises the shutdown contract under concurrency
// (run with -race): the decision in flight completes, events still
// queued are answered 503 with a drain reason, new arrivals are
// refused, and Close returns a clean final Result.
func TestGracefulDrain(t *testing.T) {
	srv, ts := startServer(t, Options{
		Seed:         1,
		QueueCap:     64,
		ProcessDelay: 30 * time.Millisecond,
	})
	client := ts.Client()

	const n = 20
	type out struct {
		code int
		d    WireDecision
		err  error
	}
	outs := make(chan out, n)
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Post(ts.URL+"/v1/workers", "application/json",
				strings.NewReader(fmt.Sprintf(`{"id":%d,"x":0.5,"y":0.5,"platform":1,"radius":0.3}`, i)))
			if err != nil {
				outs <- out{err: err}
				return
			}
			defer resp.Body.Close()
			var d WireDecision
			err = json.NewDecoder(resp.Body).Decode(&d)
			outs <- out{resp.StatusCode, d, err}
		}(i)
	}

	// Let a few decisions land, then pull the plug mid-flight.
	time.Sleep(80 * time.Millisecond)
	srv.BeginDrain()
	wg.Wait()
	close(outs)

	var okN, drainedN int
	for o := range outs {
		if o.err != nil {
			t.Fatalf("post failed: %v", o.err)
		}
		switch o.d.Status {
		case StatusOK:
			okN++
			if o.code != http.StatusOK {
				t.Fatalf("ok decision with code %d", o.code)
			}
		case StatusDraining:
			drainedN++
			if o.code != http.StatusServiceUnavailable {
				t.Fatalf("drained decision must answer 503, got %d", o.code)
			}
			if o.d.Error == "" {
				t.Fatalf("drain refusal must carry a reason: %+v", o.d)
			}
		default:
			t.Fatalf("unexpected terminal status %q (%+v)", o.d.Status, o.d)
		}
	}
	if okN == 0 {
		t.Fatalf("at least one in-flight decision must complete before the drain")
	}
	if drainedN == 0 {
		t.Fatalf("at least one queued event must be drained with 503")
	}
	if okN+drainedN != n {
		t.Fatalf("every post must terminate: %d ok + %d drained != %d", okN, drainedN, n)
	}

	// Post-drain arrivals are refused immediately.
	resp, d := postJSON(t, client, ts.URL+"/v1/workers", `{"id":99,"x":0.5,"y":0.5,"platform":1,"radius":0.3}`)
	if resp.StatusCode != http.StatusServiceUnavailable || d.Status != StatusDraining {
		t.Fatalf("post-drain admission: code %d, %+v", resp.StatusCode, d)
	}

	res, err := srv.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res == nil {
		t.Fatalf("Close must return the final result")
	}
	snap := srv.Snapshot()
	if !snap.Server.Draining {
		t.Fatalf("snapshot must report draining")
	}
	// Every terminal OK passed through the queue; drains came from the
	// admission gate or the queue flush, and nothing was lost.
	if int64(okN) > snap.Server.Accepted {
		t.Fatalf("more decisions (%d) than accepted events (%d)", okN, snap.Server.Accepted)
	}
	if snap.Server.Drained < int64(drainedN) {
		t.Fatalf("drain counter %d below observed drains %d", snap.Server.Drained, drainedN)
	}

	// Close is idempotent and keeps returning the cached result.
	res2, err := srv.Close()
	if err != nil || res2 != res {
		t.Fatalf("second Close: res2=%p res=%p err=%v", res2, res, err)
	}
}

// TestCloseWithoutTraffic closes an idle server cleanly.
func TestCloseWithoutTraffic(t *testing.T) {
	srv, err := New(Options{Seed: 9})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := srv.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res.TotalServed() != 0 {
		t.Fatalf("idle server served %d", res.TotalServed())
	}
}
