// Package serve is the live matching service of the reproduction: an
// HTTP ingestion layer that drives the deterministic matching engine
// (internal/platform.Engine) from socket traffic instead of an
// in-memory stream slice — the ROADMAP's "serves heavy traffic" north
// star, and the deployment shape of real online task assignment, where
// requests and workers are open-loop arrival streams.
//
// Architecture: HTTP handlers admit events through a token bucket and
// a bounded ingest queue (admission control; overload answers 429 with
// Retry-After instead of queueing without bound), and a single
// sequencer goroutine — the wall-clock→virtual-time bridge — stamps
// each admitted arrival with a monotone virtual tick and feeds it to
// the engine, returning match decisions synchronously to the waiting
// handler. In replay mode the sequencer instead holds arrivals until
// their recorded predecessors have been fed, so a recorded stream
// pushed over HTTP — concurrently, in any order — reproduces the
// offline SimulateContext result bit for bit.
//
// Shutdown is a graceful drain: new arrivals get 503, events already
// admitted to the queue are answered 503 with a drain reason, the
// decision in flight completes, and Close returns the engine's final
// Result.
package serve

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/fault"
	"crossmatch/internal/metrics"
	"crossmatch/internal/platform"
	"crossmatch/internal/trace"
	"crossmatch/internal/wal"
)

// liveIDBase is where server-assigned IDs start in live mode, far from
// the small explicit IDs clients typically send.
const liveIDBase = 1 << 30

// Options configures a Server.
type Options struct {
	// Algorithm names the online matcher (platform.Alg*); default DemCOM.
	Algorithm string
	// Seed roots the engine's randomness, exactly like SimulateContext.
	Seed int64
	// Platforms is the live-mode platform set (default {1, 2}); replay
	// mode derives it from the recorded stream.
	Platforms []core.PlatformID
	// MaxValue is the a-priori max request value Umax the threshold
	// algorithms (RamCOM, Greedy-RT) assume known; required for them in
	// live mode, derived from the recorded stream in replay mode.
	MaxValue float64
	// Replay, when non-nil, switches to deterministic replay: incoming
	// events name events of this recorded stream by ID, the sequencer
	// feeds them in the recorded order regardless of HTTP delivery
	// order, and the recorded arrival ticks are authoritative — the
	// final Result is bit-identical to SimulateContext on the stream.
	Replay *core.Stream
	// QueueCap bounds the ingest queue (default 1024). A full queue
	// sheds with 429.
	QueueCap int
	// Rate is the token-bucket admission rate in events/second; 0
	// disables rate limiting. Burst is the bucket size (default Rate,
	// at least 1).
	Rate  float64
	Burst int
	// Deadline bounds how long a handler waits for its decision
	// (default 10s). An expired wait answers 504; the event itself
	// stays in the sequencer's order.
	Deadline time.Duration
	// ProcessDelay adds an artificial per-event delay in the sequencer —
	// a capacity knob for overload experiments (capacity ≈ 1/delay) and
	// the shutdown tests' way of keeping the queue busy.
	ProcessDelay time.Duration
	// ServiceTicks, DisableCoop and Faults pass through to the engine
	// Config (see platform.Config).
	ServiceTicks core.Time
	DisableCoop  bool
	Faults       *fault.Plan
	// Window configures the windowed algorithms (BatchCOM): arrivals
	// buffer for this many virtual ticks (one tick is one wall-clock
	// millisecond in live mode) and flush as a batch matching.
	// Non-positive selects platform.DefaultBatchWindow when the
	// algorithm is windowed; ignored by the greedy algorithms.
	Window core.Time
	// BatchDeadline, when positive, caps how long a windowed algorithm
	// may hold any single request, pulling the window flush forward.
	// Distinct from Deadline below, which bounds the HTTP handler's
	// wait, not the engine's buffering.
	BatchDeadline core.Time
	// Shards, when > 1, serves on the geo-sharded engine: matching
	// state partitions across per-cell shard goroutines and
	// boundary-crossing requests go through the async cross-shard claim
	// protocol (see internal/shard). The sequencer contract is
	// unchanged — one Process call per arrival, decisions synchronous —
	// and replay stays bit-identical to the offline sharded run. The
	// sharded engine rejects ServiceTicks, tracing and windowed
	// algorithms (platform.ErrShardUnsupported).
	Shards int
	// ShardReach bounds worker service radii for the shard partitioner
	// (see platform.Config.ShardReach). Replay mode derives it from the
	// recorded stream when zero; live mode requires it when Shards > 1,
	// and workers exceeding it are rejected at ingest with
	// platform.ErrShardReach.
	ShardReach float64
	// ShardStallTimeout arms the cross-shard claim watchdog
	// (platform.Config.ShardStallTimeout); zero waits forever,
	// preserving determinism.
	ShardStallTimeout time.Duration
	// Metrics receives the engine's funnel counters and latency
	// reservoirs; created internally when nil (it backs /v1/metrics).
	Metrics *metrics.Collector
	// Tracer, when non-nil, records per-request decision spans; they
	// export at /v1/trace as JSONL. TraceSample as in platform.Config.
	Tracer      *trace.Tracer
	TraceSample float64

	// WALDir, when non-empty, turns on durability: every admitted event
	// is appended to a write-ahead log in this directory before the
	// engine sees it, checkpoint manifests are written alongside, and a
	// restart with the same directory recovers the exact pre-crash state
	// by re-driving the log (see internal/wal). Empty keeps the
	// zero-durability hot path byte-for-byte unchanged.
	WALDir string
	// FsyncBatch fsyncs the log every N appends (<1 → every append).
	// Larger batches trade the durability of the last <N events for
	// sustained throughput.
	FsyncBatch int
	// SnapshotEvery writes a checkpoint manifest every N applied events;
	// 0 disables periodic checkpoints (one is still written on Close).
	SnapshotEvery int
	// SegmentBytes caps one log segment (default wal.DefaultSegmentBytes).
	SegmentBytes int64
	// ResumeVTime starts the live virtual clock at this tick (ms)
	// instead of zero, so a restarted server never stamps an arrival
	// before recovered engine state. Recovery raises it further to the
	// logged high-water mark.
	ResumeVTime int64
	// RecoverInBackground, with WALDir set, returns from New immediately
	// and re-drives the log on a background goroutine: the server is
	// live (HTTP up, /healthz/live answers 200) but not ready — ingest
	// answers 503 {"status":"recovering"} and /healthz reports
	// recovering — until the re-drive and its digest verify finish.
	// This is how a fleet shard stays probe-able during a long recovery
	// so a router can re-admit it the moment readiness flips. Default
	// (false) recovers synchronously inside New, exactly as before.
	RecoverInBackground bool
}

type eventKey struct {
	kind core.EventKind
	id   int64
}

// ingest is one admitted arrival travelling handler → sequencer; the
// buffered done channel carries the decision back (buffered so a
// handler that gave up on its deadline never blocks the sequencer).
type ingest struct {
	ev   core.Event
	seq  int // replay order index; -1 in live mode
	done chan WireDecision
	// kind/id mirror ev's wire identity, frozen at admission. After the
	// item is enqueued, ev belongs to the sequencer (stamp rewrites its
	// time in place), so a handler that outlives its deadline must
	// build the 504 line from these copies, never from ev.
	kind core.EventKind
	id   int64
}

// Server is the live matching service. Create with New (which starts
// the sequencer), expose Handler over any listener, and stop with
// BeginDrain + Close.
type Server struct {
	opts Options
	mux  *http.ServeMux
	met  *metrics.Collector
	eng  *platform.Engine

	queue  chan *ingest
	qmu    sync.RWMutex // guards queue close vs concurrent enqueues
	bucket *tokenBucket

	// platformOK is the engine's platform set; live admission rejects
	// events naming any other platform before they can reach the WAL or
	// the sequencer (an unguarded unknown ID is a poison event: logged,
	// it would fail recovery on every restart). platformList is the
	// ready-made error text.
	platformOK   map[core.PlatformID]bool
	platformList string

	draining atomic.Bool
	// Readiness (liveness vs readiness split): recovering is true while
	// a background WAL re-drive owns the server state; recFailed latches
	// when that re-drive errors. Both stay false on the synchronous
	// recovery path, where New does not return until the server is
	// ready. recoverDone closes when the recovery attempt settles
	// (success or failure); recErr is written before that close and read
	// only after it.
	recovering  atomic.Bool
	recFailed   atomic.Bool
	recoverDone chan struct{}
	recErr      error

	seqDone chan struct{}
	started time.Time
	vbase   int64 // virtual-clock origin: 0, or the resumed high-water mark
	vlast   int64 // sequencer-owned virtual clock high-water mark

	// replay state
	replayIdx map[eventKey]int
	replayEvs []core.Event
	delivered []atomic.Bool
	cursor    int // sequencer-owned recorded-order cursor (replay mode)

	// waiters maps a deferred (window-buffered) request ID to the ingest
	// whose decision is still owed: registered by process when the engine
	// defers, answered by onWindowFlush when the window flushes. Owned by
	// the sequencer goroutine — flushes only happen inside engine calls
	// made by the sequencer or the pre-sequencer recovery re-drive.
	waiters map[int64]*ingest

	// durability (nil wal == zero-durability path, bit-identical to the
	// pre-WAL server)
	wal          *wal.Log
	walBuf       []byte // reused event-encode buffer; sequencer goroutine only
	applied      int64  // WAL records appended + recovered; sequencer-owned
	recycleBase  int64
	rec          RecoveryInfo
	snapsWritten atomic.Int64

	// live ID allocation
	nextReqID    atomic.Int64
	nextWorkerID atomic.Int64

	ctr counters

	closeOnce sync.Once
	result    *platform.Result
	closeErr  error
}

// counters are the server-side (pre-engine) accounting exposed at
// /v1/metrics: admission outcomes and decision totals.
type counters struct {
	accepted     atomic.Int64 // events admitted to the queue
	applied      atomic.Int64 // events the engine has processed
	requestsSeen atomic.Int64
	workersSeen  atomic.Int64
	served       atomic.Int64 // request decisions returned
	matched      atomic.Int64 // ... of which assigned a worker
	shedRate     atomic.Int64 // 429: token bucket empty
	shedQueue    atomic.Int64 // 429: ingest queue full
	drained      atomic.Int64 // 503: rejected during drain
	deadlineMiss atomic.Int64 // 504: handler gave up waiting
	badEvents    atomic.Int64 // malformed / unknown / duplicate
	engineErrors atomic.Int64
	walErrors    atomic.Int64 // append/snapshot failures (event NOT applied)
	revenueMu    sync.Mutex
	revenue      float64
}

func (c *counters) addRevenue(v float64) {
	c.revenueMu.Lock()
	c.revenue += v
	c.revenueMu.Unlock()
}

// New builds the service and starts its sequencer goroutine. Every
// successfully constructed Server must be stopped with Close, even on
// error paths, or the sequencer leaks.
func New(opts Options) (*Server, error) {
	if opts.Algorithm == "" {
		opts.Algorithm = platform.AlgDemCOM
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 1024
	}
	if opts.Deadline <= 0 {
		opts.Deadline = 10 * time.Second
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.New()
	}

	pids := opts.Platforms
	maxV := opts.MaxValue
	if opts.Replay != nil {
		pids = opts.Replay.Platforms()
		maxV = opts.Replay.MaxValue()
	} else {
		if len(pids) == 0 {
			pids = []core.PlatformID{1, 2}
		}
		if maxV <= 0 && (opts.Algorithm == platform.AlgRamCOM || opts.Algorithm == platform.AlgGreedyRT) {
			return nil, fmt.Errorf("serve: %s needs MaxValue (the a-priori max request value) in live mode", opts.Algorithm)
		}
	}
	if opts.Algorithm == platform.AlgBatchCOM && opts.Window <= 0 {
		// Normalize before the snapshot config fingerprint is taken, so a
		// server restarted with an explicit DefaultBatchWindow still
		// matches a log written with the implicit default.
		opts.Window = platform.DefaultBatchWindow
	}
	factory, err := platform.FactoryConfigured(opts.Algorithm, platform.AlgConfig{
		MaxValue: maxV, Window: opts.Window, Deadline: opts.BatchDeadline,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if opts.Shards > 1 && opts.ShardReach <= 0 && opts.Replay != nil {
		// The recorded stream bounds every radius the engine will see, so
		// replay parity with the offline sharded run needs no explicit
		// reach — derive the same bound platform.Run derives.
		for _, ev := range opts.Replay.Events() {
			if ev.Kind == core.WorkerArrival && ev.Worker.Radius > opts.ShardReach {
				opts.ShardReach = ev.Worker.Radius
			}
		}
	}
	eng, err := platform.NewEngine(pids, factory, platform.Config{
		Seed:              opts.Seed,
		ServiceTicks:      opts.ServiceTicks,
		DisableCoop:       opts.DisableCoop,
		Metrics:           opts.Metrics,
		Faults:            opts.Faults,
		Trace:             opts.Tracer,
		TraceSample:       opts.TraceSample,
		Shards:            opts.Shards,
		ShardReach:        opts.ShardReach,
		ShardStallTimeout: opts.ShardStallTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}

	s := &Server{
		opts:        opts,
		met:         opts.Metrics,
		eng:         eng,
		queue:       make(chan *ingest, opts.QueueCap),
		bucket:      newTokenBucket(opts.Rate, opts.Burst),
		seqDone:     make(chan struct{}),
		recoverDone: make(chan struct{}),
		started:     time.Now(),
	}
	s.platformOK = make(map[core.PlatformID]bool, len(pids))
	for _, pid := range pids {
		s.platformOK[pid] = true
	}
	s.platformList = fmt.Sprint(s.Platforms())
	s.nextReqID.Store(liveIDBase)
	s.nextWorkerID.Store(liveIDBase)
	if opts.ResumeVTime > 0 {
		s.vbase, s.vlast = opts.ResumeVTime, opts.ResumeVTime
	}
	s.waiters = make(map[int64]*ingest)
	// The flush handler must be registered before any recovery re-drive:
	// recovered tick records flush windows, and those flushes must book
	// exactly the counters they booked live or the snapshot digest check
	// would fail.
	eng.SetDecisionHandler(s.onWindowFlush)

	if opts.Replay != nil {
		evs := opts.Replay.Events()
		s.replayEvs = evs
		s.replayIdx = make(map[eventKey]int, len(evs))
		s.delivered = make([]atomic.Bool, len(evs))
		var maxWorker int64
		for i, ev := range evs {
			switch ev.Kind {
			case core.WorkerArrival:
				s.replayIdx[eventKey{ev.Kind, ev.Worker.ID}] = i
				if ev.Worker.ID > maxWorker {
					maxWorker = ev.Worker.ID
				}
			case core.RequestArrival:
				s.replayIdx[eventKey{ev.Kind, ev.Request.ID}] = i
			}
		}
		// Recycled-worker IDs must continue the recorded stream's ID
		// space for bit-parity with the offline run.
		if err := eng.SetRecycleBase(maxWorker); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.recycleBase = maxWorker
	}

	if opts.WALDir != "" && !opts.RecoverInBackground {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/requests", func(w http.ResponseWriter, r *http.Request) {
		s.handleIngest(w, r, core.RequestArrival)
	})
	s.mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		s.handleIngest(w, r, core.WorkerArrival)
	})
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /healthz/live", s.handleLiveness)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	if opts.WALDir != "" && opts.RecoverInBackground {
		// Live-but-not-ready: HTTP is up, ingest answers "recovering",
		// and the sequencer starts only once the re-drive owns no more
		// state. A failed recovery latches the server unavailable; the
		// sequencer still runs so drain/Close work normally (it can see
		// no events — admission is gated on recFailed).
		s.recovering.Store(true)
		go func() {
			err := s.recover()
			if err != nil {
				s.recErr = err
				s.recFailed.Store(true)
			}
			s.recovering.Store(false)
			close(s.recoverDone)
			go s.sequence()
		}()
	} else {
		close(s.recoverDone)
		go s.sequence()
	}
	return s, nil
}

// Ready reports whether the server admits events: recovery (if any)
// succeeded and the drain has not begun.
func (s *Server) Ready() bool {
	return !s.recovering.Load() && !s.recFailed.Load() && !s.draining.Load()
}

// RecoverDone returns a channel closed once the startup recovery
// attempt settles (immediately for servers without a background
// recovery). After it closes, RecoveryErr and Recovery are stable.
func (s *Server) RecoverDone() <-chan struct{} { return s.recoverDone }

// RecoveryErr returns the background recovery failure, nil when
// recovery succeeded or never ran. Valid after RecoverDone closes.
func (s *Server) RecoveryErr() error {
	select {
	case <-s.recoverDone:
		return s.recErr
	default:
		return nil
	}
}

// Handler returns the service's HTTP handler, ready to mount on any
// listener (net/http server, httptest, ...).
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether the server has begun its shutdown drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// BeginDrain starts graceful shutdown: from now on new arrivals are
// refused with 503, events already queued are answered 503 with a
// drain reason, and the decision in flight completes. Idempotent.
func (s *Server) BeginDrain() {
	s.qmu.Lock()
	if !s.draining.Swap(true) {
		close(s.queue)
	}
	s.qmu.Unlock()
}

// Close drains the server (if BeginDrain has not run yet), waits for
// the sequencer to stop, and finishes the engine, returning the final
// accumulated Result. Safe to call more than once; later calls return
// the cached result.
//
// Windowed algorithms: a window still open at close is flushed by the
// engine finish, so its decisions count in the returned Result — but
// that flush happens after the final checkpoint is written and is
// never logged. Recovery therefore RE-BUFFERS such requests: the log
// re-drive rebuilds the open window exactly as it stood, the digest
// verifies against the pre-flush counters, and the recovered window
// flushes on the next tick or arrival. The close-time flush is an
// artifact of finishing; the durable truth is the buffered window.
func (s *Server) Close() (*platform.Result, error) {
	s.BeginDrain()
	<-s.seqDone
	s.closeOnce.Do(func() {
		// The sequencer has stopped, so its WAL state is safe to touch:
		// write the final checkpoint and release the log before finishing
		// the engine.
		if s.wal != nil {
			if err := s.writeSnapshot(); err != nil {
				s.ctr.walErrors.Add(1)
			}
			if err := s.wal.Close(); err != nil {
				s.ctr.walErrors.Add(1)
			}
		}
		s.result, s.closeErr = s.eng.Finish()
	})
	return s.result, s.closeErr
}

// maxBodyBytes bounds one ingest POST (a few hundred thousand NDJSON
// lines — far beyond any sane batch).
const maxBodyBytes = 32 << 20

// handleIngest serves POST /v1/requests and /v1/workers: a single JSON
// object, or an NDJSON batch (one event per line). Batch responses are
// always 200 with one NDJSON decision line per input line; single
// responses carry the outcome as the HTTP status code too.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, kind core.EventKind) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, WireDecision{Status: StatusError, Error: "reading body: " + err.Error()})
		return
	}
	lines := splitLines(body)
	if len(lines) == 0 {
		writeJSONStatus(w, http.StatusBadRequest, WireDecision{Status: StatusError, Error: "empty body"})
		return
	}
	batch := len(lines) > 1 || strings.Contains(r.Header.Get("Content-Type"), "ndjson")

	// Admission pass: every line is admitted (or refused) in input
	// order before any decision is awaited, so one batch's lines enter
	// the sequencer contiguously and FIFO.
	items := make([]*ingest, len(lines))
	outs := make([]WireDecision, len(lines))
	for i, line := range lines {
		items[i], outs[i] = s.admit(kind, line)
	}

	// Collection pass: wait for the admitted decisions under one shared
	// batch deadline.
	s.collectDecisions(items, outs)

	if !batch {
		out := outs[0]
		if out.RetryAfterMs > 0 {
			w.Header().Set("Retry-After", strconv.FormatInt(RetryAfterHeaderSeconds(out.RetryAfterMs), 10))
		}
		writeJSONStatus(w, out.httpStatus(), out)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := newLineWriter(w)
	for i := range outs {
		bw.writeLine(&outs[i])
	}
	bw.flush()
}

// collectDecisions waits for each admitted item's decision under one
// shared batch deadline. A decision that is already buffered must win
// over an expired timer: both channels being ready makes Go's select
// pick pseudo-randomly, which used to misreport computed decisions as
// 504s for roughly half the lines after the first miss (the old code
// kept the fired timer "ready" via Reset(0)). The loop therefore polls
// it.done non-blockingly first, tracks expiry in a plain bool instead
// of a hot timer, and after expiry gives every remaining item one last
// non-blocking chance before declaring a miss. Missed or not, the
// event stays in the sequencer's order.
func (s *Server) collectDecisions(items []*ingest, outs []WireDecision) {
	deadline := time.NewTimer(s.opts.Deadline)
	defer deadline.Stop()
	expired := false
	for i, it := range items {
		if it == nil {
			continue
		}
		select {
		case outs[i] = <-it.done:
			continue
		default:
		}
		if !expired {
			select {
			case outs[i] = <-it.done:
				continue
			case <-deadline.C:
				expired = true
			}
		}
		// Deadline passed while this item was pending: final poll, then
		// a miss.
		select {
		case outs[i] = <-it.done:
		default:
			s.ctr.deadlineMiss.Add(1)
			// it.ev is the sequencer's now (stamp may be rewriting its
			// time concurrently); the frozen admission-time copies carry
			// the identity this line needs.
			outs[i] = WireDecision{Status: StatusDeadline, Kind: kindName(it.kind), ID: it.id,
				Error: "decision did not return within the deadline; the event is still sequenced"}
		}
	}
}

// admit runs one line through admission control. It returns the queued
// ingest (nil when refused) and, for refusals, the ready response.
func (s *Server) admit(kind core.EventKind, line []byte) (*ingest, WireDecision) {
	var we WireEvent
	if err := unmarshalStrict(line, &we); err != nil {
		s.ctr.badEvents.Add(1)
		return nil, WireDecision{Status: StatusError, Kind: kindName(kind), Error: "bad event: " + err.Error()}
	}

	// The readiness gate must come before any replay bookkeeping: while
	// a background recovery re-drives the log it owns the delivered bits
	// and the cursor, and nothing else may touch them.
	if s.recovering.Load() {
		return nil, WireDecision{Status: StatusRecovering, Kind: kindName(kind), ID: we.ID,
			RetryAfterMs: RetryAfterWireMs(recoverRetryHint), Error: "wal recovery in progress"}
	}
	if s.recFailed.Load() {
		return nil, WireDecision{Status: StatusUnavailable, Kind: kindName(kind), ID: we.ID,
			Error: "wal recovery failed; server cannot admit events"}
	}

	it := &ingest{seq: -1, done: make(chan WireDecision, 1)}
	admitted := false
	if s.replayIdx != nil {
		idx, ok := s.replayIdx[eventKey{kind, we.ID}]
		if !ok {
			s.ctr.badEvents.Add(1)
			return nil, WireDecision{Status: StatusUnknown, Kind: kindName(kind), ID: we.ID,
				Error: "no such event in the recorded stream"}
		}
		if s.delivered[idx].Swap(true) {
			s.ctr.badEvents.Add(1)
			return nil, WireDecision{Status: StatusDuplicate, Kind: kindName(kind), ID: we.ID,
				Error: "event already delivered"}
		}
		it.ev, it.seq = s.replayEvs[idx], idx
		// A refusal below (shed, drain) must not burn the delivered bit,
		// or the retry would bounce off "duplicate" and the replay cursor
		// could never pass this event.
		defer func() {
			if !admitted {
				s.delivered[idx].Store(false)
			}
		}()
	} else {
		ev, err := we.toEvent(kind)
		if err != nil {
			s.ctr.badEvents.Add(1)
			return nil, WireDecision{Status: StatusError, Kind: kindName(kind), ID: we.ID, Error: err.Error()}
		}
		if !s.platformOK[core.PlatformID(we.Platform)] {
			s.ctr.badEvents.Add(1)
			return nil, WireDecision{Status: StatusError, Kind: kindName(kind), ID: we.ID,
				Error: fmt.Sprintf("unknown platform %d; this server serves %s", we.Platform, s.platformList)}
		}
		s.assignID(ev)
		it.ev = ev
	}
	it.kind, it.id = it.ev.Kind, eventID(it.ev)

	if ok, wait := s.bucket.take(); !ok {
		s.ctr.shedRate.Add(1)
		return nil, WireDecision{Status: StatusShed, Kind: kindName(kind), ID: we.ID,
			RetryAfterMs: RetryAfterWireMs(wait), Error: "rate limit"}
	}

	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.draining.Load() {
		s.ctr.drained.Add(1)
		return nil, WireDecision{Status: StatusDraining, Kind: kindName(kind), ID: we.ID,
			Error: "server draining"}
	}
	select {
	case s.queue <- it:
		admitted = true
		s.ctr.accepted.Add(1)
		if kind == core.RequestArrival {
			s.ctr.requestsSeen.Add(1)
		} else {
			s.ctr.workersSeen.Add(1)
		}
		return it, WireDecision{}
	default:
		s.ctr.shedQueue.Add(1)
		return nil, WireDecision{Status: StatusShed, Kind: kindName(kind), ID: we.ID,
			RetryAfterMs: RetryAfterWireMs(s.queueRetryHint()), Error: "ingest queue full"}
	}
}

// recoverRetryHint is the backoff hint handed to clients refused while
// a background WAL recovery is still re-driving the log: short enough
// that a router re-admits the shard promptly after readiness flips.
const recoverRetryHint = 250 * time.Millisecond

// queueRetryHint estimates how long a full queue takes to make room:
// the queue depth over the admission rate, or a small constant when
// unlimited.
func (s *Server) queueRetryHint() time.Duration {
	if s.bucket != nil {
		return time.Duration(float64(s.opts.QueueCap) / s.bucket.rate * float64(time.Second) / 4)
	}
	return 25 * time.Millisecond
}

// assignID gives live-mode events without an ID a server-allocated one.
func (s *Server) assignID(ev core.Event) {
	switch ev.Kind {
	case core.WorkerArrival:
		if ev.Worker.ID == 0 {
			ev.Worker.ID = s.nextWorkerID.Add(1)
		}
	case core.RequestArrival:
		if ev.Request.ID == 0 {
			ev.Request.ID = s.nextReqID.Add(1)
		}
	}
}

// ServerCounters is the server-side section of the /v1/metrics payload.
type ServerCounters struct {
	UptimeMs      int64   `json:"uptime_ms"`
	Replay        bool    `json:"replay"`
	Draining      bool    `json:"draining"`
	QueueLen      int     `json:"queue_len"`
	QueueCap      int     `json:"queue_cap"`
	Accepted      int64   `json:"accepted"`
	Applied       int64   `json:"applied"`
	RequestsSeen  int64   `json:"requests_seen"`
	WorkersSeen   int64   `json:"workers_seen"`
	Served        int64   `json:"served"`
	Matched       int64   `json:"matched"`
	ShedRateLimit int64   `json:"shed_rate_limit"`
	ShedQueueFull int64   `json:"shed_queue_full"`
	Drained       int64   `json:"drained"`
	DeadlineMiss  int64   `json:"deadline_miss"`
	BadEvents     int64   `json:"bad_events"`
	EngineErrors  int64   `json:"engine_errors"`
	WALErrors     int64   `json:"wal_errors,omitempty"`
	Revenue       float64 `json:"revenue"`
}

// MetricsSnapshot is the /v1/metrics document: admission and decision
// accounting plus the engine collector's matching-funnel counters and
// latency distributions. WAL is present only on durable servers; its
// live append/fsync counters ride in the engine section
// (wal_appends, wal_fsyncs, wal_fsync_ns, ...).
type MetricsSnapshot struct {
	Server ServerCounters `json:"server"`
	Engine metrics.Report `json:"engine"`
	WAL    *WALStatus     `json:"wal,omitempty"`
}

// Snapshot returns the current metrics document.
func (s *Server) Snapshot() MetricsSnapshot {
	// Fold the live per-shard counters (applied, queue depth, borrows,
	// claim conflicts) into the collector so the engine section carries
	// a "shards" array on sharded servers.
	if st := s.eng.ShardStats(); st != nil {
		s.met.RecordShards(st)
	}
	s.ctr.revenueMu.Lock()
	rev := s.ctr.revenue
	s.ctr.revenueMu.Unlock()
	snap := MetricsSnapshot{
		Server: ServerCounters{
			UptimeMs:      time.Since(s.started).Milliseconds(),
			Replay:        s.replayIdx != nil,
			Draining:      s.draining.Load(),
			QueueLen:      len(s.queue),
			QueueCap:      s.opts.QueueCap,
			Accepted:      s.ctr.accepted.Load(),
			Applied:       s.ctr.applied.Load(),
			RequestsSeen:  s.ctr.requestsSeen.Load(),
			WorkersSeen:   s.ctr.workersSeen.Load(),
			Served:        s.ctr.served.Load(),
			Matched:       s.ctr.matched.Load(),
			ShedRateLimit: s.ctr.shedRate.Load(),
			ShedQueueFull: s.ctr.shedQueue.Load(),
			Drained:       s.ctr.drained.Load(),
			DeadlineMiss:  s.ctr.deadlineMiss.Load(),
			BadEvents:     s.ctr.badEvents.Load(),
			EngineErrors:  s.ctr.engineErrors.Load(),
			WALErrors:     s.ctr.walErrors.Load(),
			Revenue:       rev,
		},
		Engine: s.met.Snapshot(),
	}
	// The recovering check is the happens-before edge: the WAL fields are
	// owned by the background re-drive until it stores recovering=false.
	if !s.recovering.Load() && s.wal != nil {
		snap.WAL = &WALStatus{
			Dir:              s.opts.WALDir,
			FsyncBatch:       s.opts.FsyncBatch,
			SnapshotEvery:    s.opts.SnapshotEvery,
			SnapshotsWritten: s.snapsWritten.Load(),
			Recovery:         s.rec,
		}
	}
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSONStatus(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Tracer == nil {
		http.Error(w, "tracing disabled (start the server with a tracer)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.opts.Tracer.WriteJSONL(w)
}

// HealthStatus is the /healthz and /healthz/live response body. The
// liveness/readiness split matters to fleet routers: a shard re-driving
// its WAL after a crash is live (the process answers) but not ready
// (it must not be routed traffic until the digest verify passes), and
// the old binary endpoint lied during exactly that window.
type HealthStatus struct {
	Status string `json:"status"` // "ok", "recovering", "draining", "failed" or "live"
	Error  string `json:"error,omitempty"`
}

// handleHealth is the readiness probe: 200 {"status":"ok"} only when
// the server admits events; 503 with the reason otherwise.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.recovering.Load():
		writeJSONStatus(w, http.StatusServiceUnavailable, HealthStatus{Status: "recovering"})
	case s.recFailed.Load():
		writeJSONStatus(w, http.StatusServiceUnavailable, HealthStatus{Status: "failed", Error: s.RecoveryErr().Error()})
	case s.draining.Load():
		writeJSONStatus(w, http.StatusServiceUnavailable, HealthStatus{Status: "draining"})
	default:
		writeJSONStatus(w, http.StatusOK, HealthStatus{Status: "ok"})
	}
}

// handleLiveness is the liveness probe: 200 as long as the process
// serves HTTP, recovering or draining included. A router only treats a
// shard as dead when this (or the TCP connect) fails.
func (s *Server) handleLiveness(w http.ResponseWriter, _ *http.Request) {
	writeJSONStatus(w, http.StatusOK, HealthStatus{Status: "live"})
}

// splitLines cuts a body into non-empty trimmed lines.
func splitLines(body []byte) [][]byte {
	var out [][]byte
	for _, line := range strings.Split(string(body), "\n") {
		t := strings.TrimSpace(line)
		if t != "" {
			out = append(out, []byte(t))
		}
	}
	return out
}

// Platforms returns the server's platform set, ascending.
func (s *Server) Platforms() []core.PlatformID {
	var pids []core.PlatformID
	if s.opts.Replay != nil {
		pids = s.opts.Replay.Platforms()
	} else if len(s.opts.Platforms) > 0 {
		pids = append(pids, s.opts.Platforms...)
	} else {
		pids = []core.PlatformID{1, 2}
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}
