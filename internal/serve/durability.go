package serve

import (
	"fmt"
	"math"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/wal"
)

// RecoveryInfo describes what a WAL-enabled server rebuilt on startup.
type RecoveryInfo struct {
	// Recovered is true when the log held events that were re-driven.
	Recovered bool `json:"recovered"`
	// Events is the number of log records re-driven through the engine.
	Events int64 `json:"events"`
	// Segments is the segment count of the recovered log.
	Segments int `json:"segments"`
	// SnapshotApplied is the log position of the checkpoint whose digest
	// was verified during the re-drive; 0 when no snapshot existed.
	SnapshotApplied int64 `json:"snapshot_applied,omitempty"`
	// VLast is the restored virtual-clock high-water mark (ms).
	VLast int64 `json:"vlast"`
	// DurationMs is the wall-clock cost of the re-drive.
	DurationMs float64 `json:"duration_ms"`
}

// WALStatus is the durability section of the /v1/metrics payload. The
// live append/fsync counters stream through the engine collector
// (wal_appends, wal_fsyncs, wal_fsync_ns, ...); this section carries
// the configuration and the startup recovery summary.
type WALStatus struct {
	Dir              string       `json:"dir"`
	FsyncBatch       int          `json:"fsync_batch"`
	SnapshotEvery    int          `json:"snapshot_every"`
	SnapshotsWritten int64        `json:"snapshots_written"`
	Recovery         RecoveryInfo `json:"recovery"`
}

// Recovery returns the startup recovery summary. The zero value means
// the server runs without a WAL, started on an empty log, or (with
// RecoverInBackground) is still re-driving — wait on RecoverDone for
// the settled value.
func (s *Server) Recovery() RecoveryInfo {
	if s.recovering.Load() {
		return RecoveryInfo{}
	}
	return s.rec
}

// recover opens (or creates) the write-ahead log, loads the latest
// valid snapshot manifest, and re-drives every logged event through
// the fresh engine — the deterministic reconstruction of the exact
// pre-crash state: the engine is a pure function of (seed, config,
// event sequence), and the log IS the event sequence. When the
// re-drive passes the snapshot's log position, the serving counters
// must reproduce the checkpoint digest bit for bit; a mismatch fails
// recovery loudly rather than serving forked state. Runs on the New
// goroutine before the sequencer starts, so no locking is needed.
func (s *Server) recover() error {
	t0 := time.Now()
	l, err := wal.Open(s.opts.WALDir, wal.Options{
		SegmentBytes: s.opts.SegmentBytes,
		FsyncBatch:   s.opts.FsyncBatch,
		Metrics:      s.met,
	})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	snap, err := wal.LatestSnapshot(s.opts.WALDir)
	if err != nil {
		l.Close()
		return fmt.Errorf("serve: %w", err)
	}
	if snap != nil {
		if err := s.checkSnapshotConfig(snap); err != nil {
			l.Close()
			return err
		}
	}

	var lastTime int64
	// A checkpoint at position 0 (a server closed before any traffic) is
	// trivially verified: its digest is the zero counters.
	verified := snap == nil || snap.Applied == 0
	err = l.Range(func(i int64, p []byte) error {
		if wal.IsTick(p) {
			// A logged virtual-time tick: re-advance the clock, which
			// re-flushes exactly the windows the live server flushed at this
			// time. Requests buffered after the last logged tick re-buffer —
			// the open-window re-buffer semantics documented on Close.
			t, derr := wal.DecodeTick(p)
			if derr != nil {
				return fmt.Errorf("record %d: %w", i, derr)
			}
			s.applied++
			if aerr := s.eng.AdvanceTime(t); aerr != nil {
				s.ctr.engineErrors.Add(1)
			}
			if int64(t) > lastTime {
				lastTime = int64(t)
			}
			if snap != nil && s.applied == snap.Applied {
				if derr := s.checkSnapshotDigest(snap); derr != nil {
					return derr
				}
				verified = true
			}
			return nil
		}
		ev, seq, derr := wal.DecodeEvent(p)
		if derr != nil {
			return fmt.Errorf("record %d: %w", i, derr)
		}
		if s.replayIdx != nil {
			// Replay-mode records were logged in recorded order; anything
			// else means the log belongs to a different stream.
			if seq != int64(s.cursor) || seq >= int64(len(s.replayEvs)) {
				return fmt.Errorf("record %d: replay seq %d does not continue cursor %d", i, seq, s.cursor)
			}
			s.delivered[seq].Store(true)
			s.cursor++
		} else {
			s.bumpLiveIDs(ev)
		}
		s.applied++
		s.ctr.accepted.Add(1)
		if ev.Kind == core.RequestArrival {
			s.ctr.requestsSeen.Add(1)
		} else {
			s.ctr.workersSeen.Add(1)
		}
		// An event the engine rejected live is rejected identically on
		// re-drive (the engine is deterministic): book it and keep going,
		// exactly as the sequencer did.
		_, _ = s.apply(ev)
		if int64(ev.Time) > lastTime {
			lastTime = int64(ev.Time)
		}
		if snap != nil && s.applied == snap.Applied {
			if err := s.checkSnapshotDigest(snap); err != nil {
				return err
			}
			verified = true
		}
		return nil
	})
	if err != nil {
		l.Close()
		return fmt.Errorf("serve: wal recovery: %w", err)
	}
	if snap != nil && !verified {
		l.Close()
		return fmt.Errorf("serve: wal recovery: log holds %d records but the snapshot covers %d — segments are missing", s.applied, snap.Applied)
	}

	// Resume the virtual clock past everything already stamped: the
	// snapshot's high-water mark, the last logged arrival, and any
	// explicit ResumeVTime. Without this, time.Since(started) would
	// restart the clock at zero and the first live event would trip the
	// engine's ErrTimeRegression against recovered state.
	base := s.vbase
	if snap != nil && snap.VLast > base {
		base = snap.VLast
	}
	if lastTime > base {
		base = lastTime
	}
	s.vbase, s.vlast = base, base

	s.wal = l
	if s.applied > 0 {
		s.met.WALRecovered(s.applied)
	}
	s.rec = RecoveryInfo{
		Recovered:  s.applied > 0,
		Events:     s.applied,
		Segments:   l.Stats().Segments,
		VLast:      base,
		DurationMs: float64(time.Since(t0)) / float64(time.Millisecond),
	}
	if snap != nil {
		s.rec.SnapshotApplied = snap.Applied
	}
	return nil
}

// checkSnapshotConfig refuses a log written under a different engine
// configuration: it would re-drive cleanly but produce silently
// different matching state.
func (s *Server) checkSnapshotConfig(snap *wal.Snapshot) error {
	switch {
	case snap.Algorithm != s.opts.Algorithm:
		return fmt.Errorf("serve: wal recovery: snapshot algorithm %q, server runs %q", snap.Algorithm, s.opts.Algorithm)
	case snap.Seed != s.opts.Seed:
		return fmt.Errorf("serve: wal recovery: snapshot seed %d, server seed %d", snap.Seed, s.opts.Seed)
	case snap.ServiceTicks != int64(s.opts.ServiceTicks):
		return fmt.Errorf("serve: wal recovery: snapshot service-ticks %d, server %d", snap.ServiceTicks, s.opts.ServiceTicks)
	case snap.DisableCoop != s.opts.DisableCoop:
		return fmt.Errorf("serve: wal recovery: snapshot coop-disabled %v, server %v", snap.DisableCoop, s.opts.DisableCoop)
	case snap.ReplayEvents != int64(len(s.replayEvs)):
		return fmt.Errorf("serve: wal recovery: snapshot recorded stream of %d events, server replays %d", snap.ReplayEvents, len(s.replayEvs))
	case snap.Window != int64(s.opts.Window):
		return fmt.Errorf("serve: wal recovery: snapshot window %d, server %d", snap.Window, s.opts.Window)
	case snap.BatchDeadline != int64(s.opts.BatchDeadline):
		return fmt.Errorf("serve: wal recovery: snapshot batch-deadline %d, server %d", snap.BatchDeadline, s.opts.BatchDeadline)
	case snap.Shards != snapShards(s.opts.Shards):
		return fmt.Errorf("serve: wal recovery: snapshot shards %d, server %d", snap.Shards, snapShards(s.opts.Shards))
	case snap.Shards > 1 && snap.ShardReachBits != math.Float64bits(s.opts.ShardReach):
		return fmt.Errorf("serve: wal recovery: snapshot shard reach %v, server %v",
			math.Float64frombits(snap.ShardReachBits), s.opts.ShardReach)
	}
	return nil
}

// snapShards normalizes the shard count for the config fingerprint:
// 0 and 1 are both the unsharded engine, and pre-sharding snapshots
// (no field at all) must keep verifying against either.
func snapShards(n int) int64 {
	if n <= 1 {
		return 0
	}
	return int64(n)
}

// checkSnapshotDigest verifies that re-driving the log prefix
// reproduced the checkpoint's decision counters bit for bit.
func (s *Server) checkSnapshotDigest(snap *wal.Snapshot) error {
	s.ctr.revenueMu.Lock()
	rev := s.ctr.revenue
	s.ctr.revenueMu.Unlock()
	served, matched := s.ctr.served.Load(), s.ctr.matched.Load()
	if served != snap.Served || matched != snap.Matched || math.Float64bits(rev) != snap.RevenueBits {
		return fmt.Errorf("snapshot digest mismatch at record %d: re-drive served=%d matched=%d revenue=%x, checkpoint served=%d matched=%d revenue=%x",
			snap.Applied, served, matched, math.Float64bits(rev), snap.Served, snap.Matched, snap.RevenueBits)
	}
	return nil
}

// bumpLiveIDs keeps the live-mode ID allocators above every recovered
// server-assigned ID so post-restart traffic can never collide.
func (s *Server) bumpLiveIDs(ev core.Event) {
	switch ev.Kind {
	case core.WorkerArrival:
		if id := ev.Worker.ID; id >= s.nextWorkerID.Load() {
			s.nextWorkerID.Store(id)
		}
	case core.RequestArrival:
		if id := ev.Request.ID; id >= s.nextReqID.Load() {
			s.nextReqID.Store(id)
		}
	}
}

// logEvent appends one event to the WAL — strictly before the engine
// sees it (write-ahead): an event that is not durable by the batch
// policy must not mutate matching state, or a crash would recover to a
// state the log cannot reproduce. The encode buffer is reused, so the
// zero-durability path aside, the sequencer stays allocation-free in
// steady state. Sequencer goroutine only.
func (s *Server) logEvent(ev core.Event, seq int) error {
	buf, err := wal.AppendEvent(s.walBuf[:0], ev, int64(seq))
	if err != nil {
		return err
	}
	s.walBuf = buf
	if err := s.wal.Append(buf); err != nil {
		return err
	}
	s.applied++
	return nil
}

// logTick appends a virtual-time tick record — write-ahead of the
// window flush it is about to trigger, same contract as logEvent.
// Sequencer goroutine only.
func (s *Server) logTick(t core.Time) error {
	s.walBuf = wal.AppendTick(s.walBuf[:0], t)
	if err := s.wal.Append(s.walBuf); err != nil {
		return err
	}
	s.applied++
	return nil
}

// maybeSnapshot writes a checkpoint manifest every SnapshotEvery
// applied events. Sequencer goroutine only.
func (s *Server) maybeSnapshot() {
	if s.wal == nil || s.opts.SnapshotEvery <= 0 || s.applied%int64(s.opts.SnapshotEvery) != 0 {
		return
	}
	if err := s.writeSnapshot(); err != nil {
		s.ctr.walErrors.Add(1)
	}
}

// writeSnapshot fsyncs the log (a checkpoint must never cover records
// that are not yet durable) and persists the manifest.
func (s *Server) writeSnapshot() error {
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.ctr.revenueMu.Lock()
	rev := s.ctr.revenue
	s.ctr.revenueMu.Unlock()
	sn := &wal.Snapshot{
		Version:       1,
		Applied:       s.applied,
		VLast:         s.vlast,
		Cursor:        int64(s.cursor),
		RecycleBase:   s.recycleBase,
		Algorithm:     s.opts.Algorithm,
		Seed:          s.opts.Seed,
		ServiceTicks:  int64(s.opts.ServiceTicks),
		DisableCoop:   s.opts.DisableCoop,
		ReplayEvents:  int64(len(s.replayEvs)),
		Window:        int64(s.opts.Window),
		BatchDeadline: int64(s.opts.BatchDeadline),
		Served:        s.ctr.served.Load(),
		Matched:       s.ctr.matched.Load(),
		RevenueBits:   math.Float64bits(rev),
	}
	if sn.Shards = snapShards(s.opts.Shards); sn.Shards > 1 {
		sn.ShardReachBits = math.Float64bits(s.opts.ShardReach)
	}
	if err := wal.WriteSnapshot(s.wal.Dir(), sn); err != nil {
		return err
	}
	s.met.WALSnapshot()
	s.snapsWritten.Add(1)
	return nil
}

// crashForTest simulates a SIGKILL for recovery tests: the sequencer
// is stopped and the log's file handles are dropped without the final
// snapshot, the buffered-tail flush, or the engine finish that a clean
// Close performs. Appends since the last fsync are lost, exactly as a
// hard kill would lose them.
func (s *Server) crashForTest() {
	s.BeginDrain()
	<-s.seqDone
	s.closeOnce.Do(func() {
		if s.wal != nil {
			_ = s.wal.Abandon()
		}
		s.closeErr = fmt.Errorf("serve: crashed (test hook)")
	})
}
