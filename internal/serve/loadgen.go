package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"crossmatch/internal/benchfmt"
	"crossmatch/internal/core"
	"crossmatch/internal/stats"
)

// LoadOptions configures one closed-loop load run against a serve
// endpoint.
type LoadOptions struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Stream is the workload to push, in arrival order.
	Stream *core.Stream
	// QPS paces dispatch at this many events per second (open-loop
	// arrival schedule); 0 pushes as fast as the connections allow.
	QPS float64
	// Conns is the number of concurrent HTTP connections (default
	// GOMAXPROCS, at least 2).
	Conns int
	// Batch groups up to this many consecutive same-kind events into one
	// NDJSON POST (default 1: one event per call).
	Batch int
	// Coalesce fills batches with same-kind events even across kind
	// interleavings: order within each kind is preserved, global
	// cross-kind order is not. On an alternating worker/request stream
	// the default (consecutive-only) batching averages ~2-3 events per
	// POST no matter the Batch setting; coalescing actually reaches
	// Batch and amortizes per-call HTTP cost. Sound against replay-mode
	// servers and idempotent ingest (decisions key on event identity,
	// not network arrival order) — the chaos drills already push over
	// racing connections for the same reason.
	Coalesce bool
	// Timeout bounds one HTTP call (default 30s).
	Timeout time.Duration
	// Retries is how many times a shed (429) line is retried, sleeping
	// the server's retry_after_ms hint between attempts. Replay runs
	// need retries: the sequencer cannot pass a gap left by a dropped
	// event. Default 0.
	Retries int
	// UnavailRetries is the separate budget for 503-class lines
	// (draining, recovering, unavailable). These are outages, not
	// overload: a shard re-driving its WAL after a crash answers
	// recovering for as long as the replay takes, so the budget that
	// makes sense is much larger than the shed one. Each retry honors
	// the server's retry_after_ms hint. Default 0 (drop on first 503).
	UnavailRetries int
	// Client overrides the HTTP client (tests inject the httptest one).
	Client *http.Client
}

// LoadReport is the client-side view of a load run: admission
// outcomes, decision totals and end-to-end call latency quantiles, in
// the shape EXPERIMENTS.md tables and benchfmt snapshots consume.
type LoadReport struct {
	Events      int     `json:"events"`
	Calls       int64   `json:"calls"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Unavailable int64   `json:"unavailable"` // 503-class responses: draining/recovering/owner dark
	Retried     int64   `json:"retried"`
	Dropped     int64   `json:"dropped"` // out of retries (shed or unavailable budget)
	Failed      int64   `json:"failed"`  // transport or non-retryable errors
	Resumed     int64   `json:"resumed"` // duplicate: already applied before a restart
	Requests    int64   `json:"requests"`
	Matched     int64   `json:"matched"`
	Revenue     float64 `json:"revenue"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	MeanMs      float64 `json:"mean_ms"`
	WallMs      float64 `json:"wall_ms"`
	QPS         float64 `json:"qps"` // achieved event throughput
	ShedRate    float64 `json:"shed_rate"`
	// Shards is the per-shard slice of a fleet run, keyed by the shard
	// names a router stamps on response lines. Nil against a direct
	// comserve (no Shard stamps).
	Shards map[string]*ShardLoad `json:"shards,omitempty"`
}

// ShardLoad is one shard's share of a fleet load run, as seen from the
// client: admission outcomes, decisions, and the latency of the calls
// whose lines that shard answered.
type ShardLoad struct {
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Unavailable int64   `json:"unavailable"`
	Resumed     int64   `json:"resumed"`
	Matched     int64   `json:"matched"`
	Revenue     float64 `json:"revenue"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MeanMs      float64 `json:"mean_ms"`

	lat *stats.Reservoir
}

// shard returns (creating on first sight) the per-shard bucket for a
// stamped response line; nil for unstamped lines. Callers hold mu.
func (r *LoadReport) shard(name string) *ShardLoad {
	if name == "" {
		return nil
	}
	if r.Shards == nil {
		r.Shards = make(map[string]*ShardLoad)
	}
	s := r.Shards[name]
	if s == nil {
		s = &ShardLoad{lat: stats.NewReservoir(1<<12, 1)}
		r.Shards[name] = s
	}
	return s
}

// Bench renders the report as a one-benchmark benchfmt document, so
// serving runs land in the same JSON shape as the offline benchmarks.
func (r *LoadReport) Bench(label string) *benchfmt.Report {
	b := benchfmt.Benchmark{
		Name: "ServeLoad",
		Runs: 1,
		Metrics: map[string]float64{
			"events":    float64(r.Events),
			"qps":       r.QPS,
			"p50-ms":    r.P50Ms,
			"p90-ms":    r.P90Ms,
			"p99-ms":    r.P99Ms,
			"max-ms":    r.MaxMs,
			"shed-rate": r.ShedRate,
			"matched":   float64(r.Matched),
			"revenue":   r.Revenue,
		},
	}
	return &benchfmt.Report{Label: label, Goos: runtime.GOOS, Goarch: runtime.GOARCH,
		Pkg: "crossmatch/internal/serve", CPU: fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
		Benchmarks: []benchfmt.Benchmark{b}}
}

// batchJob is one POST: consecutive same-kind events sharing an
// endpoint.
type batchJob struct {
	kind core.EventKind
	evs  []WireEvent
	due  time.Time // dispatch not before this instant (QPS pacing)
	// retryFor is the status that queued this job for retry (StatusShed
	// or a 503-class status); it selects which retry budget pays for the
	// first re-post.
	retryFor string
}

// retryable reports whether a response status warrants a re-post, and
// which budget it draws from.
func retryable(status string) (shedClass bool, ok bool) {
	switch status {
	case StatusShed:
		return true, true
	case StatusDraining, StatusRecovering, StatusUnavailable:
		return false, true
	}
	return false, false
}

// RunLoad pushes the workload at the configured rate and collects the
// client-side report. Events are grouped into batches of consecutive
// same-kind arrivals (order within a batch is preserved by the server),
// paced on the QPS schedule, and posted over Conns concurrent
// connections. Shed lines are retried per Retries, sleeping the
// server's retry_after_ms hint.
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	if opts.Stream == nil || opts.Stream.Len() == 0 {
		return nil, fmt.Errorf("serve: load needs a non-empty stream")
	}
	if opts.Conns <= 0 {
		opts.Conns = runtime.GOMAXPROCS(0)
		if opts.Conns < 2 {
			opts.Conns = 2
		}
	}
	if opts.Batch <= 0 {
		opts.Batch = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: opts.Timeout}
	}
	base := strings.TrimRight(opts.URL, "/")

	// Build the batch schedule: consecutive same-kind events share a
	// POST, each batch due at the arrival slot of its first event.
	// Coalesce mode instead buffers per kind and flushes full batches,
	// due at the slot of the earliest buffered event.
	events := opts.Stream.Events()
	start := time.Now()
	dueAt := func(i int) time.Time {
		if opts.QPS > 0 {
			return start.Add(time.Duration(float64(i) / opts.QPS * float64(time.Second)))
		}
		return start
	}
	var jobs []batchJob
	if opts.Coalesce {
		type pending struct {
			evs      []WireEvent
			firstIdx int
		}
		buf := map[core.EventKind]*pending{}
		flush := func(kind core.EventKind) {
			p := buf[kind]
			if p == nil || len(p.evs) == 0 {
				return
			}
			jobs = append(jobs, batchJob{kind: kind, evs: p.evs, due: dueAt(p.firstIdx)})
			buf[kind] = nil
		}
		for i, ev := range events {
			p := buf[ev.Kind]
			if p == nil {
				p = &pending{firstIdx: i}
				buf[ev.Kind] = p
			}
			p.evs = append(p.evs, EventToWire(ev))
			if len(p.evs) >= opts.Batch {
				flush(ev.Kind)
			}
		}
		flush(core.WorkerArrival)
		flush(core.RequestArrival)
	} else {
		for i := 0; i < len(events); {
			kind := events[i].Kind
			j := i
			for j < len(events) && events[j].Kind == kind && j-i < opts.Batch {
				j++
			}
			job := batchJob{kind: kind, due: dueAt(i)}
			for _, ev := range events[i:j] {
				job.evs = append(job.evs, EventToWire(ev))
			}
			jobs = append(jobs, job)
			i = j
		}
	}

	var (
		mu      sync.Mutex
		rep     LoadReport
		lat     = stats.NewReservoir(1<<14, 1)
		loadErr error
	)
	rep.Events = opts.Stream.Len()
	jobCh := make(chan batchJob)
	var wg sync.WaitGroup
	for c := 0; c < opts.Conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				if wait := time.Until(job.due); wait > 0 {
					select {
					case <-time.After(wait):
					case <-ctx.Done():
						return
					}
				}
				outs, rtt, err := postBatch(ctx, client, base, job)
				mu.Lock()
				rep.Calls++
				if err != nil {
					rep.Failed += int64(len(job.evs))
					if loadErr == nil {
						loadErr = err
					}
					mu.Unlock()
					continue
				}
				lat.Observe(rtt)
				observeShardRTT(&rep, outs, rtt)
				retry := accountLines(&rep, job, outs)
				mu.Unlock()
				// Retry shed/unavailable lines with fresh single-line batches.
				for _, rj := range retry {
					retryLine(ctx, client, base, rj, opts, &mu, &rep, lat)
				}
			}
		}()
	}
	for _, job := range jobs {
		select {
		case jobCh <- job:
		case <-ctx.Done():
			close(jobCh)
			wg.Wait()
			return nil, ctx.Err()
		}
	}
	close(jobCh)
	wg.Wait()

	wall := time.Since(start)
	rep.WallMs = float64(wall.Milliseconds())
	if wall > 0 {
		rep.QPS = float64(rep.Events) / wall.Seconds()
	}
	if n := rep.OK + rep.Shed; n > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(n)
	}
	qs := lat.Quantiles([]float64{0.5, 0.9, 0.99})
	rep.P50Ms = float64(qs[0]) / float64(time.Millisecond)
	rep.P90Ms = float64(qs[1]) / float64(time.Millisecond)
	rep.P99Ms = float64(qs[2]) / float64(time.Millisecond)
	rep.MaxMs = float64(lat.Max()) / float64(time.Millisecond)
	rep.MeanMs = float64(lat.Mean()) / float64(time.Millisecond)
	for _, sl := range rep.Shards {
		sq := sl.lat.Quantiles([]float64{0.5, 0.99})
		sl.P50Ms = float64(sq[0]) / float64(time.Millisecond)
		sl.P99Ms = float64(sq[1]) / float64(time.Millisecond)
		sl.MeanMs = float64(sl.lat.Mean()) / float64(time.Millisecond)
	}
	return &rep, loadErr
}

// accountLines books a batch's response lines and returns the
// retryable events (shed or 503-class) as fresh single-line jobs.
// Callers hold mu.
func accountLines(rep *LoadReport, job batchJob, outs []WireDecision) []batchJob {
	var retry []batchJob
	for i, out := range outs {
		sl := rep.shard(out.Shard)
		switch out.Status {
		case StatusOK:
			rep.OK++
			if sl != nil {
				sl.OK++
			}
			if out.Kind == "request" {
				rep.Requests++
				if out.Served {
					rep.Matched++
					rep.Revenue += out.Revenue
					if sl != nil {
						sl.Matched++
						sl.Revenue += out.Revenue
					}
				}
			}
		case StatusShed:
			rep.Shed++
			if sl != nil {
				sl.Shed++
			}
			if i < len(job.evs) {
				retry = append(retry, batchJob{kind: job.kind,
					evs:      []WireEvent{job.evs[i]},
					due:      retryDue(out.Status, out.RetryAfterMs),
					retryFor: out.Status})
			}
		case StatusDraining, StatusRecovering, StatusUnavailable:
			rep.Unavailable++
			if sl != nil {
				sl.Unavailable++
			}
			if i < len(job.evs) {
				retry = append(retry, batchJob{kind: job.kind,
					evs:      []WireEvent{job.evs[i]},
					due:      retryDue(out.Status, out.RetryAfterMs),
					retryFor: out.Status})
			}
		case StatusDuplicate:
			// The event was already applied — normal when re-pushing a
			// stream after a server restart recovered it from the WAL.
			// Counting it failed would make every resumed run look broken.
			rep.Resumed++
			if sl != nil {
				sl.Resumed++
			}
		default:
			rep.Failed++
		}
	}
	// Short responses (shouldn't happen) count as failures.
	if d := len(job.evs) - len(outs); d > 0 {
		rep.Failed += int64(d)
	}
	return retry
}

// retryDue computes the next attempt's dispatch instant from the
// server's hint. Unavailable-class responses without a hint still back
// off a little: hammering a dark shard's router refusal path at full
// speed helps nobody.
func retryDue(status string, hintMs int64) time.Time {
	wait := time.Duration(hintMs) * time.Millisecond
	if wait == 0 && status != StatusShed {
		wait = 25 * time.Millisecond
	}
	return time.Now().Add(wait)
}

// observeShardRTT attributes a call's round trip to a shard when every
// line of the response was answered by that one shard (the common case
// with per-line batches). Callers hold mu.
func observeShardRTT(rep *LoadReport, outs []WireDecision, rtt time.Duration) {
	if len(outs) == 0 || outs[0].Shard == "" {
		return
	}
	name := outs[0].Shard
	for _, out := range outs[1:] {
		if out.Shard != name {
			return
		}
	}
	rep.shard(name).lat.Observe(rtt)
}

// retryLine re-posts one retryable event until it settles or its class
// budget (shed vs unavailable) runs out. A retry that answers the
// other class switches budgets: an event shed during recovery may next
// see recovering, and vice versa.
func retryLine(ctx context.Context, client *http.Client, base string, job batchJob, opts LoadOptions, mu *sync.Mutex, rep *LoadReport, lat *stats.Reservoir) {
	shedLeft, unavailLeft := opts.Retries, opts.UnavailRetries
	shedClass := job.retryFor == StatusShed
	for {
		if shedClass {
			if shedLeft <= 0 {
				mu.Lock()
				rep.Dropped++
				mu.Unlock()
				return
			}
			shedLeft--
		} else {
			if unavailLeft <= 0 {
				mu.Lock()
				rep.Dropped++
				mu.Unlock()
				return
			}
			unavailLeft--
		}
		if wait := time.Until(job.due); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return
			}
		}
		outs, rtt, err := postBatch(ctx, client, base, job)
		mu.Lock()
		rep.Calls++
		rep.Retried++
		if err != nil {
			rep.Failed++
			mu.Unlock()
			return
		}
		lat.Observe(rtt)
		observeShardRTT(rep, outs, rtt)
		if len(outs) == 0 {
			rep.Failed++
			mu.Unlock()
			return
		}
		out := outs[0]
		isShed, again := retryable(out.Status)
		if !again {
			accountLines(rep, job, outs)
			mu.Unlock()
			return
		}
		// Book the retryable response but keep the job here — the budget
		// loop owns it now.
		if isShed {
			rep.Shed++
		} else {
			rep.Unavailable++
		}
		if sl := rep.shard(out.Shard); sl != nil {
			if isShed {
				sl.Shed++
			} else {
				sl.Unavailable++
			}
		}
		mu.Unlock()
		shedClass = isShed
		job.due = retryDue(out.Status, out.RetryAfterMs)
	}
}

// postBatch POSTs one NDJSON batch and parses the per-line decisions.
// NDJSON content type forces batch semantics (HTTP 200 + per-line
// statuses) even for a single event.
func postBatch(ctx context.Context, client *http.Client, base string, job batchJob) ([]WireDecision, time.Duration, error) {
	var buf bytes.Buffer
	lw := newLineWriter(&buf)
	for i := range job.evs {
		lw.writeLine(&job.evs[i])
	}
	lw.flush()
	url := base + "/v1/requests"
	if job.kind == core.WorkerArrival {
		url = base + "/v1/workers"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, &buf)
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	t0 := time.Now()
	resp, err := client.Do(req)
	rtt := time.Since(t0)
	if err != nil {
		return nil, rtt, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, rtt, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, rtt, fmt.Errorf("serve: POST %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var outs []WireDecision
	for _, line := range splitLines(body) {
		var d WireDecision
		if err := unmarshalStrict(line, &d); err != nil {
			return nil, rtt, fmt.Errorf("serve: bad response line %q: %w", line, err)
		}
		outs = append(outs, d)
	}
	return outs, rtt, nil
}
