package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"crossmatch/internal/benchfmt"
	"crossmatch/internal/core"
	"crossmatch/internal/stats"
)

// LoadOptions configures one closed-loop load run against a serve
// endpoint.
type LoadOptions struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Stream is the workload to push, in arrival order.
	Stream *core.Stream
	// QPS paces dispatch at this many events per second (open-loop
	// arrival schedule); 0 pushes as fast as the connections allow.
	QPS float64
	// Conns is the number of concurrent HTTP connections (default
	// GOMAXPROCS, at least 2).
	Conns int
	// Batch groups up to this many consecutive same-kind events into one
	// NDJSON POST (default 1: one event per call).
	Batch int
	// Timeout bounds one HTTP call (default 30s).
	Timeout time.Duration
	// Retries is how many times a shed (429) line is retried, sleeping
	// the server's retry_after_ms hint between attempts. Replay runs
	// need retries: the sequencer cannot pass a gap left by a dropped
	// event. Default 0.
	Retries int
	// Client overrides the HTTP client (tests inject the httptest one).
	Client *http.Client
}

// LoadReport is the client-side view of a load run: admission
// outcomes, decision totals and end-to-end call latency quantiles, in
// the shape EXPERIMENTS.md tables and benchfmt snapshots consume.
type LoadReport struct {
	Events   int     `json:"events"`
	Calls    int64   `json:"calls"`
	OK       int64   `json:"ok"`
	Shed     int64   `json:"shed"`
	Retried  int64   `json:"retried"`
	Dropped  int64   `json:"dropped"` // shed and out of retries
	Failed   int64   `json:"failed"`  // transport or non-shed errors
	Resumed  int64   `json:"resumed"` // duplicate: already applied before a restart
	Requests int64   `json:"requests"`
	Matched  int64   `json:"matched"`
	Revenue  float64 `json:"revenue"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	MeanMs   float64 `json:"mean_ms"`
	WallMs   float64 `json:"wall_ms"`
	QPS      float64 `json:"qps"` // achieved event throughput
	ShedRate float64 `json:"shed_rate"`
}

// Bench renders the report as a one-benchmark benchfmt document, so
// serving runs land in the same JSON shape as the offline benchmarks.
func (r *LoadReport) Bench(label string) *benchfmt.Report {
	b := benchfmt.Benchmark{
		Name: "ServeLoad",
		Runs: 1,
		Metrics: map[string]float64{
			"events":    float64(r.Events),
			"qps":       r.QPS,
			"p50-ms":    r.P50Ms,
			"p90-ms":    r.P90Ms,
			"p99-ms":    r.P99Ms,
			"max-ms":    r.MaxMs,
			"shed-rate": r.ShedRate,
			"matched":   float64(r.Matched),
			"revenue":   r.Revenue,
		},
	}
	return &benchfmt.Report{Label: label, Goos: runtime.GOOS, Goarch: runtime.GOARCH,
		Pkg: "crossmatch/internal/serve", CPU: fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
		Benchmarks: []benchfmt.Benchmark{b}}
}

// batchJob is one POST: consecutive same-kind events sharing an
// endpoint.
type batchJob struct {
	kind core.EventKind
	evs  []WireEvent
	due  time.Time // dispatch not before this instant (QPS pacing)
}

// RunLoad pushes the workload at the configured rate and collects the
// client-side report. Events are grouped into batches of consecutive
// same-kind arrivals (order within a batch is preserved by the server),
// paced on the QPS schedule, and posted over Conns concurrent
// connections. Shed lines are retried per Retries, sleeping the
// server's retry_after_ms hint.
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	if opts.Stream == nil || opts.Stream.Len() == 0 {
		return nil, fmt.Errorf("serve: load needs a non-empty stream")
	}
	if opts.Conns <= 0 {
		opts.Conns = runtime.GOMAXPROCS(0)
		if opts.Conns < 2 {
			opts.Conns = 2
		}
	}
	if opts.Batch <= 0 {
		opts.Batch = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: opts.Timeout}
	}
	base := strings.TrimRight(opts.URL, "/")

	// Build the batch schedule: consecutive same-kind events share a
	// POST, each batch due at the arrival slot of its first event.
	events := opts.Stream.Events()
	start := time.Now()
	var jobs []batchJob
	for i := 0; i < len(events); {
		kind := events[i].Kind
		j := i
		for j < len(events) && events[j].Kind == kind && j-i < opts.Batch {
			j++
		}
		job := batchJob{kind: kind, due: start}
		if opts.QPS > 0 {
			job.due = start.Add(time.Duration(float64(i) / opts.QPS * float64(time.Second)))
		}
		for _, ev := range events[i:j] {
			job.evs = append(job.evs, EventToWire(ev))
		}
		jobs = append(jobs, job)
		i = j
	}

	var (
		mu      sync.Mutex
		rep     LoadReport
		lat     = stats.NewReservoir(1<<14, 1)
		loadErr error
	)
	rep.Events = opts.Stream.Len()
	jobCh := make(chan batchJob)
	var wg sync.WaitGroup
	for c := 0; c < opts.Conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				if wait := time.Until(job.due); wait > 0 {
					select {
					case <-time.After(wait):
					case <-ctx.Done():
						return
					}
				}
				outs, rtt, err := postBatch(ctx, client, base, job)
				mu.Lock()
				rep.Calls++
				if err != nil {
					rep.Failed += int64(len(job.evs))
					if loadErr == nil {
						loadErr = err
					}
					mu.Unlock()
					continue
				}
				lat.Observe(rtt)
				retry := accountLines(&rep, job, outs)
				mu.Unlock()
				// Retry shed lines with fresh single-line batches.
				for _, rj := range retry {
					retryLine(ctx, client, base, rj, opts.Retries, &mu, &rep, lat)
				}
			}
		}()
	}
	for _, job := range jobs {
		select {
		case jobCh <- job:
		case <-ctx.Done():
			close(jobCh)
			wg.Wait()
			return nil, ctx.Err()
		}
	}
	close(jobCh)
	wg.Wait()

	wall := time.Since(start)
	rep.WallMs = float64(wall.Milliseconds())
	if wall > 0 {
		rep.QPS = float64(rep.Events) / wall.Seconds()
	}
	if n := rep.OK + rep.Shed; n > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(n)
	}
	qs := lat.Quantiles([]float64{0.5, 0.9, 0.99})
	rep.P50Ms = float64(qs[0]) / float64(time.Millisecond)
	rep.P90Ms = float64(qs[1]) / float64(time.Millisecond)
	rep.P99Ms = float64(qs[2]) / float64(time.Millisecond)
	rep.MaxMs = float64(lat.Max()) / float64(time.Millisecond)
	rep.MeanMs = float64(lat.Mean()) / float64(time.Millisecond)
	return &rep, loadErr
}

// accountLines books a batch's response lines and returns the shed
// events to retry. Callers hold mu.
func accountLines(rep *LoadReport, job batchJob, outs []WireDecision) []batchJob {
	var retry []batchJob
	for i, out := range outs {
		switch out.Status {
		case StatusOK:
			rep.OK++
			if out.Kind == "request" {
				rep.Requests++
				if out.Served {
					rep.Matched++
					rep.Revenue += out.Revenue
				}
			}
		case StatusShed:
			rep.Shed++
			if i < len(job.evs) {
				retry = append(retry, batchJob{kind: job.kind,
					evs: []WireEvent{job.evs[i]},
					due: time.Now().Add(time.Duration(out.RetryAfterMs) * time.Millisecond)})
			}
		case StatusDuplicate:
			// The event was already applied — normal when re-pushing a
			// stream after a server restart recovered it from the WAL.
			// Counting it failed would make every resumed run look broken.
			rep.Resumed++
		default:
			rep.Failed++
		}
	}
	// Short responses (shouldn't happen) count as failures.
	if d := len(job.evs) - len(outs); d > 0 {
		rep.Failed += int64(d)
	}
	return retry
}

// retryLine re-posts one shed event up to retries times.
func retryLine(ctx context.Context, client *http.Client, base string, job batchJob, retries int, mu *sync.Mutex, rep *LoadReport, lat *stats.Reservoir) {
	for attempt := 0; ; attempt++ {
		if attempt >= retries {
			mu.Lock()
			rep.Dropped++
			mu.Unlock()
			return
		}
		if wait := time.Until(job.due); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return
			}
		}
		outs, rtt, err := postBatch(ctx, client, base, job)
		mu.Lock()
		rep.Calls++
		rep.Retried++
		if err != nil {
			rep.Failed++
			mu.Unlock()
			return
		}
		lat.Observe(rtt)
		if len(outs) == 0 {
			rep.Failed++
			mu.Unlock()
			return
		}
		out := outs[0]
		if out.Status != StatusShed {
			done := accountLines(rep, job, outs)
			mu.Unlock()
			_ = done
			return
		}
		mu.Unlock()
		job.due = time.Now().Add(time.Duration(out.RetryAfterMs) * time.Millisecond)
	}
}

// postBatch POSTs one NDJSON batch and parses the per-line decisions.
// NDJSON content type forces batch semantics (HTTP 200 + per-line
// statuses) even for a single event.
func postBatch(ctx context.Context, client *http.Client, base string, job batchJob) ([]WireDecision, time.Duration, error) {
	var buf bytes.Buffer
	lw := newLineWriter(&buf)
	for i := range job.evs {
		lw.writeLine(&job.evs[i])
	}
	lw.flush()
	url := base + "/v1/requests"
	if job.kind == core.WorkerArrival {
		url = base + "/v1/workers"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, &buf)
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	t0 := time.Now()
	resp, err := client.Do(req)
	rtt := time.Since(t0)
	if err != nil {
		return nil, rtt, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, rtt, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, rtt, fmt.Errorf("serve: POST %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var outs []WireDecision
	for _, line := range splitLines(body) {
		var d WireDecision
		if err := unmarshalStrict(line, &d); err != nil {
			return nil, rtt, fmt.Errorf("serve: bad response line %q: %w", line, err)
		}
		outs = append(outs, d)
	}
	return outs, rtt, nil
}
