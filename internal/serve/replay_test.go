package serve

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/platform"
)

// assertSameResult compares a served result against the offline one bit
// for bit: revenue, counters, and every assignment in insertion order.
func assertSameResult(t *testing.T, want, got *platform.Result) {
	t.Helper()
	if w, g := want.TotalRevenue(), got.TotalRevenue(); w != g {
		t.Fatalf("revenue: want %v, got %v", w, g)
	}
	if w, g := want.TotalServed(), got.TotalServed(); w != g {
		t.Fatalf("served: want %d, got %d", w, g)
	}
	if w, g := want.Recycled, got.Recycled; w != g {
		t.Fatalf("recycled: want %d, got %d", w, g)
	}
	if len(want.Platforms) != len(got.Platforms) {
		t.Fatalf("platforms: want %d, got %d", len(want.Platforms), len(got.Platforms))
	}
	for pid, wp := range want.Platforms {
		gp := got.Platforms[pid]
		if gp == nil {
			t.Fatalf("platform %d missing", pid)
		}
		if wp.Stats != gp.Stats {
			t.Fatalf("platform %d stats: want %+v, got %+v", pid, wp.Stats, gp.Stats)
		}
		wa, ga := wp.Matching.Assignments(), gp.Matching.Assignments()
		if len(wa) != len(ga) {
			t.Fatalf("platform %d assignments: want %d, got %d", pid, len(wa), len(ga))
		}
		for i := range wa {
			if wa[i].Request.ID != ga[i].Request.ID || wa[i].Worker.ID != ga[i].Worker.ID ||
				wa[i].Payment != ga[i].Payment || wa[i].Outer != ga[i].Outer {
				t.Fatalf("platform %d assignment %d: want r%d<-w%d pay %v outer %v, got r%d<-w%d pay %v outer %v",
					pid, i, wa[i].Request.ID, wa[i].Worker.ID, wa[i].Payment, wa[i].Outer,
					ga[i].Request.ID, ga[i].Worker.ID, ga[i].Payment, ga[i].Outer)
			}
		}
	}
}

// TestReplayMatchesOffline is the PR's headline determinism criterion:
// pushing a recorded stream over HTTP — batched, concurrent, retried —
// reproduces the offline SimulateContext/Run result bit for bit, and
// the client-side report agrees on matched count and revenue.
func TestReplayMatchesOffline(t *testing.T) {
	for _, tc := range []struct {
		name         string
		alg          string
		serviceTicks core.Time
	}{
		{"DemCOM", platform.AlgDemCOM, 0},
		{"RamCOM", platform.AlgRamCOM, 0},
		{"TOTA-recycled", platform.AlgTOTA, 3},
		{"DemCOM-recycled", platform.AlgDemCOM, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stream := testStream(t, 200, 150, 42)
			factory, err := platform.FactoryFor(tc.alg, stream.MaxValue())
			if err != nil {
				t.Fatalf("FactoryFor: %v", err)
			}
			cfg := platform.Config{Seed: 42, ServiceTicks: tc.serviceTicks}
			want, err := platform.Run(stream, factory, cfg)
			if err != nil {
				t.Fatalf("offline Run: %v", err)
			}

			srv, ts := startServer(t, Options{
				Algorithm:    tc.alg,
				Seed:         42,
				Replay:       stream,
				ServiceTicks: tc.serviceTicks,
				QueueCap:     stream.Len() + 1,
			})
			rep, err := RunLoad(context.Background(), LoadOptions{
				URL:     ts.URL,
				Stream:  stream,
				Conns:   4,
				Batch:   8,
				Retries: 5,
				Client:  ts.Client(),
			})
			if err != nil {
				t.Fatalf("RunLoad: %v", err)
			}
			if rep.Failed != 0 || rep.Dropped != 0 {
				t.Fatalf("replay must deliver everything: %+v", rep)
			}
			got, err := srv.Close()
			if err != nil {
				t.Fatalf("Close: %v", err)
			}
			assertSameResult(t, want, got)
			if rep.Matched != int64(want.TotalServed()) {
				t.Fatalf("client matched %d, offline served %d", rep.Matched, want.TotalServed())
			}
			// The client sums per-line revenues in completion order, so the
			// float total can differ from the offline sum in the last ulps;
			// the bit-exact comparison is assertSameResult on the server's
			// Result above.
			if diff := rep.Revenue - want.TotalRevenue(); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("client revenue %v, offline %v", rep.Revenue, want.TotalRevenue())
			}
		})
	}
}

// TestShardedReplayParity is the serving half of the geo-sharded
// acceptance criterion: a -shards replay server derives the reach from
// the recorded stream, serves every decision off the sharded engine,
// and its final Result is bit-identical to the offline sharded Run.
func TestShardedReplayParity(t *testing.T) {
	stream := testStream(t, 300, 120, 9)
	for _, alg := range []string{platform.AlgDemCOM, platform.AlgRamCOM} {
		t.Run(alg, func(t *testing.T) {
			factory, err := platform.FactoryFor(alg, stream.MaxValue())
			if err != nil {
				t.Fatalf("FactoryFor: %v", err)
			}
			want, err := platform.Run(stream, factory, platform.Config{Seed: 9, Shards: 3})
			if err != nil {
				t.Fatalf("offline sharded Run: %v", err)
			}

			srv, ts := startServer(t, Options{
				Algorithm: alg,
				Seed:      9,
				Replay:    stream,
				Shards:    3,
				QueueCap:  stream.Len() + 1,
			})
			rep, err := RunLoad(context.Background(), LoadOptions{
				URL:     ts.URL,
				Stream:  stream,
				Conns:   4,
				Batch:   8,
				Retries: 5,
				Client:  ts.Client(),
			})
			if err != nil {
				t.Fatalf("RunLoad: %v", err)
			}
			if rep.Failed != 0 || rep.Dropped != 0 {
				t.Fatalf("replay must deliver everything: %+v", rep)
			}
			snap := srv.Snapshot()
			if len(snap.Engine.Shards) != 3 {
				t.Fatalf("metrics shards section has %d entries, want 3", len(snap.Engine.Shards))
			}
			got, err := srv.Close()
			if err != nil {
				t.Fatalf("Close: %v", err)
			}
			assertSameResult(t, want, got)
		})
	}
}

// TestReplayShuffledDelivery hammers the re-sequencer: every recorded
// event is posted as its own concurrent request in a shuffled order,
// and the result must still be bit-identical — HTTP delivery order is
// irrelevant in replay mode.
func TestReplayShuffledDelivery(t *testing.T) {
	stream := testStream(t, 60, 40, 7)
	factory, err := platform.FactoryFor(platform.AlgDemCOM, stream.MaxValue())
	if err != nil {
		t.Fatalf("FactoryFor: %v", err)
	}
	want, err := platform.Run(stream, factory, platform.Config{Seed: 7})
	if err != nil {
		t.Fatalf("offline Run: %v", err)
	}

	srv, err := New(Options{Algorithm: platform.AlgDemCOM, Seed: 7, Replay: stream,
		QueueCap: stream.Len() + 1, Deadline: time.Minute})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	events := stream.Events()
	order := rand.New(rand.NewSource(1)).Perm(len(events))
	var wg sync.WaitGroup
	errs := make(chan string, len(events))
	for _, idx := range order {
		wg.Add(1)
		go func(ev core.Event) {
			defer wg.Done()
			line, _ := json.Marshal(WireEvent{ID: eventID(ev)})
			url := ts.URL + "/v1/requests"
			if ev.Kind == core.WorkerArrival {
				url = ts.URL + "/v1/workers"
			}
			resp, err := ts.Client().Post(url, "application/json", strings.NewReader(string(line)))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			var d WireDecision
			if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
				errs <- err.Error()
				return
			}
			if d.Status != StatusOK {
				errs <- "event " + d.Kind + " not ok: " + d.Status + " " + d.Error
			}
		}(events[idx])
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("delivery failed: %s", e)
	}

	got, err := srv.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	assertSameResult(t, want, got)
}
