package serve

import (
	"context"
	"testing"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/platform"
)

// TestOverloadSheds is the PR's overload criterion: a load far beyond
// the server's capacity must shed with 429s while the served requests'
// client-side p99 stays bounded (the queue is short, so accepted work
// never waits behind an unbounded backlog).
func TestOverloadSheds(t *testing.T) {
	stream := testStream(t, 200, 200, 11)
	// ProcessDelay 2ms caps the engine at ~500 events/s; the bucket and
	// the 16-slot queue shed the rest of the unpaced 400-event blast.
	_, ts := startServer(t, Options{
		Algorithm:    platform.AlgDemCOM,
		Seed:         11,
		QueueCap:     16,
		Rate:         300,
		Burst:        16,
		ProcessDelay: 2 * time.Millisecond,
	})

	rep, err := RunLoad(context.Background(), LoadOptions{
		URL:    ts.URL,
		Stream: stream,
		QPS:    0, // unpaced: as fast as the connections can push
		Conns:  8,
		Batch:  1,
		Client: ts.Client(),
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Shed == 0 {
		t.Fatalf("overload run must shed: %+v", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("overload run must still serve some events: %+v", rep)
	}
	// With Retries=0 every event terminates exactly once: served,
	// dropped after its shed, or failed.
	if rep.OK+rep.Dropped+rep.Failed != int64(rep.Events) {
		t.Fatalf("accounting: ok %d + dropped %d + failed %d != events %d",
			rep.OK, rep.Dropped, rep.Failed, rep.Events)
	}
	if rep.Failed != 0 {
		t.Fatalf("overload must shed, not fail: %+v", rep)
	}
	// Bounded-latency claim: shed responses return fast and accepted
	// work waits behind at most QueueCap*ProcessDelay of backlog. The
	// bound here is deliberately loose for CI noise.
	if rep.P99Ms > 2000 {
		t.Fatalf("p99 %vms not bounded under overload", rep.P99Ms)
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Fatalf("shed rate must be in (0,1): %v", rep.ShedRate)
	}
}

// TestLoadRetriesRecoverSheds verifies the retry path: with retries and
// a rate limit that refills quickly, every shed event is eventually
// delivered.
func TestLoadRetriesRecoverSheds(t *testing.T) {
	stream := testStream(t, 40, 40, 3)
	_, ts := startServer(t, Options{
		Algorithm: platform.AlgTOTA,
		Seed:      3,
		Rate:      200,
		Burst:     4,
	})
	rep, err := RunLoad(context.Background(), LoadOptions{
		URL:     ts.URL,
		Stream:  stream,
		Conns:   4,
		Batch:   4,
		Retries: 50,
		Client:  ts.Client(),
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Shed == 0 {
		t.Fatalf("burst 4 at 80 events should shed at least once: %+v", rep)
	}
	if rep.Dropped != 0 || rep.Failed != 0 {
		t.Fatalf("retries must recover every shed: %+v", rep)
	}
	if rep.OK != int64(rep.Events) {
		t.Fatalf("every event must land: ok %d of %d", rep.OK, rep.Events)
	}
}

// TestLoadReportBench checks the benchfmt bridge carries the headline
// metrics.
func TestLoadReportBench(t *testing.T) {
	rep := &LoadReport{Events: 10, Matched: 4, Revenue: 12.5, P99Ms: 3.25, ShedRate: 0.1, QPS: 500}
	doc := rep.Bench("PR5")
	if doc.Label != "PR5" || len(doc.Benchmarks) != 1 {
		t.Fatalf("bench doc: %+v", doc)
	}
	m := doc.Benchmarks[0].Metrics
	for _, k := range []string{"p50-ms", "p90-ms", "p99-ms", "shed-rate", "qps", "matched", "revenue", "events"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("metric %s missing: %+v", k, m)
		}
	}
	if m["p99-ms"] != 3.25 || m["matched"] != 4 {
		t.Fatalf("metric values: %+v", m)
	}
}

// TestLoadCoalesceFillsBatches verifies the coalescing scheduler:
// same-kind events fill batches across kind interleavings, so the
// whole stream goes out in ~len/Batch calls instead of one call per
// run of consecutive same-kind arrivals — while still delivering every
// event exactly once.
func TestLoadCoalesceFillsBatches(t *testing.T) {
	stream := testStream(t, 40, 40, 3)
	_, ts := startServer(t, Options{Algorithm: platform.AlgDemCOM, Seed: 3})

	rep, err := RunLoad(context.Background(), LoadOptions{
		URL:      ts.URL,
		Stream:   stream,
		Conns:    4,
		Batch:    8,
		Coalesce: true,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.OK != int64(rep.Events) {
		t.Fatalf("coalesced run must deliver every event: ok %d of %d (%+v)", rep.OK, rep.Events, rep)
	}
	// Count per-kind ceil(len/Batch) jobs; the alternating stream would
	// otherwise produce nearly one call per event.
	var workers, requests int
	for _, ev := range stream.Events() {
		if ev.Kind == core.WorkerArrival {
			workers++
		} else {
			requests++
		}
	}
	want := int64((workers+7)/8 + (requests+7)/8)
	if rep.Calls != want {
		t.Fatalf("coalesce: got %d calls, want %d (workers %d requests %d batch 8)",
			rep.Calls, want, workers, requests)
	}
}
