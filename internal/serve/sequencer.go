package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/platform"
)

// sequence is the server's single engine-driving goroutine: it owns
// the wall-clock→virtual-time bridge and is the only caller of
// Engine.Process, which keeps the engine's sequential determinism
// contract intact under concurrent HTTP traffic.
//
// Live mode: each admitted event is stamped with the server's virtual
// tick (milliseconds since start, clamped monotone) and fed in queue
// order — arrival order at the queue IS the event order.
//
// Replay mode: events carry their recorded stream index; a cursor
// walks the recorded order and out-of-order arrivals wait in a pending
// map until their predecessors have been fed. The recorded arrival
// ticks are authoritative, so the engine sees exactly the offline
// event sequence and the final Result is bit-identical to Run.
func (s *Server) sequence() {
	defer close(s.seqDone)
	pending := make(map[int]*ingest)
	// s.cursor starts at 0, or past the recovered prefix when a WAL
	// re-drive ran before this goroutine started.
	for it := range s.queue {
		if s.draining.Load() {
			// Admitted before the drain flag flipped, but no longer worth
			// deciding: the contract is "in-flight completes, queued gets a
			// drain reason".
			s.ctr.drained.Add(1)
			it.done <- WireDecision{Status: StatusDraining, Kind: kindName(it.ev.Kind),
				ID: eventID(it.ev), Error: "server draining; event not applied"}
			continue
		}
		if it.seq < 0 {
			s.stamp(&it.ev)
			s.process(it)
			continue
		}
		if it.seq != s.cursor {
			pending[it.seq] = it
			continue
		}
		s.process(it)
		s.cursor++
		for next, ok := pending[s.cursor]; ok; next, ok = pending[s.cursor] {
			delete(pending, s.cursor)
			if s.draining.Load() {
				s.ctr.drained.Add(1)
				next.done <- WireDecision{Status: StatusDraining, Kind: kindName(next.ev.Kind),
					ID: eventID(next.ev), Error: "server draining; event not applied"}
			} else {
				s.process(next)
			}
			s.cursor++
		}
	}
	// Queue closed with replay holes: answer the stranded waiters.
	for _, it := range pending {
		s.ctr.drained.Add(1)
		it.done <- WireDecision{Status: StatusDraining, Kind: kindName(it.ev.Kind),
			ID: eventID(it.ev), Error: "server draining; event not applied"}
	}
}

// stamp writes the live virtual clock onto an event: milliseconds
// since server start plus the resumed base, clamped non-decreasing so
// wall-clock jitter can never violate the engine's time-order
// contract. The base matters across restarts: a recovered (or
// ResumeVTime'd) server must never stamp an arrival before its
// restored high-water mark, or the engine would reject it with
// ErrTimeRegression.
func (s *Server) stamp(ev *core.Event) {
	vt := s.vbase + time.Since(s.started).Milliseconds()
	if vt < s.vlast {
		vt = s.vlast
	}
	s.vlast = vt
	ev.Time = core.Time(vt)
	switch ev.Kind {
	case core.WorkerArrival:
		ev.Worker.Arrival = core.Time(vt)
	case core.RequestArrival:
		ev.Request.Arrival = core.Time(vt)
	}
}

// process feeds one event through the WAL (when durability is on) and
// the engine, then answers its waiter. The done channel is buffered,
// so a handler that already gave up on its deadline never blocks the
// sequencer.
func (s *Server) process(it *ingest) {
	if s.opts.ProcessDelay > 0 {
		time.Sleep(s.opts.ProcessDelay)
	}
	if s.wal != nil {
		// Write-ahead: the engine must not see an event the log cannot
		// reproduce. A failed append answers 500 without mutating state.
		if err := s.logEvent(it.ev, it.seq); err != nil {
			s.ctr.walErrors.Add(1)
			it.done <- WireDecision{Status: StatusError, Kind: kindName(it.ev.Kind),
				ID: eventID(it.ev), VTime: int64(it.ev.Time), Error: "wal append: " + err.Error()}
			return
		}
	}
	d, err := s.apply(it.ev)
	if err != nil {
		it.done <- WireDecision{Status: StatusError, Kind: kindName(it.ev.Kind),
			ID: eventID(it.ev), VTime: int64(it.ev.Time), Error: err.Error()}
		return
	}
	it.done <- decisionLine(it.ev.Kind, eventID(it.ev), int64(it.ev.Time), d)
	s.maybeSnapshot()
}

// apply feeds one event to the engine and books the decision counters.
// Both the live sequencer and the startup recovery re-drive go through
// it, so a recovered server's counters continue the pre-crash sequence
// exactly.
func (s *Server) apply(ev core.Event) (platform.RequestDecision, error) {
	d, err := s.eng.Process(ev)
	if err != nil {
		s.ctr.engineErrors.Add(1)
		return d, err
	}
	if ev.Kind == core.RequestArrival {
		s.ctr.served.Add(1)
		if d.Served {
			s.ctr.matched.Add(1)
			s.ctr.addRevenue(d.Revenue)
		}
	}
	return d, nil
}

func eventID(ev core.Event) int64 {
	switch ev.Kind {
	case core.WorkerArrival:
		return ev.Worker.ID
	case core.RequestArrival:
		return ev.Request.ID
	}
	return 0
}

// unmarshalStrict decodes one JSON value rejecting unknown fields —
// typos in hand-written payloads fail loudly instead of silently
// zeroing.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// lineWriter batches NDJSON response lines through one buffered writer.
type lineWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

func newLineWriter(w io.Writer) *lineWriter {
	bw := bufio.NewWriter(w)
	return &lineWriter{bw: bw, enc: json.NewEncoder(bw)}
}

func (lw *lineWriter) writeLine(v any) { _ = lw.enc.Encode(v) }
func (lw *lineWriter) flush()          { _ = lw.bw.Flush() }
