package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/platform"
)

// sequence is the server's single engine-driving goroutine: it owns
// the wall-clock→virtual-time bridge and is the only caller of
// Engine.Process, which keeps the engine's sequential determinism
// contract intact under concurrent HTTP traffic.
//
// Live mode: each admitted event is stamped with the server's virtual
// tick (milliseconds since start, clamped monotone) and fed in queue
// order — arrival order at the queue IS the event order.
//
// Replay mode: events carry their recorded stream index; a cursor
// walks the recorded order and out-of-order arrivals wait in a pending
// map until their predecessors have been fed. The recorded arrival
// ticks are authoritative, so the engine sees exactly the offline
// event sequence and the final Result is bit-identical to Run.
func (s *Server) sequence() {
	defer close(s.seqDone)
	pending := make(map[int]*ingest)
	// Live-mode windowed engines flush on wall-clock time, not only on
	// arrivals: the ticker keeps an idle server honouring its window due
	// times. Replay mode has no ticker — the recorded arrival ticks
	// drive the flushes, exactly as the offline run. A nil channel never
	// fires, so the non-windowed select degenerates to a queue receive.
	var tick <-chan time.Time
	if s.eng.Windowed() && s.replayIdx == nil {
		t := time.NewTicker(s.tickInterval())
		defer t.Stop()
		tick = t.C
	}
	// s.cursor starts at 0, or past the recovered prefix when a WAL
	// re-drive ran before this goroutine started.
	for {
		var it *ingest
		var ok bool
		select {
		case it, ok = <-s.queue:
		case <-tick:
			s.tickWindows()
			continue
		}
		if !ok {
			break
		}
		if s.draining.Load() {
			// Admitted before the drain flag flipped, but no longer worth
			// deciding: the contract is "in-flight completes, queued gets a
			// drain reason".
			s.ctr.drained.Add(1)
			it.done <- WireDecision{Status: StatusDraining, Kind: kindName(it.ev.Kind),
				ID: eventID(it.ev), Error: "server draining; event not applied"}
			continue
		}
		if it.seq < 0 {
			s.stamp(&it.ev)
			s.process(it)
			continue
		}
		if it.seq != s.cursor {
			pending[it.seq] = it
			continue
		}
		s.process(it)
		s.cursor++
		for next, ok := pending[s.cursor]; ok; next, ok = pending[s.cursor] {
			delete(pending, s.cursor)
			if s.draining.Load() {
				s.ctr.drained.Add(1)
				next.done <- WireDecision{Status: StatusDraining, Kind: kindName(next.ev.Kind),
					ID: eventID(next.ev), Error: "server draining; event not applied"}
			} else {
				s.process(next)
			}
			s.cursor++
		}
	}
	// Queue closed with replay holes: answer the stranded waiters.
	for _, it := range pending {
		s.ctr.drained.Add(1)
		it.done <- WireDecision{Status: StatusDraining, Kind: kindName(it.ev.Kind),
			ID: eventID(it.ev), Error: "server draining; event not applied"}
	}
	// Deferred requests still buffered in an open window: their events
	// ARE applied — the window flushes inside Close's engine finish and
	// the decisions count in the final Result — but the HTTP waiters
	// cannot outlive the drain.
	for id, it := range s.waiters {
		delete(s.waiters, id)
		s.ctr.drained.Add(1)
		it.done <- WireDecision{Status: StatusDraining, Kind: kindName(it.ev.Kind),
			ID: eventID(it.ev), Error: "server draining; the buffered window resolves at close"}
	}
}

// tickInterval picks the live window ticker period: half the window
// (one virtual tick is one wall-clock millisecond in live mode),
// clamped to [5ms, 1s] so tiny windows do not spin and huge windows
// still get their deadline-clamped flushes promptly.
func (s *Server) tickInterval() time.Duration {
	w := s.opts.Window
	if w <= 0 {
		w = platform.DefaultBatchWindow
	}
	iv := time.Duration(w) * time.Millisecond / 2
	if iv < 5*time.Millisecond {
		iv = 5 * time.Millisecond
	}
	if iv > time.Second {
		iv = time.Second
	}
	return iv
}

// tickWindows advances the engine's virtual clock to "now" when a
// window flush is due, which flushes it. The tick is logged to the WAL
// first (write-ahead, same contract as events): recovery must flush
// the same windows at the same virtual times, or the recovered engine
// state — and the snapshot digest — would fork from the live history.
// Ticks with nothing due append nothing, so an idle server does not
// grow its log.
func (s *Server) tickWindows() {
	due, open := s.eng.NextFlush()
	if !open {
		return
	}
	now := s.vbase + time.Since(s.started).Milliseconds()
	if now < s.vlast {
		now = s.vlast
	}
	if core.Time(now) < due {
		return
	}
	if s.wal != nil {
		if err := s.logTick(core.Time(now)); err != nil {
			s.ctr.walErrors.Add(1)
			return // write-ahead: no unlogged flush
		}
	}
	s.vlast = now
	if err := s.eng.AdvanceTime(core.Time(now)); err != nil {
		s.ctr.engineErrors.Add(1)
	}
	s.maybeSnapshot()
}

// onWindowFlush is the engine's decision handler for window flushes:
// it books the decision counters (deferred requests are counted here,
// at flush, not at arrival — see apply) and answers the waiter still
// owed this decision, if its handler has not already given up on the
// HTTP deadline. Runs inside engine calls made by the sequencer or the
// recovery re-drive, so it shares their single-goroutine discipline.
func (s *Server) onWindowFlush(rd platform.RequestDecision) {
	s.ctr.served.Add(1)
	if rd.Served {
		s.ctr.matched.Add(1)
		s.ctr.addRevenue(rd.Revenue)
	}
	id := rd.Request.ID
	if it, ok := s.waiters[id]; ok {
		delete(s.waiters, id)
		it.done <- decisionLine(core.RequestArrival, id, int64(rd.Request.Arrival), rd)
	}
}

// stamp writes the live virtual clock onto an event: milliseconds
// since server start plus the resumed base, clamped non-decreasing so
// wall-clock jitter can never violate the engine's time-order
// contract. The base matters across restarts: a recovered (or
// ResumeVTime'd) server must never stamp an arrival before its
// restored high-water mark, or the engine would reject it with
// ErrTimeRegression.
func (s *Server) stamp(ev *core.Event) {
	vt := s.vbase + time.Since(s.started).Milliseconds()
	if vt < s.vlast {
		vt = s.vlast
	}
	s.vlast = vt
	ev.Time = core.Time(vt)
	switch ev.Kind {
	case core.WorkerArrival:
		ev.Worker.Arrival = core.Time(vt)
	case core.RequestArrival:
		ev.Request.Arrival = core.Time(vt)
	}
}

// process feeds one event through the WAL (when durability is on) and
// the engine, then answers its waiter. The done channel is buffered,
// so a handler that already gave up on its deadline never blocks the
// sequencer.
func (s *Server) process(it *ingest) {
	if s.opts.ProcessDelay > 0 {
		time.Sleep(s.opts.ProcessDelay)
	}
	if s.wal != nil {
		// Write-ahead: the engine must not see an event the log cannot
		// reproduce. A failed append answers 500 without mutating state.
		if err := s.logEvent(it.ev, it.seq); err != nil {
			s.ctr.walErrors.Add(1)
			it.done <- WireDecision{Status: StatusError, Kind: kindName(it.ev.Kind),
				ID: eventID(it.ev), VTime: int64(it.ev.Time), Error: "wal append: " + err.Error()}
			return
		}
	}
	d, err := s.apply(it.ev)
	if err != nil {
		it.done <- WireDecision{Status: StatusError, Kind: kindName(it.ev.Kind),
			ID: eventID(it.ev), VTime: int64(it.ev.Time), Error: err.Error()}
		return
	}
	if d.Deferred {
		// The window buffered this request; the real decision is owed at
		// flush time and onWindowFlush answers it then. Answering now
		// would leak a reason-less non-decision, and if the flush lands
		// after the handler's deadline the handler 504s on its own — the
		// event stays sequenced and still resolves at the flush.
		s.waiters[eventID(it.ev)] = it
		s.maybeSnapshot()
		return
	}
	it.done <- decisionLine(it.ev.Kind, eventID(it.ev), int64(it.ev.Time), d)
	s.maybeSnapshot()
}

// apply feeds one event to the engine and books the decision counters.
// Both the live sequencer and the startup recovery re-drive go through
// it, so a recovered server's counters continue the pre-crash sequence
// exactly. Deferred (window-buffered) requests are NOT counted here —
// their decision does not exist yet; onWindowFlush counts them when
// the window flushes, which keeps the counters a pure function of the
// logged history (events + ticks) and the snapshot digest verifiable.
func (s *Server) apply(ev core.Event) (platform.RequestDecision, error) {
	d, err := s.eng.Process(ev)
	if err != nil {
		s.ctr.engineErrors.Add(1)
		return d, err
	}
	// applied lags accepted while events wait in the queue or in the
	// replay re-sequencer's pending map; their convergence is the
	// observable "everything admitted has reached the engine" signal.
	s.ctr.applied.Add(1)
	if ev.Kind == core.RequestArrival && !d.Deferred {
		s.ctr.served.Add(1)
		if d.Served {
			s.ctr.matched.Add(1)
			s.ctr.addRevenue(d.Revenue)
		}
	}
	return d, nil
}

func eventID(ev core.Event) int64 {
	switch ev.Kind {
	case core.WorkerArrival:
		return ev.Worker.ID
	case core.RequestArrival:
		return ev.Request.ID
	}
	return 0
}

// unmarshalStrict decodes one JSON value rejecting unknown fields —
// typos in hand-written payloads fail loudly instead of silently
// zeroing.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// lineWriter batches NDJSON response lines through one buffered writer.
type lineWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

func newLineWriter(w io.Writer) *lineWriter {
	bw := bufio.NewWriter(w)
	return &lineWriter{bw: bw, enc: json.NewEncoder(bw)}
}

func (lw *lineWriter) writeLine(v any) { _ = lw.enc.Encode(v) }
func (lw *lineWriter) flush()          { _ = lw.bw.Flush() }
