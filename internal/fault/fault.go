// Package fault is the deterministic fault-injection layer of the
// cooperation path. Real federations of spatial-crowdsourcing platforms
// are not instantaneous or infallible: a cooperating platform can be
// slow (latency spikes), lossy (dropped probes), flaky (transient claim
// errors) or down outright (scheduled outages). A Plan describes those
// faults; an Injector realises them against a run, drawing every random
// outcome from seeded per-platform generators so the same plan, seed
// and stream reproduce the same fault sequence.
//
// The layer is paired with two resilience mechanisms consumed by
// platform.Hub:
//
//   - RetryPolicy — every probe and claim carries a virtual per-call
//     deadline and retries transient failures with capped exponential
//     backoff plus jitter (drawn from the injector RNG, never the
//     matcher RNG, so matching decisions stay untouched).
//   - Breaker — each cooperative platform gets a circuit breaker
//     (closed → open on consecutive failures → half-open trial →
//     closed) so the matchers degrade gracefully to inner-only
//     (TOTA-equivalent) matching against a dark partner instead of
//     stalling the event loop.
//
// A nil *Plan (the default) injects nothing and adds no code to the
// cooperation hot path: zero-fault runs are bit-identical to a build
// without this package.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"crossmatch/internal/core"
)

// Kind labels an injected fault class.
type Kind uint8

const (
	// KindLatency is a probe latency spike (the probe succeeds but may
	// blow its deadline).
	KindLatency Kind = iota + 1
	// KindDrop is a dropped probe (no response at all; retried).
	KindDrop
	// KindClaimError is a transient cross-platform claim error.
	KindClaimError
	// KindOutage is a scheduled whole-platform outage window.
	KindOutage
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindDrop:
		return "drop"
	case KindClaimError:
		return "claim-error"
	case KindOutage:
		return "outage"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Outage is a scheduled whole-platform outage: probes to and claims
// against Platform fail for every stream tick in [From, Until).
type Outage struct {
	Platform core.PlatformID
	From     core.Time
	Until    core.Time // exclusive; Until <= From means "forever from From"
}

// covers reports whether the outage is active at stream time t.
func (o Outage) covers(t core.Time) bool {
	if t < o.From {
		return false
	}
	return o.Until <= o.From || t < o.Until
}

// RetryPolicy bounds one probe or claim call: up to MaxAttempts tries,
// capped exponential backoff with jitter between them, all accounted
// against a virtual per-call Deadline. The clock is virtual — injected
// latency and backoff accumulate in a duration budget rather than
// wall-clock sleeps — so fault-heavy runs stay fast and reproducible.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (first attempt
	// included). Values < 1 mean the default (3).
	MaxAttempts int
	// BaseBackoff seeds the capped exponential backoff between
	// attempts: attempt n waits ~BaseBackoff<<n, jittered to
	// [50%, 100%] by the injector RNG. Zero means the default (1ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero means 8ms.
	MaxBackoff time.Duration
	// Deadline is the virtual per-call budget covering injected latency
	// and backoff; exceeding it fails the call even with attempts left.
	// Zero means the default (20ms).
	Deadline time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 8 * time.Millisecond
	}
	if p.Deadline <= 0 {
		p.Deadline = 20 * time.Millisecond
	}
	return p
}

// Backoff returns the jittered wait before retry attempt (attempt 0 is
// the first retry). The jitter multiplier is drawn from rng, keeping
// runs reproducible for a fixed fault seed.
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	d := p.BaseBackoff << uint(attempt)
	if d > p.MaxBackoff || d <= 0 { // <= 0 guards shift overflow
		d = p.MaxBackoff
	}
	// Jitter to [50%, 100%] of the exponential step.
	return time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
}

// BreakerConfig tunes the per-platform circuit breakers.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failed calls that
	// opens the breaker. Values < 1 mean the default (5).
	FailureThreshold int
	// CooldownTicks is how long (in stream time) an open breaker waits
	// before allowing a half-open trial probe. Values < 1 mean the
	// default (60 ticks).
	CooldownTicks core.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold < 1 {
		c.FailureThreshold = 5
	}
	if c.CooldownTicks < 1 {
		c.CooldownTicks = 60
	}
	return c
}

// Plan describes the faults injected into one run. The zero value (and
// a nil *Plan) injects nothing. Rates are probabilities in [0, 1]
// evaluated independently per probe or claim.
type Plan struct {
	// Seed roots the fault randomness. Zero derives the fault seed from
	// the run seed, so distinct runs see distinct fault sequences while
	// staying reproducible.
	Seed int64
	// LatencyRate is the probability a probe suffers a latency spike
	// drawn uniformly from [LatencyMin, LatencyMax].
	LatencyRate            float64
	LatencyMin, LatencyMax time.Duration
	// DropRate is the probability a probe is dropped outright.
	DropRate float64
	// ClaimErrorRate is the probability a cross-platform claim fails
	// transiently (retried under the same policy as probes).
	ClaimErrorRate float64
	// Outages schedules whole-platform outage windows over the stream
	// timeline.
	Outages []Outage
	// Retry bounds each probe/claim call; zero fields take defaults.
	Retry RetryPolicy
	// Breaker tunes the per-platform circuit breakers; zero fields take
	// defaults.
	Breaker BreakerConfig
	// MaxSleep, when positive, converts injected latency into a real
	// sleep of min(latency, MaxSleep) to shake goroutine scheduling in
	// chaos tests. Zero (the default) keeps latency purely virtual.
	MaxSleep time.Duration
}

// Validate checks rates, latency bounds and outage windows.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"latency rate", p.LatencyRate},
		{"drop rate", p.DropRate},
		{"claim-error rate", p.ClaimErrorRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if p.LatencyMin < 0 || p.LatencyMax < p.LatencyMin {
		return fmt.Errorf("fault: latency bounds [%v, %v] invalid", p.LatencyMin, p.LatencyMax)
	}
	if p.LatencyRate > 0 && p.LatencyMax == 0 {
		return fmt.Errorf("fault: latency rate %v with zero spike magnitude", p.LatencyRate)
	}
	for i, o := range p.Outages {
		if o.Platform == core.NoPlatform {
			return fmt.Errorf("fault: outage %d names the zero platform", i)
		}
		if o.From < 0 {
			return fmt.Errorf("fault: outage %d starts at negative time %d", i, o.From)
		}
	}
	return nil
}

// Enabled reports whether the plan can inject anything at all.
func (p *Plan) Enabled() bool {
	return p != nil && (p.LatencyRate > 0 || p.DropRate > 0 || p.ClaimErrorRate > 0 || len(p.Outages) > 0)
}

// HasOutages reports whether the plan schedules whole-platform outages.
func (p *Plan) HasOutages() bool { return p != nil && len(p.Outages) > 0 }

// Clone returns a deep copy (outage slice included) so callers may
// mutate per-run copies of a shared plan.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	out := *p
	out.Outages = append([]Outage(nil), p.Outages...)
	return &out
}

// ParsePlan parses the combench -faults specification: a comma-joined
// list of key=value entries. Keys:
//
//	latency=RATE:MIN-MAX   probe latency spikes (e.g. latency=0.2:1ms-10ms)
//	drop=RATE              dropped probes
//	claimerr=RATE          transient claim errors
//	outage=PID@FROM-UNTIL  platform outage window (repeatable; UNTIL empty = forever)
//	deadline=DUR           per-call virtual deadline
//	attempts=N             retry attempts per call
//	backoff=BASE-MAX       capped exponential backoff bounds
//	threshold=N            breaker consecutive-failure threshold
//	cooldown=TICKS         breaker cooldown in stream ticks
//
// Unknown keys are rejected so typos cannot silently disable a fault.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("fault: empty fault plan")
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, val, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q is not key=value", entry)
		}
		var err error
		switch key {
		case "latency":
			err = parseLatency(p, val)
		case "drop":
			p.DropRate, err = parseRate(val)
		case "claimerr":
			p.ClaimErrorRate, err = parseRate(val)
		case "outage":
			err = parseOutage(p, val)
		case "deadline":
			p.Retry.Deadline, err = time.ParseDuration(val)
		case "attempts":
			p.Retry.MaxAttempts, err = strconv.Atoi(val)
		case "backoff":
			err = parseBackoff(p, val)
		case "threshold":
			p.Breaker.FailureThreshold, err = strconv.Atoi(val)
		case "cooldown":
			var t int64
			t, err = strconv.ParseInt(val, 10, 64)
			p.Breaker.CooldownTicks = core.Time(t)
		default:
			return nil, fmt.Errorf("fault: unknown fault-plan key %q (want latency, drop, claimerr, outage, deadline, attempts, backoff, threshold or cooldown)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: entry %q: %w", entry, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", v)
	}
	return v, nil
}

func parseLatency(p *Plan, val string) error {
	rate, bounds, ok := strings.Cut(val, ":")
	if !ok {
		return fmt.Errorf("want RATE:MIN-MAX")
	}
	r, err := parseRate(rate)
	if err != nil {
		return err
	}
	lo, hi, ok := strings.Cut(bounds, "-")
	if !ok {
		return fmt.Errorf("want RATE:MIN-MAX")
	}
	min, err := time.ParseDuration(lo)
	if err != nil {
		return err
	}
	max, err := time.ParseDuration(hi)
	if err != nil {
		return err
	}
	p.LatencyRate, p.LatencyMin, p.LatencyMax = r, min, max
	return nil
}

func parseBackoff(p *Plan, val string) error {
	lo, hi, ok := strings.Cut(val, "-")
	if !ok {
		return fmt.Errorf("want BASE-MAX")
	}
	base, err := time.ParseDuration(lo)
	if err != nil {
		return err
	}
	max, err := time.ParseDuration(hi)
	if err != nil {
		return err
	}
	p.Retry.BaseBackoff, p.Retry.MaxBackoff = base, max
	return nil
}

func parseOutage(p *Plan, val string) error {
	pid, window, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want PID@FROM-UNTIL")
	}
	id, err := strconv.ParseInt(pid, 10, 32)
	if err != nil {
		return err
	}
	lo, hi, ok := strings.Cut(window, "-")
	if !ok {
		return fmt.Errorf("want PID@FROM-UNTIL")
	}
	from, err := strconv.ParseInt(lo, 10, 64)
	if err != nil {
		return err
	}
	until := int64(0)
	if hi != "" {
		until, err = strconv.ParseInt(hi, 10, 64)
		if err != nil {
			return err
		}
	}
	p.Outages = append(p.Outages, Outage{
		Platform: core.PlatformID(id),
		From:     core.Time(from),
		Until:    core.Time(until),
	})
	return nil
}

// String renders the plan in the ParsePlan format (outages sorted for
// stable output); empty for a nil or zero plan.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.LatencyRate > 0 {
		parts = append(parts, fmt.Sprintf("latency=%g:%v-%v", p.LatencyRate, p.LatencyMin, p.LatencyMax))
	}
	if p.DropRate > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.DropRate))
	}
	if p.ClaimErrorRate > 0 {
		parts = append(parts, fmt.Sprintf("claimerr=%g", p.ClaimErrorRate))
	}
	outs := append([]Outage(nil), p.Outages...)
	sort.Slice(outs, func(i, j int) bool {
		if outs[i].Platform != outs[j].Platform {
			return outs[i].Platform < outs[j].Platform
		}
		return outs[i].From < outs[j].From
	})
	for _, o := range outs {
		until := ""
		if o.Until > o.From {
			until = strconv.FormatInt(int64(o.Until), 10)
		}
		parts = append(parts, fmt.Sprintf("outage=%d@%d-%s", o.Platform, o.From, until))
	}
	return strings.Join(parts, ",")
}
