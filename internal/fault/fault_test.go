package fault

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/metrics"
)

func TestParsePlanRoundTrip(t *testing.T) {
	p, err := ParsePlan("latency=0.2:1ms-10ms,drop=0.1,claimerr=0.05,outage=2@100-300,outage=3@50-,deadline=15ms,attempts=4,backoff=500us-4ms,threshold=3,cooldown=40")
	if err != nil {
		t.Fatal(err)
	}
	if p.LatencyRate != 0.2 || p.LatencyMin != time.Millisecond || p.LatencyMax != 10*time.Millisecond {
		t.Errorf("latency parsed as %v [%v, %v]", p.LatencyRate, p.LatencyMin, p.LatencyMax)
	}
	if p.DropRate != 0.1 || p.ClaimErrorRate != 0.05 {
		t.Errorf("rates parsed as drop=%v claimerr=%v", p.DropRate, p.ClaimErrorRate)
	}
	if len(p.Outages) != 2 {
		t.Fatalf("outages = %v", p.Outages)
	}
	if p.Outages[0] != (Outage{Platform: 2, From: 100, Until: 300}) {
		t.Errorf("outage[0] = %+v", p.Outages[0])
	}
	if p.Outages[1] != (Outage{Platform: 3, From: 50, Until: 0}) {
		t.Errorf("outage[1] = %+v (want open-ended)", p.Outages[1])
	}
	if p.Retry.Deadline != 15*time.Millisecond || p.Retry.MaxAttempts != 4 {
		t.Errorf("retry = %+v", p.Retry)
	}
	if p.Retry.BaseBackoff != 500*time.Microsecond || p.Retry.MaxBackoff != 4*time.Millisecond {
		t.Errorf("backoff = %+v", p.Retry)
	}
	if p.Breaker.FailureThreshold != 3 || p.Breaker.CooldownTicks != 40 {
		t.Errorf("breaker = %+v", p.Breaker)
	}
	if !p.Enabled() || !p.HasOutages() {
		t.Error("plan should be enabled with outages")
	}
	s := p.String()
	for _, want := range []string{"latency=0.2:1ms-10ms", "drop=0.1", "claimerr=0.05", "outage=2@100-300", "outage=3@50-"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestParsePlanRejectsUnknownKey(t *testing.T) {
	for _, spec := range []string{
		"latenncy=0.2:1ms-10ms", // typo'd key
		"drop=0.1,bogus=3",
		"drop=2",           // rate out of range
		"latency=0.5:10ms", // missing bounds
		"outage=2",         // missing window
		"",                 // empty plan
		"drop",             // not key=value
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []*Plan{
		{DropRate: -0.1},
		{ClaimErrorRate: 1.5},
		{LatencyRate: 0.5},                           // no magnitude
		{LatencyMin: 5, LatencyMax: 1},               // inverted bounds
		{Outages: []Outage{{Platform: 0, From: 10}}}, // zero platform
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated: %+v", i, p)
		}
	}
	if err := (&Plan{}).Validate(); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
	if nilPlan.Enabled() {
		t.Error("nil plan enabled")
	}
}

func TestRetryBackoffCappedAndJittered(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 20; attempt++ {
		d := p.Backoff(attempt, rng)
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", attempt, d)
		}
		if d > p.MaxBackoff {
			t.Fatalf("attempt %d: backoff %v above cap %v", attempt, d, p.MaxBackoff)
		}
	}
	// Jitter stays within [50%, 100%] of the exponential step.
	d := p.Backoff(0, rng)
	if d < p.BaseBackoff/2 || d > p.BaseBackoff {
		t.Errorf("first backoff %v outside [%v, %v]", d, p.BaseBackoff/2, p.BaseBackoff)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	var transitions []string
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, CooldownTicks: 10},
		func(from, to State) { transitions = append(transitions, from.String()+">"+to.String()) })

	if b.State() != Closed {
		t.Fatal("new breaker not closed")
	}
	// Failures below the threshold keep it closed; a success resets.
	b.Failure(0)
	b.Failure(0)
	b.Success()
	b.Failure(1)
	b.Failure(1)
	if b.State() != Closed {
		t.Fatal("breaker opened before threshold")
	}
	b.Failure(2) // third consecutive → open
	if b.State() != Open {
		t.Fatal("breaker not open after threshold consecutive failures")
	}
	if b.Allow(5) {
		t.Fatal("open breaker allowed a call inside cooldown")
	}
	// Cooldown elapsed: half-open admits exactly one trial.
	if !b.Allow(12) {
		t.Fatal("cooled-down breaker refused the half-open trial")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow(12) {
		t.Fatal("second concurrent call admitted during half-open trial")
	}
	// Failed trial reopens; cooldown restarts from the failure time.
	b.Failure(12)
	if b.State() != Open {
		t.Fatal("failed trial did not reopen the breaker")
	}
	if b.Allow(15) {
		t.Fatal("reopened breaker allowed a call before the new cooldown")
	}
	if !b.Allow(25) {
		t.Fatal("second half-open trial refused")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatal("successful trial did not close the breaker")
	}
	want := []string{"closed>open", "open>half-open", "half-open>open", "open>half-open", "half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

func testInjector(t *testing.T, plan *Plan, m *metrics.Collector) *Injector {
	t.Helper()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(plan, 42, []core.PlatformID{1, 2}, m)
}

func TestInjectorOutageOpensBreakerAndRecovers(t *testing.T) {
	col := metrics.New()
	in := testInjector(t, &Plan{
		Outages: []Outage{{Platform: 2, From: 0, Until: 100}},
		Breaker: BreakerConfig{FailureThreshold: 2, CooldownTicks: 10},
		Retry:   RetryPolicy{MaxAttempts: 1},
	}, col)

	// Inside the outage every probe fails; the second failure opens the
	// breaker.
	for i := 0; i < 2; i++ {
		if in.ProbePartner(1, 2, core.Time(i)) {
			t.Fatalf("probe %d succeeded during outage", i)
		}
	}
	if in.BreakerState(2) != Open {
		t.Fatalf("breaker state = %v, want open", in.BreakerState(2))
	}
	// Short-circuited while open.
	if in.ProbePartner(1, 2, 5) {
		t.Fatal("probe succeeded against an open breaker")
	}
	// Half-open trial inside the outage fails and reopens.
	if in.ProbePartner(1, 2, 20) {
		t.Fatal("half-open trial succeeded during outage")
	}
	// After the outage lifts, the next trial closes the breaker and
	// probes succeed again.
	if in.ProbePartner(1, 2, 101) {
		// First post-outage call may still be short-circuited if the
		// reopen at t=20 has not cooled down (20+10 <= 101, so it has).
		// Success expected.
	} else {
		t.Fatal("post-outage half-open trial failed")
	}
	if in.BreakerState(2) != Closed {
		t.Fatalf("breaker state = %v after recovery, want closed", in.BreakerState(2))
	}
	if !in.ProbePartner(1, 2, 102) {
		t.Fatal("probe failed after recovery")
	}

	c := col.Snapshot().Counters
	if c.FaultOutageHits == 0 {
		t.Error("no outage hits counted")
	}
	if c.BreakerOpened != 2 { // initial open + reopen after failed trial
		t.Errorf("breaker opened %d times, want 2", c.BreakerOpened)
	}
	if c.BreakerHalfOpened != 2 || c.BreakerClosed != 1 {
		t.Errorf("half-opened=%d closed=%d, want 2 and 1", c.BreakerHalfOpened, c.BreakerClosed)
	}
	if c.BreakerShortCircuits == 0 {
		t.Error("no short-circuits counted while open")
	}
}

func TestInjectorDropRetriesThenFails(t *testing.T) {
	col := metrics.New()
	in := testInjector(t, &Plan{
		DropRate: 1, // every attempt drops
		Retry:    RetryPolicy{MaxAttempts: 3},
		Breaker:  BreakerConfig{FailureThreshold: 100},
	}, col)
	if in.ProbePartner(1, 2, 0) {
		t.Fatal("probe succeeded with 100% drop rate")
	}
	c := col.Snapshot().Counters
	if c.FaultDroppedProbes != 3 {
		t.Errorf("dropped probes = %d, want 3 (one per attempt)", c.FaultDroppedProbes)
	}
	if c.ProbeRetries != 2 {
		t.Errorf("probe retries = %d, want 2", c.ProbeRetries)
	}
}

func TestInjectorLatencyBlowsDeadline(t *testing.T) {
	col := metrics.New()
	in := testInjector(t, &Plan{
		LatencyRate: 1,
		LatencyMin:  50 * time.Millisecond,
		LatencyMax:  50 * time.Millisecond,
		Retry:       RetryPolicy{MaxAttempts: 3, Deadline: 10 * time.Millisecond},
		Breaker:     BreakerConfig{FailureThreshold: 100},
	}, col)
	if in.ProbePartner(1, 2, 0) {
		t.Fatal("probe succeeded though every spike exceeds the deadline")
	}
	c := col.Snapshot().Counters
	if c.ProbeTimeouts != 1 {
		t.Errorf("probe timeouts = %d, want 1 (deadline kills the call on the first spike)", c.ProbeTimeouts)
	}
	if c.FaultLatencySpikes != 1 {
		t.Errorf("latency spikes = %d, want 1", c.FaultLatencySpikes)
	}
	// The spike distribution must be visible in the reservoir.
	found := false
	for _, l := range col.Snapshot().Latencies {
		if l.Label == metrics.ProbeLatencyLabel && l.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no %s reservoir entry", metrics.ProbeLatencyLabel)
	}
}

func TestInjectorClaimFaults(t *testing.T) {
	col := metrics.New()
	in := testInjector(t, &Plan{
		ClaimErrorRate: 1,
		Retry:          RetryPolicy{MaxAttempts: 2},
		Breaker:        BreakerConfig{FailureThreshold: 1, CooldownTicks: 1000},
	}, col)
	if in.ClaimPartner(1, 2, 0) {
		t.Fatal("claim succeeded with 100% claim-error rate")
	}
	if in.BreakerState(2) != Open {
		t.Fatal("breaker not open after claim failure run (threshold 1)")
	}
	// Probes against the same partner are now short-circuited too: the
	// breaker guards the platform, not the call type.
	if in.ProbePartner(1, 2, 1) {
		t.Fatal("probe succeeded against a breaker opened by claim faults")
	}
	c := col.Snapshot().Counters
	if c.FaultClaimErrors != 2 {
		t.Errorf("claim errors = %d, want 2", c.FaultClaimErrors)
	}
	if c.BreakerShortCircuits != 1 {
		t.Errorf("short circuits = %d, want 1", c.BreakerShortCircuits)
	}
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	plan := &Plan{DropRate: 0.5, Seed: 7}
	outcomes := func() []bool {
		in := New(plan, 1, []core.PlatformID{1, 2}, nil)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.ProbePartner(1, 2, core.Time(i)))
		}
		return out
	}
	a, b := outcomes(), outcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d diverged across identical injectors", i)
		}
	}
	// A different plan seed must change the sequence (overwhelmingly).
	in2 := New(&Plan{DropRate: 0.5, Seed: 8}, 1, []core.PlatformID{1, 2}, nil)
	same := true
	for i := 0; i < 64; i++ {
		if in2.ProbePartner(1, 2, core.Time(i)) != a[i] {
			same = false
		}
	}
	if same {
		t.Error("seed 7 and seed 8 produced identical 64-probe sequences")
	}
}
