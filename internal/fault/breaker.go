package fault

import (
	"fmt"
	"sync"

	"crossmatch/internal/core"
)

// State is a circuit breaker state.
type State uint8

const (
	// Closed lets calls through (the healthy state).
	Closed State = iota
	// Open short-circuits every call until the cooldown elapses.
	Open
	// HalfOpen lets exactly one trial call through; its outcome decides
	// between Closed and Open.
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Breaker is a circuit breaker guarding one cooperative platform:
// FailureThreshold consecutive failed calls open it, an open breaker
// short-circuits all calls for CooldownTicks of stream time, then a
// single half-open trial call decides whether the partner recovered.
// It is safe for concurrent use by the per-platform goroutines of the
// concurrent runtime; the transition callback fires under the breaker
// lock and must not call back into it.
type Breaker struct {
	cfg          BreakerConfig
	onTransition func(from, to State)

	mu          sync.Mutex
	state       State
	consecutive int
	openedAt    core.Time
	trial       bool // half-open trial call in flight
}

// NewBreaker returns a closed breaker. onTransition, when non-nil,
// observes every state change (it feeds the breaker-transition
// counters of the metrics collector).
func NewBreaker(cfg BreakerConfig, onTransition func(from, to State)) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), onTransition: onTransition}
}

func (b *Breaker) transition(to State) {
	from := b.state
	b.state = to
	if b.onTransition != nil && from != to {
		b.onTransition(from, to)
	}
}

// State returns the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns the current state together with the consecutive-failure
// run — what a fleet router's status page shows per shard.
func (b *Breaker) Stats() (State, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.consecutive
}

// Allow reports whether a call to the guarded platform may proceed at
// stream time now. An open breaker past its cooldown moves to half-open
// and admits exactly one trial call; concurrent callers are refused
// until that trial settles through Success or Failure.
func (b *Breaker) Allow(now core.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if now >= b.openedAt+b.cfg.CooldownTicks {
			b.transition(HalfOpen)
			b.trial = true
			return true
		}
		return false
	default: // HalfOpen
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// Success records a completed call: the failure run resets and a
// half-open breaker closes.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.trial = false
	if b.state != Closed {
		b.transition(Closed)
	}
}

// Failure records a failed call at stream time now: a half-open trial
// reopens the breaker immediately, a closed breaker opens once the
// consecutive-failure run reaches the threshold.
func (b *Breaker) Failure(now core.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
	switch b.state {
	case HalfOpen:
		b.openedAt = now
		b.transition(Open)
	case Closed:
		b.consecutive++
		if b.consecutive >= b.cfg.FailureThreshold {
			b.consecutive = 0
			b.openedAt = now
			b.transition(Open)
		}
	}
	// A failure reported against an already-open breaker (a call that
	// was in flight when it opened) keeps it open; nothing to do.
}
