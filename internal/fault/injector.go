package fault

import (
	"math/rand"
	"time"

	"crossmatch/internal/core"
	"crossmatch/internal/metrics"
)

// Injector realises a Plan against one run. It is created by the
// simulation once the platform set is known and consulted by the hub on
// every cooperative probe (one per partner platform per request) and
// claim.
//
// Determinism: each viewing platform draws its fault outcomes from its
// own generator, seeded from (plan seed, platform id), so a platform's
// fault sequence depends only on its own call sequence — fully
// reproducible under the sequential runtime and independent of the
// other platforms' schedules under the concurrent one. Injected latency
// and retry backoff accumulate in a virtual duration budget checked
// against the per-call deadline; wall-clock sleeps happen only when the
// plan sets MaxSleep (chaos tests shaking real scheduling).
//
// Concurrency: the per-platform generators are partitioned — exactly
// one goroutine drives each platform, matching the hub's view contract —
// the maps are read-only after New, and the shared per-partner breakers
// lock internally.
type Injector struct {
	plan     Plan
	metrics  *metrics.Collector
	observer Observer
	rngs     map[core.PlatformID]*rand.Rand
	breakers map[core.PlatformID]*Breaker
}

// EventKind labels a fault event surfaced to the Observer.
type EventKind string

const (
	// EventProbeFault — a cooperative probe was denied (outage, drop, or
	// deadline exhaustion across retries).
	EventProbeFault EventKind = "probe-fault"
	// EventClaimFault — a cross-platform claim was denied (outage,
	// transient claim error, or deadline exhaustion).
	EventClaimFault EventKind = "claim-fault"
	// EventLatency — the call succeeded but absorbed injected latency
	// (spikes and/or retry backoff).
	EventLatency EventKind = "latency"
	// EventShortCircuit — the partner's breaker was open and the call was
	// skipped without consuming any fault randomness.
	EventShortCircuit EventKind = "short-circuit"
	// EventBreakerOpen / EventBreakerHalfOpen / EventBreakerClosed — the
	// partner's breaker changed state during the call.
	EventBreakerOpen     EventKind = "breaker-open"
	EventBreakerHalfOpen EventKind = "breaker-half-open"
	EventBreakerClosed   EventKind = "breaker-closed"
)

// Event is one fault occurrence reported to the Observer. Latency is the
// virtual latency accumulated during the call (spikes + backoff); From
// and To are set only on breaker-transition events.
type Event struct {
	Kind     EventKind
	Latency  time.Duration
	From, To State
}

// Observer receives fault events as they happen, on the goroutine of the
// viewing platform (the one issuing the probe or claim). It exists for
// the tracing layer; observation never alters fault outcomes or RNG
// consumption, so runs are bit-identical with and without an observer.
type Observer func(viewer, partner core.PlatformID, ev Event)

// SetObserver installs the fault-event observer. Call it before the run
// starts consuming events; the field is read concurrently afterwards.
func (in *Injector) SetObserver(obs Observer) { in.observer = obs }

// seedMix decorrelates per-platform fault streams from the base seed
// (the signed bit pattern of the 64-bit golden-ratio constant).
const seedMix = int64(-0x61c8864680b583eb)

// New builds the injector for a run over the given platforms. plan must
// be non-nil and validated; runSeed supplies the fault seed when the
// plan leaves Seed zero. m may be nil (counters become no-ops).
func New(plan *Plan, runSeed int64, pids []core.PlatformID, m *metrics.Collector) *Injector {
	p := *plan.Clone()
	p.Retry = p.Retry.withDefaults()
	p.Breaker = p.Breaker.withDefaults()
	base := p.Seed
	if base == 0 {
		base = runSeed ^ seedMix
	}
	in := &Injector{
		plan:     p,
		metrics:  m,
		rngs:     make(map[core.PlatformID]*rand.Rand, len(pids)),
		breakers: make(map[core.PlatformID]*Breaker, len(pids)),
	}
	for _, pid := range pids {
		in.rngs[pid] = rand.New(rand.NewSource(base ^ (int64(pid)+1)*seedMix))
		in.breakers[pid] = NewBreaker(p.Breaker, in.observeTransition)
	}
	return in
}

func (in *Injector) observeTransition(_, to State) {
	switch to {
	case Open:
		in.metrics.BreakerOpened()
	case HalfOpen:
		in.metrics.BreakerHalfOpened()
	case Closed:
		in.metrics.BreakerClosed()
	}
}

// BreakerState returns the current breaker state guarding a platform
// (Closed for unknown platforms).
func (in *Injector) BreakerState(pid core.PlatformID) State {
	if b := in.breakers[pid]; b != nil {
		return b.State()
	}
	return Closed
}

// outage reports whether partner is inside a scheduled outage window at
// stream time now.
func (in *Injector) outage(partner core.PlatformID, now core.Time) bool {
	for _, o := range in.plan.Outages {
		if o.Platform == partner && o.covers(now) {
			return true
		}
	}
	return false
}

// spike injects the latency of one probe attempt: zero, or a spike
// drawn uniformly from [LatencyMin, LatencyMax]. Real sleep is capped
// by MaxSleep (zero keeps latency purely virtual).
func (in *Injector) spike(rng *rand.Rand) time.Duration {
	if in.plan.LatencyRate <= 0 || rng.Float64() >= in.plan.LatencyRate {
		return 0
	}
	lat := in.plan.LatencyMin
	if span := in.plan.LatencyMax - in.plan.LatencyMin; span > 0 {
		lat += time.Duration(rng.Int63n(int64(span) + 1))
	}
	in.metrics.FaultLatency()
	in.metrics.ObserveProbeLatency(lat)
	if in.plan.MaxSleep > 0 {
		sleep := lat
		if sleep > in.plan.MaxSleep {
			sleep = in.plan.MaxSleep
		}
		time.Sleep(sleep)
	}
	return lat
}

// ProbePartner decides whether viewer's cooperative probe of partner
// succeeds at stream time now, running the deadline/retry/backoff
// policy and feeding the partner's breaker. false means the partner is
// dark for this request: the hub skips its pool and the matcher
// degrades to the remaining platforms (inner-only when all partners are
// dark).
func (in *Injector) ProbePartner(viewer, partner core.PlatformID, now core.Time) bool {
	br := in.breakers[partner]
	obs := in.observer
	if obs == nil {
		ok, _, _ := in.probe(br, viewer, partner, now)
		return ok
	}
	before := br.State()
	ok, elapsed, short := in.probe(br, viewer, partner, now)
	in.notify(obs, viewer, partner, before, br.State(), EventProbeFault, elapsed, ok, short)
	return ok
}

func (in *Injector) probe(br *Breaker, viewer, partner core.PlatformID, now core.Time) (ok bool, elapsed time.Duration, short bool) {
	if !br.Allow(now) {
		in.metrics.BreakerShortCircuit()
		return false, 0, true
	}
	rng := in.rngs[viewer]
	for attempt := 0; attempt < in.plan.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			elapsed += in.plan.Retry.Backoff(attempt-1, rng)
			in.metrics.ProbeRetry()
		}
		ok := true
		switch {
		case in.outage(partner, now):
			in.metrics.FaultOutageHit()
			ok = false
		case in.plan.DropRate > 0 && rng.Float64() < in.plan.DropRate:
			in.metrics.FaultDrop()
			ok = false
		default:
			elapsed += in.spike(rng)
		}
		if elapsed > in.plan.Retry.Deadline {
			in.metrics.ProbeTimeout()
			br.Failure(now)
			return false, elapsed, false
		}
		if ok {
			br.Success()
			return true, elapsed, false
		}
	}
	br.Failure(now)
	return false, elapsed, false
}

// notify translates one guarded call's outcome into observer events: a
// short-circuit, a denial, or injected-latency-on-success, plus a
// breaker-transition event when the partner's breaker moved.
func (in *Injector) notify(obs Observer, viewer, partner core.PlatformID, before, after State, failKind EventKind, lat time.Duration, ok, short bool) {
	switch {
	case short:
		obs(viewer, partner, Event{Kind: EventShortCircuit})
	case !ok:
		obs(viewer, partner, Event{Kind: failKind, Latency: lat})
	case lat > 0:
		obs(viewer, partner, Event{Kind: EventLatency, Latency: lat})
	}
	if after != before {
		kind := EventBreakerClosed
		switch after {
		case Open:
			kind = EventBreakerOpen
		case HalfOpen:
			kind = EventBreakerHalfOpen
		}
		obs(viewer, partner, Event{Kind: kind, From: before, To: after})
	}
}

// ClaimPartner decides whether viewer's cross-platform claim against
// owner goes through at stream time now, injecting transient claim
// errors under the same deadline/retry/backoff policy and feeding the
// owner's breaker. A false return is indistinguishable from a lost
// claim race to the matcher: it simply tries the next candidate.
func (in *Injector) ClaimPartner(viewer, owner core.PlatformID, now core.Time) bool {
	br := in.breakers[owner]
	obs := in.observer
	if obs == nil {
		ok, _, _ := in.claim(br, viewer, owner, now)
		return ok
	}
	before := br.State()
	ok, elapsed, short := in.claim(br, viewer, owner, now)
	in.notify(obs, viewer, owner, before, br.State(), EventClaimFault, elapsed, ok, short)
	return ok
}

func (in *Injector) claim(br *Breaker, viewer, owner core.PlatformID, now core.Time) (ok bool, elapsed time.Duration, short bool) {
	if !br.Allow(now) {
		in.metrics.BreakerShortCircuit()
		return false, 0, true
	}
	rng := in.rngs[viewer]
	for attempt := 0; attempt < in.plan.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			elapsed += in.plan.Retry.Backoff(attempt-1, rng)
			in.metrics.ProbeRetry()
		}
		ok := true
		switch {
		case in.outage(owner, now):
			in.metrics.FaultOutageHit()
			ok = false
		case in.plan.ClaimErrorRate > 0 && rng.Float64() < in.plan.ClaimErrorRate:
			in.metrics.FaultClaimError()
			ok = false
		}
		if elapsed > in.plan.Retry.Deadline {
			in.metrics.ProbeTimeout()
			br.Failure(now)
			return false, elapsed, false
		}
		if ok {
			br.Success()
			return true, elapsed, false
		}
	}
	br.Failure(now)
	return false, elapsed, false
}
