package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// ValueModel draws request values (the v_r of Definition 2.1). All
// models return positive, finite values bounded by their Max.
type ValueModel interface {
	// Sample returns one request value.
	Sample(rng *rand.Rand) float64
	// Max returns the a-priori value bound max(v_r) that RamCOM and
	// Greedy-RT assume known (Algorithm 3).
	Max() float64
}

// NormalValues is Table IV's "normal" distribution: N(Mu, Sigma)
// truncated to [Min, Cap] by resampling (with a clamping fallback).
type NormalValues struct {
	Mu, Sigma float64
	Min, Cap  float64
}

// NewNormalValues validates and returns the model.
func NewNormalValues(mu, sigma, min, cap float64) (NormalValues, error) {
	if sigma <= 0 || min <= 0 || cap <= min || mu <= 0 {
		return NormalValues{}, fmt.Errorf("workload: bad normal values (mu=%v sigma=%v min=%v cap=%v)", mu, sigma, min, cap)
	}
	return NormalValues{Mu: mu, Sigma: sigma, Min: min, Cap: cap}, nil
}

// Sample implements ValueModel.
func (n NormalValues) Sample(rng *rand.Rand) float64 {
	for i := 0; i < 16; i++ {
		v := n.Mu + rng.NormFloat64()*n.Sigma
		if v >= n.Min && v <= n.Cap {
			return v
		}
	}
	// Pathological parameters: clamp instead of spinning.
	v := n.Mu + rng.NormFloat64()*n.Sigma
	return math.Min(math.Max(v, n.Min), n.Cap)
}

// Max implements ValueModel.
func (n NormalValues) Max() float64 { return n.Cap }

// RealValues is Table IV's "real" distribution: a log-normal with the
// heavy right tail characteristic of trip fares (many short cheap trips,
// few long expensive ones), capped at Cap. Median fare is exp(Mu).
type RealValues struct {
	Mu, Sigma float64 // parameters of the underlying normal
	Min, Cap  float64
}

// NewRealValues validates and returns the model.
func NewRealValues(mu, sigma, min, cap float64) (RealValues, error) {
	if sigma <= 0 || min <= 0 || cap <= min {
		return RealValues{}, fmt.Errorf("workload: bad real values (mu=%v sigma=%v min=%v cap=%v)", mu, sigma, min, cap)
	}
	return RealValues{Mu: mu, Sigma: sigma, Min: min, Cap: cap}, nil
}

// Sample implements ValueModel.
func (r RealValues) Sample(rng *rand.Rand) float64 {
	v := math.Exp(r.Mu + rng.NormFloat64()*r.Sigma)
	return math.Min(math.Max(v, r.Min), r.Cap)
}

// Max implements ValueModel.
func (r RealValues) Max() float64 { return r.Cap }

// UniformValues draws uniformly from [Min, Cap]; used by property tests
// and the competitive-ratio study where a controlled value range is
// needed.
type UniformValues struct {
	Min, Cap float64
}

// NewUniformValues validates and returns the model.
func NewUniformValues(min, cap float64) (UniformValues, error) {
	if min <= 0 || cap <= min {
		return UniformValues{}, fmt.Errorf("workload: bad uniform values (min=%v cap=%v)", min, cap)
	}
	return UniformValues{Min: min, Cap: cap}, nil
}

// Sample implements ValueModel.
func (u UniformValues) Sample(rng *rand.Rand) float64 {
	return u.Min + rng.Float64()*(u.Cap-u.Min)
}

// Max implements ValueModel.
func (u UniformValues) Max() float64 { return u.Cap }

// Scaled wraps a model, multiplying every sample by Factor. Worker
// acceptance histories use it: a frugality factor below 1 means workers
// have historically completed cheaper requests than the live request
// mix, which calibrates DemCOM's ~0.7 minimum payment rate.
type Scaled struct {
	Base   ValueModel
	Factor float64
}

// Sample implements ValueModel.
func (s Scaled) Sample(rng *rand.Rand) float64 { return s.Base.Sample(rng) * s.Factor }

// Max implements ValueModel.
func (s Scaled) Max() float64 { return s.Base.Max() * s.Factor }

// DefaultRealValues is the fare model used by the city presets: median
// ~15 CNY, heavy tail, capped at 100 (mean ~19, matching the per-request
// revenue implied by Table V: 1.343e6 / 68689 ~ 19.6).
func DefaultRealValues() RealValues {
	v, err := NewRealValues(math.Log(15), 0.55, 1, 100)
	if err != nil {
		panic(err)
	}
	return v
}

// DefaultNormalValues is Table IV's "normal" counterpart with the same
// mean scale: N(20, 6) truncated to [1, 100].
func DefaultNormalValues() NormalValues {
	v, err := NewNormalValues(20, 6, 1, 100)
	if err != nil {
		panic(err)
	}
	return v
}
