package workload

import (
	"math/rand"
	"testing"

	"crossmatch/internal/core"
)

func TestUniformArrivalsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		tick := UniformArrivals{}.Sample(rng, 500)
		if tick < 0 || tick >= 500 {
			t.Fatalf("tick %d outside [0, 500)", tick)
		}
	}
}

func TestNewRushHourValidation(t *testing.T) {
	if _, err := NewRushHour(nil, 0, 0); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	cases := []struct {
		peaks      []float64
		sigma, bkg float64
	}{
		{[]float64{0}, 0.06, 0.3},
		{[]float64{1}, 0.06, 0.3},
		{[]float64{0.5}, -0.1, 0.3},
		{[]float64{0.5}, 0.9, 0.3},
		{[]float64{0.5}, 0.06, 1.0},
		{[]float64{0.5}, 0.06, -0.2},
	}
	for i, c := range cases {
		if _, err := NewRushHour(c.peaks, c.sigma, c.bkg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRushHourConcentratesAtPeaks(t *testing.T) {
	m, err := NewRushHour([]float64{0.5}, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const horizon = core.Time(10000)
	const n = 20000
	nearPeak := 0
	for i := 0; i < n; i++ {
		tick := m.Sample(rng, horizon)
		if tick < 0 || tick >= horizon {
			t.Fatalf("tick %d outside horizon", tick)
		}
		if tick > 3500 && tick < 6500 { // within 3 sigma of the peak
			nearPeak++
		}
	}
	// 90% peak mass (within ~3 sigma) + ~30% of the 10% background.
	if frac := float64(nearPeak) / n; frac < 0.8 {
		t.Errorf("peak concentration = %v, want > 0.8", frac)
	}
}

func TestRushHourReflectionKeepsRange(t *testing.T) {
	// A peak at the very edge with a wide sigma exercises reflection.
	m, err := NewRushHour([]float64{0.02}, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		tick := m.Sample(rng, 1000)
		if tick < 0 || tick >= 1000 {
			t.Fatalf("reflected tick %d outside [0, 1000)", tick)
		}
	}
}

func TestGenerateWithRushHour(t *testing.T) {
	rush, err := NewRushHour(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Synthetic(600, 120, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Platforms {
		cfg.Platforms[i].Arrivals = rush
	}
	s, err := Generate(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The stream is valid and bimodal: the middle lull (45%-65% of the
	// horizon, between the default peaks) holds less mass than the
	// morning peak window of the same width.
	horizon := s.Events()[s.Len()-1].Time
	window := func(lo, hi float64) int {
		n := 0
		for _, e := range s.Events() {
			f := float64(e.Time) / float64(horizon)
			if f >= lo && f < hi {
				n++
			}
		}
		return n
	}
	peak := window(0.25, 0.45)
	lull := window(0.45, 0.65)
	if peak <= lull {
		t.Errorf("morning peak %d not above midday lull %d", peak, lull)
	}
}
