package workload

import (
	"testing"

	"crossmatch/internal/core"
)

// TestGenerateDeterministicAfterArenas: the arena refactor must not
// perturb the RNG call sequence — same config and seed, bit-identical
// stream, twice.
func TestGenerateDeterministicAfterArenas(t *testing.T) {
	cfg, err := Synthetic(400, 150, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Platforms[0].Appearances = 3
	a, err := Generate(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Events(), b.Events()
	if len(ea) != len(eb) {
		t.Fatalf("lengths differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		x, y := ea[i], eb[i]
		if x.Time != y.Time || x.Kind != y.Kind {
			t.Fatalf("event %d differs: %+v vs %+v", i, x, y)
		}
		switch x.Kind {
		case core.WorkerArrival:
			u, v := x.Worker, y.Worker
			if u.ID != v.ID || u.Arrival != v.Arrival || u.Loc != v.Loc ||
				u.Radius != v.Radius || u.Platform != v.Platform || !slicesEqual(u.History, v.History) {
				t.Fatalf("worker %d differs: %+v vs %+v", i, *u, *v)
			}
		case core.RequestArrival:
			if *x.Request != *y.Request {
				t.Fatalf("request %d differs: %+v vs %+v", i, *x.Request, *y.Request)
			}
		}
	}
}

func slicesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGenerateAllocsAmortized pins the satellite fix: generation costs
// a small bounded number of heap allocations per event (arena chunks,
// the pre-sized slice, spatial-model internals), not one-plus per
// entity as before. The bound is loose on purpose — it fails on a
// return to per-entity allocation (≥ 2/event), not on noise.
func TestGenerateAllocsAmortized(t *testing.T) {
	cfg, err := Synthetic(9000, 1000, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	var stream *core.Stream
	allocs := testing.AllocsPerRun(3, func() {
		s, gerr := Generate(cfg, 5)
		if gerr != nil {
			t.Fatal(gerr)
		}
		stream = s
	})
	if stream.Len() < 10000 {
		t.Fatalf("stream has %d events, want >= 10000", stream.Len())
	}
	perEvent := allocs / float64(stream.Len())
	if perEvent > 0.5 {
		t.Fatalf("%.0f allocations for %d events (%.2f/event) — arena amortization regressed", allocs, stream.Len(), perEvent)
	}
}

func BenchmarkGenerateCity(b *testing.B) {
	cfg, err := Synthetic(45000, 5000, 1.0, "real")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := Generate(cfg, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() < 50000 {
			b.Fatal("bad length")
		}
	}
}
