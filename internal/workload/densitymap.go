package workload

import (
	"fmt"
	"io"
	"strings"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
)

// densityRamp maps occupancy to glyphs, light to dense.
const densityRamp = " .:-=+*#%@"

// WriteDensityMap renders each platform's request and worker densities
// as side-by-side ASCII heat maps — the quickest way to see the Fig. 2
// market geography (and to sanity-check a generated city) from a
// terminal. cols/rows size each map (defaults 36x18 for non-positive
// values).
func WriteDensityMap(w io.Writer, s *core.Stream, cols, rows int) error {
	if cols <= 0 {
		cols = 36
	}
	if rows <= 0 {
		rows = 18
	}
	if s.Len() == 0 {
		_, err := fmt.Fprintln(w, "empty stream")
		return err
	}

	// Bounding box over every location.
	var box geo.Rect
	first := true
	visit := func(p geo.Point) {
		if first {
			box = geo.Rect{Min: p, Max: p}
			first = false
			return
		}
		box = geo.NewRect(
			geo.Point{X: min(box.Min.X, p.X), Y: min(box.Min.Y, p.Y)},
			geo.Point{X: max(box.Max.X, p.X), Y: max(box.Max.Y, p.Y)},
		)
	}
	for _, r := range s.Requests() {
		visit(r.Loc)
	}
	for _, wk := range s.Workers() {
		visit(wk.Loc)
	}
	if box.Width() == 0 {
		box.Max.X = box.Min.X + 1
	}
	if box.Height() == 0 {
		box.Max.Y = box.Min.Y + 1
	}

	cell := func(p geo.Point) (int, int) {
		cx := int(float64(cols) * (p.X - box.Min.X) / box.Width())
		cy := int(float64(rows) * (p.Y - box.Min.Y) / box.Height())
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= rows {
			cy = rows - 1
		}
		return cx, rows - 1 - cy // north up
	}

	for _, pid := range s.Platforms() {
		reqGrid := make([][]int, rows)
		wrkGrid := make([][]int, rows)
		for i := range reqGrid {
			reqGrid[i] = make([]int, cols)
			wrkGrid[i] = make([]int, cols)
		}
		maxCount := 0
		for _, r := range s.Requests() {
			if r.Platform != pid {
				continue
			}
			cx, cy := cell(r.Loc)
			reqGrid[cy][cx]++
			if reqGrid[cy][cx] > maxCount {
				maxCount = reqGrid[cy][cx]
			}
		}
		for _, wk := range s.Workers() {
			if wk.Platform != pid {
				continue
			}
			cx, cy := cell(wk.Loc)
			wrkGrid[cy][cx]++
			if wrkGrid[cy][cx] > maxCount {
				maxCount = wrkGrid[cy][cx]
			}
		}
		if maxCount == 0 {
			maxCount = 1
		}
		glyph := func(n int) byte {
			if n == 0 {
				return densityRamp[0]
			}
			idx := 1 + (len(densityRamp)-2)*n/maxCount
			if idx >= len(densityRamp) {
				idx = len(densityRamp) - 1
			}
			return densityRamp[idx]
		}
		if _, err := fmt.Fprintf(w, "platform %d   %-*s  %s\n", pid, cols, "requests", "workers"); err != nil {
			return err
		}
		for row := 0; row < rows; row++ {
			var a, b strings.Builder
			for col := 0; col < cols; col++ {
				a.WriteByte(glyph(reqGrid[row][col]))
				b.WriteByte(glyph(wrkGrid[row][col]))
			}
			if _, err := fmt.Fprintf(w, "  |%s|  |%s|\n", a.String(), b.String()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
