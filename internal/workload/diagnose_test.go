package workload

import (
	"bytes"
	"strings"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
)

func TestDiagnoseHandBuilt(t *testing.T) {
	// Platform 1: one worker near its own request (not stranded), one
	// worker near only platform 2's request (stranded but rescuable),
	// one worker near nothing (stranded, not rescuable).
	workers := []*core.Worker{
		{ID: 1, Arrival: 0, Loc: geo.Point{X: 0}, Radius: 1, Platform: 1},
		{ID: 2, Arrival: 0, Loc: geo.Point{X: 10}, Radius: 1, Platform: 1},
		{ID: 3, Arrival: 0, Loc: geo.Point{X: 50}, Radius: 1, Platform: 1},
		{ID: 4, Arrival: 0, Loc: geo.Point{X: 10}, Radius: 1, Platform: 2},
	}
	requests := []*core.Request{
		{ID: 1, Arrival: 5, Loc: geo.Point{X: 0.5}, Value: 3, Platform: 1},
		{ID: 2, Arrival: 5, Loc: geo.Point{X: 10.5}, Value: 3, Platform: 2},
	}
	s, err := core.NewStream(append(core.WorkerEvents(workers), core.RequestEvents(requests)...))
	if err != nil {
		t.Fatal(err)
	}
	ds := Diagnose(s)
	if len(ds) != 2 {
		t.Fatalf("diagnoses = %d", len(ds))
	}
	p1 := ds[0]
	if p1.Platform != 1 || p1.Workers != 3 || p1.Requests != 1 {
		t.Fatalf("p1 = %+v", p1)
	}
	if p1.StrandedOwn != 2 {
		t.Errorf("p1 stranded = %d, want 2", p1.StrandedOwn)
	}
	if p1.Rescuable != 1 {
		t.Errorf("p1 rescuable = %d, want 1", p1.Rescuable)
	}
	if f := p1.StrandedFraction(); f < 0.66 || f > 0.67 {
		t.Errorf("p1 stranded fraction = %v", f)
	}
	p2 := ds[1]
	// Platform 2's worker covers its own request -> not stranded.
	if p2.StrandedOwn != 0 {
		t.Errorf("p2 stranded = %d, want 0", p2.StrandedOwn)
	}
}

func TestDiagnoseTimeConstraint(t *testing.T) {
	// A worker arriving after the only nearby request is stranded: it
	// can never serve anything.
	workers := []*core.Worker{{ID: 1, Arrival: 10, Loc: geo.Point{}, Radius: 1, Platform: 1}}
	requests := []*core.Request{{ID: 1, Arrival: 5, Loc: geo.Point{X: 0.2}, Value: 1, Platform: 1}}
	s, err := core.NewStream(append(core.WorkerEvents(workers), core.RequestEvents(requests)...))
	if err != nil {
		t.Fatal(err)
	}
	ds := Diagnose(s)
	if ds[0].StrandedOwn != 1 {
		t.Errorf("late worker not counted stranded: %+v", ds[0])
	}
}

// TestDiagnoseCityPairStrandsCapacity validates the DESIGN.md §8
// calibration claim: the default city pair keeps a large share of each
// fleet stranded for its own platform yet rescuable by the other.
func TestDiagnoseCityPairStrandsCapacity(t *testing.T) {
	cfg, err := Synthetic(2500, 500, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Diagnose(s) {
		if f := d.StrandedFraction(); f < 0.15 {
			t.Errorf("platform %d stranded fraction %.2f too low for the Fig 2 scenario", d.Platform, f)
		}
		if d.StrandedOwn > 0 && float64(d.Rescuable) < 0.3*float64(d.StrandedOwn) {
			t.Errorf("platform %d: only %d of %d stranded workers rescuable",
				d.Platform, d.Rescuable, d.StrandedOwn)
		}
	}
}

func TestWriteDiagnosis(t *testing.T) {
	var buf bytes.Buffer
	err := WriteDiagnosis(&buf, []Diagnosis{
		{Platform: 1, Workers: 10, Requests: 20, StrandedOwn: 4, Rescuable: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"platform 1", "stranded 4", "40.0%", "rescuable by others 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q: %s", want, out)
		}
	}
}
