package workload

import (
	"fmt"
	"math/rand"

	"crossmatch/internal/core"
)

// ArrivalModel draws arrival ticks over a horizon. The default (nil in
// PlatformSpec) is uniform, matching the paper's randomized arrival
// orders; RushHour adds the bimodal intensity of real taxi days, which
// stresses the algorithms with supply/demand phase shifts.
type ArrivalModel interface {
	Sample(rng *rand.Rand, horizon core.Time) core.Time
}

// UniformArrivals spreads arrivals uniformly over the horizon.
type UniformArrivals struct{}

// Sample implements ArrivalModel.
func (UniformArrivals) Sample(rng *rand.Rand, horizon core.Time) core.Time {
	return core.Time(rng.Int63n(int64(horizon)))
}

// RushHour is a mixture of Gaussian peaks over the horizon plus a
// uniform background — the classic morning/evening commute shape.
type RushHour struct {
	// Peaks are peak centers as fractions of the horizon in (0, 1).
	Peaks []float64
	// Sigma is each peak's standard deviation as a fraction of the
	// horizon (default 0.06 — roughly a 90-minute rush on a day).
	Sigma float64
	// Background is the probability mass of off-peak arrivals in [0, 1)
	// (default 0.3).
	Background float64
}

// NewRushHour validates and returns the model; with no peaks it uses the
// canonical two (0.35 and 0.75 of the horizon — morning and evening).
func NewRushHour(peaks []float64, sigma, background float64) (*RushHour, error) {
	if len(peaks) == 0 {
		peaks = []float64{0.35, 0.75}
	}
	for _, p := range peaks {
		if p <= 0 || p >= 1 {
			return nil, fmt.Errorf("workload: rush-hour peak %v outside (0,1)", p)
		}
	}
	if sigma == 0 {
		sigma = 0.06
	}
	if sigma <= 0 || sigma > 0.5 {
		return nil, fmt.Errorf("workload: rush-hour sigma %v outside (0, 0.5]", sigma)
	}
	if background == 0 {
		background = 0.3
	}
	if background < 0 || background >= 1 {
		return nil, fmt.Errorf("workload: rush-hour background %v outside [0,1)", background)
	}
	return &RushHour{Peaks: peaks, Sigma: sigma, Background: background}, nil
}

// Sample implements ArrivalModel.
func (m *RushHour) Sample(rng *rand.Rand, horizon core.Time) core.Time {
	h := float64(horizon)
	if rng.Float64() < m.Background {
		return core.Time(rng.Int63n(int64(horizon)))
	}
	peak := m.Peaks[rng.Intn(len(m.Peaks))]
	t := (peak + rng.NormFloat64()*m.Sigma) * h
	// Reflect out-of-range draws back into the day rather than clamping
	// (clamping would pile mass onto the exact endpoints).
	for t < 0 || t >= h {
		if t < 0 {
			t = -t
		} else {
			t = 2*h - t - 1
		}
	}
	return core.Time(t)
}
