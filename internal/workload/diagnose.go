package workload

import (
	"fmt"
	"io"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
	"crossmatch/internal/index"
)

// Diagnosis quantifies the cross-platform structure of a stream: how
// much of each platform's fleet can never serve its own demand (the
// stranded capacity COM monetizes) and how much of it could serve some
// other platform's demand instead.
type Diagnosis struct {
	Platform core.PlatformID
	Workers  int // worker arrivals (waiting-list joins)
	Requests int
	// StrandedOwn counts worker arrivals whose range covers none of the
	// platform's own requests arriving after them.
	StrandedOwn int
	// Rescuable counts the StrandedOwn workers that could serve at
	// least one other platform's request (the hub's raw material).
	Rescuable int
}

// StrandedFraction is StrandedOwn / Workers (0 with no workers).
func (d Diagnosis) StrandedFraction() float64 {
	if d.Workers == 0 {
		return 0
	}
	return float64(d.StrandedOwn) / float64(d.Workers)
}

// Diagnose computes the per-platform stranded-capacity diagnosis of a
// stream. It is the empirical check behind DESIGN.md §8's calibration:
// the paper's evaluation shapes require a meaningful stranded fraction
// at every request volume. Cost is one spatial-index query per worker.
func Diagnose(s *core.Stream) []Diagnosis {
	// Index requests per platform. The coverage question runs in the
	// flipped direction ("which requests lie within this worker's
	// disk?"), so each request is indexed with the stream's maximum
	// radius and candidates are filtered exactly with core.CanServe.
	requests := s.Requests()
	perPlatform := map[core.PlatformID]*index.Grid{}
	maxRadius := index.DefaultCell
	for _, w := range s.Workers() {
		if w.Radius > maxRadius {
			maxRadius = w.Radius
		}
	}
	reqByID := map[int64]*core.Request{}
	for _, r := range requests {
		g := perPlatform[r.Platform]
		if g == nil {
			g = index.NewGrid(maxRadius)
			perPlatform[r.Platform] = g
		}
		// A zero-radius circle centered at the request; the worker-side
		// query uses its own disk, so flip the roles: index the request
		// with the MAX radius so a Covering query at the worker location
		// returns every request within maxRadius, then filter exactly.
		g.Insert(index.Entry{ID: r.ID, Circle: geo.Circle{Center: r.Loc, Radius: maxRadius}})
		reqByID[r.ID] = r
	}

	out := map[core.PlatformID]*Diagnosis{}
	for _, pid := range s.Platforms() {
		out[pid] = &Diagnosis{Platform: pid}
	}
	for _, r := range requests {
		out[r.Platform].Requests++
	}

	var buf []index.Entry
	canServeAny := func(w *core.Worker, pid core.PlatformID) bool {
		g := perPlatform[pid]
		if g == nil {
			return false
		}
		buf = g.Covering(buf[:0], w.Loc)
		for _, e := range buf {
			r := reqByID[e.ID]
			if core.CanServe(w, r) {
				return true
			}
		}
		return false
	}

	platforms := s.Platforms()
	for _, w := range s.Workers() {
		d := out[w.Platform]
		d.Workers++
		if canServeAny(w, w.Platform) {
			continue
		}
		d.StrandedOwn++
		for _, pid := range platforms {
			if pid != w.Platform && canServeAny(w, pid) {
				d.Rescuable++
				break
			}
		}
	}

	res := make([]Diagnosis, 0, len(platforms))
	for _, pid := range platforms {
		res = append(res, *out[pid])
	}
	return res
}

// WriteDiagnosis renders the diagnosis as text (used by comgen).
func WriteDiagnosis(w io.Writer, ds []Diagnosis) error {
	for _, d := range ds {
		if _, err := fmt.Fprintf(w,
			"platform %d: %d worker arrivals, %d requests; stranded %d (%.1f%%), rescuable by others %d\n",
			d.Platform, d.Workers, d.Requests, d.StrandedOwn,
			100*d.StrandedFraction(), d.Rescuable); err != nil {
			return err
		}
	}
	return nil
}
