package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
)

// WriteCSV serializes a stream as CSV with the header
//
//	kind,id,arrival,platform,x,y,value,radius,history
//
// Workers carry radius and a semicolon-joined history; requests carry
// value. The format round-trips through ReadCSV and is what cmd/comgen
// emits for offline inspection or for feeding external tools.
func WriteCSV(w io.Writer, s *core.Stream) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "id", "arrival", "platform", "x", "y", "value", "radius", "history"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, e := range s.Events() {
		var rec []string
		switch e.Kind {
		case core.WorkerArrival:
			wk := e.Worker
			hist := make([]string, len(wk.History))
			for i, h := range wk.History {
				hist[i] = f(h)
			}
			rec = []string{"worker", strconv.FormatInt(wk.ID, 10), strconv.FormatInt(int64(wk.Arrival), 10),
				strconv.Itoa(int(wk.Platform)), f(wk.Loc.X), f(wk.Loc.Y), "", f(wk.Radius), strings.Join(hist, ";")}
		case core.RequestArrival:
			r := e.Request
			rec = []string{"request", strconv.FormatInt(r.ID, 10), strconv.FormatInt(int64(r.Arrival), 10),
				strconv.Itoa(int(r.Platform)), f(r.Loc.X), f(r.Loc.Y), f(r.Value), "", ""}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a stream previously written by WriteCSV.
func ReadCSV(r io.Reader) (*core.Stream, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 9
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading CSV header: %w", err)
	}
	if len(header) != 9 || header[0] != "kind" {
		return nil, fmt.Errorf("workload: unexpected CSV header %v", header)
	}
	var events []core.Event
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d: %w", line, err)
		}
		id, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d: id: %w", line, err)
		}
		arr, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d: arrival: %w", line, err)
		}
		plat, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d: platform: %w", line, err)
		}
		x, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d: x: %w", line, err)
		}
		y, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d: y: %w", line, err)
		}
		loc := geo.Point{X: x, Y: y}
		switch rec[0] {
		case "worker":
			rad, err := strconv.ParseFloat(rec[7], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: CSV line %d: radius: %w", line, err)
			}
			var hist []float64
			if rec[8] != "" {
				for _, hs := range strings.Split(rec[8], ";") {
					h, err := strconv.ParseFloat(hs, 64)
					if err != nil {
						return nil, fmt.Errorf("workload: CSV line %d: history: %w", line, err)
					}
					hist = append(hist, h)
				}
			}
			w := &core.Worker{ID: id, Arrival: core.Time(arr), Loc: loc, Radius: rad,
				Platform: core.PlatformID(plat), History: hist}
			events = append(events, core.Event{Time: w.Arrival, Kind: core.WorkerArrival, Worker: w})
		case "request":
			v, err := strconv.ParseFloat(rec[6], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: CSV line %d: value: %w", line, err)
			}
			rq := &core.Request{ID: id, Arrival: core.Time(arr), Loc: loc, Value: v,
				Platform: core.PlatformID(plat)}
			events = append(events, core.Event{Time: rq.Arrival, Kind: core.RequestArrival, Request: rq})
		default:
			return nil, fmt.Errorf("workload: CSV line %d: unknown kind %q", line, rec[0])
		}
	}
	return core.NewStream(events)
}
