package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the CSV parser: arbitrary byte soup must yield a
// clean error or a stream that survives re-serialization — never a
// panic. Run with `go test -fuzz=FuzzReadCSV ./internal/workload` for a
// real campaign; the seed corpus runs on every `go test`.
func FuzzReadCSV(f *testing.F) {
	// Seed corpus: the canonical header, valid rows, and near-misses.
	f.Add("kind,id,arrival,platform,x,y,value,radius,history\n")
	f.Add("kind,id,arrival,platform,x,y,value,radius,history\nworker,1,0,1,0,0,,1,2;3\n")
	f.Add("kind,id,arrival,platform,x,y,value,radius,history\nrequest,1,5,1,0.5,0.5,12,,\n")
	f.Add("kind,id,arrival,platform,x,y,value,radius,history\nalien,1,0,1,0,0,1,,\n")
	f.Add("kind,id,arrival,platform,x,y,value,radius,history\nworker,1,0,1,NaN,0,,1,\n")
	f.Add("")
	f.Add(",,,,,,,,\n")
	f.Add("kind,id\nworker,1\n")

	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejected cleanly
		}
		// Accepted input must round-trip.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, s); err != nil {
			t.Fatalf("accepted stream failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("serialized stream failed to parse: %v", err)
		}
		if back.Len() != s.Len() {
			t.Fatalf("round trip changed length: %d -> %d", s.Len(), back.Len())
		}
	})
}
