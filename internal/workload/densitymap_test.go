package workload

import (
	"bytes"
	"strings"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
)

func TestWriteDensityMapEmpty(t *testing.T) {
	s, err := core.NewStream(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDensityMap(&buf, s, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty stream") {
		t.Errorf("empty output: %q", buf.String())
	}
}

func TestWriteDensityMapShape(t *testing.T) {
	// A dense cluster of requests in the south-west corner and a single
	// worker in the north-east: the densest request glyph must appear in
	// the bottom-left of the request grid.
	var workers []*core.Worker
	var requests []*core.Request
	for i := 0; i < 50; i++ {
		requests = append(requests, &core.Request{
			ID: int64(i + 1), Arrival: 1,
			Loc: geo.Point{X: 0.1, Y: 0.1}, Value: 5, Platform: 1,
		})
	}
	workers = append(workers, &core.Worker{
		ID: 1, Arrival: 0, Loc: geo.Point{X: 9.9, Y: 9.9}, Radius: 1, Platform: 1,
	})
	s, err := core.NewStream(append(core.WorkerEvents(workers), core.RequestEvents(requests)...))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDensityMap(&buf, s, 10, 6); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // header + 6 grid rows (trailing blank trimmed)
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Hottest request cell '@' in the last grid row, first column region.
	bottom := lines[6]
	if !strings.Contains(bottom[:13], "@") {
		t.Errorf("dense request corner missing in bottom-left:\n%s", out)
	}
	// Worker glyph in the top row of the second (worker) grid.
	top := lines[1]
	half := strings.LastIndex(top, "|  |")
	if half < 0 || !strings.ContainsAny(top[half:], "@#%*+=-:.") {
		t.Errorf("worker missing from top of worker grid:\n%s", out)
	}
}

func TestWriteDensityMapMultiPlatform(t *testing.T) {
	cfg, err := Synthetic(200, 40, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Generate(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDensityMap(&buf, s, 20, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "platform 1") || !strings.Contains(out, "platform 2") {
		t.Errorf("missing platform sections:\n%s", out)
	}
}
