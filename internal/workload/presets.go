package workload

import (
	"errors"
	"fmt"
	"sort"

	"crossmatch/internal/core"
)

// ErrUnknownPreset is the sentinel wrapped by PresetFor and
// PresetConfig for dataset codes that match no preset; match it with
// errors.Is.
var ErrUnknownPreset = errors.New("unknown preset")

// Preset names the six real-dataset substitutes of Table III. Each
// preset describes a *pair* of platforms (DiDi-like = platform 1,
// Yueche-like = platform 2) sharing one city, because the paper's
// cooperative experiments always run the two platforms of a city-month
// together.
type Preset struct {
	// Name is the paper's dataset code, e.g. "RDC10+RYC10".
	Name string
	// City selects the spatial model.
	City string
	// R1, W1 are platform 1's counts; R2, W2 platform 2's (Table III).
	R1, W1, R2, W2 int
	// Radius is the service radius (1.0 km in every Table III dataset).
	Radius float64
}

// Presets returns the Table III dataset pairs at full paper scale.
// Counts are the paper's per-day averages.
func Presets() []Preset {
	return []Preset{
		{Name: "RDC10+RYC10", City: "chengdu", R1: 91321, W1: 9145, R2: 90589, W2: 7038, Radius: 1.0},
		{Name: "RDC11+RYC11", City: "chengdu", R1: 100973, W1: 11199, R2: 100448, W2: 9333, Radius: 1.0},
		{Name: "RDX11+RYX11", City: "xian", R1: 57611, W1: 2441, R2: 57638, W2: 2686, Radius: 1.0},
	}
}

// PresetByName looks a preset up by its dataset code.
func PresetByName(name string) (Preset, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}

// PresetFor is PresetByName with a typed error: unknown codes return an
// error wrapping ErrUnknownPreset that lists the known presets.
func PresetFor(name string) (Preset, error) {
	p, ok := PresetByName(name)
	if !ok {
		return Preset{}, fmt.Errorf("workload: %w %q (want one of %v)", ErrUnknownPreset, name, PresetNames())
	}
	return p, nil
}

// PresetConfig resolves a preset by name and scales it in one step — the
// shared preset-lookup path of the public API and the CLIs.
func PresetConfig(name string, scale float64) (Config, error) {
	p, err := PresetFor(name)
	if err != nil {
		return Config{}, err
	}
	return p.Config(scale)
}

// SyntheticPreset wraps the Table IV synthetic defaults in a Preset so
// harnesses that operate on presets (RunTable, the parallel-runner
// benchmarks) can target the synthetic workload too. It is not listed by
// Presets — the paper's tables are the city datasets.
func SyntheticPreset() Preset {
	return Preset{Name: "SYN2500+500", City: "synthetic", R1: 1250, W1: 250, R2: 1250, W2: 250, Radius: 1.0}
}

// PresetNames returns the dataset codes in canonical order.
func PresetNames() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// Config converts the preset into a generator configuration, scaled by
// scale in (0, 1] (1 = full Table III size; the benchmark harness runs
// smaller scales and documents them in EXPERIMENTS.md).
func (p Preset) Config(scale float64) (Config, error) {
	if scale <= 0 || scale > 1 {
		return Config{}, fmt.Errorf("workload: scale %v outside (0, 1]", scale)
	}
	appearances := PresetAppearances
	var pair CityPair
	switch p.City {
	case "chengdu":
		pair = ChengduPair()
	case "xian":
		pair = XianPair()
	case "synthetic":
		// The Table IV synthetic city: Chengdu-like geography with the
		// sweeps' lower re-appearance count (see SyntheticAppearances).
		pair = ChengduPair()
		appearances = SyntheticAppearances
	default:
		return Config{}, fmt.Errorf("workload: unknown city %q", p.City)
	}
	values := DefaultRealValues()
	n := func(x int) int {
		s := int(float64(x) * scale)
		if s < 1 && x > 0 {
			s = 1
		}
		return s
	}
	mk := func(id int, r, w int, reqSp, workSp SpatialModel) PlatformSpec {
		return PlatformSpec{
			ID:             platformID(id),
			Requests:       n(r),
			Workers:        n(w),
			Radius:         p.Radius,
			RequestSpatial: reqSp,
			WorkerSpatial:  workSp,
			Values:         values,
			Appearances:    appearances,
		}
	}
	return Config{Platforms: []PlatformSpec{
		mk(1, p.R1, p.W1, pair.P1Requests, pair.P1Workers),
		mk(2, p.R2, p.W2, pair.P2Requests, pair.P2Workers),
	}}, nil
}

// Synthetic builds the Table IV scalability configuration: two
// cooperating platforms that split |R| requests and |W| workers evenly
// (the paper: "for different cooperative platforms, we generate equal
// number of requests as well as equal number of workers ... picked up
// from RDC11 and RYC11"), over the Chengdu-like city, with the given
// service radius and value distribution ("real" or "normal").
func Synthetic(totalRequests, totalWorkers int, radius float64, valueDist string) (Config, error) {
	if totalRequests < 0 || totalWorkers < 0 {
		return Config{}, fmt.Errorf("workload: negative totals")
	}
	if radius <= 0 {
		return Config{}, fmt.Errorf("workload: radius %v must be positive", radius)
	}
	var values ValueModel
	switch valueDist {
	case "real", "":
		values = DefaultRealValues()
	case "normal":
		values = DefaultNormalValues()
	default:
		return Config{}, fmt.Errorf("workload: unknown value distribution %q (want real or normal)", valueDist)
	}
	pair := ChengduPair()
	mk := func(id int, r, w int, reqSp, workSp SpatialModel) PlatformSpec {
		return PlatformSpec{
			ID:             platformID(id),
			Requests:       r,
			Workers:        w,
			Radius:         radius,
			RequestSpatial: reqSp,
			WorkerSpatial:  workSp,
			Values:         values,
			Appearances:    SyntheticAppearances,
		}
	}
	return Config{Platforms: []PlatformSpec{
		mk(1, totalRequests/2, totalWorkers/2, pair.P1Requests, pair.P1Workers),
		mk(2, totalRequests-totalRequests/2, totalWorkers-totalWorkers/2, pair.P2Requests, pair.P2Workers),
	}}, nil
}

// SyntheticMulti generalizes Synthetic to n >= 2 cooperating platforms —
// the paper's model allows "several cooperative platforms" (Definition
// 2.3) though its evaluation uses two. Totals split evenly; platform i's
// demand concentrates on the city's ring hot spots assigned to it
// round-robin (hard support, tiny background), while every fleet follows
// total city demand — the n-way generalization of the Fig. 2 geography.
func SyntheticMulti(platforms, totalRequests, totalWorkers int, radius float64, valueDist string) (Config, error) {
	if platforms < 2 {
		return Config{}, fmt.Errorf("workload: need at least 2 platforms, got %d", platforms)
	}
	if totalRequests < 0 || totalWorkers < 0 {
		return Config{}, fmt.Errorf("workload: negative totals")
	}
	if radius <= 0 {
		return Config{}, fmt.Errorf("workload: radius %v must be positive", radius)
	}
	var values ValueModel
	switch valueDist {
	case "real", "":
		values = DefaultRealValues()
	case "normal":
		values = DefaultNormalValues()
	default:
		return Config{}, fmt.Errorf("workload: unknown value distribution %q (want real or normal)", valueDist)
	}
	city := chengduLikeCity()
	// Ring spots (all but the first, central one) are dealt round-robin.
	ring := city.Spots[1:]
	if len(ring) < platforms {
		return Config{}, fmt.Errorf("workload: city has %d ring hot spots, cannot host %d platforms", len(ring), platforms)
	}
	workerModel, err := NewHotspotMix(city.Region, city.Spots, DefaultPairConfig.WorkerBackground)
	if err != nil {
		return Config{}, err
	}

	var cfg Config
	for p := 0; p < platforms; p++ {
		var spots []Hotspot
		for j, s := range ring {
			if j%platforms == p {
				spots = append(spots, s)
			}
		}
		reqModel, err := NewHotspotMix(city.Region, spots, DefaultPairConfig.RequestBackground)
		if err != nil {
			return Config{}, err
		}
		r := totalRequests / platforms
		w := totalWorkers / platforms
		if p == platforms-1 { // remainder to the last platform
			r = totalRequests - r*(platforms-1)
			w = totalWorkers - w*(platforms-1)
		}
		cfg.Platforms = append(cfg.Platforms, PlatformSpec{
			ID:             platformID(p + 1),
			Requests:       r,
			Workers:        w,
			Radius:         radius,
			RequestSpatial: reqModel,
			WorkerSpatial:  workerModel,
			Values:         values,
			Appearances:    SyntheticAppearances,
		})
	}
	return cfg, nil
}

// SyntheticDefaults are Table IV's bold defaults: |R| = 2500, |W| = 500,
// rad = 1.0, value distribution "real".
func SyntheticDefaults() Config {
	cfg, err := Synthetic(2500, 500, 1.0, "real")
	if err != nil {
		panic(err) // static arguments; cannot fail
	}
	return cfg
}

// Appearance counts: how many times each physical worker re-joins the
// waiting list over a day (a taxi serves several trips per day; the
// paper's OFF row serves every one of RDC10's 91,321 requests with only
// 9,145 workers, pinning ~10 appearances per worker on the city
// datasets). The synthetic sweeps use fewer so that the |W| axis
// saturates near |W| = 1000 at |R| = 2500, as Fig. 5(e) reports.
const (
	PresetAppearances    = 10
	SyntheticAppearances = 4
)

// Table IV sweep axes.
var (
	// SweepRequests is Table IV's |R| axis.
	SweepRequests = []int{500, 1000, 2500, 5000, 10000, 20000, 50000, 100000}
	// SweepWorkers is Table IV's |W| axis.
	SweepWorkers = []int{100, 200, 500, 1000, 2500, 5000, 10000, 20000}
	// SweepRadius is Table IV's rad axis (km).
	SweepRadius = []float64{0.5, 1.0, 1.5, 2.0, 2.5}
)

func platformID(id int) core.PlatformID { return core.PlatformID(id) }
