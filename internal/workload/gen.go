package workload

import (
	"fmt"
	"math/rand"

	"crossmatch/internal/core"
)

// PlatformSpec describes one platform's share of a generated stream.
type PlatformSpec struct {
	ID       core.PlatformID
	Requests int
	Workers  int
	// Radius is every worker's service radius in km (Table III/IV use a
	// single radius per dataset).
	Radius float64
	// RequestSpatial and WorkerSpatial draw locations; when WorkerSpatial
	// is nil, workers share the request model (the common case — workers
	// gravitate to demand).
	RequestSpatial SpatialModel
	WorkerSpatial  SpatialModel
	// Values draws request values.
	Values ValueModel
	// HistoryValues, when set, draws worker history values i.i.d. from
	// this model. When nil, the generator uses the reservation-price
	// scheme: each worker gets a personal price anchor at
	// DefaultFrugality times the platform's typical request value
	// (jittered ±20% across workers), and its history scatters ±25%
	// around that anchor. Tight per-worker histories make the
	// Definition 3.1 acceptance curve steep, which is what yields the
	// paper's signature DemCOM behaviour: minimum payments around 70%
	// of the request value accepted only ~15-20% of the time.
	HistoryValues ValueModel
	// HistoryMin/HistoryMax bound the per-worker history length N of
	// Definition 3.1 (inclusive). Defaults 20..60 when both zero.
	HistoryMin, HistoryMax int
	// Arrivals draws arrival ticks (nil = uniform over the horizon, the
	// paper's randomized arrival order; see RushHour for a bimodal day).
	Arrivals ArrivalModel
	// Appearances is how many times each physical worker joins the
	// waiting list over the horizon (a driver returns to the pool after
	// completing each trip; the paper models each return as a fresh
	// worker vertex — its Table V OFF row serves all 91,321 requests
	// with 9,145 workers, which is only possible if workers appear
	// repeatedly). Workers stays the count of physical workers; each
	// generates Appearances worker vertices with fresh locations and
	// increasing arrival times. Default 1 (one-shot workers).
	Appearances int
}

// DefaultFrugality anchors worker reservation prices relative to the
// platform's typical request value: histories record the cheaper
// requests workers actually completed in the past, which calibrates the
// ~0.7 outer-payment rate the paper reports for DemCOM.
const DefaultFrugality = 0.75

func (s *PlatformSpec) validate() error {
	switch {
	case s.ID == core.NoPlatform:
		return fmt.Errorf("workload: platform spec missing ID")
	case s.Requests < 0 || s.Workers < 0:
		return fmt.Errorf("workload: platform %d: negative counts", s.ID)
	case s.Radius <= 0:
		return fmt.Errorf("workload: platform %d: radius %v must be positive", s.ID, s.Radius)
	case s.RequestSpatial == nil:
		return fmt.Errorf("workload: platform %d: missing request spatial model", s.ID)
	case s.Values == nil:
		return fmt.Errorf("workload: platform %d: missing value model", s.ID)
	case s.HistoryMin < 0 || s.HistoryMax < s.HistoryMin:
		return fmt.Errorf("workload: platform %d: bad history bounds [%d, %d]", s.ID, s.HistoryMin, s.HistoryMax)
	case s.Appearances < 0:
		return fmt.Errorf("workload: platform %d: negative appearances %d", s.ID, s.Appearances)
	default:
		return nil
	}
}

// Config describes a full multi-platform stream.
type Config struct {
	Platforms []PlatformSpec
	// Horizon is the number of arrival ticks the stream spans; arrivals
	// are placed uniformly at random over [0, Horizon). Defaults to
	// 4 * total arrivals when zero (sparse enough that ties are rare).
	Horizon core.Time
}

// MaxValue returns the largest value bound across platforms — the
// max(v_r) that RamCOM and Greedy-RT assume known a priori.
func (c *Config) MaxValue() float64 {
	maxV := 0.0
	for i := range c.Platforms {
		if v := c.Platforms[i].Values.Max(); v > maxV {
			maxV = v
		}
	}
	return maxV
}

// typicalValue estimates a value model's central tendency by averaging a
// fixed number of samples (model-agnostic; used to anchor worker
// reservation prices).
func typicalValue(m ValueModel, rng *rand.Rand) float64 {
	const n = 64
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += m.Sample(rng)
	}
	return sum / n
}

// arenaChunk sizes the generator's allocation arenas. Entities are
// handed out as pointers into fixed chunks, so one heap allocation
// amortizes over arenaChunk entities instead of costing one each — at
// scaling-city sizes (1M workers, 10M events) per-entity allocation
// dominates generation time and fragments the heap.
const arenaChunk = 4096

// arena hands out pointers into fixed-size chunks. Pointers stay valid
// forever: a chunk is never reallocated, only consumed.
type arena[T any] struct{ chunk []T }

func (a *arena[T]) next() *T {
	if len(a.chunk) == 0 {
		a.chunk = make([]T, arenaChunk)
	}
	p := &a.chunk[0]
	a.chunk = a.chunk[1:]
	return p
}

// floatArena carves history slices out of shared blocks. Histories are
// immutable after generation, so full-capacity sub-slices (no room to
// grow into a neighbour) are safe to share a backing array.
type floatArena struct{ buf []float64 }

func (a *floatArena) take(n int) []float64 {
	if n == 0 {
		return nil
	}
	if len(a.buf) < n {
		size := 16 * arenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]float64, size)
	}
	s := a.buf[:n:n]
	a.buf = a.buf[n:]
	return s
}

// ReorderUniform returns a copy of the stream whose entities keep their
// locations, values, radii and histories but receive fresh arrival times
// drawn uniformly over the same horizon — one sample from the random
// order model of Definition 2.8. Entities are cloned, so the original
// stream is untouched.
func ReorderUniform(s *core.Stream, seed int64) (*core.Stream, error) {
	rng := rand.New(rand.NewSource(seed))
	horizon := int64(4 * s.Len())
	if horizon == 0 {
		horizon = 1
	}
	events := make([]core.Event, 0, s.Len())
	for _, w := range s.Workers() {
		cl := *w
		cl.History = append([]float64(nil), w.History...)
		cl.Arrival = core.Time(rng.Int63n(horizon))
		events = append(events, core.Event{Time: cl.Arrival, Kind: core.WorkerArrival, Worker: &cl})
	}
	for _, r := range s.Requests() {
		cl := *r
		cl.Arrival = core.Time(rng.Int63n(horizon))
		events = append(events, core.Event{Time: cl.Arrival, Kind: core.RequestArrival, Request: &cl})
	}
	return core.NewStreamOwned(events)
}

// Generate builds the arrival stream. Deterministic given seed: entity
// IDs are assigned per platform in blocks, locations/values/arrival
// ticks drawn from one root generator.
func Generate(cfg Config, seed int64) (*core.Stream, error) {
	if len(cfg.Platforms) == 0 {
		return nil, fmt.Errorf("workload: no platforms configured")
	}
	totalArrivals := 0
	totalEvents := 0
	for i := range cfg.Platforms {
		s := &cfg.Platforms[i]
		if err := s.validate(); err != nil {
			return nil, err
		}
		totalArrivals += s.Requests + s.Workers
		app := s.Appearances
		if app == 0 {
			app = 1
		}
		totalEvents += s.Requests + s.Workers*app
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = core.Time(4 * totalArrivals)
		if horizon == 0 {
			horizon = 1
		}
	}

	rng := rand.New(rand.NewSource(seed))
	events := make([]core.Event, 0, totalEvents)
	var workers arena[core.Worker]
	var requests arena[core.Request]
	var hists floatArena
	nextWorkerID := int64(1)
	nextRequestID := int64(1)

	for i := range cfg.Platforms {
		s := cfg.Platforms[i]
		workerSpatial := s.WorkerSpatial
		if workerSpatial == nil {
			workerSpatial = s.RequestSpatial
		}
		histMin, histMax := s.HistoryMin, s.HistoryMax
		if histMin == 0 && histMax == 0 {
			histMin, histMax = 20, 60
		}
		var typical float64
		if s.HistoryValues == nil {
			typical = typicalValue(s.Values, rng)
		}

		appearances := s.Appearances
		if appearances == 0 {
			appearances = 1
		}
		arrivals := s.Arrivals
		if arrivals == nil {
			arrivals = UniformArrivals{}
		}
		for j := 0; j < s.Workers; j++ {
			n := histMin
			if histMax > histMin {
				n += rng.Intn(histMax - histMin + 1)
			}
			hist := hists.take(n)
			if s.HistoryValues != nil {
				for k := range hist {
					hist[k] = s.HistoryValues.Sample(rng)
				}
			} else {
				anchor := typical * DefaultFrugality * (0.8 + 0.4*rng.Float64())
				for k := range hist {
					hist[k] = anchor * (0.75 + 0.5*rng.Float64())
				}
			}
			// One physical worker: `appearances` pool joins at increasing
			// times and fresh locations, sharing the acceptance history.
			for a := 0; a < appearances; a++ {
				w := workers.next()
				*w = core.Worker{
					ID:       nextWorkerID,
					Arrival:  arrivals.Sample(rng, horizon),
					Loc:      workerSpatial.Sample(rng),
					Radius:   s.Radius,
					Platform: s.ID,
					History:  hist,
				}
				nextWorkerID++
				events = append(events, core.Event{Time: w.Arrival, Kind: core.WorkerArrival, Worker: w})
			}
		}
		for j := 0; j < s.Requests; j++ {
			r := requests.next()
			*r = core.Request{
				ID:       nextRequestID,
				Arrival:  arrivals.Sample(rng, horizon),
				Loc:      s.RequestSpatial.Sample(rng),
				Value:    s.Values.Sample(rng),
				Platform: s.ID,
			}
			nextRequestID++
			events = append(events, core.Event{Time: r.Arrival, Kind: core.RequestArrival, Request: r})
		}
	}
	return core.NewStreamOwned(events)
}
