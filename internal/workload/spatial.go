// Package workload generates the synthetic inputs of the evaluation.
//
// The paper's real datasets — DiDi GAIA and Yueche trip records for
// Chengdu and Xi'an (Table III) — are licence-gated and unavailable, so
// this package substitutes city models calibrated to the published
// aggregates: the request and worker counts of Table III, the
// request-to-worker ratios (~10 in Chengdu, ~25 in Xi'an), the 1 km
// service radius, and hot-spot spatial skew. The synthetic sweeps of
// Table IV (|R| from 500 to 100k, |W| from 100 to 20k, rad from 0.5 to
// 2.5, value distribution in {real, normal}) are generated directly.
//
// Everything is deterministic given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"crossmatch/internal/geo"
)

// SpatialModel draws locations for requests and workers.
type SpatialModel interface {
	// Sample returns one location.
	Sample(rng *rand.Rand) geo.Point
	// Bounds returns the region locations are drawn from.
	Bounds() geo.Rect
}

// UniformRect spreads locations uniformly over a rectangle.
type UniformRect struct {
	Rect geo.Rect
}

// NewUniformSquare returns a uniform model over a side x side km square
// anchored at the origin.
func NewUniformSquare(side float64) UniformRect {
	return UniformRect{Rect: geo.NewRect(geo.Point{}, geo.Point{X: side, Y: side})}
}

// Sample implements SpatialModel.
func (u UniformRect) Sample(rng *rand.Rand) geo.Point {
	return geo.Point{
		X: u.Rect.Min.X + rng.Float64()*u.Rect.Width(),
		Y: u.Rect.Min.Y + rng.Float64()*u.Rect.Height(),
	}
}

// Bounds implements SpatialModel.
func (u UniformRect) Bounds() geo.Rect { return u.Rect }

// Hotspot is one Gaussian cluster of a city model.
type Hotspot struct {
	Center geo.Point
	Sigma  float64 // standard deviation, km
	Weight float64 // relative mass
}

// HotspotMix models a city as a weighted mixture of Gaussian hot spots
// over a bounding rectangle (downtown cores, transport hubs), plus a
// uniform background component. It reproduces the non-uniform
// distribution of requests and workers that motivates COM (Fig. 2).
type HotspotMix struct {
	Region     geo.Rect
	Spots      []Hotspot
	Background float64 // probability mass of the uniform background
	total      float64
}

// NewHotspotMix validates and returns the mixture.
func NewHotspotMix(region geo.Rect, spots []Hotspot, background float64) (*HotspotMix, error) {
	if !region.Valid() || region.Area() == 0 {
		return nil, fmt.Errorf("workload: invalid region %v", region)
	}
	if background < 0 || background > 1 {
		return nil, fmt.Errorf("workload: background mass %v outside [0,1]", background)
	}
	if len(spots) == 0 && background == 0 {
		return nil, fmt.Errorf("workload: mixture has no mass")
	}
	total := 0.0
	for i, s := range spots {
		if s.Sigma <= 0 || s.Weight <= 0 {
			return nil, fmt.Errorf("workload: hotspot %d: sigma %v and weight %v must be positive", i, s.Sigma, s.Weight)
		}
		if !region.Contains(s.Center) {
			return nil, fmt.Errorf("workload: hotspot %d center %v outside region", i, s.Center)
		}
		total += s.Weight
	}
	return &HotspotMix{Region: region, Spots: spots, Background: background, total: total}, nil
}

// Sample implements SpatialModel: choose background or a spot by weight,
// then draw (clamped to the region so every location is in bounds).
func (m *HotspotMix) Sample(rng *rand.Rand) geo.Point {
	if rng.Float64() < m.Background || len(m.Spots) == 0 {
		return UniformRect{m.Region}.Sample(rng)
	}
	pick := rng.Float64() * m.total
	spot := m.Spots[len(m.Spots)-1]
	for _, s := range m.Spots {
		if pick < s.Weight {
			spot = s
			break
		}
		pick -= s.Weight
	}
	p := geo.Point{
		X: spot.Center.X + rng.NormFloat64()*spot.Sigma,
		Y: spot.Center.Y + rng.NormFloat64()*spot.Sigma,
	}
	return m.Region.ClosestPoint(p)
}

// Bounds implements SpatialModel.
func (m *HotspotMix) Bounds() geo.Rect { return m.Region }

// TwoRegionSkew reproduces the motivating scenario of Fig. 2: the city
// splits into a west and an east half, and each platform's mass is
// skewed to opposite halves — platform A's requests concentrate where
// platform B's workers do, and vice versa. Skew in [0.5, 1] is the
// probability of drawing from the "home" half (0.5 = uniform).
type TwoRegionSkew struct {
	Region geo.Rect
	// WestBias is the probability of sampling the western half.
	WestBias float64
}

// NewTwoRegionSkew validates and returns the model.
func NewTwoRegionSkew(region geo.Rect, westBias float64) (*TwoRegionSkew, error) {
	if !region.Valid() || region.Area() == 0 {
		return nil, fmt.Errorf("workload: invalid region %v", region)
	}
	if westBias < 0 || westBias > 1 {
		return nil, fmt.Errorf("workload: west bias %v outside [0,1]", westBias)
	}
	return &TwoRegionSkew{Region: region, WestBias: westBias}, nil
}

// Sample implements SpatialModel.
func (m *TwoRegionSkew) Sample(rng *rand.Rand) geo.Point {
	midX := (m.Region.Min.X + m.Region.Max.X) / 2
	var half geo.Rect
	if rng.Float64() < m.WestBias {
		half = geo.Rect{Min: m.Region.Min, Max: geo.Point{X: midX, Y: m.Region.Max.Y}}
	} else {
		half = geo.Rect{Min: geo.Point{X: midX, Y: m.Region.Min.Y}, Max: m.Region.Max}
	}
	return UniformRect{half}.Sample(rng)
}

// Bounds implements SpatialModel.
func (m *TwoRegionSkew) Bounds() geo.Rect { return m.Region }

// CityPair holds complementary per-platform spatial models: platform 1's
// requests concentrate where platform 2's workers do and vice versa —
// the market-share geography of Fig. 2 that makes cross-platform
// borrowing profitable. Without this complementarity borrowing is
// zero-sum: a lent worker's full value is lost to its own platform while
// the borrower only books v - v'.
type CityPair struct {
	P1Requests, P1Workers SpatialModel
	P2Requests, P2Workers SpatialModel
}

// PairConfig tunes how a base city mixture splits into the per-platform
// models. Requests get a strong side bias over a near-zero background —
// each platform's demand has hard geographic gaps, as real per-company
// trip data does — while workers get a mild opposite bias over a wide
// cruising background. The combination keeps a share of every
// platform's fleet permanently out of reach of its own demand (the
// stranded capacity COM monetizes) at every request volume, which is
// what sustains the paper's Fig. 5(a) ordering up to |R| = 100k.
type PairConfig struct {
	// RequestBias multiplies home-side hotspot weights for requests
	// (and divides away-side ones).
	RequestBias float64
	// WorkerBias is the analogous (mild, opposite-side) worker skew.
	WorkerBias float64
	// RequestBackground is the uniform mass of request locations.
	RequestBackground float64
	// WorkerBackground is the uniform mass of worker locations.
	WorkerBackground float64
}

// DefaultPairConfig is calibrated against the paper's evaluation shapes
// (see EXPERIMENTS.md): demand is effectively hard-split by side
// (platform 1's users request almost exclusively in its home hot spots),
// while both fleets follow the *total* city demand (WorkerBias 1 — a
// driver cruises where trips are, regardless of which app the trips come
// from). Roughly the away-side half of each fleet therefore never sees
// its own platform's demand, at any request volume — the persistent
// stranded capacity that cross-platform borrowing monetizes.
var DefaultPairConfig = PairConfig{
	RequestBias:       1000,
	WorkerBias:        1.0,
	RequestBackground: 0.005,
	WorkerBackground:  0.15,
}

// pairFromMix derives the four per-platform models from one city
// mixture: platform 1's requests concentrate in western hot spots while
// its workers lean east (platform 2 mirrored), per cfg.
func pairFromMix(city *HotspotMix, cfg PairConfig) CityPair {
	midX := (city.Region.Min.X + city.Region.Max.X) / 2
	reweight := func(westFactor, background float64) *HotspotMix {
		spots := make([]Hotspot, len(city.Spots))
		copy(spots, city.Spots)
		for i := range spots {
			if spots[i].Center.X < midX {
				spots[i].Weight *= westFactor
			} else {
				spots[i].Weight /= westFactor
			}
		}
		m, err := NewHotspotMix(city.Region, spots, background)
		if err != nil {
			panic(err) // reweighting preserves validity
		}
		return m
	}
	return CityPair{
		P1Requests: reweight(cfg.RequestBias, cfg.RequestBackground),
		P1Workers:  reweight(1/cfg.WorkerBias, cfg.WorkerBackground),
		P2Requests: reweight(1/cfg.RequestBias, cfg.RequestBackground),
		P2Workers:  reweight(cfg.WorkerBias, cfg.WorkerBackground),
	}
}

// ChengduPair returns the Chengdu-like complementary city pair.
func ChengduPair() CityPair { return pairFromMix(chengduLikeCity(), DefaultPairConfig) }

// XianPair returns the Xi'an-like complementary city pair.
func XianPair() CityPair { return pairFromMix(xianLikeCity(), DefaultPairConfig) }

// chengduLikeCity builds the hot-spot mixture used by the Chengdu-like
// presets: a 30x30 km region with a dominant downtown core and a ring of
// secondary centres, 20% uniform background.
func chengduLikeCity() *HotspotMix {
	region := geo.NewRect(geo.Point{}, geo.Point{X: 30, Y: 30})
	center := geo.Point{X: 15, Y: 15}
	spots := []Hotspot{{Center: center, Sigma: 2.5, Weight: 3}}
	for i := 0; i < 6; i++ {
		ang := 2 * math.Pi * float64(i) / 6
		spots = append(spots, Hotspot{
			Center: geo.Point{X: center.X + 8*math.Cos(ang), Y: center.Y + 8*math.Sin(ang)},
			Sigma:  1.5,
			Weight: 1,
		})
	}
	m, err := NewHotspotMix(region, spots, 0.2)
	if err != nil {
		panic(err) // static construction; cannot fail
	}
	return m
}

// xianLikeCity is a tighter, more monocentric mixture (Xi'an's walled
// core), over 25x25 km with 15% background.
func xianLikeCity() *HotspotMix {
	region := geo.NewRect(geo.Point{}, geo.Point{X: 25, Y: 25})
	center := geo.Point{X: 12.5, Y: 12.5}
	spots := []Hotspot{{Center: center, Sigma: 1.8, Weight: 4}}
	for i := 0; i < 4; i++ {
		ang := math.Pi/4 + 2*math.Pi*float64(i)/4
		spots = append(spots, Hotspot{
			Center: geo.Point{X: center.X + 6*math.Cos(ang), Y: center.Y + 6*math.Sin(ang)},
			Sigma:  1.2,
			Weight: 1,
		})
	}
	m, err := NewHotspotMix(region, spots, 0.15)
	if err != nil {
		panic(err)
	}
	return m
}
