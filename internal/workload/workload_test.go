package workload

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
)

func TestUniformRectSamplesInBounds(t *testing.T) {
	m := NewUniformSquare(10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := m.Sample(rng)
		if !m.Bounds().Contains(p) {
			t.Fatalf("sample %v outside bounds", p)
		}
	}
}

func TestHotspotMixValidation(t *testing.T) {
	region := geo.NewRect(geo.Point{}, geo.Point{X: 10, Y: 10})
	good := []Hotspot{{Center: geo.Point{X: 5, Y: 5}, Sigma: 1, Weight: 1}}
	if _, err := NewHotspotMix(region, good, 0.1); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
	cases := []struct {
		name  string
		spots []Hotspot
		bg    float64
	}{
		{"no mass", nil, 0},
		{"bad sigma", []Hotspot{{Center: geo.Point{X: 5, Y: 5}, Sigma: 0, Weight: 1}}, 0},
		{"bad weight", []Hotspot{{Center: geo.Point{X: 5, Y: 5}, Sigma: 1, Weight: -1}}, 0},
		{"center outside", []Hotspot{{Center: geo.Point{X: 50, Y: 5}, Sigma: 1, Weight: 1}}, 0},
		{"bad background", good, 1.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewHotspotMix(region, c.spots, c.bg); err == nil {
				t.Error("accepted")
			}
		})
	}
}

func TestHotspotMixConcentratesMass(t *testing.T) {
	region := geo.NewRect(geo.Point{}, geo.Point{X: 20, Y: 20})
	center := geo.Point{X: 10, Y: 10}
	m, err := NewHotspotMix(region, []Hotspot{{Center: center, Sigma: 1, Weight: 1}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	nearCount := 0
	const n = 5000
	for i := 0; i < n; i++ {
		p := m.Sample(rng)
		if !region.Contains(p) {
			t.Fatalf("sample %v outside region", p)
		}
		if p.Dist(center) < 3 {
			nearCount++
		}
	}
	// ~90% of mass is within 3 sigma of the single hotspot.
	if frac := float64(nearCount) / n; frac < 0.7 {
		t.Errorf("only %v of samples near hotspot", frac)
	}
}

func TestTwoRegionSkew(t *testing.T) {
	region := geo.NewRect(geo.Point{}, geo.Point{X: 10, Y: 10})
	if _, err := NewTwoRegionSkew(region, 1.5); err == nil {
		t.Error("bad bias accepted")
	}
	m, err := NewTwoRegionSkew(region, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	west := 0
	const n = 5000
	for i := 0; i < n; i++ {
		p := m.Sample(rng)
		if !region.Contains(p) {
			t.Fatalf("sample outside region")
		}
		if p.X < 5 {
			west++
		}
	}
	if frac := float64(west) / n; math.Abs(frac-0.9) > 0.03 {
		t.Errorf("west fraction = %v, want ~0.9", frac)
	}
}

func TestValueModels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	models := map[string]ValueModel{
		"real":    DefaultRealValues(),
		"normal":  DefaultNormalValues(),
		"uniform": mustUniform(t),
		"scaled":  Scaled{Base: DefaultRealValues(), Factor: 0.5},
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 2000; i++ {
				v := m.Sample(rng)
				if v <= 0 || v > m.Max()+1e-9 || math.IsNaN(v) {
					t.Fatalf("sample %v outside (0, %v]", v, m.Max())
				}
			}
		})
	}
}

func mustUniform(t *testing.T) UniformValues {
	t.Helper()
	u, err := NewUniformValues(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestValueModelValidation(t *testing.T) {
	if _, err := NewNormalValues(0, 1, 1, 10); err == nil {
		t.Error("bad normal accepted")
	}
	if _, err := NewNormalValues(5, -1, 1, 10); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := NewRealValues(1, 0.5, 5, 2); err == nil {
		t.Error("cap < min accepted")
	}
	if _, err := NewUniformValues(0, 5); err == nil {
		t.Error("zero min accepted")
	}
}

func TestRealValuesHeavierTailThanNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	real, normal := DefaultRealValues(), DefaultNormalValues()
	const n = 20000
	highReal, highNormal := 0, 0
	for i := 0; i < n; i++ {
		if real.Sample(rng) > 50 {
			highReal++
		}
		if normal.Sample(rng) > 50 {
			highNormal++
		}
	}
	if highReal <= highNormal {
		t.Errorf("real tail (%d) not heavier than normal tail (%d)", highReal, highNormal)
	}
}

func TestGenerateBasicShape(t *testing.T) {
	cfg, err := Synthetic(100, 20, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Requests()); got != 100 {
		t.Errorf("requests = %d, want 100", got)
	}
	if got := len(s.Workers()); got != 20*SyntheticAppearances {
		t.Errorf("worker vertices = %d, want %d", got, 20*SyntheticAppearances)
	}
	plats := s.Platforms()
	if len(plats) != 2 {
		t.Fatalf("platforms = %v, want 2", plats)
	}
	// Even split between the two platforms.
	if n := len(s.FilterPlatform(1).Requests()); n != 50 {
		t.Errorf("platform 1 requests = %d, want 50", n)
	}
	if n := len(s.FilterPlatform(2).Workers()); n != 10*SyntheticAppearances {
		t.Errorf("platform 2 worker vertices = %d, want %d", n, 10*SyntheticAppearances)
	}
	for _, w := range s.Workers() {
		if w.Radius != 1.0 {
			t.Fatalf("worker radius = %v", w.Radius)
		}
		if len(w.History) < 20 || len(w.History) > 60 {
			t.Fatalf("history length %d outside default [20,60]", len(w.History))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SyntheticDefaults()
	a, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events() {
		ea, eb := a.Events()[i], b.Events()[i]
		if ea.Time != eb.Time || ea.Kind != eb.Kind {
			t.Fatalf("event %d differs", i)
		}
		if ea.Kind == core.RequestArrival && ea.Request.Value != eb.Request.Value {
			t.Fatalf("request value differs at %d", i)
		}
	}
	c, err := Generate(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Events() {
		ea, ec := a.Events()[i], c.Events()[i]
		if ea.Time != ec.Time || ea.Kind != ec.Kind {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}, 1); err == nil {
		t.Error("empty config accepted")
	}
	bad := Config{Platforms: []PlatformSpec{{ID: 1, Requests: 10, Workers: 5, Radius: 0,
		RequestSpatial: NewUniformSquare(10), Values: DefaultRealValues()}}}
	if _, err := Generate(bad, 1); err == nil {
		t.Error("zero radius accepted")
	}
	noSpatial := Config{Platforms: []PlatformSpec{{ID: 1, Requests: 10, Workers: 5, Radius: 1,
		Values: DefaultRealValues()}}}
	if _, err := Generate(noSpatial, 1); err == nil {
		t.Error("missing spatial model accepted")
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 3 {
		t.Fatalf("presets = %d, want 3", len(ps))
	}
	if _, ok := PresetByName("RDC10+RYC10"); !ok {
		t.Error("RDC10+RYC10 missing")
	}
	if _, ok := PresetByName("nope"); ok {
		t.Error("unknown preset found")
	}
	if names := PresetNames(); len(names) != 3 {
		t.Errorf("names = %v", names)
	}
	// Xi'an preset must have the worker-scarce ratio (~25x rather than ~10x).
	xian, _ := PresetByName("RDX11+RYX11")
	if ratio := float64(xian.R1) / float64(xian.W1); ratio < 20 {
		t.Errorf("Xi'an ratio = %v, want > 20", ratio)
	}
}

func TestPresetConfigScaling(t *testing.T) {
	p, _ := PresetByName("RDC10+RYC10")
	cfg, err := p.Config(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Platforms[0].Requests; got != 913 {
		t.Errorf("scaled requests = %d, want 913", got)
	}
	if got := cfg.Platforms[1].Workers; got != 70 {
		t.Errorf("scaled workers = %d, want 70", got)
	}
	if _, err := p.Config(0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := p.Config(2); err == nil {
		t.Error("scale 2 accepted")
	}
	s, err := Generate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Each physical worker appears PresetAppearances times.
	want := 913 + 905 + (91+70)*PresetAppearances
	if s.Len() != want {
		t.Errorf("stream len = %d, want %d", s.Len(), want)
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := Synthetic(-1, 10, 1, "real"); err == nil {
		t.Error("negative requests accepted")
	}
	if _, err := Synthetic(10, 10, 0, "real"); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := Synthetic(10, 10, 1, "weird"); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := Synthetic(10, 10, 1, "normal"); err != nil {
		t.Error("normal distribution rejected")
	}
}

func TestConfigMaxValue(t *testing.T) {
	cfg := SyntheticDefaults()
	if got := cfg.MaxValue(); got != 100 {
		t.Errorf("MaxValue = %v, want 100 (value cap)", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg, err := Synthetic(40, 10, 1.0, "real")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Generate(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("round trip len %d != %d", back.Len(), s.Len())
	}
	for i := range s.Events() {
		a, b := s.Events()[i], back.Events()[i]
		if a.Kind != b.Kind || a.Time != b.Time {
			t.Fatalf("event %d differs", i)
		}
		switch a.Kind {
		case core.WorkerArrival:
			if a.Worker.ID != b.Worker.ID || a.Worker.Loc != b.Worker.Loc ||
				a.Worker.Radius != b.Worker.Radius || len(a.Worker.History) != len(b.Worker.History) {
				t.Fatalf("worker %d differs after round trip", a.Worker.ID)
			}
		case core.RequestArrival:
			if a.Request.ID != b.Request.ID || a.Request.Value != b.Request.Value || a.Request.Loc != b.Request.Loc {
				t.Fatalf("request %d differs after round trip", a.Request.ID)
			}
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"bogus,header\n",
		"kind,id,arrival,platform,x,y,value,radius,history\nworker,x,0,1,0,0,,1,\n",
		"kind,id,arrival,platform,x,y,value,radius,history\nalien,1,0,1,0,0,5,,\n",
		"kind,id,arrival,platform,x,y,value,radius,history\nrequest,1,0,1,0,0,notanumber,,\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
