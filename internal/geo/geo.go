// Package geo provides the 2-D geometry primitives used throughout the
// cross online matching (COM) system: points, distances, circles (worker
// service ranges) and axis-aligned rectangles (index cells and city
// bounding boxes).
//
// The paper models locations as points in a Euclidean 2-D plane and a
// worker's service range as a disk of radius rad centered at the worker
// (Definition 2.2). All coordinates in this package are kilometres in a
// local tangent plane; package workload converts city-scale latitude and
// longitude extents into this plane once, up front, so the hot matching
// path never pays for trigonometry.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the 2-D plane. Units are kilometres.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison primitive on hot paths.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4f, %.4f)", p.X, p.Y) }

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Circle is a disk: the service range of a worker (Definition 2.2: a
// worker can serve exactly the requests whose location falls inside it).
type Circle struct {
	Center Point
	Radius float64
}

// Contains reports whether p lies inside or on the boundary of c.
// A zero- or negative-radius circle contains only its own center
// (negative radii arise from invalid input and are rejected upstream,
// but Contains is total so indexes never misbehave on them).
func (c Circle) Contains(p Point) bool {
	if c.Radius < 0 {
		return false
	}
	return c.Center.Dist2(p) <= c.Radius*c.Radius
}

// Bounds returns the tight axis-aligned bounding rectangle of c.
func (c Circle) Bounds() Rect {
	r := math.Max(c.Radius, 0)
	return Rect{
		Min: Point{c.Center.X - r, c.Center.Y - r},
		Max: Point{c.Center.X + r, c.Center.Y + r},
	}
}

// Intersects reports whether the two disks share at least one point.
func (c Circle) Intersects(d Circle) bool {
	if c.Radius < 0 || d.Radius < 0 {
		return false
	}
	sum := c.Radius + d.Radius
	return c.Center.Dist2(d.Center) <= sum*sum
}

// Rect is an axis-aligned rectangle, closed on all sides. The zero Rect
// is the single point at the origin.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// Intersects reports whether the two rectangles share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r; degenerate rectangles have zero area.
func (r Rect) Area() float64 {
	w, h := r.Width(), r.Height()
	if w < 0 || h < 0 {
		return 0
	}
	return w * h
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Valid reports whether Min is component-wise <= Max and all coordinates
// are finite.
func (r Rect) Valid() bool {
	return r.Min.IsFinite() && r.Max.IsFinite() &&
		r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Expand returns r grown by d on every side. Negative d shrinks; the
// result may become invalid, which Valid detects.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// ClosestPoint returns the point of r closest to p (p itself when inside).
func (r Rect) ClosestPoint(p Point) Point {
	return Point{clamp(p.X, r.Min.X, r.Max.X), clamp(p.Y, r.Min.Y, r.Max.Y)}
}

// DistToPoint returns the distance from p to the rectangle (zero inside).
func (r Rect) DistToPoint(p Point) float64 {
	return r.ClosestPoint(p).Dist(p)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// KmPerDegLat is the approximately constant north-south extent of one
// degree of latitude.
const KmPerDegLat = 111.32

// KmPerDegLon returns the east-west extent of one degree of longitude at
// the given latitude (degrees).
func KmPerDegLon(latDeg float64) float64 {
	return KmPerDegLat * math.Cos(latDeg*math.Pi/180)
}

// Projection maps geographic coordinates (degrees) to the local tangent
// plane (kilometres) around an origin latitude/longitude. It is the only
// place the system touches geographic coordinates; everything downstream
// is planar, exactly as the paper's Euclidean model assumes.
type Projection struct {
	OriginLat, OriginLon float64
	kmPerLon             float64
}

// NewProjection returns a tangent-plane projection centered at the given
// origin in degrees.
func NewProjection(originLat, originLon float64) Projection {
	return Projection{
		OriginLat: originLat,
		OriginLon: originLon,
		kmPerLon:  KmPerDegLon(originLat),
	}
}

// ToPlane converts a latitude/longitude in degrees to plane kilometres.
func (pr Projection) ToPlane(lat, lon float64) Point {
	return Point{
		X: (lon - pr.OriginLon) * pr.kmPerLon,
		Y: (lat - pr.OriginLat) * KmPerDegLat,
	}
}

// ToGeo converts a plane point back to latitude/longitude degrees.
func (pr Projection) ToGeo(p Point) (lat, lon float64) {
	return pr.OriginLat + p.Y/KmPerDegLat, pr.OriginLon + p.X/pr.kmPerLon
}
