package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
		{"symmetric", Point{7, -2}, Point{-3, 5}, math.Sqrt(100 + 49)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := tt.q.Dist(tt.p); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dist not symmetric: %v vs %v", got, tt.want)
			}
		})
	}
}

func TestDist2MatchesDistSquared(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Constrain to a sane coordinate range; quick generates huge values
		// whose squares overflow the comparison tolerance.
		p := Point{math.Mod(ax, 1e3), math.Mod(ay, 1e3)}
		q := Point{math.Mod(bx, 1e3), math.Mod(by, 1e3)}
		d := p.Dist(q)
		return almostEqual(p.Dist2(q), d*d, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{math.Mod(ax, 1e3), math.Mod(ay, 1e3)}
		b := Point{math.Mod(bx, 1e3), math.Mod(by, 1e3)}
		c := Point{math.Mod(cx, 1e3), math.Mod(cy, 1e3)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestPointIsFinite(t *testing.T) {
	if !(Point{1, 2}).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{Center: Point{0, 0}, Radius: 2}
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"center", Point{0, 0}, true},
		{"inside", Point{1, 1}, true},
		{"on boundary", Point{2, 0}, true},
		{"outside", Point{2.001, 0}, false},
		{"diagonal outside", Point{1.5, 1.5}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestCircleContainsDegenerate(t *testing.T) {
	zero := Circle{Center: Point{1, 1}, Radius: 0}
	if !zero.Contains(Point{1, 1}) {
		t.Error("zero-radius circle must contain its center")
	}
	if zero.Contains(Point{1, 1.0001}) {
		t.Error("zero-radius circle contains a distinct point")
	}
	neg := Circle{Center: Point{0, 0}, Radius: -1}
	if neg.Contains(Point{0, 0}) {
		t.Error("negative-radius circle contains a point")
	}
}

func TestCircleBounds(t *testing.T) {
	c := Circle{Center: Point{1, -1}, Radius: 2}
	b := c.Bounds()
	want := Rect{Min: Point{-1, -3}, Max: Point{3, 1}}
	if b != want {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
	if nb := (Circle{Center: Point{0, 0}, Radius: -5}).Bounds(); nb != (Rect{}) {
		t.Errorf("negative radius bounds = %v, want zero rect", nb)
	}
}

func TestCircleIntersects(t *testing.T) {
	a := Circle{Point{0, 0}, 1}
	tests := []struct {
		name string
		b    Circle
		want bool
	}{
		{"overlapping", Circle{Point{1, 0}, 1}, true},
		{"tangent", Circle{Point{2, 0}, 1}, true},
		{"disjoint", Circle{Point{2.5, 0}, 1}, false},
		{"contained", Circle{Point{0, 0}, 0.1}, true},
		{"negative radius", Circle{Point{0, 0}, -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(a); got != tt.want {
				t.Errorf("Intersects not symmetric")
			}
		})
	}
}

func TestCircleContainsImpliesBoundsContains(t *testing.T) {
	f := func(cx, cy, r, px, py float64) bool {
		c := Circle{Point{math.Mod(cx, 100), math.Mod(cy, 100)}, math.Abs(math.Mod(r, 50))}
		p := Point{math.Mod(px, 100), math.Mod(py, 100)}
		if c.Contains(p) {
			return c.Bounds().Contains(p)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{3, -1}, Point{-2, 4})
	want := Rect{Min: Point{-2, -1}, Max: Point{3, 4}}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Error("normalized rect must be valid")
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 2})
	for _, p := range []Point{{0, 0}, {2, 2}, {1, 1}, {0, 2}} {
		if !r.Contains(p) {
			t.Errorf("should contain %v", p)
		}
	}
	for _, p := range []Point{{-0.1, 1}, {1, 2.1}, {3, 3}} {
		if r.Contains(p) {
			t.Errorf("should not contain %v", p)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlap", NewRect(Point{1, 1}, Point{3, 3}), true},
		{"touch edge", NewRect(Point{2, 0}, Point{4, 2}), true},
		{"touch corner", NewRect(Point{2, 2}, Point{3, 3}), true},
		{"disjoint x", NewRect(Point{2.1, 0}, Point{3, 2}), false},
		{"disjoint y", NewRect(Point{0, 2.1}, Point{2, 3}), false},
		{"contained", NewRect(Point{0.5, 0.5}, Point{1.5, 1.5}), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(a); got != tt.want {
				t.Error("Intersects not symmetric")
			}
		})
	}
}

func TestRectGeometry(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{4, 2})
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Errorf("w/h/area = %v/%v/%v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != (Point{2, 1}) {
		t.Errorf("Center = %v", r.Center())
	}
	e := r.Expand(1)
	if e != NewRect(Point{-1, -1}, Point{5, 3}) {
		t.Errorf("Expand = %v", e)
	}
	if shrunk := r.Expand(-3); shrunk.Valid() {
		t.Error("over-shrunk rect should be invalid")
	}
}

func TestRectClosestPointAndDist(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 2})
	tests := []struct {
		p        Point
		wantPt   Point
		wantDist float64
	}{
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 1}, Point{0, 1}, 1},
		{Point{3, 3}, Point{2, 2}, math.Sqrt2},
		{Point{1, -2}, Point{1, 0}, 2},
	}
	for _, tt := range tests {
		if got := r.ClosestPoint(tt.p); got != tt.wantPt {
			t.Errorf("ClosestPoint(%v) = %v, want %v", tt.p, got, tt.wantPt)
		}
		if got := r.DistToPoint(tt.p); !almostEqual(got, tt.wantDist, 1e-12) {
			t.Errorf("DistToPoint(%v) = %v, want %v", tt.p, got, tt.wantDist)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := NewRect(Point{0, 0}, Point{10, 10})
	if !outer.ContainsRect(NewRect(Point{1, 1}, Point{9, 9})) {
		t.Error("should contain inner rect")
	}
	if !outer.ContainsRect(outer) {
		t.Error("should contain itself")
	}
	if outer.ContainsRect(NewRect(Point{5, 5}, Point{11, 9})) {
		t.Error("should not contain overflowing rect")
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(30.66, 104.06) // Chengdu
	lat, lon := 30.70, 104.10
	p := pr.ToPlane(lat, lon)
	gotLat, gotLon := pr.ToGeo(p)
	if !almostEqual(gotLat, lat, 1e-9) || !almostEqual(gotLon, lon, 1e-9) {
		t.Errorf("round trip = (%v, %v), want (%v, %v)", gotLat, gotLon, lat, lon)
	}
}

func TestProjectionScale(t *testing.T) {
	pr := NewProjection(0, 0) // equator: 1 deg lon == 1 deg lat == ~111.32 km
	p := pr.ToPlane(1, 1)
	if !almostEqual(p.X, KmPerDegLat, 1e-9) || !almostEqual(p.Y, KmPerDegLat, 1e-9) {
		t.Errorf("equator projection = %v", p)
	}
	// At 60N one degree of longitude is half as wide.
	pr60 := NewProjection(60, 0)
	p60 := pr60.ToPlane(60, 1)
	if !almostEqual(p60.X, KmPerDegLat/2, 1e-6) {
		t.Errorf("60N lon scale = %v, want %v", p60.X, KmPerDegLat/2)
	}
}

func TestKmPerDegLon(t *testing.T) {
	if got := KmPerDegLon(0); !almostEqual(got, KmPerDegLat, 1e-9) {
		t.Errorf("at equator = %v", got)
	}
	if got := KmPerDegLon(90); !almostEqual(got, 0, 1e-9) {
		t.Errorf("at pole = %v", got)
	}
}
