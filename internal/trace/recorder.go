package trace

import (
	"math/rand"
	"time"

	"crossmatch/internal/core"
)

// seedMix decorrelates per-(run, platform) sampling streams (the signed
// bit pattern of the 64-bit golden-ratio constant, as in internal/fault).
const seedMix = int64(-0x61c8864680b583eb)

// Recorder is one platform's conduit into the tracer for one run.
// Exactly one goroutine — the one driving the platform's matcher — may
// use a recorder, matching the hub view contract; committed spans go to
// the tracer's shared (locked) per-platform ring, so many runs and
// platforms can share one tracer. A nil *Recorder is a no-op.
type Recorder struct {
	tr      *Tracer
	ring    *ring
	pid     core.PlatformID
	alg     string
	runSeed int64
	sample  float64
	rng     *rand.Rand

	active bool
	cur    Span
	faults []FaultEvent
}

// Recorder returns the recorder binding (runSeed, pid, alg) to the
// tracer. sampleOverride, when positive, replaces the tracer's default
// sample rate for this run (clamped to 1); when negative it disables
// recording for this run; zero inherits the tracer's rate. A nil tracer
// returns a nil recorder.
func (t *Tracer) Recorder(runSeed int64, pid core.PlatformID, alg string, sampleOverride float64) *Recorder {
	if t == nil {
		return nil
	}
	sample := t.opts.Sample
	if sampleOverride > 0 {
		sample = sampleOverride
		if sample > 1 {
			sample = 1
		}
	} else if sampleOverride < 0 {
		sample = -1
	}
	rc := &Recorder{
		tr:      t,
		ring:    t.ringFor(pid),
		pid:     pid,
		alg:     alg,
		runSeed: runSeed,
		sample:  sample,
	}
	if sample > 0 && sample < 1 {
		rc.rng = rand.New(rand.NewSource(t.opts.Seed ^ runSeed ^ (int64(pid)+1)*seedMix))
	}
	return rc
}

// Begin opens a span for the request, or returns nil when the recorder
// is nil, recording is disabled, or the request is not sampled. Every
// *Span method is a nil-receiver no-op, so callers instrument
// unconditionally.
func (rc *Recorder) Begin(r *core.Request) *Span {
	if rc == nil || rc.sample <= 0 {
		return nil
	}
	if rc.sample < 1 && rc.rng.Float64() >= rc.sample {
		return nil
	}
	sp := &rc.cur
	*sp = Span{
		RunSeed:   rc.runSeed,
		Platform:  int32(rc.pid),
		Algorithm: rc.alg,
		RequestID: r.ID,
		Arrival:   int64(r.Arrival),
		Value:     r.Value,
		rec:       rc,
		begun:     time.Now(),
	}
	rc.faults = rc.faults[:0]
	rc.active = true
	return sp
}

// Active returns the span currently being recorded, or nil. The hub's
// fault-observer adapter uses it to attribute injected faults to the
// decision in flight on the recorder's platform.
func (rc *Recorder) Active() *Span {
	if rc == nil || !rc.active {
		return nil
	}
	return &rc.cur
}

// StageStart returns the wall-clock start for a stage measurement, or
// the zero Time when the span is nil (no time syscall on the disabled
// path).
func (sp *Span) StageStart() time.Time {
	if sp == nil {
		return time.Time{}
	}
	return time.Now()
}

// EndStage folds the time since start into the stage's lap. A stage
// entered more than once keeps its first offset and accumulates
// duration.
func (sp *Span) EndStage(s Stage, start time.Time) {
	if sp == nil {
		return
	}
	l := &sp.laps[s]
	if l.dur == 0 {
		l.offset = start.Sub(sp.begun)
	}
	l.dur += time.Since(start)
}

// Fault records one cooperation fault hitting the decision in flight.
func (sp *Span) Fault(partner core.PlatformID, kind string, latency time.Duration) {
	if sp == nil {
		return
	}
	sp.rec.faults = append(sp.rec.faults, FaultEvent{
		Partner: int32(partner),
		Kind:    kind,
		Latency: int64(latency),
	})
}

// Finish closes the span with its outcome and commits it to the
// platform ring. outcome is the decision's Reason string; payment is
// the outer payment (zero for inner assignments and rejections).
func (sp *Span) Finish(outcome string, payment float64, probes, claimRetries int) {
	if sp == nil {
		return
	}
	rc := sp.rec
	sp.Total = int64(time.Since(sp.begun))
	sp.Start = int64(sp.begun.Sub(rc.tr.epoch))
	sp.Outcome = outcome
	sp.Payment = payment
	sp.Probes = probes
	sp.ClaimRetries = claimRetries

	out := *sp
	// Materialize the wire form and strip recording state so committed
	// spans compare (and round-trip) cleanly.
	out.Stages = nil
	for s := Stage(0); s < numStages; s++ {
		if l := sp.laps[s]; l.dur > 0 {
			out.Stages = append(out.Stages, StageLap{
				Stage:  s.String(),
				Offset: int64(l.offset),
				Dur:    int64(l.dur),
			})
		}
	}
	if len(rc.faults) > 0 {
		out.Faults = append([]FaultEvent(nil), rc.faults...)
	}
	out.rec = nil
	out.begun = time.Time{}
	out.laps = [numStages]lap{}
	out.Seq = rc.tr.seq.Add(1)
	rc.ring.add(out)
	rc.active = false
}
