// Package trace is the per-request decision tracer of the simulation
// engine. Where internal/metrics aggregates counters and latency
// distributions across a whole run, trace answers the question a
// production matcher is actually debugged with: where inside *this*
// decision did the time go — the inner-pool lookup, the hub eligibility
// scan, Algorithm 2's Monte-Carlo pricing, the acceptance probes, or
// the claim loop — and why did the request end the way it did.
//
// Each traced request produces one Span: stage timings, outcome tag
// (served inner/outer, rejection reason), payment, probe and
// claim-retry counts, and any cooperation faults or circuit-breaker
// transitions injected by internal/fault while the decision was in
// flight. Spans land in fixed-capacity per-platform ring buffers — no
// unbounded growth, race-safe under the concurrent per-platform
// runtime — and export as JSONL, as Chrome trace-event JSON (loadable
// in Perfetto or chrome://tracing), or aggregated into a per-algorithm
// per-stage latency report built on stats.Reservoir percentiles.
//
// The disabled path is free by design: a nil *Tracer yields nil
// *Recorders, a nil *Recorder yields nil *Spans, and every method is a
// nil-receiver no-op, so the matchers' instrumented hot path performs
// no time syscalls, no allocation and no RNG draws when tracing is off.
// Sampling draws from a tracer-owned generator, never from matcher
// RNGs, so enabling tracing cannot perturb matching decisions.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"crossmatch/internal/core"
)

// Stage identifies one timed phase of a matching decision.
type Stage uint8

const (
	// StageInner is the inner-pool nearest-worker lookup (Algorithm 1
	// lines 3-6 / the TOTA baseline's whole decision).
	StageInner Stage = iota
	// StageEligibility is the hub's outer-worker eligibility scan
	// (Definition 2.6 constraints), including fault-injected partner
	// probes when a fault plan is active.
	StageEligibility
	// StagePricing is the outer-payment computation: Algorithm 2's
	// Monte-Carlo minimum payment (DemCOM) or the expected-revenue
	// maximization of Definition 4.1 (RamCOM).
	StagePricing
	// StageProbes is the per-candidate acceptance probing at the quoted
	// payment (Algorithm 1 lines 17-20).
	StageProbes
	// StageClaim is the claim loop over accepting candidates, including
	// retries after claims lost to other platforms (lines 21-24).
	StageClaim

	numStages
)

// stageNames index by Stage; they are the wire names used in exports.
var stageNames = [numStages]string{
	"inner-lookup",
	"eligibility",
	"pricing",
	"probes",
	"claim",
}

// String returns the export name of the stage.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every stage in decision order (for report builders).
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// StageLap is one stage's recorded time within a span: the offset from
// the span start and the accumulated duration (a stage entered twice,
// e.g. RamCOM's inner fallback after a failed cooperative path, keeps
// its first offset and sums its durations).
type StageLap struct {
	Stage  string `json:"stage"`
	Offset int64  `json:"offset_ns"`
	Dur    int64  `json:"dur_ns"`
}

// FaultEvent is one cooperation fault observed while the span's request
// was being decided (see internal/fault): an injected latency spike,
// drop, claim error, outage hit, retry, timeout, breaker short-circuit
// or breaker state transition attributed to the probing platform.
type FaultEvent struct {
	Partner int32  `json:"partner"`
	Kind    string `json:"kind"`
	Latency int64  `json:"latency_ns,omitempty"`
}

// Span is one traced request decision. Exported fields are the wire
// format (JSONL round-trips through encoding/json); unexported fields
// are recording state, zeroed before the span is committed to its ring.
type Span struct {
	// Seq orders spans across all platforms of the tracer by commit
	// time (atomic counter, starts at 1).
	Seq uint64 `json:"seq"`
	// RunSeed identifies the simulation run that produced the span when
	// one tracer is shared across an experiment's unit runs.
	RunSeed   int64  `json:"run_seed"`
	Platform  int32  `json:"platform"`
	Algorithm string `json:"algorithm"`
	RequestID int64  `json:"request"`
	// Arrival is the request's stream-time arrival tick.
	Arrival int64   `json:"arrival"`
	Value   float64 `json:"value"`
	// Start is the wall-clock start offset in nanoseconds since the
	// tracer was created; Total the decision's wall-clock duration.
	Start int64 `json:"start_ns"`
	Total int64 `json:"total_ns"`
	// Stages holds the laps of every stage the decision entered, in
	// decision order.
	Stages []StageLap `json:"stages,omitempty"`
	// Outcome tags how the decision ended; the values are the
	// online.Reason strings ("inner", "outer", "no-workers", ...).
	Outcome string `json:"outcome"`
	// Payment is the outer payment v' for cooperative assignments.
	Payment      float64      `json:"payment,omitempty"`
	Probes       int          `json:"probes,omitempty"`
	ClaimRetries int          `json:"claim_retries,omitempty"`
	Faults       []FaultEvent `json:"faults,omitempty"`

	rec   *Recorder
	begun time.Time
	laps  [numStages]lap
}

type lap struct {
	offset time.Duration
	dur    time.Duration
}

// Options configures a Tracer.
type Options struct {
	// Capacity bounds each platform's span ring buffer; once full, new
	// spans evict the oldest. Non-positive means DefaultCapacity.
	Capacity int
	// Sample is the fraction of requests traced, in (0, 1]. Zero means
	// trace everything (1.0); negative disables recording entirely.
	// Per-run overrides go through Recorder's sample argument.
	Sample float64
	// Seed roots the sampling randomness (decorrelated per platform and
	// run); sampling never draws from matcher RNGs.
	Seed int64
}

// DefaultCapacity bounds each platform ring when Options.Capacity is
// not set: 4096 spans ≈ a few MB per platform at full fault load.
const DefaultCapacity = 4096

// Tracer owns the span rings of one simulation (or of a whole
// experiment when shared across unit runs, like a metrics.Collector).
// All methods are safe for concurrent use; a nil *Tracer is a no-op
// everywhere.
type Tracer struct {
	opts  Options
	epoch time.Time
	seq   atomic.Uint64

	mu    sync.Mutex
	rings map[core.PlatformID]*ring
}

// New returns a tracer with the given options.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.Sample == 0 {
		opts.Sample = 1
	}
	if opts.Sample > 1 {
		opts.Sample = 1
	}
	return &Tracer{
		opts:  opts,
		epoch: time.Now(),
		rings: make(map[core.PlatformID]*ring),
	}
}

// ring is one platform's fixed-capacity span buffer.
type ring struct {
	mu    sync.Mutex
	buf   []Span
	cap   int
	next  int    // overwrite cursor once full
	total uint64 // spans ever committed
}

func (g *ring) add(sp Span) {
	g.mu.Lock()
	if len(g.buf) < g.cap {
		g.buf = append(g.buf, sp)
	} else {
		g.buf[g.next] = sp
		g.next++
		if g.next == g.cap {
			g.next = 0
		}
	}
	g.total++
	g.mu.Unlock()
}

// snapshot returns the retained spans, oldest first.
func (g *ring) snapshot() []Span {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Span, 0, len(g.buf))
	out = append(out, g.buf[g.next:]...)
	out = append(out, g.buf[:g.next]...)
	return out
}

func (t *Tracer) ringFor(pid core.PlatformID) *ring {
	t.mu.Lock()
	defer t.mu.Unlock()
	g, ok := t.rings[pid]
	if !ok {
		g = &ring{cap: t.opts.Capacity}
		t.rings[pid] = g
	}
	return g
}

// Spans returns every retained span across all platforms, ordered by
// commit sequence.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	rings := make([]*ring, 0, len(t.rings))
	for _, g := range t.rings {
		rings = append(rings, g)
	}
	t.mu.Unlock()
	var out []Span
	for _, g := range rings {
		out = append(out, g.snapshot()...)
	}
	sortSpans(out)
	return out
}

// Recorded returns how many spans were ever committed, and Dropped how
// many of those the rings have since evicted.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, g := range t.rings {
		g.mu.Lock()
		n += g.total
		g.mu.Unlock()
	}
	return n
}

// Dropped returns how many committed spans have been evicted by ring
// wrap-around (bounded memory is the contract; this is its price).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, g := range t.rings {
		g.mu.Lock()
		n += g.total - uint64(len(g.buf))
		g.mu.Unlock()
	}
	return n
}
