package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
}

// WriteJSONL writes every retained span as one JSON object per line,
// ordered by commit sequence. The format round-trips through ReadJSONL.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, t.Spans())
}

// WriteJSONL writes the given spans as JSON lines.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses spans previously written by WriteJSONL. Blank lines
// are skipped; any malformed line is an error naming its line number.
func ReadJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var sp Span
		if err := json.Unmarshal([]byte(text), &sp); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry ts/dur in microseconds; "M" metadata events
// name processes and threads in the viewer.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained spans as a Chrome trace-event
// JSON object loadable in Perfetto or chrome://tracing. Each platform
// becomes one process row; every decision is a complete event with its
// stages nested beneath it on the same thread; injected faults ride
// along in the event args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Spans())
}

// WriteChromeTrace writes the given spans in Chrome trace-event format.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	const usPerNs = 1e-3
	events := make([]chromeEvent, 0, 2*len(spans)+8)
	named := map[int64]string{}
	for i := range spans {
		sp := &spans[i]
		pid := int64(sp.Platform)
		if _, ok := named[pid]; !ok {
			named[pid] = sp.Algorithm
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid, Tid: pid,
				Args: map[string]any{"name": fmt.Sprintf("platform-%d (%s)", pid, sp.Algorithm)},
			})
		}
		args := map[string]any{
			"request": sp.RequestID,
			"arrival": sp.Arrival,
			"value":   sp.Value,
			"outcome": sp.Outcome,
			"seq":     sp.Seq,
		}
		if sp.Payment != 0 {
			args["payment"] = sp.Payment
		}
		if sp.Probes != 0 {
			args["probes"] = sp.Probes
		}
		if sp.ClaimRetries != 0 {
			args["claim_retries"] = sp.ClaimRetries
		}
		if len(sp.Faults) > 0 {
			faults := make([]string, len(sp.Faults))
			for j, f := range sp.Faults {
				faults[j] = fmt.Sprintf("partner-%d: %s", f.Partner, f.Kind)
			}
			args["faults"] = faults
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%s %s r%d", sp.Algorithm, sp.Outcome, sp.RequestID),
			Cat:  "decision",
			Ph:   "X",
			Ts:   float64(sp.Start) * usPerNs,
			Dur:  float64(sp.Total) * usPerNs,
			Pid:  pid,
			Tid:  pid,
		})
		events[len(events)-1].Args = args
		for _, l := range sp.Stages {
			events = append(events, chromeEvent{
				Name: l.Stage,
				Cat:  "stage",
				Ph:   "X",
				Ts:   float64(sp.Start+l.Offset) * usPerNs,
				Dur:  float64(l.Dur) * usPerNs,
				Pid:  pid,
				Tid:  pid,
			})
		}
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
