package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"crossmatch/internal/stats"
)

// StageRow is one (algorithm, stage) line of a Report: how often the
// stage ran and its latency distribution across the retained spans.
type StageRow struct {
	Algorithm string  `json:"algorithm"`
	Stage     string  `json:"stage"`
	Count     int64   `json:"count"`
	MeanUs    float64 `json:"mean_us"`
	P50Us     float64 `json:"p50_us"`
	P90Us     float64 `json:"p90_us"`
	P99Us     float64 `json:"p99_us"`
	MaxUs     float64 `json:"max_us"`
	// Share is the stage's fraction of the algorithm's summed decision
	// time — the "where does the time go" column.
	Share float64 `json:"share"`
}

// Report aggregates the retained spans into per-algorithm, per-stage
// latency distributions (reservoir-sampled percentiles), plus a "total"
// pseudo-stage per algorithm covering whole decisions.
type Report struct {
	Rows []StageRow `json:"rows"`
	// Spans is the number of retained spans aggregated; Dropped counts
	// spans evicted by ring wrap before aggregation.
	Spans   int    `json:"spans"`
	Dropped uint64 `json:"dropped"`
	// Outcomes tallies spans by outcome tag.
	Outcomes map[string]int `json:"outcomes"`
}

// TotalStage is the pseudo-stage name of whole-decision rows.
const TotalStage = "total"

// Report aggregates the retained spans; see Report. A nil tracer
// returns an empty report.
func (t *Tracer) Report() *Report {
	if t == nil {
		return &Report{Outcomes: map[string]int{}}
	}
	return BuildReport(t.Spans(), t.Dropped())
}

// BuildReport aggregates arbitrary spans (e.g. parsed back from JSONL).
func BuildReport(spans []Span, dropped uint64) *Report {
	type key struct {
		alg   string
		stage string
	}
	res := map[key]*stats.Reservoir{}
	totals := map[string]time.Duration{}
	reservoir := func(k key) *stats.Reservoir {
		r, ok := res[k]
		if !ok {
			// Deterministic seed per series keeps report percentiles
			// reproducible for a fixed span set.
			var seed int64
			for _, c := range k.alg + "/" + k.stage {
				seed = seed*131 + int64(c)
			}
			r = stats.NewReservoir(0, seed)
			res[k] = r
		}
		return r
	}
	rep := &Report{Spans: len(spans), Dropped: dropped, Outcomes: map[string]int{}}
	for i := range spans {
		sp := &spans[i]
		rep.Outcomes[sp.Outcome]++
		reservoir(key{sp.Algorithm, TotalStage}).Observe(time.Duration(sp.Total))
		totals[sp.Algorithm] += time.Duration(sp.Total)
		for _, l := range sp.Stages {
			reservoir(key{sp.Algorithm, l.Stage}).Observe(time.Duration(l.Dur))
		}
	}

	qs := []float64{0.50, 0.90, 0.99}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for k, r := range res {
		q := r.Quantiles(qs)
		share := 0.0
		if t := totals[k.alg]; t > 0 {
			share = float64(r.Sum()) / float64(t)
		}
		rep.Rows = append(rep.Rows, StageRow{
			Algorithm: k.alg,
			Stage:     k.stage,
			Count:     r.Count(),
			MeanUs:    us(r.Mean()),
			P50Us:     us(q[0]),
			P90Us:     us(q[1]),
			P99Us:     us(q[2]),
			MaxUs:     us(r.Max()),
			Share:     share,
		})
	}
	order := stageOrder()
	sort.Slice(rep.Rows, func(i, j int) bool {
		a, b := rep.Rows[i], rep.Rows[j]
		if a.Algorithm != b.Algorithm {
			return a.Algorithm < b.Algorithm
		}
		return order[a.Stage] < order[b.Stage]
	})
	return rep
}

func stageOrder() map[string]int {
	order := make(map[string]int, numStages+1)
	for i, s := range Stages() {
		order[s.String()] = i
	}
	order[TotalStage] = int(numStages)
	return order
}

// Table renders the report as a stats.Table (aligned text or CSV).
func (rep *Report) Table() *stats.Table {
	title := fmt.Sprintf("Decision stage latencies (%d spans", rep.Spans)
	if rep.Dropped > 0 {
		title += fmt.Sprintf(", %d evicted by ring wrap", rep.Dropped)
	}
	title += ")"
	t := stats.NewTable(title,
		"Algorithm", "Stage", "Count", "Mean(us)", "p50(us)", "p90(us)", "p99(us)", "Max(us)", "Share")
	f := func(v float64) string { return fmt.Sprintf("%.1f", v) }
	for _, row := range rep.Rows {
		share := "-"
		if row.Stage != TotalStage {
			share = fmt.Sprintf("%.0f%%", row.Share*100)
		}
		t.Add(row.Algorithm, row.Stage, fmt.Sprintf("%d", row.Count),
			f(row.MeanUs), f(row.P50Us), f(row.P90Us), f(row.P99Us), f(row.MaxUs), share)
	}
	return t
}

// WriteText renders the report table as aligned text.
func (rep *Report) WriteText(w io.Writer) error { return rep.Table().Render(w) }
