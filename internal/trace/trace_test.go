package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"crossmatch/internal/core"
)

// record drives one synthetic decision through a recorder: a couple of
// stage laps, an optional fault, and a finish.
func record(rc *Recorder, id int64, outcome string) {
	sp := rc.Begin(&core.Request{ID: id, Arrival: core.Time(id), Value: float64(id) * 2})
	t := sp.StageStart()
	time.Sleep(time.Microsecond)
	sp.EndStage(StageInner, t)
	t = sp.StageStart()
	time.Sleep(time.Microsecond)
	sp.EndStage(StagePricing, t)
	if id%2 == 0 {
		sp.Fault(7, "probe-fault", 1500)
	}
	sp.Finish(outcome, float64(id), int(id%3), int(id%2))
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	tr := New(Options{Capacity: 64})
	rc := tr.Recorder(42, 1, "DemCOM", 0)
	for i := int64(1); i <= 5; i++ {
		record(rc, i, "outer")
	}
	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("retained %d spans, want 5", len(spans))
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spans, back) {
		t.Errorf("JSONL round trip changed spans:\n emit: %+v\n read: %+v", spans, back)
	}
	for _, sp := range back {
		if sp.Algorithm != "DemCOM" || sp.Platform != 1 || sp.RunSeed != 42 {
			t.Errorf("span lost identity fields: %+v", sp)
		}
		if len(sp.Stages) != 2 {
			t.Errorf("span %d: %d stage laps, want 2", sp.Seq, len(sp.Stages))
		}
		if sp.RequestID%2 == 0 && len(sp.Faults) != 1 {
			t.Errorf("span %d: faults not recorded: %+v", sp.Seq, sp.Faults)
		}
	}
}

func TestReadJSONLRejectsMalformedLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"seq\":1}\n\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-numbered parse error, got %v", err)
	}
}

func TestRingWrapKeepsNewestAndCounts(t *testing.T) {
	tr := New(Options{Capacity: 4})
	rc := tr.Recorder(1, 3, "RamCOM", 0)
	for i := int64(1); i <= 10; i++ {
		record(rc, i, "inner")
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want capacity 4", len(spans))
	}
	for i, sp := range spans {
		if want := uint64(7 + i); sp.Seq != want {
			t.Errorf("span %d: seq %d, want %d (oldest-first, newest retained)", i, sp.Seq, want)
		}
	}
	if got := tr.Recorded(); got != 10 {
		t.Errorf("Recorded() = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
}

func TestNilTracerChainIsNoOp(t *testing.T) {
	var tr *Tracer
	rc := tr.Recorder(1, 1, "TOTA", 0)
	if rc != nil {
		t.Fatal("nil tracer must yield nil recorder")
	}
	sp := rc.Begin(&core.Request{ID: 1})
	if sp != nil {
		t.Fatal("nil recorder must yield nil span")
	}
	// Every span method must be callable on nil.
	st := sp.StageStart()
	if !st.IsZero() {
		t.Error("nil span StageStart must not consult the clock")
	}
	sp.EndStage(StageInner, st)
	sp.Fault(1, "probe-fault", 1)
	sp.Finish("inner", 0, 0, 0)
	if rc.Active() != nil {
		t.Error("nil recorder must have no active span")
	}
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer Spans() = %v", got)
	}
	if tr.Recorded() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer counts must be zero")
	}
	rep := tr.Report()
	if rep == nil || len(rep.Rows) != 0 {
		t.Errorf("nil tracer report = %+v", rep)
	}
}

func TestSampleOverrides(t *testing.T) {
	tr := New(Options{Capacity: 16})
	if rc := tr.Recorder(1, 1, "TOTA", -1); rc.Begin(&core.Request{ID: 1}) != nil {
		t.Error("negative override must disable recording")
	}
	rc := tr.Recorder(1, 2, "TOTA", 0.5)
	n := 0
	for i := int64(0); i < 400; i++ {
		if sp := rc.Begin(&core.Request{ID: i}); sp != nil {
			n++
			sp.Finish("inner", 0, 0, 0)
		}
	}
	if n < 100 || n > 300 {
		t.Errorf("sample 0.5 traced %d/400 requests", n)
	}
	// Full-rate recorders never consult sampling randomness.
	full := tr.Recorder(1, 3, "TOTA", 1)
	for i := int64(0); i < 10; i++ {
		sp := full.Begin(&core.Request{ID: i})
		if sp == nil {
			t.Fatal("full-rate recorder skipped a request")
		}
		sp.Finish("inner", 0, 0, 0)
	}
}

func TestChromeTraceIsLoadableJSON(t *testing.T) {
	tr := New(Options{Capacity: 64})
	rc := tr.Recorder(9, 2, "RamCOM", 0)
	for i := int64(1); i <= 3; i++ {
		record(rc, i, "outer")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Cat  string  `json:"cat"`
			Ts   float64 `json:"ts"`
			Pid  int64   `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	meta, decisions, stages := 0, 0, 0
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M":
			meta++
		case e.Cat == "decision":
			decisions++
		case e.Cat == "stage":
			stages++
		}
	}
	if meta != 1 || decisions != 3 || stages != 6 {
		t.Errorf("event mix meta=%d decisions=%d stages=%d, want 1/3/6", meta, decisions, stages)
	}
}

func TestReportAggregatesByAlgorithmAndStage(t *testing.T) {
	tr := New(Options{Capacity: 64})
	dem := tr.Recorder(1, 1, "DemCOM", 0)
	ram := tr.Recorder(1, 2, "RamCOM", 0)
	for i := int64(1); i <= 4; i++ {
		record(dem, i, "outer")
		record(ram, i, "inner")
	}
	rep := tr.Report()
	if rep.Spans != 8 {
		t.Fatalf("report covers %d spans, want 8", rep.Spans)
	}
	if rep.Outcomes["outer"] != 4 || rep.Outcomes["inner"] != 4 {
		t.Errorf("outcome tally = %v", rep.Outcomes)
	}
	rows := map[string]StageRow{}
	for _, row := range rep.Rows {
		rows[row.Algorithm+"/"+row.Stage] = row
	}
	for _, k := range []string{
		"DemCOM/inner-lookup", "DemCOM/pricing", "DemCOM/total",
		"RamCOM/inner-lookup", "RamCOM/pricing", "RamCOM/total",
	} {
		row, ok := rows[k]
		if !ok {
			t.Fatalf("missing report row %s (have %v)", k, rep.Rows)
		}
		if row.Count != 4 {
			t.Errorf("%s: count %d, want 4", k, row.Count)
		}
		if row.MeanUs <= 0 || row.P50Us <= 0 || row.MaxUs < row.P99Us {
			t.Errorf("%s: implausible latency row %+v", k, row)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DemCOM") || !strings.Contains(buf.String(), "pricing") {
		t.Errorf("rendered report missing expected rows:\n%s", buf.String())
	}
}
