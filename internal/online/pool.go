package online

import (
	"sync"

	"crossmatch/internal/core"
	"crossmatch/internal/index"
)

// RangeFilter refines the range constraint beyond the Euclidean circle:
// given a worker whose circle covers the request (per the spatial
// index), it reports whether the worker can actually serve it. The road
// network model (internal/roadnet.Coverage) is the canonical
// implementation; nil means pure Euclidean ranges, the paper's default.
// Filters must be stateless or internally synchronized: the concurrent
// runtime calls them from several platform goroutines at once.
type RangeFilter func(w *core.Worker, r *core.Request) bool

// Pool is a platform's waiting list of unoccupied workers (Definition
// 2.2's "waiting list"), indexed spatially for the hot coverage query.
// It enforces the time constraint in Covering and is safe for concurrent
// use: mutators take the write lock, coverage queries share the read
// lock, so the concurrent multi-platform runtime can scan one platform's
// waiting list from every other platform while its owner keeps matching.
//
// The default pool (NewPool(nil)) keeps workers in a structure-of-arrays
// layout over an index.SlotGrid: the grid hands coverage hits back as
// slots into the pool's parallel worker/arrival arrays, so the
// eligibility scan reads flat arrays end to end — no per-candidate map
// lookup, no Entry copying. A caller-supplied index falls back to the
// generic Entry-based path.
type Pool struct {
	mu sync.RWMutex

	// Structure-of-arrays mode (default). grid stores each worker's
	// coverage disk tagged with its slot; ws/arrivals are the parallel
	// slot arrays (ws[slot] == nil marks a free slot, recycled via free).
	grid     *index.SlotGrid
	ws       []*core.Worker
	arrivals []core.Time
	free     []int32

	// Legacy mode: a caller-supplied spatial index plus an ID map.
	ix      index.Index
	workers map[int64]*core.Worker

	// Filter optionally refines coverage (e.g. road distance); it must
	// only ever prune workers whose Euclidean circle covers the request.
	// Set it before the simulation starts; it is read without locking.
	Filter RangeFilter
}

// NewPool returns an empty pool over the given spatial index. A nil
// index selects the default structure-of-arrays grid with the default
// cell size.
func NewPool(ix index.Index) *Pool {
	if ix == nil {
		return &Pool{grid: index.NewSlotGrid(index.DefaultCell)}
	}
	return &Pool{ix: ix, workers: make(map[int64]*core.Worker)}
}

// entryScratch recycles the index-query buffers of the legacy coverage
// path. A sync.Pool (rather than one buffer per Pool) keeps concurrent
// readers of the same waiting list from sharing scratch space.
var entryScratch = sync.Pool{
	New: func() interface{} {
		s := make([]index.Entry, 0, 64)
		return &s
	},
}

// slotScratch recycles the slot buffers of the structure-of-arrays
// coverage path, for the same reason.
var slotScratch = sync.Pool{
	New: func() interface{} {
		s := make([]int32, 0, 64)
		return &s
	},
}

// Add registers a worker as waiting. Re-adding an ID replaces the entry
// (a worker returning after a completed service arrives as a fresh
// waiting-list entry).
func (p *Pool) Add(w *core.Worker) {
	p.mu.Lock()
	if p.grid != nil {
		if slot, ok := p.grid.Remove(w.ID); ok {
			p.ws[slot] = nil
			p.free = append(p.free, slot)
		}
		var slot int32
		if n := len(p.free); n > 0 {
			slot = p.free[n-1]
			p.free = p.free[:n-1]
			p.ws[slot] = w
			p.arrivals[slot] = w.Arrival
		} else {
			slot = int32(len(p.ws))
			p.ws = append(p.ws, w)
			p.arrivals = append(p.arrivals, w.Arrival)
		}
		p.grid.Insert(index.Entry{ID: w.ID, Circle: w.Range()}, slot)
	} else {
		p.workers[w.ID] = w
		p.ix.Insert(index.Entry{ID: w.ID, Circle: w.Range()})
	}
	p.mu.Unlock()
}

// Remove deletes a worker from the waiting list, reporting presence.
// The report is authoritative under concurrency: of any number of
// racing removals of the same ID, exactly one observes true, which is
// what makes both inner assignments and cross-platform claims atomic.
func (p *Pool) Remove(id int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.grid != nil {
		slot, ok := p.grid.Remove(id)
		if !ok {
			return false
		}
		p.ws[slot] = nil
		p.free = append(p.free, slot)
		return true
	}
	if _, ok := p.workers[id]; !ok {
		return false
	}
	delete(p.workers, id)
	p.ix.Remove(id)
	return true
}

// Get returns the waiting worker with the given ID.
func (p *Pool) Get(id int64) (*core.Worker, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.grid != nil {
		slot, ok := p.grid.Slot(id)
		if !ok {
			return nil, false
		}
		return p.ws[slot], true
	}
	w, ok := p.workers[id]
	return w, ok
}

// Len returns the number of waiting workers.
func (p *Pool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.grid != nil {
		return p.grid.Len()
	}
	return len(p.workers)
}

// Covering returns the waiting workers able to serve r under the time
// and range constraints of Definition 2.6, in unspecified order. It
// allocates a fresh slice; hot paths should prefer AppendCovering with a
// reused buffer.
func (p *Pool) Covering(r *core.Request) []*core.Worker {
	return p.AppendCovering(nil, r)
}

// AppendCovering appends to dst the waiting workers able to serve r
// under the time and range constraints of Definition 2.6 and returns the
// extended slice. A caller that reuses dst performs no per-request
// allocation.
func (p *Pool) AppendCovering(dst []*core.Worker, r *core.Request) []*core.Worker {
	if p.grid != nil {
		sp := slotScratch.Get().(*[]int32)
		p.mu.RLock()
		slots := p.grid.AppendSlots((*sp)[:0], r.Loc)
		for _, slot := range slots {
			if p.arrivals[slot] > r.Arrival {
				continue
			}
			w := p.ws[slot]
			if p.Filter != nil && !p.Filter(w, r) {
				continue
			}
			dst = append(dst, w)
		}
		p.mu.RUnlock()
		*sp = slots[:0]
		slotScratch.Put(sp)
		return dst
	}
	sp := entryScratch.Get().(*[]index.Entry)
	p.mu.RLock()
	entries := p.ix.Covering((*sp)[:0], r.Loc)
	for _, e := range entries {
		w := p.workers[e.ID]
		if w == nil || w.Arrival > r.Arrival {
			continue
		}
		if p.Filter != nil && !p.Filter(w, r) {
			continue
		}
		dst = append(dst, w)
	}
	p.mu.RUnlock()
	*sp = entries[:0]
	entryScratch.Put(sp)
	return dst
}

// Nearest returns the closest waiting worker able to serve r, ties by
// smallest ID; ok=false when none can. It scans the coverage hits
// directly, so the hot inner-assignment path allocates nothing.
func (p *Pool) Nearest(r *core.Request) (*core.Worker, bool) {
	var best *core.Worker
	bestD := 0.0
	if p.grid != nil {
		sp := slotScratch.Get().(*[]int32)
		p.mu.RLock()
		slots := p.grid.AppendSlots((*sp)[:0], r.Loc)
		for _, slot := range slots {
			if p.arrivals[slot] > r.Arrival {
				continue
			}
			w := p.ws[slot]
			if p.Filter != nil && !p.Filter(w, r) {
				continue
			}
			d := w.Loc.Dist2(r.Loc)
			if best == nil || d < bestD || (d == bestD && w.ID < best.ID) {
				best, bestD = w, d
			}
		}
		p.mu.RUnlock()
		*sp = slots[:0]
		slotScratch.Put(sp)
		return best, best != nil
	}
	sp := entryScratch.Get().(*[]index.Entry)
	p.mu.RLock()
	entries := p.ix.Covering((*sp)[:0], r.Loc)
	for _, e := range entries {
		w := p.workers[e.ID]
		if w == nil || w.Arrival > r.Arrival {
			continue
		}
		if p.Filter != nil && !p.Filter(w, r) {
			continue
		}
		d := w.Loc.Dist2(r.Loc)
		if best == nil || d < bestD || (d == bestD && w.ID < best.ID) {
			best, bestD = w, d
		}
	}
	p.mu.RUnlock()
	*sp = entries[:0]
	entryScratch.Put(sp)
	return best, best != nil
}

// Each calls fn for every waiting worker until fn returns false.
// Iteration order is unspecified. fn must not mutate the pool: Each
// holds the read lock for the whole iteration.
func (p *Pool) Each(fn func(*core.Worker) bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.grid != nil {
		for _, w := range p.ws {
			if w == nil {
				continue
			}
			if !fn(w) {
				return
			}
		}
		return
	}
	for _, w := range p.workers {
		if !fn(w) {
			return
		}
	}
}
