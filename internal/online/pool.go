package online

import (
	"crossmatch/internal/core"
	"crossmatch/internal/index"
)

// RangeFilter refines the range constraint beyond the Euclidean circle:
// given a worker whose circle covers the request (per the spatial
// index), it reports whether the worker can actually serve it. The road
// network model (internal/roadnet.Coverage) is the canonical
// implementation; nil means pure Euclidean ranges, the paper's default.
type RangeFilter func(w *core.Worker, r *core.Request) bool

// Pool is a platform's waiting list of unoccupied workers (Definition
// 2.2's "waiting list"), indexed spatially for the hot coverage query.
// It enforces the time constraint in Covering and is not safe for
// concurrent use; the event loop serializes access.
type Pool struct {
	ix      index.Index
	workers map[int64]*core.Worker
	// Filter optionally refines coverage (e.g. road distance); it must
	// only ever prune workers whose Euclidean circle covers the request.
	Filter RangeFilter
}

// NewPool returns an empty pool over the given spatial index. A nil
// index defaults to a grid with the default cell size.
func NewPool(ix index.Index) *Pool {
	if ix == nil {
		ix = index.NewGrid(index.DefaultCell)
	}
	return &Pool{ix: ix, workers: make(map[int64]*core.Worker)}
}

// Add registers a worker as waiting. Re-adding an ID replaces the entry
// (a worker returning after a completed service arrives as a fresh
// waiting-list entry).
func (p *Pool) Add(w *core.Worker) {
	p.workers[w.ID] = w
	p.ix.Insert(index.Entry{ID: w.ID, Circle: w.Range()})
}

// Remove deletes a worker from the waiting list, reporting presence.
func (p *Pool) Remove(id int64) bool {
	if _, ok := p.workers[id]; !ok {
		return false
	}
	delete(p.workers, id)
	p.ix.Remove(id)
	return true
}

// Get returns the waiting worker with the given ID.
func (p *Pool) Get(id int64) (*core.Worker, bool) {
	w, ok := p.workers[id]
	return w, ok
}

// Len returns the number of waiting workers.
func (p *Pool) Len() int { return len(p.workers) }

// Covering returns the waiting workers able to serve r under the time
// and range constraints of Definition 2.6, in unspecified order.
func (p *Pool) Covering(r *core.Request) []*core.Worker {
	entries := p.ix.Covering(nil, r.Loc)
	out := make([]*core.Worker, 0, len(entries))
	for _, e := range entries {
		w := p.workers[e.ID]
		if w == nil || w.Arrival > r.Arrival {
			continue
		}
		if p.Filter != nil && !p.Filter(w, r) {
			continue
		}
		out = append(out, w)
	}
	return out
}

// Nearest returns the closest waiting worker able to serve r, ties by
// smallest ID; ok=false when none can.
func (p *Pool) Nearest(r *core.Request) (*core.Worker, bool) {
	var best *core.Worker
	bestD := 0.0
	for _, w := range p.Covering(r) {
		d := w.Loc.Dist2(r.Loc)
		if best == nil || d < bestD || (d == bestD && w.ID < best.ID) {
			best, bestD = w, d
		}
	}
	return best, best != nil
}

// Each calls fn for every waiting worker until fn returns false.
// Iteration order is unspecified.
func (p *Pool) Each(fn func(*core.Worker) bool) {
	for _, w := range p.workers {
		if !fn(w) {
			return
		}
	}
}
