package online

// Integration tests encoding the paper's worked examples: Example 2
// (DemCOM on the running example) and Example 3 (RamCOM with threshold
// k = 1). The fixture is core.ExampleOneStream; worker histories there
// are chosen so the paper's narrated outcomes are reachable, and these
// tests assert the narrated structure holds whenever the random probes
// cooperate — plus the pieces that are deterministic regardless.

import (
	"math"
	"math/rand"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/pricing"
)

// runExample executes the Example 1 stream against a matcher exactly as
// the paper stages it: platform 1 is the target platform, platform 2's
// workers are lent through the coop view.
func runExample(t *testing.T, m Matcher) (*core.Matching, *Stats, *fakeCoop) {
	t.Helper()
	coop, ok := matcherCoop(m)
	if !ok {
		t.Fatal("matcher built without the shared fakeCoop")
	}
	s, err := core.ExampleOneStream()
	if err != nil {
		t.Fatal(err)
	}
	matching := core.NewMatching()
	stats := &Stats{}
	for _, e := range s.Events() {
		switch e.Kind {
		case core.WorkerArrival:
			if e.Worker.Platform == 1 {
				m.WorkerArrives(e.Worker)
			} else {
				h, herr := pricing.NewHistory(e.Worker.History)
				if herr != nil {
					t.Fatal(herr)
				}
				coop.addWorker(e.Worker, h)
			}
		case core.RequestArrival:
			d := m.RequestArrives(e.Request)
			stats.Observe(d)
			if d.Served {
				if err := matching.Add(d.Assignment); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := matching.Validate(); err != nil {
		t.Fatal(err)
	}
	return matching, stats, coop
}

// matcherCoop extracts the fakeCoop a test installed on a matcher.
func matcherCoop(m Matcher) (*fakeCoop, bool) {
	switch mm := m.(type) {
	case *DemCOM:
		fc, ok := mm.coop.(*fakeCoop)
		return fc, ok
	case *RamCOM:
		fc, ok := mm.coop.(*fakeCoop)
		return fc, ok
	}
	return nil, false
}

// TestPaperExample2DemCOM follows Example 2's narration: w1 serves r1,
// w2 serves r2, r3 is offered to the outer worker w3, w4 serves r4, and
// r5 is offered to w5. The inner assignments are fully deterministic;
// the cooperative ones depend on acceptance probes, so the test asserts
// them across seeds and checks the narrated full outcome (all five
// served, revenue > TOTA's 16) is realized by some seeds.
func TestPaperExample2DemCOM(t *testing.T) {
	sawFullOutcome := false
	for seed := int64(0); seed < 40; seed++ {
		coop := newFakeCoop()
		m := NewDemCOM(coop, pricing.MonteCarlo{Xi: 0.05, Eta: 0.3}, rand.New(rand.NewSource(seed)))
		matching, stats, _ := runExample(t, m)

		// Deterministic inner skeleton: w1->r1, w2->r2, w4->r4.
		for req, wrk := range map[int64]int64{1: 1, 2: 2, 4: 4} {
			a, ok := matching.ByRequest(req)
			if !ok || a.Worker.ID != wrk || a.Outer {
				t.Fatalf("seed %d: r%d should be served inner by w%d, got %+v", seed, req, wrk, a)
			}
		}
		// r3 and r5 can only ever be cooperative (no inner worker can
		// serve them: w4 arrives after r3, and nothing covers r5).
		for _, req := range []int64{3, 5} {
			if a, ok := matching.ByRequest(req); ok {
				if !a.Outer {
					t.Fatalf("seed %d: r%d served by an inner worker %+v", seed, req, a)
				}
				if a.Worker.Platform != 2 {
					t.Fatalf("seed %d: r%d borrowed from platform %d", seed, req, a.Worker.Platform)
				}
				// Payment respects (0, v].
				if a.Payment <= 0 || a.Payment > a.Request.Value {
					t.Fatalf("seed %d: r%d payment %v out of range", seed, req, a.Payment)
				}
			}
		}
		if stats.CoopAttempted != 2 {
			t.Fatalf("seed %d: coop attempted = %d, want 2 (r3 and r5)", seed, stats.CoopAttempted)
		}
		if matching.Len() == 5 && stats.Revenue > 16 {
			sawFullOutcome = true
		}
	}
	if !sawFullOutcome {
		t.Error("Example 2's full outcome (five served, revenue > 16) never realized across 40 seeds")
	}
}

// TestPaperExample3RamCOM reconstructs Example 3: with k = 1 the
// threshold is e, so r1 (4), r2 (9), r3 (6) and r5 (4) are "large" and
// steered to inner workers while w3/w5 pick up what inner supply cannot
// reach. r4 (value 3 > e ~ 2.718) is also large. The test pins k = 1 by
// seed search and checks the threshold routing plus the Example 3
// fallback: r3 exceeds the threshold but has no free inner worker and
// goes to the outer worker w3.
func TestPaperExample3RamCOM(t *testing.T) {
	matched := false
	for seed := int64(0); seed < 200 && !matched; seed++ {
		coop := newFakeCoop()
		m := NewRamCOM(9, coop, rand.New(rand.NewSource(seed)))
		if math.Abs(m.Threshold()-math.E) > 1e-9 {
			continue // need k = 1
		}
		matching, _, _ := runExample(t, m)

		// All request values exceed e, so every served request either
		// used an inner worker or fell through to outer after inner
		// supply ran out — never the low-value direct-outer path.
		a3, ok3 := matching.ByRequest(3)
		if ok3 {
			if !a3.Outer || a3.Worker.ID != 3 {
				t.Fatalf("seed %d: r3 = %+v, want outer w3 (Example 3's fallback)", seed, a3)
			}
			matched = true
		}
		// r1 and r2 have free inner workers when they arrive (w1, w2) —
		// RamCOM's random inner choice must have served them inner.
		for _, req := range []int64{1, 2} {
			if a, ok := matching.ByRequest(req); ok && a.Outer {
				// r2 may legitimately go outer if the random inner pick
				// for r1 consumed the only worker covering r2... not
				// possible here: w1 and w2 both cover r2? w1 covers r1
				// and r2; w2 covers r2 and r3. If r1 took w2... w2 does
				// not cover r1. So r1 always takes w1, leaving w2 free
				// for r2: both must be inner.
				t.Fatalf("seed %d: r%d served outer %+v", seed, req, a)
			}
		}
	}
	if !matched {
		t.Error("Example 3's r3-to-w3 fallback never realized with k=1 across seeds")
	}
}

// TestPaperExampleRevenueCeiling: no online algorithm on Example 1 can
// beat the COM offline optimum 24.5 (with the fixture's histories), and
// all must beat zero. Sweeps all four matchers across seeds.
func TestPaperExampleRevenueCeiling(t *testing.T) {
	build := []func(seed int64) Matcher{
		func(int64) Matcher { return NewTOTAGreedy() },
		func(seed int64) Matcher {
			coop := newFakeCoop()
			return NewDemCOM(coop, pricing.DefaultMonteCarlo, rand.New(rand.NewSource(seed)))
		},
		func(seed int64) Matcher {
			coop := newFakeCoop()
			return NewRamCOM(9, coop, rand.New(rand.NewSource(seed)))
		},
	}
	for bi, mk := range build {
		for seed := int64(0); seed < 10; seed++ {
			m := mk(seed)
			stats := &Stats{}
			if _, ok := matcherCoop(m); ok {
				_, stats, _ = runExample(t, m)
			} else {
				stats = runPlatform1(t, m, nil)
			}
			if stats.Revenue > 24.5+1e-9 {
				t.Fatalf("matcher %d seed %d: revenue %v beats the offline optimum", bi, seed, stats.Revenue)
			}
			if stats.Revenue < 0 {
				t.Fatalf("matcher %d seed %d: negative revenue", bi, seed)
			}
		}
	}
}
