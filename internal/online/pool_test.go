package online

import (
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
)

func poolWorker(id int64, t core.Time, x, y, rad float64) *core.Worker {
	return &core.Worker{ID: id, Arrival: t, Loc: geo.Point{X: x, Y: y}, Radius: rad, Platform: 1}
}

func poolRequest(id int64, t core.Time, x, y, v float64) *core.Request {
	return &core.Request{ID: id, Arrival: t, Loc: geo.Point{X: x, Y: y}, Value: v, Platform: 1}
}

func TestPoolAddRemoveLen(t *testing.T) {
	p := NewPool(nil)
	if p.Len() != 0 {
		t.Fatal("new pool not empty")
	}
	p.Add(poolWorker(1, 0, 0, 0, 1))
	p.Add(poolWorker(2, 0, 5, 5, 1))
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	if !p.Remove(1) || p.Remove(1) || p.Remove(42) {
		t.Error("Remove semantics broken")
	}
	if p.Len() != 1 {
		t.Fatalf("Len after remove = %d", p.Len())
	}
	if _, ok := p.Get(2); !ok {
		t.Error("Get(2) missing")
	}
	if _, ok := p.Get(1); ok {
		t.Error("Get(1) should be gone")
	}
}

func TestPoolCoveringAppliesTimeAndRange(t *testing.T) {
	p := NewPool(nil)
	p.Add(poolWorker(1, 5, 0, 0, 2))  // in range, early enough
	p.Add(poolWorker(2, 20, 0, 0, 2)) // in range, arrives too late
	p.Add(poolWorker(3, 5, 9, 9, 2))  // out of range
	r := poolRequest(1, 10, 1, 0, 5)
	got := p.Covering(r)
	if len(got) != 1 || got[0].ID != 1 {
		ids := []int64{}
		for _, w := range got {
			ids = append(ids, w.ID)
		}
		t.Fatalf("Covering = %v, want [1]", ids)
	}
}

func TestPoolNearest(t *testing.T) {
	p := NewPool(nil)
	if _, ok := p.Nearest(poolRequest(1, 10, 0, 0, 5)); ok {
		t.Fatal("Nearest on empty pool")
	}
	p.Add(poolWorker(1, 0, 2, 0, 5))
	p.Add(poolWorker(2, 0, 1, 0, 5))
	p.Add(poolWorker(3, 0, 3, 0, 5))
	w, ok := p.Nearest(poolRequest(1, 10, 0, 0, 5))
	if !ok || w.ID != 2 {
		t.Fatalf("Nearest = %v, want worker 2", w)
	}
}

func TestPoolNearestTieBreaksByID(t *testing.T) {
	p := NewPool(nil)
	p.Add(poolWorker(9, 0, 1, 0, 5))
	p.Add(poolWorker(4, 0, -1, 0, 5))
	w, ok := p.Nearest(poolRequest(1, 10, 0, 0, 5))
	if !ok || w.ID != 4 {
		t.Fatalf("Nearest tie = %d, want 4", w.ID)
	}
}

func TestPoolReAddReplaces(t *testing.T) {
	p := NewPool(nil)
	p.Add(poolWorker(1, 0, 0, 0, 1))
	p.Add(poolWorker(1, 0, 10, 10, 1)) // same worker returns elsewhere
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
	if got := p.Covering(poolRequest(1, 5, 0, 0, 2)); len(got) != 0 {
		t.Error("stale location still covered")
	}
	if got := p.Covering(poolRequest(2, 5, 10, 10, 2)); len(got) != 1 {
		t.Error("new location not covered")
	}
}

func TestPoolEach(t *testing.T) {
	p := NewPool(nil)
	for i := int64(1); i <= 5; i++ {
		p.Add(poolWorker(i, 0, float64(i), 0, 1))
	}
	count := 0
	p.Each(func(*core.Worker) bool { count++; return true })
	if count != 5 {
		t.Errorf("Each visited %d, want 5", count)
	}
	count = 0
	p.Each(func(*core.Worker) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early-stop Each visited %d, want 2", count)
	}
}
