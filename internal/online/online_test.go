package online

import (
	"math"
	"math/rand"
	"testing"

	"crossmatch/internal/core"
	"crossmatch/internal/geo"
	"crossmatch/internal/pricing"
)

// fakeCoop is a single lender platform exposing its pool to the matcher
// under test — a miniature of platform.Hub.
type fakeCoop struct {
	pool *Pool
	hist map[int64]*pricing.History
	// failFirstClaims makes the first n Claim calls fail, simulating a
	// concurrent claim by another platform.
	failFirstClaims int
}

func newFakeCoop() *fakeCoop {
	return &fakeCoop{pool: NewPool(nil), hist: map[int64]*pricing.History{}}
}

func (f *fakeCoop) addWorker(w *core.Worker, hist *pricing.History) {
	f.pool.Add(w)
	f.hist[w.ID] = hist
}

func (f *fakeCoop) EligibleOuter(r *core.Request) []Candidate {
	var out []Candidate
	for _, w := range f.pool.Covering(r) {
		out = append(out, Candidate{Worker: w, History: f.hist[w.ID]})
	}
	return out
}

func (f *fakeCoop) Claim(id int64) bool {
	if f.failFirstClaims > 0 {
		f.failFirstClaims--
		return false
	}
	return f.pool.Remove(id)
}

// runPlatform1 feeds the Example 1 stream into a matcher as platform 1
// sees it: platform-1 workers go to the matcher, platform-2 workers go
// to the coop lender (when provided).
func runPlatform1(t *testing.T, m Matcher, coop *fakeCoop) *Stats {
	t.Helper()
	s, err := core.ExampleOneStream()
	if err != nil {
		t.Fatal(err)
	}
	stats := &Stats{}
	for _, e := range s.Events() {
		switch e.Kind {
		case core.WorkerArrival:
			if e.Worker.Platform == 1 {
				m.WorkerArrives(e.Worker)
			} else if coop != nil {
				h, herr := pricing.NewHistory(e.Worker.History)
				if herr != nil {
					t.Fatal(herr)
				}
				coop.addWorker(e.Worker, h)
			}
		case core.RequestArrival:
			d := m.RequestArrives(e.Request)
			if d.Served {
				if err := d.Assignment.Validate(); err != nil {
					t.Fatalf("invalid assignment: %v", err)
				}
			}
			stats.Observe(d)
		}
	}
	return stats
}

func TestTOTAGreedyExampleOne(t *testing.T) {
	m := NewTOTAGreedy()
	stats := runPlatform1(t, m, nil)
	// Online greedy on Example 1: w1->r1 (4), w2->r2 (9), r3 rejected,
	// w4->r4 (3), r5 rejected. Revenue 16, three served.
	if stats.Served != 3 {
		t.Errorf("Served = %d, want 3", stats.Served)
	}
	if math.Abs(stats.Revenue-16) > 1e-9 {
		t.Errorf("Revenue = %v, want 16", stats.Revenue)
	}
	if stats.ServedOuter != 0 || stats.CoopAttempted != 0 {
		t.Errorf("TOTA must never cooperate: %+v", stats)
	}
	if m.Name() != "TOTA" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestTOTAGreedyPicksNearest(t *testing.T) {
	m := NewTOTAGreedy()
	m.WorkerArrives(poolWorker(1, 0, 3, 0, 5))
	m.WorkerArrives(poolWorker(2, 0, 1, 0, 5))
	d := m.RequestArrives(poolRequest(1, 10, 0, 0, 7))
	if !d.Served || d.Assignment.Worker.ID != 2 {
		t.Fatalf("decision = %+v, want worker 2", d)
	}
	// Worker 2 is consumed; next identical request gets worker 1.
	d = m.RequestArrives(poolRequest(2, 11, 0, 0, 7))
	if !d.Served || d.Assignment.Worker.ID != 1 {
		t.Fatalf("second decision = %+v, want worker 1", d)
	}
	// Pool exhausted.
	if d := m.RequestArrives(poolRequest(3, 12, 0, 0, 7)); d.Served {
		t.Fatal("served with empty pool")
	}
}

func TestGreedyRTThresholdRejectsBelow(t *testing.T) {
	// maxValue 9 -> theta = ceil(ln 10) = 3, k in {0,1,2}, threshold
	// e^k in {1, e, e^2}. Find a seed giving k=2 (threshold ~7.39).
	var m *GreedyRT
	for seed := int64(0); seed < 100; seed++ {
		c := NewGreedyRT(9, rand.New(rand.NewSource(seed)))
		if c.Threshold() > 7 {
			m = c
			break
		}
	}
	if m == nil {
		t.Fatal("no seed yielded the top threshold")
	}
	m.WorkerArrives(poolWorker(1, 0, 0, 0, 5))
	if d := m.RequestArrives(poolRequest(1, 10, 0, 0, 5)); d.Served {
		t.Error("value 5 below threshold served")
	}
	if d := m.RequestArrives(poolRequest(2, 11, 0, 0, 9)); !d.Served {
		t.Error("value 9 above threshold rejected")
	}
	if m.Name() != "Greedy-RT" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestGreedyRTThresholdRange(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		m := NewGreedyRT(9, rand.New(rand.NewSource(seed)))
		th := m.Threshold()
		if th != 1 && math.Abs(th-math.E) > 1e-12 && math.Abs(th-math.E*math.E) > 1e-12 {
			t.Fatalf("threshold %v not in {1, e, e^2}", th)
		}
	}
	// Tiny maxValue still yields a sane threshold.
	m := NewGreedyRT(0.5, rand.New(rand.NewSource(1)))
	if m.Threshold() != 1 {
		t.Errorf("threshold = %v, want 1 (theta clamped to 1, k=0)", m.Threshold())
	}
}

func TestDemCOMInnerPriority(t *testing.T) {
	coop := newFakeCoop()
	// An outer worker sits right on the request; an inner worker is
	// farther. DemCOM must still use the inner worker (lines 3-6).
	coop.addWorker(&core.Worker{ID: 10, Arrival: 0, Loc: poolRequest(1, 10, 0, 0, 5).Loc, Radius: 5, Platform: 2},
		pricing.MustHistory([]float64{0.1}))
	m := NewDemCOM(coop, pricing.DefaultMonteCarlo, rand.New(rand.NewSource(1)))
	m.WorkerArrives(poolWorker(1, 0, 3, 0, 5))
	d := m.RequestArrives(poolRequest(1, 10, 0, 0, 5))
	if !d.Served || d.Assignment.Outer || d.Assignment.Worker.ID != 1 {
		t.Fatalf("decision = %+v, want inner worker 1", d)
	}
	if d.CoopAttempted {
		t.Error("inner service must not count as cooperative attempt")
	}
}

func TestDemCOMNoCoopDegradesToTOTA(t *testing.T) {
	m := NewDemCOM(NoCoop{}, pricing.DefaultMonteCarlo, rand.New(rand.NewSource(1)))
	stats := runPlatform1(t, m, nil)
	if math.Abs(stats.Revenue-16) > 1e-9 || stats.Served != 3 {
		t.Errorf("DemCOM with empty W_out: %+v, want TOTA's 3 served / 16 revenue", stats)
	}
}

func TestDemCOMExampleOneWithCheapLenders(t *testing.T) {
	coop := newFakeCoop()
	m := NewDemCOM(coop, pricing.MonteCarlo{Xi: 0.05, Eta: 0.3}, rand.New(rand.NewSource(3)))
	stats := runPlatform1(t, m, coop)
	// The three inner assignments (r1, r2, r4) are deterministic; r3 and
	// r5 become cooperative requests offered to w3 and w5. Acceptance of
	// the minimum payment is probabilistic — the paper itself reports
	// only ~17% acceptance for DemCOM — so we assert the invariants, not
	// a fixed outcome.
	if stats.ServedInner != 3 {
		t.Fatalf("ServedInner = %d, want 3 (stats %+v)", stats.ServedInner, stats)
	}
	if stats.CoopAttempted != 2 {
		t.Errorf("CoopAttempted = %d, want 2 (r3 and r5)", stats.CoopAttempted)
	}
	if stats.Revenue < 16 {
		t.Errorf("Revenue = %v, must be at least TOTA's 16", stats.Revenue)
	}
	if stats.ServedOuter > 0 {
		if stats.Revenue <= 16 {
			t.Errorf("Revenue = %v with outer services, must exceed 16", stats.Revenue)
		}
		if r := stats.MeanPaymentRate(); r <= 0 || r > 1 {
			t.Errorf("MeanPaymentRate = %v, want in (0,1]", r)
		}
	}
	if err := validateStats(stats); err != nil {
		t.Error(err)
	}
	// Across many seeds, the outer workers must accept at least once —
	// the cooperation path demonstrably serves extra requests.
	servedOuterEver := false
	for seed := int64(0); seed < 20 && !servedOuterEver; seed++ {
		c2 := newFakeCoop()
		m2 := NewDemCOM(c2, pricing.MonteCarlo{Xi: 0.05, Eta: 0.3}, rand.New(rand.NewSource(seed)))
		if s2 := runPlatform1(t, m2, c2); s2.ServedOuter > 0 {
			servedOuterEver = true
		}
	}
	if !servedOuterEver {
		t.Error("cooperation never succeeded across 20 seeds")
	}
}

func TestDemCOMRejectsUnaffordableCooperation(t *testing.T) {
	coop := newFakeCoop()
	// The only outer worker never accepts below 100; request is worth 5.
	coop.addWorker(&core.Worker{ID: 10, Arrival: 0, Loc: poolRequest(1, 10, 0, 0, 5).Loc, Radius: 5, Platform: 2},
		pricing.MustHistory([]float64{100}))
	m := NewDemCOM(coop, pricing.DefaultMonteCarlo, rand.New(rand.NewSource(1)))
	d := m.RequestArrives(poolRequest(1, 10, 0, 0, 5))
	if d.Served {
		t.Fatalf("served a money-losing request: %+v", d)
	}
	if !d.CoopAttempted {
		t.Error("rejection after pricing must still count as cooperative attempt")
	}
	if coop.pool.Len() != 1 {
		t.Error("outer worker must remain available after rejection")
	}
}

func TestDemCOMPaymentOracle(t *testing.T) {
	coop := newFakeCoop()
	coop.addWorker(&core.Worker{ID: 10, Arrival: 0, Loc: poolRequest(1, 10, 0, 0, 8).Loc, Radius: 5, Platform: 2},
		pricing.MustHistory([]float64{2, 6}))
	m := NewDemCOM(coop, pricing.DefaultMonteCarlo, rand.New(rand.NewSource(5)))
	m.PaymentOracle = true
	d := m.RequestArrives(poolRequest(1, 10, 0, 0, 8))
	if !d.Served {
		t.Skip("oracle payment 2 has acceptance probability 0.5; this seed declined")
	}
	if d.Assignment.Payment != 2 {
		t.Errorf("oracle payment = %v, want exactly 2 (min history)", d.Assignment.Payment)
	}
}

func TestDemCOMClaimRaceFallsToNextWorker(t *testing.T) {
	coop := newFakeCoop()
	loc := poolRequest(1, 10, 0, 0, 8).Loc
	near := &core.Worker{ID: 10, Arrival: 0, Loc: loc, Radius: 5, Platform: 2}
	far := &core.Worker{ID: 11, Arrival: 0, Loc: geo.Point{X: loc.X + 1, Y: loc.Y}, Radius: 5, Platform: 2}
	always := pricing.MustHistory([]float64{0.01})
	coop.addWorker(near, always)
	coop.addWorker(far, always)
	coop.failFirstClaims = 1 // the nearest is "taken" by another platform
	m := NewDemCOM(coop, pricing.MonteCarlo{Xi: 0.1, Eta: 0.3}, rand.New(rand.NewSource(2)))
	d := m.RequestArrives(poolRequest(1, 10, 0, 0, 8))
	if !d.Served || d.Assignment.Worker.ID != 11 {
		t.Fatalf("decision = %+v, want fallback to worker 11", d)
	}
}

func TestRamCOMThresholdDrawnFromTheta(t *testing.T) {
	// maxValue 9 -> theta = 3 -> threshold in {e, e^2, e^3}.
	seen := map[int]bool{}
	for seed := int64(0); seed < 60; seed++ {
		m := NewRamCOM(9, NoCoop{}, rand.New(rand.NewSource(seed)))
		th := m.Threshold()
		matched := false
		for k := 1; k <= 3; k++ {
			if math.Abs(th-math.Exp(float64(k))) < 1e-9 {
				seen[k] = true
				matched = true
			}
		}
		if !matched {
			t.Fatalf("threshold %v not in {e, e^2, e^3}", th)
		}
	}
	for k := 1; k <= 3; k++ {
		if !seen[k] {
			t.Errorf("k=%d never drawn across 60 seeds", k)
		}
	}
}

func TestRamCOMLowValueBypassesInnerWorkers(t *testing.T) {
	// Pick a seed with threshold >= e^2 so a value-5 request is "small".
	var m *RamCOM
	coop := newFakeCoop()
	for seed := int64(0); seed < 100; seed++ {
		c := NewRamCOM(20, coop, rand.New(rand.NewSource(seed)))
		if c.Threshold() > 7 {
			m = c
			break
		}
	}
	if m == nil {
		t.Fatal("no high-threshold seed found")
	}
	m.WorkerArrives(poolWorker(1, 0, 0, 0, 5)) // free inner worker
	// With the default inner fallback, an empty coop view falls back to
	// the idle inner worker rather than rejecting.
	d := m.RequestArrives(poolRequest(1, 10, 0, 0, 5))
	if !d.Served || d.Assignment.Outer {
		t.Fatalf("fallback should serve inner: %+v", d)
	}

	// Literal Algorithm 3 (NoInnerFallback): the low-value request must
	// NOT use the inner worker and is rejected outright.
	m.NoInnerFallback = true
	m.WorkerArrives(poolWorker(2, 0, 0, 0, 5))
	d = m.RequestArrives(poolRequest(2, 11, 0, 0, 5))
	if d.Served {
		t.Fatalf("low-value request served despite NoInnerFallback: %+v", d)
	}
	if m.Pool().Len() != 1 {
		t.Error("inner worker consumed by low-value request")
	}
}

func TestRamCOMHighValueFallsThroughToOuter(t *testing.T) {
	coop := newFakeCoop()
	var m *RamCOM
	for seed := int64(0); seed < 100; seed++ {
		c := NewRamCOM(9, coop, rand.New(rand.NewSource(seed)))
		if math.Abs(c.Threshold()-math.E) < 1e-9 {
			m = c
			break
		}
	}
	if m == nil {
		t.Fatal("no threshold-e seed found")
	}
	// No inner workers; outer worker accepts anything.
	coop.addWorker(&core.Worker{ID: 10, Arrival: 0, Loc: poolRequest(1, 10, 0, 0, 8).Loc, Radius: 5, Platform: 2},
		pricing.MustHistory([]float64{0.5, 1, 2}))
	d := m.RequestArrives(poolRequest(1, 10, 0, 0, 8)) // 8 > e: high value
	if !d.Served || !d.Assignment.Outer {
		t.Fatalf("decision = %+v, want outer service (Example 3 behaviour)", d)
	}
	// Expected-revenue pricing picks a history breakpoint.
	pay := d.Assignment.Payment
	if pay != 0.5 && pay != 1 && pay != 2 {
		t.Errorf("payment %v is not an acceptance-curve breakpoint", pay)
	}
}

func TestRamCOMExampleOneBeatsNothing(t *testing.T) {
	coop := newFakeCoop()
	m := NewRamCOM(9, coop, rand.New(rand.NewSource(4)))
	stats := runPlatform1(t, m, coop)
	if err := validateStats(stats); err != nil {
		t.Error(err)
	}
	if stats.Served == 0 {
		t.Error("RamCOM served nothing on Example 1")
	}
}

func validateStats(s *Stats) error {
	if s.Served != s.ServedInner+s.ServedOuter {
		return errStats("served split", s)
	}
	if s.ServedOuter > s.CoopAttempted {
		return errStats("outer > attempted", s)
	}
	if s.Revenue < 0 || s.PaymentSum < 0 {
		return errStats("negative money", s)
	}
	return nil
}

type statsErr struct {
	msg string
	s   Stats
}

func (e statsErr) Error() string { return e.msg }

func errStats(msg string, s *Stats) error { return statsErr{msg: msg, s: *s} }

func TestStatsObserve(t *testing.T) {
	s := &Stats{}
	r := poolRequest(1, 10, 0, 0, 10)
	w := poolWorker(1, 0, 0, 0, 5)
	s.Observe(Decision{Served: true, Assignment: core.Assignment{Request: r, Worker: w}})
	outerW := &core.Worker{ID: 2, Arrival: 0, Loc: r.Loc, Radius: 5, Platform: 2}
	s.Observe(Decision{Served: true, CoopAttempted: true,
		Assignment: core.Assignment{Request: r, Worker: outerW, Payment: 4, Outer: true}})
	s.Observe(Decision{CoopAttempted: true}) // rejected cooperative
	s.Observe(Decision{})                    // plain rejection

	if s.Requests != 4 || s.Served != 2 || s.ServedInner != 1 || s.ServedOuter != 1 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.CoopAttempted != 2 {
		t.Errorf("CoopAttempted = %d, want 2", s.CoopAttempted)
	}
	if math.Abs(s.Revenue-16) > 1e-9 { // 10 + (10-4)
		t.Errorf("Revenue = %v, want 16", s.Revenue)
	}
	if got := s.AcceptanceRatio(); got != 0.5 {
		t.Errorf("AcceptanceRatio = %v, want 0.5", got)
	}
	if got := s.MeanPaymentRate(); got != 0.4 {
		t.Errorf("MeanPaymentRate = %v, want 0.4", got)
	}
}

// TestStatsObserveZeroValueRequest guards the payment-rate division: a
// degenerate zero-value request served cooperatively must not poison
// PaymentRate (and everything aggregated from it) with NaN.
func TestStatsObserveZeroValueRequest(t *testing.T) {
	s := &Stats{}
	r := poolRequest(1, 10, 0, 0, 0) // value 0
	w := &core.Worker{ID: 2, Arrival: 0, Loc: r.Loc, Radius: 5, Platform: 2}
	s.Observe(Decision{Served: true, CoopAttempted: true,
		Assignment: core.Assignment{Request: r, Worker: w, Payment: 0, Outer: true}})
	if math.IsNaN(s.PaymentRate) || math.IsInf(s.PaymentRate, 0) {
		t.Fatalf("PaymentRate = %v, want finite", s.PaymentRate)
	}
	if s.PaymentRate != 0 {
		t.Errorf("PaymentRate = %v, want 0 for a zero-value request", s.PaymentRate)
	}
	if got := s.MeanPaymentRate(); math.IsNaN(got) {
		t.Errorf("MeanPaymentRate = %v, want finite", got)
	}
}

// TestRamCOMQuoteAgreesWithDemCOMOnMinPayment white-boxes the ablation
// pricing path: with MinPaymentPricing, RamCOM must treat the estimator
// exactly as DemCOM does — any estimate is a quote, including zero, and
// the caller rejects only when it exceeds the request's value. (The old
// est > 0 gate silently rejected where DemCOM would have quoted.)
func TestRamCOMQuoteAgreesWithDemCOMOnMinPayment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewRamCOM(100, nil, rng)
	m.MinPaymentPricing = true
	r := poolRequest(1, 10, 0, 0, 50)
	hist, err := pricing.NewHistory([]float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	group := []*pricing.History{hist}
	payment, ok := m.quote(r, group)
	if !ok {
		t.Fatal("MinPaymentPricing quote rejected a serviceable group")
	}
	est, err := m.MC.MinOuterPayment(r.Value, group, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// Same estimator, so the quote is the estimate — never gated on
	// est > 0. (rng state differs between the two calls, so compare
	// plausibility, not equality.)
	if payment <= 0 || payment > r.Value {
		t.Errorf("quote %v outside (0, value]; estimator alone gave %v", payment, est)
	}
	// The degenerate empty group quotes above the request value in both
	// algorithms, so the caller's payment > value check rejects it; the
	// quote itself must not be the place that filters it.
	if p, ok := m.quote(r, nil); !ok {
		t.Error("empty-group quote rejected at the wrong layer")
	} else if p <= r.Value {
		t.Errorf("empty-group quote %v should exceed the value %v", p, r.Value)
	}
}

// TestClaimRetriesCounted checks that claimNearestAccepting reports how
// many claims it lost before settling, and that the count surfaces in
// the Decision for the metrics pipeline.
func TestClaimRetriesCounted(t *testing.T) {
	coop := newFakeCoop()
	r := poolRequest(1, 10, 0, 0, 20)
	for i := int64(1); i <= 3; i++ {
		w := &core.Worker{ID: i, Arrival: 0, Loc: geo.Point{X: float64(i)}, Radius: 10, Platform: 2}
		hist, err := pricing.NewHistory([]float64{1})
		if err != nil {
			t.Fatal(err)
		}
		coop.addWorker(w, hist)
	}
	coop.failFirstClaims = 2
	cands := coop.EligibleOuter(r)
	if len(cands) != 3 {
		t.Fatalf("eligible = %d, want 3", len(cands))
	}
	best, retries, ok := claimNearestAccepting(coop, cands, r)
	if !ok {
		t.Fatal("claim failed with a claimable candidate remaining")
	}
	if retries != 2 {
		t.Errorf("retries = %d, want 2", retries)
	}
	// Nearest two claims failed; the third-nearest worker wins.
	if best.Worker.ID != 3 {
		t.Errorf("claimed worker %d, want 3 (nearest two lost)", best.Worker.ID)
	}
}
