package online

import (
	"math/rand"
	"sort"

	"crossmatch/internal/core"
	"crossmatch/internal/pricing"
	"crossmatch/internal/trace"
)

// DemCOM is the deterministic cross online matching algorithm
// (Algorithm 1). It gives inner workers absolute priority — an incoming
// request goes to the nearest available inner worker when one covers it
// (lines 3-6) — and otherwise turns the request into a cooperative one:
// the minimum outer payment is estimated by Monte-Carlo sampling
// (Algorithm 2), each eligible outer worker is probed for acceptance at
// that payment, and the nearest accepting worker is claimed (lines
// 8-26). The platform books v - v' for cooperative requests.
type DemCOM struct {
	pool    *Pool
	coop    CoopView
	quoter  *pricing.TableQuoter
	scratch *pricing.Scratch
	rng     *rand.Rand
	tr      *trace.Recorder
	// accepting is the reused probe-result scratch consumed in place by
	// the claim loop; one goroutine drives a matcher, so reuse across
	// requests is race-free.
	accepting []Candidate

	// PaymentOracle, when true, replaces the Algorithm 2 estimator with
	// the exact minimum acceptable payment (the cheapest history value
	// among eligible workers). Used by the ablation study to cost the
	// Monte-Carlo sampling error; off in all paper-faithful runs.
	PaymentOracle bool
}

// NewDemCOM builds the matcher. coop supplies and claims outer workers
// (use NoCoop to degrade to TOTA); mc configures Algorithm 2; rng drives
// both the sampling and the acceptance probes.
func NewDemCOM(coop CoopView, mc pricing.MonteCarlo, rng *rand.Rand) *DemCOM {
	if coop == nil {
		coop = NoCoop{}
	}
	return &DemCOM{
		pool:    NewPool(nil),
		coop:    coop,
		quoter:  pricing.NewQuoter(mc),
		scratch: pricing.NewScratch(),
		rng:     rng,
	}
}

// SetPricingScan switches the quoter between the CDF-table path (false,
// the default) and the exact-scan A/B reference path (true). Both paths
// produce bit-identical quotes; see pricing.TableQuoter.
func (m *DemCOM) SetPricingScan(scan bool) { m.quoter.Scan = scan }

// PricingStats exposes the quoter's cumulative counters.
func (m *DemCOM) PricingStats() pricing.Stats { return m.quoter.Stats() }

// Name implements Matcher.
func (m *DemCOM) Name() string { return "DemCOM" }

// WorkerArrives implements Matcher.
func (m *DemCOM) WorkerArrives(w *core.Worker) { m.pool.Add(w) }

// Pool exposes the inner waiting list.
func (m *DemCOM) Pool() *Pool { return m.pool }

// BindTrace attaches the per-request decision tracer (nil detaches).
func (m *DemCOM) BindTrace(rc *trace.Recorder) { m.tr = rc }

// RequestArrives implements Matcher (Algorithm 1).
func (m *DemCOM) RequestArrives(r *core.Request) Decision {
	sp := m.tr.Begin(r)
	d := m.decide(r, sp)
	sp.Finish(string(d.Reason), d.Assignment.Payment, d.Probes, d.ClaimRetries)
	return d
}

func (m *DemCOM) decide(r *core.Request, sp *trace.Span) Decision {
	// Lines 3-6: nearest available inner worker wins outright.
	t := sp.StageStart()
	w, ok := claimNearestInner(m.pool, r)
	sp.EndStage(trace.StageInner, t)
	if ok {
		return Decision{
			Served:     true,
			Reason:     ReasonInner,
			Assignment: core.Assignment{Request: r, Worker: w},
		}
	}

	// Line 8: eligible outer workers.
	t = sp.StageStart()
	cands := m.coop.EligibleOuter(r)
	sp.EndStage(trace.StageEligibility, t)
	if len(cands) == 0 {
		return Decision{Reason: ReasonNoWorkers} // lines 9-10: reject
	}

	// Line 12: estimate the minimum outer payment.
	t = sp.StageStart()
	payment := m.estimatePayment(r, cands)
	sp.EndStage(trace.StagePricing, t)
	if payment > r.Value {
		// Lines 13-14: serving would lose money; reject. The request
		// still counts as cooperative-attempted for AcpRt.
		return Decision{CoopAttempted: true, Reason: ReasonUnprofitable}
	}

	// Lines 15-20: probe each eligible worker's willingness at v'.
	probes := len(cands)
	t = sp.StageStart()
	m.accepting = appendAccepting(m.accepting[:0], cands, payment, m.rng)
	sp.EndStage(trace.StageProbes, t)
	if len(m.accepting) == 0 {
		return Decision{CoopAttempted: true, Probes: probes, Reason: ReasonNoAcceptor} // line 26
	}

	// Lines 21-24: nearest accepting worker, claimed atomically.
	t = sp.StageStart()
	best, retries, ok := claimNearestAccepting(m.coop, m.accepting, r)
	sp.EndStage(trace.StageClaim, t)
	if !ok {
		return Decision{CoopAttempted: true, Probes: probes, ClaimRetries: retries, Reason: ReasonClaimsLost}
	}
	return Decision{
		Served:        true,
		CoopAttempted: true,
		Probes:        probes,
		ClaimRetries:  retries,
		Reason:        ReasonOuter,
		Assignment: core.Assignment{
			Request: r,
			Worker:  best.Worker,
			Payment: payment,
			Outer:   true,
		},
	}
}

// mcGroupCap bounds the candidate group handed to the Monte-Carlo
// estimator. The minimum outer payment is governed by the cheapest
// acceptance frontiers; candidates whose history floors are far above
// the group's minimum almost never flip a sampled instance, so keeping
// the cap-cheapest candidates leaves the estimate statistically
// unchanged while bounding per-request cost on dense worker pools (the
// full candidate set is still probed for actual acceptance afterwards).
const mcGroupCap = 24

func (m *DemCOM) estimatePayment(r *core.Request, cands []Candidate) float64 {
	group := m.scratch.Group(len(cands))
	for i, c := range cands {
		group[i] = c.History
	}
	if m.PaymentOracle {
		return pricing.ExactMinAcceptable(r.Value, group)
	}
	if len(group) > mcGroupCap {
		sort.Slice(group, func(i, j int) bool { return group[i].Min() < group[j].Min() })
		group = group[:mcGroupCap]
	}
	est, err := m.quoter.MinOuterPayment(r.Value, group, m.rng, m.scratch)
	if err != nil {
		// Only reachable with invalid configuration; fail safe by
		// rejecting cooperation (estimate above value).
		return r.Value * 2
	}
	return est
}
