package online

import (
	"math"
	"math/rand"

	"crossmatch/internal/core"
	"crossmatch/internal/trace"
)

// TOTAGreedy is the traditional online task assignment baseline [9]: an
// incoming request is served by the nearest available inner worker whose
// range covers it, or rejected. It never touches outer workers — the
// special case W_out = empty of the COM problem.
type TOTAGreedy struct {
	pool *Pool
	tr   *trace.Recorder
}

// NewTOTAGreedy returns the baseline matcher over a fresh pool.
func NewTOTAGreedy() *TOTAGreedy { return &TOTAGreedy{pool: NewPool(nil)} }

// Name implements Matcher.
func (m *TOTAGreedy) Name() string { return "TOTA" }

// WorkerArrives implements Matcher.
func (m *TOTAGreedy) WorkerArrives(w *core.Worker) { m.pool.Add(w) }

// Pool exposes the inner waiting list (used by the simulation to share
// this platform's unoccupied workers with cooperating platforms).
func (m *TOTAGreedy) Pool() *Pool { return m.pool }

// BindTrace attaches the per-request decision tracer (nil detaches).
func (m *TOTAGreedy) BindTrace(rc *trace.Recorder) { m.tr = rc }

// RequestArrives implements Matcher.
func (m *TOTAGreedy) RequestArrives(r *core.Request) Decision {
	sp := m.tr.Begin(r)
	t := sp.StageStart()
	w, ok := claimNearestInner(m.pool, r)
	sp.EndStage(trace.StageInner, t)
	if !ok {
		sp.Finish(string(ReasonNoWorkers), 0, 0, 0)
		return Decision{Reason: ReasonNoWorkers}
	}
	sp.Finish(string(ReasonInner), 0, 0, 0)
	return Decision{
		Served:     true,
		Reason:     ReasonInner,
		Assignment: core.Assignment{Request: r, Worker: w},
	}
}

// claimNearestInner takes the nearest waiting inner worker, retrying
// when a cross-platform claim snatches the worker between the nearest
// scan and the removal. In the sequential runtime the first removal
// always succeeds, so behaviour (and rng consumption) is unchanged.
func claimNearestInner(pool *Pool, r *core.Request) (*core.Worker, bool) {
	for {
		w, ok := pool.Nearest(r)
		if !ok {
			return nil, false
		}
		if pool.Remove(w.ID) {
			return w, true
		}
	}
}

// GreedyRT is the randomized-threshold greedy of [9] (Greedy-RT): it
// draws k uniformly from {0, .., theta-1} with theta =
// ceil(ln(Umax+1)), serves only requests whose value exceeds e^k, and
// assigns them greedily to the nearest available inner worker. Its
// competitive ratio under the adversarial model is
// 1/(2e * ceil(ln(Umax+1))); the paper uses it as the revenue-maximizing
// single-platform reference in the competitive-ratio discussion.
type GreedyRT struct {
	pool      *Pool
	threshold float64
	tr        *trace.Recorder
}

// NewGreedyRT builds the matcher; maxValue is the a-priori bound Umax on
// request values (as in [9], assumed known), rng drives the draw of k.
func NewGreedyRT(maxValue float64, rng *rand.Rand) *GreedyRT {
	theta := int(math.Ceil(math.Log(maxValue + 1)))
	if theta < 1 {
		theta = 1
	}
	k := rng.Intn(theta) // k in {0, .., theta-1}
	return &GreedyRT{
		pool:      NewPool(nil),
		threshold: math.Exp(float64(k)),
	}
}

// Name implements Matcher.
func (m *GreedyRT) Name() string { return "Greedy-RT" }

// Threshold returns the drawn value threshold e^k.
func (m *GreedyRT) Threshold() float64 { return m.threshold }

// WorkerArrives implements Matcher.
func (m *GreedyRT) WorkerArrives(w *core.Worker) { m.pool.Add(w) }

// Pool exposes the inner waiting list.
func (m *GreedyRT) Pool() *Pool { return m.pool }

// BindTrace attaches the per-request decision tracer (nil detaches).
func (m *GreedyRT) BindTrace(rc *trace.Recorder) { m.tr = rc }

// RequestArrives implements Matcher.
func (m *GreedyRT) RequestArrives(r *core.Request) Decision {
	sp := m.tr.Begin(r)
	if r.Value < m.threshold {
		sp.Finish(string(ReasonBelowThreshold), 0, 0, 0)
		return Decision{Reason: ReasonBelowThreshold}
	}
	t := sp.StageStart()
	w, ok := claimNearestInner(m.pool, r)
	sp.EndStage(trace.StageInner, t)
	if !ok {
		sp.Finish(string(ReasonNoWorkers), 0, 0, 0)
		return Decision{Reason: ReasonNoWorkers}
	}
	sp.Finish(string(ReasonInner), 0, 0, 0)
	return Decision{
		Served:     true,
		Reason:     ReasonInner,
		Assignment: core.Assignment{Request: r, Worker: w},
	}
}
