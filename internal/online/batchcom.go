package online

import (
	"math/rand"
	"sort"

	"crossmatch/internal/core"
	"crossmatch/internal/match"
	"crossmatch/internal/pricing"
	"crossmatch/internal/trace"
)

// DefaultBatchWindow is the window length (virtual ticks) used when
// BatchCOM is configured with a non-positive window.
const DefaultBatchWindow core.Time = 10

// BatchCOM is the windowed dispatch variant of cross online matching:
// instead of deciding each request greedily at arrival (DemCOM), it
// buffers arrivals for a virtual-time window W, builds the feasible
// inner+outer edge set for the whole batch, and commits a max-weight
// matching when the window flushes. Edge weights follow Algorithm 1's
// revenue model — v for an inner assignment, v−v' for an outer one with
// v' the Monte-Carlo minimum outer payment — so a flush is exactly the
// offline oracle restricted to one window's requests and the workers
// waiting at flush time. Per-request deadlines bound waiting: a request
// whose deadline lands before the window's scheduled end pulls the whole
// flush forward.
//
// Determinism contract (the fuzz-guarded invariant): a flush is a pure
// function of the buffered request set and the waiting-list state —
// requests are canonicalized by ID before any rng is consumed, candidate
// lists are sorted by worker ID, and quote/probe draws happen per
// request in ID order, so intra-window delivery permutations of
// same-time arrivals cannot change the matching.
//
// The driver contract: the simulation layer must call Advance(t) up to
// every event's time before delivering it (internal/platform.settleDue
// does), so a window is always flushed before any arrival at or past its
// due time is buffered.
type BatchCOM struct {
	pool    *Pool
	coop    CoopView
	quoter  *pricing.TableQuoter
	scratch *pricing.Scratch
	rng     *rand.Rand
	tr      *trace.Recorder

	window   core.Time
	deadline core.Time // 0 = unbounded per-request wait

	// Open-window state. At most one window is open: it opens when a
	// request is buffered into an empty buf and closes at the first
	// Advance at or past flushAt.
	buf      []*core.Request
	winStart core.Time
	flushAt  core.Time

	// Flush scratch, reused across windows (one goroutine drives a
	// matcher, so reuse is race-free).
	builder  match.Builder
	ents     []winEntry
	allInner []*core.Worker
	allOuter []outerProbe
	colWs    []*core.Worker
	out      []WindowDecision
}

// winEntry is one buffered request's flush-time state: its candidate
// ranges into the flattened allInner/allOuter arrays plus the pricing
// and probing outcome that determines its arcs and, if unmatched, its
// rejection reason.
type winEntry struct {
	r                *core.Request
	innerLo, innerHi int32
	outerLo, outerHi int32
	payment          float64
	probes           int
	hadOuter         bool // eligible outer candidates existed
	profitable       bool // quoted payment <= request value
	anyAccept        bool // at least one probe accepted
}

// outerProbe is one outer candidate plus its probe result.
type outerProbe struct {
	cand    Candidate
	accepts bool
}

// NewBatchCOM builds the matcher. coop supplies and claims outer workers
// (use NoCoop to degrade to single-platform batching); mc configures the
// Algorithm 2 payment estimator; rng drives sampling and acceptance
// probes; window is the batching window in virtual ticks (non-positive
// selects DefaultBatchWindow); deadline, when positive, caps any
// request's wait, pulling the flush forward.
func NewBatchCOM(coop CoopView, mc pricing.MonteCarlo, rng *rand.Rand, window, deadline core.Time) *BatchCOM {
	if coop == nil {
		coop = NoCoop{}
	}
	if window <= 0 {
		window = DefaultBatchWindow
	}
	return &BatchCOM{
		pool:     NewPool(nil),
		coop:     coop,
		quoter:   pricing.NewQuoter(mc),
		scratch:  pricing.NewScratch(),
		rng:      rng,
		window:   window,
		deadline: deadline,
	}
}

// SetPricingScan switches the quoter between the CDF-table path and the
// exact-scan A/B reference path; both produce bit-identical quotes.
func (m *BatchCOM) SetPricingScan(scan bool) { m.quoter.Scan = scan }

// PricingStats exposes the quoter's cumulative counters.
func (m *BatchCOM) PricingStats() pricing.Stats { return m.quoter.Stats() }

// Name implements Matcher.
func (m *BatchCOM) Name() string { return "BatchCOM" }

// WorkerArrives implements Matcher.
func (m *BatchCOM) WorkerArrives(w *core.Worker) { m.pool.Add(w) }

// Pool exposes the inner waiting list.
func (m *BatchCOM) Pool() *Pool { return m.pool }

// BindTrace attaches the per-request decision tracer (nil detaches).
// BatchCOM spans open and close at flush time, so they carry the batched
// outcome but no stage timings.
func (m *BatchCOM) BindTrace(rc *trace.Recorder) { m.tr = rc }

// Window reports the configured window length.
func (m *BatchCOM) Window() core.Time { return m.window }

// RequestArrives implements Matcher: the request is buffered into the
// open window (opening one if none is) and a Deferred placeholder is
// returned; the real Decision arrives from Advance when the window
// flushes.
func (m *BatchCOM) RequestArrives(r *core.Request) Decision {
	if len(m.buf) == 0 {
		m.winStart = r.Arrival
		m.flushAt = m.winStart + m.window
	}
	if m.deadline > 0 {
		if due := r.Arrival + m.deadline; due < m.flushAt {
			m.flushAt = due
		}
	}
	m.buf = append(m.buf, r)
	return Decision{Deferred: true, Reason: ReasonBuffered}
}

// NextFlush implements WindowedMatcher.
func (m *BatchCOM) NextFlush() (core.Time, bool) {
	return m.flushAt, len(m.buf) > 0
}

// Advance implements WindowedMatcher: when the open window is due at or
// before t it flushes — at its scheduled due time, not at t, so the
// decisions' timestamps are independent of how far the driver's clock
// jumped. The returned slice is reused across calls.
func (m *BatchCOM) Advance(t core.Time) []WindowDecision {
	if len(m.buf) == 0 || t < m.flushAt {
		return nil
	}
	at := m.flushAt
	m.out = m.out[:0]
	m.flush(at)
	m.buf = m.buf[:0]
	return m.out
}

// flush decides every buffered request at virtual time at: canonicalize
// by request ID, gather+price+probe candidates in that order, solve one
// max-weight matching over the batch, then commit assignments in the
// same canonical order.
func (m *BatchCOM) flush(at core.Time) {
	sort.Slice(m.buf, func(i, j int) bool { return m.buf[i].ID < m.buf[j].ID })

	m.ents = m.ents[:0]
	m.allInner = m.allInner[:0]
	m.allOuter = m.allOuter[:0]
	m.colWs = m.colWs[:0]

	// Phase 1: candidates, quotes and probes, in canonical request
	// order. All rng consumption happens here, so it is a function of
	// the ID-sorted batch only. Outer candidates are copied out of the
	// hub's reused buffer and ID-sorted before any draw.
	for _, r := range m.buf {
		e := winEntry{r: r, innerLo: int32(len(m.allInner))}
		m.allInner = m.pool.AppendCovering(m.allInner, r)
		e.innerHi = int32(len(m.allInner))
		inner := m.allInner[e.innerLo:e.innerHi]
		sort.Slice(inner, func(i, j int) bool { return inner[i].ID < inner[j].ID })

		e.outerLo = int32(len(m.allOuter))
		for _, c := range m.coop.EligibleOuter(r) {
			m.allOuter = append(m.allOuter, outerProbe{cand: c})
		}
		e.outerHi = int32(len(m.allOuter))
		outer := m.allOuter[e.outerLo:e.outerHi]
		sort.Slice(outer, func(i, j int) bool {
			return outer[i].cand.Worker.ID < outer[j].cand.Worker.ID
		})

		if len(outer) > 0 {
			e.hadOuter = true
			e.payment = m.estimatePayment(r, outer)
			if e.payment <= r.Value {
				e.profitable = true
				e.probes = len(outer)
				for k := range outer {
					if outer[k].cand.History.Accepts(e.payment, m.rng) {
						outer[k].accepts = true
						e.anyAccept = true
					}
				}
			}
		}
		m.ents = append(m.ents, e)
	}

	// Phase 2: distinct worker columns, sorted by ID. Only workers that
	// can receive an arc become columns: every inner candidate, and the
	// accepting outer candidates.
	for i := range m.ents {
		e := &m.ents[i]
		m.colWs = append(m.colWs, m.allInner[e.innerLo:e.innerHi]...)
		for _, p := range m.allOuter[e.outerLo:e.outerHi] {
			if p.accepts {
				m.colWs = append(m.colWs, p.cand.Worker)
			}
		}
	}
	sort.Slice(m.colWs, func(i, j int) bool { return m.colWs[i].ID < m.colWs[j].ID })
	j := 0
	for i, w := range m.colWs {
		if i == 0 || w.ID != m.colWs[j-1].ID {
			m.colWs[j] = w
			j++
		}
	}
	m.colWs = m.colWs[:j]

	// Phase 3: arcs and the solve. Inner arcs carry the full value,
	// outer arcs the platform's v−v' margin; non-positive margins are
	// omitted (the solvers would drop them anyway).
	m.builder.Reset(len(m.colWs), len(m.ents))
	for i := range m.ents {
		e := &m.ents[i]
		for _, w := range m.allInner[e.innerLo:e.innerHi] {
			m.builder.Arc(m.colOf(w.ID), i, e.r.Value)
		}
		if e.profitable {
			if wgt := e.r.Value - e.payment; wgt > 0 {
				for _, p := range m.allOuter[e.outerLo:e.outerHi] {
					if p.accepts {
						m.builder.Arc(m.colOf(p.cand.Worker.ID), i, wgt)
					}
				}
			}
		}
	}
	res := m.builder.Solve()

	// Phase 4: commit in canonical order. Sequentially a claim cannot
	// fail (candidates were gathered inside this flush); under the
	// concurrent multi-platform runtime a lost race surfaces as
	// ReasonClaimsLost, exactly like the greedy matchers.
	for i := range m.ents {
		e := &m.ents[i]
		sp := m.tr.Begin(e.r)
		d := m.commit(e, res.WorkerOf[i])
		sp.Finish(string(d.Reason), d.Assignment.Payment, d.Probes, d.ClaimRetries)
		m.out = append(m.out, WindowDecision{Request: e.r, At: at, Decision: d})
	}
}

// colOf returns the worker's column index in the ID-sorted colWs.
func (m *BatchCOM) colOf(id int64) int {
	return sort.Search(len(m.colWs), func(k int) bool { return m.colWs[k].ID >= id })
}

// commit turns one request's solver assignment (or -1) into a Decision,
// claiming the worker from the pool or the hub.
func (m *BatchCOM) commit(e *winEntry, col int) Decision {
	r := e.r
	if col >= 0 {
		w := m.colWs[col]
		if w.Platform == r.Platform {
			if !m.pool.Remove(w.ID) {
				return Decision{Reason: ReasonClaimsLost, ClaimRetries: 1, CoopAttempted: e.hadOuter, Probes: e.probes}
			}
			return Decision{
				Served:     true,
				Reason:     ReasonInner,
				Probes:     e.probes,
				Assignment: core.Assignment{Request: r, Worker: w},
			}
		}
		if !m.coop.Claim(w.ID) {
			return Decision{Reason: ReasonClaimsLost, ClaimRetries: 1, CoopAttempted: true, Probes: e.probes}
		}
		return Decision{
			Served:        true,
			CoopAttempted: true,
			Probes:        e.probes,
			Reason:        ReasonOuter,
			Assignment: core.Assignment{
				Request: r,
				Worker:  w,
				Payment: e.payment,
				Outer:   true,
			},
		}
	}
	hadInner := e.innerHi > e.innerLo
	switch {
	case !hadInner && !e.hadOuter:
		return Decision{Reason: ReasonNoWorkers}
	case !hadInner && !e.profitable:
		return Decision{CoopAttempted: true, Reason: ReasonUnprofitable}
	case !hadInner && !e.anyAccept:
		return Decision{CoopAttempted: true, Probes: e.probes, Reason: ReasonNoAcceptor}
	default:
		// Feasible workers existed but the solver spent them on other
		// requests in the window.
		return Decision{CoopAttempted: e.hadOuter, Probes: e.probes, Reason: ReasonWindowLost}
	}
}

// estimatePayment is DemCOM's Algorithm 2 estimator over the ID-sorted
// outer candidates (same mcGroupCap truncation, same failure fallback).
func (m *BatchCOM) estimatePayment(r *core.Request, probes []outerProbe) float64 {
	group := m.scratch.Group(len(probes))
	for i := range probes {
		group[i] = probes[i].cand.History
	}
	if len(group) > mcGroupCap {
		sort.Slice(group, func(i, j int) bool { return group[i].Min() < group[j].Min() })
		group = group[:mcGroupCap]
	}
	est, err := m.quoter.MinOuterPayment(r.Value, group, m.rng, m.scratch)
	if err != nil {
		return r.Value * 2
	}
	return est
}
