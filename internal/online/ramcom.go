package online

import (
	"math"
	"math/rand"

	"crossmatch/internal/core"
	"crossmatch/internal/pricing"
	"crossmatch/internal/trace"
)

// RamCOM is the randomized cross online matching algorithm
// (Algorithm 3). At construction it draws k uniformly from {1..theta},
// theta = ceil(ln(max(v)+1)), fixing a value threshold e^k. Requests
// worth more than the threshold are steered to inner workers — a random
// available one, keeping the analysis's oblivious choice — while
// smaller requests are left to outer workers, priced at the payment
// maximizing the expected revenue (value - v') * pr(v', W) of
// Definition 4.1. When a large-value request finds no free inner worker
// it also falls through to the cooperative path (the behaviour of the
// paper's Example 3, where r3 exceeds the threshold but is served by
// outer worker w3).
type RamCOM struct {
	pool      *Pool
	coop      CoopView
	quoter    *pricing.TableQuoter
	scratch   *pricing.Scratch
	rng       *rand.Rand
	threshold float64
	tr        *trace.Recorder
	// covScratch is the reused buffer of the high-value branch's
	// coverage query; a matcher is driven by one goroutine, so reuse
	// across requests is race-free.
	covScratch []*core.Worker
	// accepting is the reused probe-result scratch consumed in place by
	// the claim loop.
	accepting []Candidate

	// ThresholdPricing, when true, replaces the exact expected-revenue
	// maximization with the 1/e-style randomized threshold quote
	// (pricing.ThresholdQuote) — the approximation behaviour of the
	// pricing scheme the paper cites. Used by the ablation study.
	ThresholdPricing bool
	// MinPaymentPricing, when true, prices cooperative requests at
	// DemCOM's minimum outer payment instead of the expected-revenue
	// maximizer, isolating the incentive mechanism from the value
	// routing. Used by the ablation study; mutually exclusive with
	// ThresholdPricing (MinPaymentPricing wins if both are set).
	MinPaymentPricing bool
	// MC configures Algorithm 2 when MinPaymentPricing is on.
	MC pricing.MonteCarlo
	// NoInnerFallback disables the inner-worker fallback for low-value
	// requests whose cooperative path fails. Algorithm 3 as printed
	// rejects such requests outright, which makes RamCOM's revenue
	// collapse whenever inner workers are plentiful — contradicting the
	// paper's own Fig. 5(e), where all algorithms converge once |W| is
	// large ("all the requests can be served by the inner crowd
	// workers"). The default therefore falls back to an idle inner
	// worker, mirroring the high-value branch's fallback the paper
	// demonstrates in Example 3; set NoInnerFallback for the
	// literal-Algorithm-3 ablation.
	NoInnerFallback bool
}

// NewRamCOM builds the matcher. maxValue is the a-priori bound max(v_r)
// of Algorithm 3 (the paper assumes it known; the workload generators
// publish it); rng drives the draw of k, the random inner-worker choice
// and the acceptance probes.
func NewRamCOM(maxValue float64, coop CoopView, rng *rand.Rand) *RamCOM {
	if coop == nil {
		coop = NoCoop{}
	}
	theta := int(math.Ceil(math.Log(maxValue + 1)))
	if theta < 1 {
		theta = 1
	}
	k := 1 + rng.Intn(theta) // k in {1, .., theta}
	return &RamCOM{
		pool:      NewPool(nil),
		coop:      coop,
		quoter:    pricing.NewQuoter(pricing.DefaultMonteCarlo),
		scratch:   pricing.NewScratch(),
		rng:       rng,
		threshold: math.Exp(float64(k)),
		MC:        pricing.DefaultMonteCarlo,
	}
}

// SetPricingScan switches the quoter between the CDF-table path (false,
// the default) and the exact-scan A/B reference path (true). Both paths
// produce bit-identical quotes; see pricing.TableQuoter.
func (m *RamCOM) SetPricingScan(scan bool) { m.quoter.Scan = scan }

// PricingStats exposes the quoter's cumulative counters.
func (m *RamCOM) PricingStats() pricing.Stats { return m.quoter.Stats() }

// Name implements Matcher.
func (m *RamCOM) Name() string { return "RamCOM" }

// Threshold returns the drawn value threshold e^k.
func (m *RamCOM) Threshold() float64 { return m.threshold }

// WorkerArrives implements Matcher.
func (m *RamCOM) WorkerArrives(w *core.Worker) { m.pool.Add(w) }

// Pool exposes the inner waiting list.
func (m *RamCOM) Pool() *Pool { return m.pool }

// BindTrace attaches the per-request decision tracer (nil detaches).
func (m *RamCOM) BindTrace(rc *trace.Recorder) { m.tr = rc }

// RequestArrives implements Matcher (Algorithm 3).
func (m *RamCOM) RequestArrives(r *core.Request) Decision {
	sp := m.tr.Begin(r)
	d := m.decide(r, sp)
	sp.Finish(string(d.Reason), d.Assignment.Payment, d.Probes, d.ClaimRetries)
	return d
}

func (m *RamCOM) decide(r *core.Request, sp *trace.Span) Decision {
	if r.Value > m.threshold {
		// Lines 4-8: random available inner worker. The removal can lose
		// to a concurrent cross-platform claim, in which case the
		// remaining candidates are re-queried and redrawn; sequentially
		// the first removal always succeeds and rng use is unchanged.
		t := sp.StageStart()
		for {
			m.covScratch = m.pool.AppendCovering(m.covScratch[:0], r)
			cands := m.covScratch
			if len(cands) == 0 {
				break
			}
			w := cands[m.rng.Intn(len(cands))]
			if !m.pool.Remove(w.ID) {
				continue
			}
			sp.EndStage(trace.StageInner, t)
			return Decision{
				Served:     true,
				Reason:     ReasonInner,
				Assignment: core.Assignment{Request: r, Worker: w},
			}
		}
		sp.EndStage(trace.StageInner, t)
		// No free inner worker: fall through to the cooperative path
		// (Example 3's handling of r3).
	}

	// Lines 9-11: price the cooperative request and run Algorithm 1's
	// outer-assignment block (lines 13-26).
	if d, served := m.tryOuter(r, sp); served {
		return d
	} else if r.Value > m.threshold {
		// The high-value branch already found no free inner worker.
		return d
	} else if m.NoInnerFallback {
		return d
	} else {
		t := sp.StageStart()
		w, ok := claimNearestInner(m.pool, r)
		sp.EndStage(trace.StageInner, t)
		if !ok {
			return d
		}
		// Inner fallback: an idle inner worker beats rejection.
		return Decision{
			Served:        true,
			CoopAttempted: d.CoopAttempted,
			Probes:        d.Probes,
			ClaimRetries:  d.ClaimRetries,
			Reason:        ReasonInnerFallback,
			Assignment:    core.Assignment{Request: r, Worker: w},
		}
	}
}

// tryOuter runs the cooperative path; served reports whether the request
// was assigned.
func (m *RamCOM) tryOuter(r *core.Request, sp *trace.Span) (Decision, bool) {
	t := sp.StageStart()
	cands := m.coop.EligibleOuter(r)
	sp.EndStage(trace.StageEligibility, t)
	if len(cands) == 0 {
		return Decision{Reason: ReasonNoWorkers}, false
	}
	t = sp.StageStart()
	group := m.scratch.Group(len(cands))
	for i, c := range cands {
		group[i] = c.History
	}
	payment, ok := m.quote(r, group)
	sp.EndStage(trace.StagePricing, t)
	if !ok || payment > r.Value {
		return Decision{CoopAttempted: true, Reason: ReasonUnprofitable}, false
	}

	probes := len(cands)
	t = sp.StageStart()
	m.accepting = appendAccepting(m.accepting[:0], cands, payment, m.rng)
	sp.EndStage(trace.StageProbes, t)
	if len(m.accepting) == 0 {
		return Decision{CoopAttempted: true, Probes: probes, Reason: ReasonNoAcceptor}, false
	}
	t = sp.StageStart()
	best, retries, claimed := claimNearestAccepting(m.coop, m.accepting, r)
	sp.EndStage(trace.StageClaim, t)
	if !claimed {
		return Decision{CoopAttempted: true, Probes: probes, ClaimRetries: retries, Reason: ReasonClaimsLost}, false
	}
	return Decision{
		Served:        true,
		CoopAttempted: true,
		Probes:        probes,
		ClaimRetries:  retries,
		Reason:        ReasonOuter,
		Assignment: core.Assignment{
			Request: r,
			Worker:  best.Worker,
			Payment: payment,
			Outer:   true,
		},
	}, true
}

// quote computes the outer payment for a cooperative request according
// to the configured pricing mode. ok=false means "reject" (no payment
// can yield positive expected revenue).
func (m *RamCOM) quote(r *core.Request, group []*pricing.History) (float64, bool) {
	switch {
	case m.MinPaymentPricing:
		m.quoter.MC = m.MC // honor post-construction MC changes
		est, err := m.quoter.MinOuterPayment(r.Value, group, m.rng, m.scratch)
		if err != nil {
			return 0, false
		}
		// A zero (or any non-positive) estimate is still a quote, exactly
		// as in DemCOM: the caller rejects on est > r.Value, and the
		// acceptance probes handle a free offer by refusing it
		// (pr(0, w) = 0). Rejecting here on est <= 0 made the two
		// algorithms disagree on identical estimates.
		return est, true
	case m.ThresholdPricing:
		q, err := m.quoter.ThresholdQuote(r.Value, group, 1-m.rng.Float64() /* (0,1] */, m.scratch)
		if err != nil || q.Payment <= 0 {
			return 0, false
		}
		return q.Payment, true
	default:
		q, err := m.quoter.MaxExpectedRevenue(r.Value, group, m.scratch)
		if err != nil || q.ExpectedRev <= 0 {
			return 0, false
		}
		return q.Payment, true
	}
}
