// Package online implements the online matching algorithms of the paper:
//
//   - TOTAGreedy — the traditional online task assignment baseline [9]:
//     serve each incoming request with the nearest available inner
//     worker, never cooperating across platforms.
//   - GreedyRT — the randomized-threshold variant of [9] used in the
//     competitive-ratio study.
//   - DemCOM — deterministic cross online matching (Algorithm 1 + the
//     Monte-Carlo minimum outer payment of Algorithm 2).
//   - RamCOM — randomized cross online matching (Algorithm 3): a random
//     value threshold steers large-value requests to inner workers and
//     prices cooperative requests at the maximum expected revenue of
//     Definition 4.1.
//
// A matcher consumes one platform's arrival events. Inner workers are
// held in a Pool owned by the matcher's platform; outer workers are
// reached through the CoopView interface, implemented by the
// platform.Hub, which shares unoccupied workers across platforms and
// makes claims atomic (an outer worker assigned by any platform
// disappears from every waiting list, per Definition 2.3).
package online

import (
	"math/rand"

	"crossmatch/internal/core"
	"crossmatch/internal/pricing"
)

// Candidate is an outer worker eligible for a cooperative request,
// paired with its acceptance history.
type Candidate struct {
	Worker  *core.Worker
	History *pricing.History
}

// CoopView is the matcher's window onto other platforms' unoccupied
// workers. Implementations must apply the time and range constraints of
// Definition 2.6 in EligibleOuter and must make Claim atomic across
// platforms.
type CoopView interface {
	// EligibleOuter returns the outer workers able to serve r under all
	// Definition 2.6 constraints, i.e. unoccupied workers of other
	// platforms whose service range covers r and who arrived before it.
	// The returned slice is only valid until the next EligibleOuter call
	// on the same view: implementations reuse the backing buffer to keep
	// the hottest cooperative path allocation-free.
	EligibleOuter(r *core.Request) []Candidate
	// Claim attempts to take the worker for an assignment, removing it
	// from every platform's waiting list. It reports false when the
	// worker was concurrently assigned elsewhere — under the concurrent
	// multi-platform runtime that includes losing a genuine race against
	// another platform's claim or the owner's own inner assignment.
	Claim(workerID int64) bool
}

// NoCoop is a CoopView with no cooperative platforms: COM degenerates to
// TOTA when W_out is empty (used by the degradation ablation).
type NoCoop struct{}

// EligibleOuter implements CoopView.
func (NoCoop) EligibleOuter(*core.Request) []Candidate { return nil }

// Claim implements CoopView.
func (NoCoop) Claim(int64) bool { return false }

// Decision records the outcome of one request arrival.
type Decision struct {
	Assignment core.Assignment
	Served     bool
	// CoopAttempted is true when the request was offered to outer
	// workers (it became a "cooperative request"), regardless of
	// whether any accepted. AcpRt in the evaluation is
	// served-cooperative / attempted-cooperative.
	CoopAttempted bool
	// Probes counts the worker acceptance probes issued while deciding
	// this request (Algorithm 1 lines 17-20 / Algorithm 3's reuse of
	// them); the observability layer aggregates it across runs.
	Probes int
	// ClaimRetries counts cooperative claims lost to another platform
	// while deciding this request: each one is a retry of Algorithm 1's
	// claim loop against the next-nearest accepting worker. Always zero
	// in the sequential runtime; under the concurrent runtime it measures
	// real cross-platform contention.
	ClaimRetries int
}

// Matcher is an online matching algorithm bound to one platform.
type Matcher interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// WorkerArrives adds an inner worker to the platform's waiting list.
	WorkerArrives(w *core.Worker)
	// RequestArrives decides the fate of an incoming request
	// immediately (the online constraint): serve it with an inner
	// worker, serve it with a claimed outer worker, or reject it.
	RequestArrives(r *core.Request) Decision
}

// Stats tallies a matcher's outcomes; the simulation layer aggregates
// them into the paper's effectiveness metrics.
type Stats struct {
	Requests      int     // requests seen
	Served        int     // requests served (inner + outer)
	ServedInner   int     // requests served by inner workers
	ServedOuter   int     // cooperative requests accepted (|CoR| contribution)
	CoopAttempted int     // requests offered to outer workers
	Revenue       float64 // total platform revenue (Equation 1)
	PaymentSum    float64 // sum of outer payments v'
	PaymentRate   float64 // sum of v'/v over outer assignments
}

// Observe folds one decision into the stats.
func (s *Stats) Observe(d Decision) {
	s.Requests++
	if d.CoopAttempted {
		s.CoopAttempted++
	}
	if !d.Served {
		return
	}
	s.Served++
	s.Revenue += d.Assignment.Revenue()
	if d.Assignment.Outer {
		s.ServedOuter++
		s.PaymentSum += d.Assignment.Payment
		// Guard the rate against degenerate zero-value requests: 0/0
		// would poison every aggregate built on PaymentRate with NaN.
		if v := d.Assignment.Request.Value; v > 0 {
			s.PaymentRate += d.Assignment.Payment / v
		}
	} else {
		s.ServedInner++
	}
}

// AcceptanceRatio returns served-cooperative over attempted-cooperative
// (the paper's AcpRt), or 0 when no cooperation was attempted.
func (s *Stats) AcceptanceRatio() float64 {
	if s.CoopAttempted == 0 {
		return 0
	}
	return float64(s.ServedOuter) / float64(s.CoopAttempted)
}

// MeanPaymentRate returns the average v'/v over outer assignments (the
// paper's outer payment rate), or 0 when there were none.
func (s *Stats) MeanPaymentRate() float64 {
	if s.ServedOuter == 0 {
		return 0
	}
	return s.PaymentRate / float64(s.ServedOuter)
}

// probeAccepting samples each candidate's willingness to serve at the
// given payment (Algorithm 1, lines 17-20) and returns the accepting
// subset, preserving order.
func probeAccepting(cands []Candidate, payment float64, rng *rand.Rand) []Candidate {
	accepting := cands[:0:0]
	for _, c := range cands {
		if c.History.Accepts(payment, rng) {
			accepting = append(accepting, c)
		}
	}
	return accepting
}

// nearestCandidate returns the candidate whose worker is closest to the
// request, ties broken by smallest worker ID; ok=false on empty input.
func nearestCandidate(cands []Candidate, r *core.Request) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := cands[0]
	bestD := best.Worker.Loc.Dist2(r.Loc)
	for _, c := range cands[1:] {
		d := c.Worker.Loc.Dist2(r.Loc)
		if d < bestD || (d == bestD && c.Worker.ID < best.Worker.ID) {
			best, bestD = c, d
		}
	}
	return best, true
}

// claimNearestAccepting walks accepting candidates from nearest to
// farthest, claiming the first still available (Algorithm 1, lines
// 21-24, hardened against concurrent claims by other platforms). It
// also reports how many claims were lost on the way — zero in the
// sequential runtime, the contention signal under the concurrent one.
func claimNearestAccepting(coop CoopView, cands []Candidate, r *core.Request) (Candidate, int, bool) {
	remaining := append([]Candidate(nil), cands...)
	retries := 0
	for len(remaining) > 0 {
		best, _ := nearestCandidate(remaining, r)
		if coop.Claim(best.Worker.ID) {
			return best, retries, true
		}
		// Claimed elsewhere between eligibility and now; drop and retry.
		retries++
		for i, c := range remaining {
			if c.Worker.ID == best.Worker.ID {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}
	return Candidate{}, retries, false
}
