// Package online implements the online matching algorithms of the paper:
//
//   - TOTAGreedy — the traditional online task assignment baseline [9]:
//     serve each incoming request with the nearest available inner
//     worker, never cooperating across platforms.
//   - GreedyRT — the randomized-threshold variant of [9] used in the
//     competitive-ratio study.
//   - DemCOM — deterministic cross online matching (Algorithm 1 + the
//     Monte-Carlo minimum outer payment of Algorithm 2).
//   - RamCOM — randomized cross online matching (Algorithm 3): a random
//     value threshold steers large-value requests to inner workers and
//     prices cooperative requests at the maximum expected revenue of
//     Definition 4.1.
//
// A matcher consumes one platform's arrival events. Inner workers are
// held in a Pool owned by the matcher's platform; outer workers are
// reached through the CoopView interface, implemented by the
// platform.Hub, which shares unoccupied workers across platforms and
// makes claims atomic (an outer worker assigned by any platform
// disappears from every waiting list, per Definition 2.3).
package online

import (
	"math/rand"

	"crossmatch/internal/core"
	"crossmatch/internal/pricing"
)

// Candidate is an outer worker eligible for a cooperative request,
// paired with its acceptance history.
type Candidate struct {
	Worker  *core.Worker
	History *pricing.History
}

// CoopView is the matcher's window onto other platforms' unoccupied
// workers. Implementations must apply the time and range constraints of
// Definition 2.6 in EligibleOuter and must make Claim atomic across
// platforms.
type CoopView interface {
	// EligibleOuter returns the outer workers able to serve r under all
	// Definition 2.6 constraints, i.e. unoccupied workers of other
	// platforms whose service range covers r and who arrived before it.
	// The returned slice is only valid until the next EligibleOuter call
	// on the same view: implementations reuse the backing buffer to keep
	// the hottest cooperative path allocation-free.
	EligibleOuter(r *core.Request) []Candidate
	// Claim attempts to take the worker for an assignment, removing it
	// from every platform's waiting list. It reports false when the
	// worker was concurrently assigned elsewhere — under the concurrent
	// multi-platform runtime that includes losing a genuine race against
	// another platform's claim or the owner's own inner assignment.
	Claim(workerID int64) bool
}

// NoCoop is a CoopView with no cooperative platforms: COM degenerates to
// TOTA when W_out is empty (used by the degradation ablation).
type NoCoop struct{}

// EligibleOuter implements CoopView.
func (NoCoop) EligibleOuter(*core.Request) []Candidate { return nil }

// Claim implements CoopView.
func (NoCoop) Claim(int64) bool { return false }

// Reason tags how a decision ended; it is the outcome vocabulary of the
// per-request tracing layer (internal/trace) and reads as the span's
// "outcome" field in exports.
type Reason string

const (
	// ReasonInner — served by the nearest (or, RamCOM high-value branch,
	// a random) inner worker.
	ReasonInner Reason = "inner"
	// ReasonInnerFallback — RamCOM's low-value cooperative path failed
	// and an idle inner worker served the request instead.
	ReasonInnerFallback Reason = "inner-fallback"
	// ReasonOuter — served by a claimed outer worker at payment v'.
	ReasonOuter Reason = "outer"
	// ReasonNoWorkers — no available inner worker and no eligible outer
	// candidate.
	ReasonNoWorkers Reason = "no-workers"
	// ReasonUnprofitable — the outer payment quote exceeded the request
	// value (Algorithm 1 lines 13-14).
	ReasonUnprofitable Reason = "unprofitable"
	// ReasonNoAcceptor — every probed candidate declined the payment.
	ReasonNoAcceptor Reason = "no-acceptor"
	// ReasonClaimsLost — every accepting candidate was claimed by
	// another platform first.
	ReasonClaimsLost Reason = "claims-lost"
	// ReasonBelowThreshold — Greedy-RT rejected the request for falling
	// below its randomized value threshold.
	ReasonBelowThreshold Reason = "below-threshold"
	// ReasonBuffered — a windowed matcher (BatchCOM) buffered the request
	// for a later batched decision; the placeholder Decision carries
	// Deferred=true and no outcome fields.
	ReasonBuffered Reason = "buffered"
	// ReasonWindowLost — the windowed solver had feasible workers for the
	// request but assigned every one of them to other requests in the
	// same window.
	ReasonWindowLost Reason = "window-lost"
)

// Decision records the outcome of one request arrival.
type Decision struct {
	Assignment core.Assignment
	Served     bool
	// Reason tags how the decision ended (see the Reason constants);
	// the tracing layer exports it as the span outcome.
	Reason Reason
	// CoopAttempted is true when the request was offered to outer
	// workers (it became a "cooperative request"), regardless of
	// whether any accepted. AcpRt in the evaluation is
	// served-cooperative / attempted-cooperative.
	CoopAttempted bool
	// Probes counts the worker acceptance probes issued while deciding
	// this request (Algorithm 1 lines 17-20 / Algorithm 3's reuse of
	// them); the observability layer aggregates it across runs.
	Probes int
	// ClaimRetries counts cooperative claims lost to another platform
	// while deciding this request: each one is a retry of Algorithm 1's
	// claim loop against the next-nearest accepting worker. Always zero
	// in the sequential runtime; under the concurrent runtime it measures
	// real cross-platform contention.
	ClaimRetries int
	// Deferred is true when the matcher buffered the request for a later
	// windowed decision instead of deciding it immediately (BatchCOM).
	// No outcome field is meaningful on a deferred Decision and it must
	// not be folded into Stats; the real Decision arrives in a
	// WindowDecision when the window flushes.
	Deferred bool
}

// Matcher is an online matching algorithm bound to one platform.
type Matcher interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// WorkerArrives adds an inner worker to the platform's waiting list.
	WorkerArrives(w *core.Worker)
	// RequestArrives decides the fate of an incoming request
	// immediately (the online constraint): serve it with an inner
	// worker, serve it with a claimed outer worker, or reject it.
	RequestArrives(r *core.Request) Decision
}

// WindowDecision is one request's final outcome from a window flush:
// the Decision a windowed matcher deferred at arrival time, stamped
// with the virtual time the window closed.
type WindowDecision struct {
	Request *core.Request
	// At is the virtual flush time — the decision's logical timestamp
	// (a recycled worker minted from it re-arrives At+ServiceTicks).
	At core.Time
	Decision
}

// WindowedMatcher is a Matcher that defers request decisions into
// virtual-time windows (BatchCOM). RequestArrives returns a Deferred
// placeholder; the simulation layer drives the matcher's clock through
// Advance before every event and reads the batched decisions back.
//
// The contract that keeps windowed runs deterministic: Advance must be
// a pure function of the set of buffered requests and t — independent
// of the order same-time requests were buffered in — and the returned
// slice is sorted by request ID. The slice is only valid until the next
// Advance call (implementations reuse the backing buffer).
type WindowedMatcher interface {
	Matcher
	// NextFlush returns the virtual time the open window is due to
	// flush, and whether a window is open at all.
	NextFlush() (core.Time, bool)
	// Advance moves the matcher's clock to t, flushing the open window
	// when its due time is at or before t; nil when nothing flushed.
	Advance(t core.Time) []WindowDecision
}

// Stats tallies a matcher's outcomes; the simulation layer aggregates
// them into the paper's effectiveness metrics.
type Stats struct {
	Requests      int     // requests seen
	Served        int     // requests served (inner + outer)
	ServedInner   int     // requests served by inner workers
	ServedOuter   int     // cooperative requests accepted (|CoR| contribution)
	CoopAttempted int     // requests offered to outer workers
	Revenue       float64 // total platform revenue (Equation 1)
	PaymentSum    float64 // sum of outer payments v'
	PaymentRate   float64 // sum of v'/v over outer assignments
}

// Observe folds one decision into the stats.
func (s *Stats) Observe(d Decision) {
	s.Requests++
	if d.CoopAttempted {
		s.CoopAttempted++
	}
	if !d.Served {
		return
	}
	s.Served++
	s.Revenue += d.Assignment.Revenue()
	if d.Assignment.Outer {
		s.ServedOuter++
		s.PaymentSum += d.Assignment.Payment
		// Guard the rate against degenerate zero-value requests: 0/0
		// would poison every aggregate built on PaymentRate with NaN.
		if v := d.Assignment.Request.Value; v > 0 {
			s.PaymentRate += d.Assignment.Payment / v
		}
	} else {
		s.ServedInner++
	}
}

// AcceptanceRatio returns served-cooperative over attempted-cooperative
// (the paper's AcpRt), or 0 when no cooperation was attempted.
func (s *Stats) AcceptanceRatio() float64 {
	if s.CoopAttempted == 0 {
		return 0
	}
	return float64(s.ServedOuter) / float64(s.CoopAttempted)
}

// MeanPaymentRate returns the average v'/v over outer assignments (the
// paper's outer payment rate), or 0 when there were none.
func (s *Stats) MeanPaymentRate() float64 {
	if s.ServedOuter == 0 {
		return 0
	}
	return s.PaymentRate / float64(s.ServedOuter)
}

// appendAccepting samples each candidate's willingness to serve at the
// given payment (Algorithm 1, lines 17-20) and appends the accepting
// subset to dst, preserving order. Callers pass a matcher-owned scratch
// slice (reset with dst[:0]) so the hottest cooperative path performs
// no per-request allocation; rng consumption is one draw per candidate,
// identical to the previous fresh-slice implementation.
func appendAccepting(dst, cands []Candidate, payment float64, rng *rand.Rand) []Candidate {
	for _, c := range cands {
		if c.History.Accepts(payment, rng) {
			dst = append(dst, c)
		}
	}
	return dst
}

// nearestIndex returns the index of the candidate whose worker is
// closest to the request, ties broken by smallest worker ID. The result
// is independent of candidate order (the minimum under the strict
// (distance, ID) lexicographic order, with unique IDs), which is what
// lets the claim loop swap-delete without perturbing selection order.
// Callers guarantee len(cands) > 0.
func nearestIndex(cands []Candidate, r *core.Request) int {
	best := 0
	bestD := cands[0].Worker.Loc.Dist2(r.Loc)
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		d := c.Worker.Loc.Dist2(r.Loc)
		if d < bestD || (d == bestD && c.Worker.ID < cands[best].Worker.ID) {
			best, bestD = i, d
		}
	}
	return best
}

// claimNearestAccepting walks accepting candidates from nearest to
// farthest, claiming the first still available (Algorithm 1, lines
// 21-24, hardened against concurrent claims by other platforms). It
// also reports how many claims were lost on the way — zero in the
// sequential runtime, the contention signal under the concurrent one.
//
// cands must be owned by the caller (the matchers pass their accepting
// scratch): lost claims are removed in place by swap-delete, replacing
// the previous per-request copy and O(n²) scan-and-delete. Selection
// order is unchanged — each round still picks the exact
// nearest-then-smallest-ID candidate among those remaining, an order-
// independent choice.
func claimNearestAccepting(coop CoopView, cands []Candidate, r *core.Request) (Candidate, int, bool) {
	retries := 0
	for len(cands) > 0 {
		bi := nearestIndex(cands, r)
		best := cands[bi]
		if coop.Claim(best.Worker.ID) {
			return best, retries, true
		}
		// Claimed elsewhere between eligibility and now; drop and retry.
		retries++
		cands[bi] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	return Candidate{}, retries, false
}
