package core

import (
	"testing"
)

// exampleStream loads the shared Example 1 fixture; see ExampleOneStream.
func exampleStream(t *testing.T) *Stream {
	t.Helper()
	s, err := ExampleOneStream()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExampleOneStreamShape(t *testing.T) {
	s := exampleStream(t)
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	wantKinds := []EventKind{
		WorkerArrival, WorkerArrival, RequestArrival, WorkerArrival, RequestArrival,
		RequestArrival, WorkerArrival, RequestArrival, WorkerArrival, RequestArrival,
	}
	for i, e := range s.Events() {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
	}
	if got := s.MaxValue(); got != 9 {
		t.Errorf("MaxValue = %v, want 9", got)
	}
	if ws := s.Workers(); len(ws) != 5 {
		t.Errorf("Workers = %d, want 5", len(ws))
	}
	if rs := s.Requests(); len(rs) != 5 {
		t.Errorf("Requests = %d, want 5", len(rs))
	}
}

func TestExampleOneCoverage(t *testing.T) {
	s := exampleStream(t)
	ws := s.Workers()
	rs := s.Requests()
	byID := func(id int64) *Worker {
		for _, w := range ws {
			if w.ID == id {
				return w
			}
		}
		t.Fatalf("worker %d not found", id)
		return nil
	}
	reqByID := func(id int64) *Request {
		for _, r := range rs {
			if r.ID == id {
				return r
			}
		}
		t.Fatalf("request %d not found", id)
		return nil
	}
	covers := map[int64][]int64{ // worker -> requests it covers per Fig. 3
		1: {1, 2},
		2: {2, 3},
		3: {2, 3},
		4: {3, 4},
		5: {4, 5},
	}
	for wid, rids := range covers {
		w := byID(wid)
		got := map[int64]bool{}
		for _, r := range rs {
			if w.Covers(r) {
				got[r.ID] = true
			}
		}
		for _, rid := range rids {
			if !got[rid] {
				t.Errorf("w%d should cover r%d", wid, rid)
			}
		}
		if len(got) != len(rids) {
			t.Errorf("w%d covers %v, want exactly %v", wid, got, rids)
		}
	}
	// Time constraint sanity: w4 arrives after r3? No - w4 (t7) arrives
	// after r3 (t6), so w4 may NOT serve r3 online... but the paper's
	// Fig 3(c) assigns w4 to r4 (t8) which arrives after w4. Check r4.
	if !CanServe(byID(4), reqByID(4)) {
		t.Error("w4 must be able to serve r4")
	}
	if CanServe(byID(4), reqByID(3)) {
		t.Error("w4 arrives after r3 and must not serve it")
	}
}

func TestNewStreamSortsAndValidates(t *testing.T) {
	w := wrk(1, 5, 0, 0, 1, 1)
	r := req(1, 3, 0, 0, 2, 1)
	s, err := NewStream([]Event{
		{Time: 5, Kind: WorkerArrival, Worker: w},
		{Time: 3, Kind: RequestArrival, Request: r},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Events()[0].Kind != RequestArrival {
		t.Error("events not sorted by time")
	}

	// Mismatched event time must fail validation.
	if _, err := NewStream([]Event{{Time: 4, Kind: WorkerArrival, Worker: w}}); err == nil {
		t.Error("expected arrival/event time mismatch error")
	}
	// Malformed event kinds.
	if _, err := NewStream([]Event{{Time: 1, Kind: WorkerArrival, Request: r}}); err == nil {
		t.Error("expected malformed worker event error")
	}
	if _, err := NewStream([]Event{{Time: 1, Kind: 99}}); err == nil {
		t.Error("expected unknown kind error")
	}
}

func TestStreamTieBreakWorkersFirst(t *testing.T) {
	w := wrk(1, 7, 0, 0, 1, 1)
	r := req(1, 7, 0, 0, 2, 1)
	s, err := NewStream([]Event{
		{Time: 7, Kind: RequestArrival, Request: r},
		{Time: 7, Kind: WorkerArrival, Worker: w},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Events()[0].Kind != WorkerArrival {
		t.Error("worker must sort before request at the same tick")
	}
}

func TestStreamFilterPlatformAndPlatforms(t *testing.T) {
	s := exampleStream(t)
	ids := s.Platforms()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("Platforms = %v, want [1 2]", ids)
	}
	p1 := s.FilterPlatform(1)
	// Platform 1: workers w1, w2, w4 and all five requests.
	if len(p1.Workers()) != 3 {
		t.Errorf("platform 1 workers = %d, want 3", len(p1.Workers()))
	}
	if len(p1.Requests()) != 5 {
		t.Errorf("platform 1 requests = %d, want 5", len(p1.Requests()))
	}
	p2 := s.FilterPlatform(2)
	if len(p2.Workers()) != 2 || len(p2.Requests()) != 0 {
		t.Errorf("platform 2 = %d workers, %d requests", len(p2.Workers()), len(p2.Requests()))
	}
}

func TestMergeStreams(t *testing.T) {
	s := exampleStream(t)
	a := s.FilterPlatform(1)
	b := s.FilterPlatform(2)
	m, err := Merge(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != s.Len() {
		t.Fatalf("merged len = %d, want %d", m.Len(), s.Len())
	}
	for i, e := range m.Events() {
		if e.Time != s.Events()[i].Time || e.Kind != s.Events()[i].Kind {
			t.Errorf("event %d differs after merge round trip", i)
		}
	}
}

func TestWorkerAndRequestEvents(t *testing.T) {
	ws := []*Worker{wrk(1, 3, 0, 0, 1, 1), wrk(2, 9, 1, 1, 1, 1)}
	rs := []*Request{req(1, 5, 0, 0, 2, 1)}
	evs := append(WorkerEvents(ws), RequestEvents(rs)...)
	s, err := NewStream(evs)
	if err != nil {
		t.Fatal(err)
	}
	want := []EventKind{WorkerArrival, RequestArrival, WorkerArrival}
	for i, e := range s.Events() {
		if e.Kind != want[i] {
			t.Errorf("event %d = %v, want %v", i, e.Kind, want[i])
		}
	}
}
