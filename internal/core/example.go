package core

import "crossmatch/internal/geo"

// ExampleOneStream reconstructs the paper's running Example 1 (Fig. 3,
// Tables I and II). It is used as a shared fixture by tests across the
// module and by the quickstart example.
//
// Arrival order (Table II): w1 w2 r1 w3 r2 r3 w4 r4 w5 r5 at ticks 1..10.
// Request values (Table I): v(r1..r5) = 4, 9, 6, 3, 4.
// Platform 1 ("blue", the target platform) owns w1, w2, w4 and all five
// requests; platform 2 ("red", the lender) owns w3 and w5.
//
// Coverage is laid out on a line so that
//
//	w1 covers {r1, r2},  w2 covers {r2, r3},  w3 covers {r2, r3},
//	w4 covers {r3, r4},  w5 covers {r4, r5},
//
// which reproduces the paper's two reference solutions:
//
//   - TOTA offline optimum (Fig. 3b): w1->r2, w2->r3, w4->r4,
//     revenue 9 + 6 + 3 = 18 (three requests served);
//   - COM offline optimum (Fig. 3c): w1->r1, w2->r2, w4->r4 inner and
//     w3->r3, w5->r5 outer at 50% payment,
//     revenue 4 + 9 + 3 + 6*0.5 + 4*0.5 = 21 (all five served).
//
// Note w4 arrives at t7, after r3 (t6), so w4 can serve r4 but not r3 —
// exactly as in the paper, where r3 must be borrowed out to w3.
//
// The outer workers carry small value histories so that the Definition
// 3.1 acceptance probability is 1 at the 50% payments used above
// (3 for r3, 2 for r5), keeping example-driven tests deterministic.
func ExampleOneStream() (*Stream, error) {
	const (
		blue PlatformID = 1
		red  PlatformID = 2
	)
	rad := 1.2
	workers := []*Worker{
		{ID: 1, Arrival: 1, Loc: geo.Point{X: 1, Y: 0}, Radius: rad, Platform: blue},
		{ID: 2, Arrival: 2, Loc: geo.Point{X: 3, Y: 0}, Radius: rad, Platform: blue},
		{ID: 3, Arrival: 4, Loc: geo.Point{X: 3, Y: 0.5}, Radius: rad, Platform: red,
			History: []float64{1, 1.5, 2, 2.5, 3}},
		{ID: 4, Arrival: 7, Loc: geo.Point{X: 5, Y: 0}, Radius: rad, Platform: blue},
		{ID: 5, Arrival: 9, Loc: geo.Point{X: 7, Y: 0.5}, Radius: rad, Platform: red,
			History: []float64{0.5, 1, 1.5, 2}},
	}
	requests := []*Request{
		{ID: 1, Arrival: 3, Loc: geo.Point{X: 0, Y: 0}, Value: 4, Platform: blue},
		{ID: 2, Arrival: 5, Loc: geo.Point{X: 2, Y: 0}, Value: 9, Platform: blue},
		{ID: 3, Arrival: 6, Loc: geo.Point{X: 4, Y: 0}, Value: 6, Platform: blue},
		{ID: 4, Arrival: 8, Loc: geo.Point{X: 6, Y: 0}, Value: 3, Platform: blue},
		{ID: 5, Arrival: 10, Loc: geo.Point{X: 8, Y: 0}, Value: 4, Platform: blue},
	}
	return NewStream(append(WorkerEvents(workers), RequestEvents(requests)...))
}
