package core

import (
	"math/rand"
	"testing"

	"crossmatch/internal/geo"
)

// randomEvents builds a valid random event set for property tests.
func randomEvents(rng *rand.Rand, n int) []Event {
	var evs []Event
	for i := 0; i < n; i++ {
		t := Time(rng.Int63n(1000))
		if rng.Intn(2) == 0 {
			w := &Worker{
				ID:       int64(i + 1),
				Arrival:  t,
				Loc:      geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
				Radius:   0.5 + rng.Float64(),
				Platform: PlatformID(1 + rng.Intn(3)),
			}
			evs = append(evs, Event{Time: t, Kind: WorkerArrival, Worker: w})
		} else {
			r := &Request{
				ID:       int64(i + 1),
				Arrival:  t,
				Loc:      geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
				Value:    0.5 + rng.Float64()*20,
				Platform: PlatformID(1 + rng.Intn(3)),
			}
			evs = append(evs, Event{Time: t, Kind: RequestArrival, Request: r})
		}
	}
	return evs
}

// Property: NewStream is idempotent — re-sorting a sorted stream changes
// nothing — and ordering is monotone in time.
func TestStreamSortIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		s, err := NewStream(randomEvents(rng, 1+rng.Intn(60)))
		if err != nil {
			t.Fatal(err)
		}
		again, err := NewStream(s.Events())
		if err != nil {
			t.Fatal(err)
		}
		if again.Len() != s.Len() {
			t.Fatal("length changed")
		}
		prev := Time(-1)
		for i, e := range s.Events() {
			if e.Time < prev {
				t.Fatalf("trial %d: order violated at %d", trial, i)
			}
			prev = e.Time
			a, b := s.Events()[i], again.Events()[i]
			if a.Kind != b.Kind || a.Time != b.Time || eventID(a) != eventID(b) {
				t.Fatalf("trial %d: event %d changed on re-sort", trial, i)
			}
		}
	}
}

// Property: FilterPlatform partitions the stream — the platform
// sub-streams are disjoint and jointly exhaustive.
func TestStreamFilterPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		s, err := NewStream(randomEvents(rng, 1+rng.Intn(80)))
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, pid := range s.Platforms() {
			total += s.FilterPlatform(pid).Len()
		}
		if total != s.Len() {
			t.Fatalf("trial %d: partition sizes %d != %d", trial, total, s.Len())
		}
		// Merging the parts reconstructs the whole.
		var parts []*Stream
		for _, pid := range s.Platforms() {
			parts = append(parts, s.FilterPlatform(pid))
		}
		merged, err := Merge(parts...)
		if err != nil {
			t.Fatal(err)
		}
		if merged.Len() != s.Len() {
			t.Fatalf("trial %d: merged %d != %d", trial, merged.Len(), s.Len())
		}
		for i := range s.Events() {
			if eventID(merged.Events()[i]) != eventID(s.Events()[i]) {
				t.Fatalf("trial %d: merge changed event %d", trial, i)
			}
		}
	}
}

// Property: MaxValue is an upper bound attained by some request.
func TestStreamMaxValueAttained(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		s, err := NewStream(randomEvents(rng, 1+rng.Intn(60)))
		if err != nil {
			t.Fatal(err)
		}
		maxV := s.MaxValue()
		attained := len(s.Requests()) == 0 && maxV == 0
		for _, r := range s.Requests() {
			if r.Value > maxV {
				t.Fatalf("trial %d: request above MaxValue", trial)
			}
			if r.Value == maxV {
				attained = true
			}
		}
		if !attained {
			t.Fatalf("trial %d: MaxValue %v not attained", trial, maxV)
		}
	}
}
