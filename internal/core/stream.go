package core

import (
	"fmt"
	"sort"
)

// EventKind distinguishes worker and request arrivals on the global
// arrival sequence (the paper's Table II).
type EventKind uint8

const (
	// WorkerArrival is the arrival of a crowd worker at its platform.
	WorkerArrival EventKind = iota + 1
	// RequestArrival is the arrival of a user request at its platform.
	RequestArrival
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case WorkerArrival:
		return "worker"
	case RequestArrival:
		return "request"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one arrival on the global sequence. Exactly one of Worker and
// Request is non-nil, matching Kind.
type Event struct {
	Time    Time
	Kind    EventKind
	Worker  *Worker
	Request *Request
}

// Validate checks internal consistency of the event.
func (e Event) Validate() error {
	switch e.Kind {
	case WorkerArrival:
		if e.Worker == nil || e.Request != nil {
			return fmt.Errorf("core: malformed worker event at %d", e.Time)
		}
		if err := e.Worker.Validate(); err != nil {
			return err
		}
		if e.Worker.Arrival != e.Time {
			return fmt.Errorf("core: worker %d arrival %d != event time %d", e.Worker.ID, e.Worker.Arrival, e.Time)
		}
	case RequestArrival:
		if e.Request == nil || e.Worker != nil {
			return fmt.Errorf("core: malformed request event at %d", e.Time)
		}
		if err := e.Request.Validate(); err != nil {
			return err
		}
		if e.Request.Arrival != e.Time {
			return fmt.Errorf("core: request %d arrival %d != event time %d", e.Request.ID, e.Request.Arrival, e.Time)
		}
	default:
		return fmt.Errorf("core: unknown event kind %d", e.Kind)
	}
	return nil
}

// Stream is a time-ordered sequence of arrival events, the online input
// of the COM problem.
type Stream struct {
	events []Event
}

// NewStream builds a stream from events, sorting them by time. Ties are
// broken by kind (workers before requests, so a worker arriving at the
// same tick as a request may serve it, mirroring the paper's "workers can
// only serve requests arriving after them" with non-strict arrival) and
// then by ID for determinism.
func NewStream(events []Event) (*Stream, error) {
	return NewStreamOwned(append([]Event(nil), events...))
}

// NewStreamOwned is NewStream taking ownership of the slice: events are
// validated and sorted in place, with no defensive copy. For callers
// that build the slice themselves and never touch it again — the
// generators, chiefly — this halves the peak event memory of a
// 10M-event scaling city. The (time, kind, ID) key is a total order
// over any valid stream, so the in-place sort is deterministic.
func NewStreamOwned(events []Event) (*Stream, error) {
	for i := range events {
		if err := events[i].Validate(); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
	}
	s := &Stream{events: events}
	sort.SliceStable(s.events, func(i, j int) bool {
		a, b := s.events[i], s.events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind // workers first
		}
		return eventID(a) < eventID(b)
	})
	return s, nil
}

func eventID(e Event) int64 {
	if e.Kind == WorkerArrival {
		return e.Worker.ID
	}
	return e.Request.ID
}

// Merge combines several streams into one global arrival order.
func Merge(streams ...*Stream) (*Stream, error) {
	var all []Event
	for _, s := range streams {
		if s == nil {
			continue
		}
		all = append(all, s.events...)
	}
	return NewStream(all)
}

// Len returns the number of events.
func (s *Stream) Len() int { return len(s.events) }

// Events returns the events in arrival order. The slice is owned by the
// stream and must not be mutated.
func (s *Stream) Events() []Event { return s.events }

// Workers returns the workers in arrival order.
func (s *Stream) Workers() []*Worker {
	var ws []*Worker
	for _, e := range s.events {
		if e.Kind == WorkerArrival {
			ws = append(ws, e.Worker)
		}
	}
	return ws
}

// Requests returns the requests in arrival order.
func (s *Stream) Requests() []*Request {
	var rs []*Request
	for _, e := range s.events {
		if e.Kind == RequestArrival {
			rs = append(rs, e.Request)
		}
	}
	return rs
}

// MaxValue returns the largest request value in the stream, or 0 for a
// stream without requests. RamCOM's threshold theta (Algorithm 3) is
// derived from it; the paper assumes max(v_r) is known a priori.
func (s *Stream) MaxValue() float64 {
	maxV := 0.0
	for _, e := range s.events {
		if e.Kind == RequestArrival && e.Request.Value > maxV {
			maxV = e.Request.Value
		}
	}
	return maxV
}

// FilterPlatform returns the sub-stream of events belonging to the given
// platform.
func (s *Stream) FilterPlatform(p PlatformID) *Stream {
	var evs []Event
	for _, e := range s.events {
		switch e.Kind {
		case WorkerArrival:
			if e.Worker.Platform == p {
				evs = append(evs, e)
			}
		case RequestArrival:
			if e.Request.Platform == p {
				evs = append(evs, e)
			}
		}
	}
	return &Stream{events: evs}
}

// Platforms returns the sorted set of platform IDs present in the stream.
func (s *Stream) Platforms() []PlatformID {
	seen := map[PlatformID]bool{}
	for _, e := range s.events {
		switch e.Kind {
		case WorkerArrival:
			seen[e.Worker.Platform] = true
		case RequestArrival:
			seen[e.Request.Platform] = true
		}
	}
	ids := make([]PlatformID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// WorkerEvents builds worker-arrival events from workers, stamping event
// times from each worker's Arrival field.
func WorkerEvents(ws []*Worker) []Event {
	evs := make([]Event, len(ws))
	for i, w := range ws {
		evs[i] = Event{Time: w.Arrival, Kind: WorkerArrival, Worker: w}
	}
	return evs
}

// RequestEvents builds request-arrival events from requests.
func RequestEvents(rs []*Request) []Event {
	evs := make([]Event, len(rs))
	for i, r := range rs {
		evs[i] = Event{Time: r.Arrival, Kind: RequestArrival, Request: r}
	}
	return evs
}
