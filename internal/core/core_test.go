package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"crossmatch/internal/geo"
)

func req(id int64, t Time, x, y, v float64, p PlatformID) *Request {
	return &Request{ID: id, Arrival: t, Loc: geo.Point{X: x, Y: y}, Value: v, Platform: p}
}

func wrk(id int64, t Time, x, y, rad float64, p PlatformID) *Worker {
	return &Worker{ID: id, Arrival: t, Loc: geo.Point{X: x, Y: y}, Radius: rad, Platform: p}
}

func TestRequestValidate(t *testing.T) {
	tests := []struct {
		name    string
		r       *Request
		wantErr string
	}{
		{"valid", req(1, 0, 1, 1, 5, 1), ""},
		{"nil", nil, "nil request"},
		{"zero value", req(1, 0, 1, 1, 0, 1), "must be positive"},
		{"negative value", req(1, 0, 1, 1, -3, 1), "must be positive"},
		{"nan location", &Request{ID: 1, Loc: geo.Point{X: math.NaN()}, Value: 1, Platform: 1}, "non-finite"},
		{"no platform", req(1, 0, 1, 1, 5, NoPlatform), "missing platform"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.r.Validate()
			checkErr(t, err, tt.wantErr)
		})
	}
}

func TestWorkerValidate(t *testing.T) {
	tests := []struct {
		name    string
		w       *Worker
		wantErr string
	}{
		{"valid", wrk(1, 0, 1, 1, 2, 1), ""},
		{"nil", nil, "nil worker"},
		{"zero radius", wrk(1, 0, 1, 1, 0, 1), "must be positive"},
		{"negative radius", wrk(1, 0, 1, 1, -1, 1), "must be positive"},
		{"inf location", &Worker{ID: 1, Loc: geo.Point{Y: math.Inf(1)}, Radius: 1, Platform: 1}, "non-finite"},
		{"no platform", wrk(1, 0, 1, 1, 2, NoPlatform), "missing platform"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			checkErr(t, tt.w.Validate(), tt.wantErr)
		})
	}
}

func checkErr(t *testing.T, err error, want string) {
	t.Helper()
	if want == "" {
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func TestCanServe(t *testing.T) {
	w := wrk(1, 10, 0, 0, 2, 1)
	tests := []struct {
		name string
		r    *Request
		want bool
	}{
		{"covered, after", req(1, 11, 1, 1, 5, 1), true},
		{"covered, same tick", req(2, 10, 1, 1, 5, 1), true},
		{"covered, before worker", req(3, 9, 1, 1, 5, 1), false},
		{"out of range", req(4, 11, 3, 0, 5, 1), false},
		{"boundary of range", req(5, 11, 2, 0, 5, 1), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CanServe(w, tt.r); got != tt.want {
				t.Errorf("CanServe = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAssignmentRevenue(t *testing.T) {
	r := req(1, 1, 0, 0, 10, 1)
	inner := Assignment{Request: r, Worker: wrk(1, 0, 0, 0, 1, 1)}
	if got := inner.Revenue(); got != 10 {
		t.Errorf("inner revenue = %v, want 10", got)
	}
	outer := Assignment{Request: r, Worker: wrk(2, 0, 0, 0, 1, 2), Payment: 6, Outer: true}
	if got := outer.Revenue(); got != 4 {
		t.Errorf("outer revenue = %v, want 4", got)
	}
}

func TestAssignmentValidate(t *testing.T) {
	r := req(1, 10, 0, 0, 10, 1)
	tests := []struct {
		name    string
		a       Assignment
		wantErr string
	}{
		{"valid inner", Assignment{Request: r, Worker: wrk(1, 5, 0.5, 0, 1, 1)}, ""},
		{"valid outer", Assignment{Request: r, Worker: wrk(2, 5, 0.5, 0, 1, 2), Payment: 7, Outer: true}, ""},
		{"nil worker", Assignment{Request: r}, "nil request or worker"},
		{"time violated", Assignment{Request: r, Worker: wrk(1, 20, 0, 0, 1, 1)}, "time constraint"},
		{"range violated", Assignment{Request: r, Worker: wrk(1, 5, 9, 9, 1, 1)}, "range constraint"},
		{"outer flag mismatch", Assignment{Request: r, Worker: wrk(2, 5, 0, 0, 1, 2), Payment: 7}, "Outer flag"},
		{"inner flagged outer", Assignment{Request: r, Worker: wrk(1, 5, 0, 0, 1, 1), Payment: 7, Outer: true}, "Outer flag"},
		{"payment too high", Assignment{Request: r, Worker: wrk(2, 5, 0, 0, 1, 2), Payment: 11, Outer: true}, "outside (0, 10]"},
		{"payment zero", Assignment{Request: r, Worker: wrk(2, 5, 0, 0, 1, 2), Payment: 0, Outer: true}, "outside (0, 10]"},
		{"inner with payment", Assignment{Request: r, Worker: wrk(1, 5, 0, 0, 1, 1), Payment: 3}, "nonzero payment"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			checkErr(t, tt.a.Validate(), tt.wantErr)
		})
	}
}

func TestMatchingAddAndRevenue(t *testing.T) {
	m := NewMatching()
	r1 := req(1, 10, 0, 0, 9, 1)
	r2 := req(2, 11, 5, 5, 6, 1)
	w1 := wrk(1, 1, 0, 0, 1, 1)
	w2 := wrk(2, 2, 5, 5, 1, 2)

	if err := m.Add(Assignment{Request: r1, Worker: w1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(Assignment{Request: r2, Worker: w2, Payment: 3, Outer: true}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if got := m.Revenue(); got != 9+3 {
		t.Errorf("Revenue = %v, want 12", got)
	}
	if m.InnerCount() != 1 || m.OuterCount() != 1 {
		t.Errorf("inner/outer = %d/%d", m.InnerCount(), m.OuterCount())
	}
	if got := m.PaymentRate(); got != 0.5 {
		t.Errorf("PaymentRate = %v, want 0.5", got)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if a, ok := m.ByRequest(1); !ok || a.Worker.ID != 1 {
		t.Errorf("ByRequest(1) = %+v, %v", a, ok)
	}
	if a, ok := m.ByWorker(2); !ok || a.Request.ID != 2 {
		t.Errorf("ByWorker(2) = %+v, %v", a, ok)
	}
	if _, ok := m.ByRequest(99); ok {
		t.Error("ByRequest(99) should not exist")
	}
}

func TestMatchingOneByOneConstraint(t *testing.T) {
	m := NewMatching()
	r1 := req(1, 10, 0, 0, 9, 1)
	r2 := req(2, 11, 0, 0, 6, 1)
	w1 := wrk(1, 1, 0, 0, 1, 1)
	w2 := wrk(2, 2, 0, 0, 1, 1)
	if err := m.Add(Assignment{Request: r1, Worker: w1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(Assignment{Request: r1, Worker: w2}); err == nil {
		t.Error("double-matching a request must fail")
	}
	if err := m.Add(Assignment{Request: r2, Worker: w1}); err == nil {
		t.Error("double-matching a worker must fail")
	}
	// The failed adds must not corrupt state.
	if m.Len() != 1 || m.Revenue() != 9 {
		t.Errorf("state corrupted: len=%d rev=%v", m.Len(), m.Revenue())
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMatchingRejectsInvalidAssignment(t *testing.T) {
	m := NewMatching()
	r := req(1, 10, 0, 0, 9, 1)
	w := wrk(1, 20, 0, 0, 1, 1) // arrives after request
	if err := m.Add(Assignment{Request: r, Worker: w}); err == nil {
		t.Fatal("expected time-constraint error")
	}
	if m.Len() != 0 {
		t.Error("invalid assignment must not be recorded")
	}
}

func TestMatchingPaymentRateNoOuter(t *testing.T) {
	m := NewMatching()
	if m.PaymentRate() != 0 {
		t.Error("empty matching payment rate should be 0")
	}
	if err := m.Add(Assignment{Request: req(1, 1, 0, 0, 5, 1), Worker: wrk(1, 0, 0, 0, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if m.PaymentRate() != 0 {
		t.Error("inner-only matching payment rate should be 0")
	}
}

// Property: revenue equals sum over assignments of v (inner) or v-v' (outer).
func TestMatchingRevenueIdentity(t *testing.T) {
	f := func(vals []float64, outer []bool) bool {
		m := NewMatching()
		want := 0.0
		for i, v := range vals {
			v = math.Abs(math.Mod(v, 100)) + 1
			isOuter := i < len(outer) && outer[i]
			r := req(int64(i+1), Time(i+10), 0, 0, v, 1)
			var a Assignment
			if isOuter {
				pay := v / 2
				a = Assignment{Request: r, Worker: wrk(int64(i+1), 0, 0, 0, 1, 2), Payment: pay, Outer: true}
				want += v - pay
			} else {
				a = Assignment{Request: r, Worker: wrk(int64(i+1), 0, 0, 0, 1, 1)}
				want += v
			}
			if err := m.Add(a); err != nil {
				return false
			}
		}
		return math.Abs(m.Revenue()-want) < 1e-9 && m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
