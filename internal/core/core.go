// Package core defines the canonical domain model of the Cross Online
// Matching (COM) problem from "Real-Time Cross Online Matching in Spatial
// Crowdsourcing" (Cheng et al., ICDE 2020): requests, inner and outer
// crowd workers, assignments, matchings and revenue accounting.
//
// Every other package — the online matchers, the offline optimum, the
// multi-platform simulation, and the experiment harness — speaks in terms
// of these types. The package deliberately contains no algorithmic logic
// beyond constraint checking (Definition 2.6) and revenue arithmetic
// (Equation 1), so that the algorithm packages can be validated against a
// single, trivially-auditable source of truth.
package core

import (
	"errors"
	"fmt"

	"crossmatch/internal/geo"
)

// PlatformID identifies a spatial crowdsourcing platform. In the paper's
// terminology, from the point of view of platform p, workers with
// Platform == p are inner crowd workers (Definition 2.2) and workers with
// Platform != p are outer crowd workers (Definition 2.3).
type PlatformID int32

// NoPlatform is the zero PlatformID; valid platforms are numbered from 1.
const NoPlatform PlatformID = 0

// Time is a discrete arrival timestamp. The paper orders workers and
// requests on a single global arrival sequence (Table II); ticks are
// abstract but monotone, and the workload generators space them to model
// wall-clock seconds.
type Time int64

// Request is a user request r = <t, l, v> (Definition 2.1): it arrives at
// time t at location l and pays value v to the platform that completes it.
type Request struct {
	ID       int64
	Arrival  Time
	Loc      geo.Point
	Value    float64
	Platform PlatformID // the platform this request was submitted to
}

// Validate reports whether the request is well-formed.
func (r *Request) Validate() error {
	switch {
	case r == nil:
		return errors.New("core: nil request")
	case !r.Loc.IsFinite():
		return fmt.Errorf("core: request %d: non-finite location %v", r.ID, r.Loc)
	case r.Value <= 0:
		return fmt.Errorf("core: request %d: value %v must be positive", r.ID, r.Value)
	case r.Platform == NoPlatform:
		return fmt.Errorf("core: request %d: missing platform", r.ID)
	default:
		return nil
	}
}

// Worker is a crowd worker w = <t, l, rad> (Definitions 2.2 and 2.3): it
// arrives at time t at location l and can serve requests within radius
// rad. History holds the values of the worker's completed past requests
// and drives the acceptance probability of Definition 3.1; it is consulted
// only when the worker acts as an outer worker for another platform.
type Worker struct {
	ID       int64
	Arrival  Time
	Loc      geo.Point
	Radius   float64
	Platform PlatformID // the platform this worker is registered with
	History  []float64  // completed request values, ascending not required
}

// Validate reports whether the worker is well-formed.
func (w *Worker) Validate() error {
	switch {
	case w == nil:
		return errors.New("core: nil worker")
	case !w.Loc.IsFinite():
		return fmt.Errorf("core: worker %d: non-finite location %v", w.ID, w.Loc)
	case w.Radius <= 0:
		return fmt.Errorf("core: worker %d: radius %v must be positive", w.ID, w.Radius)
	case w.Platform == NoPlatform:
		return fmt.Errorf("core: worker %d: missing platform", w.ID)
	default:
		return nil
	}
}

// Range returns the worker's service disk.
func (w *Worker) Range() geo.Circle {
	return geo.Circle{Center: w.Loc, Radius: w.Radius}
}

// Covers reports whether the request location lies within the worker's
// service radius (the range constraint of Definition 2.6).
func (w *Worker) Covers(r *Request) bool {
	return w.Range().Contains(r.Loc)
}

// CanServe reports whether worker w may be assigned to request r under
// the time and range constraints of Definition 2.6. The 1-by-1 and
// invariable constraints are stateful (they depend on what has already
// been matched) and are enforced by Matching.Add.
func CanServe(w *Worker, r *Request) bool {
	return w.Arrival <= r.Arrival && w.Covers(r)
}

// Assignment records that a worker serves a request. For an inner
// assignment, Payment is zero and the platform books the full request
// value. For an outer (cooperative) assignment, Payment is the outer
// payment v' in (0, v] handed to the lender platform's worker
// (Definition 2.4), and the platform books v − v' (Definition 2.5).
type Assignment struct {
	Request *Request
	Worker  *Worker
	Payment float64 // outer payment v'; zero for inner assignments
	Outer   bool    // true when Worker belongs to another platform
}

// Revenue returns the revenue the requesting platform books for this
// assignment (one term of Equation 1).
func (a Assignment) Revenue() float64 {
	if a.Outer {
		return a.Request.Value - a.Payment
	}
	return a.Request.Value
}

// Validate checks the assignment against Definitions 2.4-2.6: the pair
// must satisfy time and range constraints, the Outer flag must agree with
// the platform relationship, and an outer payment must lie in (0, v].
func (a Assignment) Validate() error {
	if a.Request == nil || a.Worker == nil {
		return errors.New("core: assignment with nil request or worker")
	}
	if err := a.Request.Validate(); err != nil {
		return err
	}
	if err := a.Worker.Validate(); err != nil {
		return err
	}
	if a.Worker.Arrival > a.Request.Arrival {
		return fmt.Errorf("core: assignment %d<-%d violates time constraint: worker arrives at %d after request at %d",
			a.Request.ID, a.Worker.ID, a.Worker.Arrival, a.Request.Arrival)
	}
	if !a.Worker.Covers(a.Request) {
		return fmt.Errorf("core: assignment %d<-%d violates range constraint: dist %.4f > radius %.4f",
			a.Request.ID, a.Worker.ID, a.Worker.Loc.Dist(a.Request.Loc), a.Worker.Radius)
	}
	outer := a.Worker.Platform != a.Request.Platform
	if outer != a.Outer {
		return fmt.Errorf("core: assignment %d<-%d: Outer flag %v disagrees with platforms (request %d, worker %d)",
			a.Request.ID, a.Worker.ID, a.Outer, a.Request.Platform, a.Worker.Platform)
	}
	if a.Outer {
		if a.Payment <= 0 || a.Payment > a.Request.Value {
			return fmt.Errorf("core: assignment %d<-%d: outer payment %v outside (0, %v]",
				a.Request.ID, a.Worker.ID, a.Payment, a.Request.Value)
		}
	} else if a.Payment != 0 {
		return fmt.Errorf("core: assignment %d<-%d: inner assignment with nonzero payment %v",
			a.Request.ID, a.Worker.ID, a.Payment)
	}
	return nil
}

// Matching is a set of assignments satisfying the 1-by-1 constraint:
// every worker and every request appears at most once. It accumulates the
// platform's revenue per Equation 1 as assignments are added.
type Matching struct {
	assignments []Assignment
	byRequest   map[int64]int // request ID -> index into assignments
	byWorker    map[int64]int // worker ID -> index into assignments
	revenue     float64
}

// NewMatching returns an empty matching.
func NewMatching() *Matching {
	return &Matching{
		byRequest: make(map[int64]int),
		byWorker:  make(map[int64]int),
	}
}

// Add appends an assignment after validating it and the 1-by-1
// constraint. The invariable constraint (Definition 2.6) is enforced by
// construction: there is no way to remove or replace an assignment.
func (m *Matching) Add(a Assignment) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if _, dup := m.byRequest[a.Request.ID]; dup {
		return fmt.Errorf("core: request %d already matched", a.Request.ID)
	}
	if _, dup := m.byWorker[a.Worker.ID]; dup {
		return fmt.Errorf("core: worker %d already matched", a.Worker.ID)
	}
	m.byRequest[a.Request.ID] = len(m.assignments)
	m.byWorker[a.Worker.ID] = len(m.assignments)
	m.assignments = append(m.assignments, a)
	m.revenue += a.Revenue()
	return nil
}

// Len returns the number of assignments.
func (m *Matching) Len() int { return len(m.assignments) }

// Revenue returns the total platform revenue of the matching (Equation 1).
func (m *Matching) Revenue() float64 { return m.revenue }

// Assignments returns the assignments in insertion (arrival) order. The
// returned slice is owned by the matching and must not be mutated.
func (m *Matching) Assignments() []Assignment { return m.assignments }

// ByRequest returns the assignment serving the given request, if any.
func (m *Matching) ByRequest(requestID int64) (Assignment, bool) {
	i, ok := m.byRequest[requestID]
	if !ok {
		return Assignment{}, false
	}
	return m.assignments[i], true
}

// ByWorker returns the assignment using the given worker, if any.
func (m *Matching) ByWorker(workerID int64) (Assignment, bool) {
	i, ok := m.byWorker[workerID]
	if !ok {
		return Assignment{}, false
	}
	return m.assignments[i], true
}

// InnerCount returns the number of assignments served by inner workers.
func (m *Matching) InnerCount() int {
	n := 0
	for _, a := range m.assignments {
		if !a.Outer {
			n++
		}
	}
	return n
}

// OuterCount returns the number of cooperative (outer) assignments.
func (m *Matching) OuterCount() int { return m.Len() - m.InnerCount() }

// PaymentRate returns the mean of v'/v over outer assignments — the
// paper's effectiveness metric "average rate of each outer payment v' to
// the request value v". It returns 0 when there are no outer assignments.
func (m *Matching) PaymentRate() float64 {
	sum, n := 0.0, 0
	for _, a := range m.assignments {
		if a.Outer {
			sum += a.Payment / a.Request.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Validate re-checks every assignment and the 1-by-1 maps. It is meant
// for tests and audits, not hot paths.
func (m *Matching) Validate() error {
	seenR := make(map[int64]bool, len(m.assignments))
	seenW := make(map[int64]bool, len(m.assignments))
	total := 0.0
	for _, a := range m.assignments {
		if err := a.Validate(); err != nil {
			return err
		}
		if seenR[a.Request.ID] {
			return fmt.Errorf("core: request %d matched twice", a.Request.ID)
		}
		if seenW[a.Worker.ID] {
			return fmt.Errorf("core: worker %d matched twice", a.Worker.ID)
		}
		seenR[a.Request.ID] = true
		seenW[a.Worker.ID] = true
		total += a.Revenue()
	}
	if diff := total - m.revenue; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("core: cached revenue %v != recomputed %v", m.revenue, total)
	}
	return nil
}
