package core

import (
	"math/rand"
	"testing"

	"crossmatch/internal/geo"
)

// FuzzStreamOrdering fuzzes NewStream with randomly generated, randomly
// shuffled worker and request arrivals and asserts the ordering contract
// every consumer relies on: events sorted by time; at equal times every
// worker arrival precedes every request arrival (so a worker arriving
// with a request may serve it); equal (time, kind) ties broken by
// ascending ID; and the sort is a permutation — nothing dropped,
// duplicated or mutated. The order must also be a pure function of the
// event multiset, independent of input shuffling.
func FuzzStreamOrdering(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(7))
	f.Add(int64(42), uint8(0), uint8(3))
	f.Add(int64(-9), uint8(40), uint8(40))
	f.Add(int64(7), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nWorkers, nRequests uint8) {
		rng := rand.New(rand.NewSource(seed))
		var events []Event
		id := int64(1)
		for i := 0; i < int(nWorkers); i++ {
			w := &Worker{
				ID:       id,
				Arrival:  Time(rng.Intn(20)),
				Loc:      geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
				Radius:   0.1 + rng.Float64(),
				Platform: PlatformID(1 + rng.Intn(3)),
			}
			events = append(events, Event{Time: w.Arrival, Kind: WorkerArrival, Worker: w})
			id++
		}
		for i := 0; i < int(nRequests); i++ {
			r := &Request{
				ID:       id,
				Arrival:  Time(rng.Intn(20)),
				Loc:      geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
				Value:    0.1 + rng.Float64()*5,
				Platform: PlatformID(1 + rng.Intn(3)),
			}
			events = append(events, Event{Time: r.Arrival, Kind: RequestArrival, Request: r})
			id++
		}
		rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })

		s, err := NewStream(events)
		if err != nil {
			t.Fatalf("valid events rejected: %v", err)
		}
		got := s.Events()
		if len(got) != len(events) {
			t.Fatalf("stream has %d events, input had %d", len(got), len(events))
		}
		seen := map[int64]bool{}
		for i, e := range got {
			if seen[eventID(e)] {
				t.Fatalf("event id %d appears twice in the stream", eventID(e))
			}
			seen[eventID(e)] = true
			if i == 0 {
				continue
			}
			prev := got[i-1]
			if e.Time < prev.Time {
				t.Fatalf("event %d at t=%d follows event at t=%d: stream not time-ordered", i, e.Time, prev.Time)
			}
			if e.Time == prev.Time {
				if prev.Kind == RequestArrival && e.Kind == WorkerArrival {
					t.Fatalf("at t=%d a worker arrival follows a request arrival: workers must come first", e.Time)
				}
				if prev.Kind == e.Kind && eventID(prev) >= eventID(e) {
					t.Fatalf("at t=%d, kind %v: id %d not ascending after %d", e.Time, e.Kind, eventID(e), eventID(prev))
				}
			}
		}

		// Re-shuffling the same events must yield the identical order:
		// downstream determinism (same seed, same matching) depends on it.
		rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })
		s2, err := NewStream(events)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if eventID(got[i]) != eventID(s2.Events()[i]) {
				t.Fatalf("event order depends on input order: position %d is id %d vs id %d",
					i, eventID(got[i]), eventID(s2.Events()[i]))
			}
		}
	})
}
